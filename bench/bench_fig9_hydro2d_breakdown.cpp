// Figure 9: estimation of the scalability bottlenecks in Hydro2d.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 9: estimation of the scalability bottlenecks in Hydro2d\n";
  return scaltool::bench::run_breakdown_bench("hydro2d");
}
