#include "common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "apps/apps.hpp"
#include "common/ascii_chart.hpp"
#include "common/check.hpp"
#include "common/monotime.hpp"
#include "engine/campaign.hpp"
#include "engine/engine_stats.hpp"

namespace scaltool::bench {

AppSpec spec_for(const std::string& app) {
  if (app == "t3dheat") return {"t3dheat", 10.0, "40 MB"};
  if (app == "hydro2d") return {"hydro2d", 2.6, "10.3 MB"};
  if (app == "swim") return {"swim", 4.0, "16.2 MB"};
  ST_CHECK_MSG(false, "no spec for app " << app);
}

ExperimentRunner make_runner() {
  register_standard_workloads();
  return ExperimentRunner(MachineConfig::origin2000_scaled(1));
}

std::size_t s0_for(const AppSpec& spec) {
  const ExperimentRunner runner = make_runner();
  const auto l2 = static_cast<double>(runner.base_config().l2.size_bytes);
  // Round to whole KiB so table labels stay readable.
  const auto bytes = static_cast<std::size_t>(spec.l2_multiple * l2);
  return bytes / 1_KiB * 1_KiB;
}

int bench_jobs() {
  if (const char* env = std::getenv("SCALTOOL_BENCH_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs >= 1) return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, 8);
}

std::string bench_cache_path() {
  if (const char* env = std::getenv("SCALTOOL_BENCH_CACHE")) return env;
  return "scaltool-bench-cache.txt";
}

double timed_seconds(const std::function<void()>& fn) {
  const Stopwatch timer;
  fn();
  return timer.seconds();
}

ScalToolInputs collect_app(const std::string& app, int max_procs) {
  const AppSpec spec = spec_for(app);
  ExperimentRunner runner = make_runner();
  const std::size_t s0 = s0_for(spec);
  std::cout << "# " << app << ": s0 = " << format_bytes(s0) << " ("
            << spec.l2_multiple << "x the scaled L2; the paper used "
            << spec.paper_mb << " against a 4 MB L2), procs 1.."
            << max_procs << "\n";
  CampaignOptions options;
  options.jobs = bench_jobs();
  options.cache_path = bench_cache_path();
  EngineStats stats;
  ScalToolInputs inputs = run_matrix_parallel(
      runner, app, s0, default_proc_counts(max_procs), options, &stats);
  std::cout << "# " << engine_stats_line(stats) << "\n";
  return inputs;
}

AppAnalysis analyze_app(const std::string& app, int max_procs) {
  AppAnalysis out{collect_app(app, max_procs), {}};
  out.report = analyze(out.inputs);
  return out;
}

int run_speedup_bench(const std::string& app) {
  const ScalToolInputs inputs = collect_app(app);
  speedup_table(inputs).print(std::cout, /*with_csv=*/true);
  if (app == "t3dheat")
    std::cout << "Paper (Fig. 5): good speedups up to 16 processors, then "
                 "the curve saturates.\n";
  else if (app == "hydro2d")
    std::cout << "Paper (Fig. 8): modest speedups, about 9 at 32 "
                 "processors (large serial sections).\n";
  else
    std::cout << "Paper (Fig. 11): very good speedups, about 24 at 32 "
                 "processors.\n";
  return 0;
}

int run_breakdown_bench(const std::string& app) {
  const AppAnalysis a = analyze_app(app);
  std::cout << model_summary(a.report) << "\n";
  breakdown_table(a.report).print(std::cout, /*with_csv=*/true);

  // The figure itself, in the terminal.
  std::vector<std::pair<double, double>> base, no_l2, no_mp;
  for (const BottleneckPoint& p : a.report.points) {
    base.emplace_back(p.n, p.base_cycles / 1e6);
    no_l2.emplace_back(p.n, p.cycles_no_l2lim / 1e6);
    no_mp.emplace_back(p.n, p.cycles_no_l2lim_no_mp / 1e6);
  }
  AsciiChart chart(56, 12);
  chart.add_series('B', "Base (accumulated Mcycles)", std::move(base));
  chart.add_series('o', "Base - L2Lim", std::move(no_l2));
  chart.add_series('.', "Base - L2Lim - MP", std::move(no_mp));
  std::cout << chart.render() << "\n";
  if (app == "t3dheat")
    std::cout << "Paper (Fig. 6): conflict misses nearly double the "
                 "1-processor time and vanish by ~8 processors; beyond "
                 "that synchronization grows until it dominates the "
                 "multiprocessor overhead.\n";
  else if (app == "hydro2d")
    std::cout << "Paper (Fig. 9): caching space is negligible past 2 "
                 "processors; load imbalance dominates, with some "
                 "synchronization; removing MP would about double the "
                 "32-processor speed.\n";
  else
    std::cout << "Paper (Fig. 12): caching space negligible; load "
                 "imbalance dominates synchronization by far.\n";
  return 0;
}

int run_validation_bench(const std::string& app) {
  const AppAnalysis a = analyze_app(app);
  validation_table(a.report, a.inputs).print(std::cout, /*with_csv=*/true);
  if (app == "t3dheat")
    std::cout << "Paper (Fig. 7): the estimated MP cost is remarkably "
                 "similar to the speedshop measurement.\n";
  else if (app == "hydro2d")
    std::cout << "Paper (Fig. 10): estimate and measurement are very "
                 "similar; at 32 processors the Base-MP curves differ by "
                 "only 9% of the accumulated cycles.\n";
  else
    std::cout << "Paper (Fig. 13): curves agree up to 16 processors and "
                 "diverge by ~14% at 32, caused by non-synchronization "
                 "data sharing the model neglects.\n";
  return 0;
}

}  // namespace scaltool::bench
