// Related-work baseline: mathematical models vs Scal-Tool (Sec. 5).
//
// The paper dismisses pure mathematical models as "fast, but ... with
// assumptions that restrict their accuracy". This bench makes the claim
// concrete: fit an Amdahl serial-fraction model and an M/M/1 contention
// model to the same measured runs Scal-Tool uses, and compare predicted
// speedups. Expected: near-perfect for Hydro2d (its bottleneck *is* a
// serial fraction), badly wrong for T3dheat (superlinear caching at low n
// and a synchronization wall at high n violate both models' assumptions)
// — which is exactly why the empirical, counter-driven model exists.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/analytic_models.hpp"

int main() {
  using namespace scaltool;
  ExperimentRunner runner = bench::make_runner();
  const auto procs = default_proc_counts(32);

  for (const char* app : {"hydro2d", "t3dheat", "swim"}) {
    const bench::AppSpec spec = bench::spec_for(app);
    const ScalToolInputs inputs =
        runner.collect(app, bench::s0_for(spec), procs);
    const ScalabilityReport report = analyze(inputs);
    const AmdahlFit amdahl = fit_amdahl(inputs);

    Table t(std::string("Speedup: measured vs mathematical models (") +
            app + ", fitted serial fraction f = " +
            Table::cell(amdahl.serial_fraction, 4) + ")");
    t.header({"procs", "measured", "amdahl", "amdahl_err_pct", "mm1",
              "mm1_err_pct"});
    double worst_amdahl = 0.0;
    for (const BaselineComparison& c :
         compare_baselines(inputs, report.model.pi0)) {
      const double ea = 100.0 * (c.amdahl - c.measured) / c.measured;
      const double em = 100.0 * (c.contention - c.measured) / c.measured;
      worst_amdahl = std::max(worst_amdahl, std::abs(ea));
      t.add_row({Table::cell(c.n), Table::cell(c.measured, 2),
                 Table::cell(c.amdahl, 2), Table::cell(ea, 1),
                 Table::cell(c.contention, 2), Table::cell(em, 1)});
    }
    t.print(std::cout, /*with_csv=*/true);
    std::cout << "worst Amdahl error for " << app << ": "
              << Table::cell(worst_amdahl, 1) << "%\n\n";
  }
  std::cout << "Expected: Amdahl tracks hydro2d (a genuine serial "
               "fraction) but misses t3dheat badly — it cannot express "
               "superlinear caching or a synchronization cost that grows "
               "with n. The empirical counter-driven model (Figs. 6-13) "
               "handles all three; that contrast is the paper's thesis.\n";
  return 0;
}
