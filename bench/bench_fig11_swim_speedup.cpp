// Figure 11: Swim speedups.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 11: Swim speedups\n";
  return scaltool::bench::run_speedup_bench("swim");
}
