// Figure 5: T3dheat speedups.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 5: T3dheat speedups\n";
  return scaltool::bench::run_speedup_bench("t3dheat");
}
