// Durability cost gate (DESIGN.md §11): the write-ahead journal must be
// close to free on the hot collect path, and a resume must be close to
// free compared with re-collecting.
//
// Two measurements over the same small matrix, min-of-passes to shed
// scheduler noise:
//   1. collect with journaling off vs on — fails loudly (exit 1) when the
//      journal costs more than 5% wall clock (with an absolute noise
//      floor, like bench_obs_overhead);
//   2. cold collect vs resume from a complete journal — reported as the
//      speedup recovery buys, with the replay counters proving that the
//      resumed campaign performed zero simulator runs;
//   3. the storage-environment seam (DESIGN.md §15) — the same journaled
//      collect with a passthrough FaultyEnv installed (counts every
//      syscall, injects nothing) — fails loudly when the indirection
//      costs more than 2% over the plain run.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "common/table.hpp"
#include "engine/campaign.hpp"
#include "engine/engine_stats.hpp"
#include "io/env.hpp"

namespace scaltool::bench {
namespace {

constexpr const char* kJournalPath = "/tmp/scaltool_bench_crash.journal";
constexpr int kMaxProcs = 8;
constexpr int kPasses = 5;
constexpr double kMaxOverheadPct = 5.0;
// The Env virtual-dispatch seam must stay near-free: one relaxed atomic
// load plus a vtable call per storage syscall.
constexpr double kMaxEnvOverheadPct = 2.0;
// Below this absolute delta the percentage rules are noise, not signal.
constexpr double kNoiseFloorSeconds = 0.02;

int run() {
  const ExperimentRunner runner = make_runner();
  // A matrix heavy enough that simulation, not journal I/O, sets the wall
  // clock — the gate measures the hot collect path, not the fsync floor.
  const std::size_t s0 = 4 * runner.base_config().l2.size_bytes;
  const std::vector<int> procs = default_proc_counts(kMaxProcs);

  EngineStats last;
  const auto collect_pass = [&](const char* journal, bool resume) {
    CampaignOptions options;
    options.journal_path = journal;
    options.resume = resume;
    (void)run_matrix_parallel(runner, "swim", s0, procs, options, &last);
  };

  std::cout << "# crash recovery: swim, s0 = " << format_bytes(s0)
            << ", procs 1.." << kMaxProcs << ", " << kPasses
            << " passes per mode\n";

  double off = 1e300;
  for (int i = 0; i < kPasses; ++i)
    off = std::min(off, timed_seconds([&] { collect_pass("", false); }));

  double on = 1e300;
  for (int i = 0; i < kPasses; ++i) {
    std::remove(kJournalPath);  // each pass journals from scratch
    on = std::min(on, timed_seconds([&] { collect_pass(kJournalPath,
                                                       false); }));
  }

  // Same journaled collect, but every storage syscall rides through an
  // installed FaultyEnv with an empty plan: full counting, no injection.
  double seamed = 1e300;
  for (int i = 0; i < kPasses; ++i) {
    std::remove(kJournalPath);
    io::FaultyEnv passthrough{io::IoFaultPlan{}};
    io::ScopedEnv scope(&passthrough);
    seamed = std::min(seamed, timed_seconds([&] { collect_pass(kJournalPath,
                                                               false); }));
  }

  // A complete journal is the best recovery case: everything replays.
  double resumed = 1e300;
  for (int i = 0; i < kPasses; ++i)
    resumed = std::min(
        resumed, timed_seconds([&] { collect_pass(kJournalPath, true); }));
  const std::size_t replayed = last.jobs_replayed;
  const std::size_t resimulated = last.jobs_run;
  std::remove(kJournalPath);

  const double delta = on - off;
  const double overhead_pct = off > 0.0 ? 100.0 * delta / off : 0.0;
  const double env_delta = seamed - on;
  const double env_pct = on > 0.0 ? 100.0 * env_delta / on : 0.0;
  const double speedup = resumed > 0.0 ? off / resumed : 0.0;
  const bool journal_fail =
      overhead_pct > kMaxOverheadPct && delta > kNoiseFloorSeconds;
  const bool env_fail =
      env_pct > kMaxEnvOverheadPct && env_delta > kNoiseFloorSeconds;
  const bool fail = journal_fail || env_fail || resimulated != 0;

  Table table("Durability cost (min of passes)");
  table.header({"mode", "wall_s"});
  table.add_row({"journal off", Table::cell(off, 4)});
  table.add_row({"journal on", Table::cell(on, 4)});
  table.add_row({"journal on + env seam", Table::cell(seamed, 4)});
  table.add_row({"resume (full journal)", Table::cell(resumed, 4)});
  table.print(std::cout, /*with_csv=*/true);
  std::cout << "{\"bench\":\"crash_recovery\",\"off_s\":" << off
            << ",\"on_s\":" << on << ",\"env_s\":" << seamed
            << ",\"resume_s\":" << resumed
            << ",\"overhead_pct\":" << overhead_pct
            << ",\"env_overhead_pct\":" << env_pct
            << ",\"resume_speedup\":" << speedup
            << ",\"replayed\":" << replayed
            << ",\"resimulated\":" << resimulated
            << ",\"pass\":" << (fail ? "false" : "true") << "}\n";
  if (fail) {
    std::cout << "FAIL: journaling costs " << overhead_pct << "% (budget "
              << kMaxOverheadPct << "%), the storage-env seam costs "
              << env_pct << "% (budget " << kMaxEnvOverheadPct
              << "%), or the resume re-simulated " << resimulated
              << " runs\n";
    return 1;
  }
  std::cout << "PASS: journaling costs " << overhead_pct << "% (budget "
            << kMaxOverheadPct << "%); env seam costs " << env_pct
            << "% (budget " << kMaxEnvOverheadPct << "%); resume replayed "
            << replayed << " runs, re-simulated none, " << speedup
            << "x faster than a cold collect\n";
  return 0;
}

}  // namespace
}  // namespace scaltool::bench

int main() { return scaltool::bench::run(); }
