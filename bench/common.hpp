// Shared plumbing for the figure/table regeneration binaries.
//
// Every bench binary regenerates exactly one table or figure of the paper:
// it collects the Table 3 measurement matrix for the relevant application
// on the scaled Origin 2000, runs the Scal-Tool analysis, and prints the
// series the figure plots (plus CSV). The data-set sizes keep the paper's
// ratios to the L2 capacity: T3dheat 40 MB / 4 MB = 10x, Hydro2d
// 10.3 MB / 4 MB = 2.6x, Swim 16.2 MB / 4 MB = 4x.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace scaltool::bench {

struct AppSpec {
  std::string name;
  double l2_multiple;   ///< s0 as a multiple of the L2 capacity
  const char* paper_mb; ///< the paper's data-set size, for the banner
};

/// Specs for the paper's three applications.
AppSpec spec_for(const std::string& app);

/// The standard bench machine (scaled Origin 2000) and runner.
ExperimentRunner make_runner();

/// Base data-set size for an app on the bench machine.
std::size_t s0_for(const AppSpec& spec);

/// Worker count for bench collection: $SCALTOOL_BENCH_JOBS, defaulting to
/// the hardware concurrency clamped to [1, 8].
int bench_jobs();

/// Persistent run-cache file for bench collection: $SCALTOOL_BENCH_CACHE,
/// defaulting to "scaltool-bench-cache.txt" in the working directory.
/// Set it to the empty string to disable the cache.
std::string bench_cache_path();

/// Wall-clock seconds of one call, on the shared monotonic clock
/// (common/monotime.hpp) — the one timing idiom for every bench binary.
double timed_seconds(const std::function<void()>& fn);

/// Collects the full measurement matrix for an application through the
/// campaign engine (parallel workers + persistent run cache); prints a
/// one-line banner of what ran plus the engine stats.
ScalToolInputs collect_app(const std::string& app, int max_procs = 32);

/// collect + analyze in one call.
struct AppAnalysis {
  ScalToolInputs inputs;
  ScalabilityReport report;
};
AppAnalysis analyze_app(const std::string& app, int max_procs = 32);

/// Figure 5/8/11: the measured speedup curve plus shape commentary.
int run_speedup_bench(const std::string& app);

/// Figure 6/9/12: the bottleneck-breakdown curves plus shape commentary.
int run_breakdown_bench(const std::string& app);

/// Figure 7/10/13: Scal-Tool MP estimate vs the speedshop measurement.
int run_validation_bench(const std::string& app);

}  // namespace scaltool::bench
