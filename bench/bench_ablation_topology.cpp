// Ablation: interconnect topology.
//
// The model's tm(n) growth is the physical signature of the topology
// (Sec. 2.3). Swapping the Origin's bristled hypercube for a crossbar,
// ring or 2-D mesh changes tm(n) and therefore both the application's
// scaling and the fitted model parameters — grounding the Sec. 2.6
// "interconnection network" what-if in real topology changes.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const std::size_t s0 = bench::s0_for(bench::spec_for("t3dheat"));
  const auto procs = default_proc_counts(32);

  Table t("Topology ablation on t3dheat");
  t.header({"topology", "avg_hops@32", "tm_true@32", "tm_est@32",
            "speedup@32", "MP_pct@32"});

  for (const TopologyKind kind :
       {TopologyKind::kCrossbar, TopologyKind::kBristledHypercube,
        TopologyKind::kMesh2D, TopologyKind::kRing}) {
    MachineConfig cfg = MachineConfig::origin2000_scaled(1);
    cfg.network.topology = kind;
    ExperimentRunner runner(cfg);
    const ScalToolInputs inputs = runner.collect("t3dheat", s0, procs);
    const ScalabilityReport report = analyze(inputs);

    MachineConfig cfg32 = cfg;
    cfg32.num_procs = 32;
    const HypercubeNetwork net(32, cfg.network);
    const double speedup = inputs.base_run(1).execution_cycles /
                           inputs.base_run(32).execution_cycles;
    const BottleneckPoint& p = report.point(32);
    t.add_row({topology_name(kind), Table::cell(net.average_hops(), 2),
               Table::cell(cfg32.tm_ground_truth(), 1),
               Table::cell(report.model.tm_of(32), 1),
               Table::cell(speedup, 2),
               Table::cell(100.0 * p.mp_cost() / p.base_cycles, 1)});
  }
  t.print(std::cout, /*with_csv=*/true);
  std::cout << "Expected: longer-diameter topologies (ring > mesh > "
               "hypercube > crossbar) raise tm(32) and the synchronization "
               "wall, lowering the 32-processor speedup.\n";
  return 0;
}
