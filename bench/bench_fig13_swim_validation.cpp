// Figure 13: validation of the model for Swim.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 13: validation of the model for Swim\n";
  return scaltool::bench::run_validation_bench("swim");
}
