// Table 3: the runs needed to gather the empirical data for Scal-Tool,
// both analytically and as actually executed by the runner for T3dheat.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const bench::AppSpec spec = bench::spec_for("t3dheat");
  const std::size_t s0 = bench::s0_for(spec);

  run_matrix_table(s0, 32).print(std::cout, /*with_csv=*/true);

  // Cross-check against what the runner actually executed.
  const ScalToolInputs inputs = bench::collect_app("t3dheat", 32);
  std::cout << "Runner executed: " << inputs.base_runs.size()
            << " base runs, " << inputs.uni_runs.size()
            << " uniprocessor runs (sweep + t2/tm calibration), "
            << inputs.kernels.size() * 2
            << " kernel runs (amortized across applications).\n";
  std::cout << "Paper formula for n=6: 2n-1 = 11 application runs; the "
               "sweep sizes that overflow the L2 double as t2/tm "
               "triplets.\n";
  return 0;
}
