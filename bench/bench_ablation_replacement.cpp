// Ablation: cache replacement policy.
//
// Scal-Tool's conflict-miss isolation reads the real machine's tag-array
// behaviour through the hit-rate curves; it should be robust to *which*
// replacement policy produced them. This bench reruns the T3dheat analysis
// under true LRU, tree-PLRU and random replacement and compares the
// fitted parameters and the 1-processor L2Lim share.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const std::size_t s0 = bench::s0_for(bench::spec_for("t3dheat"));
  const auto procs = default_proc_counts(16);

  Table t("Replacement-policy ablation on t3dheat");
  t.header({"policy", "pi0", "t2", "tm1", "compulsory", "l2lim_pct@1",
            "l2lim_pct@16"});

  for (const ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kTreePlru,
        ReplacementPolicy::kRandom}) {
    MachineConfig cfg = MachineConfig::origin2000_scaled(1);
    cfg.l1.replacement = policy;
    cfg.l2.replacement = policy;
    ExperimentRunner runner(cfg);
    const ScalToolInputs inputs = runner.collect("t3dheat", s0, procs);
    const ScalabilityReport report = analyze(inputs);
    const BottleneckPoint& p1 = report.point(1);
    const BottleneckPoint& p16 = report.point(16);
    t.add_row({replacement_policy_name(policy),
               Table::cell(report.model.pi0, 3),
               Table::cell(report.model.t2, 2),
               Table::cell(report.model.tm1, 1),
               Table::cell(report.miss.compulsory_rate, 4),
               Table::cell(100.0 * p1.l2lim_cost() / p1.base_cycles, 1),
               Table::cell(100.0 * p16.l2lim_cost() / p16.base_cycles, 1)});
  }
  t.print(std::cout, /*with_csv=*/true);
  std::cout << "Expected: pi0/t2/tm1 are machine latencies and should be "
               "policy-invariant; the L2Lim share at 1 processor may shift "
               "a little (random replacement softens the streaming worst "
               "case) but the vanishing-by-16 shape must hold for all "
               "policies.\n";
  return 0;
}
