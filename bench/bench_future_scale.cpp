// Future work, implemented: "testing the tool for large numbers of
// processors" (Sec. 6). The full-map directory carries up to 64 sharers,
// so the whole pipeline — machine, kernels, model — runs at twice the
// paper's largest configuration. The t3dheat story must extrapolate:
// the synchronization wall keeps growing, the model keeps validating.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const std::size_t s0 = bench::s0_for(bench::spec_for("t3dheat"));
  ExperimentRunner runner = bench::make_runner();
  const ScalToolInputs inputs =
      runner.collect("t3dheat", s0, default_proc_counts(64));
  const ScalabilityReport report = analyze(inputs);

  Table t("t3dheat at 1..64 processors (2x the paper's machine)");
  t.header({"procs", "speedup", "MP_pct", "sync_share_of_MP_pct",
            "validation_diff_pct"});
  const double t1 = inputs.base_run(1).execution_cycles;
  for (const BottleneckPoint& p : report.points) {
    const ValidationRecord& v = inputs.validation_for(p.n);
    const double mp_est = p.sync_cost + p.imb_cost;
    const double est_curve = p.base_cycles - mp_est;
    const double meas_curve = v.accumulated_cycles - v.mp_cycles;
    const double diff = 100.0 * (est_curve - meas_curve) / p.base_cycles;
    const double mp = p.mp_cost();
    t.add_row({Table::cell(p.n),
               Table::cell(t1 / inputs.base_run(p.n).execution_cycles, 2),
               Table::cell(100.0 * mp / p.base_cycles, 1),
               Table::cell(mp > 0 ? 100.0 * p.sync_cost / mp : 0.0, 1),
               Table::cell(diff, 2)});
  }
  t.print(std::cout, /*with_csv=*/true);
  std::cout << "Expected: the synchronization wall deepens from 32 to 64 "
               "processors (speedup falls further) while the model's "
               "validation error stays bounded — the methodology "
               "extrapolates beyond the configurations the paper could "
               "test.\n";
  return 0;
}
