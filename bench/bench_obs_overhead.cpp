// Telemetry overhead gate: the cached-campaign path (every job a cache
// hit — the worst case for relative overhead, since the jobs themselves
// are nearly free) is timed with telemetry disabled, enabled, and
// enabled-with-tracing-and-flight-recorder (the full fleet observability
// stack from DESIGN.md §13). The bench takes the minimum over several
// warm passes per mode to shed scheduler noise, and fails loudly
// (exit 1) when either instrumented path costs more than 5% over the
// disabled one — with a small absolute floor so a microsecond-scale
// wobble on a fast machine cannot flake the gate.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common.hpp"
#include "common/table.hpp"
#include "engine/campaign.hpp"
#include "engine/engine_stats.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"

namespace scaltool::bench {
namespace {

constexpr const char* kCachePath = "/tmp/scaltool_bench_obs_cache.txt";
constexpr const char* kFdrPath = "/tmp/scaltool_bench_obs.fdr";
constexpr int kMaxProcs = 8;
constexpr int kPasses = 7;
constexpr double kMaxOverheadPct = 5.0;
// Below this absolute delta the 5% rule is noise, not signal.
constexpr double kNoiseFloorSeconds = 0.02;

int run() {
  const ExperimentRunner runner = make_runner();
  const std::size_t s0 = runner.base_config().l2.size_bytes;
  const std::vector<int> procs = default_proc_counts(kMaxProcs);
  CampaignOptions options;
  options.jobs = 4;
  options.cache_path = kCachePath;

  const auto collect_pass = [&] {
    EngineStats stats;
    (void)run_matrix_parallel(runner, "compute_kernel", s0, procs, options,
                              &stats);
  };

  std::cout << "# obs overhead: compute_kernel, s0 = " << format_bytes(s0)
            << ", procs 1.." << kMaxProcs << ", " << kPasses
            << " warm passes per mode\n";
  std::remove(kCachePath);
  collect_pass();  // cold pass: populate the cache

  double off = 1e300;
  for (int i = 0; i < kPasses; ++i)
    off = std::min(off, timed_seconds(collect_pass));

  double on = 1e300;
  for (int i = 0; i < kPasses; ++i) {
    obs::enable();  // fresh session per pass: the trace never accumulates
    on = std::min(on, timed_seconds(collect_pass));
    obs::disable();
  }

  // Full stack: telemetry + a propagated trace context + the mmapped
  // flight-recorder ring — the shape every span takes inside a fleet
  // worker launched with --obs --fdr.
  double full = 1e300;
  for (int i = 0; i < kPasses; ++i) {
    obs::enable();
    auto ring = std::make_unique<obs::FlightRecorder>(kFdrPath);
    obs::install_flight_recorder(ring.get());
    {
      obs::TraceScope scope(
          obs::TraceContext{obs::mint_trace_id("bench"), "bench"});
      full = std::min(full, timed_seconds(collect_pass));
    }
    obs::uninstall_flight_recorder();
    obs::disable();
  }
  std::remove(kCachePath);
  std::remove(kFdrPath);

  const auto verdict = [&](const char* mode, double secs) {
    const double delta = secs - off;
    const double pct = off > 0.0 ? 100.0 * delta / off : 0.0;
    const bool fail = pct > kMaxOverheadPct && delta > kNoiseFloorSeconds;
    if (fail)
      std::cout << "FAIL: " << mode << " telemetry costs " << pct
                << "% over disabled (budget " << kMaxOverheadPct << "%, "
                << delta << " s over the " << kNoiseFloorSeconds
                << " s noise floor)\n";
    return fail;
  };

  const double on_pct = off > 0.0 ? 100.0 * (on - off) / off : 0.0;
  const double full_pct = off > 0.0 ? 100.0 * (full - off) / off : 0.0;

  Table table("Telemetry overhead (warm cache, min of passes)");
  table.header({"mode", "wall_s"});
  table.add_row({"disabled", Table::cell(off, 4)});
  table.add_row({"enabled", Table::cell(on, 4)});
  table.add_row({"enabled+trace+fdr", Table::cell(full, 4)});
  table.print(std::cout, /*with_csv=*/true);
  const bool fail = [&] {
    // Evaluate both so a double regression prints both verdicts.
    const bool f1 = verdict("enabled", on);
    const bool f2 = verdict("enabled+trace+fdr", full);
    return f1 || f2;
  }();
  std::cout << "{\"bench\":\"obs_overhead\",\"disabled_s\":" << off
            << ",\"enabled_s\":" << on << ",\"full_s\":" << full
            << ",\"overhead_pct\":" << on_pct
            << ",\"full_overhead_pct\":" << full_pct
            << ",\"pass\":" << (fail ? "false" : "true") << "}\n";
  if (fail) return 1;
  std::cout << "PASS: enabled costs " << on_pct
            << "%, enabled+trace+fdr costs " << full_pct
            << "% over disabled (budget " << kMaxOverheadPct << "%)\n";
  return 0;
}

}  // namespace
}  // namespace scaltool::bench

int main() { return scaltool::bench::run(); }
