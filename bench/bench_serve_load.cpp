// Analysis-service load benchmark: closed-loop clients against the
// in-process AnalysisService, batched (shared run cache + single-flight)
// vs unbatched, plus an overload phase against a tight admission queue.
//
// The workload is the batcher's home turf: every request is a what-if over
// the same (app, machine-config) matrix with a different scaling factor,
// so the answers differ — no result-cache shortcut; the result cache is
// disabled outright for honesty — while the underlying sweep is shared.
// Batched, the campaign is simulated once and every other request replays
// it; unbatched, each request pays for its own campaign. Reported:
// throughput and p50/p99 latency per mode, the batched/unbatched
// throughput ratio (the acceptance bar is >= 2x at 8 clients), and the
// overload phase's shed count with the p99 of the requests that did run.
//
// The fleet phase compares the same closed-loop mix against one in-process
// service, a 1-shard fleet (the routing overhead bill: AF_UNIX hop + JSON
// + ring lookup, acceptance <= 5%) and a 4-shard fleet (acceptance >= 2x
// the single service — hard-gated only when the host actually has >= 4
// hardware threads; on smaller hosts the processes time-slice one core and
// the ratio is reported as a warning instead). A final phase SIGKILLs one
// worker mid-run: every request must still complete via ring failover, and
// the p99 across the restart window is reported.
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/monotime.hpp"
#include "common/table.hpp"
#include "serve/fleet/fleet.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace scaltool::bench {
namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 4;

/// The shared-sweep mix: one collection signature, distinct answers.
serve::Request whatif_request(int index) {
  serve::Request req;
  req.op = "whatif";
  req.args = {"swim",      "--size=2xL2",
              "--max-procs=4", "--iters=2",
              "--l2x=" + std::to_string(2 + index % 7)};
  return req;
}

struct LoadResult {
  double wall_seconds = 0.0;
  std::vector<double> latencies;  ///< completed requests only
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  serve::ServiceStats stats;
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t at = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(values.size())));
  return values[at];
}

/// Closed loop: every client fires its next request the moment the
/// previous one resolves. Offered load = clients / service latency.
LoadResult drive(const serve::ServiceOptions& options, int clients,
                 int requests_per_client) {
  serve::AnalysisService service(options);
  std::mutex mu;
  LoadResult result;
  const Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < requests_per_client; ++i) {
        const Stopwatch timer;
        const serve::Response r =
            service.call(whatif_request(c * requests_per_client + i));
        const double seconds = timer.seconds();
        std::lock_guard<std::mutex> lock(mu);
        if (r.status == serve::Status::kOverloaded) {
          ++result.shed;
        } else {
          ++result.completed;
          result.latencies.push_back(seconds);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = wall.seconds();
  service.shutdown();
  result.stats = service.stats();
  return result;
}

void report(const char* mode, const LoadResult& r, Table* table) {
  const double throughput =
      r.wall_seconds > 0.0
          ? static_cast<double>(r.completed) / r.wall_seconds
          : 0.0;
  table->add_row({mode, Table::cell(static_cast<double>(r.completed)),
                  Table::cell(static_cast<double>(r.shed)),
                  Table::cell(throughput),
                  Table::cell(percentile(r.latencies, 0.50), 3),
                  Table::cell(percentile(r.latencies, 0.99), 3),
                  Table::cell(static_cast<double>(r.stats.simulator_runs)),
                  Table::cell(
                      static_cast<double>(r.stats.cache_served_runs))});
  std::cout << "{\"bench\":\"serve_load\",\"mode\":\"" << mode
            << "\",\"completed\":" << r.completed << ",\"shed\":" << r.shed
            << ",\"throughput_rps\":" << throughput
            << ",\"p50_s\":" << percentile(r.latencies, 0.50)
            << ",\"p99_s\":" << percentile(r.latencies, 0.99)
            << ",\"simulator_runs\":" << r.stats.simulator_runs
            << ",\"cache_served_runs\":" << r.stats.cache_served_runs
            << "}\n";
}

double throughput_of(const LoadResult& r) {
  return r.wall_seconds > 0.0
             ? static_cast<double>(r.completed) / r.wall_seconds
             : 0.0;
}

/// Closed loop through the fleet front door; optionally SIGKILLs one
/// worker once a third of the offered load has completed.
LoadResult drive_fleet(serve::FleetOptions options, int clients,
                       int requests_per_client, bool kill_one_worker) {
  serve::Fleet fleet(std::move(options));
  fleet.supervisor().wait_ready(30000);
  std::mutex mu;
  LoadResult result;
  std::atomic<int> completed{0};
  std::atomic<bool> drained{false};
  const int offered = clients * requests_per_client;
  std::thread chaos;
  if (kill_one_worker) {
    chaos = std::thread([&fleet, &completed, &drained, offered] {
      while (completed.load() < offered / 3 && !drained.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const pid_t victim = fleet.supervisor().pid_of(0);
      if (victim > 0) ::kill(victim, SIGKILL);
    });
  }
  const Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < requests_per_client; ++i) {
        const Stopwatch timer;
        const serve::Response r =
            fleet.call(whatif_request(c * requests_per_client + i));
        const double seconds = timer.seconds();
        completed.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        if (r.exit_code == 0) {
          ++result.completed;
          result.latencies.push_back(seconds);
        } else {
          ++result.shed;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = wall.seconds();
  drained = true;
  if (chaos.joinable()) chaos.join();
  fleet.stop();
  return result;
}

void report_fleet(const char* mode, const LoadResult& r, Table* table) {
  table->add_row({mode, Table::cell(static_cast<double>(r.completed)),
                  Table::cell(static_cast<double>(r.shed)),
                  Table::cell(throughput_of(r)),
                  Table::cell(percentile(r.latencies, 0.50), 3),
                  Table::cell(percentile(r.latencies, 0.99), 3)});
  std::cout << "{\"bench\":\"serve_fleet\",\"mode\":\"" << mode
            << "\",\"completed\":" << r.completed
            << ",\"failed\":" << r.shed
            << ",\"throughput_rps\":" << throughput_of(r)
            << ",\"p50_s\":" << percentile(r.latencies, 0.50)
            << ",\"p99_s\":" << percentile(r.latencies, 0.99) << "}\n";
}

int fleet_phase() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "\n# serve fleet: one service vs 1- and 4-shard fleets ("
            << cores << " hardware threads), then a kill-a-shard phase\n";

  serve::ServiceOptions worker;
  worker.workers = 2;
  worker.engine_jobs = 1;
  worker.max_queue = 64;
  worker.result_cache_entries = 0;
  const auto fleet_options = [&worker](int shards, const std::string& tag) {
    serve::FleetOptions options;
    options.supervisor.shards = shards;
    options.supervisor.socket_dir =
        "/tmp/scaltool_bench_fleet_" + tag + "_" + std::to_string(::getpid());
    ::mkdir(options.supervisor.socket_dir.c_str(), 0777);
    options.supervisor.worker = worker;
    return options;
  };

  Table table("Fleet under load");
  table.header({"mode", "completed", "failed", "rps", "p50_s", "p99_s"});

  const LoadResult single = drive(worker, kClients, kRequestsPerClient);
  report_fleet("single", single, &table);
  const LoadResult one_shard =
      drive_fleet(fleet_options(1, "one"), kClients, kRequestsPerClient,
                  /*kill_one_worker=*/false);
  report_fleet("fleet-1", one_shard, &table);
  const LoadResult four_shards =
      drive_fleet(fleet_options(4, "four"), kClients, kRequestsPerClient,
                  /*kill_one_worker=*/false);
  report_fleet("fleet-4", four_shards, &table);
  const LoadResult drill =
      drive_fleet(fleet_options(4, "drill"), kClients, kRequestsPerClient,
                  /*kill_one_worker=*/true);
  report_fleet("fleet-4-kill", drill, &table);
  table.print(std::cout, /*with_csv=*/true);

  const double overhead =
      throughput_of(single) > 0.0
          ? 1.0 - throughput_of(one_shard) / throughput_of(single)
          : 0.0;
  const double speedup = throughput_of(single) > 0.0
                             ? throughput_of(four_shards) /
                                   throughput_of(single)
                             : 0.0;
  const double p99_kill_over_steady =
      percentile(four_shards.latencies, 0.99) > 0.0
          ? percentile(drill.latencies, 0.99) /
                percentile(four_shards.latencies, 0.99)
          : 0.0;
  std::cout << "{\"bench\":\"serve_fleet_summary\",\"router_overhead\":"
            << overhead << ",\"fleet4_over_single\":" << speedup
            << ",\"kill_p99_over_steady_p99\":" << p99_kill_over_steady
            << ",\"hw_threads\":" << cores << "}\n";
  std::cout << "fleet-4 speedup over single: " << speedup
            << "x (acceptance bar: >= 2x on hosts with >= 4 hardware "
               "threads); 1-shard routing overhead: "
            << overhead * 100.0 << "% (bar: <= 5%)\n";

  int rc = 0;
  // Every request must survive the kill — failover is correctness, so
  // this gate holds regardless of host size.
  if (drill.completed != kClients * kRequestsPerClient) {
    std::cout << "FAIL: " << drill.shed
              << " requests lost across the worker kill\n";
    rc = 1;
  }
  // The scaling and overhead bars are meaningful only when the shards can
  // actually run in parallel; on smaller hosts they degrade to warnings.
  if (cores >= 4) {
    if (speedup < 2.0) {
      std::cout << "FAIL: 4-shard fleet below the 2x bar\n";
      rc = 1;
    }
    if (overhead > 0.05) {
      std::cout << "FAIL: 1-shard routing overhead above the 5% bar\n";
      rc = 1;
    }
  } else {
    if (speedup < 2.0)
      std::cout << "WARNING: 4-shard speedup " << speedup << "x below 2x ("
                << cores << " hardware threads: shards time-slice)\n";
    if (overhead > 0.05)
      std::cout << "WARNING: routing overhead " << overhead * 100.0
                << "% above 5% (timing noise on a small host)\n";
  }
  return rc;
}

int run() {
  std::cout << "# serve load: " << kClients << " closed-loop clients x "
            << kRequestsPerClient
            << " what-if requests over one shared sweep\n";

  serve::ServiceOptions base;
  base.workers = bench_jobs();
  base.max_queue = 64;
  base.result_cache_entries = 0;  // no rendered-bytes shortcut

  Table table("Analysis service under load");
  table.header({"mode", "completed", "shed", "rps", "p50_s", "p99_s",
                "sim_runs", "cached_runs"});

  serve::ServiceOptions batched = base;
  batched.batching = true;
  const LoadResult with_batching =
      drive(batched, kClients, kRequestsPerClient);
  report("batched", with_batching, &table);

  serve::ServiceOptions unbatched = base;
  unbatched.batching = false;
  const LoadResult without_batching =
      drive(unbatched, kClients, kRequestsPerClient);
  report("unbatched", without_batching, &table);

  // Overload: same client count against one worker and four seats. The
  // interesting number is the p99 of the requests that DID run — bounded
  // because queueing time is capped by the admission bound, not growing
  // with offered load.
  serve::ServiceOptions tight = base;
  tight.batching = true;
  tight.workers = 1;
  tight.max_queue = 4;
  const LoadResult overloaded =
      drive(tight, kClients, kRequestsPerClient);
  report("overload", overloaded, &table);

  table.print(std::cout, /*with_csv=*/true);

  const double batched_rps =
      with_batching.wall_seconds > 0.0
          ? static_cast<double>(with_batching.completed) /
                with_batching.wall_seconds
          : 0.0;
  const double unbatched_rps =
      without_batching.wall_seconds > 0.0
          ? static_cast<double>(without_batching.completed) /
                without_batching.wall_seconds
          : 0.0;
  const double ratio =
      unbatched_rps > 0.0 ? batched_rps / unbatched_rps : 0.0;
  const double p99_ratio =
      percentile(with_batching.latencies, 0.99) > 0.0
          ? percentile(overloaded.latencies, 0.99) /
                percentile(with_batching.latencies, 0.99)
          : 0.0;
  std::cout << "{\"bench\":\"serve_load_summary\",\"batched_over_unbatched\":"
            << ratio << ",\"overload_p99_over_saturation_p99\":" << p99_ratio
            << "}\n";
  std::cout << "batching speedup at " << kClients << " clients: " << ratio
            << "x (acceptance bar: >= 2x)\n";
  int rc = 0;
  if (ratio < 2.0) {
    std::cout << "WARNING: batched throughput below the 2x bar\n";
    rc = 1;
  }
  if (fleet_phase() != 0) rc = 1;
  return rc;
}

}  // namespace
}  // namespace scaltool::bench

int main() { return scaltool::bench::run(); }
