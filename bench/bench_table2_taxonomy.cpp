// Table 2: the bottleneck taxonomy, cross-checked against the simulator —
// each bottleneck is provoked by a targeted microkernel and its signature
// effect (conflict misses, coherence misses, extra instructions) is shown
// in the ground-truth counters.
#include <iostream>

#include "apps/apps.hpp"
#include "common.hpp"

int main() {
  using namespace scaltool;
  ExperimentRunner runner = bench::make_runner();
  const std::size_t l2 = runner.base_config().l2.size_bytes;

  Table t("Table 2: bottlenecks, their effects, and the kernel that "
          "demonstrates each on the simulator");
  t.header({"bottleneck", "paper effect", "kernel", "observed"});

  {
    // Insufficient caching space → conflict misses: stream 4× the L2.
    const RunResult r = runner.run_full("stream_kernel", 4 * l2, 1);
    const auto gt = r.truth.aggregate();
    t.add_row({"insufficient caching space", "conflict misses",
               "stream_kernel 4xL2",
               Table::cell(gt.conflict_misses) + " conflict misses"});
  }
  {
    // Synchronization → coherence misses + extra instructions.
    const RunResult r = runner.run_full("sync_kernel", 1_KiB, 8);
    const auto gt = r.truth.aggregate();
    t.add_row({"synchronization", "coherence misses + extra instructions",
               "sync_kernel p=8",
               Table::cell(gt.sync_instr) + " sync instructions, " +
                   Table::cell(r.counters.aggregate().get(
                       EventId::kStoreToShared)) +
                   " stores-to-shared"});
  }
  {
    // Load imbalance → extra (spin) instructions.
    const RunResult r = runner.run_full("spin_kernel", 1_KiB, 8);
    const auto gt = r.truth.aggregate();
    t.add_row({"load imbalance", "extra instructions", "spin_kernel p=8",
               Table::cell(gt.spin_instr) + " spin instructions"});
  }
  {
    // True sharing → coherence misses.
    const RunResult r = runner.run_full("sharing_kernel", l2 / 2, 8);
    const auto gt = r.truth.aggregate();
    t.add_row({"true/false sharing", "coherence misses",
               "sharing_kernel p=8",
               Table::cell(gt.coherence_misses) + " coherence misses"});
  }
  t.print(std::cout);
  return 0;
}
