// Figures 1/2: the model's execution-time curves — Base, Base−L2Lim,
// Base−L2Lim−MP — and the CPI breakdown behind them, illustrated on
// T3dheat exactly as the paper's schematic describes.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const bench::AppAnalysis a = bench::analyze_app("t3dheat", 32);

  Table t("Fig. 1/2: execution-time curves for t3dheat "
          "(per-processor cycles = accumulated / n)");
  t.header({"procs", "Base", "Base-L2Lim", "Base-L2Lim-MP",
            "cpi_base", "cpi_inf", "cpi_inf_inf"});
  for (const BottleneckPoint& p : a.report.points) {
    t.add_row({Table::cell(p.n), Table::cell(p.base_cycles / p.n / 1e6, 3),
               Table::cell(p.cycles_no_l2lim / p.n / 1e6, 3),
               Table::cell(p.cycles_no_l2lim_no_mp / p.n / 1e6, 3),
               Table::cell(p.cpi_base, 3), Table::cell(p.cpi_inf, 3),
               Table::cell(p.cpi_inf_inf, 3)});
  }
  t.print(std::cout, /*with_csv=*/true);
  std::cout << "Shape check (Fig. 1): the L2Lim gap is largest at 1 "
               "processor and vanishes at high counts; the MP gap is zero "
               "at 1 processor and grows with the count.\n";
  return 0;
}
