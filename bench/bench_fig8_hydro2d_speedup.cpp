// Figure 8: Hydro2d speedups.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 8: Hydro2d speedups\n";
  return scaltool::bench::run_speedup_bench("hydro2d");
}
