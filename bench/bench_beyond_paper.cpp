// Beyond the paper: Scal-Tool applied to two workloads the paper never
// saw — an FFT (all-to-all transpose: communication-bound) and a blocked
// LU factorization (shrinking parallelism: imbalance that *grows* with
// progress). The tool should attribute each to the right bottleneck with
// no per-application tuning, demonstrating the generality the paper
// claims ("we hope that Scal-Tool is useful to programmers early in the
// game").
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  ExperimentRunner runner = bench::make_runner();
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const auto procs = default_proc_counts(32);

  struct Case {
    const char* app;
    std::size_t s0;
    const char* expectation;
  } cases[] = {
      {"fft", 8 * l2,
       "communication-bound: coherence (sharing) + sync grow with n"},
      {"lu", 8 * l2,
       "imbalance-bound: panel serialization + shrinking trailing updates"},
  };

  for (const Case& c : cases) {
    const ScalToolInputs inputs = runner.collect(c.app, c.s0, procs);
    AnalyzeOptions opt;
    opt.model_sharing = true;  // FFT needs the sharing extension
    const ScalabilityReport report = analyze(inputs, opt);

    Table t(std::string("Scal-Tool on ") + c.app + " (" + c.expectation +
            ")");
    t.header({"procs", "speedup", "Base_M", "l2lim_pct", "sync_pct",
              "imb_pct", "sharing_pct"});
    const double t1 = inputs.base_run(1).execution_cycles;
    for (const BottleneckPoint& p : report.points) {
      const double base = p.base_cycles;
      t.add_row(
          {Table::cell(p.n),
           Table::cell(t1 / inputs.base_run(p.n).execution_cycles, 2),
           Table::cell(base / 1e6, 3),
           Table::cell(100.0 * p.l2lim_cost() / base, 1),
           Table::cell(100.0 * p.sync_cost / base, 1),
           Table::cell(100.0 * p.imb_cost / base, 1),
           Table::cell(100.0 * p.sharing_cost / base, 1)});
    }
    t.print(std::cout, /*with_csv=*/true);
  }
  std::cout << "Expected: fft's sharing+sync share rises with n (the "
               "transpose all-to-all); lu's imbalance share dominates and "
               "grows (panel serialization over a shrinking trailing "
               "matrix).\n";
  return 0;
}
