// Section 2.6: latency what-ifs — faster/slower L2 (t2), memory and
// interconnect (tm), synchronization (t_syn) and issue width (pi0) — each
// validated against re-running the application on a machine with the
// modified parameter.
#include <iostream>

#include "common.hpp"

namespace {

using namespace scaltool;

void check_scenario(const bench::AppAnalysis& a, const WhatIfParams& params,
                    const MachineConfig& modified, const std::string& label) {
  const WhatIfResult pred = what_if(a.report, a.inputs, params);
  ExperimentRunner rerunner(modified);

  Table t("what-if '" + label + "' vs re-run (" + a.inputs.app + ")");
  t.header({"procs", "pred_Mcycles", "rerun_Mcycles", "err_pct",
            "pred_speed_ratio"});
  for (const WhatIfPoint& p : pred.points) {
    const RunRecord rerun = rerunner.run(a.inputs.app, a.inputs.s0, p.n);
    const double rr = rerun.metrics.cycles;
    const double err = rr > 0.0 ? 100.0 * (p.cycles - rr) / rr : 0.0;
    t.add_row({Table::cell(p.n), Table::cell(p.cycles / 1e6, 3),
               Table::cell(rr / 1e6, 3), Table::cell(err, 1),
               Table::cell(p.speed_ratio, 3)});
  }
  t.print(std::cout, /*with_csv=*/true);
}

}  // namespace

int main() {
  using namespace scaltool;
  const bench::AppAnalysis a = bench::analyze_app("t3dheat", 16);
  const MachineConfig base = MachineConfig::origin2000_scaled(1);

  {
    WhatIfParams p;  // identity self-check: should reproduce Base exactly
    const WhatIfResult r = what_if(a.report, a.inputs, p);
    whatif_table(r, "identity (self-check; speedup_vs_base should be 1)")
        .print(std::cout, /*with_csv=*/true);
  }
  {
    WhatIfParams p;
    p.t2_scale = 2.0;
    MachineConfig m = base;
    m.l2_hit_cycles *= 2.0;
    check_scenario(a, p, m, "L2 cache 2x slower (t2x2)");
  }
  {
    WhatIfParams p;
    p.tm_scale = 0.5;
    MachineConfig m = base;
    m.mem_cycles *= 0.5;
    m.network.hop_cycles *= 0.5;
    m.network.router_cycles *= 0.5;
    check_scenario(a, p, m, "memory+interconnect 2x faster (tm/2)");
  }
  {
    WhatIfParams p;
    p.pi0_scale = 0.5;
    MachineConfig m = base;
    m.base_cpi *= 0.5;
    check_scenario(a, p, m, "double issue width (pi0/2)");
  }
  return 0;
}
