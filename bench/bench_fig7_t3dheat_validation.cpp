// Figure 7: validation of the model for T3dheat.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 7: validation of the model for T3dheat\n";
  return scaltool::bench::run_validation_bench("t3dheat");
}
