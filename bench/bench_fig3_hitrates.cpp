// Figure 3: (a) the uniprocessor L2 hit rate vs data-set size sweep that
// yields the compulsory miss rate; (b) the reconstructed
// L2hitr_inf(s0, n) against the measured multiprocessor hit rate.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const bench::AppAnalysis a = bench::analyze_app("t3dheat", 32);
  hitrate_sweep_table(a.inputs, a.report).print(std::cout, /*with_csv=*/true);
  hitrate_vs_procs_table(a.report).print(std::cout, /*with_csv=*/true);
  std::cout << "Shape check: (a) hit rate rises as the data set shrinks, "
               "peaks at s_max, then droops for tiny sets; (b) "
               "L2hitr_inf starts above the measured curve (conflict "
               "misses) and the two converge at high processor counts.\n";
  return 0;
}
