// Campaign-engine scaling: wall time of the Table 3 collection for swim at
// --jobs 1/2/4/8 (no cache, so every point really runs), then a cold/warm
// pass against a persistent run cache to show the warm pass performs zero
// simulator runs. Emits one JSON line per measurement for dashboards next
// to the human-readable tables.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/table.hpp"
#include "engine/campaign.hpp"
#include "engine/engine_stats.hpp"

namespace scaltool::bench {
namespace {

constexpr int kMaxProcs = 8;
constexpr const char* kCachePath = "/tmp/scaltool_bench_engine_cache.txt";

int run() {
  const AppSpec spec = spec_for("swim");
  const ExperimentRunner runner = make_runner();
  const std::size_t s0 = s0_for(spec);
  const std::vector<int> procs = default_proc_counts(kMaxProcs);
  std::cout << "# engine scaling: swim, s0 = " << format_bytes(s0)
            << ", procs 1.." << kMaxProcs << "\n";

  Table scaling("Engine scaling (swim Table 3 matrix, cold cache)");
  scaling.header({"jobs", "wall_s", "speedup_vs_1", "jobs_run", "util_%"});
  double wall_1 = 0.0;
  for (const int jobs : {1, 2, 4, 8}) {
    CampaignOptions options;
    options.jobs = jobs;
    EngineStats stats;
    (void)run_matrix_parallel(runner, spec.name, s0, procs, options, &stats);
    if (jobs == 1) wall_1 = stats.wall_seconds;
    const double speedup =
        stats.wall_seconds > 0.0 ? wall_1 / stats.wall_seconds : 0.0;
    scaling.add_row({Table::cell(jobs), Table::cell(stats.wall_seconds),
                     Table::cell(speedup), Table::cell(stats.jobs_run),
                     Table::cell(100.0 * stats.utilization())});
    std::cout << "{\"bench\":\"engine_scaling\",\"app\":\"swim\",\"jobs\":"
              << jobs << ",\"wall_s\":" << stats.wall_seconds
              << ",\"speedup_vs_1\":" << speedup
              << ",\"jobs_run\":" << stats.jobs_run << "}\n";
  }
  scaling.print(std::cout, /*with_csv=*/true);

  // Cold vs warm persistent cache: the warm pass must run nothing.
  std::remove(kCachePath);
  Table cache("Persistent run cache (4 workers)");
  cache.header({"pass", "hit_%", "jobs_run", "jobs_cached", "wall_s"});
  for (const std::string pass : {"cold", "warm"}) {
    CampaignOptions options;
    options.jobs = 4;
    options.cache_path = kCachePath;
    EngineStats stats;
    (void)run_matrix_parallel(runner, spec.name, s0, procs, options, &stats);
    cache.add_row({pass,
                   Table::cell(100.0 * stats.cache_hit_rate()),
                   Table::cell(stats.jobs_run), Table::cell(stats.jobs_cached),
                   Table::cell(stats.wall_seconds)});
    std::cout << "{\"bench\":\"engine_cache\",\"pass\":\"" << pass
              << "\",\"hit_rate\":" << stats.cache_hit_rate()
              << ",\"jobs_run\":" << stats.jobs_run
              << ",\"jobs_cached\":" << stats.jobs_cached << "}\n";
  }
  cache.print(std::cout, /*with_csv=*/true);
  std::remove(kCachePath);
  return 0;
}

}  // namespace
}  // namespace scaltool::bench

int main() { return scaltool::bench::run(); }
