// Figure 4: cpi_inf_inf(s0, n) — the CPI with neither cache-space limits
// nor multiprocessor factors — grows with the processor count because
// tm(n) grows with the machine's physical size.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const bench::AppAnalysis a = bench::analyze_app("t3dheat", 32);
  cpi_infinf_table(a.report).print(std::cout, /*with_csv=*/true);
  std::cout << "Shape check: cpi_inf_inf rises monotonically with n, "
               "driven by tm(n).\n";
  return 0;
}
