// Google-benchmark microbenchmarks of the simulator's hot paths: cache
// lookups, directory transactions, the barrier model, least squares, and
// a full small application run. These guard the simulator's throughput —
// the property that makes Scal-Tool's whole-matrix collection cheap.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/apps.hpp"
#include "cache/cache.hpp"
#include "coherence/directory.hpp"
#include "common.hpp"
#include "common/rng.hpp"
#include "math/least_squares.hpp"
#include "machine/dsm_machine.hpp"
#include "memory/tlb.hpp"
#include "sync/barrier_model.hpp"
#include "trace/registry.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace scaltool;

void BM_CacheHit(benchmark::State& state) {
  Cache cache(CacheConfig{64_KiB, 4, 64});
  for (Addr a = 0; a < 32_KiB; a += 64) cache.insert(a, LineState::kShared);
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.probe(a));
    cache.touch(a);
    a = (a + 64) % 32_KiB;
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissEvict(benchmark::State& state) {
  Cache cache(CacheConfig{8_KiB, 2, 64});
  Addr a = 0;
  for (auto _ : state) {
    if (cache.probe(a) == LineState::kInvalid)
      benchmark::DoNotOptimize(cache.insert(a, LineState::kShared));
    a += 64;  // endless streaming: every access allocates + evicts
  }
}
BENCHMARK(BM_CacheMissEvict);

void BM_DirectoryReadWriteCycle(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  Directory dir(procs);
  Addr line = 0;
  for (auto _ : state) {
    for (int p = 0; p < procs; ++p) dir.read_miss(line, p);
    dir.write_access(line, 0);
    dir.evict(line, 0);
    line += 64;
  }
}
BENCHMARK(BM_DirectoryReadWriteCycle)->Arg(4)->Arg(32);

void BM_BarrierModel(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  Rng rng(42);
  std::vector<double> arrivals(procs);
  for (double& a : arrivals) a = rng.next_double() * 1e4;
  const SyncConfig cfg;
  for (auto _ : state)
    benchmark::DoNotOptimize(barrier_cost(arrivals, 130.0, 1.0, cfg));
}
BENCHMARK(BM_BarrierModel)->Arg(4)->Arg(32);

void BM_LeastSquaresFit(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> h2, hm, y;
  for (int i = 0; i < 8; ++i) {
    h2.push_back(0.01 + rng.next_double() * 0.02);
    hm.push_back(0.002 + rng.next_double() * 0.01);
    y.push_back(h2.back() * 12 + hm.back() * 130);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(fit_two_latencies(h2, hm, y));
}
BENCHMARK(BM_LeastSquaresFit);

void BM_TlbAccess(benchmark::State& state) {
  Tlb tlb(64, 1024);
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access(a));
    a += 512;  // every other access a new page
  }
}
BENCHMARK(BM_TlbAccess);

void BM_TraceReplaySwim(benchmark::State& state) {
  register_standard_workloads();
  RecordingWorkload recorder(
      WorkloadRegistry::instance().create("swim"));
  DsmMachine rec_machine(MachineConfig::origin2000_scaled(4));
  WorkloadParams params;
  params.dataset_bytes = 64_KiB;
  params.iterations = 2;
  rec_machine.run(recorder, params);
  const Trace trace = recorder.trace();
  for (auto _ : state) {
    TraceWorkload replay{Trace(trace)};
    DsmMachine machine(MachineConfig::origin2000_scaled(4));
    benchmark::DoNotOptimize(machine.run(replay, params).execution_cycles);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(trace.total_ops()));
}
BENCHMARK(BM_TraceReplaySwim)->Unit(benchmark::kMillisecond);

void BM_FullRunSwimSmall(benchmark::State& state) {
  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  const std::size_t s0 = runner.base_config().l2.size_bytes;  // 1× L2
  for (auto _ : state) {
    const RunRecord r = runner.run("swim", s0, 8);
    benchmark::DoNotOptimize(r.metrics.cpi);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullRunSwimSmall)->Unit(benchmark::kMillisecond);

}  // namespace
