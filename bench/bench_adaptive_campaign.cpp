// Adaptive-vs-full campaign gate: for each of the paper's three
// applications, the adaptive planner must land on the full-matrix model —
// every probe the stopping rule watches within its tolerance of the
// answer the complete Table 3 matrix gives — while scheduling at most
// 60% of the matrix. Run as a hard gate in CI: any app that misses
// either bound fails the binary.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/table.hpp"
#include "core/whatif.hpp"
#include "engine/campaign.hpp"
#include "engine/engine_stats.hpp"
#include "plan/planner.hpp"

namespace scaltool::bench {
namespace {

constexpr int kMaxProcs = 32;
constexpr double kTolerance = 0.10;
constexpr double kRunBudget = 0.60;  ///< of the full matrix

/// The planner's probe metric: relative for answers above 1, absolute
/// below (the same formula its stopping rule applies between steps).
double probe_delta(double a, double b) {
  return std::fabs(a - b) / std::max(1.0, std::fabs(b));
}

struct ProbeSet {
  double t2 = 0.0, tm1 = 0.0, pi0 = 0.0;
  double l2x2 = 0.0, l2x4 = 0.0;  ///< what-if speed ratios at max n
};

ProbeSet probes_of(const ScalToolInputs& inputs) {
  const ScalabilityReport report = analyze(inputs);
  ProbeSet p;
  p.t2 = report.model.t2;
  p.tm1 = report.model.tm1;
  p.pi0 = report.model.pi0;
  const int last = report.points.back().n;
  for (double k : {2.0, 4.0}) {
    WhatIfParams params;
    params.l2_scale_k = k;
    const double ratio =
        what_if(report, inputs, params).point(last).speed_ratio;
    (k == 2.0 ? p.l2x2 : p.l2x4) = ratio;
  }
  return p;
}

int run() {
  std::cout << "# adaptive campaign gate: <= " << (kRunBudget * 100)
            << "% of the matrix, every probe within " << kTolerance
            << " of the full-matrix answer\n";
  Table table("Adaptive vs full campaign (tolerance " +
              std::to_string(kTolerance) + ")");
  table.header({"app", "runs_full", "runs_adaptive", "used_%", "picks",
                "stop", "max_probe_delta", "gate"});
  int failures = 0;

  for (const std::string app : {"t3dheat", "hydro2d", "swim"}) {
    const AppSpec spec = spec_for(app);
    const ExperimentRunner runner = make_runner();
    const std::size_t s0 = s0_for(spec);

    // The reference: the complete Table 3 matrix.
    const ProbeSet full = probes_of(collect_app(app, kMaxProcs));

    // The contender: same machine, same grid, adaptive schedule. The
    // shared bench cache only saves wall time — runs_used counts every
    // scheduled job, cached or not.
    CampaignOptions engine_options;
    engine_options.jobs = bench_jobs();
    engine_options.cache_path = bench_cache_path();
    plan::PlannerOptions planner_options;
    planner_options.tolerance = kTolerance;
    plan::AdaptivePlanner planner(runner, engine_options, planner_options);
    const plan::PlannerResult result =
        planner.run(app, s0, default_proc_counts(kMaxProcs));
    const ProbeSet adaptive = probes_of(result.inputs);

    const double used =
        static_cast<double>(result.runs_used) / result.runs_total;
    double delta = probe_delta(adaptive.t2, full.t2);
    delta = std::max(delta, probe_delta(adaptive.tm1, full.tm1));
    delta = std::max(delta, probe_delta(adaptive.pi0, full.pi0));
    delta = std::max(delta, probe_delta(adaptive.l2x2, full.l2x2));
    delta = std::max(delta, probe_delta(adaptive.l2x4, full.l2x4));

    const bool pass = used <= kRunBudget && delta <= kTolerance;
    if (!pass) ++failures;
    table.add_row({app, Table::cell(result.runs_total),
                   Table::cell(result.runs_used), Table::cell(100.0 * used),
                   Table::cell(result.steps),
                   plan::stop_reason_name(result.stop), Table::cell(delta),
                   pass ? "PASS" : "FAIL"});
    std::cout << "{\"bench\":\"adaptive_campaign\",\"app\":\"" << app
              << "\",\"runs_full\":" << result.runs_total
              << ",\"runs_adaptive\":" << result.runs_used
              << ",\"used_frac\":" << used << ",\"picks\":" << result.steps
              << ",\"max_probe_delta\":" << delta
              << ",\"pass\":" << (pass ? "true" : "false") << "}\n";
  }

  table.print(std::cout, /*with_csv=*/true);
  if (failures > 0) {
    std::cout << "FAIL: " << failures
              << " app(s) missed the adaptive-campaign gate\n";
    return 1;
  }
  std::cout << "PASS: adaptive campaigns matched the full matrix on all "
               "three apps within budget\n";
  return 0;
}

}  // namespace
}  // namespace scaltool::bench

int main() { return scaltool::bench::run(); }
