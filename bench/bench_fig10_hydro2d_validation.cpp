// Figure 10: validation of the model for Hydro2d.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 10: validation of the model for Hydro2d\n";
  return scaltool::bench::run_validation_bench("hydro2d");
}
