// Ablation: Illinois/MESI vs plain MSI.
//
// The Origin runs the Illinois protocol [14]; its E state makes the first
// store to privately-read data silent. Under MSI every such store is an
// ownership upgrade that (a) costs cycles and (b) ticks the very
// store-to-shared counter Scal-Tool's Eq. 10 interprets as
// synchronization. This bench quantifies both effects on the three
// applications — evidence for the paper's premise that nt_syn is "largely
// incremented by synchronization operations" specifically *because* the
// machine is Illinois.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;

  Table t("Protocol ablation: Illinois/MESI vs MSI (32 processors)");
  t.header({"app", "protocol", "nt_syn", "upgrade_share_pct",
            "exec_Mcycles", "slowdown_pct"});

  for (const char* app : {"t3dheat", "hydro2d", "swim"}) {
    const std::size_t s0 = bench::s0_for(bench::spec_for(app));
    double mesi_exec = 0.0;
    double mesi_ntsyn = 0.0;
    for (const bool mesi : {true, false}) {
      MachineConfig cfg = MachineConfig::origin2000_scaled(1);
      cfg.exclusive_state = mesi;
      ExperimentRunner runner(cfg);
      const RunResult r = runner.run_full(app, s0, 32);
      const double ntsyn =
          r.counters.aggregate().get(EventId::kStoreToShared);
      if (mesi) {
        mesi_exec = r.execution_cycles;
        mesi_ntsyn = ntsyn;
      }
      const double slowdown =
          mesi ? 0.0
               : 100.0 * (r.execution_cycles - mesi_exec) / mesi_exec;
      // Barrier fetchops and retries are protocol-independent; the delta
      // against MESI is the data-upgrade share.
      const double upgrade_share =
          mesi || ntsyn == 0.0 ? 0.0
                               : 100.0 * (ntsyn - mesi_ntsyn) / ntsyn;
      t.add_row({app, mesi ? "MESI" : "MSI", Table::cell(ntsyn),
                 Table::cell(upgrade_share, 1),
                 Table::cell(r.execution_cycles / 1e6, 3),
                 Table::cell(slowdown, 2)});
    }
  }
  t.print(std::cout, /*with_csv=*/true);
  std::cout << "Expected: MSI inflates nt_syn with data upgrades and slows "
               "execution; the Illinois E state keeps nt_syn dominated by "
               "synchronization, which is what makes Eq. 10 usable.\n";
  return 0;
}
