// Table 4: characteristics of the applications analyzed — measured on the
// simulator (speedup at 32, balance, data-set size via ssusage, model of
// parallelism).
#include <iostream>

#include "common.hpp"
#include "common/stats.hpp"
#include "tools/ssusage.hpp"
#include "trace/registry.hpp"

int main() {
  using namespace scaltool;
  ExperimentRunner runner = bench::make_runner();

  Table t("Table 4: characteristics of the applications analyzed "
          "(measured on the scaled machine)");
  t.header({"application", "what it does", "speedup@32", "balance",
            "data set", "model"});

  const struct {
    const char* name;
    const char* what;
  } rows[] = {
      {"t3dheat", "PDE solver using conjugate gradient"},
      {"hydro2d", "shallow water simulation"},
      {"swim", "Navier Stokes / shallow water"},
  };

  for (const auto& row : rows) {
    const bench::AppSpec spec = bench::spec_for(row.name);
    const std::size_t s0 = bench::s0_for(spec);
    const RunResult r1 = runner.run_full(row.name, s0, 1);
    const RunResult r32 = runner.run_full(row.name, s0, 32);
    const double speedup = r1.execution_cycles / r32.execution_cycles;
    // Balance from the per-processor non-idle cycles at 32 processors.
    std::vector<double> busy;
    for (const auto& gt : r32.truth.per_proc)
      busy.push_back(gt.compute_cycles + gt.mem_stall_cycles);
    const double imb = imbalance_factor(busy);
    const auto w = WorkloadRegistry::instance().create(row.name);
    t.add_row({row.name, row.what, Table::cell(speedup, 1),
               imb < 0.1 ? "good" : "poor (serial sections)",
               format_bytes(ssusage(r32).max_bytes),
               parallelism_model_name(w->parallelism_model())});
  }
  t.print(std::cout, /*with_csv=*/false);
  std::cout << "Paper: t3dheat excellent to 16 then poor; hydro2d ~9@32; "
               "swim ~24@32.\n";
  return 0;
}
