// Table 1: resources needed by the existing performance tools vs Scal-Tool
// to obtain synchronization + load-imbalance costs for processor counts
// 1, 2, 4, ..., 2^(n−1).
#include <iostream>

#include "common.hpp"
#include "tools/counter_schedule.hpp"

int main() {
  using namespace scaltool;
  std::cout << "Reproduces Table 1 of the paper (analytic resource "
               "accounting).\n\n";
  for (int n : {4, 6, 8}) {
    resource_table(n).print(std::cout, /*with_csv=*/true);
  }
  std::cout << "Paper headline (n=6, up to 32 processors): Scal-Tool needs "
               "about 50% of the processors and fewer files.\n";
  const ResourceCost ours = scal_tool_cost(6);
  const ResourceCost theirs = existing_tools_cost(6);
  std::cout << "Measured here: " << ours.processors << " vs "
            << theirs.processors << " processors ("
            << Table::cell(100.0 * ours.processors / theirs.processors, 1)
            << "%), " << ours.runs << " vs " << theirs.runs << " runs, "
            << ours.files << " vs " << theirs.files << " files.\n\n";

  // Real-hardware footnote: the R10000 counts only two events at a time,
  // so each Scal-Tool run needs several counter passes (or one multiplexed
  // run) to capture the whole event set.
  const auto events = scal_tool_event_set();
  const CounterSchedule schedule = schedule_events(events, 2);
  schedule_table(schedule).print(std::cout);
  std::cout << "On a 2-counter R10000, gathering all "
            << events.size() << " events exactly costs "
            << hardware_pass_multiplier(2)
            << " passes per run (or one run with counter multiplexing at "
               "reduced accuracy); the simulator records everything in one "
               "pass.\n";
  return 0;
}
