// Section 2.6 ablation: the what-if prediction for a k× larger L2 cache,
// validated against actually re-running the application on a machine with
// the bigger cache — the experiment the paper says the model makes
// unnecessary ("Note that we do not re-run the application").
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const std::string app = "t3dheat";
  const bench::AppAnalysis a = bench::analyze_app(app, 16);
  const std::size_t s0 = a.inputs.s0;

  for (const double k : {2.0, 4.0}) {
    WhatIfParams params;
    params.l2_scale_k = k;
    const WhatIfResult pred = what_if(a.report, a.inputs, params);

    // Ground truth: actually rebuild the machine with a k× L2 and re-run.
    MachineConfig big = MachineConfig::origin2000_scaled(1);
    big.l2.size_bytes = static_cast<std::size_t>(
        static_cast<double>(big.l2.size_bytes) * k);
    ExperimentRunner big_runner(big);

    Table t("L2 x" + Table::cell(static_cast<long long>(k)) +
            ": predicted vs re-run (" + app + ")");
    t.header({"procs", "pred_missrate", "rerun_missrate", "pred_Mcycles",
              "rerun_Mcycles", "cycles_err_pct"});
    for (const WhatIfPoint& p : pred.points) {
      const RunRecord rerun = big_runner.run(app, s0, p.n);
      const double rr_cycles = rerun.metrics.cycles;
      const double err =
          rr_cycles > 0.0 ? 100.0 * (p.cycles - rr_cycles) / rr_cycles : 0.0;
      t.add_row({Table::cell(p.n), Table::cell(p.l2_miss_rate, 4),
                 Table::cell(1.0 - rerun.metrics.l2_hitr, 4),
                 Table::cell(p.cycles / 1e6, 3),
                 Table::cell(rr_cycles / 1e6, 3), Table::cell(err, 1)});
    }
    t.print(std::cout, /*with_csv=*/true);
  }
  std::cout << "The paper calls this 'a rough estimate'; the prediction "
               "should track the re-run's direction and magnitude, best "
               "at low processor counts where conflict misses dominate.\n";
  return 0;
}
