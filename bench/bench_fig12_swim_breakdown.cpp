// Figure 12: estimation of the scalability bottlenecks in Swim.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 12: estimation of the scalability bottlenecks in Swim\n";
  return scaltool::bench::run_breakdown_bench("swim");
}
