// Ablation: the Fig. 13 divergence mechanism.
//
// Sec. 4.3 attributes the 14% gap between Scal-Tool's MP estimate and the
// speedshop measurement at 32 processors to "non-synchronization data
// sharing in the program". Our Swim exposes the sharing as a halo-width
// knob; sweeping it shows the causal chain: more sharing → larger
// estimate/measurement divergence (and, as the paper's Sec. 2.4.2 caveat
// predicts, nt_syn pollution that shifts the estimated split toward
// synchronization).
#include <iostream>
#include <memory>

#include "apps/swim.hpp"
#include "common.hpp"

int main() {
  using namespace scaltool;
  ExperimentRunner runner = bench::make_runner();
  const std::size_t s0 = bench::s0_for(bench::spec_for("swim"));
  const auto procs = default_proc_counts(32);

  Table t("Sharing ablation on swim: halo width vs validation divergence "
          "(32 processors)");
  t.header({"halo_elems", "coh_misses_truth", "nt_syn", "MP_est_M",
            "MP_meas_M", "diff_pct@32", "diff_pct_ext", "sync_M", "imb_M",
            "sharing_est_M"});

  for (const std::size_t halo : {0u, 48u, 96u, 192u}) {
    const ScalToolInputs inputs = runner.collect(
        [halo] {
          return std::unique_ptr<Workload>(
              new Swim(/*boundary_frac=*/0.075, halo));
        },
        "swim_halo" + std::to_string(halo), s0, procs);
    // Published model vs the paper's announced sharing extension.
    const ScalabilityReport report = analyze(inputs);
    AnalyzeOptions ext_options;
    ext_options.model_sharing = true;
    const ScalabilityReport extended = analyze(inputs, ext_options);

    const ValidationRecord& v = inputs.validation_for(32);
    auto diff_of = [&](const ScalabilityReport& r) {
      const BottleneckPoint& p = r.point(32);
      const double est = p.base_cycles - (p.sync_cost + p.imb_cost);
      const double meas = v.accumulated_cycles - v.mp_cycles;
      return 100.0 * (est - meas) / p.base_cycles;
    };
    const BottleneckPoint& p = report.point(32);
    const BottleneckPoint& pe = extended.point(32);
    t.add_row({Table::cell(halo), Table::cell(v.coherence_misses),
               Table::cell(p.nt_syn),
               Table::cell((p.sync_cost + p.imb_cost) / 1e6, 3),
               Table::cell(v.mp_cycles / 1e6, 3),
               Table::cell(diff_of(report), 2),
               Table::cell(diff_of(extended), 2),
               Table::cell(p.sync_cost / 1e6, 3),
               Table::cell(p.imb_cost / 1e6, 3),
               Table::cell(pe.sharing_cost / 1e6, 3)});
  }
  t.print(std::cout, /*with_csv=*/true);
  std::cout << "Expected: coherence misses and nt_syn grow with the halo; "
               "the published model's divergence at 32 grows with sharing "
               "while its estimated split shifts from imbalance toward "
               "synchronization — the paper's stated failure mode. The "
               "sharing extension (the paper's announced future work, "
               "diff_pct_ext) prices coherence transactions from the "
               "intervention/invalidation counters; it improves the "
               "mid-sharing regime but cannot rescue the extreme case "
               "where frac_imb has already clamped to zero — evidence for "
               "why the authors left it as future work.\n";
  return 0;
}
