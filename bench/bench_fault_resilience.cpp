// Fault-resilience overhead: the Table 3 collection for t3dheat under a
// sweep of injected transient-fault rates, with retries and keep-going on.
// Reports, per rate, the completed-matrix fraction, the retry bill, and
// the wall-time overhead versus the fault-free campaign — the cost of
// collecting through a flaky measurement stack. Emits one JSON line per
// rate for dashboards next to the human-readable table.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "common/table.hpp"
#include "engine/campaign.hpp"
#include "engine/engine_stats.hpp"

namespace scaltool::bench {
namespace {

constexpr int kMaxProcs = 8;

int run() {
  const AppSpec spec = spec_for("t3dheat");
  const ExperimentRunner runner = make_runner();
  const std::size_t s0 = s0_for(spec);
  const std::vector<int> procs = default_proc_counts(kMaxProcs);
  std::cout << "# fault resilience: t3dheat, s0 = " << format_bytes(s0)
            << ", procs 1.." << kMaxProcs
            << ", retries 3, keep-going, seed 42\n";

  Table table("Fault resilience (t3dheat Table 3 matrix, 4 workers)");
  table.header({"fault_rate", "completed_%", "quarantined", "retries",
                "faults", "wall_s", "overhead_x"});
  double wall_clean = 0.0;
  for (const double rate : {0.0, 0.1, 0.2, 0.4}) {
    CampaignOptions options;
    options.jobs = 4;
    options.retries = 3;
    options.keep_going = true;
    options.faults.seed = 42;
    options.faults.transient_rate = rate;
    CampaignEngine engine(runner, options);
    bool completed = true;
    try {
      (void)engine.collect(spec.name, s0, procs);
    } catch (const std::exception&) {
      completed = false;  // an unrecoverable base run died at this rate
    }
    const EngineStats& stats = engine.stats();
    if (rate == 0.0) wall_clean = stats.wall_seconds;
    const double overhead =
        wall_clean > 0.0 ? stats.wall_seconds / wall_clean : 0.0;
    table.add_row({Table::cell(rate),
                   Table::cell(100.0 * stats.completed_fraction()),
                   Table::cell(stats.jobs_quarantined),
                   Table::cell(stats.retries),
                   Table::cell(stats.faults_injected),
                   Table::cell(stats.wall_seconds), Table::cell(overhead)});
    std::cout << "{\"bench\":\"fault_resilience\",\"app\":\"t3dheat\""
              << ",\"fault_rate\":" << rate
              << ",\"completed_frac\":" << stats.completed_fraction()
              << ",\"assembled\":" << (completed ? "true" : "false")
              << ",\"quarantined\":" << stats.jobs_quarantined
              << ",\"retries\":" << stats.retries
              << ",\"faults_injected\":" << stats.faults_injected
              << ",\"wall_s\":" << stats.wall_seconds
              << ",\"overhead_x\":" << overhead << "}\n";
  }
  table.print(std::cout, /*with_csv=*/true);
  std::cout << "# overhead_x is wall time relative to the fault-free "
               "campaign; completed_% counts non-quarantined jobs.\n";
  return 0;
}

}  // namespace
}  // namespace scaltool::bench

int main() { return scaltool::bench::run(); }
