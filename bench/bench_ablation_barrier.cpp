// Ablation: barrier serialization cost.
//
// T3dheat's saturation past 16 processors (Fig. 5/6) is driven by the
// fetchop serialization at the barrier counter. Sweeping the occupancy
// factor moves the synchronization wall: cheap barriers push saturation
// out, expensive ones pull it in — and Scal-Tool's estimated sync share
// tracks the change through the kernel-calibrated t_syn without any
// reconfiguration.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace scaltool;
  const std::size_t s0 = bench::s0_for(bench::spec_for("t3dheat"));
  const auto procs = default_proc_counts(32);

  Table t("Barrier-cost ablation on t3dheat (fetchop occupancy factor)");
  t.header({"occupancy", "tsyn_est@32", "speedup@16", "speedup@32",
            "sync_pct@32", "MP_pct@32"});

  for (const double occupancy : {0.3, 0.6, 1.2, 2.4}) {
    MachineConfig cfg = MachineConfig::origin2000_scaled(1);
    cfg.sync.fetchop_occupancy_factor = occupancy;
    ExperimentRunner runner(cfg);
    const ScalToolInputs inputs = runner.collect("t3dheat", s0, procs);
    const ScalabilityReport report = analyze(inputs);
    const BottleneckPoint& p = report.point(32);
    const double t1 = inputs.base_run(1).execution_cycles;
    t.add_row({Table::cell(occupancy, 2), Table::cell(p.tsyn, 1),
               Table::cell(t1 / inputs.base_run(16).execution_cycles, 2),
               Table::cell(t1 / inputs.base_run(32).execution_cycles, 2),
               Table::cell(100.0 * p.sync_cost / p.base_cycles, 1),
               Table::cell(100.0 * p.mp_cost() / p.base_cycles, 1)});
  }
  t.print(std::cout, /*with_csv=*/true);
  std::cout << "Expected: the estimated sync share grows with the occupancy "
               "factor and the 32-processor speedup falls — the "
               "synchronization wall moving in. t_syn itself stays at the "
               "fetchop round trip (~100 cycles): what grows is the nt_syn "
               "retry count, exactly how Eq. 10 prices contention.\n";
  return 0;
}
