// Figure 6: estimation of the scalability bottlenecks in T3dheat.
#include <iostream>

#include "common.hpp"

int main() {
  std::cout << "Figure 6: estimation of the scalability bottlenecks in T3dheat\n";
  return scaltool::bench::run_breakdown_bench("t3dheat");
}
