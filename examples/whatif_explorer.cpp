// What-if explorer (Section 2.6): predict machine-parameter changes without
// re-running the application, then sanity-check the headline prediction.
//
//   ./whatif_explorer [workload] [max_procs]
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/apps.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace scaltool;
  const std::string workload = argc > 1 ? argv[1] : "t3dheat";
  const int max_procs = argc > 2 ? std::atoi(argv[2]) : 16;

  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;

  std::cout << "Collecting measurements for " << workload << "...\n";
  const ScalToolInputs inputs =
      runner.collect(workload, s0, default_proc_counts(max_procs));
  const ScalabilityReport report = analyze(inputs);
  std::cout << model_summary(report) << "\n";

  {
    WhatIfParams p;  // identity: the model should reproduce the base runs
    whatif_table(what_if(report, inputs, p), "identity (model self-check)")
        .print(std::cout);
  }
  {
    WhatIfParams p;
    p.l2_scale_k = 2.0;
    whatif_table(what_if(report, inputs, p), "L2 cache x2").print(std::cout);
  }
  {
    WhatIfParams p;
    p.tm_scale = 0.5;
    whatif_table(what_if(report, inputs, p),
                 "memory/interconnect 2x faster (tm/2)")
        .print(std::cout);
  }
  {
    WhatIfParams p;
    p.tsyn_scale = 0.25;
    whatif_table(what_if(report, inputs, p),
                 "synchronization 4x faster (t_syn/4)")
        .print(std::cout);
  }
  {
    WhatIfParams p;
    p.pi0_scale = 0.5;
    whatif_table(what_if(report, inputs, p), "double-issue core (pi0/2)")
        .print(std::cout);
  }
  return 0;
}
