// Writing your own workload: a blocked matrix-vector kernel implemented
// against the ProcContext API, analyzed end to end by Scal-Tool.
//
// This is the template for bringing a new application to the tool:
//  1. express each barrier-separated parallel phase in run_phase();
//  2. size arrays from WorkloadParams::dataset_bytes (so the data-set
//     sweep works);
//  3. hand the workload to ExperimentRunner/analyze().
#include <iostream>

#include "apps/kernels.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"
#include "trace/access_pattern.hpp"

namespace {

using namespace scaltool;

// y = A·x with A blocked by rows; one phase per iteration plus a first-
// touch initialization phase. Deliberately imbalanced: the last processor
// also handles a "ragged edge" of extra rows.
class MatVec final : public Workload {
 public:
  std::string name() const override { return "matvec"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }

  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override {
    // dataset = A (rows × 8 doubles) + x + y.
    rows_ = params.dataset_bytes / ((8 + 2) * sizeof(double));
    iters_ = params.iterations;
    nprocs_ = num_procs;
    a_ = alloc.allocate(rows_ * 8 * sizeof(double), "A");
    x_ = alloc.allocate(rows_ * sizeof(double), "x");
    y_ = alloc.allocate(rows_ * sizeof(double), "y");
  }

  int num_phases() const override { return 1 + iters_; }

  void run_phase(int phase, ProcContext& ctx) override {
    const BlockRange range = block_range(rows_, nprocs_, ctx.proc());
    if (phase == 0) {
      stream_write(ctx, a_, range.begin * 8, range.size() * 8,
                   sizeof(double), 0.0);
      stream_write(ctx, x_, range.begin, range.size(), sizeof(double), 0.0);
      stream_write(ctx, y_, range.begin, range.size(), sizeof(double), 0.0);
      return;
    }
    auto row = [&](std::size_t r) {
      for (int c = 0; c < 8; ++c) {
        ctx.load(a_ + (r * 8 + static_cast<std::size_t>(c)) * sizeof(double));
        ctx.load(x_ + r * sizeof(double));
        ctx.compute(2.0);
      }
      ctx.store(y_ + r * sizeof(double));
    };
    for (std::size_t r = range.begin; r < range.end; ++r) row(r);
    // Ragged edge: the last processor re-processes 30% of its rows.
    if (ctx.proc() == nprocs_ - 1)
      for (std::size_t r = range.begin;
           r < range.begin + range.size() * 3 / 10; ++r)
        row(r);
  }

 private:
  std::size_t rows_ = 0;
  int iters_ = 0;
  int nprocs_ = 0;
  Addr a_ = 0, x_ = 0, y_ = 0;
};

}  // namespace

int main() {
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  const std::size_t s0 = 6 * runner.base_config().l2.size_bytes;

  // The runner works with any Workload instance — registration is only
  // needed for name-based lookup, so we drive collect() manually here.
  std::cout << "Analyzing the custom 'matvec' workload...\n";
  ScalToolInputs inputs;
  inputs.app = "matvec";
  inputs.s0 = s0;
  inputs.l2_bytes = runner.base_config().l2.size_bytes;
  for (int n : default_proc_counts(16)) {
    MatVec w;
    const RunResult result = runner.run_full(w, s0, n);
    inputs.base_runs.push_back(make_record(result));
    inputs.validation.push_back(make_validation(result));
  }
  for (std::size_t s = s0 / 2; s >= 2_KiB; s /= 2) {
    MatVec w;
    inputs.uni_runs.push_back(make_record(runner.run_full(w, s, 1)));
  }
  inputs.uni_runs.insert(inputs.uni_runs.begin(), inputs.base_runs.front());
  for (int n : default_proc_counts(16)) {
    if (n == 1) continue;
    KernelMeasurement km;
    km.num_procs = n;
    SyncKernel sync_kernel;
    SpinKernel spin_kernel;
    km.sync_kernel = make_record(runner.run_full(sync_kernel, 1_KiB, n));
    km.spin_kernel = make_record(runner.run_full(spin_kernel, 1_KiB, n));
    inputs.kernels.push_back(km);
  }

  const ScalabilityReport report = analyze(inputs);
  std::cout << model_summary(report) << "\n";
  speedup_table(inputs).print(std::cout);
  breakdown_table(report).print(std::cout);
  validation_table(report, inputs).print(std::cout);
  std::cout << "Expected: the ragged edge shows up as load imbalance that "
               "grows with the processor count.\n";
  return 0;
}
