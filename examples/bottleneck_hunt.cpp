// Bottleneck hunt: the paper's Section 4 workflow on one application —
// speedup curve, Figure 6-style breakdown, validation against speedshop,
// and a human-readable diagnosis with tuning advice.
//
//   ./bottleneck_hunt [workload] [max_procs] [dataset_in_l2_multiples]
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/apps.hpp"
#include "common/ascii_chart.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace {

// Draws the Fig. 6-style curves in the terminal: accumulated cycles for
// Base, Base−L2Lim and Base−L2Lim−MP versus processor count.
void plot_curves(const scaltool::ScalabilityReport& report) {
  using scaltool::AsciiChart;
  std::vector<std::pair<double, double>> base, no_l2, no_mp;
  for (const scaltool::BottleneckPoint& p : report.points) {
    base.emplace_back(p.n, p.base_cycles / 1e6);
    no_l2.emplace_back(p.n, p.cycles_no_l2lim / 1e6);
    no_mp.emplace_back(p.n, p.cycles_no_l2lim_no_mp / 1e6);
  }
  AsciiChart chart(56, 14);
  chart.add_series('B', "Base (measured Mcycles, all procs)",
                   std::move(base));
  chart.add_series('o', "Base - L2Lim", std::move(no_l2));
  chart.add_series('.', "Base - L2Lim - MP", std::move(no_mp));
  std::cout << "== Fig. 6-style curves ==\n" << chart.render() << "\n";
}

// Turns the analysis into the advice a performance engineer would give.
void diagnose(const scaltool::ScalabilityReport& report) {
  using scaltool::BottleneckPoint;
  const BottleneckPoint& last = report.points.back();
  const BottleneckPoint& first = report.points.front();
  std::cout << "== Diagnosis ==\n";

  const double l2lim_1p =
      first.base_cycles > 0.0 ? first.l2lim_cost() / first.base_cycles : 0.0;
  if (l2lim_1p > 0.25) {
    std::cout << "- Insufficient caching space costs "
              << static_cast<int>(100 * l2lim_1p)
              << "% of the 1-processor cycles. Early speedup is partly the "
                 "growing aggregate cache, not parallelism: consider "
                 "blocking/tiling the working set.\n";
  } else {
    std::cout << "- Caching space is not a significant bottleneck ("
              << static_cast<int>(100 * l2lim_1p)
              << "% of 1-processor cycles).\n";
  }

  const double mp_frac =
      last.base_cycles > 0.0 ? last.mp_cost() / last.base_cycles : 0.0;
  std::cout << "- Multiprocessor overhead at " << last.n << " processors: "
            << static_cast<int>(100 * mp_frac) << "% of all cycles ("
            << static_cast<int>(100 * last.sync_cost /
                                std::max(1.0, last.base_cycles))
            << "% synchronization, "
            << static_cast<int>(100 * last.imb_cost /
                                std::max(1.0, last.base_cycles))
            << "% load imbalance).\n";
  if (last.sync_cost > last.imb_cost && mp_frac > 0.15) {
    std::cout << "  -> Synchronization dominates: reduce barrier frequency "
                 "or switch to a tree barrier / fetchop-free reduction.\n";
  } else if (mp_frac > 0.15) {
    std::cout << "  -> Load imbalance dominates: rebalance the iteration "
                 "space or shrink serial sections.\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scaltool;
  const std::string workload = argc > 1 ? argv[1] : "t3dheat";
  const int max_procs = argc > 2 ? std::atoi(argv[2]) : 32;
  const double l2_mult = argc > 3 ? std::atof(argv[3]) : 10.0;

  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  const auto s0 = static_cast<std::size_t>(
      l2_mult * static_cast<double>(runner.base_config().l2.size_bytes));

  std::cout << "Hunting bottlenecks in " << workload << " (s0 = "
            << format_bytes(s0) << ", up to " << max_procs
            << " processors)\n\n";
  const ScalToolInputs inputs =
      runner.collect(workload, s0, default_proc_counts(max_procs));
  const ScalabilityReport report = analyze(inputs);

  std::cout << model_summary(report) << "\n";
  speedup_table(inputs).print(std::cout);
  hitrate_sweep_table(inputs, report).print(std::cout);
  breakdown_table(report).print(std::cout);
  plot_curves(report);
  validation_table(report, inputs).print(std::cout);
  diagnose(report);
  return 0;
}
