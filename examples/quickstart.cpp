// Quickstart: run one application on the simulated DSM machine, read its
// hardware counters with the perfex emulation, and let Scal-Tool break the
// cycles into bottlenecks.
//
//   ./quickstart [workload] [procs]
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/apps.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"
#include "tools/perfex.hpp"
#include "tools/speedshop.hpp"
#include "tools/ssusage.hpp"

int main(int argc, char** argv) {
  using namespace scaltool;
  const std::string workload = argc > 1 ? argv[1] : "swim";
  const int max_procs = argc > 2 ? std::atoi(argv[2]) : 16;

  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  const std::size_t s0 = 4 * runner.base_config().l2.size_bytes;

  std::cout << "== 1. Run " << workload << " on " << max_procs
            << " simulated processors ==\n";
  const RunResult run = runner.run_full(workload, s0, max_procs);
  std::cout << perfex_report(run);
  std::cout << ssusage_report(run, runner.base_config().l2.size_bytes);
  std::cout << speedshop_report(run) << "\n";

  std::cout << "== 2. Collect the Scal-Tool measurement matrix ==\n";
  const auto procs = default_proc_counts(max_procs);
  const ScalToolInputs inputs = runner.collect(workload, s0, procs);
  std::cout << "collected " << inputs.base_runs.size() << " base runs, "
            << inputs.uni_runs.size() << " uniprocessor runs, "
            << inputs.kernels.size() << " kernel measurements\n\n";

  std::cout << "== 3. Analyze ==\n";
  const ScalabilityReport report = analyze(inputs);
  std::cout << model_summary(report) << "\n";
  speedup_table(inputs).print(std::cout);
  breakdown_table(report).print(std::cout);
  validation_table(report, inputs).print(std::cout);
  return 0;
}
