// Machine explorer: sweep architectural knobs of the simulated DSM machine
// and watch an application's scaling respond — the experiments the paper
// says are "typically impossible" with the vendor tools (Sec. 5: "it is
// impossible to measure the misses if the L2 cache doubled in size").
//
//   ./machine_explorer [workload]
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/apps.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace {

using namespace scaltool;

double speedup_at(const ExperimentRunner& runner, const std::string& app,
                  std::size_t s0, int n) {
  const RunRecord r1 = runner.run(app, s0, 1);
  const RunRecord rn = runner.run(app, s0, n);
  return r1.execution_cycles / rn.execution_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "t3dheat";
  register_standard_workloads();
  const MachineConfig base = MachineConfig::origin2000_scaled(1);
  const std::size_t s0 = 10 * base.l2.size_bytes;

  {
    Table t("L2 capacity sweep (" + workload + ", speedup at 16 procs)");
    t.header({"l2_size", "exec_Mcycles@1", "speedup@16"});
    for (const std::size_t size : {32_KiB, 64_KiB, 128_KiB, 256_KiB}) {
      MachineConfig cfg = base;
      cfg.l2.size_bytes = size;
      ExperimentRunner runner(cfg);
      const RunRecord r1 = runner.run(workload, s0, 1);
      t.add_row({format_bytes(size),
                 Table::cell(r1.execution_cycles / 1e6, 3),
                 Table::cell(speedup_at(runner, workload, s0, 16), 2)});
    }
    t.print(std::cout);
  }
  {
    Table t("Topology sweep (" + workload + ")");
    t.header({"topology", "tm_true@32", "speedup@32"});
    for (const TopologyKind kind :
         {TopologyKind::kCrossbar, TopologyKind::kBristledHypercube,
          TopologyKind::kMesh2D, TopologyKind::kRing}) {
      MachineConfig cfg = base;
      cfg.network.topology = kind;
      ExperimentRunner runner(cfg);
      MachineConfig cfg32 = cfg;
      cfg32.num_procs = 32;
      t.add_row({topology_name(kind),
                 Table::cell(cfg32.tm_ground_truth(), 1),
                 Table::cell(speedup_at(runner, workload, s0, 32), 2)});
    }
    t.print(std::cout);
  }
  {
    Table t("Memory placement sweep (" + workload + ", 16 procs)");
    t.header({"policy", "remote_access_pct", "exec_Mcycles"});
    for (const auto& [policy, name] :
         {std::pair{PlacementPolicy::kFirstTouch, "first-touch"},
          std::pair{PlacementPolicy::kRoundRobin, "round-robin"},
          std::pair{PlacementPolicy::kFixedNode0, "all-on-node-0"}}) {
      MachineConfig cfg = base;
      cfg.memory.policy = policy;
      ExperimentRunner runner(cfg);
      const RunResult r = runner.run_full(workload, s0, 16);
      const CounterSet agg = r.counters.aggregate();
      const double local = agg.get(EventId::kLocalMemAccesses);
      const double remote = agg.get(EventId::kRemoteMemAccesses);
      const double pct =
          local + remote > 0 ? 100.0 * remote / (local + remote) : 0.0;
      t.add_row({name, Table::cell(pct, 1),
                 Table::cell(r.execution_cycles / 1e6, 3)});
    }
    t.print(std::cout);
  }
  std::cout << "The Origin's defaults — first-touch placement, a bristled "
               "hypercube, the biggest L2 — win on every axis, which is "
               "why the paper's machine used them.\n";
  return 0;
}
