// Measurement campaign: the paper's run-and-file workflow, end to end.
//
// Table 1 counts runs, processors and *files* because a real campaign is
// two separate activities: gathering counters on the machine (expensive,
// needs the processors) and analyzing them at a desk (cheap). This example
// separates them the same way:
//
//   phase 1  collect the Table 3 matrix and save it to one archive file;
//   phase 2  load the archive — no simulator, no machine — and analyze.
//
//   ./measurement_campaign [workload] [archive_path]
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/apps.hpp"
#include "core/scaltool.hpp"
#include "runner/archive.hpp"
#include "runner/runner.hpp"
#include "tools/counter_schedule.hpp"

int main(int argc, char** argv) {
  using namespace scaltool;
  const std::string workload = argc > 1 ? argv[1] : "hydro2d";
  const std::string path =
      argc > 2 ? argv[2] : "/tmp/scaltool_campaign_" + workload + ".txt";

  // ---- Phase 1: on "the machine" -----------------------------------------
  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  const auto s0 = static_cast<std::size_t>(
      2.6 * static_cast<double>(runner.base_config().l2.size_bytes));
  int runs = 0;
  runner.on_run = [&](const std::string& what) {
    ++runs;
    std::cout << "  run " << runs << ": " << what << "\n";
  };
  std::cout << "Phase 1: gathering the measurement matrix for " << workload
            << "...\n";
  const ScalToolInputs inputs =
      runner.collect(workload, s0, default_proc_counts(16));
  save_inputs(inputs, path);
  std::cout << "Saved " << runs << " runs' counters to " << path << "\n";
  std::cout << "(On a real R10000 each application run would take "
            << hardware_pass_multiplier(2)
            << " counter passes to capture all events.)\n\n";

  // ---- Phase 2: at "the desk" ---------------------------------------------
  std::cout << "Phase 2: loading the archive and analyzing (no machine "
               "time needed)...\n";
  const ScalToolInputs loaded = load_inputs(path);
  const ScalabilityReport report = analyze(loaded);
  std::cout << model_summary(report) << "\n";
  breakdown_table(report).print(std::cout);
  validation_table(report, loaded).print(std::cout);

  // What-ifs also come free once the archive exists.
  WhatIfParams params;
  params.l2_scale_k = 2.0;
  whatif_table(what_if(report, loaded, params),
               "L2 x2 (computed from the archive alone)")
      .print(std::cout);
  return 0;
}
