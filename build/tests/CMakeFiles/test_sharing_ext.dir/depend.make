# Empty dependencies file for test_sharing_ext.
# This may be replaced when dependencies are built.
