file(REMOVE_RECURSE
  "CMakeFiles/test_sharing_ext.dir/test_sharing_ext.cpp.o"
  "CMakeFiles/test_sharing_ext.dir/test_sharing_ext.cpp.o.d"
  "test_sharing_ext"
  "test_sharing_ext.pdb"
  "test_sharing_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharing_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
