file(REMOVE_RECURSE
  "CMakeFiles/test_model_edge.dir/test_model_edge.cpp.o"
  "CMakeFiles/test_model_edge.dir/test_model_edge.cpp.o.d"
  "test_model_edge"
  "test_model_edge.pdb"
  "test_model_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
