file(REMOVE_RECURSE
  "CMakeFiles/test_model_recovery.dir/test_model_recovery.cpp.o"
  "CMakeFiles/test_model_recovery.dir/test_model_recovery.cpp.o.d"
  "test_model_recovery"
  "test_model_recovery.pdb"
  "test_model_recovery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
