# Empty compiler generated dependencies file for test_model_recovery.
# This may be replaced when dependencies are built.
