# Empty compiler generated dependencies file for bottleneck_hunt.
# This may be replaced when dependencies are built.
