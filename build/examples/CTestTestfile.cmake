# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bottleneck_hunt "/root/repo/build/examples/bottleneck_hunt")
set_tests_properties(example_bottleneck_hunt PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_whatif_explorer "/root/repo/build/examples/whatif_explorer")
set_tests_properties(example_whatif_explorer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_measurement_campaign "/root/repo/build/examples/measurement_campaign")
set_tests_properties(example_measurement_campaign PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_explorer "/root/repo/build/examples/machine_explorer")
set_tests_properties(example_machine_explorer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
