# Empty compiler generated dependencies file for st_math.
# This may be replaced when dependencies are built.
