file(REMOVE_RECURSE
  "CMakeFiles/st_math.dir/interpolate.cpp.o"
  "CMakeFiles/st_math.dir/interpolate.cpp.o.d"
  "CMakeFiles/st_math.dir/least_squares.cpp.o"
  "CMakeFiles/st_math.dir/least_squares.cpp.o.d"
  "libst_math.a"
  "libst_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
