file(REMOVE_RECURSE
  "libst_math.a"
)
