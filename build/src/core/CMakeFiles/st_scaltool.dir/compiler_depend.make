# Empty compiler generated dependencies file for st_scaltool.
# This may be replaced when dependencies are built.
