file(REMOVE_RECURSE
  "CMakeFiles/st_scaltool.dir/analytic_models.cpp.o"
  "CMakeFiles/st_scaltool.dir/analytic_models.cpp.o.d"
  "CMakeFiles/st_scaltool.dir/bottleneck.cpp.o"
  "CMakeFiles/st_scaltool.dir/bottleneck.cpp.o.d"
  "CMakeFiles/st_scaltool.dir/cpi_model.cpp.o"
  "CMakeFiles/st_scaltool.dir/cpi_model.cpp.o.d"
  "CMakeFiles/st_scaltool.dir/inputs.cpp.o"
  "CMakeFiles/st_scaltool.dir/inputs.cpp.o.d"
  "CMakeFiles/st_scaltool.dir/miss_decomp.cpp.o"
  "CMakeFiles/st_scaltool.dir/miss_decomp.cpp.o.d"
  "CMakeFiles/st_scaltool.dir/report_text.cpp.o"
  "CMakeFiles/st_scaltool.dir/report_text.cpp.o.d"
  "CMakeFiles/st_scaltool.dir/resources.cpp.o"
  "CMakeFiles/st_scaltool.dir/resources.cpp.o.d"
  "CMakeFiles/st_scaltool.dir/whatif.cpp.o"
  "CMakeFiles/st_scaltool.dir/whatif.cpp.o.d"
  "libst_scaltool.a"
  "libst_scaltool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_scaltool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
