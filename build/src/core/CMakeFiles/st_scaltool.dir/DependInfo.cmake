
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic_models.cpp" "src/core/CMakeFiles/st_scaltool.dir/analytic_models.cpp.o" "gcc" "src/core/CMakeFiles/st_scaltool.dir/analytic_models.cpp.o.d"
  "/root/repo/src/core/bottleneck.cpp" "src/core/CMakeFiles/st_scaltool.dir/bottleneck.cpp.o" "gcc" "src/core/CMakeFiles/st_scaltool.dir/bottleneck.cpp.o.d"
  "/root/repo/src/core/cpi_model.cpp" "src/core/CMakeFiles/st_scaltool.dir/cpi_model.cpp.o" "gcc" "src/core/CMakeFiles/st_scaltool.dir/cpi_model.cpp.o.d"
  "/root/repo/src/core/inputs.cpp" "src/core/CMakeFiles/st_scaltool.dir/inputs.cpp.o" "gcc" "src/core/CMakeFiles/st_scaltool.dir/inputs.cpp.o.d"
  "/root/repo/src/core/miss_decomp.cpp" "src/core/CMakeFiles/st_scaltool.dir/miss_decomp.cpp.o" "gcc" "src/core/CMakeFiles/st_scaltool.dir/miss_decomp.cpp.o.d"
  "/root/repo/src/core/report_text.cpp" "src/core/CMakeFiles/st_scaltool.dir/report_text.cpp.o" "gcc" "src/core/CMakeFiles/st_scaltool.dir/report_text.cpp.o.d"
  "/root/repo/src/core/resources.cpp" "src/core/CMakeFiles/st_scaltool.dir/resources.cpp.o" "gcc" "src/core/CMakeFiles/st_scaltool.dir/resources.cpp.o.d"
  "/root/repo/src/core/whatif.cpp" "src/core/CMakeFiles/st_scaltool.dir/whatif.cpp.o" "gcc" "src/core/CMakeFiles/st_scaltool.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/counters/CMakeFiles/st_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/st_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
