file(REMOVE_RECURSE
  "libst_scaltool.a"
)
