# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("math")
subdirs("counters")
subdirs("cache")
subdirs("coherence")
subdirs("network")
subdirs("memory")
subdirs("sync")
subdirs("machine")
subdirs("trace")
subdirs("apps")
subdirs("tools")
subdirs("runner")
subdirs("core")
subdirs("cli")
