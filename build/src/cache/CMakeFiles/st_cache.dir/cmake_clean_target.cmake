file(REMOVE_RECURSE
  "libst_cache.a"
)
