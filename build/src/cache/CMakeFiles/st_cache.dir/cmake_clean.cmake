file(REMOVE_RECURSE
  "CMakeFiles/st_cache.dir/cache.cpp.o"
  "CMakeFiles/st_cache.dir/cache.cpp.o.d"
  "libst_cache.a"
  "libst_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
