# Empty compiler generated dependencies file for st_cache.
# This may be replaced when dependencies are built.
