file(REMOVE_RECURSE
  "CMakeFiles/st_trace.dir/access_pattern.cpp.o"
  "CMakeFiles/st_trace.dir/access_pattern.cpp.o.d"
  "CMakeFiles/st_trace.dir/registry.cpp.o"
  "CMakeFiles/st_trace.dir/registry.cpp.o.d"
  "CMakeFiles/st_trace.dir/trace_io.cpp.o"
  "CMakeFiles/st_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/st_trace.dir/workload.cpp.o"
  "CMakeFiles/st_trace.dir/workload.cpp.o.d"
  "libst_trace.a"
  "libst_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
