file(REMOVE_RECURSE
  "libst_tools.a"
)
