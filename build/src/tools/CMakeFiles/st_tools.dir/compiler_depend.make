# Empty compiler generated dependencies file for st_tools.
# This may be replaced when dependencies are built.
