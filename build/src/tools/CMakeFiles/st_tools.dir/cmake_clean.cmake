file(REMOVE_RECURSE
  "CMakeFiles/st_tools.dir/counter_schedule.cpp.o"
  "CMakeFiles/st_tools.dir/counter_schedule.cpp.o.d"
  "CMakeFiles/st_tools.dir/perfex.cpp.o"
  "CMakeFiles/st_tools.dir/perfex.cpp.o.d"
  "CMakeFiles/st_tools.dir/region_report.cpp.o"
  "CMakeFiles/st_tools.dir/region_report.cpp.o.d"
  "CMakeFiles/st_tools.dir/speedshop.cpp.o"
  "CMakeFiles/st_tools.dir/speedshop.cpp.o.d"
  "CMakeFiles/st_tools.dir/ssusage.cpp.o"
  "CMakeFiles/st_tools.dir/ssusage.cpp.o.d"
  "libst_tools.a"
  "libst_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
