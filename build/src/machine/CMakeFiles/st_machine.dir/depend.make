# Empty dependencies file for st_machine.
# This may be replaced when dependencies are built.
