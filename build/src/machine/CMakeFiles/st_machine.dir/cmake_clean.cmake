file(REMOVE_RECURSE
  "CMakeFiles/st_machine.dir/dsm_machine.cpp.o"
  "CMakeFiles/st_machine.dir/dsm_machine.cpp.o.d"
  "CMakeFiles/st_machine.dir/machine_config.cpp.o"
  "CMakeFiles/st_machine.dir/machine_config.cpp.o.d"
  "libst_machine.a"
  "libst_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
