file(REMOVE_RECURSE
  "libst_machine.a"
)
