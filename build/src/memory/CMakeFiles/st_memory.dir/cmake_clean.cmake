file(REMOVE_RECURSE
  "CMakeFiles/st_memory.dir/memory_system.cpp.o"
  "CMakeFiles/st_memory.dir/memory_system.cpp.o.d"
  "CMakeFiles/st_memory.dir/tlb.cpp.o"
  "CMakeFiles/st_memory.dir/tlb.cpp.o.d"
  "libst_memory.a"
  "libst_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
