file(REMOVE_RECURSE
  "libst_memory.a"
)
