# Empty dependencies file for st_memory.
# This may be replaced when dependencies are built.
