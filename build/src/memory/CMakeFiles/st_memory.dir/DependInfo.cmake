
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/memory_system.cpp" "src/memory/CMakeFiles/st_memory.dir/memory_system.cpp.o" "gcc" "src/memory/CMakeFiles/st_memory.dir/memory_system.cpp.o.d"
  "/root/repo/src/memory/tlb.cpp" "src/memory/CMakeFiles/st_memory.dir/tlb.cpp.o" "gcc" "src/memory/CMakeFiles/st_memory.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
