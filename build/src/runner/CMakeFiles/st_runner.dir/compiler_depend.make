# Empty compiler generated dependencies file for st_runner.
# This may be replaced when dependencies are built.
