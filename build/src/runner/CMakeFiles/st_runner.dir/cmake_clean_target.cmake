file(REMOVE_RECURSE
  "libst_runner.a"
)
