file(REMOVE_RECURSE
  "CMakeFiles/st_runner.dir/archive.cpp.o"
  "CMakeFiles/st_runner.dir/archive.cpp.o.d"
  "CMakeFiles/st_runner.dir/runner.cpp.o"
  "CMakeFiles/st_runner.dir/runner.cpp.o.d"
  "libst_runner.a"
  "libst_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
