
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/counters/counter_set.cpp" "src/counters/CMakeFiles/st_counters.dir/counter_set.cpp.o" "gcc" "src/counters/CMakeFiles/st_counters.dir/counter_set.cpp.o.d"
  "/root/repo/src/counters/events.cpp" "src/counters/CMakeFiles/st_counters.dir/events.cpp.o" "gcc" "src/counters/CMakeFiles/st_counters.dir/events.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
