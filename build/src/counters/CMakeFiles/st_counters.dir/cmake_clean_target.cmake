file(REMOVE_RECURSE
  "libst_counters.a"
)
