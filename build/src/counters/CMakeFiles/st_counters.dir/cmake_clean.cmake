file(REMOVE_RECURSE
  "CMakeFiles/st_counters.dir/counter_set.cpp.o"
  "CMakeFiles/st_counters.dir/counter_set.cpp.o.d"
  "CMakeFiles/st_counters.dir/events.cpp.o"
  "CMakeFiles/st_counters.dir/events.cpp.o.d"
  "libst_counters.a"
  "libst_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
