# Empty dependencies file for st_counters.
# This may be replaced when dependencies are built.
