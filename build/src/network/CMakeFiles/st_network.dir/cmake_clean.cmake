file(REMOVE_RECURSE
  "CMakeFiles/st_network.dir/hypercube.cpp.o"
  "CMakeFiles/st_network.dir/hypercube.cpp.o.d"
  "libst_network.a"
  "libst_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
