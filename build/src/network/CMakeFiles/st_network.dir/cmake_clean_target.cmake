file(REMOVE_RECURSE
  "libst_network.a"
)
