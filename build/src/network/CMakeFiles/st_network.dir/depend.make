# Empty dependencies file for st_network.
# This may be replaced when dependencies are built.
