# Empty dependencies file for scaltool_cli.
# This may be replaced when dependencies are built.
