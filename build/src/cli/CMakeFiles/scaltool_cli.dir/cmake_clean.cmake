file(REMOVE_RECURSE
  "CMakeFiles/scaltool_cli.dir/main.cpp.o"
  "CMakeFiles/scaltool_cli.dir/main.cpp.o.d"
  "scaltool"
  "scaltool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaltool_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
