file(REMOVE_RECURSE
  "CMakeFiles/st_cli.dir/args.cpp.o"
  "CMakeFiles/st_cli.dir/args.cpp.o.d"
  "CMakeFiles/st_cli.dir/cli.cpp.o"
  "CMakeFiles/st_cli.dir/cli.cpp.o.d"
  "libst_cli.a"
  "libst_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
