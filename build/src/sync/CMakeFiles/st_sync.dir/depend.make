# Empty dependencies file for st_sync.
# This may be replaced when dependencies are built.
