file(REMOVE_RECURSE
  "libst_sync.a"
)
