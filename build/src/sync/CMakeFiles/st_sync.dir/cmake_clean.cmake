file(REMOVE_RECURSE
  "CMakeFiles/st_sync.dir/barrier_model.cpp.o"
  "CMakeFiles/st_sync.dir/barrier_model.cpp.o.d"
  "CMakeFiles/st_sync.dir/lock_model.cpp.o"
  "CMakeFiles/st_sync.dir/lock_model.cpp.o.d"
  "libst_sync.a"
  "libst_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
