
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/apps.cpp" "src/apps/CMakeFiles/st_apps.dir/apps.cpp.o" "gcc" "src/apps/CMakeFiles/st_apps.dir/apps.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/st_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/st_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/hydro2d.cpp" "src/apps/CMakeFiles/st_apps.dir/hydro2d.cpp.o" "gcc" "src/apps/CMakeFiles/st_apps.dir/hydro2d.cpp.o.d"
  "/root/repo/src/apps/kernels.cpp" "src/apps/CMakeFiles/st_apps.dir/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/st_apps.dir/kernels.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/st_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/st_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/micro.cpp" "src/apps/CMakeFiles/st_apps.dir/micro.cpp.o" "gcc" "src/apps/CMakeFiles/st_apps.dir/micro.cpp.o.d"
  "/root/repo/src/apps/swim.cpp" "src/apps/CMakeFiles/st_apps.dir/swim.cpp.o" "gcc" "src/apps/CMakeFiles/st_apps.dir/swim.cpp.o.d"
  "/root/repo/src/apps/t3dheat.cpp" "src/apps/CMakeFiles/st_apps.dir/t3dheat.cpp.o" "gcc" "src/apps/CMakeFiles/st_apps.dir/t3dheat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/st_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
