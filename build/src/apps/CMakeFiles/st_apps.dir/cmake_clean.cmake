file(REMOVE_RECURSE
  "CMakeFiles/st_apps.dir/apps.cpp.o"
  "CMakeFiles/st_apps.dir/apps.cpp.o.d"
  "CMakeFiles/st_apps.dir/fft.cpp.o"
  "CMakeFiles/st_apps.dir/fft.cpp.o.d"
  "CMakeFiles/st_apps.dir/hydro2d.cpp.o"
  "CMakeFiles/st_apps.dir/hydro2d.cpp.o.d"
  "CMakeFiles/st_apps.dir/kernels.cpp.o"
  "CMakeFiles/st_apps.dir/kernels.cpp.o.d"
  "CMakeFiles/st_apps.dir/lu.cpp.o"
  "CMakeFiles/st_apps.dir/lu.cpp.o.d"
  "CMakeFiles/st_apps.dir/micro.cpp.o"
  "CMakeFiles/st_apps.dir/micro.cpp.o.d"
  "CMakeFiles/st_apps.dir/swim.cpp.o"
  "CMakeFiles/st_apps.dir/swim.cpp.o.d"
  "CMakeFiles/st_apps.dir/t3dheat.cpp.o"
  "CMakeFiles/st_apps.dir/t3dheat.cpp.o.d"
  "libst_apps.a"
  "libst_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
