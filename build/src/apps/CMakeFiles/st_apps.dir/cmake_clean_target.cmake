file(REMOVE_RECURSE
  "libst_apps.a"
)
