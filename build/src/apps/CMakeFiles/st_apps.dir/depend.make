# Empty dependencies file for st_apps.
# This may be replaced when dependencies are built.
