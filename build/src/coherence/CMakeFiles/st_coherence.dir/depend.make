# Empty dependencies file for st_coherence.
# This may be replaced when dependencies are built.
