file(REMOVE_RECURSE
  "CMakeFiles/st_coherence.dir/directory.cpp.o"
  "CMakeFiles/st_coherence.dir/directory.cpp.o.d"
  "libst_coherence.a"
  "libst_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
