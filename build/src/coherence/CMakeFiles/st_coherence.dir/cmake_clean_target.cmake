file(REMOVE_RECURSE
  "libst_coherence.a"
)
