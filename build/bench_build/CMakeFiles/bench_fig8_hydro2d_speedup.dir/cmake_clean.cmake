file(REMOVE_RECURSE
  "../bench/bench_fig8_hydro2d_speedup"
  "../bench/bench_fig8_hydro2d_speedup.pdb"
  "CMakeFiles/bench_fig8_hydro2d_speedup.dir/bench_fig8_hydro2d_speedup.cpp.o"
  "CMakeFiles/bench_fig8_hydro2d_speedup.dir/bench_fig8_hydro2d_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hydro2d_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
