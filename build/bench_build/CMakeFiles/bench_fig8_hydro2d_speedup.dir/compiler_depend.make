# Empty compiler generated dependencies file for bench_fig8_hydro2d_speedup.
# This may be replaced when dependencies are built.
