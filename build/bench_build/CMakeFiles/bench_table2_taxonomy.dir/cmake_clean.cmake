file(REMOVE_RECURSE
  "../bench/bench_table2_taxonomy"
  "../bench/bench_table2_taxonomy.pdb"
  "CMakeFiles/bench_table2_taxonomy.dir/bench_table2_taxonomy.cpp.o"
  "CMakeFiles/bench_table2_taxonomy.dir/bench_table2_taxonomy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
