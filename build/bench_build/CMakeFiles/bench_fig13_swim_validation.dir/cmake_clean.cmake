file(REMOVE_RECURSE
  "../bench/bench_fig13_swim_validation"
  "../bench/bench_fig13_swim_validation.pdb"
  "CMakeFiles/bench_fig13_swim_validation.dir/bench_fig13_swim_validation.cpp.o"
  "CMakeFiles/bench_fig13_swim_validation.dir/bench_fig13_swim_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_swim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
