# Empty dependencies file for bench_fig13_swim_validation.
# This may be replaced when dependencies are built.
