file(REMOVE_RECURSE
  "../bench/bench_fig3_hitrates"
  "../bench/bench_fig3_hitrates.pdb"
  "CMakeFiles/bench_fig3_hitrates.dir/bench_fig3_hitrates.cpp.o"
  "CMakeFiles/bench_fig3_hitrates.dir/bench_fig3_hitrates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hitrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
