file(REMOVE_RECURSE
  "../bench/bench_ablation_barrier"
  "../bench/bench_ablation_barrier.pdb"
  "CMakeFiles/bench_ablation_barrier.dir/bench_ablation_barrier.cpp.o"
  "CMakeFiles/bench_ablation_barrier.dir/bench_ablation_barrier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
