file(REMOVE_RECURSE
  "../bench/bench_future_scale"
  "../bench/bench_future_scale.pdb"
  "CMakeFiles/bench_future_scale.dir/bench_future_scale.cpp.o"
  "CMakeFiles/bench_future_scale.dir/bench_future_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
