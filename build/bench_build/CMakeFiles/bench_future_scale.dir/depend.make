# Empty dependencies file for bench_future_scale.
# This may be replaced when dependencies are built.
