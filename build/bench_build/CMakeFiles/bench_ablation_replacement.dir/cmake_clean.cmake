file(REMOVE_RECURSE
  "../bench/bench_ablation_replacement"
  "../bench/bench_ablation_replacement.pdb"
  "CMakeFiles/bench_ablation_replacement.dir/bench_ablation_replacement.cpp.o"
  "CMakeFiles/bench_ablation_replacement.dir/bench_ablation_replacement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
