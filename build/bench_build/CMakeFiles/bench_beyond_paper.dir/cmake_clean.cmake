file(REMOVE_RECURSE
  "../bench/bench_beyond_paper"
  "../bench/bench_beyond_paper.pdb"
  "CMakeFiles/bench_beyond_paper.dir/bench_beyond_paper.cpp.o"
  "CMakeFiles/bench_beyond_paper.dir/bench_beyond_paper.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_beyond_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
