# Empty compiler generated dependencies file for bench_beyond_paper.
# This may be replaced when dependencies are built.
