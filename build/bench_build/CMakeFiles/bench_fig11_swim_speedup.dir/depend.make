# Empty dependencies file for bench_fig11_swim_speedup.
# This may be replaced when dependencies are built.
