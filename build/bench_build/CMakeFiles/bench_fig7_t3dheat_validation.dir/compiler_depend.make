# Empty compiler generated dependencies file for bench_fig7_t3dheat_validation.
# This may be replaced when dependencies are built.
