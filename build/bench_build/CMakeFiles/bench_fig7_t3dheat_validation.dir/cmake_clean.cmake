file(REMOVE_RECURSE
  "../bench/bench_fig7_t3dheat_validation"
  "../bench/bench_fig7_t3dheat_validation.pdb"
  "CMakeFiles/bench_fig7_t3dheat_validation.dir/bench_fig7_t3dheat_validation.cpp.o"
  "CMakeFiles/bench_fig7_t3dheat_validation.dir/bench_fig7_t3dheat_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_t3dheat_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
