# Empty compiler generated dependencies file for bench_fig5_t3dheat_speedup.
# This may be replaced when dependencies are built.
