file(REMOVE_RECURSE
  "../bench/bench_whatif_l2size"
  "../bench/bench_whatif_l2size.pdb"
  "CMakeFiles/bench_whatif_l2size.dir/bench_whatif_l2size.cpp.o"
  "CMakeFiles/bench_whatif_l2size.dir/bench_whatif_l2size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_l2size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
