# Empty dependencies file for bench_whatif_l2size.
# This may be replaced when dependencies are built.
