# Empty dependencies file for bench_fig12_swim_breakdown.
# This may be replaced when dependencies are built.
