# Empty compiler generated dependencies file for bench_fig4_cpi_infinf.
# This may be replaced when dependencies are built.
