file(REMOVE_RECURSE
  "../bench/bench_fig4_cpi_infinf"
  "../bench/bench_fig4_cpi_infinf.pdb"
  "CMakeFiles/bench_fig4_cpi_infinf.dir/bench_fig4_cpi_infinf.cpp.o"
  "CMakeFiles/bench_fig4_cpi_infinf.dir/bench_fig4_cpi_infinf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cpi_infinf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
