# Empty compiler generated dependencies file for bench_fig6_t3dheat_breakdown.
# This may be replaced when dependencies are built.
