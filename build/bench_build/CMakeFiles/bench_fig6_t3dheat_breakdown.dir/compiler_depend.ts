# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig6_t3dheat_breakdown.
