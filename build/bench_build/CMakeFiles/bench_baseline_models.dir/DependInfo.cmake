
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_baseline_models.cpp" "bench_build/CMakeFiles/bench_baseline_models.dir/bench_baseline_models.cpp.o" "gcc" "bench_build/CMakeFiles/bench_baseline_models.dir/bench_baseline_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runner/CMakeFiles/st_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/st_scaltool.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/st_math.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/st_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/st_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/st_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/st_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/st_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/st_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/st_network.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/st_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/st_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/st_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/st_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
