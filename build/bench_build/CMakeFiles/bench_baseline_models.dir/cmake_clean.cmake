file(REMOVE_RECURSE
  "../bench/bench_baseline_models"
  "../bench/bench_baseline_models.pdb"
  "CMakeFiles/bench_baseline_models.dir/bench_baseline_models.cpp.o"
  "CMakeFiles/bench_baseline_models.dir/bench_baseline_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
