# Empty dependencies file for bench_fig9_hydro2d_breakdown.
# This may be replaced when dependencies are built.
