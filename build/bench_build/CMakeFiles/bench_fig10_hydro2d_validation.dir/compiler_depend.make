# Empty compiler generated dependencies file for bench_fig10_hydro2d_validation.
# This may be replaced when dependencies are built.
