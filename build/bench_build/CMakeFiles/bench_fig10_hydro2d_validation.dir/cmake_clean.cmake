file(REMOVE_RECURSE
  "../bench/bench_fig10_hydro2d_validation"
  "../bench/bench_fig10_hydro2d_validation.pdb"
  "CMakeFiles/bench_fig10_hydro2d_validation.dir/bench_fig10_hydro2d_validation.cpp.o"
  "CMakeFiles/bench_fig10_hydro2d_validation.dir/bench_fig10_hydro2d_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hydro2d_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
