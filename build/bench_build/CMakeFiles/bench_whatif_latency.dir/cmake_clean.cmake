file(REMOVE_RECURSE
  "../bench/bench_whatif_latency"
  "../bench/bench_whatif_latency.pdb"
  "CMakeFiles/bench_whatif_latency.dir/bench_whatif_latency.cpp.o"
  "CMakeFiles/bench_whatif_latency.dir/bench_whatif_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
