# Empty compiler generated dependencies file for bench_whatif_latency.
# This may be replaced when dependencies are built.
