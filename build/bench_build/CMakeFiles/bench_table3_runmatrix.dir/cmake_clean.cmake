file(REMOVE_RECURSE
  "../bench/bench_table3_runmatrix"
  "../bench/bench_table3_runmatrix.pdb"
  "CMakeFiles/bench_table3_runmatrix.dir/bench_table3_runmatrix.cpp.o"
  "CMakeFiles/bench_table3_runmatrix.dir/bench_table3_runmatrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_runmatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
