file(REMOVE_RECURSE
  "../bench/bench_table4_apps"
  "../bench/bench_table4_apps.pdb"
  "CMakeFiles/bench_table4_apps.dir/bench_table4_apps.cpp.o"
  "CMakeFiles/bench_table4_apps.dir/bench_table4_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
