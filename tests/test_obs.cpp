// Unit tests: observability — metric registry exactness under threads,
// span nesting and trace export validity, the disabled hot path allocating
// nothing, and the engine metrics agreeing with EngineStats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "cli/cli.hpp"
#include "common/check.hpp"
#include "engine/campaign.hpp"
#include "engine/engine_stats.hpp"
#include "engine/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_merge.hpp"
#include "runner/runner.hpp"
#include "trace/registry.hpp"

// Counting global operator new: the disabled-telemetry hot path must not
// allocate, and this is the only way to prove it.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace scaltool {
namespace {

/// RAII telemetry session so a failing test cannot leak an enabled flag
/// into the next one.
struct ObsSession {
  ObsSession() { obs::enable(); }
  ~ObsSession() { obs::disable(); }
};

ExperimentRunner test_runner() {
  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  return runner;
}

std::string temp_path(const std::string& tail) {
  return "/tmp/scaltool_test_obs_" + tail;
}

// ---- MetricRegistry ----------------------------------------------------

TEST(Metrics, CounterConcurrencyIsExact) {
  ObsSession session;
  obs::Counter& counter =
      obs::MetricRegistry::instance().counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) *
                                 kPerThread);
}

TEST(Metrics, HistogramConcurrencyIsExact) {
  ObsSession session;
  obs::Histogram& hist = obs::MetricRegistry::instance().histogram(
      "test.hist_concurrent", {1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i)
        hist.observe(static_cast<double>(t % 4) + 0.5);
    });
  for (std::thread& t : threads) t.join();
  const obs::HistogramData data = hist.data();
  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) *
                              kPerThread;
  EXPECT_EQ(data.count, total);
  std::uint64_t in_buckets = 0;
  for (const std::uint64_t c : data.bucket_counts) in_buckets += c;
  EXPECT_EQ(in_buckets, total);
  EXPECT_DOUBLE_EQ(data.min, 0.5);
  EXPECT_DOUBLE_EQ(data.max, 3.5);
}

TEST(Metrics, ResetKeepsReferencesValid) {
  obs::Counter& counter =
      obs::MetricRegistry::instance().counter("test.reset_ref");
  {
    ObsSession session;
    counter.add(5);
    EXPECT_EQ(counter.value(), 5u);
  }
  // A new session zeroes the value; the old reference still works.
  ObsSession session;
  EXPECT_EQ(counter.value(), 0u);
  counter.add(2);
  EXPECT_EQ(counter.value(), 2u);
}

TEST(Metrics, DisabledUpdatesAreIgnored) {
  {
    ObsSession wipe;  // start from zero
  }
  obs::MetricRegistry& reg = obs::MetricRegistry::instance();
  obs::Counter& counter = reg.counter("test.disabled");
  obs::Gauge& gauge = reg.gauge("test.disabled_gauge");
  obs::Histogram& hist = reg.histogram("test.disabled_hist");
  ASSERT_FALSE(obs::enabled());
  counter.add(10);
  gauge.set(3.5);
  hist.observe(1.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.data().count, 0u);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  ObsSession session;
  obs::Histogram& hist = obs::MetricRegistry::instance().histogram(
      "test.buckets", {1.0, 10.0, 100.0});
  for (int i = 0; i < 50; ++i) hist.observe(0.5);    // <= 1
  for (int i = 0; i < 30; ++i) hist.observe(5.0);    // <= 10
  for (int i = 0; i < 15; ++i) hist.observe(50.0);   // <= 100
  for (int i = 0; i < 5; ++i) hist.observe(1000.0);  // overflow
  const obs::HistogramData data = hist.data();
  ASSERT_EQ(data.bucket_counts.size(), 4u);
  EXPECT_EQ(data.bucket_counts[0], 50u);
  EXPECT_EQ(data.bucket_counts[1], 30u);
  EXPECT_EQ(data.bucket_counts[2], 15u);
  EXPECT_EQ(data.bucket_counts[3], 5u);
  EXPECT_EQ(data.count, 100u);
  // p50 lands in the first bucket, p95 in the third.
  EXPECT_LE(data.quantile(0.5), 1.0);
  EXPECT_LE(data.quantile(0.95), 100.0);
  EXPECT_GT(data.quantile(0.95), 10.0);
  EXPECT_DOUBLE_EQ(data.max, 1000.0);
}

// ---- Spans and the trace buffer ----------------------------------------

TEST(Spans, NestingProducesBalancedOrderedEvents) {
  ObsSession session;
  {
    obs::Span outer("outer", "test");
    outer.arg("k", "v");
    {
      obs::Span inner("inner", "test");
      inner.arg("n", 42);
    }
    obs::instant("tick", "test");
  }
  obs::disable();
  const std::vector<obs::ThreadTrace> trace = obs::collect_trace();
  ASSERT_EQ(trace.size(), 1u);
  const std::vector<obs::TraceEvent>& events = trace[0].events;
  ASSERT_EQ(events.size(), 5u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_STREQ(events[3].name, "tick");
  EXPECT_EQ(events[3].phase, 'i');
  EXPECT_STREQ(events[4].name, "outer");
  EXPECT_EQ(events[4].phase, 'E');
  // Timestamps are non-decreasing within the thread.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  // Args ride on the 'E' events.
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].key, "n");
  EXPECT_EQ(events[2].args[0].value, "42");
  EXPECT_TRUE(events[2].args[0].numeric);
  ASSERT_EQ(events[4].args.size(), 1u);
  EXPECT_EQ(events[4].args[0].value, "v");
  EXPECT_FALSE(events[4].args[0].numeric);
}

TEST(Spans, EnableStartsAFreshSession) {
  {
    ObsSession first;
    obs::Span span("stale", "test");
  }
  ObsSession second;
  { obs::Span span("fresh", "test"); }
  obs::disable();
  const std::vector<obs::ThreadTrace> trace = obs::collect_trace();
  ASSERT_EQ(trace.size(), 1u);
  ASSERT_EQ(trace[0].events.size(), 2u);
  EXPECT_STREQ(trace[0].events[0].name, "fresh");
}

TEST(Spans, ChromeTraceJsonIsValidAndBalanced) {
  ObsSession session;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 10; ++i) {
        obs::Span span("work", "test");
        span.arg("i", i);
        obs::Span nested("step", "test");
      }
    });
  for (std::thread& t : threads) t.join();
  obs::disable();

  const obs::JsonValue doc = obs::json_parse(obs::chrome_trace_json());
  const obs::JsonValue::Array& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  bool process_meta = false;
  std::map<double, int> depth;         // tid -> open span depth
  std::map<double, double> last_ts;    // tid -> last timestamp
  for (const obs::JsonValue& e : events) {
    const std::string phase = e.at("ph").as_string();
    if (phase == "M") {
      if (e.at("name").as_string() == "process_name") process_meta = true;
      continue;
    }
    const double tid = e.at("tid").as_number();
    const double ts = e.at("ts").as_number();
    ASSERT_TRUE(phase == "B" || phase == "E" || phase == "i");
    if (phase == "B") ++depth[tid];
    if (phase == "E") {
      --depth[tid];
      ASSERT_GE(depth[tid], 0) << "E without a matching B on tid " << tid;
    }
    if (last_ts.count(tid))
      EXPECT_GE(ts, last_ts[tid]) << "timestamps regressed on tid " << tid;
    last_ts[tid] = ts;
  }
  EXPECT_TRUE(process_meta);
  for (const auto& [tid, d] : depth)
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
}

TEST(Spans, DisabledHotPathAllocatesNothing) {
  // Registration allocates (string keys), so fetch the references first.
  obs::MetricRegistry& reg = obs::MetricRegistry::instance();
  obs::Counter& counter = reg.counter("test.noalloc_counter");
  obs::Histogram& hist = reg.histogram("test.noalloc_hist");
  ASSERT_FALSE(obs::enabled());

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("noalloc", "test");
    span.arg("k", "v").arg("n", i).arg("d", 1.5);
    counter.add();
    hist.observe(0.001);
    obs::instant("noalloc.tick", "test");
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before) << "disabled telemetry allocated "
                           << after - before << " times";
}

// ---- EngineStats -------------------------------------------------------

TEST(EngineStats, UtilizationDegenerateCases) {
  EngineStats s;
  s.workers = 0;
  s.wall_seconds = 1.0;
  s.busy_seconds = 1.0;
  EXPECT_DOUBLE_EQ(s.utilization(), 0.0);  // no workers: define as idle

  s.workers = 4;
  s.wall_seconds = 0.0;
  s.busy_seconds = 0.0;
  EXPECT_DOUBLE_EQ(s.utilization(), 0.0);  // nothing ran

  s.busy_seconds = 0.5;
  EXPECT_DOUBLE_EQ(s.utilization(), 1.0);  // instantaneous but busy

  s.wall_seconds = 1.0;
  s.busy_seconds = 2.0;
  EXPECT_DOUBLE_EQ(s.utilization(), 0.5);

  s.busy_seconds = 100.0;  // inconsistent inputs must clamp, not exceed 1
  EXPECT_LE(s.utilization(), 1.0);
}

TEST(EngineStats, PublishedMetricsMatchTheStruct) {
  ObsSession session;
  const ExperimentRunner runner = test_runner();
  const std::vector<int> procs{1, 2, 4};
  CampaignOptions options;
  options.jobs = 2;
  EngineStats stats;
  (void)run_matrix_parallel(runner, "compute_kernel",
                            runner.base_config().l2.size_bytes, procs,
                            options, &stats);
  obs::disable();

  const obs::MetricsSnapshot snap =
      obs::MetricRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("engine.jobs_total"), stats.jobs_total);
  EXPECT_EQ(snap.counters.at("engine.jobs_run"), stats.jobs_run);
  EXPECT_EQ(snap.counters.at("engine.jobs_cached"), stats.jobs_cached);
  EXPECT_EQ(snap.counters.at("engine.jobs_failed"), stats.jobs_failed);
  EXPECT_EQ(snap.counters.at("engine.jobs_quarantined"),
            stats.jobs_quarantined);
  EXPECT_EQ(snap.counters.at("engine.attempts"), stats.attempts);
  EXPECT_EQ(snap.counters.at("engine.retries"), stats.retries);
  EXPECT_DOUBLE_EQ(snap.gauges.at("engine.utilization"),
                   stats.utilization());
  EXPECT_DOUBLE_EQ(snap.gauges.at("engine.wall_seconds"),
                   stats.wall_seconds);
  // Every executed (non-cached) job lands one job_seconds observation.
  EXPECT_EQ(snap.histograms.at("engine.job_seconds").count, stats.jobs_run);
  // The pool executed one task per job.
  EXPECT_EQ(snap.counters.at("pool.tasks_submitted"), stats.jobs_total);
  EXPECT_EQ(snap.counters.at("pool.tasks_executed"), stats.jobs_total);
  // The simulator ran once per executed job.
  EXPECT_EQ(snap.counters.at("sim.runs"), stats.jobs_run);
}

// ---- Export round trip -------------------------------------------------

TEST(Export, MetricsJsonRoundTrips) {
  ObsSession session;
  obs::MetricRegistry& reg = obs::MetricRegistry::instance();
  reg.counter("rt.counter").add(7);
  reg.gauge("rt.gauge").set(2.25);
  obs::Histogram& hist = reg.histogram("rt.hist", {1.0, 2.0});
  hist.observe(0.5);
  hist.observe(1.5);
  hist.observe(99.0);
  obs::disable();

  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricsSnapshot back =
      obs::parse_metrics_json(obs::metrics_json(snap));
  EXPECT_EQ(back.counters.at("rt.counter"), 7u);
  EXPECT_DOUBLE_EQ(back.gauges.at("rt.gauge"), 2.25);
  const obs::HistogramData& h = back.histograms.at("rt.hist");
  EXPECT_EQ(h.count, 3u);
  ASSERT_EQ(h.bucket_counts.size(), 3u);
  EXPECT_EQ(h.bucket_counts[0], 1u);
  EXPECT_EQ(h.bucket_counts[1], 1u);
  EXPECT_EQ(h.bucket_counts[2], 1u);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 99.0);
  EXPECT_DOUBLE_EQ(h.sum, 101.0);
}

TEST(Export, ParseRejectsForeignJson) {
  EXPECT_THROW(obs::parse_metrics_json("{\"schema\":\"other\"}"),
               CheckError);
  EXPECT_THROW(obs::parse_metrics_json("not json"), CheckError);
}

// ---- CLI ---------------------------------------------------------------

TEST(Cli, CollectWritesTraceAndMetrics) {
  const std::string trace_path = temp_path("trace.json");
  const std::string metrics_path = temp_path("metrics.json");
  const std::string out_path = temp_path("archive.txt");
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());

  std::ostringstream os;
  const int rc = cli::run_command(
      {"collect", "compute_kernel", "--out=" + out_path, "--size=1xL2",
       "--max-procs=4", "--iters=1", "--jobs=2",
       "--trace-out=" + trace_path, "--metrics-out=" + metrics_path},
      os);
  ASSERT_EQ(rc, 0) << os.str();
  EXPECT_FALSE(obs::enabled()) << "the command must disable telemetry";

  // The trace parses and contains the campaign spans.
  const obs::JsonValue trace =
      obs::json_parse(obs::read_text_file(trace_path));
  const obs::JsonValue::Array& events = trace.at("traceEvents").as_array();
  bool saw_plan = false, saw_job = false, saw_machine = false;
  for (const obs::JsonValue& e : events) {
    const std::string name = e.at("name").as_string();
    if (name == "campaign.plan") saw_plan = true;
    if (name == "job") saw_job = true;
    if (name == "machine.run") saw_machine = true;
  }
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_job);
  EXPECT_TRUE(saw_machine);

  // The metrics parse and agree with the engine's own banner tallies.
  const obs::MetricsSnapshot snap =
      obs::parse_metrics_json(obs::read_text_file(metrics_path));
  EXPECT_EQ(snap.counters.at("engine.jobs_total"),
            snap.counters.at("engine.jobs_run") +
                snap.counters.at("engine.jobs_cached") +
                snap.counters.at("engine.jobs_quarantined"));
  EXPECT_GT(snap.counters.at("sim.runs"), 0u);

  // `scaltool stats` renders the exported file.
  std::ostringstream stats_os;
  EXPECT_EQ(cli::run_command({"stats", metrics_path}, stats_os), 0);
  EXPECT_NE(stats_os.str().find("engine.jobs_total"), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  std::remove(out_path.c_str());
}

TEST(Cli, StatsRejectsMissingFile) {
  std::ostringstream os;
  EXPECT_EQ(cli::run_command({"stats", "/nonexistent/metrics.json"}, os), 1);
}

TEST(Cli, TelemetryDoesNotChangeTheArchive) {
  const std::string plain = temp_path("plain_archive.txt");
  const std::string traced = temp_path("traced_archive.txt");
  const std::string trace_path = temp_path("side_trace.json");

  std::ostringstream os1, os2;
  ASSERT_EQ(cli::run_command({"collect", "compute_kernel",
                              "--out=" + plain, "--size=1xL2",
                              "--max-procs=2", "--iters=1"},
                             os1),
            0);
  ASSERT_EQ(cli::run_command({"collect", "compute_kernel",
                              "--out=" + traced, "--size=1xL2",
                              "--max-procs=2", "--iters=1",
                              "--trace-out=" + trace_path},
                             os2),
            0);

  std::ifstream a(plain), b(traced);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str()) << "telemetry changed the archive bytes";

  std::remove(plain.c_str());
  std::remove(traced.c_str());
  std::remove(trace_path.c_str());
}

// ---- Trace context and propagation (DESIGN.md §13) ----------------------

TEST(Tracing, MintedIdsAreUniqueAndPrefixed) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::string id = obs::mint_trace_id("front");
    EXPECT_EQ(id.rfind("front-", 0), 0u) << id;
    EXPECT_TRUE(ids.insert(id).second) << "duplicate trace id " << id;
  }
}

TEST(Tracing, TraceScopeNestsAndRestores) {
  EXPECT_FALSE(obs::current_trace().active());
  {
    obs::TraceScope outer(obs::TraceContext{"t-outer", "root"});
    EXPECT_EQ(obs::current_trace().trace_id, "t-outer");
    {
      obs::TraceScope inner(obs::TraceContext{"t-inner", "mid"});
      EXPECT_EQ(obs::current_trace().trace_id, "t-inner");
      EXPECT_EQ(obs::current_trace().parent_span, "mid");
    }
    EXPECT_EQ(obs::current_trace().trace_id, "t-outer");
  }
  EXPECT_FALSE(obs::current_trace().active());
}

TEST(Tracing, SpansTagTheAmbientTraceId) {
  ObsSession session;
  {
    obs::TraceScope scope(obs::TraceContext{"t-tag", "parent"});
    obs::Span span("tagged", "test");
  }
  { obs::Span span("untagged", "test"); }
  obs::disable();
  const std::vector<obs::ThreadTrace> trace = obs::collect_trace();
  ASSERT_EQ(trace.size(), 1u);
  const std::vector<obs::TraceEvent>& events = trace[0].events;
  ASSERT_EQ(events.size(), 4u);
  // "tagged" E carries the trace_id arg; "untagged" E carries none.
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].key, "trace_id");
  EXPECT_EQ(events[1].args[0].value, "t-tag");
  EXPECT_TRUE(events[3].args.empty());
}

TEST(Tracing, ThreadPoolPropagatesTheSubmitterContext) {
  ObsSession session;
  {
    ThreadPool pool(2);
    obs::TraceScope scope(obs::TraceContext{"t-pool", "submitter"});
    std::vector<std::future<std::string>> futures;
    for (int i = 0; i < 4; ++i)
      futures.push_back(pool.submit(
          [] { return obs::current_trace().trace_id; }));
    for (std::future<std::string>& f : futures)
      EXPECT_EQ(f.get(), "t-pool");
  }
  obs::disable();
  // Every pool.task span recorded on the worker threads is tagged too.
  int tagged = 0;
  for (const obs::ThreadTrace& t : obs::collect_trace())
    for (const obs::TraceEvent& e : t.events)
      if (e.phase == 'E' && std::string(e.name) == "pool.task")
        for (const obs::TraceArg& a : e.args)
          if (a.key == "trace_id" && a.value == "t-pool") ++tagged;
  EXPECT_EQ(tagged, 4);
}

TEST(Tracing, DuplicateArgKeysKeepTheLastValue) {
  ObsSession session;
  {
    obs::TraceScope scope(obs::TraceContext{"t-dup", ""});
    obs::Span span("dup", "test");
    // Explicit trace_id arg supersedes the ambient one the span added.
    span.arg("trace_id", "explicit-wins");
    span.arg("k", "first");
    span.arg("k", "second");
  }
  obs::disable();
  const obs::JsonValue doc = obs::json_parse(obs::chrome_trace_json());
  bool checked = false;
  for (const obs::JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "E") continue;
    if (e.at("name").as_string() != "dup") continue;
    const obs::JsonValue::Object& args = e.at("args").as_object();
    EXPECT_EQ(args.at("trace_id").as_string(), "explicit-wins");
    EXPECT_EQ(args.at("k").as_string(), "second");
    checked = true;
  }
  EXPECT_TRUE(checked);
}

// ---- Exporter escaping (satellite: control bytes in span args) ----------

TEST(Tracing, HostileArgBytesSurviveTheExportRoundTrip) {
  ObsSession session;
  {
    obs::Span span("hostile", "test");
    span.arg("ctrl", std::string("a\x01\x02\n\tb"));
    span.arg("invalid_utf8", std::string("x\xFF\xFEy"));
    span.arg("overlong", std::string("\xC0\xAF"));       // overlong '/'
    span.arg("surrogate", std::string("\xED\xA0\x80"));  // U+D800
    span.arg("truncated", std::string("\xE2\x82"));      // cut-off €
    span.arg("valid", std::string("caf\xC3\xA9 \xE2\x82\xAC"));
  }
  obs::disable();
  // The merge path parses exported traces with the strict obs parser: a
  // hostile byte that breaks json_parse would break trace-merge.
  const std::string json = obs::chrome_trace_json();
  const obs::JsonValue doc = obs::json_parse(json);
  bool found = false;
  for (const obs::JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "E") continue;
    if (e.at("name").as_string() != "hostile") continue;
    const obs::JsonValue::Object& args = e.at("args").as_object();
    // Control characters in valid UTF-8 round-trip exactly.
    EXPECT_EQ(args.at("ctrl").as_string(), "a\x01\x02\n\tb");
    EXPECT_EQ(args.at("valid").as_string(), "caf\xC3\xA9 \xE2\x82\xAC");
    // Invalid bytes were escaped as \u00XX, so they parse back as the
    // corresponding Latin-1 code points — lossy but never CheckError.
    EXPECT_FALSE(args.at("invalid_utf8").as_string().empty());
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Tracing, JsonEscapeProducesStrictlyParseableStrings) {
  // Every single-byte string must escape to something the strict parser
  // accepts — including all 128 non-ASCII bytes standing alone.
  for (int b = 1; b < 256; ++b) {
    const std::string raw(1, static_cast<char>(b));
    const std::string doc = "\"" + obs::json_escape(raw) + "\"";
    try {
      (void)obs::json_parse(doc).as_string();
    } catch (const CheckError& e) {
      FAIL() << "byte 0x" << std::hex << b << " escaped to unparseable "
             << doc << " (" << e.what() << ")";
    }
  }
}

// ---- Metric merge semantics (DESIGN.md §13) -----------------------------

namespace {

obs::HistogramData make_hist(std::vector<double> bounds,
                             std::vector<std::uint64_t> buckets,
                             double min_v, double max_v) {
  obs::HistogramData h;
  h.bounds = std::move(bounds);
  h.bucket_counts = std::move(buckets);
  for (const std::uint64_t c : h.bucket_counts) h.count += c;
  h.min = min_v;
  h.max = max_v;
  h.sum = min_v + max_v;  // any value works: merge only requires additivity
  return h;
}

}  // namespace

TEST(Merge, HistogramsMergeElementwise) {
  const obs::HistogramData a = make_hist({1.0, 2.0}, {3, 2, 1}, 0.5, 9.0);
  const obs::HistogramData b = make_hist({1.0, 2.0}, {1, 0, 4}, 0.25, 50.0);
  const obs::HistogramData m = obs::merge_histograms(a, b);
  ASSERT_EQ(m.bucket_counts.size(), 3u);
  EXPECT_EQ(m.bucket_counts[0], 4u);
  EXPECT_EQ(m.bucket_counts[1], 2u);
  EXPECT_EQ(m.bucket_counts[2], 5u);
  EXPECT_EQ(m.count, 11u);
  EXPECT_DOUBLE_EQ(m.sum, a.sum + b.sum);
  EXPECT_DOUBLE_EQ(m.min, 0.25);
  EXPECT_DOUBLE_EQ(m.max, 50.0);
}

TEST(Merge, EmptyHistogramIsTheIdentity) {
  const obs::HistogramData a = make_hist({1.0, 2.0}, {3, 2, 1}, 0.5, 9.0);
  const obs::HistogramData empty;
  const obs::HistogramData left = obs::merge_histograms(empty, a);
  const obs::HistogramData right = obs::merge_histograms(a, empty);
  for (const obs::HistogramData* m : {&left, &right}) {
    EXPECT_EQ(m->count, a.count);
    EXPECT_EQ(m->bucket_counts, a.bucket_counts);
    EXPECT_DOUBLE_EQ(m->min, a.min);
    EXPECT_DOUBLE_EQ(m->max, a.max);
  }
}

TEST(Merge, HistogramMergeIsAssociative) {
  const obs::HistogramData a = make_hist({1.0}, {3, 1}, 0.5, 9.0);
  const obs::HistogramData b = make_hist({1.0}, {1, 4}, 0.25, 50.0);
  const obs::HistogramData c = make_hist({1.0}, {0, 2}, 2.0, 3.0);
  const obs::HistogramData left =
      obs::merge_histograms(obs::merge_histograms(a, b), c);
  const obs::HistogramData right =
      obs::merge_histograms(a, obs::merge_histograms(b, c));
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.bucket_counts, right.bucket_counts);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_DOUBLE_EQ(left.min, right.min);
  EXPECT_DOUBLE_EQ(left.max, right.max);
}

TEST(Merge, MismatchedBoundsAreRejected) {
  const obs::HistogramData a = make_hist({1.0, 2.0}, {1, 1, 1}, 1.0, 2.0);
  const obs::HistogramData b = make_hist({1.0, 4.0}, {1, 1, 1}, 1.0, 2.0);
  EXPECT_THROW(obs::merge_histograms(a, b), CheckError);
}

TEST(Merge, SnapshotFoldSumsCountersAndMaxesGauges) {
  obs::MetricsSnapshot s0;
  s0.counters["requests"] = 10;
  s0.counters["only_in_s0"] = 3;
  s0.gauges["lag"] = 2.0;
  s0.histograms["lat"] = make_hist({1.0}, {2, 0}, 0.5, 0.9);
  obs::MetricsSnapshot s1;
  s1.counters["requests"] = 5;
  s1.gauges["lag"] = 7.0;
  s1.gauges["only_in_s1"] = 1.5;
  s1.histograms["lat"] = make_hist({1.0}, {0, 3}, 2.0, 8.0);

  const obs::MetricsSnapshot m = obs::merge_snapshots({s0, s1});
  EXPECT_EQ(m.counters.at("requests"), 15u);
  EXPECT_EQ(m.counters.at("only_in_s0"), 3u);
  EXPECT_DOUBLE_EQ(m.gauges.at("lag"), 7.0);  // max: the worst shard
  EXPECT_DOUBLE_EQ(m.gauges.at("only_in_s1"), 1.5);
  EXPECT_EQ(m.histograms.at("lat").count, 5u);
  EXPECT_DOUBLE_EQ(m.histograms.at("lat").max, 8.0);

  EXPECT_TRUE(obs::merge_snapshots({}).counters.empty());
}

// ---- Compact metrics JSON and Prometheus exposition ---------------------

TEST(Export, CompactMetricsJsonIsOneLineAndEquivalent) {
  ObsSession session;
  obs::MetricRegistry& reg = obs::MetricRegistry::instance();
  reg.counter("compact.counter").add(3);
  reg.histogram("compact.hist", {1.0}).observe(0.5);
  obs::disable();
  const obs::MetricsSnapshot snap = reg.snapshot();
  const std::string compact = obs::metrics_json(snap, /*compact=*/true);
  EXPECT_EQ(compact.find('\n'), std::string::npos)
      << "compact metrics JSON must fit one NDJSON line";
  const obs::MetricsSnapshot back = obs::parse_metrics_json(compact);
  EXPECT_EQ(back.counters.at("compact.counter"), 3u);
  EXPECT_EQ(back.histograms.at("compact.hist").count, 1u);
}

TEST(Export, PrometheusTextExposesEveryKind) {
  obs::MetricsSnapshot snap;
  snap.counters["serve.requests"] = 12;
  snap.gauges["fleet.journal_lag.shard0"] = 4.0;
  snap.histograms["job.seconds"] = make_hist({0.1, 1.0}, {5, 3, 2}, 0.01, 7.0);

  const std::string text = obs::prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE scaltool_serve_requests_total counter"),
            std::string::npos) << text;
  EXPECT_NE(text.find("scaltool_serve_requests_total 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scaltool_fleet_journal_lag_shard0 gauge"),
            std::string::npos);
  EXPECT_NE(text.find("scaltool_fleet_journal_lag_shard0 4"),
            std::string::npos);
  // Histogram buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("scaltool_job_seconds_bucket{le=\"0.1\"} 5"),
            std::string::npos) << text;
  EXPECT_NE(text.find("scaltool_job_seconds_bucket{le=\"1\"} 8"),
            std::string::npos) << text;
  EXPECT_NE(text.find("scaltool_job_seconds_bucket{le=\"+Inf\"} 10"),
            std::string::npos) << text;
  EXPECT_NE(text.find("scaltool_job_seconds_count 10"), std::string::npos);
  // Exposition format: every line ends with \n, no blank lines between
  // families' samples.
  EXPECT_EQ(text.back(), '\n');
}

// ---- Trace merge (DESIGN.md §13) ----------------------------------------

namespace {

/// Exports the current (disabled) trace buffer as `name` with `pid`.
std::string export_as(const std::string& name, std::int64_t pid) {
  return obs::chrome_trace_json(obs::TraceProcessInfo{pid, name});
}

}  // namespace

TEST(TraceMerge, AssignsLanesAndRebasesClocks) {
  // Two "processes" recorded sequentially in this one test process: the
  // second session's epoch is later, so after rebasing its events must
  // land at larger absolute timestamps than the first's.
  obs::enable();
  { obs::Span span("early", "test"); }
  obs::disable();
  const std::string first = export_as("front-door", 100);

  obs::enable();
  { obs::Span span("late", "test"); }
  obs::disable();
  const std::string second = export_as("shard-0", 200);

  const std::string merged = obs::merge_chrome_traces(
      {{"front-door", first}, {"shard-0", second}});
  const obs::JsonValue doc = obs::json_parse(merged);
  const obs::JsonValue::Array& events = doc.at("traceEvents").as_array();

  std::map<std::string, double> lane;       // process_name -> merged pid
  std::map<std::string, double> begin_ts;   // span name -> merged ts
  for (const obs::JsonValue& e : events) {
    if (e.at("ph").as_string() == "M") {
      if (e.at("name").as_string() == "process_name")
        lane[e.at("args").as_object().at("name").as_string()] =
            e.at("pid").as_number();
      continue;
    }
    if (e.at("ph").as_string() == "B")
      begin_ts[e.at("name").as_string()] = e.at("ts").as_number();
  }
  // Lanes: deterministic pids by input order, names preserved.
  ASSERT_EQ(lane.size(), 2u);
  EXPECT_DOUBLE_EQ(lane.at("front-door"), 1.0);
  EXPECT_DOUBLE_EQ(lane.at("shard-0"), 2.0);
  // Clock rebase: the later session's span sits later on the shared axis.
  ASSERT_TRUE(begin_ts.count("early"));
  ASSERT_TRUE(begin_ts.count("late"));
  EXPECT_GT(begin_ts.at("late"), begin_ts.at("early"));
}

TEST(TraceMerge, RejectsNonTraceInput) {
  EXPECT_THROW(obs::merge_chrome_traces({}), CheckError);
  EXPECT_THROW(obs::merge_chrome_traces({{"x", "not json"}}), CheckError);
  EXPECT_THROW(obs::merge_chrome_traces({{"x", "{\"no_events\":1}"}}),
               CheckError);
}

TEST(Cli, TraceMergeCommandFusesFiles) {
  obs::enable();
  { obs::Span span("piece", "test"); }
  obs::disable();
  const std::string in1 = temp_path("merge_in1.json");
  const std::string in2 = temp_path("merge_in2.json");
  const std::string out = temp_path("merge_out.json");
  obs::write_text_file(in1, export_as("alpha", 11));
  obs::write_text_file(in2, export_as("beta", 22));

  std::ostringstream os;
  ASSERT_EQ(cli::run_command(
                {"trace-merge", "--out=" + out, in1, in2}, os), 0)
      << os.str();
  EXPECT_NE(os.str().find("merged 2 traces"), std::string::npos);
  const obs::JsonValue doc = obs::json_parse(obs::read_text_file(out));
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());

  // Error paths: no inputs, missing --out.
  std::ostringstream err;
  EXPECT_NE(cli::run_command({"trace-merge", "--out=" + out}, err), 0);
  EXPECT_NE(cli::run_command({"trace-merge", in1}, err), 0);

  std::remove(in1.c_str());
  std::remove(in2.c_str());
  std::remove(out.c_str());
}

// ---- JSON parser hardening ----------------------------------------------
//
// The parser reads untrusted bytes (the analysis service's wire requests,
// user-supplied metrics files): hostile input must fail with CheckError —
// never crash, hang, or silently mis-parse.

TEST(JsonFuzz, DeepNestingRejectedNotStackOverflow) {
  std::string deep_arrays(4096, '[');
  EXPECT_THROW(obs::json_parse(deep_arrays), CheckError);

  std::string closed(2048, '[');
  closed += std::string(2048, ']');
  EXPECT_THROW(obs::json_parse(closed), CheckError);

  std::string objects;
  for (int i = 0; i < 2048; ++i) objects += "{\"k\":";
  EXPECT_THROW(obs::json_parse(objects), CheckError);

  // Nesting below the cap still parses.
  std::string shallow = std::string(64, '[') + std::string(64, ']');
  EXPECT_TRUE(obs::json_parse(shallow).is_array());
}

TEST(JsonFuzz, TruncatedAndMalformedEscapes) {
  EXPECT_THROW(obs::json_parse("\"\\u"), CheckError);
  EXPECT_THROW(obs::json_parse("\"\\u12\""), CheckError);
  EXPECT_THROW(obs::json_parse("\"\\uZZZZ\""), CheckError);
  EXPECT_THROW(obs::json_parse("\"\\u 123\""), CheckError);
  EXPECT_THROW(obs::json_parse("\"\\q\""), CheckError);
  EXPECT_THROW(obs::json_parse("\"\\"), CheckError);
  EXPECT_THROW(obs::json_parse("\"unterminated"), CheckError);
  EXPECT_EQ(obs::json_parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(obs::json_parse("\"\\u00e9\"").as_string(), "\xC3\xA9");
}

TEST(JsonFuzz, HugeNumbersRejectedInsteadOfInf) {
  EXPECT_THROW(obs::json_parse("1e999"), CheckError);
  EXPECT_THROW(obs::json_parse("-1e999"), CheckError);
  EXPECT_THROW(obs::json_parse("[1, 2, 1e400]"), CheckError);
  // Large but representable values still parse exactly.
  EXPECT_DOUBLE_EQ(obs::json_parse("1e308").as_number(), 1e308);
  EXPECT_DOUBLE_EQ(obs::json_parse("1e-999").as_number(), 0.0);  // underflow
}

TEST(JsonFuzz, DuplicateObjectKeysRejected) {
  EXPECT_THROW(obs::json_parse("{\"a\":1,\"a\":2}"), CheckError);
  EXPECT_THROW(obs::json_parse("{\"a\":1,\"b\":{\"c\":1,\"c\":2}}"),
               CheckError);
  EXPECT_EQ(obs::json_parse("{\"a\":1,\"b\":2}").as_object().size(), 2u);
}

TEST(JsonFuzz, SeededMutationsOnlyEverThrowCheckError) {
  const std::string seedDoc =
      "{\"name\":\"cache.hit\",\"value\":12,\"tags\":[\"a\",\"b\"],"
      "\"nested\":{\"p50\":0.5,\"ok\":true,\"none\":null}}";
  // Deterministic xorshift so a failure reproduces; mutate bytes, truncate
  // and splice, and demand the parser either succeeds or throws CheckError.
  std::uint64_t state = 0x5EEDCAFEF00DULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 2000; ++round) {
    std::string doc = seedDoc;
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      const std::size_t at = next() % doc.size();
      switch (next() % 3) {
        case 0: doc[at] = static_cast<char>(next() % 256); break;
        case 1: doc = doc.substr(0, at); break;               // truncate
        case 2: doc.insert(at, 1, "{}[]\",:0\\"[next() % 9]); break;
      }
      if (doc.empty()) doc = "x";
    }
    try {
      (void)obs::json_parse(doc);
    } catch (const CheckError&) {
      // expected for mangled input
    } catch (const std::exception& e) {
      FAIL() << "non-CheckError escaped the parser for input: " << doc
             << " (" << e.what() << ")";
    }
  }
}

}  // namespace
}  // namespace scaltool
