// Golden-format tests: the exact rendering of tables and reports on fixed
// synthetic data. These pin the output contract that downstream scripts
// (CSV consumers, the EXPERIMENTS.md tables) depend on.
#include <gtest/gtest.h>

#include <string>

#include "common/ascii_chart.hpp"
#include "common/table.hpp"
#include "core/resources.hpp"

namespace scaltool {
namespace {

TEST(Golden, TableText) {
  Table t("demo");
  t.header({"name", "value"});
  t.add_row({"alpha", Table::cell(1.5, 2)});
  t.add_row({"beta", Table::cell(42)});
  EXPECT_EQ(t.to_text(),
            "| name  | value |\n"
            "|-------|-------|\n"
            "| alpha | 1.50  |\n"
            "| beta  | 42    |\n");
}

TEST(Golden, TableCsv) {
  Table t("demo");
  t.header({"n", "speedup"});
  t.add_row({Table::cell(1), Table::cell(1.0, 2)});
  t.add_row({Table::cell(32), Table::cell(15.94, 2)});
  EXPECT_EQ(t.to_csv(), "n,speedup\n1,1.00\n32,15.94\n");
}

TEST(Golden, NumberFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::cell(0.0, 1), "0.0");
  EXPECT_EQ(Table::cell(-1.5, 1), "-1.5");
  EXPECT_EQ(Table::cell(static_cast<long long>(-7)), "-7");
  EXPECT_EQ(Table::cell(static_cast<std::size_t>(1234)), "1234");
}

TEST(Golden, ResourceTableForPaperExample) {
  // The exact Table 1 content for n = 6 — the paper's headline numbers.
  const std::string csv = resource_table(6).to_csv();
  EXPECT_EQ(csv,
            "tool,runs,processors,files\n"
            "time,6,63,6\n"
            "speedshop,6,63,6\n"
            "existing tools (time + speedshop),12,126,12\n"
            "Scal-Tool,11,68,11\n");
}

TEST(Golden, AsciiChartLayout) {
  AsciiChart chart(10, 3);
  chart.add_series('x', "series", {{0, 0}, {1, 10}});
  chart.y_range(0, 10);
  const std::string out = chart.render();
  // Top row holds the max point at the right edge; bottom the min at the
  // left edge.
  EXPECT_EQ(out,
            "     10.00 |         x\n"
            "      5.00 |          \n"
            "      0.00 |x         \n"
            "           +----------\n"
            "            0        1\n"
            "  x = series\n");
}

}  // namespace
}  // namespace scaltool
