// Model-layer tests: the CPI model recovers the machine's planted
// parameters from counters alone, and the miss decomposition recovers the
// true compulsory/coherence/conflict split — the core scientific claims.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

// Shared fixture: collect once per app (runs are seconds even on one core).
class ModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
    runner.iterations = 3;
    const std::size_t l2 = runner.base_config().l2.size_bytes;
    inputs_ = new ScalToolInputs(
        runner.collect("t3dheat", 10 * l2, default_proc_counts(16)));
    report_ = new ScalabilityReport(analyze(*inputs_));
    config_ = new MachineConfig(runner.base_config());
  }
  static void TearDownTestSuite() {
    delete inputs_;
    delete report_;
    delete config_;
    inputs_ = nullptr;
    report_ = nullptr;
    config_ = nullptr;
  }

  static const ScalToolInputs& inputs() { return *inputs_; }
  static const ScalabilityReport& report() { return *report_; }
  static const MachineConfig& config() { return *config_; }

 private:
  static ScalToolInputs* inputs_;
  static ScalabilityReport* report_;
  static MachineConfig* config_;
};

ScalToolInputs* ModelTest::inputs_ = nullptr;
ScalabilityReport* ModelTest::report_ = nullptr;
MachineConfig* ModelTest::config_ = nullptr;

TEST_F(ModelTest, Pi0RecoversBaseCpi) {
  // The unbiased estimator should land very close to the machine's true
  // compute CPI, and closer than the biased Lubeck anchor.
  const CpiModel& m = report().model;
  EXPECT_NEAR(m.pi0, config().base_cpi, 0.05 * config().base_cpi);
  EXPECT_LT(std::abs(m.pi0 - config().base_cpi),
            std::abs(m.pi0_initial - config().base_cpi) + 1e-12);
  EXPECT_GT(m.pi0_initial, m.pi0);  // bias is upward (extra miss cycles)
}

TEST_F(ModelTest, T2RecoversL2HitLatency) {
  EXPECT_NEAR(report().model.t2, config().l2_hit_cycles,
              0.30 * config().l2_hit_cycles);
}

TEST_F(ModelTest, Tm1RecoversUniprocessorMemoryLatency) {
  MachineConfig uni = config();
  uni.num_procs = 1;
  EXPECT_NEAR(report().model.tm1, uni.tm_ground_truth(),
              0.15 * uni.tm_ground_truth());
}

TEST_F(ModelTest, FitIsTight) {
  EXPECT_GT(report().model.fit_r2, 0.98);
  EXPECT_GE(report().model.refine_iterations, 1);
}

TEST_F(ModelTest, TmGrowsWithProcessorCount) {
  const CpiModel& m = report().model;
  // tm(n) must be at least weakly increasing at small n where it is a
  // clean memory-latency estimate (at large n it absorbs MP stalls and
  // grows further, as in the paper).
  EXPECT_GE(m.tm_of(2), 0.8 * m.tm_of(1));
  EXPECT_GT(m.tm_of(16), m.tm_of(1));
}

TEST_F(ModelTest, CompulsoryRateMatchesGroundTruth) {
  // True compulsory fraction of L1 misses at the sweep's peak point is
  // what the estimator reads off; compare to the machine's classification
  // on the uniprocessor base run.
  const ValidationRecord& v1 = inputs().validation_for(1);
  const double total = v1.compulsory_misses + v1.coherence_misses +
                       v1.conflict_misses;
  ASSERT_GT(total, 0.0);
  // compulsory_rate is on the local-L2 basis; sanity: it is small and
  // positive for a streaming CG code.
  EXPECT_GT(report().miss.compulsory_rate, 0.0);
  EXPECT_LT(report().miss.compulsory_rate, 0.5);
}

TEST_F(ModelTest, CoherenceEstimateTracksGroundTruth) {
  // Coh(s0,n) should be near-zero for this barely-sharing application at
  // small n and bounded everywhere.
  for (const auto& [n, coh] : report().miss.coh) {
    EXPECT_GE(coh, 0.0);
    EXPECT_LT(coh, 0.5) << "n=" << n;
  }
}

TEST_F(ModelTest, L2HitrInfBracketsaMeasured) {
  // At n=1, the infinite-cache hit rate must exceed the measured one
  // (conflict misses removed); the curves converge at high counts.
  const double gap1 = report().miss.l2hitr_inf_of(1) -
                      report().miss.l2hitr_meas.at(1);
  const double gap16 = report().miss.l2hitr_inf_of(16) -
                       report().miss.l2hitr_meas.at(16);
  EXPECT_GT(gap1, 0.15);
  EXPECT_LT(gap16, gap1);
}

TEST_F(ModelTest, TsynEstimateTracksGroundTruth) {
  for (const BottleneckPoint& p : report().points) {
    if (p.n == 1) continue;
    MachineConfig cfg = config();
    cfg.num_procs = p.n;
    // The kernel-calibrated t_syn absorbs fetchop serialization, so it
    // sits at or above the raw round-trip latency.
    EXPECT_GT(p.tsyn, 0.5 * cfg.tsyn_ground_truth()) << "n=" << p.n;
  }
}

TEST_F(ModelTest, FractionsAreSane) {
  for (const BottleneckPoint& p : report().points) {
    EXPECT_GE(p.frac_syn, 0.0);
    EXPECT_GE(p.frac_imb, 0.0);
    EXPECT_LE(p.frac_syn + p.frac_imb, 1.0 + 1e-9);
    if (p.n == 1) {
      EXPECT_DOUBLE_EQ(p.frac_syn, 0.0);
      EXPECT_DOUBLE_EQ(p.frac_imb, 0.0);
    }
  }
}

TEST_F(ModelTest, CurvesAreOrdered) {
  for (const BottleneckPoint& p : report().points) {
    EXPECT_LE(p.cycles_no_l2lim, p.base_cycles * (1.0 + 1e-9));
    EXPECT_LE(p.cycles_no_l2lim_no_mp,
              p.cycles_no_l2lim * (1.0 + 1e-9));
    EXPECT_GE(p.cycles_no_l2lim_no_mp, 0.0);
  }
}

TEST_F(ModelTest, Eq9IdentityHolds) {
  // cpi_inf·inst = curve c + sync area + imb area whenever frac_imb was
  // not clamped (the identity is exact by construction of Eq. 9).
  for (const BottleneckPoint& p : report().points) {
    if (p.n == 1) continue;
    const double lhs = p.cycles_no_l2lim;
    const double rhs =
        p.cycles_no_l2lim_no_mp + p.sync_cost + p.imb_cost;
    EXPECT_NEAR(lhs, rhs, 0.02 * lhs) << "n=" << p.n;
  }
}

TEST_F(ModelTest, ReportAccessors) {
  EXPECT_EQ(report().point(4).n, 4);
  EXPECT_THROW(report().point(64), CheckError);
  EXPECT_THROW(report().model.tm_of(64), CheckError);
  EXPECT_THROW(report().miss.coh_of(64), CheckError);
}

TEST(EstimateTsyn, InvertsEq10OnSyntheticCounters) {
  RunRecord kernel;
  kernel.num_procs = 4;
  kernel.metrics.instructions = 1000.0;
  kernel.metrics.cycles = 1000.0 * 1.0 + 50.0 * 120.0;  // pi0=1, 50 fetchops
  kernel.metrics.store_to_shared = 50.0;
  kernel.metrics.cpi = kernel.metrics.cycles / kernel.metrics.instructions;
  EXPECT_NEAR(estimate_tsyn(kernel, 1.0), 120.0, 1e-9);
  kernel.metrics.store_to_shared = 0.0;
  EXPECT_THROW(estimate_tsyn(kernel, 1.0), CheckError);
}

TEST(CpiModelStandalone, RequiresOverflowingTriplets) {
  // Build inputs whose sweep never overflows the L2 → the fit must refuse.
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  ScalToolInputs inputs;
  inputs.app = "swim";
  inputs.s0 = l2;  // fits: nothing overflows
  inputs.l2_bytes = l2;
  inputs.base_runs.push_back(runner.run("swim", l2, 1));
  inputs.uni_runs.push_back(inputs.base_runs.front());
  inputs.uni_runs.push_back(runner.run("swim", l2 / 4, 1));
  EXPECT_THROW(estimate_cpi_model(inputs), CheckError);
}

}  // namespace
}  // namespace scaltool
