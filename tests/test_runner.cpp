// Unit tests: the experiment runner and the Table 3 collection matrix.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

ExperimentRunner make_runner() {
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  return runner;
}

TEST(Runner, DefaultProcCounts) {
  EXPECT_EQ(default_proc_counts(32),
            (std::vector<int>{1, 2, 4, 8, 16, 32}));
  EXPECT_EQ(default_proc_counts(1), (std::vector<int>{1}));
  EXPECT_EQ(default_proc_counts(5), (std::vector<int>{1, 2, 4}));
}

TEST(Runner, RunProducesConsistentRecord) {
  const ExperimentRunner runner = make_runner();
  const RunRecord rec = runner.run("swim", 128_KiB, 4);
  EXPECT_EQ(rec.workload, "swim");
  EXPECT_EQ(rec.dataset_bytes, 128_KiB);
  EXPECT_EQ(rec.num_procs, 4);
  EXPECT_GT(rec.metrics.instructions, 0.0);
  EXPECT_GT(rec.execution_cycles, 0.0);
  EXPECT_GT(rec.metrics.cpi, 0.0);
}

TEST(Runner, MakeValidationCarriesGroundTruth) {
  const ExperimentRunner runner = make_runner();
  const RunResult result = runner.run_full("swim", 128_KiB, 4);
  const ValidationRecord v = make_validation(result);
  EXPECT_EQ(v.num_procs, 4);
  EXPECT_GT(v.accumulated_cycles, 0.0);
  EXPECT_GT(v.mp_cycles, 0.0);
  EXPECT_NEAR(v.mp_cycles, v.sync_cycles + v.spin_cycles, 1e-9);
  EXPECT_GT(v.compulsory_misses, 0.0);
}

TEST(Runner, CollectBuildsTheTable3Matrix) {
  const ExperimentRunner runner = make_runner();
  const std::vector<int> procs{1, 2, 4, 8};
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  const ScalToolInputs inputs = runner.collect("t3dheat", s0, procs);
  EXPECT_NO_THROW(inputs.validate());

  // Base runs at every processor count, at s0.
  ASSERT_EQ(inputs.base_runs.size(), procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    EXPECT_EQ(inputs.base_runs[i].num_procs, procs[i]);
    EXPECT_EQ(inputs.base_runs[i].dataset_bytes, s0);
  }

  // Uniprocessor sweep: descending sizes, down into the L1.
  EXPECT_GE(inputs.uni_runs.size(), 4u);
  EXPECT_EQ(inputs.uni_runs.front().dataset_bytes, s0);
  EXPECT_LE(inputs.uni_runs.back().dataset_bytes,
            runner.base_config().l1.size_bytes);
  for (std::size_t i = 1; i < inputs.uni_runs.size(); ++i)
    EXPECT_LT(inputs.uni_runs[i].dataset_bytes,
              inputs.uni_runs[i - 1].dataset_bytes);

  // At least three sweep points overflow 2× the L2 (t2/tm triplets).
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const auto overflowing = std::count_if(
      inputs.uni_runs.begin(), inputs.uni_runs.end(),
      [&](const RunRecord& r) { return r.dataset_bytes > 2 * l2; });
  EXPECT_GE(overflowing, 3);

  // Kernels for every n > 1.
  ASSERT_EQ(inputs.kernels.size(), procs.size() - 1);
  for (const KernelMeasurement& k : inputs.kernels) {
    EXPECT_GT(k.sync_kernel.metrics.store_to_shared, 0.0);
    EXPECT_GT(k.spin_kernel.metrics.instructions, 0.0);
  }

  // Validation side-band parallels the base runs.
  ASSERT_EQ(inputs.validation.size(), procs.size());
}

TEST(Runner, CollectAddsCalibrationForSmallS0) {
  // Hydro2d-style s0 = 2.6× L2: the halving sweep alone gives only one
  // overflowing point, so calibration sizes must appear.
  const ExperimentRunner runner = make_runner();
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const auto s0 = static_cast<std::size_t>(2.6 * static_cast<double>(l2));
  const std::vector<int> procs{1, 2, 4};
  const ScalToolInputs inputs = runner.collect("hydro2d", s0, procs);
  const auto overflowing = std::count_if(
      inputs.uni_runs.begin(), inputs.uni_runs.end(),
      [&](const RunRecord& r) { return r.dataset_bytes > 2 * l2; });
  EXPECT_GE(overflowing, 3);
}

TEST(Runner, CollectRequiresUniprocessorFirst) {
  const ExperimentRunner runner = make_runner();
  const std::vector<int> procs{2, 4};
  EXPECT_THROW(runner.collect("swim", 128_KiB, procs), CheckError);
}

TEST(Runner, OnRunCallbackFires) {
  ExperimentRunner runner = make_runner();
  int calls = 0;
  runner.on_run = [&](const std::string&) { ++calls; };
  runner.run("swim", 64_KiB, 2);
  EXPECT_EQ(calls, 1);
}

TEST(Runner, ConfigForOverridesProcsOnly) {
  const ExperimentRunner runner = make_runner();
  const MachineConfig cfg = runner.config_for(16);
  EXPECT_EQ(cfg.num_procs, 16);
  EXPECT_EQ(cfg.l2.size_bytes, runner.base_config().l2.size_bytes);
}

TEST(Inputs, AccessorsAndValidation) {
  const ExperimentRunner runner = make_runner();
  const std::vector<int> procs{1, 2};
  const std::size_t s0 = 4 * runner.base_config().l2.size_bytes;
  ScalToolInputs inputs = runner.collect("swim", s0, procs);
  EXPECT_EQ(inputs.base_run(2).num_procs, 2);
  EXPECT_THROW(inputs.base_run(16), CheckError);
  EXPECT_EQ(inputs.kernel(2).num_procs, 2);
  EXPECT_THROW(inputs.kernel(4), CheckError);
  EXPECT_EQ(inputs.validation_for(1).num_procs, 1);
  EXPECT_LT(inputs.smallest_uni_run().dataset_bytes, s0);

  // Corrupt the matrix → validation trips.
  inputs.base_runs.front().num_procs = 3;
  EXPECT_THROW(inputs.validate(), CheckError);
}

}  // namespace
}  // namespace scaltool
