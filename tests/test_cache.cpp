// Unit + property tests: set-associative MESI cache.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/cache.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace scaltool {
namespace {

CacheConfig tiny() { return CacheConfig{1024, 2, 64}; }  // 8 sets × 2 ways

TEST(CacheConfig, GeometryMath) {
  const CacheConfig cfg = tiny();
  EXPECT_EQ(cfg.num_lines(), 16u);
  EXPECT_EQ(cfg.num_sets(), 8u);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(CacheConfig, RejectsBadGeometry) {
  CacheConfig cfg = tiny();
  cfg.line_bytes = 48;  // not a power of two
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = tiny();
  cfg.associativity = 3;  // 1024/(64·3) not integral
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = tiny();
  cfg.size_bytes = 1024 + 512;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Cache, MissThenHit) {
  Cache c(tiny());
  EXPECT_EQ(c.probe(0x100), LineState::kInvalid);
  EXPECT_FALSE(c.insert(0x100, LineState::kShared).has_value());
  EXPECT_EQ(c.probe(0x100), LineState::kShared);
  EXPECT_EQ(c.probe(0x13F), LineState::kShared);  // same 64B line
  EXPECT_EQ(c.probe(0x140), LineState::kInvalid); // next line
}

TEST(Cache, LineAlignment) {
  Cache c(tiny());
  EXPECT_EQ(c.line_of(0x1000), 0x1000u);
  EXPECT_EQ(c.line_of(0x103F), 0x1000u);
  EXPECT_EQ(c.line_of(0x1040), 0x1040u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache c(tiny());  // 8 sets → set stride is 8·64 = 512 bytes
  const Addr a = 0x0, b = 0x200, d = 0x400;  // all map to set 0
  c.insert(a, LineState::kShared);
  c.insert(b, LineState::kShared);
  c.touch(a);  // b is now LRU
  const auto victim = c.insert(d, LineState::kShared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line_addr, b);
  EXPECT_EQ(c.probe(a), LineState::kShared);
  EXPECT_EQ(c.probe(b), LineState::kInvalid);
  EXPECT_EQ(c.probe(d), LineState::kShared);
}

TEST(Cache, VictimCarriesState) {
  Cache c(tiny());
  c.insert(0x0, LineState::kModified);
  c.insert(0x200, LineState::kShared);
  const auto victim = c.insert(0x400, LineState::kExclusive);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->state, LineState::kModified);
}

TEST(Cache, InvalidateReturnsPriorState) {
  Cache c(tiny());
  c.insert(0x0, LineState::kModified);
  EXPECT_EQ(c.invalidate(0x0), LineState::kModified);
  EXPECT_EQ(c.invalidate(0x0), LineState::kInvalid);
  EXPECT_EQ(c.probe(0x0), LineState::kInvalid);
}

TEST(Cache, SetStateTransitions) {
  Cache c(tiny());
  c.insert(0x0, LineState::kExclusive);
  c.set_state(0x0, LineState::kModified);
  EXPECT_EQ(c.probe(0x0), LineState::kModified);
  EXPECT_THROW(c.set_state(0x0, LineState::kInvalid), CheckError);
  EXPECT_THROW(c.set_state(0x999, LineState::kShared), CheckError);
}

TEST(Cache, ContractViolations) {
  Cache c(tiny());
  c.insert(0x0, LineState::kShared);
  EXPECT_THROW(c.insert(0x0, LineState::kShared), CheckError);  // present
  EXPECT_THROW(c.insert(0x40, LineState::kInvalid), CheckError);
  EXPECT_THROW(c.touch(0x80), CheckError);  // absent
}

TEST(Cache, OccupancyAndClear) {
  Cache c(tiny());
  c.insert(0x0, LineState::kShared);
  c.insert(0x40, LineState::kShared);
  EXPECT_EQ(c.occupancy(), 2u);
  c.invalidate(0x0);
  EXPECT_EQ(c.occupancy(), 1u);
  c.clear();
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_EQ(c.probe(0x40), LineState::kInvalid);
}

TEST(Cache, ForEachLineVisitsAllValid) {
  Cache c(tiny());
  c.insert(0x0, LineState::kShared);
  c.insert(0x40, LineState::kModified);
  c.insert(0x80, LineState::kExclusive);
  c.invalidate(0x40);
  std::set<Addr> seen;
  c.for_each_line([&](Addr line, LineState) { seen.insert(line); });
  EXPECT_EQ(seen, (std::set<Addr>{0x0, 0x80}));
}

TEST(Cache, FullCacheHoldsExactlyCapacityDistinctLines) {
  Cache c(tiny());
  for (Addr line = 0; line < 64 * 64; line += 64)
    c.insert(line, LineState::kShared);
  EXPECT_EQ(c.occupancy(), tiny().num_lines());
}

// Property: under a random workload the cache never exceeds capacity, a
// line is never duplicated, and a working set that fits always hits after
// the first touch.
class CacheRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CacheRandomTest, InvariantsUnderRandomTraffic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337);
  Cache c(tiny());
  std::set<Addr> resident;
  for (int i = 0; i < 5000; ++i) {
    const Addr line = rng.next_below(256) * 64;
    switch (rng.next_below(3)) {
      case 0:
        if (c.probe(line) == LineState::kInvalid) {
          const auto victim = c.insert(line, LineState::kShared);
          resident.insert(line);
          if (victim) resident.erase(victim->line_addr);
        } else {
          c.touch(line);
        }
        break;
      case 1:
        if (c.probe(line) != LineState::kInvalid) {
          c.invalidate(line);
          resident.erase(line);
        }
        break;
      case 2:
        if (c.probe(line) != LineState::kInvalid)
          c.set_state(line, LineState::kModified);
        break;
    }
    ASSERT_LE(c.occupancy(), tiny().num_lines());
    ASSERT_EQ(c.occupancy(), resident.size());
  }
  // Cross-check the tag array against our mirror.
  std::set<Addr> tags;
  c.for_each_line([&](Addr line, LineState) {
    EXPECT_TRUE(tags.insert(line).second) << "duplicate line in tag array";
  });
  EXPECT_EQ(tags, resident);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheRandomTest, ::testing::Range(1, 11));

TEST(Cache, SmallWorkingSetAlwaysHitsAfterWarmup) {
  Cache c(tiny());
  std::vector<Addr> lines;
  for (Addr line = 0; line < 1024; line += 64) lines.push_back(line);
  for (Addr line : lines)
    if (c.probe(line) == LineState::kInvalid) c.insert(line, LineState::kShared);
  for (int sweep = 0; sweep < 4; ++sweep)
    for (Addr line : lines) {
      EXPECT_NE(c.probe(line), LineState::kInvalid);
      c.touch(line);
    }
}

}  // namespace
}  // namespace scaltool
