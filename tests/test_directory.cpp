// Unit + property tests: full-map bit-vector directory (Illinois/MESI).
#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <set>

#include "coherence/directory.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace scaltool {
namespace {

constexpr Addr kLine = 0x1000;

TEST(Directory, FirstReadIsCompulsoryAndExclusive) {
  Directory dir(4);
  const DirReadResult r = dir.read_miss(kLine, 0);
  EXPECT_TRUE(r.compulsory);
  EXPECT_TRUE(r.grant_exclusive);
  EXPECT_FALSE(r.intervention);
  const DirEntry* e = dir.find(kLine);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirEntry::State::kExclusive);
  EXPECT_EQ(e->owner, 0);
}

TEST(Directory, SecondReaderTriggersInterventionAndSharing) {
  Directory dir(4);
  dir.read_miss(kLine, 0);
  const DirReadResult r = dir.read_miss(kLine, 1);
  EXPECT_FALSE(r.compulsory);
  EXPECT_TRUE(r.intervention);
  EXPECT_EQ(r.owner, 0);
  EXPECT_FALSE(r.grant_exclusive);
  const DirEntry* e = dir.find(kLine);
  EXPECT_EQ(e->state, DirEntry::State::kShared);
  EXPECT_EQ(e->sharers, 0b11u);
}

TEST(Directory, ThirdReaderJoinsQuietly) {
  Directory dir(4);
  dir.read_miss(kLine, 0);
  dir.read_miss(kLine, 1);
  const DirReadResult r = dir.read_miss(kLine, 2);
  EXPECT_FALSE(r.intervention);
  EXPECT_EQ(dir.find(kLine)->sharers, 0b111u);
}

TEST(Directory, WriteToSharedInvalidatesOthers) {
  Directory dir(4);
  dir.read_miss(kLine, 0);
  dir.read_miss(kLine, 1);
  dir.read_miss(kLine, 2);
  const DirWriteResult w = dir.write_access(kLine, 1);
  EXPECT_FALSE(w.compulsory);
  EXPECT_FALSE(w.intervention);
  EXPECT_EQ(w.invalidate, 0b101u);  // procs 0 and 2
  const DirEntry* e = dir.find(kLine);
  EXPECT_EQ(e->state, DirEntry::State::kExclusive);
  EXPECT_EQ(e->owner, 1);
  EXPECT_EQ(e->sharers, 0b010u);
}

TEST(Directory, WriteMissOnForeignExclusiveIntervenes) {
  Directory dir(4);
  dir.write_access(kLine, 0);
  const DirWriteResult w = dir.write_access(kLine, 3);
  EXPECT_TRUE(w.intervention);
  EXPECT_EQ(w.owner, 0);
  EXPECT_EQ(w.invalidate, 0b0001u);
  EXPECT_EQ(dir.find(kLine)->owner, 3);
}

TEST(Directory, WriteByOwnerIsSilent) {
  Directory dir(4);
  dir.write_access(kLine, 2);
  const DirWriteResult w = dir.write_access(kLine, 2);
  EXPECT_FALSE(w.intervention);
  EXPECT_EQ(w.invalidate, 0u);
}

TEST(Directory, FirstWriteIsCompulsory) {
  Directory dir(4);
  const DirWriteResult w = dir.write_access(kLine, 0);
  EXPECT_TRUE(w.compulsory);
  EXPECT_EQ(w.invalidate, 0u);
}

TEST(Directory, EvictionsDrainToUncached) {
  Directory dir(4);
  dir.read_miss(kLine, 0);
  dir.read_miss(kLine, 1);
  dir.evict(kLine, 0);
  EXPECT_EQ(dir.find(kLine)->state, DirEntry::State::kShared);
  dir.evict(kLine, 1);
  EXPECT_EQ(dir.find(kLine)->state, DirEntry::State::kUncached);
  EXPECT_EQ(dir.find(kLine)->sharers, 0u);
}

TEST(Directory, EverCachedSurvivesEviction) {
  Directory dir(2);
  EXPECT_FALSE(dir.ever_cached(kLine));
  dir.read_miss(kLine, 0);
  dir.evict(kLine, 0);
  EXPECT_TRUE(dir.ever_cached(kLine));
  // A re-read is not compulsory.
  EXPECT_FALSE(dir.read_miss(kLine, 0).compulsory);
}

TEST(Directory, ContractViolations) {
  Directory dir(2);
  dir.read_miss(kLine, 0);
  EXPECT_THROW(dir.read_miss(kLine, 0), CheckError);  // already a sharer
  EXPECT_THROW(dir.evict(kLine, 1), CheckError);      // not a sharer
  EXPECT_THROW(dir.evict(0x9999, 0), CheckError);     // unknown line
  EXPECT_THROW(Directory(65), CheckError);            // bit vector limit
  EXPECT_THROW(Directory(0), CheckError);
}

// Property: replaying a random trace of read/write/evict events against a
// reference map, the directory's sharer sets and states always match, and
// exclusive entries always have exactly one sharer (MESI single-writer).
class DirectoryRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DirectoryRandomTest, MatchesReferenceModel) {
  const int procs = 8;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 99991);
  Directory dir(procs);
  // Reference: per line, set of holders and a dirty/exclusive owner.
  struct Ref {
    std::set<int> holders;
    int owner = -1;  // −1 = shared/uncached
  };
  std::map<Addr, Ref> ref;

  for (int step = 0; step < 4000; ++step) {
    const Addr line = rng.next_below(32) * 64;
    const int p = static_cast<int>(rng.next_below(procs));
    Ref& r = ref[line];
    switch (rng.next_below(3)) {
      case 0:  // read
        if (!r.holders.contains(p)) {
          dir.read_miss(line, p);
          const bool was_empty = r.holders.empty();
          r.holders.insert(p);
          r.owner = was_empty ? p : -1;  // E grant only when alone
        }
        break;
      case 1: {  // write
        const DirWriteResult w = dir.write_access(line, p);
        for (int q = 0; q < procs; ++q)
          if (w.invalidate & (1ull << q)) r.holders.erase(q);
        r.holders.insert(p);
        // Everyone else must be gone.
        ASSERT_EQ(r.holders.size(), 1u);
        r.owner = p;
        break;
      }
      case 2:  // evict
        if (r.holders.contains(p)) {
          dir.evict(line, p);
          r.holders.erase(p);
          if (r.owner == p) r.owner = -1;
        }
        break;
    }
    // Cross-check.
    const DirEntry* e = dir.find(line);
    if (e == nullptr) {
      // The line was never actually referenced (e.g. an evict/read of a
      // non-held line fell through).
      ASSERT_TRUE(r.holders.empty());
      continue;
    }
    std::uint64_t mask = 0;
    for (int q : r.holders) mask |= 1ull << q;
    ASSERT_EQ(e->sharers, mask) << "line 0x" << std::hex << line;
    if (e->state == DirEntry::State::kExclusive) {
      ASSERT_EQ(std::popcount(e->sharers), 1);
      ASSERT_TRUE(r.holders.contains(e->owner));
    }
    if (r.holders.empty()) {
      ASSERT_EQ(e->state, DirEntry::State::kUncached);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryRandomTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace scaltool
