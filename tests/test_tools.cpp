// Unit tests: the perfex / speedshop / ssusage emulations.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "machine/dsm_machine.hpp"
#include "common/check.hpp"
#include "tools/perfex.hpp"
#include "tools/speedshop.hpp"
#include "tools/ssusage.hpp"
#include "trace/registry.hpp"

namespace scaltool {
namespace {

RunResult sample_run(int procs) {
  register_standard_workloads();
  const auto w = WorkloadRegistry::instance().create("swim");
  DsmMachine machine(MachineConfig::origin2000_scaled(procs));
  WorkloadParams params;
  params.dataset_bytes = 128_KiB;
  params.iterations = 2;
  return machine.run(*w, params);
}

TEST(Perfex, ReportContainsEventsAndHeader) {
  const RunResult run = sample_run(4);
  const std::string text = perfex_report(run);
  EXPECT_NE(text.find("perfex: swim"), std::string::npos);
  EXPECT_NE(text.find("grad_instr"), std::string::npos);
  EXPECT_NE(text.find("l2_misses"), std::string::npos);
  EXPECT_EQ(text.find("-- proc"), std::string::npos);
}

TEST(Perfex, PerProcDumpsEachProcessor) {
  const RunResult run = sample_run(2);
  const std::string text = perfex_report(run, /*per_proc=*/true);
  EXPECT_NE(text.find("-- proc 0 --"), std::string::npos);
  EXPECT_NE(text.find("-- proc 1 --"), std::string::npos);
}

TEST(Speedshop, ProfilePartitionsAllCycles) {
  const RunResult run = sample_run(8);
  const SpeedshopProfile prof = speedshop_profile(run);
  EXPECT_NEAR(prof.total_cycles, run.accumulated_cycles,
              1e-6 * run.accumulated_cycles);
  EXPECT_GT(prof.user_cycles, 0.0);
  EXPECT_GT(prof.barrier_cycles, 0.0);
  EXPECT_GE(prof.wait_cycles, 0.0);
  EXPECT_NEAR(prof.user_cycles + prof.mp_cycles(), prof.total_cycles,
              1e-6 * prof.total_cycles);
}

TEST(Speedshop, UniprocessorHasNoMpCycles) {
  const RunResult run = sample_run(1);
  const SpeedshopProfile prof = speedshop_profile(run);
  EXPECT_DOUBLE_EQ(prof.mp_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(prof.mp_fraction(), 0.0);
}

TEST(Speedshop, ReportNamesTheIrixRoutines) {
  const std::string text = speedshop_report(sample_run(4));
  EXPECT_NE(text.find("mp_barrier"), std::string::npos);
  EXPECT_NE(text.find("mp_slave_wait_for_work"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

TEST(Speedshop, SampledProfileConvergesToExact) {
  const RunResult run = sample_run(8);
  const SpeedshopProfile exact = speedshop_profile(run);
  // Fine sampling: within 2% of the exact MP fraction.
  const SpeedshopProfile fine =
      speedshop_profile_sampled(run, /*sample_period=*/200.0);
  EXPECT_NEAR(fine.mp_fraction(), exact.mp_fraction(), 0.02);
  // Coarse sampling is noisier but still in the neighbourhood.
  const SpeedshopProfile coarse =
      speedshop_profile_sampled(run, /*sample_period=*/10000.0);
  EXPECT_NEAR(coarse.mp_fraction(), exact.mp_fraction(), 0.12);
  // Total sampled time ≈ total exact time (quantized to the period).
  EXPECT_NEAR(fine.total_cycles, exact.total_cycles,
              0.01 * exact.total_cycles + 200.0);
}

TEST(Speedshop, SampledProfileDeterministicPerSeed) {
  const RunResult run = sample_run(4);
  const SpeedshopProfile a = speedshop_profile_sampled(run, 1000.0, 7);
  const SpeedshopProfile b = speedshop_profile_sampled(run, 1000.0, 7);
  const SpeedshopProfile c = speedshop_profile_sampled(run, 1000.0, 8);
  EXPECT_DOUBLE_EQ(a.barrier_cycles, b.barrier_cycles);
  EXPECT_DOUBLE_EQ(a.wait_cycles, b.wait_cycles);
  // A different seed draws different samples (overwhelmingly likely).
  EXPECT_NE(a.user_cycles, c.user_cycles);
}

TEST(Speedshop, SampledRejectsBadPeriodAndHandlesTinyRuns) {
  const RunResult run = sample_run(2);
  EXPECT_THROW(speedshop_profile_sampled(run, 0.0), CheckError);
  // A period longer than the run yields an empty profile, not a crash.
  const SpeedshopProfile empty =
      speedshop_profile_sampled(run, 1e15);
  EXPECT_DOUBLE_EQ(empty.total_cycles, 0.0);
}

TEST(Ssusage, ReportsAllocatedBytes) {
  const RunResult run = sample_run(2);
  const SsusageReport rep = ssusage(run);
  // Swim allocates 6 arrays sized from the data set (page-rounded, plus
  // the allocator's anti-aliasing skew between arrays).
  EXPECT_GE(rep.max_bytes, 128_KiB);
  EXPECT_LE(rep.max_bytes, 160_KiB);
}

TEST(Ssusage, ProcsToFitMatchesThePaperArithmetic) {
  // The paper's check: 40 MB data / 4 MB L2 → enough caching at 10 procs.
  SsusageReport rep;
  rep.max_bytes = 40_MiB;
  EXPECT_EQ(rep.procs_to_fit(4_MiB), 10);
  rep.max_bytes = 10_MiB + 300_KiB;  // Hydro2d's 10.3 MB → 2-3 procs
  EXPECT_EQ(rep.procs_to_fit(4_MiB), 3);
  EXPECT_EQ(rep.procs_to_fit(0), 0);
}

TEST(Ssusage, ReportTextIsReadable) {
  const RunResult run = sample_run(2);
  const std::string text = ssusage_report(run, 64_KiB);
  EXPECT_NE(text.find("ssusage: swim"), std::string::npos);
  EXPECT_NE(text.find("processors"), std::string::npos);
}

}  // namespace
}  // namespace scaltool
