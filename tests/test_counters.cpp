// Unit tests: event counters and derived metrics.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/check.hpp"
#include "counters/counter_set.hpp"

namespace scaltool {
namespace {

TEST(Events, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (EventId id : all_events()) {
    const std::string_view name = event_name(id);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), kNumEvents);
}

TEST(CounterSet, AddAndGet) {
  CounterSet cs;
  EXPECT_DOUBLE_EQ(cs.get(EventId::kCycles), 0.0);
  cs.add(EventId::kCycles, 10.5);
  cs.add(EventId::kCycles, 2.0);
  EXPECT_DOUBLE_EQ(cs.get(EventId::kCycles), 12.5);
  cs.set(EventId::kCycles, 1.0);
  EXPECT_DOUBLE_EQ(cs.get(EventId::kCycles), 1.0);
  cs.reset();
  EXPECT_DOUBLE_EQ(cs.get(EventId::kCycles), 0.0);
}

TEST(CounterSet, PlusEqualsIsElementwise) {
  CounterSet a, b;
  a.add(EventId::kGraduatedLoads, 3);
  b.add(EventId::kGraduatedLoads, 4);
  b.add(EventId::kL2Misses, 1);
  a += b;
  EXPECT_DOUBLE_EQ(a.get(EventId::kGraduatedLoads), 7.0);
  EXPECT_DOUBLE_EQ(a.get(EventId::kL2Misses), 1.0);
}

CounterSnapshot two_proc_snapshot() {
  CounterSnapshot snap(2);
  // proc 0: 100 instr, 150 cycles, 40 loads, 10 stores, 5 L1D misses,
  // 2 L2 misses.
  snap.proc(0).add(EventId::kGraduatedInstructions, 100);
  snap.proc(0).add(EventId::kCycles, 150);
  snap.proc(0).add(EventId::kGraduatedLoads, 40);
  snap.proc(0).add(EventId::kGraduatedStores, 10);
  snap.proc(0).add(EventId::kL1DMisses, 5);
  snap.proc(0).add(EventId::kL2Misses, 2);
  // proc 1: 100 instr, 250 cycles, 30 loads, 20 stores, 15 L1D, 8 L2.
  snap.proc(1).add(EventId::kGraduatedInstructions, 100);
  snap.proc(1).add(EventId::kCycles, 250);
  snap.proc(1).add(EventId::kGraduatedLoads, 30);
  snap.proc(1).add(EventId::kGraduatedStores, 20);
  snap.proc(1).add(EventId::kL1DMisses, 15);
  snap.proc(1).add(EventId::kL2Misses, 8);
  return snap;
}

TEST(CounterSnapshot, AggregateSums) {
  const CounterSnapshot snap = two_proc_snapshot();
  const CounterSet agg = snap.aggregate();
  EXPECT_DOUBLE_EQ(agg.get(EventId::kGraduatedInstructions), 200.0);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kCycles), 400.0);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kL1DMisses), 20.0);
}

TEST(CounterSnapshot, ExecutionTimeIsSlowestProc) {
  EXPECT_DOUBLE_EQ(two_proc_snapshot().execution_time(), 250.0);
}

TEST(CounterSnapshot, DerivedMetricsMatchTheCpiAlgebra) {
  const DerivedMetrics d = two_proc_snapshot().derived();
  EXPECT_DOUBLE_EQ(d.cpi, 2.0);              // 400 / 200
  EXPECT_DOUBLE_EQ(d.hm, 10.0 / 200.0);      // L2 misses / instr
  EXPECT_DOUBLE_EQ(d.h2, 10.0 / 200.0);      // (20 − 10) / 200
  EXPECT_DOUBLE_EQ(d.mem_frac, 100.0 / 200.0);
  EXPECT_DOUBLE_EQ(d.l1_hitr, 1.0 - 20.0 / 100.0);
  EXPECT_DOUBLE_EQ(d.l2_hitr, 1.0 - 10.0 / 20.0);
  EXPECT_DOUBLE_EQ(d.instructions, 200.0);
  EXPECT_DOUBLE_EQ(d.cycles, 400.0);
}

TEST(CounterSnapshot, DerivedRequiresInstructions) {
  CounterSnapshot snap(1);
  EXPECT_THROW(snap.derived(), CheckError);
}

TEST(CounterSnapshot, PerProcValues) {
  const auto cycles = two_proc_snapshot().per_proc_values(EventId::kCycles);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_DOUBLE_EQ(cycles[0], 150.0);
  EXPECT_DOUBLE_EQ(cycles[1], 250.0);
}

TEST(CounterSnapshot, ToStringMentionsEveryEvent) {
  const std::string text = two_proc_snapshot().to_string();
  for (EventId id : all_events())
    EXPECT_NE(text.find(event_name(id)), std::string::npos)
        << event_name(id);
}

TEST(CounterSnapshot, EdgeRatesWithoutMemoryInstructions) {
  CounterSnapshot snap(1);
  snap.proc(0).add(EventId::kGraduatedInstructions, 50);
  snap.proc(0).add(EventId::kCycles, 60);
  const DerivedMetrics d = snap.derived();
  EXPECT_DOUBLE_EQ(d.l1_hitr, 1.0);
  EXPECT_DOUBLE_EQ(d.l2_hitr, 1.0);
  EXPECT_DOUBLE_EQ(d.mem_frac, 0.0);
}

}  // namespace
}  // namespace scaltool
