// Property tests: the Scal-Tool model recovers *planted* machine
// parameters from counters alone, across a grid of machine configurations.
//
// This is the reproduction's strongest claim in executable form: change
// the machine's true t2, memory latency, or compute CPI, hand the model
// nothing but event-counter values, and the fitted pi0 / t2 / tm(1) land
// on the planted values.
#include <gtest/gtest.h>

#include <string>

#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

struct PlantedMachine {
  const char* label;
  double base_cpi;
  double l2_hit_cycles;
  double mem_cycles;
};

class RecoveryTest : public ::testing::TestWithParam<PlantedMachine> {};

ScalabilityReport fit_on(const MachineConfig& cfg) {
  ExperimentRunner runner(cfg);
  runner.iterations = 6;
  const std::size_t s0 = 10 * cfg.l2.size_bytes;
  const ScalToolInputs inputs =
      runner.collect("t3dheat", s0, default_proc_counts(8));
  return analyze(inputs);
}

TEST_P(RecoveryTest, RecoversPlantedParameters) {
  const PlantedMachine& p = GetParam();
  MachineConfig cfg = MachineConfig::origin2000_scaled(1);
  cfg.base_cpi = p.base_cpi;
  cfg.l2_hit_cycles = p.l2_hit_cycles;
  cfg.mem_cycles = p.mem_cycles;
  const ScalabilityReport report = fit_on(cfg);

  EXPECT_NEAR(report.model.pi0, p.base_cpi, 0.06 * p.base_cpi);
  EXPECT_NEAR(report.model.t2, p.l2_hit_cycles, 0.35 * p.l2_hit_cycles);
  // tm(1) on a single node is exactly mem_cycles.
  EXPECT_NEAR(report.model.tm1, p.mem_cycles, 0.12 * p.mem_cycles);
  EXPECT_GT(report.model.fit_r2, 0.97);
}

INSTANTIATE_TEST_SUITE_P(
    MachineGrid, RecoveryTest,
    ::testing::Values(
        PlantedMachine{"origin_like", 1.0, 12.0, 70.0},
        PlantedMachine{"wide_issue", 0.5, 12.0, 70.0},
        PlantedMachine{"narrow_issue", 2.0, 12.0, 70.0},
        PlantedMachine{"fast_l2", 1.0, 4.0, 70.0},
        PlantedMachine{"slow_l2", 1.0, 30.0, 70.0},
        PlantedMachine{"fast_memory", 1.0, 12.0, 40.0},
        PlantedMachine{"slow_memory", 1.0, 12.0, 160.0},
        PlantedMachine{"slow_everything", 1.5, 24.0, 140.0}),
    [](const auto& info) { return std::string(info.param.label); });

// t_syn recovery: the kernel-calibrated estimate must track the machine's
// true fetchop latency across memory speeds.
class TsynRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(TsynRecoveryTest, TracksGroundTruthFetchopLatency) {
  MachineConfig cfg = MachineConfig::origin2000_scaled(1);
  cfg.mem_cycles = GetParam();
  ExperimentRunner runner(cfg);
  runner.iterations = 4;
  const std::size_t s0 = 10 * cfg.l2.size_bytes;
  const ScalToolInputs inputs =
      runner.collect("t3dheat", s0, default_proc_counts(8));
  const ScalabilityReport report = analyze(inputs);
  MachineConfig cfg8 = cfg;
  cfg8.num_procs = 8;
  const double truth = cfg8.tsyn_ground_truth();
  EXPECT_NEAR(report.point(8).tsyn, truth, 0.15 * truth);
}

INSTANTIATE_TEST_SUITE_P(MemorySpeeds, TsynRecoveryTest,
                         ::testing::Values(40.0, 70.0, 140.0));

// The recovered parameters must be workload-independent: fit them on one
// application and predict another's uniprocessor CPI via Eq. 8.
TEST(CrossWorkloadRecovery, T3dheatModelPredictsSwimUniprocessorCpi) {
  const MachineConfig cfg = MachineConfig::origin2000_scaled(1);
  const ScalabilityReport fitted = fit_on(cfg);

  ExperimentRunner runner(cfg);
  runner.iterations = 6;
  const RunRecord swim = runner.run("swim", 4 * cfg.l2.size_bytes, 1);
  const DerivedMetrics& d = swim.metrics;
  const double predicted = fitted.model.cpi_from_hit_rates(
      d.l1_hitr, d.l2_hitr, d.mem_frac, fitted.model.tm1);
  EXPECT_NEAR(predicted, d.cpi, 0.08 * d.cpi);
}

}  // namespace
}  // namespace scaltool
