// Unit tests: bristled hypercube topology and latency model.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "machine/machine_config.hpp"
#include "network/hypercube.hpp"

namespace scaltool {
namespace {

TEST(Hypercube, SingleProcessorIsOneNodeZeroDim) {
  HypercubeNetwork net(1, {});
  EXPECT_EQ(net.num_nodes(), 1);
  EXPECT_EQ(net.num_routers(), 1);
  EXPECT_EQ(net.dimension(), 0);
  EXPECT_EQ(net.node_of_proc(0), 0);
  EXPECT_DOUBLE_EQ(net.average_hops(), 0.0);
}

TEST(Hypercube, BristlingTwoProcsPerNode) {
  HypercubeNetwork net(8, {});
  EXPECT_EQ(net.num_nodes(), 4);
  EXPECT_EQ(net.num_routers(), 2);
  EXPECT_EQ(net.dimension(), 1);
  EXPECT_EQ(net.node_of_proc(0), 0);
  EXPECT_EQ(net.node_of_proc(1), 0);
  EXPECT_EQ(net.node_of_proc(2), 1);
  EXPECT_EQ(net.node_of_proc(7), 3);
}

TEST(Hypercube, ThirtyTwoProcessorsMatchesOriginGeometry) {
  HypercubeNetwork net(32, {});
  EXPECT_EQ(net.num_nodes(), 16);
  EXPECT_EQ(net.num_routers(), 8);
  EXPECT_EQ(net.dimension(), 3);
}

TEST(Hypercube, HopsAreHammingDistanceOfRouters) {
  HypercubeNetwork net(32, {});
  // Nodes 0,1 share router 0; nodes 14,15 share router 7 (0b111).
  EXPECT_EQ(net.hops(0, 1), 0);
  EXPECT_EQ(net.hops(0, 2), 1);   // router 0 → router 1
  EXPECT_EQ(net.hops(0, 14), 3);  // router 0 → router 7
  EXPECT_EQ(net.hops(14, 0), 3);  // symmetric
}

TEST(Hypercube, LatencyZeroLocallyAndMonotoneInHops) {
  NetworkConfig cfg;
  HypercubeNetwork net(32, cfg);
  EXPECT_DOUBLE_EQ(net.latency_cycles(3, 3), 0.0);
  const double same_router = net.latency_cycles(0, 1);
  const double one_hop = net.latency_cycles(0, 2);
  const double three_hops = net.latency_cycles(0, 14);
  EXPECT_DOUBLE_EQ(same_router, cfg.router_cycles);
  EXPECT_DOUBLE_EQ(one_hop, cfg.router_cycles + cfg.hop_cycles);
  EXPECT_DOUBLE_EQ(three_hops, cfg.router_cycles + 3 * cfg.hop_cycles);
}

TEST(Hypercube, AverageHopsGrowsWithMachineSize) {
  double prev = -1.0;
  for (int n : {2, 4, 8, 16, 32, 64}) {
    HypercubeNetwork net(n, {});
    const double avg = net.average_hops();
    EXPECT_GE(avg, prev);
    prev = avg;
  }
  // dimension-3 hypercube: average Hamming distance = 3/2 over distinct
  // routers is diluted by same-router node pairs; just pin the endpoints.
  HypercubeNetwork big(64, {});
  EXPECT_GT(big.average_hops(), 1.0);
}

TEST(Hypercube, RejectsNonPositiveProcs) {
  EXPECT_THROW(HypercubeNetwork(0, {}), CheckError);
}

TEST(MachineConfigLatency, TmGroundTruthGrowsWithProcs) {
  double prev = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    MachineConfig cfg = MachineConfig::origin2000_scaled(n);
    const double tm = cfg.tm_ground_truth();
    EXPECT_GE(tm, prev);
    prev = tm;
    if (n == 1) {
      EXPECT_DOUBLE_EQ(tm, cfg.mem_cycles);
    }
  }
}

}  // namespace
}  // namespace scaltool
