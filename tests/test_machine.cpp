// Unit tests: the DSM machine simulator — counter bookkeeping, cache and
// coherence behaviour, barrier/lock accounting, ground-truth invariants.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "machine/dsm_machine.hpp"
#include "trace/access_pattern.hpp"

namespace scaltool {
namespace {

// Small machine so working sets are easy to reason about.
MachineConfig small_machine(int procs) {
  MachineConfig cfg;
  cfg.num_procs = procs;
  cfg.l1 = CacheConfig{1_KiB, 2, 64};
  cfg.l2 = CacheConfig{4_KiB, 4, 64};
  cfg.memory.page_bytes = 256;
  cfg.validate();
  return cfg;
}

// A scriptable workload for focused machine tests.
class ScriptWorkload : public Workload {
 public:
  using PhaseFn = std::function<void(ProcContext&)>;

  explicit ScriptWorkload(std::size_t alloc_bytes = 64_KiB)
      : alloc_bytes_(alloc_bytes) {}

  std::string name() const override { return "script"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }
  void setup(AllocContext& alloc, const WorkloadParams&, int) override {
    base = alloc.allocate(alloc_bytes_, "data");
  }
  int num_phases() const override { return static_cast<int>(phases_.size()); }
  void run_phase(int phase, ProcContext& ctx) override {
    phases_[static_cast<std::size_t>(phase)](ctx);
  }
  ScriptWorkload& add_phase(PhaseFn fn) {
    phases_.push_back(std::move(fn));
    return *this;
  }

  Addr base = 0;

 private:
  std::size_t alloc_bytes_;
  std::vector<PhaseFn> phases_;
};

RunResult run_script(ScriptWorkload& w, int procs) {
  DsmMachine machine(small_machine(procs));
  return machine.run(w, WorkloadParams{});
}

TEST(Machine, ComputeChargesBaseCpi) {
  ScriptWorkload w;
  w.add_phase([](ProcContext& ctx) { ctx.compute(1000.0); });
  const RunResult r = run_script(w, 1);
  const CounterSet agg = r.counters.aggregate();
  EXPECT_DOUBLE_EQ(agg.get(EventId::kGraduatedInstructions), 1000.0);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kCycles), 1000.0);  // base_cpi = 1
  EXPECT_DOUBLE_EQ(r.execution_cycles, 1000.0);
}

TEST(Machine, ColdLoadIsCompulsoryMissInBothLevels) {
  ScriptWorkload w;
  w.add_phase([&](ProcContext& ctx) { ctx.load(w.base); });
  const RunResult r = run_script(w, 1);
  const CounterSet agg = r.counters.aggregate();
  EXPECT_DOUBLE_EQ(agg.get(EventId::kGraduatedLoads), 1.0);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kL1DMisses), 1.0);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kL2Misses), 1.0);
  EXPECT_DOUBLE_EQ(r.truth.aggregate().compulsory_misses, 1.0);
  // Latency: base_cpi + local memory (single node → no network component).
  const MachineConfig cfg = small_machine(1);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kCycles), cfg.base_cpi + cfg.mem_cycles);
}

TEST(Machine, SecondAccessToSameLineHitsL1) {
  ScriptWorkload w;
  w.add_phase([&](ProcContext& ctx) {
    ctx.load(w.base);
    ctx.load(w.base + 8);  // same line
  });
  const RunResult r = run_script(w, 1);
  const CounterSet agg = r.counters.aggregate();
  EXPECT_DOUBLE_EQ(agg.get(EventId::kL1DMisses), 1.0);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kL2Misses), 1.0);
}

TEST(Machine, L1EvictionLeavesL2Hit) {
  // 1 KiB 2-way L1 with 64 B lines = 8 sets; lines 1 KiB apart collide in
  // set 0. Three such lines overflow the two L1 ways but fit the L2.
  ScriptWorkload w;
  w.add_phase([&](ProcContext& ctx) {
    ctx.load(w.base);
    ctx.load(w.base + 1_KiB);
    ctx.load(w.base + 2_KiB);
    ctx.load(w.base);  // L1 victim by now, but still in L2
  });
  const RunResult r = run_script(w, 1);
  const CounterSet agg = r.counters.aggregate();
  EXPECT_DOUBLE_EQ(agg.get(EventId::kL1DMisses), 4.0);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kL2Misses), 3.0);
  const MachineConfig cfg = small_machine(1);
  EXPECT_DOUBLE_EQ(agg.get(EventId::kCycles),
                   4 * cfg.base_cpi + 3 * cfg.mem_cycles +
                       cfg.l2_hit_cycles);
}

TEST(Machine, CapacityMissesAreClassifiedConflict) {
  // Sweep 16 KiB (4× the L2) twice: second sweep misses are conflict.
  ScriptWorkload w;
  auto sweep = [&](ProcContext& ctx) {
    for (Addr a = 0; a < 16_KiB; a += 64) ctx.load(w.base + a);
  };
  w.add_phase(sweep).add_phase(sweep);
  const RunResult r = run_script(w, 1);
  const ProcGroundTruth gt = r.truth.aggregate();
  EXPECT_DOUBLE_EQ(gt.compulsory_misses, 256.0);  // 16 KiB / 64 B
  EXPECT_DOUBLE_EQ(gt.conflict_misses, 256.0);    // full re-miss
  EXPECT_DOUBLE_EQ(gt.coherence_misses, 0.0);
}

TEST(Machine, ProducerConsumerGeneratesCoherenceMisses) {
  ScriptWorkload w;
  // Phase 0: proc 0 writes 4 lines. Phase 1: proc 1 reads them (coherence
  // interventions). Phase 2: proc 0 writes again (invalidates proc 1).
  // Phase 3: proc 1 re-reads → classified coherence misses.
  auto writer = [&](ProcContext& ctx) {
    if (ctx.proc() != 0) return;
    for (Addr a = 0; a < 4 * 64; a += 64) ctx.store(w.base + a);
  };
  auto reader = [&](ProcContext& ctx) {
    if (ctx.proc() != 1) return;
    for (Addr a = 0; a < 4 * 64; a += 64) ctx.load(w.base + a);
  };
  w.add_phase(writer).add_phase(reader).add_phase(writer).add_phase(reader);
  const RunResult r = run_script(w, 2);
  const CounterSet agg = r.counters.aggregate();
  // Proc 1's two read rounds both intervene at proc 0's dirty lines (the
  // second writer round re-dirtied them), 4 lines each.
  EXPECT_DOUBLE_EQ(r.counters.proc(0).get(EventId::kInterventionsReceived),
                   8.0);
  // Proc 0's second write round invalidates proc 1's copies.
  EXPECT_GE(r.counters.proc(1).get(EventId::kInvalidationsReceived), 4.0);
  // Proc 1's second read round re-fetches invalidated lines.
  EXPECT_DOUBLE_EQ(r.truth.per_proc[1].coherence_misses, 4.0);
  EXPECT_GT(agg.get(EventId::kL2Writebacks), 0.0);
}

TEST(Machine, StoreToSharedLineCountsNtSyn) {
  ScriptWorkload w;
  // Both procs read a line (Shared), then proc 0 stores to it.
  w.add_phase([&](ProcContext& ctx) { ctx.load(w.base); });
  w.add_phase([&](ProcContext& ctx) {
    if (ctx.proc() == 0) ctx.store(w.base);
  });
  const RunResult r = run_script(w, 2);
  // Store-to-shared: one from the upgrade, plus the barrier fetchops and
  // the queued procs' test&set retries (at least the fetchops themselves).
  const double barrier_ntsyn_min = 2 /*procs*/ * 2 /*phases*/ *
                                   small_machine(2).sync.barrier_fetchops;
  EXPECT_GE(r.counters.aggregate().get(EventId::kStoreToShared),
            1.0 + barrier_ntsyn_min);
  EXPECT_DOUBLE_EQ(r.counters.proc(1).get(EventId::kInvalidationsReceived),
                   1.0);
}

TEST(Machine, GroundTruthCyclesMatchCounters) {
  ScriptWorkload w;
  w.add_phase([&](ProcContext& ctx) {
    ctx.compute(100.0 * (1 + ctx.proc()));
    for (Addr a = 0; a < 2_KiB; a += 64) ctx.load(w.base + a);
  });
  const RunResult r = run_script(w, 4);
  for (int p = 0; p < 4; ++p) {
    const ProcGroundTruth& gt = r.truth.per_proc[p];
    EXPECT_NEAR(gt.total_cycles(), r.counters.proc(p).get(EventId::kCycles),
                1e-6);
    EXPECT_NEAR(gt.total_instr(),
                r.counters.proc(p).get(EventId::kGraduatedInstructions),
                1e-6);
  }
}

TEST(Machine, AllProcessorsFinishTogether) {
  ScriptWorkload w;
  w.add_phase([](ProcContext& ctx) { ctx.compute(10.0 + ctx.proc() * 500.0); });
  const RunResult r = run_script(w, 4);
  const auto cycles = r.counters.per_proc_values(EventId::kCycles);
  for (double c : cycles) EXPECT_DOUBLE_EQ(c, cycles[0]);
}

TEST(Machine, ImbalanceShowsUpAsSpin) {
  ScriptWorkload w;
  w.add_phase([](ProcContext& ctx) {
    if (ctx.proc() == 0) ctx.compute(10000.0);
  });
  const RunResult r = run_script(w, 4);
  EXPECT_DOUBLE_EQ(r.truth.per_proc[0].spin_cycles, 0.0);
  for (int p = 1; p < 4; ++p)
    EXPECT_GT(r.truth.per_proc[p].spin_cycles, 8000.0);
}

TEST(Machine, SingleProcessorHasNoMpCost) {
  ScriptWorkload w;
  w.add_phase([](ProcContext& ctx) { ctx.compute(100.0); });
  w.add_phase([](ProcContext& ctx) { ctx.compute(100.0); });
  const RunResult r = run_script(w, 1);
  EXPECT_DOUBLE_EQ(r.truth.mp_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(r.counters.aggregate().get(EventId::kStoreToShared), 0.0);
}

TEST(Machine, CriticalSectionsSerialize) {
  ScriptWorkload w;
  w.add_phase([](ProcContext& ctx) { ctx.critical_section(0, 1000.0); });
  const RunResult r = run_script(w, 4);
  // With serialization the total time covers all four sections.
  EXPECT_GE(r.execution_cycles, 4000.0);
  EXPECT_DOUBLE_EQ(r.counters.aggregate().get(EventId::kLockAcquires), 4.0);
  // Later acquirers spin.
  double total_spin = 0.0;
  for (const auto& gt : r.truth.per_proc) total_spin += gt.spin_cycles;
  EXPECT_GT(total_spin, 3000.0);
}

TEST(Machine, RegionsCaptureSubsetOfCounters) {
  ScriptWorkload w;
  w.add_phase([&](ProcContext& ctx) {
    ctx.compute(100.0);
    ctx.begin_region("hot");
    ctx.compute(50.0);
    ctx.load(w.base);
    ctx.end_region();
  });
  const RunResult r = run_script(w, 2);
  ASSERT_TRUE(r.regions.contains("hot"));
  const CounterSet hot = r.regions.at("hot").aggregate();
  EXPECT_DOUBLE_EQ(hot.get(EventId::kGraduatedInstructions), 2 * 51.0);
  EXPECT_DOUBLE_EQ(hot.get(EventId::kGraduatedLoads), 2.0);
  EXPECT_LT(hot.get(EventId::kCycles),
            r.counters.aggregate().get(EventId::kCycles));
}

TEST(Machine, FirstTouchPlacesPagesLocally) {
  // With 4 procs (2 nodes) and block-partitioned first touch, each node
  // should home roughly half the pages.
  ScriptWorkload w(8_KiB);
  w.add_phase([&](ProcContext& ctx) {
    const BlockRange range = block_range(8_KiB / 8, 4, ctx.proc());
    stream_write(ctx, w.base, range.begin, range.size(), 8, 0.0);
  });
  // Re-read: all L2 misses should be local (pages homed by own node).
  w.add_phase([&](ProcContext& ctx) {
    const BlockRange range = block_range(8_KiB / 8, 4, ctx.proc());
    stream_read(ctx, w.base, range.begin, range.size(), 8, 0.0);
  });
  const RunResult r = run_script(w, 4);
  const CounterSet agg = r.counters.aggregate();
  EXPECT_GT(agg.get(EventId::kLocalMemAccesses), 0.0);
  // Block boundaries may straddle a page; allow a small remote residue.
  EXPECT_LT(agg.get(EventId::kRemoteMemAccesses),
            0.2 * agg.get(EventId::kLocalMemAccesses));
}

TEST(Machine, RunIsDeterministic) {
  ScriptWorkload w1, w2;
  auto body = [](ScriptWorkload& w) {
    w.add_phase([&w](ProcContext& ctx) {
      for (Addr a = 0; a < 4_KiB; a += 64) ctx.load(w.base + a);
      ctx.compute(123.0);
    });
  };
  body(w1);
  body(w2);
  const RunResult a = run_script(w1, 4);
  const RunResult b = run_script(w2, 4);
  EXPECT_DOUBLE_EQ(a.execution_cycles, b.execution_cycles);
  EXPECT_DOUBLE_EQ(a.accumulated_cycles, b.accumulated_cycles);
}

TEST(Machine, MachineReusableAcrossRuns) {
  DsmMachine machine(small_machine(2));
  ScriptWorkload w;
  w.add_phase([&](ProcContext& ctx) { ctx.load(w.base); });
  const RunResult first = machine.run(w, WorkloadParams{});
  ScriptWorkload w2;
  w2.add_phase([&](ProcContext& ctx) { ctx.load(w2.base); });
  const RunResult second = machine.run(w2, WorkloadParams{});
  // State was reset: the second run's miss is compulsory again.
  EXPECT_DOUBLE_EQ(first.truth.aggregate().compulsory_misses,
                   second.truth.aggregate().compulsory_misses);
}

TEST(Machine, AllocOutsideSetupRejected) {
  DsmMachine machine(small_machine(1));
  EXPECT_THROW(machine.allocate(64, "late"), CheckError);
}

TEST(Machine, TlbDisabledByDefault) {
  ScriptWorkload w;
  w.add_phase([&](ProcContext& ctx) {
    for (Addr a = 0; a < 8_KiB; a += 64) ctx.load(w.base + a);
  });
  const RunResult r = run_script(w, 1);
  EXPECT_DOUBLE_EQ(r.counters.aggregate().get(EventId::kTlbMisses), 0.0);
}

TEST(Machine, TlbMissesCountedAndCharged) {
  // 4-entry TLB over 256 B pages: a 8 KiB stream touches 32 pages and
  // sweeps them twice — every page access misses (LRU worst case).
  MachineConfig cfg = small_machine(1);
  cfg.tlb_entries = 4;
  cfg.tlb_miss_cycles = 25.0;
  DsmMachine machine(cfg);
  ScriptWorkload w;
  auto sweep = [&](ProcContext& ctx) {
    for (Addr a = 0; a < 8_KiB; a += 256) ctx.load(w.base + a);
  };
  w.add_phase(sweep).add_phase(sweep);
  const RunResult r = machine.run(w, WorkloadParams{});
  const double misses = r.counters.aggregate().get(EventId::kTlbMisses);
  EXPECT_DOUBLE_EQ(misses, 64.0);  // 32 pages × 2 sweeps
  // Compare against a TLB-less twin: the extra cycles are exactly priced.
  DsmMachine bare(small_machine(1));
  ScriptWorkload w2;
  auto sweep2 = [&](ProcContext& ctx) {
    for (Addr a = 0; a < 8_KiB; a += 256) ctx.load(w2.base + a);
  };
  w2.add_phase(sweep2).add_phase(sweep2);
  const RunResult base = bare.run(w2, WorkloadParams{});
  EXPECT_DOUBLE_EQ(r.execution_cycles,
                   base.execution_cycles + 64.0 * 25.0);
}

TEST(Machine, TlbHitsWhenWorkingSetFits) {
  MachineConfig cfg = small_machine(1);
  cfg.tlb_entries = 64;  // 32-page working set fits
  DsmMachine machine(cfg);
  ScriptWorkload w;
  auto sweep = [&](ProcContext& ctx) {
    for (Addr a = 0; a < 8_KiB; a += 256) ctx.load(w.base + a);
  };
  w.add_phase(sweep).add_phase(sweep);
  const RunResult r = machine.run(w, WorkloadParams{});
  EXPECT_DOUBLE_EQ(r.counters.aggregate().get(EventId::kTlbMisses), 32.0);
}

TEST(Machine, ConfigValidation) {
  MachineConfig cfg = small_machine(1);
  cfg.l1.line_bytes = 32;  // mismatched line sizes
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = small_machine(1);
  cfg.num_procs = 65;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = small_machine(1);
  cfg.base_cpi = 0.0;
  EXPECT_THROW(cfg.validate(), CheckError);
}

}  // namespace
}  // namespace scaltool
