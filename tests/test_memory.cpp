// Unit tests: memory allocation and page placement.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "memory/memory_system.hpp"
#include "memory/tlb.hpp"

namespace scaltool {
namespace {

MemoryConfig cfg(PlacementPolicy policy = PlacementPolicy::kFirstTouch) {
  MemoryConfig c;
  c.page_bytes = 1024;
  c.policy = policy;
  c.alloc_skew_bytes = 0;  // exact geometry for the alignment tests below
  return c;
}

TEST(Memory, AllocationsArePageAlignedAndDisjoint) {
  MemorySystem mem(4, cfg());
  const Addr a = mem.allocate(100, "a");
  const Addr b = mem.allocate(3000, "b");
  EXPECT_EQ(a % 1024, 0u);
  EXPECT_EQ(b % 1024, 0u);
  EXPECT_GE(b, a + 1024);          // a's page is not reused
  EXPECT_EQ(b - a, 1024u);         // 100 B rounds to one page
  EXPECT_EQ(mem.bytes_allocated(), 1024u + 3072u);
}

TEST(Memory, RejectsZeroByteAllocation) {
  MemorySystem mem(1, cfg());
  EXPECT_THROW(mem.allocate(0, "zero"), CheckError);
}

TEST(Memory, FirstTouchPinsPageToToucher) {
  MemorySystem mem(4, cfg());
  const Addr a = mem.allocate(4096, "a");
  EXPECT_EQ(mem.home_if_assigned(a), -1);
  EXPECT_EQ(mem.home_of(a, 2), 2);
  EXPECT_EQ(mem.home_of(a, 3), 2);  // sticky after first touch
  EXPECT_EQ(mem.home_if_assigned(a), 2);
  // A different page is independent.
  EXPECT_EQ(mem.home_of(a + 1024, 3), 3);
}

TEST(Memory, SameLineSamePage) {
  MemorySystem mem(4, cfg());
  const Addr a = mem.allocate(4096, "a");
  mem.home_of(a + 5, 1);
  EXPECT_EQ(mem.home_of(a + 1023, 0), 1);  // same 1 KiB page
}

TEST(Memory, RoundRobinStripesPages) {
  MemorySystem mem(3, cfg(PlacementPolicy::kRoundRobin));
  const Addr a = mem.allocate(4 * 1024, "a");
  EXPECT_EQ(mem.home_of(a + 0 * 1024, 2), 0);
  EXPECT_EQ(mem.home_of(a + 1 * 1024, 2), 1);
  EXPECT_EQ(mem.home_of(a + 2 * 1024, 2), 2);
  EXPECT_EQ(mem.home_of(a + 3 * 1024, 2), 0);
}

TEST(Memory, FixedNode0PutsEverythingOnNode0) {
  MemorySystem mem(4, cfg(PlacementPolicy::kFixedNode0));
  const Addr a = mem.allocate(8 * 1024, "a");
  for (int page = 0; page < 8; ++page)
    EXPECT_EQ(mem.home_of(a + static_cast<Addr>(page) * 1024, 3), 0);
}

TEST(Memory, PagesPerNodeCountsPlacements) {
  MemorySystem mem(2, cfg());
  const Addr a = mem.allocate(4 * 1024, "a");
  mem.home_of(a + 0 * 1024, 0);
  mem.home_of(a + 1 * 1024, 0);
  mem.home_of(a + 2 * 1024, 1);
  const auto counts = mem.pages_per_node();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(Memory, AllocationLabelsRecorded) {
  MemorySystem mem(1, cfg());
  mem.allocate(100, "u");
  mem.allocate(100, "v");
  ASSERT_EQ(mem.allocations().size(), 2u);
  EXPECT_EQ(mem.allocations()[0].label, "u");
  EXPECT_EQ(mem.allocations()[1].label, "v");
  EXPECT_EQ(mem.allocations()[1].bytes, 100u);
}

TEST(Memory, AllocationSkewStaggersSetMapping) {
  MemoryConfig skewed = cfg();
  skewed.alloc_skew_bytes = 192;
  MemorySystem mem(1, skewed);
  const Addr a = mem.allocate(1024, "a");
  const Addr b = mem.allocate(1024, "b");
  const Addr c = mem.allocate(1024, "c");
  // Equal-sized arrays no longer share a set alignment...
  EXPECT_EQ(b - a, 1024u + 192u);
  EXPECT_EQ(c - b, 1024u + 192u);
  // ...but element alignment is preserved.
  EXPECT_EQ(b % 8, 0u);
  EXPECT_EQ(c % 8, 0u);
}

TEST(Memory, RejectsMisalignedSkew) {
  MemoryConfig bad = cfg();
  bad.alloc_skew_bytes = 13;
  EXPECT_THROW(MemorySystem(1, bad), CheckError);
}

TEST(Memory, RejectsNonPowerOfTwoPage) {
  MemoryConfig bad;
  bad.page_bytes = 1000;
  EXPECT_THROW(MemorySystem(1, bad), CheckError);
}

TEST(Tlb, HitAfterInstall) {
  Tlb tlb(4, 1024);
  EXPECT_FALSE(tlb.access(0x1000));  // cold
  EXPECT_TRUE(tlb.access(0x1000));   // same page
  EXPECT_TRUE(tlb.access(0x13FF));   // still the same 1 KiB page
  EXPECT_FALSE(tlb.access(0x1400));  // next page
  EXPECT_EQ(tlb.occupancy(), 2u);
}

TEST(Tlb, LruEvictionWhenFull) {
  Tlb tlb(2, 1024);
  tlb.access(0 * 1024);
  tlb.access(1 * 1024);
  tlb.access(0 * 1024);          // page 0 is now MRU
  EXPECT_FALSE(tlb.access(2 * 1024));  // evicts page 1
  EXPECT_TRUE(tlb.present(0 * 1024));
  EXPECT_FALSE(tlb.present(1 * 1024));
  EXPECT_TRUE(tlb.present(2 * 1024));
}

TEST(Tlb, ClearEmpties) {
  Tlb tlb(4, 1024);
  tlb.access(0);
  tlb.clear();
  EXPECT_EQ(tlb.occupancy(), 0u);
  EXPECT_FALSE(tlb.present(0));
}

TEST(Tlb, WorkingSetWithinCapacityNeverMissesAgain) {
  Tlb tlb(8, 1024);
  for (int sweep = 0; sweep < 5; ++sweep)
    for (Addr page = 0; page < 8; ++page) {
      const bool hit = tlb.access(page * 1024);
      if (sweep > 0) {
        EXPECT_TRUE(hit) << "page " << page;
      }
    }
}

TEST(Tlb, RejectsBadConfig) {
  EXPECT_THROW(Tlb(0, 1024), CheckError);
  EXPECT_THROW(Tlb(4, 1000), CheckError);
}

}  // namespace
}  // namespace scaltool
