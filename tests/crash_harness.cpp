#include "crash_harness.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <sstream>

#include "cli/cli.hpp"
#include "common/check.hpp"

namespace scaltool::testing {

bool ChildResult::exited() const { return WIFEXITED(status); }

int ChildResult::exit_code() const { return WEXITSTATUS(status); }

bool ChildResult::signaled() const { return WIFSIGNALED(status); }

int ChildResult::term_signal() const { return WTERMSIG(status); }

ChildResult run_cli_in_child(const std::vector<std::string>& argv) {
  const pid_t pid = ::fork();
  ST_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    // The child is a throwaway process: run the command, discard its
    // output, and leave without unwinding into the test runner.
    std::ostringstream os;
    int rc = 1;
    try {
      rc = cli::run_command(argv, os);
    } catch (...) {
      rc = 125;
    }
    ::_exit(rc);
  }
  ChildResult result;
  ST_CHECK_MSG(::waitpid(pid, &result.status, 0) == pid, "waitpid failed");
  return result;
}

}  // namespace scaltool::testing
