// Tests: the mathematical-model baselines (Amdahl, M/M/1 contention).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/analytic_models.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

/// Synthetic inputs with exact Amdahl timing at serial fraction `f`.
ScalToolInputs amdahl_inputs(double f) {
  ScalToolInputs inputs;
  inputs.app = "synthetic";
  inputs.s0 = 1_MiB;
  inputs.l2_bytes = 64_KiB;
  const double t1 = 1e6;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    RunRecord r;
    r.workload = "synthetic";
    r.dataset_bytes = inputs.s0;
    r.num_procs = n;
    r.execution_cycles = t1 * (f + (1.0 - f) / n);
    r.metrics.instructions = 1e6;
    r.metrics.cycles = r.execution_cycles * n;
    r.metrics.cpi = r.metrics.cycles / r.metrics.instructions;
    inputs.base_runs.push_back(r);
  }
  RunRecord uni = inputs.base_runs.front();
  inputs.uni_runs.push_back(uni);
  uni.dataset_bytes = inputs.s0 / 2;
  inputs.uni_runs.push_back(uni);
  // Minimal kernel records so the input matrix validates.
  for (int n : {2, 4, 8, 16, 32}) {
    KernelMeasurement km;
    km.num_procs = n;
    km.sync_kernel.num_procs = n;
    km.sync_kernel.metrics.instructions = 1000;
    km.sync_kernel.metrics.cycles = 5000;
    km.sync_kernel.metrics.cpi = 5.0;
    km.sync_kernel.metrics.store_to_shared = 50;
    km.spin_kernel = km.sync_kernel;
    inputs.kernels.push_back(km);
  }
  return inputs;
}

TEST(Amdahl, RecoversExactSerialFraction) {
  for (const double f : {0.0, 0.02, 0.085, 0.25}) {
    const AmdahlFit fit = fit_amdahl(amdahl_inputs(f));
    EXPECT_NEAR(fit.serial_fraction, f, 1e-9) << "f=" << f;
    EXPECT_GT(fit.r2, 0.999);
    // Predictions reproduce the inputs.
    EXPECT_NEAR(fit.predict_speedup(32),
                1.0 / (f + (1.0 - f) / 32.0), 1e-9);
  }
}

TEST(Amdahl, PredictTimeMonotonicallyDecreases) {
  const AmdahlFit fit = fit_amdahl(amdahl_inputs(0.1));
  double prev = fit.predict_time(1);
  for (int n = 2; n <= 64; n *= 2) {
    EXPECT_LT(fit.predict_time(n), prev);
    prev = fit.predict_time(n);
  }
  // ... but saturates at the serial time.
  EXPECT_GT(fit.predict_time(1 << 20), 0.0999 * fit.t1);
}

TEST(Amdahl, FractionClampedToUnitInterval) {
  // Superlinear measurements would fit a negative f; the fit clamps.
  ScalToolInputs inputs = amdahl_inputs(0.0);
  inputs.base_runs[3].execution_cycles /= 4.0;  // superlinear at n=8
  const AmdahlFit fit = fit_amdahl(inputs);
  EXPECT_GE(fit.serial_fraction, 0.0);
  EXPECT_LE(fit.serial_fraction, 1.0);
}

TEST(Contention, SaneAndBounded) {
  ContentionModel model;
  model.t1 = 1e6;
  model.mem_share = 0.5;
  model.utilization1 = 0.25;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const double s = model.predict_speedup(n);
    EXPECT_GE(s, 1.0) << "n=" << n;        // adding processors never hurts
                                           // below the saturation knee...
    EXPECT_LE(s, static_cast<double>(n));  // ...and is never superlinear
  }
  EXPECT_NEAR(model.predict_speedup(1), 1.0, 1e-9);
  // Queueing saturation is allowed to flatten or even dip the curve (the
  // classic thrashing knee), but not below the uniprocessor.
}

TEST(Contention, MoreMemoryBoundMeansWorseScaling) {
  ContentionModel light, heavy;
  light.t1 = heavy.t1 = 1e6;
  light.mem_share = 0.1;
  light.utilization1 = 0.05;
  heavy.mem_share = 0.7;
  heavy.utilization1 = 0.35;
  EXPECT_GT(light.predict_speedup(32), heavy.predict_speedup(32));
}

TEST(Baselines, AmdahlBreaksOnT3dheat) {
  // The paper's thesis in one assertion: the serial-fraction model misses
  // t3dheat's measured speedup by a large factor somewhere on the curve,
  // while the empirical model's curves (tested elsewhere) track it.
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 4;
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  const ScalToolInputs inputs =
      runner.collect("t3dheat", s0, default_proc_counts(32));
  const ScalabilityReport report = analyze(inputs);
  double worst = 0.0;
  for (const BaselineComparison& c :
       compare_baselines(inputs, report.model.pi0)) {
    worst = std::max(worst,
                     std::abs(c.amdahl - c.measured) / c.measured);
  }
  EXPECT_GT(worst, 0.30);  // ≥30% wrong somewhere
}

TEST(Baselines, RequireMultiprocessorRuns) {
  ScalToolInputs inputs = amdahl_inputs(0.1);
  inputs.base_runs.resize(1);
  inputs.validation.clear();
  EXPECT_THROW(fit_amdahl(inputs), CheckError);
}

}  // namespace
}  // namespace scaltool
