// Unit tests: the crash flight recorder — ring round trip, wrap and torn
// slots, survival of a SIGKILL mid-write (the whole point), fork safety of
// the installed-recorder hook, concurrent appends, and the post-mortem
// rendering the supervisor writes after a reap.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"

namespace scaltool {
namespace {

std::string temp_path(const std::string& tail) {
  return "/tmp/scaltool_test_fdr_" + std::to_string(::getpid()) + "_" + tail;
}

/// RAII ring file cleanup.
struct RingFile {
  explicit RingFile(std::string tail) : path(temp_path(std::move(tail))) {
    std::remove(path.c_str());
  }
  ~RingFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(FlightRecorder, RoundTripsEventsInOrder) {
  RingFile ring("roundtrip.fdr");
  {
    obs::FlightRecorder recorder(ring.path, 64);
    recorder.append('B', "req", "serve", "id=7 op=collect");
    recorder.append('B', "job", "engine", "t-abc");
    recorder.append('E', "job", "engine", "t-abc");
    recorder.append('i', "tick", "test", "");
    EXPECT_EQ(recorder.appended(), 4u);
  }
  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  ASSERT_TRUE(report.valid) << report.error;
  EXPECT_EQ(report.pid, static_cast<std::int64_t>(::getpid()));
  EXPECT_EQ(report.appended, 4u);
  EXPECT_EQ(report.torn, 0u);
  ASSERT_EQ(report.events.size(), 4u);
  EXPECT_EQ(report.events[0].seq, 1u);
  EXPECT_EQ(report.events[0].phase, 'B');
  EXPECT_EQ(report.events[0].name, "req");
  EXPECT_EQ(report.events[0].category, "serve");
  EXPECT_EQ(report.events[0].detail, "id=7 op=collect");
  EXPECT_EQ(report.events[3].phase, 'i');
  // Sequences strictly ascend and timestamps never regress.
  for (std::size_t i = 1; i < report.events.size(); ++i) {
    EXPECT_EQ(report.events[i].seq, report.events[i - 1].seq + 1);
    EXPECT_GE(report.events[i].ts_nanos, report.events[i - 1].ts_nanos);
  }
  // The unmatched "req" begin is reported as in flight.
  ASSERT_EQ(report.in_flight.size(), 1u);
  EXPECT_EQ(report.in_flight[0], "id=7 op=collect");
}

TEST(FlightRecorder, WrapKeepsOnlyTheNewestEvents) {
  RingFile ring("wrap.fdr");
  constexpr std::uint32_t kSlots = 16;
  {
    obs::FlightRecorder recorder(ring.path, kSlots);
    for (int i = 0; i < 50; ++i) {
      const std::string detail = "n=" + std::to_string(i);
      recorder.append('i', "tick", "test", detail.c_str());
    }
  }
  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  ASSERT_TRUE(report.valid) << report.error;
  EXPECT_EQ(report.appended, 50u);
  EXPECT_EQ(report.recovered, static_cast<std::uint64_t>(kSlots));
  ASSERT_EQ(report.events.size(), static_cast<std::size_t>(kSlots));
  // Exactly the last kSlots appends survive, oldest first.
  EXPECT_EQ(report.events.front().seq, 50u - kSlots + 1);
  EXPECT_EQ(report.events.back().seq, 50u);
  EXPECT_EQ(report.events.back().detail, "n=49");
}

TEST(FlightRecorder, TruncatesLongStringsInsteadOfOverflowing) {
  RingFile ring("truncate.fdr");
  const std::string long_name(300, 'n');
  const std::string long_detail(300, 'd');
  {
    obs::FlightRecorder recorder(ring.path, 8);
    recorder.append('B', long_name.c_str(), "cat", long_detail.c_str());
    recorder.append('i', nullptr, nullptr, nullptr);  // nulls are ""
  }
  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  ASSERT_TRUE(report.valid) << report.error;
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_FALSE(report.events[0].name.empty());
  EXPECT_LT(report.events[0].name.size(), long_name.size());
  EXPECT_LT(report.events[0].detail.size(), long_detail.size());
  EXPECT_EQ(report.events[0].name,
            long_name.substr(0, report.events[0].name.size()));
  EXPECT_EQ(report.events[1].name, "");
}

TEST(FlightRecorder, SalvageRejectsGarbageWithoutThrowing) {
  RingFile ring("garbage.fdr");
  EXPECT_FALSE(obs::salvage_flight_record(ring.path).valid);  // no file

  obs::write_text_file(ring.path, "this is not a ring file");
  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  EXPECT_FALSE(report.valid);
  EXPECT_FALSE(report.error.empty());

  // A header-sized file of zeros: no magic.
  obs::write_text_file(ring.path, std::string(4096, '\0'));
  EXPECT_FALSE(obs::salvage_flight_record(ring.path).valid);
}

TEST(FlightRecorder, SurvivesSigkillMidWriteWithParseablePrefix) {
  RingFile ring("sigkill.fdr");
  // The child appends as fast as it can; the parent SIGKILLs it somewhere
  // mid-stream. Whatever landed in the MAP_SHARED file must salvage as a
  // valid, internally consistent prefix — torn slots dropped, never
  // misparsed.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: write forever until killed.
    try {
      obs::FlightRecorder recorder(ring.path, 256);
      recorder.append('B', "req", "serve", "id=13 op=collect");
      for (std::uint64_t i = 0;; ++i) {
        const std::string detail = "n=" + std::to_string(i);
        recorder.append('i', "spin", "test", detail.c_str());
      }
    } catch (...) {
    }
    ::_exit(0);
  }
  // Parent: wait for the ring to show real traffic, then kill without
  // warning.
  for (int spin = 0; spin < 2000; ++spin) {
    std::ifstream probe(ring.path, std::ios::binary | std::ios::ate);
    if (probe.good() && probe.tellg() > 0) {
      const obs::FdrReport peek = obs::salvage_flight_record(ring.path);
      if (peek.valid && peek.appended > 512) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  ASSERT_TRUE(report.valid) << report.error;
  EXPECT_GT(report.appended, 0u);
  EXPECT_GT(report.recovered, 0u);
  // Every recovered event is internally consistent: ascending unique
  // sequences, no sequence above the claimed append count.
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    EXPECT_LE(report.events[i].seq, report.appended + 1);
    if (i > 0) EXPECT_GT(report.events[i].seq, report.events[i - 1].seq);
  }
  // The request the child had open when it died shows as in flight
  // unless the ring wrapped past it.
  if (report.events.front().seq == 1)
    EXPECT_EQ(report.in_flight.size(), 1u);
}

TEST(FlightRecorder, ForkedChildDoesNotInheritTheInstalledRing) {
  RingFile ring("fork.fdr");
  auto recorder = std::make_unique<obs::FlightRecorder>(ring.path, 64);
  obs::install_flight_recorder(recorder.get());
  obs::flight_record('i', "parent", "test", "before-fork");

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The atfork handler must have uninstalled the recorder: writes from
    // the child land nowhere near the parent's MAP_SHARED ring.
    const bool clean = obs::installed_flight_recorder() == nullptr;
    obs::flight_record('i', "child", "test", "after-fork");
    ::_exit(clean ? 0 : 7);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "child still saw the parent's flight recorder";

  obs::uninstall_flight_recorder();
  recorder.reset();
  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  ASSERT_TRUE(report.valid) << report.error;
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].name, "parent");
}

TEST(FlightRecorder, ConcurrentAppendsAllRecovered) {
  RingFile ring("concurrent.fdr");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  {
    // Ring sized comfortably above the total so no append is lapped.
    obs::FlightRecorder recorder(ring.path, 4096);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&recorder, t] {
        const std::string detail = "thread=" + std::to_string(t);
        for (int i = 0; i < kPerThread; ++i)
          recorder.append('i', "spin", "test", detail.c_str());
      });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(recorder.appended(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  ASSERT_TRUE(report.valid) << report.error;
  EXPECT_EQ(report.torn, 0u);
  EXPECT_EQ(report.recovered,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(FlightRecorder, SpanHooksRecordWithoutTelemetryEnabled) {
  RingFile ring("hooks.fdr");
  auto recorder = std::make_unique<obs::FlightRecorder>(ring.path, 64);
  obs::install_flight_recorder(recorder.get());
  ASSERT_FALSE(obs::enabled());
  {
    obs::TraceScope scope(obs::TraceContext{"t-hook", "parent"});
    obs::Span span("work", "test");
    obs::instant("tick", "test");
  }
  obs::uninstall_flight_recorder();
  recorder.reset();

  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  ASSERT_TRUE(report.valid) << report.error;
  ASSERT_EQ(report.events.size(), 3u);
  EXPECT_EQ(report.events[0].phase, 'B');
  EXPECT_EQ(report.events[0].name, "work");
  EXPECT_EQ(report.events[0].detail, "t-hook");  // trace id rides along
  EXPECT_EQ(report.events[1].phase, 'i');
  EXPECT_EQ(report.events[2].phase, 'E');
  EXPECT_EQ(report.events[2].name, "work");
}

TEST(FlightRecorder, PostMortemNamesTheInFlightRequest) {
  RingFile ring("postmortem.fdr");
  {
    obs::FlightRecorder recorder(ring.path, 64);
    recorder.append('B', "req", "serve", "id=42 op=collect");
    recorder.append('B', "job", "engine", "t-pm");
    recorder.append('E', "job", "engine", "t-pm");
  }
  const obs::FdrReport report = obs::salvage_flight_record(ring.path);
  ASSERT_TRUE(report.valid) << report.error;

  const std::string text =
      obs::post_mortem_text(report, /*shard=*/3, /*pid=*/1234,
                            "killed by signal 9", /*journal_lag=*/5);
  EXPECT_NE(text.find("shard 3"), std::string::npos) << text;
  EXPECT_NE(text.find("1234"), std::string::npos) << text;
  EXPECT_NE(text.find("killed by signal 9"), std::string::npos) << text;
  EXPECT_NE(text.find("id=42 op=collect"), std::string::npos) << text;
  EXPECT_NE(text.find("job"), std::string::npos) << text;
}

TEST(FlightRecorder, PostMortemOnInvalidReportStillRenders) {
  obs::FdrReport bad;
  bad.valid = false;
  bad.error = "ring file unreadable";
  const std::string text =
      obs::post_mortem_text(bad, /*shard=*/0, /*pid=*/99, "exited with code 1",
                            /*journal_lag=*/0);
  EXPECT_NE(text.find("exited with code 1"), std::string::npos) << text;
  EXPECT_NE(text.find("ring file unreadable"), std::string::npos) << text;
}

}  // namespace
}  // namespace scaltool
