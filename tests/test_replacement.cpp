// Unit + property tests: cache replacement policies (LRU / tree-PLRU /
// random).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/cache.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace scaltool {
namespace {

CacheConfig cfg(ReplacementPolicy policy, int assoc = 4) {
  CacheConfig c{2048, assoc, 64};
  c.replacement = policy;
  return c;
}

TEST(Replacement, PolicyNamesDistinct) {
  std::set<std::string> names;
  for (ReplacementPolicy p :
       {ReplacementPolicy::kLru, ReplacementPolicy::kTreePlru,
        ReplacementPolicy::kRandom})
    names.insert(replacement_policy_name(p));
  EXPECT_EQ(names.size(), 3u);
}

TEST(Replacement, TreePlruRequiresPow2Associativity) {
  CacheConfig bad{192 * 3, 3, 64};
  bad.replacement = ReplacementPolicy::kTreePlru;
  EXPECT_THROW(bad.validate(), CheckError);
}

// Addresses that all map to set 0 of an 8-set cache (2048/64/4 = 8 sets).
std::vector<Addr> set0_lines(int count) {
  std::vector<Addr> lines;
  for (int i = 0; i < count; ++i)
    lines.push_back(static_cast<Addr>(i) * 8 * 64);
  return lines;
}

TEST(Replacement, TreePlruNeverEvictsMostRecentlyUsed) {
  Cache c(cfg(ReplacementPolicy::kTreePlru));
  const auto lines = set0_lines(5);
  for (int i = 0; i < 4; ++i) c.insert(lines[static_cast<std::size_t>(i)],
                                       LineState::kShared);
  c.touch(lines[2]);  // most recently used
  const auto victim = c.insert(lines[4], LineState::kShared);
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(victim->line_addr, lines[2]);
  EXPECT_NE(victim->line_addr, lines[4]);
}

TEST(Replacement, TreePlruCyclesThroughAllWays) {
  // Repeated insertions into a full set must eventually evict every way,
  // not starve one.
  Cache c(cfg(ReplacementPolicy::kTreePlru));
  const auto lines = set0_lines(64);
  std::set<Addr> evicted;
  for (int i = 0; i < 64; ++i) {
    const auto victim = c.insert(lines[static_cast<std::size_t>(i)],
                                 LineState::kShared);
    if (victim) evicted.insert(victim->line_addr);
  }
  EXPECT_GE(evicted.size(), 32u);  // plenty of distinct victims
}

TEST(Replacement, RandomIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    CacheConfig config = cfg(ReplacementPolicy::kRandom);
    config.random_seed = seed;
    Cache c(config);
    std::vector<Addr> victims;
    const auto lines = set0_lines(32);
    for (Addr line : lines) {
      const auto victim = c.insert(line, LineState::kShared);
      if (victim) victims.push_back(victim->line_addr);
    }
    return victims;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

// Property: whatever the policy, a full set stays full, never duplicates a
// line, and the victim is always a line that was actually resident.
class PolicyInvariantTest
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicyInvariantTest, VictimsAreResidentAndSetStaysConsistent) {
  Cache c(cfg(GetParam()));
  Rng rng(99);
  std::set<Addr> resident;
  for (int i = 0; i < 4000; ++i) {
    const Addr line = rng.next_below(64) * 8 * 64;  // 64 lines, all set 0…
    if (c.probe(line) != LineState::kInvalid) {
      c.touch(line);
      continue;
    }
    const auto victim = c.insert(line, LineState::kShared);
    resident.insert(line);
    if (victim) {
      ASSERT_TRUE(resident.contains(victim->line_addr));
      resident.erase(victim->line_addr);
    }
    ASSERT_LE(c.occupancy(), cfg(GetParam()).num_lines());
    ASSERT_EQ(resident.size(), c.occupancy());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyInvariantTest,
    ::testing::Values(ReplacementPolicy::kLru, ReplacementPolicy::kTreePlru,
                      ReplacementPolicy::kRandom),
    [](const auto& info) {
      std::string name = replacement_policy_name(info.param);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(Replacement, PlruTracksLruOnSequentialSweeps) {
  // On a cyclic sweep over assoc+1 lines both LRU and tree-PLRU should
  // miss every access (the classic worst case); random may do better.
  auto misses = [](ReplacementPolicy policy) {
    Cache c(cfg(policy));
    int count = 0;
    const auto lines = set0_lines(5);
    for (int sweep = 0; sweep < 20; ++sweep)
      for (Addr line : lines)
        if (c.probe(line) == LineState::kInvalid) {
          c.insert(line, LineState::kShared);
          ++count;
        } else {
          c.touch(line);
        }
    return count;
  };
  EXPECT_EQ(misses(ReplacementPolicy::kLru), 100);  // all 20×5 miss
  EXPECT_GE(misses(ReplacementPolicy::kTreePlru), 60);
  EXPECT_LE(misses(ReplacementPolicy::kRandom), 100);
}

}  // namespace
}  // namespace scaltool
