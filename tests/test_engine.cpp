// Unit tests: campaign engine — thread pool, persistent run cache, and
// parallel collection being bit-identical to the serial runner.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "cli/cli.hpp"
#include "common/check.hpp"
#include "engine/campaign.hpp"
#include "engine/engine_stats.hpp"
#include "engine/run_cache.hpp"
#include "engine/thread_pool.hpp"
#include "runner/runner.hpp"
#include "trace/registry.hpp"

namespace scaltool {
namespace {

ExperimentRunner test_runner() {
  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  return runner;
}

const std::vector<int> kProcs{1, 2, 4};

std::size_t test_s0(const ExperimentRunner& runner) {
  return 10 * runner.base_config().l2.size_bytes;
}

void expect_records_eq(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.dataset_bytes, b.dataset_bytes);
  EXPECT_EQ(a.num_procs, b.num_procs);
  EXPECT_DOUBLE_EQ(a.metrics.cpi, b.metrics.cpi);
  EXPECT_DOUBLE_EQ(a.metrics.h2, b.metrics.h2);
  EXPECT_DOUBLE_EQ(a.metrics.hm, b.metrics.hm);
  EXPECT_DOUBLE_EQ(a.metrics.store_to_shared, b.metrics.store_to_shared);
  EXPECT_DOUBLE_EQ(a.execution_cycles, b.execution_cycles);
}

void expect_inputs_eq(const ScalToolInputs& a, const ScalToolInputs& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.s0, b.s0);
  EXPECT_EQ(a.l2_bytes, b.l2_bytes);
  ASSERT_EQ(a.base_runs.size(), b.base_runs.size());
  ASSERT_EQ(a.uni_runs.size(), b.uni_runs.size());
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  ASSERT_EQ(a.validation.size(), b.validation.size());
  for (std::size_t i = 0; i < a.base_runs.size(); ++i)
    expect_records_eq(a.base_runs[i], b.base_runs[i]);
  for (std::size_t i = 0; i < a.uni_runs.size(); ++i)
    expect_records_eq(a.uni_runs[i], b.uni_runs[i]);
  for (std::size_t i = 0; i < a.kernels.size(); ++i) {
    EXPECT_EQ(a.kernels[i].num_procs, b.kernels[i].num_procs);
    expect_records_eq(a.kernels[i].sync_kernel, b.kernels[i].sync_kernel);
    expect_records_eq(a.kernels[i].spin_kernel, b.kernels[i].spin_kernel);
  }
  for (std::size_t i = 0; i < a.validation.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.validation[i].accumulated_cycles,
                     b.validation[i].accumulated_cycles);
    EXPECT_DOUBLE_EQ(a.validation[i].mp_cycles, b.validation[i].mp_cycles);
    EXPECT_DOUBLE_EQ(a.validation[i].sync_cycles,
                     b.validation[i].sync_cycles);
    EXPECT_DOUBLE_EQ(a.validation[i].conflict_misses,
                     b.validation[i].conflict_misses);
  }
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

// ---- ThreadPool --------------------------------------------------------

TEST(ThreadPool, ReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("job exploded"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, BoundedQueueStillCompletesEverything) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2, /*max_queued=*/1);  // heavy backpressure
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i)
      futures.push_back(pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++done;
      }));
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, RunsTasksConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  // Each task waits to see the other one in flight; only a pool with two
  // live workers can finish this before the timeout.
  const auto rendezvous = [&in_flight] {
    ++in_flight;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (in_flight.load() < 2 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
    return in_flight.load();
  };
  auto a = pool.submit(rendezvous);
  auto b = pool.submit(rendezvous);
  EXPECT_GE(a.get(), 2);
  EXPECT_GE(b.get(), 2);
}

TEST(ThreadPool, GracefulShutdownRunsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i)
      (void)pool.submit([&done] { ++done; });
    // Destructor must drain the backlog, not drop it.
  }
  EXPECT_EQ(done.load(), 20);
}

// ---- derive_seed -------------------------------------------------------

TEST(DeriveSeed, DeterministicAndSpread) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(1, 3));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 2));
}

TEST(JobKeyHash, SensitiveToEveryIngredient) {
  const ExperimentRunner runner = test_runner();
  const MachineConfig& cfg = runner.base_config();
  const RunSpec spec{"swim", 1_MiB, 4, false};
  const std::uint64_t base = job_key_hash(spec, cfg, 2);
  EXPECT_EQ(base, job_key_hash(spec, cfg, 2));
  RunSpec other = spec;
  other.num_procs = 8;
  EXPECT_NE(base, job_key_hash(other, cfg, 2));
  other = spec;
  other.dataset_bytes = 2_MiB;
  EXPECT_NE(base, job_key_hash(other, cfg, 2));
  EXPECT_NE(base, job_key_hash(spec, cfg, 3));
  MachineConfig changed = cfg;
  changed.l2.size_bytes *= 2;
  EXPECT_NE(base, job_key_hash(spec, changed, 2));
  // num_procs on the config is explicitly excluded: the spec carries it.
  changed = cfg;
  changed.num_procs = 16;
  EXPECT_EQ(base, job_key_hash(spec, changed, 2));
}

// ---- RunCache ----------------------------------------------------------

RunSpec cache_spec() { return {"swim", 1_MiB, 4, false}; }

JobOutcome cache_outcome() {
  JobOutcome out;
  out.record.workload = "swim";
  out.record.dataset_bytes = 1_MiB;
  out.record.num_procs = 4;
  out.record.metrics.cpi = 1.5;
  out.record.metrics.h2 = 0.75;
  out.record.metrics.hm = 0.25;
  out.record.execution_cycles = 123456.0;
  out.validation.num_procs = 4;
  out.validation.mp_cycles = 42.0;
  return out;
}

TEST(RunCache, FileRoundTrip) {
  const std::string path = "/tmp/scaltool_runcache_test.txt";
  std::remove(path.c_str());
  {
    RunCache cache(path);
    cache.insert(0xabcdULL, cache_spec(), cache_outcome());
    cache.save();
  }
  RunCache cache(path);
  EXPECT_EQ(cache.loaded_entries(), 1u);
  EXPECT_EQ(cache.corrupt_entries(), 0u);
  const auto hit = cache.find(0xabcdULL, cache_spec());
  ASSERT_TRUE(hit.has_value());
  expect_records_eq(hit->record, cache_outcome().record);
  EXPECT_DOUBLE_EQ(hit->validation.mp_cycles, 42.0);
  std::remove(path.c_str());
}

TEST(RunCache, MissesOnDescriptorMismatch) {
  RunCache cache;
  cache.insert(1, cache_spec(), cache_outcome());
  RunSpec other = cache_spec();
  other.dataset_bytes *= 2;  // same key, different descriptor: collision
  EXPECT_FALSE(cache.find(1, other).has_value());
  EXPECT_TRUE(cache.find(1, cache_spec()).has_value());
  EXPECT_FALSE(cache.find(2, cache_spec()).has_value());
}

TEST(RunCache, ValidationGating) {
  RunCache cache;
  cache.insert(1, cache_spec(), cache_outcome(), /*has_validation=*/false);
  RunSpec wants = cache_spec();
  wants.want_validation = true;
  EXPECT_FALSE(cache.find(1, wants).has_value());
  EXPECT_TRUE(cache.find(1, cache_spec()).has_value());
}

TEST(RunCache, WrongVersionIgnoredWholesale) {
  const std::string path = "/tmp/scaltool_runcache_badver_test.txt";
  {
    std::ofstream os(path);
    os << "scaltool-runcache|99\nENTRY|1|swim|1048576|4|0\n";
  }
  RunCache cache(path);
  EXPECT_EQ(cache.loaded_entries(), 0u);
  EXPECT_EQ(cache.corrupt_entries(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

TEST(RunCache, CorruptEntrySkippedOthersSurvive) {
  const std::string path = "/tmp/scaltool_runcache_corrupt_test.txt";
  std::remove(path.c_str());
  {
    RunCache cache(path);
    cache.insert(1, cache_spec(), cache_outcome());
    RunSpec second = cache_spec();
    second.num_procs = 8;
    JobOutcome out = cache_outcome();
    out.record.num_procs = 8;
    cache.insert(2, second, out);
    cache.save();
  }
  // Garble the first ENTRY's data-set field.
  std::string text = slurp(path);
  const auto pos = text.find("ENTRY|");
  ASSERT_NE(pos, std::string::npos);
  const auto f2 = text.find('|', text.find('|', pos + 6) + 1);
  ASSERT_NE(f2, std::string::npos);
  text.replace(f2 + 1, 1, "x");
  {
    std::ofstream os(path, std::ios::trunc);
    os << text;
  }
  RunCache cache(path);
  EXPECT_EQ(cache.loaded_entries(), 1u);
  EXPECT_GE(cache.corrupt_entries(), 1u);
  std::remove(path.c_str());
}

TEST(RunCache, TruncatedFileKeepsIntactPrefix) {
  const std::string path = "/tmp/scaltool_runcache_trunc_test.txt";
  std::remove(path.c_str());
  {
    RunCache cache(path);
    cache.insert(1, cache_spec(), cache_outcome());
    cache.save();
  }
  std::string text = slurp(path);
  {
    // Chop inside the final VALID record.
    std::ofstream os(path, std::ios::trunc);
    os << text.substr(0, text.size() - 20);
  }
  RunCache cache(path);
  EXPECT_EQ(cache.loaded_entries(), 0u);
  EXPECT_GE(cache.corrupt_entries(), 1u);
  std::remove(path.c_str());
}

// ---- Plan / engine equivalence -----------------------------------------

TEST(MatrixPlan, DedupesTheSharedBaseAndSweepPoint) {
  const ExperimentRunner runner = test_runner();
  const MatrixPlan plan =
      runner.plan_matrix("t3dheat", test_s0(runner), kProcs);
  int s0_uni_jobs = 0;
  for (const RunSpec& spec : plan.jobs)
    if (spec.workload == "t3dheat" && spec.dataset_bytes == plan.s0 &&
        spec.num_procs == 1)
      ++s0_uni_jobs;
  EXPECT_EQ(s0_uni_jobs, 1);  // shared by base series and sweep
  ASSERT_FALSE(plan.base_jobs.empty());
  ASSERT_FALSE(plan.uni_jobs.empty());
  EXPECT_EQ(plan.base_jobs.front(), plan.uni_jobs.front());
  EXPECT_TRUE(plan.jobs[plan.base_jobs.front()].want_validation);
}

TEST(CampaignEngine, SerialCollectMatchesLegacyRunner) {
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  const ScalToolInputs legacy = runner.collect("t3dheat", s0, kProcs);
  CampaignOptions options;
  options.jobs = 1;
  const ScalToolInputs engine =
      run_matrix_parallel(runner, "t3dheat", s0, kProcs, options);
  expect_inputs_eq(legacy, engine);
}

TEST(CampaignEngine, EightWorkersMatchSerial) {
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  CampaignOptions serial;
  serial.jobs = 1;
  CampaignOptions wide;
  wide.jobs = 8;
  EngineStats stats;
  const ScalToolInputs a =
      run_matrix_parallel(runner, "t3dheat", s0, kProcs, serial);
  const ScalToolInputs b =
      run_matrix_parallel(runner, "t3dheat", s0, kProcs, wide, &stats);
  expect_inputs_eq(a, b);
  EXPECT_EQ(stats.workers, 8);
  EXPECT_EQ(stats.jobs_total, stats.jobs_run);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

TEST(CampaignEngine, WarmCachePerformsZeroRuns) {
  const std::string path = "/tmp/scaltool_engine_warm_test.txt";
  std::remove(path.c_str());
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  CampaignOptions options;
  options.jobs = 4;
  options.cache_path = path;

  EngineStats cold;
  const ScalToolInputs first =
      run_matrix_parallel(runner, "t3dheat", s0, kProcs, options, &cold);
  EXPECT_EQ(cold.jobs_cached, 0u);
  EXPECT_EQ(cold.jobs_run, cold.jobs_total);

  EngineStats warm;
  const ScalToolInputs second =
      run_matrix_parallel(runner, "t3dheat", s0, kProcs, options, &warm);
  EXPECT_EQ(warm.jobs_run, 0u);
  EXPECT_EQ(warm.jobs_cached, warm.jobs_total);
  EXPECT_DOUBLE_EQ(warm.cache_hit_rate(), 1.0);
  expect_inputs_eq(first, second);
  std::remove(path.c_str());
}

TEST(CampaignEngine, CorruptCacheEntryJustReRuns) {
  const std::string path = "/tmp/scaltool_engine_corrupt_test.txt";
  std::remove(path.c_str());
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  CampaignOptions options;
  options.jobs = 2;
  options.cache_path = path;
  const ScalToolInputs first =
      run_matrix_parallel(runner, "t3dheat", s0, kProcs, options);

  // Garble one ENTRY descriptor on disk.
  std::string text = slurp(path);
  const auto pos = text.find("ENTRY|");
  ASSERT_NE(pos, std::string::npos);
  const auto f2 = text.find('|', text.find('|', pos + 6) + 1);
  text.replace(f2 + 1, 1, "x");
  {
    std::ofstream os(path, std::ios::trunc);
    os << text;
  }

  EngineStats stats;
  const ScalToolInputs second =
      run_matrix_parallel(runner, "t3dheat", s0, kProcs, options, &stats);
  EXPECT_GE(stats.cache_entries_corrupt, 1u);
  EXPECT_EQ(stats.jobs_run, 1u);  // exactly the corrupted job
  EXPECT_EQ(stats.jobs_cached, stats.jobs_total - 1);
  expect_inputs_eq(first, second);
  std::remove(path.c_str());
}

TEST(CampaignEngine, PlannerMaskSkipsJobsWithExactAccounting) {
  const std::string path = "/tmp/scaltool_engine_mask_test.txt";
  std::remove(path.c_str());
  const ExperimentRunner runner = test_runner();
  const MatrixPlan plan =
      runner.plan_matrix("t3dheat", test_s0(runner), kProcs);
  ASSERT_GT(plan.uni_jobs.size(), 3u);

  // Leave two interior sweep points unselected, like the planner would.
  std::vector<bool> selected(plan.jobs.size(), true);
  selected[plan.uni_jobs[1]] = false;
  selected[plan.uni_jobs[2]] = false;

  CampaignOptions options;
  options.cache_path = path;
  {
    CampaignEngine engine(runner, options);
    engine.execute(plan, &selected);
    const EngineStats& s = engine.stats();
    EXPECT_EQ(s.planned_skipped, 2u);
    EXPECT_EQ(s.jobs_run, plan.jobs.size() - 2);
    // The extended accounting identity, exactly.
    EXPECT_EQ(s.jobs_total, s.jobs_run + s.jobs_cached + s.jobs_replayed +
                                s.jobs_quarantined + s.planned_skipped);
  }
  // A skipped job never touched the cache: rerunning the full matrix over
  // the same cache file hits for every executed job and simulates exactly
  // the two the mask withheld.
  {
    CampaignEngine engine(runner, options);
    engine.execute(plan);
    const EngineStats& s = engine.stats();
    EXPECT_EQ(s.planned_skipped, 0u);
    EXPECT_EQ(s.jobs_cached, plan.jobs.size() - 2);
    EXPECT_EQ(s.jobs_run, 2u);
  }
  std::remove(path.c_str());
}

TEST(CampaignEngine, FailedJobRethrowsAfterFinishing) {
  const ExperimentRunner runner = test_runner();
  CampaignEngine engine(runner, {});
  MatrixPlan plan = runner.plan_matrix("t3dheat", test_s0(runner), kProcs);
  plan.jobs.push_back({"no_such_workload", 1_KiB, 1, false});
  EXPECT_THROW(engine.execute(plan), CheckError);
  EXPECT_EQ(engine.stats().jobs_failed, 1u);
}

// ---- CLI integration ---------------------------------------------------

TEST(EngineCli, ParallelCollectIsByteIdenticalToSerial) {
  const std::string serial_path = "/tmp/scaltool_engine_cli_serial.txt";
  const std::string parallel_path = "/tmp/scaltool_engine_cli_parallel.txt";
  std::ostringstream os;
  ASSERT_EQ(cli::run_command({"collect", "swim", "--size=10xL2",
                              "--max-procs=4", "--iters=2", "--jobs=1",
                              "--out=" + serial_path},
                             os),
            0);
  ASSERT_EQ(cli::run_command({"collect", "swim", "--size=10xL2",
                              "--max-procs=4", "--iters=2", "--jobs=8",
                              "--out=" + parallel_path},
                             os),
            0);
  const std::string serial = slurp(serial_path);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, slurp(parallel_path));
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());
}

TEST(EngineCli, WarmCachedAnalyzeReportsZeroRuns) {
  const std::string path = "/tmp/scaltool_engine_cli_cache.txt";
  std::remove(path.c_str());
  const std::vector<std::string> cmd{"analyze",   "swim",
                                     "--size=10xL2", "--max-procs=2",
                                     "--iters=2", "--jobs=2",
                                     "--cache=" + path};
  std::ostringstream cold;
  ASSERT_EQ(cli::run_command(cmd, cold), 0);
  EXPECT_NE(cold.str().find("engine:"), std::string::npos);
  EXPECT_EQ(cold.str().find("(0 run"), std::string::npos);

  std::ostringstream warm;
  ASSERT_EQ(cli::run_command(cmd, warm), 0);
  EXPECT_NE(warm.str().find("(0 run"), std::string::npos);
  std::remove(path.c_str());
}

// ---- Registry thread-safety --------------------------------------------

TEST(Registry, ConcurrentCreateIsSafe) {
  register_standard_workloads();
  std::atomic<int> created{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&created] {
      for (int i = 0; i < 20; ++i) {
        const auto w = WorkloadRegistry::instance().create(
            i % 2 == 0 ? "swim" : "t3dheat");
        if (w != nullptr) ++created;
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(created.load(), 8 * 20);
  EXPECT_TRUE(WorkloadRegistry::instance().contains("sync_kernel"));
}

}  // namespace
}  // namespace scaltool
