// Crash-injection harness for durability tests (DESIGN.md §11).
//
// Runs a full scaltool CLI command in a forked child so a test can watch
// the process die for real — from a seeded `--faults=crash=N` SIGKILL or
// any other fatal fault — and then exercise recovery from the survivor's
// on-disk state (journal, stage files, cache temps) in the parent. The
// child never returns through gtest: it _exit()s with the command's exit
// code, so listeners, atexit hooks and test state stay untouched.
#pragma once

#include <string>
#include <vector>

namespace scaltool::testing {

/// What wait(2) said about the child.
struct ChildResult {
  int status = 0;  ///< raw waitpid status

  bool exited() const;
  int exit_code() const;  ///< meaningful only when exited()
  bool signaled() const;
  int term_signal() const;  ///< meaningful only when signaled()
};

/// fork()s, runs `cli::run_command(argv)` in the child (output discarded),
/// _exit()s with its return code, and waits. Throws CheckError if the
/// fork or wait itself fails — not if the command does.
ChildResult run_cli_in_child(const std::vector<std::string>& argv);

}  // namespace scaltool::testing
