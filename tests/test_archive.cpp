// Unit tests: measurement-matrix archives (save/load round trip).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "core/scaltool.hpp"
#include "runner/archive.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

ScalToolInputs sample_inputs() {
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  const std::vector<int> procs{1, 2, 4};
  return runner.collect("t3dheat", s0, procs);
}

TEST(Archive, StreamRoundTripPreservesEverything) {
  const ScalToolInputs original = sample_inputs();
  std::stringstream buffer;
  write_inputs(original, buffer);
  const ScalToolInputs loaded = read_inputs(buffer);

  EXPECT_EQ(loaded.app, original.app);
  EXPECT_EQ(loaded.s0, original.s0);
  EXPECT_EQ(loaded.l2_bytes, original.l2_bytes);
  ASSERT_EQ(loaded.base_runs.size(), original.base_runs.size());
  ASSERT_EQ(loaded.uni_runs.size(), original.uni_runs.size());
  ASSERT_EQ(loaded.kernels.size(), original.kernels.size());
  ASSERT_EQ(loaded.validation.size(), original.validation.size());

  for (std::size_t i = 0; i < original.base_runs.size(); ++i) {
    const RunRecord& a = original.base_runs[i];
    const RunRecord& b = loaded.base_runs[i];
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.dataset_bytes, b.dataset_bytes);
    EXPECT_EQ(a.num_procs, b.num_procs);
    EXPECT_DOUBLE_EQ(a.metrics.cpi, b.metrics.cpi);
    EXPECT_DOUBLE_EQ(a.metrics.h2, b.metrics.h2);
    EXPECT_DOUBLE_EQ(a.metrics.hm, b.metrics.hm);
    EXPECT_DOUBLE_EQ(a.metrics.store_to_shared, b.metrics.store_to_shared);
    EXPECT_DOUBLE_EQ(a.execution_cycles, b.execution_cycles);
  }
  for (std::size_t i = 0; i < original.validation.size(); ++i) {
    EXPECT_DOUBLE_EQ(original.validation[i].mp_cycles,
                     loaded.validation[i].mp_cycles);
    EXPECT_DOUBLE_EQ(original.validation[i].coherence_misses,
                     loaded.validation[i].coherence_misses);
  }
}

TEST(Archive, AnalysisOfLoadedInputsMatchesOriginal) {
  const ScalToolInputs original = sample_inputs();
  std::stringstream buffer;
  write_inputs(original, buffer);
  const ScalToolInputs loaded = read_inputs(buffer);

  const ScalabilityReport a = analyze(original);
  const ScalabilityReport b = analyze(loaded);
  EXPECT_DOUBLE_EQ(a.model.pi0, b.model.pi0);
  EXPECT_DOUBLE_EQ(a.model.t2, b.model.t2);
  EXPECT_DOUBLE_EQ(a.model.tm1, b.model.tm1);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].base_cycles, b.points[i].base_cycles);
    EXPECT_DOUBLE_EQ(a.points[i].sync_cost, b.points[i].sync_cost);
    EXPECT_DOUBLE_EQ(a.points[i].imb_cost, b.points[i].imb_cost);
  }
}

TEST(Archive, FileRoundTrip) {
  const ScalToolInputs original = sample_inputs();
  const std::string path = "/tmp/scaltool_archive_test.txt";
  save_inputs(original, path);
  const ScalToolInputs loaded = load_inputs(path);
  EXPECT_EQ(loaded.app, original.app);
  EXPECT_EQ(loaded.base_runs.size(), original.base_runs.size());
  std::remove(path.c_str());
}

TEST(Archive, RejectsGarbage) {
  {
    std::stringstream empty;
    EXPECT_THROW(read_inputs(empty), CheckError);
  }
  {
    std::stringstream wrong("not-an-archive|1|x|1|1\n");
    EXPECT_THROW(read_inputs(wrong), CheckError);
  }
  {
    std::stringstream bad_version("scaltool-inputs|99|x|1|1\n");
    EXPECT_THROW(read_inputs(bad_version), CheckError);
  }
  {
    // Valid header but a truncated record.
    std::stringstream truncated(
        "scaltool-inputs|1|app|1024|512\nBASE|app|1024\n");
    EXPECT_THROW(read_inputs(truncated), CheckError);
  }
  EXPECT_THROW(load_inputs("/nonexistent/path/archive.txt"), CheckError);
}

TEST(Archive, RejectsUnknownRecordTag) {
  const ScalToolInputs original = sample_inputs();
  std::stringstream buffer;
  write_inputs(original, buffer);
  std::string text = buffer.str();
  // Turn the first BASE record into an unrecognized tag.
  const auto pos = text.find("\nBASE|");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos + 1, 4, "BOGO");
  std::stringstream corrupted(text);
  EXPECT_THROW(read_inputs(corrupted), CheckError);
}

TEST(Archive, RejectsMalformedNumberInRecord) {
  const ScalToolInputs original = sample_inputs();
  std::stringstream buffer;
  write_inputs(original, buffer);
  std::string text = buffer.str();
  // Garble the cpi field of the first BASE record (field 4: tag, workload,
  // data-set size, procs, cpi).
  const auto base = text.find("\nBASE|");
  ASSERT_NE(base, std::string::npos);
  std::size_t field = base + 1;
  for (int skip = 0; skip < 4; ++skip) {
    field = text.find('|', field + 1);
    ASSERT_NE(field, std::string::npos);
  }
  text.replace(field + 1, 1, "x");
  std::stringstream corrupted(text);
  EXPECT_THROW(read_inputs(corrupted), CheckError);
}

TEST(Archive, TruncatedFileRaises) {
  const ScalToolInputs original = sample_inputs();
  const std::string path = "/tmp/scaltool_archive_trunc_test.txt";
  save_inputs(original, path);
  // Chop the file in the middle of its last VALID record.
  std::string text;
  {
    std::stringstream buffer;
    write_inputs(original, buffer);
    text = buffer.str();
  }
  const auto pos = text.rfind("VALID|");
  ASSERT_NE(pos, std::string::npos);
  {
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, pos + 8);
  }
  EXPECT_THROW(load_inputs(path), CheckError);
  std::remove(path.c_str());
}

TEST(Archive, RejectsDanglingKernelRecords) {
  const ScalToolInputs original = sample_inputs();
  std::stringstream buffer;
  write_inputs(original, buffer);
  std::string text = buffer.str();
  // Drop the last SPINK line to orphan its SYNCK partner.
  const auto pos = text.rfind("SPINK");
  ASSERT_NE(pos, std::string::npos);
  const auto end = text.find('\n', pos);
  text.erase(pos, end - pos + 1);
  std::stringstream corrupted(text);
  EXPECT_THROW(read_inputs(corrupted), CheckError);
}

}  // namespace
}  // namespace scaltool
