// Unit tests: common utilities (checks, RNG, stats, tables).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace scaltool {
namespace {

TEST(Check, ThrowsOnViolationWithLocation) {
  try {
    ST_CHECK_MSG(1 == 2, "custom message " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { EXPECT_NO_THROW(ST_CHECK(2 + 2 == 4)); }

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Stats, RunningStatsMatchesClosedForm) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(Stats, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, MeanAndGeomean) {
  const std::vector<double> xs{2.0, 8.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(geomean(xs), 4.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), CheckError);
}

TEST(Stats, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(rel_diff(2.0, 1.0), 0.5);
}

TEST(Stats, ImbalanceFactor) {
  const std::vector<double> balanced{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(balanced), 0.0);
  const std::vector<double> skewed{1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(skewed), 1.0);  // max 4 / mean 2 − 1
}

TEST(Table, AlignsAndCountsRows) {
  Table t("demo");
  t.header({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| a   | bbbb |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t("demo");
  t.header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Table, CsvRoundTrip) {
  Table t("demo");
  t.header({"x", "y"});
  t.add_row({Table::cell(1), Table::cell(2.5, 1)});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2.5\n");
}

TEST(Table, CsvRejectsEmbeddedComma) {
  Table t("demo");
  t.header({"x"});
  t.add_row({"a,b"});
  EXPECT_THROW(t.to_csv(), CheckError);
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(64_KiB), "64.0 KiB");
  EXPECT_EQ(format_bytes(4_MiB), "4.0 MiB");
}

}  // namespace
}  // namespace scaltool
