// Durability and recovery (DESIGN.md §11): the write-ahead journal, the
// seeded crash fault, SIGINT checkpointing, orphan sweeping and the
// self-healing request client.
//
// The headline test kills a real collect at seeded run boundaries with
// SIGKILL (no cleanup, no flush beyond the journal's own appends), resumes
// in a fresh process image, and asserts the recovered archive is
// byte-identical to an uncrashed run with zero re-simulation of the
// journaled prefix.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.hpp"
#include "cli/cli.hpp"
#include "common/check.hpp"
#include "common/interrupt.hpp"
#include "crash_harness.hpp"
#include "engine/campaign.hpp"
#include "engine/checkpoint.hpp"
#include "engine/fault_injector.hpp"
#include "engine/journal.hpp"
#include "runner/archive.hpp"
#include "serve/service.hpp"
#include "serve/transport.hpp"

namespace scaltool {
namespace {

using testing::ChildResult;
using testing::run_cli_in_child;

std::string tmp_path(const std::string& tag) {
  return "/tmp/scaltool_crash_" + tag + "_" + std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os << bytes;
}

int run_cli(const std::vector<std::string>& args, std::string* out) {
  std::ostringstream os;
  const int rc = cli::run_command(args, os);
  *out = os.str();
  return rc;
}

/// The small-but-real campaign every durability test runs: a handful of
/// simulator runs, a second or so end to end.
std::vector<std::string> collect_argv(const std::string& out) {
  return {"collect",        "swim", "--out=" + out, "--size=2xL2",
          "--max-procs=4", "--iters=2"};
}

ExperimentRunner small_runner() {
  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  return runner;
}

// ---- The headline: SIGKILL at seeded points, resume, byte-identity ------

TEST(CrashRecovery, SigkillAtSeededPointsThenResumeIsByteIdentical) {
  const std::string ref = tmp_path("ref");
  std::string out;
  ASSERT_EQ(run_cli(collect_argv(ref), &out), 0) << out;
  const std::string ref_bytes = read_file(ref);
  ASSERT_FALSE(ref_bytes.empty());
  // A clean collect leaves no journal behind.
  EXPECT_FALSE(std::filesystem::exists(journal_path_for(ref)));

  for (const int crash_at : {1, 2, 3}) {
    SCOPED_TRACE("crash=" + std::to_string(crash_at));
    const std::string victim = tmp_path("k" + std::to_string(crash_at));
    std::vector<std::string> argv = collect_argv(victim);
    argv.push_back("--faults=crash=" + std::to_string(crash_at));
    const ChildResult child = run_cli_in_child(argv);
    ASSERT_TRUE(child.signaled());
    ASSERT_EQ(child.term_signal(), SIGKILL);
    EXPECT_FALSE(std::filesystem::exists(victim));  // never published
    ASSERT_TRUE(std::filesystem::exists(journal_path_for(victim)));

    // The journal holds exactly the crash_at runs completed before the
    // kill — the crash fault fires only after the journal append.
    const JournalReplay replay = replay_journal(journal_path_for(victim));
    EXPECT_EQ(replay.runs.size(), static_cast<std::size_t>(crash_at));
    EXPECT_FALSE(replay.committed);

    std::vector<std::string> resume = collect_argv(victim);
    resume.push_back("--resume");
    ASSERT_EQ(run_cli(resume, &out), 0) << out;
    EXPECT_NE(out.find("journal: replayed " + std::to_string(crash_at) +
                       " of "),
              std::string::npos)
        << out;
    EXPECT_EQ(read_file(victim), ref_bytes);
    EXPECT_FALSE(std::filesystem::exists(journal_path_for(victim)));
    std::remove(victim.c_str());
  }
  std::remove(ref.c_str());
}

// ---- Adaptive campaigns crash and resume like full ones ------------------

TEST(CrashRecovery, AdaptiveSigkillThenResumeIsByteIdenticalZeroResim) {
  // The planner's decisions are a deterministic function of run outcomes,
  // so a SIGKILLed adaptive campaign resumed from its journal must buy
  // the same picks and publish the same bytes — replaying, never
  // re-simulating, the runs it already paid for.
  const auto adaptive_argv = [](const std::string& out) {
    return std::vector<std::string>{
        "collect",      "t3dheat",       "--adaptive", "--out=" + out,
        "--size=10xL2", "--max-procs=4", "--iters=2",  "--tolerance=0.10"};
  };
  const std::string ref = tmp_path("adaptive_ref");
  std::string out;
  ASSERT_EQ(run_cli(adaptive_argv(ref), &out), 0) << out;
  const std::string ref_bytes = read_file(ref);
  ASSERT_NE(ref_bytes.find("NOTE|PLAN|"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(journal_path_for(ref)));

  // crash=3 dies inside the mandatory core batch; crash=10 dies during
  // the adaptive picks beyond it (the core is 9 jobs at this geometry).
  for (const int crash_at : {3, 10}) {
    SCOPED_TRACE("crash=" + std::to_string(crash_at));
    const std::string victim = tmp_path("adk" + std::to_string(crash_at));
    std::vector<std::string> argv = adaptive_argv(victim);
    argv.push_back("--faults=crash=" + std::to_string(crash_at));
    const ChildResult child = run_cli_in_child(argv);
    ASSERT_TRUE(child.signaled());
    ASSERT_EQ(child.term_signal(), SIGKILL);
    EXPECT_FALSE(std::filesystem::exists(victim));
    ASSERT_TRUE(std::filesystem::exists(journal_path_for(victim)));

    std::vector<std::string> resume = adaptive_argv(victim);
    resume.push_back("--resume");
    ASSERT_EQ(run_cli(resume, &out), 0) << out;
    EXPECT_NE(out.find("journal: replayed " + std::to_string(crash_at) +
                       " of "),
              std::string::npos)
        << out;
    EXPECT_EQ(read_file(victim), ref_bytes);
    EXPECT_FALSE(std::filesystem::exists(journal_path_for(victim)));
    std::remove(victim.c_str());
  }
  std::remove(ref.c_str());
}

// ---- Replay counters: the journaled prefix is never re-simulated --------

TEST(CrashRecovery, ResumeSimulatesOnlyTheMissingTail) {
  const std::string journal = tmp_path("tail") + ".journal";
  const std::string first_out = tmp_path("tail_a");
  const std::string second_out = tmp_path("tail_b");
  const ExperimentRunner runner = small_runner();
  const std::size_t s0 = 2 * runner.base_config().l2.size_bytes;
  const std::vector<int> counts = {1, 2, 4};

  CampaignOptions full;
  full.journal_path = journal;
  CampaignEngine first(runner, full);
  save_inputs(first.collect("swim", s0, counts), first_out);
  const std::size_t total = first.stats().jobs_total;
  ASSERT_GE(total, 4u);

  // Amputate the last two completed runs, as if the crash had hit two run
  // boundaries earlier.
  std::istringstream lines(read_file(journal));
  std::vector<std::string> kept;
  for (std::string line; std::getline(lines, line);) kept.push_back(line);
  std::string truncated;
  for (std::size_t i = 0; i + 2 < kept.size(); ++i)
    truncated += kept[i] + "\n";
  write_file(journal, truncated);

  CampaignOptions resume;
  resume.journal_path = journal;
  resume.resume = true;
  CampaignEngine second(runner, resume);
  save_inputs(second.collect("swim", s0, counts), second_out);
  EXPECT_EQ(second.stats().jobs_replayed, total - 2);
  EXPECT_EQ(second.stats().jobs_run, 2u);
  EXPECT_EQ(read_file(second_out), read_file(first_out));

  std::remove(journal.c_str());
  std::remove(first_out.c_str());
  std::remove(second_out.c_str());
}

TEST(CrashRecovery, FullJournalReplaysWithZeroSimulatorRuns) {
  const std::string journal = tmp_path("zero") + ".journal";
  const ExperimentRunner runner = small_runner();
  const std::size_t s0 = 2 * runner.base_config().l2.size_bytes;
  const std::vector<int> counts = {1, 2};

  CampaignOptions full;
  full.journal_path = journal;
  CampaignEngine first(runner, full);
  first.collect("swim", s0, counts);
  const std::size_t total = first.stats().jobs_total;

  CampaignOptions resume = full;
  resume.resume = true;
  CampaignEngine second(runner, resume);
  second.collect("swim", s0, counts);
  EXPECT_EQ(second.stats().jobs_replayed, total);
  EXPECT_EQ(second.stats().jobs_run, 0u);
  std::remove(journal.c_str());
}

TEST(CrashRecovery, ResumeRejectsAJournalForADifferentMatrix) {
  const std::string journal = tmp_path("mismatch") + ".journal";
  const ExperimentRunner runner = small_runner();
  const std::size_t s0 = 2 * runner.base_config().l2.size_bytes;
  const std::vector<int> counts = {1, 2};

  CampaignOptions full;
  full.journal_path = journal;
  CampaignEngine first(runner, full);
  first.collect("swim", s0, counts);

  CampaignOptions resume = full;
  resume.resume = true;
  CampaignEngine second(runner, resume);
  EXPECT_THROW(second.collect("fft_kernel", s0, counts), CheckError);
  std::remove(journal.c_str());
}

// ---- Hostile journals: longest valid prefix or a named error ------------

class HostileJournal : public ::testing::Test {
 protected:
  void SetUp() override {
    journal_ = tmp_path("hostile") + ".journal";
    const ExperimentRunner runner = small_runner();
    CampaignOptions options;
    options.journal_path = journal_;
    CampaignEngine engine(runner, options);
    engine.collect("swim", 2 * runner.base_config().l2.size_bytes,
                   std::vector<int>{1, 2});
    total_ = engine.stats().jobs_total;
    pristine_ = read_file(journal_);
    ASSERT_FALSE(pristine_.empty());
  }

  void TearDown() override { std::remove(journal_.c_str()); }

  std::vector<std::string> lines() const {
    std::istringstream is(pristine_);
    std::vector<std::string> out;
    for (std::string line; std::getline(is, line);) out.push_back(line);
    return out;
  }

  std::string journal_;
  std::string pristine_;
  std::size_t total_ = 0;
};

TEST_F(HostileJournal, TruncatedTailKeepsTheLongestValidPrefix) {
  write_file(journal_, pristine_.substr(0, pristine_.size() - 7));
  const JournalReplay replay = replay_journal(journal_);
  EXPECT_EQ(replay.runs.size(), total_ - 1);  // only the torn record lost
  EXPECT_GE(replay.records_dropped, 1u);
  EXPECT_LT(replay.valid_prefix_bytes, pristine_.size());
}

TEST_F(HostileJournal, BitFlipStopsReplayAtTheDamagedRecord) {
  std::vector<std::string> all = lines();
  ASSERT_GE(all.size(), 4u);
  // Damage the payload of the third-from-last record; its CRC no longer
  // matches, so it and everything after it are dropped.
  std::string& victim = all[all.size() - 3];
  victim[victim.size() / 2] ^= 0x01;
  std::string mutated;
  for (const std::string& line : all) mutated += line + "\n";
  write_file(journal_, mutated);
  const JournalReplay replay = replay_journal(journal_);
  EXPECT_EQ(replay.runs.size(), total_ - 3);
  EXPECT_EQ(replay.records_dropped, 3u);
}

TEST_F(HostileJournal, DuplicatedRecordCountsOnceFirstWins) {
  std::vector<std::string> all = lines();
  write_file(journal_, pristine_ + all.back() + "\n");
  const JournalReplay replay = replay_journal(journal_);
  EXPECT_EQ(replay.runs.size(), total_);
  EXPECT_EQ(replay.duplicates, 1u);
  EXPECT_EQ(replay.records_dropped, 0u);
}

TEST_F(HostileJournal, UnsupportedVersionIsANamedError) {
  std::vector<std::string> all = lines();
  const std::string header = all.front();
  const std::size_t bar = header.find('|');
  const std::size_t bar2 = header.find('|', bar + 1);
  std::string mutated = header.substr(0, bar + 1) + "99" +
                        header.substr(bar2) + "\n";
  for (std::size_t i = 1; i < all.size(); ++i) mutated += all[i] + "\n";
  write_file(journal_, mutated);
  try {
    replay_journal(journal_);
    FAIL() << "a future-version journal must not parse";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(HostileJournal, GarbageAndEmptyFilesAreNamedErrors) {
  write_file(journal_, "definitely not a journal\nat all\n");
  try {
    replay_journal(journal_);
    FAIL() << "garbage must not parse";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("not a scaltool journal"),
              std::string::npos);
  }
  write_file(journal_, "");
  EXPECT_THROW(replay_journal(journal_), CheckError);
}

// ---- The crash fault kind -----------------------------------------------

TEST(CrashFault, ParsesDescribesAndValidates) {
  const FaultPlan plan = FaultPlan::parse("crash=2");
  EXPECT_EQ(plan.crash_at_run, 2);
  EXPECT_TRUE(plan.enabled());
  EXPECT_NE(plan.describe().find("crash=2"), std::string::npos);
  EXPECT_THROW(FaultPlan::parse("crash=0"), CheckError);
}

// ---- Watchdog -----------------------------------------------------------

TEST(Watchdog, CancelsStalledRunsAndQuarantinesThem) {
  const ExperimentRunner runner = small_runner();
  const std::size_t s0 = 2 * runner.base_config().l2.size_bytes;
  CampaignOptions options;
  // Every run stalls for a minute; the watchdog reclaims each attempt
  // after 50 ms, so the whole matrix quarantines in well under a second
  // per job instead of hanging for the better part of an hour.
  options.faults = FaultPlan::parse("seed=3,stall=1,stall-ms=60000");
  options.run_timeout_ms = 50;
  options.keep_going = true;
  CampaignEngine engine(runner, options);
  const MatrixPlan plan =
      runner.plan_matrix("swim", s0, std::vector<int>{1, 2});
  const auto started = std::chrono::steady_clock::now();
  engine.execute(plan);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  EXPECT_EQ(engine.stats().jobs_quarantined, plan.jobs.size());
  EXPECT_EQ(engine.stats().watchdog_timeouts, plan.jobs.size());
  EXPECT_LT(elapsed, 30.0);
  ASSERT_FALSE(engine.quarantined().empty());
  EXPECT_NE(engine.quarantined().front().error.find("watchdog"),
            std::string::npos);
}

TEST(Watchdog, RejectsNegativeTimeout) {
  const ExperimentRunner runner = small_runner();
  CampaignOptions options;
  options.run_timeout_ms = -1;
  EXPECT_THROW(CampaignEngine(runner, options), CheckError);
}

// ---- SIGINT/SIGTERM: checkpoint and exit 6, then resume -----------------

TEST(Interrupt, CollectCheckpointsExitsResumableAndResumes) {
  install_interrupt_handlers();
  const std::string ref = tmp_path("int_ref");
  const std::string out_path = tmp_path("int");
  std::string out;
  ASSERT_EQ(run_cli(collect_argv(ref), &out), 0) << out;

  reset_interrupted();
  ::raise(SIGINT);  // first signal: flag only, polled by the campaign
  ASSERT_TRUE(interrupt_requested());
  EXPECT_EQ(run_cli(collect_argv(out_path), &out), kExitInterrupted);
  EXPECT_NE(out.find("--resume"), std::string::npos) << out;
  EXPECT_FALSE(std::filesystem::exists(out_path));
  EXPECT_TRUE(std::filesystem::exists(journal_path_for(out_path)));
  reset_interrupted();

  std::vector<std::string> resume = collect_argv(out_path);
  resume.push_back("--resume");
  ASSERT_EQ(run_cli(resume, &out), 0) << out;
  EXPECT_EQ(read_file(out_path), read_file(ref));
  EXPECT_FALSE(std::filesystem::exists(journal_path_for(out_path)));
  std::remove(ref.c_str());
  std::remove(out_path.c_str());
}

// ---- Orphan temp sweeping -----------------------------------------------

TEST(OrphanReap, SweepsTempsOfDeadProcessesOnly) {
  const std::string base = tmp_path("reap");
  write_file(base, "published artifact\n");

  // Manufacture a pid that demonstrably belonged to a dead process.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  const std::string dead_tmp = base + ".tmp." + std::to_string(child);
  const std::string dead_stage = base + ".stage." + std::to_string(child);
  const std::string live_tmp = base + ".tmp." + std::to_string(::getpid());
  const std::string odd_tmp = base + ".tmp.notapid";
  for (const std::string& p : {dead_tmp, dead_stage, live_tmp, odd_tmp})
    write_file(p, "debris");

  EXPECT_EQ(reap_orphan_temps(base), 2u);
  EXPECT_FALSE(std::filesystem::exists(dead_tmp));
  EXPECT_FALSE(std::filesystem::exists(dead_stage));
  EXPECT_TRUE(std::filesystem::exists(live_tmp));   // owner still alive
  EXPECT_TRUE(std::filesystem::exists(odd_tmp));    // not ours to judge
  EXPECT_TRUE(std::filesystem::exists(base));       // never the artifact
  for (const std::string& p : {base, live_tmp, odd_tmp})
    std::remove(p.c_str());
}

// ---- Two-phase archive commit -------------------------------------------

TEST(TwoPhaseCommit, PublishesAtomicallyAndMarksTheJournal) {
  const std::string archive = tmp_path("commit");
  const std::string journal = journal_path_for(archive);
  const ExperimentRunner runner = small_runner();
  const std::size_t s0 = 2 * runner.base_config().l2.size_bytes;
  const std::vector<int> counts = {1, 2};
  const ScalToolInputs inputs = runner.collect("swim", s0, counts);

  const MatrixPlan plan = runner.plan_matrix("swim", s0, counts);
  JournalWriter writer(journal, /*append=*/false);
  writer.begin(matrix_signature(plan, runner.base_config(),
                                runner.iterations),
               plan);
  commit_archive(inputs, archive, &writer);
  EXPECT_TRUE(std::filesystem::exists(archive));
  // No stage file survives publication.
  EXPECT_FALSE(
      std::filesystem::exists(stage_path_for(archive)));

  const JournalReplay replay = replay_journal(journal);
  EXPECT_TRUE(replay.committed);
  EXPECT_EQ(replay.archive_path, archive);
  const std::string bytes = read_file(archive);
  EXPECT_EQ(replay.archive_bytes, bytes.size());
  EXPECT_EQ(replay.archive_crc, crc32(bytes));
  std::remove(archive.c_str());
  std::remove(journal.c_str());
}

// ---- The self-healing request client ------------------------------------

TEST(ResilientClient, RedialsUntilTheServerAppears) {
  const std::string sock = tmp_path("redial") + ".sock";
  std::atomic<bool> done{false};
  std::thread late_server([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    serve::AnalysisService service;
    serve::SocketServer server(service, sock);
    while (!done.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.stop();
    service.shutdown();
  });

  serve::Request ping;
  ping.op = "ping";
  serve::RetryPolicy policy;
  policy.retries = 30;
  policy.backoff_ms = 20;
  policy.seed = 7;
  const serve::Response response =
      serve::socket_call_resilient(sock, ping, policy);
  EXPECT_EQ(response.status, serve::Status::kOk);
  EXPECT_EQ(response.output, "pong\n");
  done = true;
  late_server.join();
}

TEST(ResilientClient, GivesUpOncePolicyIsExhausted) {
  serve::Request ping;
  ping.op = "ping";
  serve::RetryPolicy policy;
  policy.retries = 1;
  policy.backoff_ms = 1;
  EXPECT_THROW(serve::socket_call_resilient(
                   tmp_path("absent") + ".sock", ping, policy),
               CheckError);
}

// ---- The health verb ----------------------------------------------------

TEST(Health, ReportsUptimeQueueAndJournalLag) {
  serve::AnalysisService service;
  serve::Request req;
  req.op = "health";
  const serve::Response response = service.call(std::move(req));
  EXPECT_EQ(response.status, serve::Status::kOk);
  const std::string& json = response.stats_json;
  for (const char* field :
       {"\"status\":\"ok\"", "\"uptime_seconds\":", "\"workers\":",
        "\"queue_depth\":", "\"queue_capacity\":", "\"in_flight\":",
        "\"journal_lag\":0"})
    EXPECT_NE(json.find(field), std::string::npos) << json;
  service.shutdown();
}

TEST(Health, IsServableThroughTheRequestClient) {
  std::string out;
  EXPECT_EQ(run_cli({"request", "health"}, &out), 0);
  EXPECT_NE(out.find("\"journal_lag\":"), std::string::npos) << out;
}

}  // namespace
}  // namespace scaltool
