// Unit tests: the bundled workloads — phase structure, access-pattern
// helpers, registry, and the structural properties each application was
// designed around.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "common/check.hpp"
#include "common/stats.hpp"
#include "machine/dsm_machine.hpp"
#include "runner/runner.hpp"
#include "trace/access_pattern.hpp"

namespace scaltool {
namespace {

MachineConfig test_machine(int procs) {
  MachineConfig cfg = MachineConfig::origin2000_scaled(procs);
  return cfg;
}

RunResult run_app(const std::string& name, std::size_t s, int procs,
                  int iters = 2) {
  register_standard_workloads();
  const auto w = WorkloadRegistry::instance().create(name);
  DsmMachine machine(test_machine(procs));
  WorkloadParams params;
  params.dataset_bytes = s;
  params.iterations = iters;
  return machine.run(*w, params);
}

TEST(BlockRange, PartitionsExactlyAndContiguously) {
  for (std::size_t total : {100u, 128u, 7u}) {
    for (int nprocs : {1, 3, 4, 7}) {
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (int p = 0; p < nprocs; ++p) {
        const BlockRange r = block_range(total, nprocs, p);
        EXPECT_EQ(r.begin, expect_begin);
        expect_begin = r.end;
        covered += r.size();
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(expect_begin, total);
    }
  }
}

TEST(BlockRange, BalancedWithinOne) {
  for (int p = 0; p < 5; ++p) {
    const BlockRange r = block_range(17, 5, p);
    EXPECT_GE(r.size(), 3u);
    EXPECT_LE(r.size(), 4u);
  }
}

TEST(Registry, AllStandardWorkloadsRegistered) {
  register_standard_workloads();
  const WorkloadRegistry& reg = WorkloadRegistry::instance();
  for (const char* name :
       {"t3dheat", "hydro2d", "swim", "fft", "lu", "sync_kernel", "spin_kernel",
        "compute_kernel", "stream_kernel", "sharing_kernel", "lock_kernel"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_EQ(reg.create(name)->name(), name);
  }
  EXPECT_THROW(reg.create("no_such_app"), CheckError);
}

TEST(Registry, RegistrationIsIdempotent) {
  register_standard_workloads();
  EXPECT_NO_THROW(register_standard_workloads());
}

TEST(Registry, RejectsDuplicateName) {
  register_standard_workloads();
  EXPECT_THROW(WorkloadRegistry::instance().register_workload(
                   "t3dheat", [] { return std::unique_ptr<Workload>(); }),
               CheckError);
}

TEST(T3dheat, ParallelismModelAndPhases) {
  T3dheat w;
  EXPECT_EQ(w.parallelism_model(), ParallelismModel::kPCF);
  WorkloadParams params;
  params.dataset_bytes = 64_KiB;
  params.iterations = 3;
  DsmMachine machine(test_machine(1));
  machine.run(w, params);
  // 3 sliced sweeps (8 strips each) + 2 dot/reduce pairs per iteration.
  EXPECT_EQ(w.num_phases(), 1 + 3 * (3 * 8 + 4));
}

TEST(T3dheat, BalancedWork) {
  const RunResult r = run_app("t3dheat", 320_KiB, 8);
  std::vector<double> busy;
  for (const auto& gt : r.truth.per_proc)
    busy.push_back(gt.compute_cycles + gt.mem_stall_cycles);
  // "Good load balance" (Table 4): within ~10% of the mean (proc 0 does
  // the small serial reductions).
  EXPECT_LT(imbalance_factor(busy), 0.10);
}

TEST(T3dheat, ReusesDataAcrossIterations) {
  // With a data set that fits the L2, iterations after the first should
  // hit: L2 misses ≈ compulsory only.
  const RunResult r = run_app("t3dheat", 32_KiB, 1, /*iters=*/4);
  const auto gt = r.truth.aggregate();
  EXPECT_GT(gt.compulsory_misses, 0.0);
  EXPECT_LT(gt.conflict_misses, 0.05 * gt.compulsory_misses);
}

TEST(T3dheat, OverflowingSetConflictMisses) {
  const RunResult r = run_app("t3dheat", 640_KiB, 1, /*iters=*/2);
  const auto gt = r.truth.aggregate();
  // 10× the L2: every sweep re-misses, so conflicts dwarf compulsory.
  EXPECT_GT(gt.conflict_misses, 2.0 * gt.compulsory_misses);
}

TEST(Hydro2d, SerialSectionCreatesImbalance) {
  const RunResult r = run_app("hydro2d", 166_KiB, 8);
  const auto& gt = r.truth;
  // Processor 0 does the serial work; the others spin.
  EXPECT_LT(gt.per_proc[0].spin_cycles, gt.per_proc[4].spin_cycles);
  EXPECT_GT(gt.aggregate().spin_cycles, 0.0);
  ASSERT_TRUE(r.regions.contains("serial_section"));
  // The serial region is executed by processor 0 only.
  const auto& region = r.regions.at("serial_section");
  EXPECT_GT(region.proc(0).get(EventId::kCycles), 0.0);
  EXPECT_EQ(region.proc(3).get(EventId::kCycles), 0.0);
}

TEST(Hydro2d, SerialFractionCapsSpeedup) {
  const RunResult r1 = run_app("hydro2d", 166_KiB, 1);
  const RunResult r16 = run_app("hydro2d", 166_KiB, 16);
  const double speedup = r1.execution_cycles / r16.execution_cycles;
  // The ~19% serial section caps the speedup well below linear (the
  // aggregate-cache boost partially offsets it at low counts).
  EXPECT_GT(speedup, 4.0);
  EXPECT_LT(speedup, 12.0);
}

TEST(Swim, NearLinearAtSmallCounts) {
  const RunResult r1 = run_app("swim", 256_KiB, 1);
  const RunResult r4 = run_app("swim", 256_KiB, 4);
  const double speedup = r1.execution_cycles / r4.execution_cycles;
  EXPECT_GT(speedup, 3.0);
}

TEST(Swim, BoundarySharingGeneratesCoherenceMisses) {
  const RunResult r = run_app("swim", 256_KiB, 8, /*iters=*/3);
  EXPECT_GT(r.truth.aggregate().coherence_misses, 0.0);
}

TEST(SyncKernel, AllCostIsSyncAndSpin) {
  const RunResult r = run_app("sync_kernel", 1_KiB, 8);
  const auto gt = r.truth.aggregate();
  EXPECT_GT(gt.sync_cycles, 0.0);
  // Compute is the 2-instruction loop shell only.
  EXPECT_LT(gt.compute_cycles, 0.05 * gt.total_cycles());
  EXPECT_GT(r.counters.aggregate().get(EventId::kStoreToShared), 0.0);
}

TEST(SpinKernel, MeasuresSpinCpi) {
  const RunResult r = run_app("spin_kernel", 1_KiB, 16);
  const DerivedMetrics d = r.counters.derived();
  const SyncConfig sync;
  // Mostly idle spinning: the kernel CPI approaches the spin-loop CPI.
  EXPECT_NEAR(d.cpi, sync.spin_cpi, 0.30);
}

TEST(ComputeKernel, MeasuresBaseCpi) {
  const RunResult r = run_app("compute_kernel", 1_KiB, 1);
  EXPECT_NEAR(r.counters.derived().cpi, test_machine(1).base_cpi, 1e-9);
}

TEST(StreamKernel, HitRateDropsWhenOverflowingL2) {
  const std::size_t l2 = test_machine(1).l2.size_bytes;
  const RunResult fits = run_app("stream_kernel", l2 / 2, 1, 3);
  const RunResult spills = run_app("stream_kernel", 4 * l2, 1, 3);
  EXPECT_GT(fits.counters.derived().l2_hitr,
            spills.counters.derived().l2_hitr + 0.3);
}

TEST(SharingKernel, MigratesNeighbourBlocks) {
  const RunResult r = run_app("sharing_kernel", 64_KiB, 4, 3);
  const auto gt = r.truth.aggregate();
  EXPECT_GT(gt.coherence_misses, 100.0);
  EXPECT_GT(r.counters.aggregate().get(EventId::kInvalidationsReceived),
            100.0);
}

TEST(LockKernel, AcquiresSerializeAcrossProcs) {
  const RunResult r = run_app("lock_kernel", 1_KiB, 4);
  const CounterSet agg = r.counters.aggregate();
  EXPECT_DOUBLE_EQ(agg.get(EventId::kLockAcquires),
                   4.0 /*procs*/ * 4 /*phases*/ * 8 /*sections*/);
  EXPECT_GT(r.truth.aggregate().spin_cycles, 0.0);
}

TEST(Fft, PowerOfTwoSizingAndPhases) {
  Fft w;
  WorkloadParams params;
  params.dataset_bytes = 40_KiB;  // floors to 2048 points (32 KiB)
  params.iterations = 2;
  DsmMachine machine(test_machine(4));
  machine.run(w, params);
  // 2048 points → 11 butterfly stages + 1 transpose, per iteration.
  EXPECT_EQ(w.num_phases(), 1 + 2 * (11 + 1));
}

TEST(Fft, TransposeGeneratesAllToAllSharing) {
  const RunResult r = run_app("fft", 256_KiB, 8, /*iters=*/2);
  const auto gt = r.truth.aggregate();
  EXPECT_GT(gt.coherence_misses, 500.0);
  ASSERT_TRUE(r.regions.contains("transpose"));
  // Every processor executes transpose work.
  for (int p = 0; p < 8; ++p)
    EXPECT_GT(r.regions.at("transpose").proc(p).get(
                  EventId::kGraduatedInstructions),
              0.0)
        << p;
}

TEST(Fft, SharingGrowsWithProcessorCount) {
  const RunResult r4 = run_app("fft", 256_KiB, 4, 2);
  const RunResult r16 = run_app("fft", 256_KiB, 16, 2);
  EXPECT_GT(r16.truth.aggregate().coherence_misses,
            r4.truth.aggregate().coherence_misses);
}

TEST(Lu, PanelSerializationCreatesImbalance) {
  const RunResult r = run_app("lu", 512_KiB, 8, /*iters=*/3);
  const auto gt = r.truth.aggregate();
  EXPECT_GT(gt.spin_cycles, 0.0);
  ASSERT_TRUE(r.regions.contains("panel"));
  // The panel is factored by exactly one processor per step.
  double procs_with_panel_work = 0;
  for (int p = 0; p < 8; ++p)
    if (r.regions.at("panel").proc(p).get(
            EventId::kGraduatedInstructions) > 0.0)
      ++procs_with_panel_work;
  EXPECT_GE(procs_with_panel_work, 2.0);  // pivots move across owners
}

TEST(Lu, SpeedupSaturatesFromShrinkingParallelism) {
  const RunResult r1 = run_app("lu", 512_KiB, 1, 3);
  const RunResult r8 = run_app("lu", 512_KiB, 8, 3);
  const RunResult r32 = run_app("lu", 512_KiB, 32, 3);
  const double s8 = r1.execution_cycles / r8.execution_cycles;
  const double s32 = r1.execution_cycles / r32.execution_cycles;
  EXPECT_GT(s8, 4.0);
  // Beyond 8 the gains flatten (paper-style saturation, different cause).
  EXPECT_LT(s32, 2.2 * s8);
}

TEST(Apps, DataSetTooSmallIsRejected) {
  register_standard_workloads();
  const auto w = WorkloadRegistry::instance().create("t3dheat");
  DsmMachine machine(test_machine(32));
  WorkloadParams params;
  params.dataset_bytes = 40;  // one grid point
  EXPECT_THROW(machine.run(*w, params), CheckError);
}

}  // namespace
}  // namespace scaltool
