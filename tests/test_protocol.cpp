// Unit + integration tests: Illinois/MESI vs MSI protocol option, and the
// machine's global coherence-invariant checker.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "apps/apps.hpp"
#include "coherence/directory.hpp"
#include "common/check.hpp"
#include "machine/dsm_machine.hpp"
#include "trace/registry.hpp"

namespace scaltool {
namespace {

TEST(Protocol, MsiDirectoryNeverGrantsExclusive) {
  Directory dir(4, /*grant_exclusive_on_read=*/false);
  const DirReadResult r = dir.read_miss(0x1000, 0);
  EXPECT_TRUE(r.compulsory);
  EXPECT_FALSE(r.grant_exclusive);
  EXPECT_EQ(dir.find(0x1000)->state, DirEntry::State::kShared);
  // A subsequent write by the same processor is an upgrade, not silent.
  const DirWriteResult w = dir.write_access(0x1000, 0);
  EXPECT_FALSE(w.intervention);
  EXPECT_EQ(w.invalidate, 0u);
  EXPECT_EQ(dir.find(0x1000)->state, DirEntry::State::kExclusive);
}

// Read a private array cold, then write it — the pattern the Illinois
// protocol's E state exists for [14].
class ReadThenWrite final : public Workload {
 public:
  std::string name() const override { return "read_then_write"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }
  void setup(AllocContext& alloc, const WorkloadParams& params,
             int) override {
    lines_ = params.dataset_bytes / 64;
    base_ = alloc.allocate(params.dataset_bytes, "a");
  }
  int num_phases() const override { return 2; }
  void run_phase(int phase, ProcContext& ctx) override {
    if (ctx.proc() != 0) return;
    for (std::size_t i = 0; i < lines_; ++i) {
      const Addr a = base_ + static_cast<Addr>(i) * 64;
      if (phase == 0)
        ctx.load(a);   // cold read: E under MESI, S under MSI
      else
        ctx.store(a);  // silent under MESI, upgrade under MSI
    }
  }

 private:
  std::size_t lines_ = 0;
  Addr base_ = 0;
};

TEST(Protocol, MesiSavesUpgradesOnPrivateData) {
  auto run = [](bool mesi) {
    MachineConfig cfg = MachineConfig::origin2000_scaled(1);
    cfg.exclusive_state = mesi;
    DsmMachine machine(cfg);
    ReadThenWrite w;
    WorkloadParams params;
    params.dataset_bytes = 32_KiB;  // 512 lines, fits the L2
    return machine.run(w, params);
  };
  const RunResult mesi = run(true);
  const RunResult msi = run(false);
  const double mesi_up =
      mesi.counters.aggregate().get(EventId::kStoreToShared);
  const double msi_up = msi.counters.aggregate().get(EventId::kStoreToShared);
  EXPECT_DOUBLE_EQ(mesi_up, 0.0);    // E→M silently
  EXPECT_DOUBLE_EQ(msi_up, 512.0);   // one upgrade per line
  // The upgrades cost real cycles.
  EXPECT_GT(msi.execution_cycles, mesi.execution_cycles);
}

TEST(Protocol, BothProtocolsKeepCoherenceInvariants) {
  register_standard_workloads();
  for (const bool mesi : {true, false}) {
    MachineConfig cfg = MachineConfig::origin2000_scaled(8);
    cfg.exclusive_state = mesi;
    DsmMachine machine(cfg);
    const auto w = WorkloadRegistry::instance().create("sharing_kernel");
    WorkloadParams params;
    params.dataset_bytes = 64_KiB;
    params.iterations = 3;
    machine.run(*w, params);
    EXPECT_NO_THROW(machine.validate_coherence()) << "mesi=" << mesi;
  }
}

// The coherence validator must hold after every bundled workload, every
// processor count, and both protocols — this is the simulator's deepest
// correctness net.
struct ValidateCase {
  const char* app;
  int procs;
};

class CoherenceInvariantTest
    : public ::testing::TestWithParam<ValidateCase> {};

TEST_P(CoherenceInvariantTest, HoldsAfterFullRun) {
  register_standard_workloads();
  const ValidateCase& c = GetParam();
  MachineConfig cfg = MachineConfig::origin2000_scaled(c.procs);
  DsmMachine machine(cfg);
  const auto w = WorkloadRegistry::instance().create(c.app);
  WorkloadParams params;
  params.dataset_bytes = 128_KiB;
  params.iterations = 2;
  machine.run(*w, params);
  machine.validate_coherence();
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndSizes, CoherenceInvariantTest,
    ::testing::Values(ValidateCase{"t3dheat", 1}, ValidateCase{"t3dheat", 8},
                      ValidateCase{"t3dheat", 32},
                      ValidateCase{"hydro2d", 4},
                      ValidateCase{"hydro2d", 16}, ValidateCase{"swim", 2},
                      ValidateCase{"swim", 32},
                      ValidateCase{"sharing_kernel", 8},
                      ValidateCase{"stream_kernel", 16}),
    [](const auto& info) {
      return std::string(info.param.app) + "_p" +
             std::to_string(info.param.procs);
    });

TEST(Protocol, ValidatorRejectsUnstartedMachine) {
  DsmMachine machine(MachineConfig::origin2000_scaled(2));
  EXPECT_THROW(machine.validate_coherence(), CheckError);
}

}  // namespace
}  // namespace scaltool
