// Edge-case and robustness tests for the model core: degenerate input
// matrices, clamping behaviour, and diagnostics content.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

ExperimentRunner make_runner(int iterations = 3) {
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = iterations;
  return runner;
}

TEST(ModelEdge, SingleProcessorMatrixStillAnalyzes) {
  // A campaign with only the uniprocessor point: the model fits pi0/t2/tm
  // and produces one point with zero MP cost.
  const ExperimentRunner runner = make_runner();
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  const std::vector<int> procs{1};
  const ScalToolInputs inputs = runner.collect("t3dheat", s0, procs);
  const ScalabilityReport report = analyze(inputs);
  ASSERT_EQ(report.points.size(), 1u);
  EXPECT_DOUBLE_EQ(report.points[0].mp_cost(), 0.0);
  EXPECT_GT(report.model.pi0, 0.0);
}

TEST(ModelEdge, NonPowerOfTwoProcessorCounts) {
  // Nothing in the pipeline requires powers of two; Coh(s0,n)
  // interpolates the uniprocessor curve at s0/3, s0/5 etc.
  const ExperimentRunner runner = make_runner();
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  const std::vector<int> procs{1, 3, 5, 12};
  const ScalToolInputs inputs = runner.collect("swim", s0, procs);
  const ScalabilityReport report = analyze(inputs);
  ASSERT_EQ(report.points.size(), 4u);
  for (const BottleneckPoint& p : report.points) {
    EXPECT_GE(p.frac_syn, 0.0);
    EXPECT_LE(p.frac_syn + p.frac_imb, 1.0 + 1e-9);
    EXPECT_GE(p.cycles_no_l2lim_no_mp, 0.0);
  }
}

TEST(ModelEdge, AnchorAboveL2ProducesDiagnosticNote) {
  // If the smallest sweep point does not fit the L2, the pi0 anchor is
  // biased and the model must say so.
  ExperimentRunner runner = make_runner();
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  ScalToolInputs inputs = runner.collect("t3dheat", 10 * l2,
                                         std::vector<int>{1});
  // Drop every sweep point that fits the L2.
  std::erase_if(inputs.uni_runs, [&](const RunRecord& r) {
    return r.dataset_bytes <= 2 * l2 && r.dataset_bytes != inputs.s0;
  });
  const CpiModel model = estimate_cpi_model(inputs);
  const bool noted = std::any_of(
      model.notes.begin(), model.notes.end(), [](const std::string& n) {
        return n.find("pi0 anchor") != std::string::npos;
      });
  EXPECT_TRUE(noted);
}

TEST(ModelEdge, OverflowFactorIsConfigurable) {
  const ExperimentRunner runner = make_runner();
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  const ScalToolInputs inputs =
      runner.collect("t3dheat", s0, std::vector<int>{1, 2});
  CpiModelOptions strict;
  strict.overflow_factor = 4.0;  // fewer triplets qualify
  const CpiModel loose = estimate_cpi_model(inputs);
  const CpiModel tight = estimate_cpi_model(inputs, strict);
  // Both still land on the same machine, within fit noise.
  EXPECT_NEAR(loose.tm1, tight.tm1, 0.15 * loose.tm1);
  // Demanding overflow beyond the largest size must fail loudly.
  CpiModelOptions impossible;
  impossible.overflow_factor = 100.0;
  EXPECT_THROW(estimate_cpi_model(inputs, impossible), CheckError);
}

TEST(ModelEdge, ClampNotesAreReported) {
  // Force a clamp: feed the analysis a kernel whose cpi_imb equals the
  // computed cpi_inf_inf so Eq. 9 becomes unidentifiable.
  const ExperimentRunner runner = make_runner();
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  ScalToolInputs inputs =
      runner.collect("t3dheat", s0, std::vector<int>{1, 4});
  // First compute the genuine report to learn cpi_inf_inf(4).
  const ScalabilityReport genuine = analyze(inputs);
  const double target = genuine.point(4).cpi_inf_inf;
  for (KernelMeasurement& k : inputs.kernels) {
    DerivedMetrics& d = k.spin_kernel.metrics;
    d.cycles = target * d.instructions;
    d.cpi = target;
  }
  const ScalabilityReport degenerate = analyze(inputs);
  const bool noted = std::any_of(
      degenerate.notes.begin(), degenerate.notes.end(),
      [](const std::string& n) {
        return n.find("unidentifiable") != std::string::npos;
      });
  EXPECT_TRUE(noted);
  EXPECT_DOUBLE_EQ(degenerate.point(4).frac_imb, 0.0);
}

TEST(ModelEdge, TsynRequiresStoreToSharedEvents) {
  const ExperimentRunner runner = make_runner();
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  ScalToolInputs inputs =
      runner.collect("t3dheat", s0, std::vector<int>{1, 2});
  inputs.kernels.front().sync_kernel.metrics.store_to_shared = 0.0;
  EXPECT_THROW(analyze(inputs), CheckError);
}

TEST(ModelEdge, ReportNotesPropagateFromModel) {
  // The hydro2d matrix floors tm(n); the note must surface in the report.
  const ExperimentRunner runner = make_runner(6);
  const auto l2 = static_cast<double>(runner.base_config().l2.size_bytes);
  const auto s0 = static_cast<std::size_t>(2.6 * l2) / 1_KiB * 1_KiB;
  const ScalToolInputs inputs =
      runner.collect("hydro2d", s0, default_proc_counts(8));
  const ScalabilityReport report = analyze(inputs);
  const bool floored = std::any_of(
      report.notes.begin(), report.notes.end(), [](const std::string& n) {
        return n.find("monotone floor") != std::string::npos;
      });
  EXPECT_TRUE(floored);
}

}  // namespace
}  // namespace scaltool
