// Unit + property tests: least squares and interpolation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "math/interpolate.hpp"
#include "math/least_squares.hpp"

namespace scaltool {
namespace {

TEST(SolveLinear, TwoByTwo) {
  // 2x + y = 5 ; x − y = 1  →  x = 2, y = 1.
  const auto x = solve_linear({2, 1, 1, -1}, {5, 1}, 2);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear({0, 1, 1, 0}, {3, 4}, 2);
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RejectsSingular) {
  EXPECT_THROW(solve_linear({1, 2, 2, 4}, {1, 2}, 2), CheckError);
}

TEST(LeastSquares, ExactRecoveryNoNoise) {
  // y = 3·a + 7·b.
  std::vector<std::vector<double>> rows{{1, 0}, {0, 1}, {1, 1}, {2, 3}};
  std::vector<double> y{3, 7, 10, 27};
  const LsqFit fit = least_squares(rows, y);
  EXPECT_NEAR(fit.coef[0], 3.0, 1e-10);
  EXPECT_NEAR(fit.coef[1], 7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_LT(fit.max_abs_residual, 1e-9);
}

TEST(LeastSquares, RejectsUnderdetermined) {
  std::vector<std::vector<double>> rows{{1, 2}};
  std::vector<double> y{1};
  EXPECT_THROW(least_squares(rows, y), CheckError);
}

TEST(FitTwoLatencies, RecoversPlantedT2Tm) {
  // Model triplets like Sec. 2.3: cpi − pi0 = h2·t2 + hm·tm.
  const double t2 = 12.0, tm = 130.0;
  std::vector<double> h2{0.02, 0.015, 0.03, 0.01};
  std::vector<double> hm{0.005, 0.009, 0.002, 0.011};
  std::vector<double> y(h2.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = h2[i] * t2 + hm[i] * tm;
  const LsqFit fit = fit_two_latencies(h2, hm, y);
  EXPECT_NEAR(fit.coef[0], t2, 1e-8);
  EXPECT_NEAR(fit.coef[1], tm, 1e-8);
}

// Property sweep: random planted coefficients with small noise are
// recovered within a tolerance scaled to the noise.
class LsqRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(LsqRecoveryTest, RecoversUnderNoise) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const double t2 = 2.0 + rng.next_double() * 30.0;
  const double tm = 50.0 + rng.next_double() * 300.0;
  std::vector<double> h2, hm, y;
  for (int i = 0; i < 8; ++i) {
    const double a = 0.005 + rng.next_double() * 0.03;
    const double b = 0.001 + rng.next_double() * 0.02;
    const double noise = (rng.next_double() - 0.5) * 1e-4;
    h2.push_back(a);
    hm.push_back(b);
    y.push_back(a * t2 + b * tm + noise);
  }
  const LsqFit fit = fit_two_latencies(h2, hm, y);
  EXPECT_NEAR(fit.coef[0], t2, 0.4);
  EXPECT_NEAR(fit.coef[1], tm, 1.5);
  EXPECT_GT(fit.r2, 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsqRecoveryTest,
                         ::testing::Range(1, 21));

TEST(FitLine, InterceptAndSlope) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{5, 7, 9, 11};  // y = 5 + 2x
  const LsqFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.coef[0], 5.0, 1e-10);
  EXPECT_NEAR(fit.coef[1], 2.0, 1e-10);
}

TEST(Interpolator, ExactAtSamplePoints) {
  LinearInterpolator f({{1, 10}, {2, 20}, {4, 40}});
  EXPECT_DOUBLE_EQ(f(1), 10);
  EXPECT_DOUBLE_EQ(f(2), 20);
  EXPECT_DOUBLE_EQ(f(4), 40);
}

TEST(Interpolator, LinearBetweenPoints) {
  LinearInterpolator f({{0, 0}, {10, 100}});
  EXPECT_DOUBLE_EQ(f(2.5), 25.0);
  EXPECT_DOUBLE_EQ(f(7.5), 75.0);
}

TEST(Interpolator, ClampsOutsideRange) {
  LinearInterpolator f({{1, 5}, {3, 9}});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(100.0), 9.0);
}

TEST(Interpolator, SortsUnorderedInput) {
  LinearInterpolator f({{3, 30}, {1, 10}, {2, 20}});
  EXPECT_DOUBLE_EQ(f(1.5), 15.0);
}

TEST(Interpolator, RejectsDuplicateX) {
  EXPECT_THROW(LinearInterpolator({{1, 1}, {1, 2}}), CheckError);
  using Points = std::vector<std::pair<double, double>>;
  EXPECT_THROW(LinearInterpolator(Points{}), CheckError);
  EXPECT_THROW(LinearInterpolator().max_y(), CheckError);  // default = empty
}

TEST(Interpolator, ArgmaxAndMax) {
  LinearInterpolator f({{1, 5}, {2, 9}, {3, 7}});
  EXPECT_DOUBLE_EQ(f.argmax_y(), 2.0);
  EXPECT_DOUBLE_EQ(f.max_y(), 9.0);
  EXPECT_DOUBLE_EQ(f.min_x(), 1.0);
  EXPECT_DOUBLE_EQ(f.max_x(), 3.0);
}

// Property: interpolation of a monotone sample set stays within the sample
// envelope for any query.
class InterpEnvelopeTest : public ::testing::TestWithParam<int> {};

TEST_P(InterpEnvelopeTest, StaysWithinEnvelope) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
  std::vector<std::pair<double, double>> pts;
  double x = 0.0;
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 12; ++i) {
    x += 0.1 + rng.next_double();
    const double y = rng.next_double() * 100.0;
    lo = std::min(lo, y);
    hi = std::max(hi, y);
    pts.emplace_back(x, y);
  }
  LinearInterpolator f(pts);
  for (int q = 0; q < 100; ++q) {
    const double xq = rng.next_double() * (x + 2.0) - 1.0;
    const double yq = f(xq);
    EXPECT_GE(yq, lo - 1e-9);
    EXPECT_LE(yq, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpEnvelopeTest, ::testing::Range(1, 11));

// ---- Degenerate designs are named, not anonymous -------------------------

TEST(LeastSquares, NamesAnAllZeroPredictorColumn) {
  // Column 1 is identically zero — a dead counter group.
  std::vector<std::vector<double>> rows{{1, 0}, {2, 0}, {3, 0}};
  std::vector<double> y{2, 4, 6};
  try {
    least_squares(rows, y);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("column 1"), std::string::npos) << what;
    EXPECT_NE(what.find("identically zero"), std::string::npos) << what;
  }
}

TEST(LeastSquares, NamesACollinearPredictorColumn) {
  // Column 1 = 2 × column 0: XᵀX is singular at the second pivot.
  std::vector<std::vector<double>> rows{{1, 2}, {2, 4}, {3, 6}};
  std::vector<double> y{1, 2, 3};
  try {
    least_squares(rows, y);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("column 1"), std::string::npos) << what;
    EXPECT_NE(what.find("collinear"), std::string::npos) << what;
  }
}

// ---- median ---------------------------------------------------------------

TEST(Median, OddEvenAndSingleton) {
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_THROW(median(std::vector<double>{}), CheckError);
}

// ---- Robust fit -----------------------------------------------------------

TEST(RobustFit, RejectsASingleGrossOutlier) {
  // y = 2·x exactly, except one wrecked observation.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 10; ++i) {
    rows.push_back({static_cast<double>(i)});
    y.push_back(2.0 * i);
  }
  y[4] = 100.0;  // gross outlier at index 4
  const RobustLsqFit robust = robust_least_squares(rows, y);
  EXPECT_NEAR(robust.fit.coef[0], 2.0, 1e-9);
  ASSERT_EQ(robust.rejected.size(), 1u);
  EXPECT_EQ(robust.rejected.front(), 4u);
  EXPECT_GE(robust.rounds, 1);
}

TEST(RobustFit, CleanDataRejectsNothingAndMatchesPlainFit) {
  Rng rng(321);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) {
    const double a = 0.1 + rng.next_double();
    const double b = 0.1 + rng.next_double();
    rows.push_back({a, b});
    // Mild uniform noise, no outliers.
    y.push_back(3.0 * a + 5.0 * b + 0.01 * (rng.next_double() - 0.5));
  }
  const LsqFit plain = least_squares(rows, y);
  const RobustLsqFit robust = robust_least_squares(rows, y);
  EXPECT_TRUE(robust.rejected.empty());
  EXPECT_DOUBLE_EQ(robust.fit.coef[0], plain.coef[0]);
  EXPECT_DOUBLE_EQ(robust.fit.coef[1], plain.coef[1]);
}

TEST(RobustFit, NeverRejectsBelowTheFloor) {
  // Three points, one predictor: floor is k+1 = 2 survivors, so at most
  // one rejection no matter how wild the data.
  std::vector<std::vector<double>> rows{{1.0}, {2.0}, {3.0}};
  std::vector<double> y{2.0, 50.0, 6.0};
  RobustFitOptions options;
  options.outlier_threshold = 0.5;  // aggressive
  const RobustLsqFit robust = robust_least_squares(rows, y, options);
  EXPECT_LE(robust.rejected.size(), 1u);
}

TEST(RobustFit, MinPointsOptionIsHonoured) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 8; ++i) {
    rows.push_back({static_cast<double>(i)});
    y.push_back(2.0 * i);
  }
  y[2] = 40.0;
  y[6] = -30.0;
  RobustFitOptions options;
  options.min_points = 7;  // allows only one rejection
  const RobustLsqFit robust = robust_least_squares(rows, y, options);
  EXPECT_LE(robust.rejected.size(), 1u);
}

}  // namespace
}  // namespace scaltool
