// Unit tests: argument parsing and the scaltool CLI commands.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cli/args.hpp"
#include "cli/cli.hpp"
#include "common/check.hpp"
#include "common/types.hpp"

namespace scaltool {
namespace {

// ---- Args --------------------------------------------------------------

TEST(Args, PositionalsAndOptionsMix) {
  const Args args({"analyze", "swim", "--max-procs=8", "--sharing",
                   "extra"});
  EXPECT_EQ(args.positional(0, ""), "analyze");
  EXPECT_EQ(args.positional(1, ""), "swim");
  EXPECT_EQ(args.positional(2, ""), "extra");
  EXPECT_EQ(args.positional(3, "fallback"), "fallback");
  EXPECT_EQ(args.get_int("max-procs", 32), 8);
  EXPECT_TRUE(args.has("sharing"));
  EXPECT_FALSE(args.has("nope"));
}

TEST(Args, TypedAccessorsValidate) {
  const Args args({"--n=12", "--f=2.5", "--bad=xyz"});
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double("f", 0.0), 2.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_THROW(args.get_int("bad", 0), std::exception);
}

TEST(Args, UnusedTracksUnqueriedOptions) {
  const Args args({"--used=1", "--typo=2"});
  (void)args.get("used", "");
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, RejectsMalformedOptions) {
  EXPECT_THROW(Args({"--"}), CheckError);
  EXPECT_THROW(Args({"--=value"}), CheckError);
}

TEST(ParseSize, AllGrammars) {
  EXPECT_EQ(parse_size("65536", 64_KiB), 65536u);
  EXPECT_EQ(parse_size("64KiB", 64_KiB), 64_KiB);
  EXPECT_EQ(parse_size("64k", 64_KiB), 64_KiB);
  EXPECT_EQ(parse_size("2MiB", 64_KiB), 2_MiB);
  EXPECT_EQ(parse_size("10xL2", 64_KiB), 640_KiB);
  EXPECT_EQ(parse_size("2.5xL2", 64_KiB), 160_KiB);
  EXPECT_THROW(parse_size("10parsecs", 64_KiB), CheckError);
  EXPECT_THROW(parse_size("", 64_KiB), CheckError);
  EXPECT_THROW(parse_size("-5KiB", 64_KiB), CheckError);
}

// ---- CLI commands -------------------------------------------------------

int run_cli(const std::vector<std::string>& args, std::string* out) {
  std::ostringstream os;
  const int rc = cli::run_command(args, os);
  *out = os.str();
  return rc;
}

TEST(Cli, HelpAndUnknownCommand) {
  std::string out;
  EXPECT_EQ(run_cli({"help"}, &out), 0);
  EXPECT_NE(out.find("usage: scaltool"), std::string::npos);
  EXPECT_EQ(run_cli({}, &out), 0);  // no args → help
  EXPECT_EQ(run_cli({"frobnicate"}, &out), 2);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST(Cli, ListShowsBundledApps) {
  std::string out;
  EXPECT_EQ(run_cli({"list"}, &out), 0);
  for (const char* app : {"t3dheat", "hydro2d", "swim", "fft", "lu"})
    EXPECT_NE(out.find(app), std::string::npos) << app;
}

TEST(Cli, RunPrintsAllThreeToolReports) {
  std::string out;
  EXPECT_EQ(run_cli({"run", "swim", "--procs=2", "--size=1xL2",
                     "--iters=2"},
                    &out),
            0);
  EXPECT_NE(out.find("perfex: swim"), std::string::npos);
  EXPECT_NE(out.find("speedshop"), std::string::npos);
  EXPECT_NE(out.find("ssusage"), std::string::npos);
}

TEST(Cli, RunRejectsMissingApp) {
  std::string out;
  EXPECT_EQ(run_cli({"run"}, &out), 1);
  EXPECT_NE(out.find("usage: scaltool run"), std::string::npos);
}

TEST(Cli, CollectThenAnalyzeArchiveRoundTrip) {
  const std::string path = "/tmp/scaltool_cli_test_archive.txt";
  std::string out;
  EXPECT_EQ(run_cli({"collect", "swim", "--out=" + path, "--size=2xL2",
                     "--max-procs=4", "--iters=2"},
                    &out),
            0);
  EXPECT_NE(out.find("collected"), std::string::npos);

  EXPECT_EQ(run_cli({"analyze", path}, &out), 0);
  EXPECT_NE(out.find("Scal-Tool model for swim"), std::string::npos);
  EXPECT_NE(out.find("Bottleneck breakdown"), std::string::npos);
  EXPECT_NE(out.find("Validation"), std::string::npos);

  EXPECT_EQ(run_cli({"whatif", path, "--l2x=2"}, &out), 0);
  EXPECT_NE(out.find("What-if"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, AnalyzeOnTheFlyWithChartAndSharing) {
  std::string out;
  EXPECT_EQ(run_cli({"analyze", "swim", "--size=2xL2", "--max-procs=4",
                     "--iters=2", "--sharing", "--chart"},
                    &out),
            0);
  EXPECT_NE(out.find("Base - L2Lim - MP"), std::string::npos);  // chart
}

TEST(Cli, WhatifWithoutChangesWarns) {
  std::string out;
  EXPECT_EQ(run_cli({"whatif", "swim", "--size=2xL2", "--max-procs=2",
                     "--iters=2"},
                    &out),
            0);
  EXPECT_NE(out.find("no parameter changed"), std::string::npos);
}

TEST(Cli, RegionCommand) {
  std::string out;
  EXPECT_EQ(run_cli({"region", "t3dheat", "spmv", "--size=4xL2",
                     "--max-procs=2", "--iters=2"},
                    &out),
            0);
  EXPECT_NE(out.find("t3dheat:spmv"), std::string::npos);
}

TEST(Cli, MachineOverrides) {
  std::string out;
  EXPECT_EQ(run_cli({"run", "swim", "--procs=2", "--size=1xL2",
                     "--iters=2", "--topology=ring", "--msi", "--tlb=16"},
                    &out),
            0);
  EXPECT_NE(out.find("tlb_misses"), std::string::npos);
  EXPECT_EQ(run_cli({"run", "swim", "--topology=moebius"}, &out), 1);
  EXPECT_NE(out.find("unknown --topology"), std::string::npos);
}

TEST(Cli, RecordThenReplayRoundTrip) {
  const std::string path = "/tmp/scaltool_cli_trace.txt";
  std::string out;
  EXPECT_EQ(run_cli({"record", "swim", "--out=" + path, "--procs=2",
                     "--size=1xL2", "--iters=2"},
                    &out),
            0);
  EXPECT_NE(out.find("recorded"), std::string::npos);
  EXPECT_EQ(run_cli({"replay", path}, &out), 0);
  EXPECT_NE(out.find("perfex: swim:replay"), std::string::npos);
  // Replay on an overridden machine still works (trace-driven what-if).
  EXPECT_EQ(run_cli({"replay", path, "--l2-size=128KiB"}, &out), 0);
  std::remove(path.c_str());
}

TEST(Cli, WarnsOnUnknownOption) {
  std::string out;
  EXPECT_EQ(run_cli({"run", "swim", "--procs=2", "--size=1xL2",
                     "--iters=2", "--spelling-mistake=1"},
                    &out),
            0);
  EXPECT_NE(out.find("unrecognized option --spelling-mistake"),
            std::string::npos);
}

}  // namespace
}  // namespace scaltool
