// Tests: trace record/replay — the trace-driven front end.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>

#include "apps/apps.hpp"
#include "common/check.hpp"
#include "machine/dsm_machine.hpp"
#include "trace/registry.hpp"
#include "trace/trace_io.hpp"

namespace scaltool {
namespace {

MachineConfig machine_cfg(int procs) {
  return MachineConfig::origin2000_scaled(procs);
}

WorkloadParams params_of(std::size_t bytes) {
  WorkloadParams p;
  p.dataset_bytes = bytes;
  p.iterations = 2;
  return p;
}

struct Recorded {
  RunResult original;
  Trace trace;
};

Recorded record(const std::string& app, std::size_t bytes, int procs) {
  register_standard_workloads();
  RecordingWorkload recorder(WorkloadRegistry::instance().create(app));
  DsmMachine machine(machine_cfg(procs));
  Recorded out{machine.run(recorder, params_of(bytes)),
               recorder.take_trace()};
  return out;
}

void expect_same_counters(const RunResult& a, const RunResult& b) {
  for (EventId ev : all_events()) {
    SCOPED_TRACE(event_name(ev));
    EXPECT_DOUBLE_EQ(a.counters.aggregate().get(ev),
                     b.counters.aggregate().get(ev));
  }
  EXPECT_DOUBLE_EQ(a.execution_cycles, b.execution_cycles);
}

TEST(TraceIo, RecordingIsTransparent) {
  // A recorded run must behave exactly like an unrecorded one.
  register_standard_workloads();
  const auto plain_w = WorkloadRegistry::instance().create("swim");
  DsmMachine plain_machine(machine_cfg(4));
  const RunResult plain = plain_machine.run(*plain_w, params_of(128_KiB));

  const Recorded rec = record("swim", 128_KiB, 4);
  expect_same_counters(plain, rec.original);
  EXPECT_GT(rec.trace.total_ops(), 1000u);
  EXPECT_EQ(rec.trace.num_procs, 4);
  EXPECT_EQ(rec.trace.workload, "swim");
}

TEST(TraceIo, ReplayReproducesCountersExactly) {
  Recorded rec = record("swim", 128_KiB, 4);
  TraceWorkload replay(std::move(rec.trace));
  DsmMachine machine(machine_cfg(4));
  const RunResult replayed = machine.run(replay, params_of(128_KiB));
  expect_same_counters(rec.original, replayed);
  // Regions replay too.
  EXPECT_EQ(replayed.regions.size(), rec.original.regions.size());
}

TEST(TraceIo, ReplayOnDifferentMachineShowsArchitecturalDelta) {
  // The point of trace-driven simulation: one capture, many machines.
  Recorded rec = record("t3dheat", 320_KiB, 4);
  MachineConfig big = machine_cfg(4);
  big.l2.size_bytes *= 4;
  TraceWorkload replay(std::move(rec.trace));
  DsmMachine machine(big);
  const RunResult on_big = machine.run(replay, params_of(320_KiB));
  EXPECT_LT(on_big.counters.aggregate().get(EventId::kL2Misses),
            rec.original.counters.aggregate().get(EventId::kL2Misses));
}

TEST(TraceIo, FileRoundTrip) {
  Recorded rec = record("hydro2d", 64_KiB, 2);
  const std::string path = "/tmp/scaltool_trace_test.txt";
  save_trace(rec.trace, path);
  Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.total_ops(), rec.trace.total_ops());
  EXPECT_EQ(loaded.workload, "hydro2d");
  EXPECT_EQ(loaded.model, ParallelismModel::kMP);

  // Replaying the loaded trace matches the original run.
  TraceWorkload replay(std::move(loaded));
  DsmMachine machine(machine_cfg(2));
  const RunResult replayed = machine.run(replay, params_of(64_KiB));
  expect_same_counters(rec.original, replayed);
  std::remove(path.c_str());
}

TEST(TraceIo, ReplayRejectsMismatchedMachineOrSize) {
  Recorded rec = record("swim", 64_KiB, 2);
  {
    TraceWorkload replay(Trace(rec.trace));
    DsmMachine machine(machine_cfg(4));  // wrong processor count
    EXPECT_THROW(machine.run(replay, params_of(64_KiB)), CheckError);
  }
  {
    TraceWorkload replay(Trace(rec.trace));
    DsmMachine machine(machine_cfg(2));
    EXPECT_THROW(machine.run(replay, params_of(128_KiB)), CheckError);
  }
}

TEST(TraceIo, RejectsCorruptStreams) {
  {
    std::stringstream empty;
    EXPECT_THROW(read_trace(empty), CheckError);
  }
  {
    std::stringstream garbage("not-a-trace|1|x|MP|1|1|1\n");
    EXPECT_THROW(read_trace(garbage), CheckError);
  }
  {
    std::stringstream truncated(
        "scaltool-trace|1|x|MP|1024|1|1\nP 0 2\nL 4096\n");
    EXPECT_THROW(read_trace(truncated), CheckError);  // ends mid-chunk
  }
  {
    std::stringstream stray(
        "scaltool-trace|1|x|MP|1024|1|1\nL 4096\n");
    EXPECT_THROW(read_trace(stray), CheckError);  // op before any chunk
  }
}

TEST(TraceIo, ValidateCatchesBadStructure) {
  Trace t;
  t.workload = "x";
  t.num_procs = 2;
  t.num_phases = 1;
  t.ops.resize(1);  // should be 2 chunks
  EXPECT_THROW(t.validate(), CheckError);
  t.ops.resize(2);
  t.ops[0].push_back({TraceOp::Kind::kRegionEnd, 0, 0, 0, {}});
  EXPECT_THROW(t.validate(), CheckError);  // region end without begin
}

}  // namespace
}  // namespace scaltool
