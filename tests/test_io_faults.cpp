// Hostile-storage drills (DESIGN.md §15): the io::Env fault-injection
// seam, the storage exit-code contract, scaltool fsck's detect/repair
// matrix, and the graceful-degradation paths (cache memory-only saves,
// best-effort telemetry exports, fleet storage quarantine).
//
// The headline property these tests pin: with ANY seeded storage-fault
// schedule installed, a collect either finishes with an archive
// byte-identical to the unfaulted run (possibly after --resume) or stops
// with exit code 9 and a journaled checkpoint — never a silently corrupt
// artifact.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "common/check.hpp"
#include "common/exit_codes.hpp"
#include "common/types.hpp"
#include "engine/fault_injector.hpp"
#include "engine/fsck.hpp"
#include "engine/run_cache.hpp"
#include "io/env.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "serve/fleet/supervisor.hpp"

namespace scaltool {
namespace {

std::string tmp_path(const std::string& tag) {
  return "/tmp/scaltool_iofault_" + tag + "_" + std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
}

int run_cli(const std::vector<std::string>& args, std::string* out) {
  std::ostringstream os;
  const int rc = cli::run_command(args, os);
  if (out) *out = os.str();
  return rc;
}

/// The small-but-real campaign the storage drills run (same shape as the
/// crash-recovery suite): a handful of simulator runs, ~a second.
std::vector<std::string> collect_argv(const std::string& out) {
  return {"collect",       "swim", "--out=" + out, "--size=2xL2",
          "--max-procs=4", "--iters=2"};
}

/// A clean reference archive, collected once per fixture call site.
std::string reference_archive(const std::string& tag) {
  const std::string out = tmp_path(tag + "_ref");
  std::remove(out.c_str());
  std::string text;
  EXPECT_EQ(run_cli(collect_argv(out), &text), 0) << text;
  return out;
}

// ---- FaultPlan grammar -------------------------------------------------

TEST(IoFaultPlan, ParsesAllStorageKinds) {
  const FaultPlan plan = FaultPlan::parse(
      "enospc=3,eio=2,short-write=1,torn-rename=4,fsync-drop=5,emfile=6");
  EXPECT_EQ(plan.io.enospc_at, 3u);
  EXPECT_EQ(plan.io.eio_at, 2u);
  EXPECT_EQ(plan.io.short_write_at, 1u);
  EXPECT_EQ(plan.io.torn_rename_at, 4u);
  EXPECT_EQ(plan.io.fsync_drop_at, 5u);
  EXPECT_EQ(plan.io.emfile_at, 6u);
  EXPECT_TRUE(plan.io.enabled());
  EXPECT_TRUE(plan.enabled());
  const std::string desc = plan.describe();
  EXPECT_NE(desc.find("enospc=3"), std::string::npos) << desc;
  EXPECT_NE(desc.find("torn-rename=4"), std::string::npos) << desc;
}

TEST(IoFaultPlan, RejectsMalformedIndices) {
  EXPECT_THROW(FaultPlan::parse("enospc=-1"), CheckError);
  EXPECT_THROW(FaultPlan::parse("eio=three"), CheckError);
  EXPECT_THROW(FaultPlan::parse("short-write="), CheckError);
}

TEST(IoFaultPlan, StorageKindsAloneEngageTheEngine) {
  const FaultPlan plan = FaultPlan::parse("enospc=1");
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.transient_rate, 0.0);
}

// ---- FaultyEnv syscall semantics ----------------------------------------

TEST(FaultyEnv, EnospcIsStickyFromTheNthWrite) {
  const std::string path = tmp_path("sticky");
  io::IoFaultPlan plan;
  plan.enospc_at = 2;
  io::FaultyEnv env(plan);
  const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env.write(fd, "a", 1), 1);
  errno = 0;
  EXPECT_EQ(env.write(fd, "b", 1), -1);
  EXPECT_EQ(errno, ENOSPC);
  errno = 0;
  EXPECT_EQ(env.write(fd, "c", 1), -1);  // sticky: the disk stays full
  EXPECT_EQ(errno, ENOSPC);
  env.close(fd);
  EXPECT_EQ(env.counts().writes, 3u);
  EXPECT_EQ(env.counts().injected, 2u);
  std::remove(path.c_str());
}

TEST(FaultyEnv, ShortWriteLandsHalfOnceThenRecovers) {
  const std::string path = tmp_path("short");
  io::IoFaultPlan plan;
  plan.short_write_at = 1;
  io::FaultyEnv env(plan);
  const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env.write(fd, "abcdef", 6), 3);  // one-shot half write
  EXPECT_EQ(env.write(fd, "def", 3), 3);     // back to normal
  env.close(fd);
  EXPECT_EQ(read_file(path), "abcdef");
  std::remove(path.c_str());
}

TEST(FaultyEnv, WriteAllRidesOutShortWrites) {
  const std::string path = tmp_path("writeall");
  io::IoFaultPlan plan;
  plan.short_write_at = 1;
  io::FaultyEnv env(plan);
  const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const std::string bytes(1000, 'x');
  io::write_all(env, fd, bytes.data(), bytes.size(), path);
  env.close(fd);
  EXPECT_EQ(read_file(path), bytes);  // the loop absorbed the short write
  std::remove(path.c_str());
}

TEST(FaultyEnv, EmfileIsStickyOnOpen) {
  io::IoFaultPlan plan;
  plan.emfile_at = 1;
  io::FaultyEnv env(plan);
  errno = 0;
  EXPECT_LT(env.open(tmp_path("emfile").c_str(),
                     O_WRONLY | O_CREAT | O_TRUNC, 0644),
            0);
  EXPECT_EQ(errno, EMFILE);
  EXPECT_EQ(env.counts().injected, 1u);
}

TEST(FaultyEnv, FsyncDropLiesWithoutFailing) {
  const std::string path = tmp_path("fsyncdrop");
  io::IoFaultPlan plan;
  plan.fsync_drop_at = 1;
  io::FaultyEnv env(plan);
  const int fd = env.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env.fsync(fd), 0);  // "success" that synced nothing
  env.close(fd);
  EXPECT_EQ(env.counts().fsyncs, 1u);
  EXPECT_EQ(env.counts().injected, 1u);
  std::remove(path.c_str());
}

TEST(FaultyEnv, TornRenamePublishesAPrefixAndEatsTheSource) {
  const std::string src = tmp_path("torn_src");
  const std::string dst = tmp_path("torn_dst");
  write_file(src, std::string(300, 'z'));
  io::IoFaultPlan plan;
  plan.torn_rename_at = 1;
  io::FaultyEnv env(plan);
  EXPECT_EQ(env.rename(src.c_str(), dst.c_str()), 0);  // claims success
  EXPECT_FALSE(std::filesystem::exists(src));
  const std::string published = read_file(dst);
  EXPECT_GT(published.size(), 0u);
  EXPECT_LT(published.size(), 300u);  // the tail is gone
  std::remove(dst.c_str());
}

TEST(IoEnv, StorageErrnoClassification) {
  EXPECT_TRUE(io::is_storage_errno(ENOSPC));
  EXPECT_TRUE(io::is_storage_errno(EIO));
  EXPECT_TRUE(io::is_storage_errno(EMFILE));
  EXPECT_FALSE(io::is_storage_errno(ENOENT));  // operator mistake
  EXPECT_FALSE(io::is_storage_errno(EACCES));  // permissions, not a disk
}

// ---- The hard guarantee: faulted collects are never silently corrupt ----

TEST(StorageDrill, EnospcMidCollectCheckpointsThenResumesByteIdentical) {
  const std::string ref = reference_archive("enospc");
  const std::string out = tmp_path("enospc_out");
  std::remove(out.c_str());
  std::remove((out + ".journal").c_str());

  std::vector<std::string> argv = collect_argv(out);
  argv.push_back("--faults=enospc=4");
  std::string text;
  EXPECT_EQ(run_cli(argv, &text), kExitStorageFault) << text;
  EXPECT_NE(text.find("storage fault"), std::string::npos) << text;
  EXPECT_NE(text.find("--resume"), std::string::npos) << text;
  EXPECT_FALSE(std::filesystem::exists(out));  // nothing half-published
  EXPECT_TRUE(std::filesystem::exists(out + ".journal"));

  std::vector<std::string> resume = collect_argv(out);
  resume.push_back("--resume");
  EXPECT_EQ(run_cli(resume, &text), 0) << text;
  EXPECT_EQ(read_file(out), read_file(ref));

  std::remove(out.c_str());
  std::remove(ref.c_str());
}

TEST(StorageDrill, TornRenameIsCaughtAtPublishNeverSilent) {
  const std::string ref = reference_archive("torn");
  const std::string out = tmp_path("torn_out");
  std::remove(out.c_str());
  std::remove((out + ".journal").c_str());
  std::remove((out + ".corrupt").c_str());

  std::vector<std::string> argv = collect_argv(out);
  argv.push_back("--faults=torn-rename=1");
  std::string text;
  // The read-back after rename sees the torn publish: exit 9, journal kept.
  EXPECT_EQ(run_cli(argv, &text), kExitStorageFault) << text;
  EXPECT_NE(text.find("does not match the staged bytes"), std::string::npos)
      << text;
  EXPECT_TRUE(std::filesystem::exists(out + ".journal"));

  // fsck sees the damage and (with --repair) quarantines it out of the
  // recovery path's way.
  const FsckReport before = fsck_file(out, /*repair=*/false);
  EXPECT_FALSE(before.clean());
  const FsckReport repaired = fsck_file(out, /*repair=*/true);
  EXPECT_TRUE(repaired.fully_repaired()) << repaired.to_json();
  EXPECT_TRUE(std::filesystem::exists(out + ".corrupt"));
  EXPECT_FALSE(std::filesystem::exists(out));

  std::vector<std::string> resume = collect_argv(out);
  resume.push_back("--resume");
  EXPECT_EQ(run_cli(resume, &text), 0) << text;
  EXPECT_EQ(read_file(out), read_file(ref));

  std::remove(out.c_str());
  std::remove((out + ".corrupt").c_str());
  std::remove(ref.c_str());
}

TEST(StorageDrill, FdExhaustionMapsToTheStorageExitCode) {
  const std::string out = tmp_path("emfile_out");
  std::remove(out.c_str());
  std::vector<std::string> argv = collect_argv(out);
  argv.push_back("--faults=emfile=1");
  std::string text;
  EXPECT_EQ(run_cli(argv, &text), kExitStorageFault) << text;
  EXPECT_NE(text.find("storage fault"), std::string::npos) << text;
  std::remove((out + ".journal").c_str());
}

TEST(StorageDrill, NonStorageErrnoStaysAnOrdinaryHardFailure) {
  std::string text;
  // ENOENT on the journal path is a typo'd path, not a dying disk: the
  // degradation machinery must not claim it.
  const int rc = run_cli({"collect", "swim",
                          "--out=/nonexistent_dir_scaltool/x.st",
                          "--size=2xL2", "--max-procs=4", "--iters=2"},
                         &text);
  EXPECT_EQ(rc, kExitHardFailure) << text;
}

// ---- Telemetry degradation ----------------------------------------------

TEST(TelemetryDegrade, TryWriteCountsDropsInsteadOfThrowing) {
  EXPECT_FALSE(
      obs::try_write_text_file("/nonexistent_dir_scaltool/t.json", "x"));
  const std::string good = tmp_path("obs_ok");
  EXPECT_TRUE(obs::try_write_text_file(good, "x"));
  EXPECT_EQ(read_file(good), "x");
  std::remove(good.c_str());
}

TEST(TelemetryDegrade, AnalyzeSurvivesAFailedMetricsExport) {
  const std::string ref = reference_archive("obs");
  std::string text;
  const int rc = run_cli({"analyze", ref,
                          "--metrics-out=/nonexistent_dir_scaltool/m.json"},
                         &text);
  EXPECT_EQ(rc, 0) << text;  // the analysis is intact
  EXPECT_NE(text.find("warning: metrics export"), std::string::npos) << text;
  EXPECT_NE(text.find("results unaffected"), std::string::npos) << text;
  std::remove(ref.c_str());
}

// ---- Run-cache degradation ----------------------------------------------

/// Env whose flock always refuses: what a cache shared with a wedged
/// holder looks like.
class FlockRefusingEnv : public io::Env {
 public:
  int flock(int fd, int operation) override {
    (void)fd;
    (void)operation;
    errno = EWOULDBLOCK;
    return -1;
  }
};

TEST(CacheDegrade, FailedFlockDegradesToMemoryOnlyWithoutLeakingFds) {
  const std::string path = tmp_path("cache_lock");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  FlockRefusingEnv env;
  io::ScopedEnv guard(&env);

  RunCache cache(path);
  cache.insert(1, {"swim", 1_MiB, 4, false}, JobOutcome{});
  const long fds_before = std::distance(
      std::filesystem::directory_iterator("/proc/self/fd"),
      std::filesystem::directory_iterator{});
  for (int i = 0; i < 64; ++i) cache.save();
  const long fds_after = std::distance(
      std::filesystem::directory_iterator("/proc/self/fd"),
      std::filesystem::directory_iterator{});
  EXPECT_EQ(fds_before, fds_after);  // the .lock fd is closed on failure
  EXPECT_FALSE(std::filesystem::exists(path));  // nothing half-saved
  EXPECT_NE(cache.save_note().find("memory-only"), std::string::npos)
      << cache.save_note();
  EXPECT_EQ(cache.unsaved(), 1u);  // the entry still wants a disk
  std::remove((path + ".lock").c_str());
}

TEST(CacheDegrade, StorageFaultDuringSaveKeepsEntriesInMemory) {
  const std::string path = tmp_path("cache_enospc");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  io::IoFaultPlan plan;
  plan.enospc_at = 1;
  io::FaultyEnv env(plan);
  io::ScopedEnv guard(&env);

  RunCache cache(path);
  cache.insert(1, {"swim", 1_MiB, 4, false}, JobOutcome{});
  cache.save();  // must not throw: the cache is an optimization
  EXPECT_NE(cache.save_note().find("save failed"), std::string::npos)
      << cache.save_note();
  EXPECT_EQ(cache.unsaved(), 1u);
  EXPECT_FALSE(std::filesystem::exists(path));
  std::remove((path + ".lock").c_str());
}

// ---- fsck: detect and repair over hostile files -------------------------

TEST(Fsck, CleanArtifactsVerifyCleanEndToEnd) {
  const std::string ref = reference_archive("fsck_clean");
  const FsckReport report = fsck_file(ref, /*repair=*/false);
  EXPECT_TRUE(report.clean()) << report.to_json();
  EXPECT_EQ(report.kind, "archive");
  std::remove(ref.c_str());
}

TEST(Fsck, ArchiveBitFlipIsDetectedAndQuarantined) {
  const std::string ref = reference_archive("fsck_flip");
  std::string bytes = read_file(ref);
  bytes[bytes.size() / 2] ^= 0x20;  // one flipped bit region mid-body
  write_file(ref, bytes);

  const FsckReport found = fsck_file(ref, /*repair=*/false);
  EXPECT_FALSE(found.clean()) << found.to_json();

  const FsckReport repaired = fsck_file(ref, /*repair=*/true);
  EXPECT_TRUE(repaired.fully_repaired()) << repaired.to_json();
  EXPECT_FALSE(std::filesystem::exists(ref));  // moved out of the way
  EXPECT_TRUE(std::filesystem::exists(ref + ".corrupt"));
  std::remove((ref + ".corrupt").c_str());
}

TEST(Fsck, ArchiveTrailingGarbageIsTruncatedBackToTheFooter) {
  const std::string ref = reference_archive("fsck_tail");
  const std::string original = read_file(ref);
  write_file(ref, original + "JUNK|appended after publication\n");

  const FsckReport found = fsck_file(ref, /*repair=*/false);
  EXPECT_FALSE(found.clean());
  const FsckReport repaired = fsck_file(ref, /*repair=*/true);
  EXPECT_TRUE(repaired.fully_repaired()) << repaired.to_json();
  EXPECT_EQ(read_file(ref), original);
  EXPECT_TRUE(fsck_file(ref, false).clean());
  std::remove(ref.c_str());
}

TEST(Fsck, JournalTornTailIsTruncatedToTheValidPrefix) {
  const std::string out = tmp_path("fsck_journal");
  const std::string journal = out + ".journal";
  std::remove(out.c_str());
  std::remove(journal.c_str());
  std::vector<std::string> argv = collect_argv(out);
  argv.push_back("--faults=eio=6");
  std::string text;
  ASSERT_EQ(run_cli(argv, &text), kExitStorageFault) << text;
  ASSERT_TRUE(std::filesystem::exists(journal));

  // Tear the tail the way a crash mid-append does: a half record.
  const std::string valid = read_file(journal);
  write_file(journal, valid + "RUN|swim|2097152|4|1.5|0.7");

  const FsckReport found = fsck_file(journal, /*repair=*/false);
  EXPECT_FALSE(found.clean());
  bool torn = false;
  for (const FsckFinding& f : found.findings)
    torn |= f.code == "journal.torn-tail";
  EXPECT_TRUE(torn) << found.to_json();

  const FsckReport repaired = fsck_file(journal, /*repair=*/true);
  EXPECT_TRUE(repaired.fully_repaired()) << repaired.to_json();
  EXPECT_EQ(read_file(journal), valid);  // exactly the longest valid prefix
  EXPECT_TRUE(fsck_file(journal, false).clean());

  // The truncated journal still resumes into the full archive.
  const std::string ref = reference_archive("fsck_journal2");
  std::vector<std::string> resume = collect_argv(out);
  resume.push_back("--resume");
  EXPECT_EQ(run_cli(resume, &text), 0) << text;
  EXPECT_EQ(read_file(out), read_file(ref));
  std::remove(out.c_str());
  std::remove(ref.c_str());
}

TEST(Fsck, CacheCorruptEntriesAreDroppedKeepingTheValid) {
  const std::string path = tmp_path("fsck_cache");
  std::remove(path.c_str());
  {
    RunCache cache(path);
    RunSpec a{"swim", 1_MiB, 4, false};
    RunSpec b{"fft", 2_MiB, 8, false};
    cache.insert(1, a, JobOutcome{});
    cache.insert(2, b, JobOutcome{});
    cache.save();
  }
  // Garble one ENTRY payload; the other must survive the repair.
  std::string bytes = read_file(path);
  const std::size_t entry = bytes.find("ENTRY|");
  ASSERT_NE(entry, std::string::npos);
  bytes[entry + 8] = '#';
  write_file(path, bytes);

  const FsckReport found = fsck_file(path, /*repair=*/false);
  EXPECT_FALSE(found.clean()) << found.to_json();

  const FsckReport repaired = fsck_file(path, /*repair=*/true);
  EXPECT_TRUE(repaired.fully_repaired()) << repaired.to_json();
  EXPECT_TRUE(fsck_file(path, false).clean());
  RunCache reloaded(path);
  EXPECT_EQ(reloaded.loaded_entries(), 1u);
  EXPECT_EQ(reloaded.corrupt_entries(), 0u);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(Fsck, UnknownFormatAndMissingFilesAreFatalNotCrashes) {
  const std::string junk = tmp_path("fsck_junk");
  write_file(junk, "not a scaltool artifact\n");
  EXPECT_TRUE(fsck_file(junk, true).fatal);
  EXPECT_TRUE(fsck_file(tmp_path("fsck_nosuch"), true).fatal);
  std::remove(junk.c_str());
}

// The acceptance sweep: every injected corruption across the whole byte
// range of an archive must be detected — zero misses. Flips cover the
// header, every record kind, the CRC fields themselves and the SUM
// footer; truncations cover torn tails at every granularity.
TEST(Fsck, DetectsEveryInjectedArchiveCorruption) {
  const std::string ref = reference_archive("fsck_sweep");
  const std::string victim = tmp_path("fsck_victim");
  const std::string original = read_file(ref);
  ASSERT_GT(original.size(), 64u);

  std::size_t injected = 0, detected = 0;
  // Byte flips at a prime stride so every region gets hit.
  for (std::size_t pos = 0; pos < original.size(); pos += 97) {
    std::string bytes = original;
    bytes[pos] = bytes[pos] == '#' ? '@' : '#';
    if (bytes == original) continue;
    write_file(victim, bytes);
    ++injected;
    if (!fsck_file(victim, false).clean()) ++detected;
  }
  // Torn tails: drop the last K bytes.
  for (std::size_t cut : {std::size_t{1}, std::size_t{7}, std::size_t{40},
                          original.size() / 3, original.size() / 2}) {
    write_file(victim, original.substr(0, original.size() - cut));
    ++injected;
    if (!fsck_file(victim, false).clean()) ++detected;
  }
  EXPECT_GT(injected, 10u);
  EXPECT_EQ(detected, injected);  // 100% of the corruptions, no misses
  std::remove(victim.c_str());
  std::remove(ref.c_str());
}

// ---- Exit-code table: one source of truth -------------------------------

TEST(ExitCodes, TableCoversZeroThroughNineUniquely) {
  std::set<int> codes;
  for (std::size_t i = 0; i < exit_code_count(); ++i)
    codes.insert(exit_code_table()[i].code);
  EXPECT_EQ(codes.size(), 10u);
  EXPECT_EQ(*codes.begin(), 0);
  EXPECT_EQ(*codes.rbegin(), 9);
  EXPECT_STREQ(exit_code_name(kExitStorageFault), "storage fault");
  EXPECT_STREQ(exit_code_name(kExitFleetDegraded), "fleet degraded");
  EXPECT_STREQ(exit_code_name(12345), "unknown");
}

TEST(ExitCodes, HelpRendersEveryCodeFromTheTable) {
  std::ostringstream os;
  print_exit_code_help(os);
  const std::string help = os.str();
  for (std::size_t i = 0; i < exit_code_count(); ++i) {
    const ExitCodeInfo& info = exit_code_table()[i];
    EXPECT_NE(help.find("  " + std::to_string(info.code) + "  " + info.name),
              std::string::npos)
        << info.code;
  }
  // And the CLI --help prints exactly this section.
  std::string text;
  EXPECT_EQ(run_cli({"help"}, &text), 0);
  EXPECT_NE(text.find(help), std::string::npos);
  EXPECT_NE(text.find("9  storage fault"), std::string::npos);
}

// ---- Fleet: disk-full shards are quarantined, not crash-looped ----------

TEST(FleetStorage, StorageFaultingShardIsBenchedWithNamedCause) {
  const std::string dir = tmp_path("fleet_storage");
  std::filesystem::create_directories(dir);
  serve::SupervisorOptions options;
  options.shards = 1;
  options.socket_dir = dir;
  options.restart.backoff_ms = 1;
  options.restart.max_deaths = 100;  // the ladder would allow retries...
  options.tick_ms = 5;
  options.worker_entry = [](const serve::WorkerSpec&, int) {
    return kExitStorageFault;  // "my disk is full", immediately
  };
  serve::Supervisor supervisor(options);

  const MonoClock::TimePoint t0 = MonoClock::now();
  while (supervisor.benched_count() < 1 &&
         MonoClock::seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(supervisor.benched_count(), 1);

  const std::vector<serve::WorkerStatus> status = supervisor.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].state, serve::WorkerState::kBenched);
  EXPECT_EQ(status[0].bench_cause, "storage-exhausted");
  // ...but the storage cause skipped the ladder: one death, no respawns
  // against the same full disk.
  EXPECT_EQ(status[0].restarts, 0);
  EXPECT_EQ(supervisor.deaths_total(), 1u);
  supervisor.stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace scaltool
