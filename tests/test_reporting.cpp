// Unit tests: ASCII charts, counter scheduling, and per-region reports.
#include <gtest/gtest.h>

#include <string>

#include "apps/apps.hpp"
#include "common/ascii_chart.hpp"
#include "common/check.hpp"
#include "machine/dsm_machine.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"
#include "tools/counter_schedule.hpp"
#include "tools/region_report.hpp"
#include "trace/registry.hpp"

namespace scaltool {
namespace {

// ---- AsciiChart -------------------------------------------------------------

TEST(AsciiChart, RendersSymbolsAndLegend) {
  AsciiChart chart(20, 6);
  chart.add_series('B', "Base", {{1, 10}, {2, 20}, {4, 40}});
  chart.add_series('m', "Minus", {{1, 5}, {2, 10}, {4, 20}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('B'), std::string::npos);
  EXPECT_NE(out.find('m'), std::string::npos);
  EXPECT_NE(out.find("B = Base"), std::string::npos);
  EXPECT_NE(out.find("m = Minus"), std::string::npos);
}

TEST(AsciiChart, HigherValuesPlotHigher) {
  AsciiChart chart(20, 10);
  chart.add_series('L', "low", {{1, 1}, {10, 1}});
  chart.add_series('H', "high", {{1, 9}, {10, 9}});
  const std::string out = chart.render();
  EXPECT_LT(out.find('H'), out.find('L'));  // high row rendered first
}

TEST(AsciiChart, FixedRangeClampsPoints) {
  AsciiChart chart(20, 5);
  chart.y_range(0, 10);
  chart.add_series('x', "spiky", {{0, -100}, {1, 100}});
  EXPECT_NO_THROW(chart.render());
}

TEST(AsciiChart, RejectsDegenerateInput) {
  EXPECT_THROW(AsciiChart(2, 2), CheckError);
  AsciiChart chart(20, 5);
  EXPECT_THROW(chart.render(), CheckError);  // no series
  EXPECT_THROW(chart.add_series('a', "empty", {}), CheckError);
  EXPECT_THROW(chart.y_range(5, 5), CheckError);
}

// ---- Counter scheduling ------------------------------------------------------

TEST(CounterSchedule, PacksTwoPerPass) {
  const auto events = scal_tool_event_set();
  const CounterSchedule schedule = schedule_events(events, 2);
  EXPECT_EQ(schedule.num_passes(), 4);  // ceil(7/2)
  std::size_t total = 0;
  for (const auto& pass : schedule.passes) {
    EXPECT_LE(pass.size(), 2u);
    total += pass.size();
  }
  EXPECT_EQ(total, events.size());
}

TEST(CounterSchedule, SinglePassWithEnoughCounters) {
  const auto events = scal_tool_event_set();
  EXPECT_EQ(schedule_events(events, 32).num_passes(), 1);
  EXPECT_EQ(schedule_events(events, 1).num_passes(),
            static_cast<int>(events.size()));
}

TEST(CounterSchedule, HardwarePassMultiplier) {
  EXPECT_EQ(hardware_pass_multiplier(2), 4);   // the R10000 case
  EXPECT_EQ(hardware_pass_multiplier(7), 1);
}

TEST(CounterSchedule, RejectsDuplicatesAndEmpty) {
  std::vector<EventId> dup{EventId::kCycles, EventId::kCycles};
  EXPECT_THROW(schedule_events(dup, 2), CheckError);
  EXPECT_THROW(schedule_events({}, 2), CheckError);
  std::vector<EventId> one{EventId::kCycles};
  EXPECT_THROW(schedule_events(one, 0), CheckError);
}

TEST(CounterSchedule, TableListsEveryEvent) {
  const auto events = scal_tool_event_set();
  const Table t = schedule_table(schedule_events(events, 2));
  const std::string text = t.to_text();
  for (EventId ev : events)
    EXPECT_NE(text.find(std::string(event_name(ev))), std::string::npos);
}

// ---- Region reports ----------------------------------------------------------

RunResult hydro_run() {
  register_standard_workloads();
  const auto w = WorkloadRegistry::instance().create("hydro2d");
  DsmMachine machine(MachineConfig::origin2000_scaled(4));
  WorkloadParams params;
  params.dataset_bytes = 166_KiB;
  params.iterations = 2;
  return machine.run(*w, params);
}

TEST(RegionReport, SerialSectionIsProfiled) {
  const RunResult run = hydro_run();
  ASSERT_TRUE(run.regions.contains("serial_section"));
  const DerivedMetrics d = region_metrics(run, "serial_section");
  EXPECT_GT(d.instructions, 0.0);
  EXPECT_GT(d.cpi, 0.0);
  const double frac = region_cycle_fraction(run, "serial_section");
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.8);
}

TEST(RegionReport, TableContainsRegions) {
  const RunResult run = hydro_run();
  const std::string text = region_table(run).to_text();
  EXPECT_NE(text.find("serial_section"), std::string::npos);
}

TEST(RegionReport, SegmentLevelScalToolAnalysis) {
  // Sec. 2.1 end to end: analyze only t3dheat's SpMV segment. The segment
  // carries no barriers, so its breakdown is pure caching behaviour: a big
  // L2Lim share at 1 processor that vanishes at 8.
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 4;
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  const ScalToolInputs inputs =
      runner.collect_region("t3dheat", "spmv", s0, default_proc_counts(8));
  EXPECT_EQ(inputs.app, "t3dheat:spmv");
  const ScalabilityReport report = analyze(inputs);
  EXPECT_NEAR(report.model.pi0, 1.0, 0.1);  // machine parameters still fit
  const BottleneckPoint& p1 = report.point(1);
  EXPECT_GT(p1.l2lim_cost() / p1.base_cycles, 0.25);
  const BottleneckPoint& p8 = report.point(8);
  EXPECT_LT(p8.l2lim_cost() / p8.base_cycles, 0.15);
  // No stores-to-shared inside the segment → no synchronization cost.
  EXPECT_LT(p8.frac_syn, 0.01);
}

TEST(RegionReport, CollectRegionRejectsUnknownRegion) {
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  const std::size_t s0 = 4 * runner.base_config().l2.size_bytes;
  EXPECT_THROW(
      runner.collect_region("t3dheat", "no_such_region", s0,
                            default_proc_counts(2)),
      CheckError);
}

TEST(CounterSchedule, PassesMergeBackToFullSnapshot) {
  // Emulate a two-counter campaign: split a real run's counters into
  // passes, then merge — the merged snapshot must reproduce the original
  // derived metrics exactly.
  register_standard_workloads();
  DsmMachine machine(MachineConfig::origin2000_scaled(4));
  const auto w = WorkloadRegistry::instance().create("swim");
  WorkloadParams params;
  params.dataset_bytes = 128_KiB;
  params.iterations = 2;
  const RunResult run = machine.run(*w, params);

  const auto events = scal_tool_event_set();
  const CounterSchedule schedule = schedule_events(events, 2);
  std::vector<CounterSnapshot> passes;
  for (const auto& pass_events : schedule.passes)
    passes.push_back(run_pass(run.counters, pass_events));
  const CounterSnapshot merged = merge_passes(passes, schedule);

  const DerivedMetrics a = run.counters.derived();
  const DerivedMetrics b = merged.derived();
  EXPECT_DOUBLE_EQ(a.cpi, b.cpi);
  EXPECT_DOUBLE_EQ(a.h2, b.h2);
  EXPECT_DOUBLE_EQ(a.hm, b.hm);
  EXPECT_DOUBLE_EQ(a.store_to_shared, b.store_to_shared);
}

TEST(CounterSchedule, MergeRejectsMismatchedPasses) {
  const auto events = scal_tool_event_set();
  const CounterSchedule schedule = schedule_events(events, 2);
  std::vector<CounterSnapshot> passes(schedule.passes.size() - 1,
                                      CounterSnapshot(2));
  EXPECT_THROW(merge_passes(passes, schedule), CheckError);
}

TEST(RegionReport, UnknownRegionThrows) {
  const RunResult run = hydro_run();
  EXPECT_THROW(region_metrics(run, "nope"), CheckError);
  EXPECT_THROW(region_cycle_fraction(run, "nope"), CheckError);
}

}  // namespace
}  // namespace scaltool
