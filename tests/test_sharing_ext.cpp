// Tests: the sharing extension (the paper's announced future work) —
// coherence-transaction pricing and nt_syn de-pollution.
#include <gtest/gtest.h>

#include <memory>

#include "apps/swim.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

ScalToolInputs swim_inputs(std::size_t halo) {
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 4;
  const std::size_t s0 = 4 * runner.base_config().l2.size_bytes;
  return runner.collect(
      [halo] {
        return std::unique_ptr<Workload>(new Swim(0.075, halo));
      },
      "swim", s0, default_proc_counts(16));
}

TEST(SharingExtension, OffByDefault) {
  const ScalToolInputs inputs = swim_inputs(64);
  const ScalabilityReport report = analyze(inputs);
  for (const BottleneckPoint& p : report.points)
    EXPECT_DOUBLE_EQ(p.sharing_cost, 0.0) << "n=" << p.n;
}

TEST(SharingExtension, PricesCoherenceTransactions) {
  const ScalToolInputs light = swim_inputs(0);
  const ScalToolInputs heavy = swim_inputs(128);
  AnalyzeOptions opt;
  opt.model_sharing = true;
  const ScalabilityReport light_r = analyze(light, opt);
  const ScalabilityReport heavy_r = analyze(heavy, opt);

  // Sharing cost is non-negative and grows with the halo width.
  for (const BottleneckPoint& p : heavy_r.points) {
    EXPECT_GE(p.sharing_cost, 0.0);
    if (p.n >= 8) {
      EXPECT_GT(p.sharing_cost, light_r.point(p.n).sharing_cost)
          << "n=" << p.n;
    }
  }
}

TEST(SharingExtension, DepollutesNtSyn) {
  // With heavy sharing, the extension's synchronization estimate must be
  // below the published model's (which reads the upgrade-polluted nt_syn
  // as synchronization).
  const ScalToolInputs inputs = swim_inputs(128);
  const ScalabilityReport published = analyze(inputs);
  AnalyzeOptions opt;
  opt.model_sharing = true;
  const ScalabilityReport extended = analyze(inputs, opt);
  const BottleneckPoint& pub = published.point(16);
  const BottleneckPoint& ext = extended.point(16);
  EXPECT_LT(ext.sync_cost, pub.sync_cost);
  EXPECT_GT(ext.sharing_cost, 0.0);
}

TEST(SharingExtension, MpCostIncludesSharing) {
  const ScalToolInputs inputs = swim_inputs(64);
  AnalyzeOptions opt;
  opt.model_sharing = true;
  const ScalabilityReport report = analyze(inputs, opt);
  const BottleneckPoint& p = report.point(16);
  EXPECT_NEAR(p.mp_cost(), p.sync_cost + p.imb_cost + p.sharing_cost,
              1e-9);
}

TEST(SharingExtension, ExtendedEq9IdentityHolds) {
  // When frac_imb is not clamped: b = c + sync + imb + sharing.
  const ScalToolInputs inputs = swim_inputs(64);
  AnalyzeOptions opt;
  opt.model_sharing = true;
  const ScalabilityReport report = analyze(inputs, opt);
  for (const BottleneckPoint& p : report.points) {
    if (p.n == 1 || p.frac_imb == 0.0) continue;  // clamped cases excluded
    const double rhs = p.cycles_no_l2lim_no_mp + p.sync_cost + p.imb_cost +
                       p.sharing_cost;
    EXPECT_NEAR(p.cycles_no_l2lim, rhs, 0.02 * p.cycles_no_l2lim)
        << "n=" << p.n;
  }
}

TEST(SharingExtension, NoSharingMeansNoChange) {
  // On a sharing-free application (t3dheat has almost none) the extension
  // must not move the headline results.
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 4;
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  const ScalToolInputs inputs =
      runner.collect("t3dheat", s0, default_proc_counts(8));
  const ScalabilityReport published = analyze(inputs);
  AnalyzeOptions opt;
  opt.model_sharing = true;
  const ScalabilityReport extended = analyze(inputs, opt);
  const BottleneckPoint& pub = published.point(8);
  const BottleneckPoint& ext = extended.point(8);
  EXPECT_LT(ext.sharing_cost, 0.10 * pub.base_cycles);
  EXPECT_NEAR(ext.sync_cost, pub.sync_cost, 0.25 * pub.sync_cost);
}

}  // namespace
}  // namespace scaltool
