// Unit + property tests: the alternative interconnect topologies.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "network/hypercube.hpp"

namespace scaltool {
namespace {

NetworkConfig with(TopologyKind kind) {
  NetworkConfig cfg;
  cfg.topology = kind;
  return cfg;
}

constexpr TopologyKind kAll[] = {
    TopologyKind::kBristledHypercube, TopologyKind::kCrossbar,
    TopologyKind::kRing, TopologyKind::kMesh2D};

TEST(Topology, NamesAreDistinct) {
  std::set<std::string> names;
  for (TopologyKind k : kAll) names.insert(topology_name(k));
  EXPECT_EQ(names.size(), 4u);
}

TEST(Topology, CrossbarIsOneHopEverywhere) {
  HypercubeNetwork net(32, with(TopologyKind::kCrossbar));
  // Same router (nodes 0,1) → 0 hops; any other pair → exactly 1.
  EXPECT_EQ(net.hops(0, 1), 0);
  for (NodeId b = 2; b < net.num_nodes(); ++b)
    EXPECT_EQ(net.hops(0, b), 1) << b;
}

TEST(Topology, RingDistanceWrapsAround) {
  HypercubeNetwork net(32, with(TopologyKind::kRing));  // 8 routers
  ASSERT_EQ(net.num_routers(), 8);
  // Nodes 0 and 14 are routers 0 and 7: one hop the short way round.
  EXPECT_EQ(net.hops(0, 14), 1);
  // Routers 0 and 4 are diametrically opposite: 4 hops.
  EXPECT_EQ(net.hops(0, 8), 4);
}

TEST(Topology, MeshUsesManhattanDistance) {
  HypercubeNetwork net(32, with(TopologyKind::kMesh2D));  // 8 routers, 3 cols
  // Router grid: 3 columns → router 0 at (0,0), router 7 at (1,2).
  EXPECT_EQ(net.hops(0, 14), 1 + 2);  // node14 → router7
  EXPECT_EQ(net.hops(0, 2), 1);       // node2 → router1 at (1,0)
}

class TopologyPropertyTest
    : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(TopologyPropertyTest, MetricAxioms) {
  for (int procs : {1, 2, 8, 17, 32, 64}) {
    HypercubeNetwork net(procs, with(GetParam()));
    const int nodes = net.num_nodes();
    for (NodeId a = 0; a < nodes; ++a) {
      EXPECT_EQ(net.hops(a, a), 0);
      for (NodeId b = 0; b < nodes; ++b) {
        EXPECT_EQ(net.hops(a, b), net.hops(b, a));  // symmetry
        EXPECT_GE(net.hops(a, b), 0);
        if (net.router_of_node(a) != net.router_of_node(b)) {
          EXPECT_GE(net.hops(a, b), 1);
        }
      }
    }
  }
}

TEST_P(TopologyPropertyTest, AverageHopsMonotoneInMachineSize) {
  double prev = -1.0;
  for (int procs : {2, 4, 8, 16, 32, 64}) {
    HypercubeNetwork net(procs, with(GetParam()));
    const double avg = net.average_hops();
    EXPECT_GE(avg + 1e-12, prev) << "procs=" << procs;
    prev = avg;
  }
}

TEST_P(TopologyPropertyTest, LatencyZeroOnlyLocally) {
  HypercubeNetwork net(16, with(GetParam()));
  for (NodeId a = 0; a < net.num_nodes(); ++a)
    for (NodeId b = 0; b < net.num_nodes(); ++b) {
      if (a == b)
        EXPECT_EQ(net.latency_cycles(a, b), 0.0);
      else
        EXPECT_GT(net.latency_cycles(a, b), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyPropertyTest,
                         ::testing::ValuesIn(kAll),
                         [](const auto& info) {
                           std::string name = topology_name(info.param);
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

TEST(Topology, DiameterOrdering) {
  // For the same machine size, ring diameter ≥ mesh ≥ hypercube ≥ crossbar.
  const int procs = 64;
  const double ring =
      HypercubeNetwork(procs, with(TopologyKind::kRing)).average_hops();
  const double mesh =
      HypercubeNetwork(procs, with(TopologyKind::kMesh2D)).average_hops();
  const double cube = HypercubeNetwork(
                          procs, with(TopologyKind::kBristledHypercube))
                          .average_hops();
  const double xbar =
      HypercubeNetwork(procs, with(TopologyKind::kCrossbar)).average_hops();
  EXPECT_GE(ring, mesh);
  EXPECT_GE(mesh, cube);
  EXPECT_GE(cube, xbar);
}

TEST(Topology, MachineTmReflectsTopology) {
  MachineConfig ring_cfg = MachineConfig::origin2000_scaled(32);
  ring_cfg.network.topology = TopologyKind::kRing;
  MachineConfig xbar_cfg = MachineConfig::origin2000_scaled(32);
  xbar_cfg.network.topology = TopologyKind::kCrossbar;
  EXPECT_GT(ring_cfg.tm_ground_truth(), xbar_cfg.tm_ground_truth());
}

}  // namespace
}  // namespace scaltool
