// Integration tests: the full Section 4 pipeline on all three
// applications — speedup shapes, bottleneck attribution, and validation
// against the speedshop ground truth. These are the repository's
// reproduction claims in executable form (EXPERIMENTS.md quotes them).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

struct AppData {
  ScalToolInputs inputs;
  ScalabilityReport report;
};

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
    runner.iterations = 3;
    const auto l2 = static_cast<double>(runner.base_config().l2.size_bytes);
    const std::map<std::string, double> multiples{
        {"t3dheat", 10.0}, {"hydro2d", 2.6}, {"swim", 4.0}};
    data_ = new std::map<std::string, AppData>;
    for (const auto& [app, mult] : multiples) {
      const auto s0 = static_cast<std::size_t>(mult * l2) / 1_KiB * 1_KiB;
      AppData d{runner.collect(app, s0, default_proc_counts(32)), {}};
      d.report = analyze(d.inputs);
      data_->emplace(app, std::move(d));
    }
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  static const AppData& app(const std::string& name) {
    return data_->at(name);
  }
  static double speedup(const std::string& name, int n) {
    const AppData& d = app(name);
    return d.inputs.base_run(1).execution_cycles /
           d.inputs.base_run(n).execution_cycles;
  }

 private:
  static std::map<std::string, AppData>* data_;
};

std::map<std::string, AppData>* IntegrationTest::data_ = nullptr;

// ---- Figure 5: T3dheat speedups -------------------------------------------

TEST_F(IntegrationTest, T3dheatGoodSpeedupTo16ThenSaturates) {
  EXPECT_GT(speedup("t3dheat", 16), 10.0);       // good up to 16
  const double gain_past_16 =
      speedup("t3dheat", 32) / speedup("t3dheat", 16);
  EXPECT_LT(gain_past_16, 1.45);                 // saturation beyond 16
}

// ---- Figure 6: T3dheat breakdown -------------------------------------------

TEST_F(IntegrationTest, T3dheatConflictMissesDominateOneProcessor) {
  const BottleneckPoint& p1 = app("t3dheat").report.point(1);
  // "responsible for nearly doubling the execution time" — require the
  // L2Lim effect to be a large share of the 1-processor cycles.
  EXPECT_GT(p1.l2lim_cost() / p1.base_cycles, 0.30);
}

TEST_F(IntegrationTest, T3dheatL2LimVanishesAtHighCounts) {
  const AppData& d = app("t3dheat");
  const BottleneckPoint& p1 = d.report.point(1);
  const BottleneckPoint& p32 = d.report.point(32);
  EXPECT_LT(p32.l2lim_cost() / p32.base_cycles,
            0.25 * (p1.l2lim_cost() / p1.base_cycles));
  // ssusage arithmetic: 10× data/L2 → enough caching space near 10 procs.
  const BottleneckPoint& p16 = d.report.point(16);
  EXPECT_LT(p16.l2lim_cost() / p16.base_cycles, 0.10);
}

TEST_F(IntegrationTest, T3dheatMpGrowsAndSyncDominates) {
  const AppData& d = app("t3dheat");
  const BottleneckPoint& p32 = d.report.point(32);
  const double mp_frac = p32.mp_cost() / p32.base_cycles;
  EXPECT_GT(mp_frac, 0.40);  // paper: ~75% at 30 procs
  EXPECT_GT(p32.sync_cost, p32.imb_cost);  // mostly synchronization
  // MP cost increases with the processor count.
  EXPECT_GT(p32.mp_cost(), d.report.point(8).mp_cost());
}

// ---- Figure 7: T3dheat validation ------------------------------------------

TEST_F(IntegrationTest, T3dheatMpEstimateMatchesSpeedshop) {
  const AppData& d = app("t3dheat");
  for (const BottleneckPoint& p : d.report.points) {
    if (p.n == 1) continue;
    const ValidationRecord& v = d.inputs.validation_for(p.n);
    const double est = p.base_cycles - p.mp_cost();
    const double meas = v.accumulated_cycles - v.mp_cycles;
    EXPECT_LT(std::abs(est - meas) / p.base_cycles, 0.15) << "n=" << p.n;
  }
}

// ---- Figure 8/9: Hydro2d ----------------------------------------------------

TEST_F(IntegrationTest, Hydro2dModestSpeedup) {
  const double s32 = speedup("hydro2d", 32);
  EXPECT_GT(s32, 5.0);
  EXPECT_LT(s32, 14.0);  // paper: ~9 at 32
}

TEST_F(IntegrationTest, Hydro2dL2LimNegligibleQuickly) {
  const AppData& d = app("hydro2d");
  // 2.6× data/L2 → caching-space effect gone by 2-4 processors.
  const BottleneckPoint& p4 = d.report.point(4);
  EXPECT_LT(p4.l2lim_cost() / p4.base_cycles, 0.10);
}

TEST_F(IntegrationTest, Hydro2dImbalanceDominates) {
  const BottleneckPoint& p32 = app("hydro2d").report.point(32);
  EXPECT_GT(p32.imb_cost, p32.sync_cost);
  // "without load imbalance or synchronization overhead, the application
  // would about double its speed for 32 processors".
  const double ratio = p32.base_cycles / p32.cycles_no_l2lim_no_mp;
  EXPECT_GT(ratio, 1.5);
}

// ---- Figure 10: Hydro2d validation -----------------------------------------

TEST_F(IntegrationTest, Hydro2dValidationWithinPaperBounds) {
  const AppData& d = app("hydro2d");
  const BottleneckPoint& p32 = d.report.point(32);
  const ValidationRecord& v = d.inputs.validation_for(32);
  const double est = p32.base_cycles - p32.mp_cost();
  const double meas = v.accumulated_cycles - v.mp_cycles;
  // Paper: 9% of accumulated cycles at 32 processors; allow up to 20%.
  EXPECT_LT(std::abs(est - meas) / p32.base_cycles, 0.20);
}

// ---- Figure 11/12: Swim -----------------------------------------------------

TEST_F(IntegrationTest, SwimVeryGoodSpeedup) {
  const double s32 = speedup("swim", 32);
  EXPECT_GT(s32, 17.0);  // paper: ~24 at 32
  EXPECT_GT(speedup("swim", 8), 6.0);
}

TEST_F(IntegrationTest, SwimL2LimNegligible) {
  // 4x data/L2: a few processors' worth of aggregate cache suffices.
  const AppData& d = app("swim");
  for (const BottleneckPoint& p : d.report.points) {
    if (p.n < 8) continue;
    EXPECT_LT(p.l2lim_cost() / p.base_cycles, 0.12) << "n=" << p.n;
  }
}

TEST_F(IntegrationTest, SwimImbalanceDominatesSync) {
  const BottleneckPoint& p32 = app("swim").report.point(32);
  EXPECT_GT(p32.imb_cost, p32.sync_cost);
}

// ---- Figure 13: Swim validation --------------------------------------------

TEST_F(IntegrationTest, SwimValidationAgreesThenDiverges) {
  const AppData& d = app("swim");
  auto diff = [&](int n) {
    const BottleneckPoint& p = d.report.point(n);
    const ValidationRecord& v = d.inputs.validation_for(n);
    const double est = p.base_cycles - p.mp_cost();
    const double meas = v.accumulated_cycles - v.mp_cycles;
    return std::abs(est - meas) / p.base_cycles;
  };
  EXPECT_LT(diff(8), 0.15);
  // Paper: ~14% at 32 due to data sharing; bound it by 25%.
  EXPECT_LT(diff(32), 0.25);
}

// ---- Cross-cutting sanity ---------------------------------------------------

TEST_F(IntegrationTest, ModelParametersConsistentAcrossApps) {
  // pi0/t2/tm(1) are machine properties: the three applications must agree
  // on them within a modest tolerance even though their code differs.
  const CpiModel& a = app("t3dheat").report.model;
  const CpiModel& b = app("hydro2d").report.model;
  const CpiModel& c = app("swim").report.model;
  for (const CpiModel* m : {&b, &c}) {
    EXPECT_NEAR(m->pi0, a.pi0, 0.15 * a.pi0);
    EXPECT_NEAR(m->tm1, a.tm1, 0.30 * a.tm1);
  }
}

TEST_F(IntegrationTest, MpCostZeroAtOneProcessorEverywhere) {
  for (const char* name : {"t3dheat", "hydro2d", "swim"}) {
    const BottleneckPoint& p1 = app(name).report.point(1);
    EXPECT_DOUBLE_EQ(p1.mp_cost(), 0.0) << name;
    EXPECT_DOUBLE_EQ(app(name).inputs.validation_for(1).mp_cycles, 0.0)
        << name;
  }
}

}  // namespace
}  // namespace scaltool
