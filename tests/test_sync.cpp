// Unit + property tests: barrier serialization model and lock timeline.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sync/barrier_model.hpp"
#include "sync/lock_model.hpp"

namespace scaltool {
namespace {

constexpr double kTsyn = 100.0;
constexpr double kCpi = 1.0;

SyncConfig cfg() { return SyncConfig{}; }

TEST(Barrier, SingleProcessorIsFree) {
  const std::vector<double> arrivals{1234.0};
  const BarrierOutcome out = barrier_cost(arrivals, kTsyn, kCpi, cfg());
  EXPECT_DOUBLE_EQ(out.exit_cycle, 1234.0);
  EXPECT_DOUBLE_EQ(out.per_proc[0].sync_cycles, 0.0);
  EXPECT_DOUBLE_EQ(out.per_proc[0].spin_cycles, 0.0);
  EXPECT_DOUBLE_EQ(out.per_proc[0].stores_to_shared, 0.0);
}

TEST(Barrier, ConservationPerProcessor) {
  // arrival + sync + spin == exit for every processor.
  const std::vector<double> arrivals{0.0, 500.0, 2000.0, 100.0};
  const BarrierOutcome out = barrier_cost(arrivals, kTsyn, kCpi, cfg());
  for (std::size_t p = 0; p < arrivals.size(); ++p) {
    const BarrierProcCost& c = out.per_proc[p];
    EXPECT_NEAR(arrivals[p] + c.sync_cycles + c.spin_cycles, out.exit_cycle,
                1e-9 * out.exit_cycle)
        << "proc " << p;
  }
}

TEST(Barrier, LastArriverDoesNotSpin) {
  const std::vector<double> arrivals{0.0, 0.0, 10000.0};
  const BarrierOutcome out = barrier_cost(arrivals, kTsyn, kCpi, cfg());
  EXPECT_DOUBLE_EQ(out.per_proc[2].spin_cycles, 0.0);
  EXPECT_GT(out.per_proc[0].spin_cycles, 0.0);
  EXPECT_GT(out.per_proc[1].spin_cycles, 0.0);
}

TEST(Barrier, EarlyArriversSpinForStragglers) {
  const std::vector<double> arrivals{0.0, 5000.0};
  const BarrierOutcome out = barrier_cost(arrivals, kTsyn, kCpi, cfg());
  // Proc 0 spins at least the arrival gap minus its own barrier work.
  EXPECT_GT(out.per_proc[0].spin_cycles, 4000.0);
  EXPECT_GT(out.per_proc[0].spin_instr, 0.0);
  EXPECT_DOUBLE_EQ(out.per_proc[0].spin_instr * cfg().spin_cpi,
                   out.per_proc[0].spin_cycles);
}

TEST(Barrier, SerializationGrowsSyncCostWithProcs) {
  // Simultaneous arrivals: the queue wait grows with participant count.
  double prev_avg = 0.0;
  for (int n : {2, 4, 8, 16, 32}) {
    const std::vector<double> arrivals(n, 0.0);
    const BarrierOutcome out = barrier_cost(arrivals, kTsyn, kCpi, cfg());
    double sum = 0.0;
    for (const auto& c : out.per_proc) sum += c.sync_cycles;
    const double avg = sum / n;
    EXPECT_GT(avg, prev_avg);
    prev_avg = avg;
  }
}

TEST(Barrier, ExitAfterLastIncrementPlusRelease) {
  const std::vector<double> arrivals{0.0, 0.0};
  const SyncConfig c = cfg();
  const BarrierOutcome out = barrier_cost(arrivals, kTsyn, kCpi, c);
  // Two simultaneous arrivals: first served at instr_cycles, second queues
  // behind the occupancy; exit = second's completion + release round trip.
  const double instr = c.barrier_instr * kCpi;
  const double expected_exit =
      instr + c.fetchop_occupancy_factor * kTsyn + kTsyn + kTsyn;
  EXPECT_NEAR(out.exit_cycle, expected_exit, 1e-9);
}

TEST(Barrier, StoresToSharedCountFetchopsPlusRetries) {
  const std::vector<double> arrivals{0.0, 1.0, 2.0};
  const BarrierOutcome out = barrier_cost(arrivals, kTsyn, kCpi, cfg());
  // The first-served processor never queues: exactly the two fetchops.
  EXPECT_DOUBLE_EQ(out.per_proc[0].stores_to_shared,
                   cfg().barrier_fetchops);
  // Later arrivals queue behind the counter and keep retrying.
  EXPECT_GT(out.per_proc[1].stores_to_shared, cfg().barrier_fetchops);
  EXPECT_GT(out.per_proc[2].stores_to_shared,
            out.per_proc[1].stores_to_shared);
}

TEST(Barrier, PcfWaitIsSyncAndKeepsTicking) {
  const std::vector<double> arrivals{0.0, 5000.0};
  const BarrierOutcome mp =
      barrier_cost(arrivals, kTsyn, kCpi, cfg(), /*wait_is_sync=*/false);
  const BarrierOutcome pcf =
      barrier_cost(arrivals, kTsyn, kCpi, cfg(), /*wait_is_sync=*/true);
  EXPECT_DOUBLE_EQ(mp.exit_cycle, pcf.exit_cycle);  // timing is identical
  // Under MP the early arriver spins; under PCF the same wait is sync and
  // generates store-to-shared retries.
  EXPECT_GT(mp.per_proc[0].spin_cycles, 0.0);
  EXPECT_DOUBLE_EQ(pcf.per_proc[0].spin_cycles, 0.0);
  EXPECT_GT(pcf.per_proc[0].sync_cycles, mp.per_proc[0].sync_cycles);
  EXPECT_GT(pcf.per_proc[0].stores_to_shared,
            mp.per_proc[0].stores_to_shared);
  // Conservation still holds per processor in both modes.
  for (const BarrierOutcome* out : {&mp, &pcf})
    for (std::size_t p = 0; p < 2; ++p)
      EXPECT_NEAR(arrivals[p] + out->per_proc[p].sync_cycles +
                      out->per_proc[p].spin_cycles,
                  out->exit_cycle, 1e-9 * out->exit_cycle);
}

TEST(Barrier, RejectsBadInputs) {
  EXPECT_THROW(barrier_cost({}, kTsyn, kCpi, cfg()), CheckError);
  const std::vector<double> arrivals{0.0};
  EXPECT_THROW(barrier_cost(arrivals, -1.0, kCpi, cfg()), CheckError);
  EXPECT_THROW(barrier_cost(arrivals, kTsyn, 0.0, cfg()), CheckError);
}

// Property: for random arrival patterns, exit is at least every arrival,
// spins are non-negative, and the per-processor conservation law holds.
class BarrierRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BarrierRandomTest, InvariantsUnderRandomArrivals) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 4242);
  const int n = 1 + static_cast<int>(rng.next_below(32));
  std::vector<double> arrivals(n);
  for (double& a : arrivals) a = rng.next_double() * 1e5;
  const BarrierOutcome out = barrier_cost(arrivals, kTsyn, kCpi, cfg());
  for (int p = 0; p < n; ++p) {
    const BarrierProcCost& c = out.per_proc[p];
    ASSERT_GE(c.spin_cycles, 0.0);
    ASSERT_GE(c.sync_cycles, 0.0);
    ASSERT_GE(out.exit_cycle + 1e-9, arrivals[p]);
    ASSERT_NEAR(arrivals[p] + c.sync_cycles + c.spin_cycles, out.exit_cycle,
                1e-9 * (1.0 + out.exit_cycle));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierRandomTest, ::testing::Range(1, 21));

TEST(Lock, UncontendedAcquireCostsOverheadOnly) {
  LockTimeline lock(kTsyn, kCpi, cfg());
  const LockEpisode ep = lock.acquire(1000.0, 50.0);
  EXPECT_DOUBLE_EQ(ep.spin_cycles, 0.0);
  const double overhead =
      cfg().lock_fetchops * kTsyn + cfg().lock_instr * kCpi;
  EXPECT_DOUBLE_EQ(ep.sync_cycles, overhead);
  EXPECT_DOUBLE_EQ(ep.grant_cycle, 1000.0 + overhead);
  EXPECT_DOUBLE_EQ(ep.release_cycle, ep.grant_cycle + 50.0);
}

TEST(Lock, ContendedAcquireWaits) {
  LockTimeline lock(kTsyn, kCpi, cfg());
  const LockEpisode first = lock.acquire(0.0, 500.0);
  const LockEpisode second = lock.acquire(10.0, 500.0);
  EXPECT_DOUBLE_EQ(second.spin_cycles, first.release_cycle - 10.0);
  EXPECT_GE(second.grant_cycle, first.release_cycle);
}

TEST(Lock, SerializesManyContenders) {
  LockTimeline lock(kTsyn, kCpi, cfg());
  double last_release = 0.0;
  for (int i = 0; i < 8; ++i) {
    const LockEpisode ep = lock.acquire(0.0, 100.0);
    EXPECT_GE(ep.grant_cycle, last_release);
    last_release = ep.release_cycle;
  }
  EXPECT_DOUBLE_EQ(lock.busy_until(), last_release);
}

TEST(Lock, ResetClearsTimeline) {
  LockTimeline lock(kTsyn, kCpi, cfg());
  lock.acquire(0.0, 1e6);
  lock.reset();
  const LockEpisode ep = lock.acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(ep.spin_cycles, 0.0);
}

}  // namespace
}  // namespace scaltool
