// Unit tests: the adaptive campaign planner — the incremental fitter
// agreeing with the one-shot least-squares core to 1e-9 (including MAD
// rejection and degenerate designs), the grid partition and deterministic
// acquisition order, the planner's stopping/budget/stats semantics, and
// the adaptive surface through the CLI and the analysis service.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "cli/cli.hpp"
#include "common/check.hpp"
#include "core/bottleneck.hpp"
#include "core/cpi_model.hpp"
#include "engine/campaign.hpp"
#include "math/least_squares.hpp"
#include "plan/acquisition.hpp"
#include "plan/fitter.hpp"
#include "plan/planner.hpp"
#include "runner/archive.hpp"
#include "runner/runner.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace scaltool::plan {
namespace {

ExperimentRunner test_runner() {
  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  return runner;
}

const std::vector<int> kProcs{1, 2, 4};

std::size_t test_s0(const ExperimentRunner& runner) {
  return 10 * runner.base_config().l2.size_bytes;
}

std::string tmp_path(const std::string& name) {
  return "/tmp/st_plan_" + std::to_string(::getpid()) + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

int run_cli(const std::vector<std::string>& args, std::string* out) {
  std::ostringstream os;
  const int rc = cli::run_command(args, os);
  *out = os.str();
  return rc;
}

// ---- Synthetic inputs ---------------------------------------------------
//
// A hand-built measurement set with known (pi0, t2, tm) lets the fitter
// tests control replicates, outliers and collinearity exactly, with no
// simulator in the loop.

constexpr std::size_t kSynthL2 = 64 * 1024;

RunRecord synth_uni(std::size_t bytes, double cpi, double h2, double hm) {
  RunRecord r;
  r.workload = "synthetic";
  r.dataset_bytes = bytes;
  r.num_procs = 1;
  r.metrics.cpi = cpi;
  r.metrics.h2 = h2;
  r.metrics.hm = hm;
  r.metrics.l1_hitr = 0.95;
  r.metrics.l2_hitr = 0.5;
  r.metrics.mem_frac = 0.3;
  r.metrics.instructions = 1e6;
  r.metrics.cycles = cpi * 1e6;
  r.execution_cycles = r.metrics.cycles;
  return r;
}

/// Four L2-overflowing triplets on an exact cpi = 1 + 10·h2 + 60·hm
/// plane plus a small pi0 anchor; uni_runs descending like the sweep.
ScalToolInputs synth_inputs() {
  ScalToolInputs in;
  in.app = "synthetic";
  in.l2_bytes = kSynthL2;
  in.s0 = 32 * kSynthL2;
  const double pi0 = 1.0, t2 = 10.0, tm = 60.0;
  const std::size_t sizes[] = {32 * kSynthL2, 16 * kSynthL2, 8 * kSynthL2,
                               4 * kSynthL2};
  const double h2s[] = {0.020, 0.018, 0.015, 0.011};
  const double hms[] = {0.010, 0.007, 0.005, 0.004};
  for (int i = 0; i < 4; ++i)
    in.uni_runs.push_back(synth_uni(sizes[i], pi0 + t2 * h2s[i] + tm * hms[i],
                                    h2s[i], hms[i]));
  in.uni_runs.push_back(synth_uni(1024, 1.2, 0.001, 0.0));  // pi0 anchor
  in.base_runs.push_back(in.uni_runs.front());
  return in;
}

void feed(ModelTracker& tracker, const ScalToolInputs& in) {
  for (const RunRecord& r : in.uni_runs) tracker.add_uni_run(r);
}

void expect_model_agrees(const ModelEstimate& est, const CpiModel& model,
                         double tol = 1e-9) {
  ASSERT_TRUE(est.ok) << est.status;
  EXPECT_NEAR(est.pi0_initial, model.pi0_initial, tol);
  EXPECT_NEAR(est.pi0.value, model.pi0, tol);
  EXPECT_NEAR(est.t2.value, model.t2, tol);
  EXPECT_NEAR(est.tm1.value, model.tm1, tol);
  EXPECT_NEAR(est.fit_r2, model.fit_r2, tol);
  EXPECT_EQ(est.refine_iterations, model.refine_iterations);
  EXPECT_EQ(est.rejected_sizes, model.fit_rejected);
}

// ---- IncrementalFitter --------------------------------------------------

TEST(IncrementalFitter, AgreesWithOneShotAtEveryPrefix) {
  // Deterministic, non-degenerate 2-predictor design.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) {
    const double a = 0.5 + 0.13 * i, b = 2.0 - 0.07 * i * i / 10.0;
    rows.push_back({a, b});
    y.push_back(3.0 * a - 1.5 * b + 0.01 * ((i * 7) % 5));
  }
  IncrementalFitter fitter(2);
  for (std::size_t m = 0; m < rows.size(); ++m) {
    fitter.add(rows[m], y[m]);
    if (m + 1 < 2) continue;
    const std::vector<std::vector<double>> prefix(rows.begin(),
                                                  rows.begin() + m + 1);
    const LsqFit one_shot =
        least_squares(prefix, std::span<const double>(y.data(), m + 1));
    const LsqFit inc = fitter.fit();
    ASSERT_EQ(inc.coef.size(), one_shot.coef.size());
    for (std::size_t c = 0; c < inc.coef.size(); ++c)
      EXPECT_NEAR(inc.coef[c], one_shot.coef[c], 1e-9);
    EXPECT_NEAR(inc.r2, one_shot.r2, 1e-9);
    EXPECT_NEAR(inc.max_abs_residual, one_shot.max_abs_residual, 1e-9);
  }
}

TEST(IncrementalFitter, UpdateMatchesRebuiltDesign) {
  std::vector<std::vector<double>> rows = {
      {1.0, 0.5}, {2.0, 1.1}, {3.0, 0.2}, {4.0, 2.4}, {5.0, 1.9}};
  std::vector<double> y = {1.1, 2.3, 2.9, 5.2, 5.8};
  IncrementalFitter fitter(2);
  for (std::size_t i = 0; i < rows.size(); ++i) fitter.add(rows[i], y[i]);
  // Replace the middle observation (what a moved replicate median does).
  rows[2] = {3.1, 0.9};
  y[2] = 3.4;
  fitter.update(2, rows[2], y[2]);
  const LsqFit one_shot = least_squares(rows, y);
  const LsqFit inc = fitter.fit();
  for (std::size_t c = 0; c < inc.coef.size(); ++c)
    EXPECT_NEAR(inc.coef[c], one_shot.coef[c], 1e-9);
  EXPECT_NEAR(inc.r2, one_shot.r2, 1e-9);
}

TEST(IncrementalFitter, ResponseShiftMatchesShiftedOneShot) {
  const std::vector<std::vector<double>> rows = {
      {1.0, 0.5}, {2.0, 1.1}, {3.0, 0.2}, {4.0, 2.4}};
  const std::vector<double> y = {2.1, 3.3, 3.9, 6.2};
  const double shift = 1.25;
  IncrementalFitter fitter(2);
  for (std::size_t i = 0; i < rows.size(); ++i) fitter.add(rows[i], y[i]);
  std::vector<double> shifted = y;
  for (double& v : shifted) v -= shift;
  const LsqFit one_shot = least_squares(rows, shifted);
  const LsqFit inc = fitter.fit(shift);
  for (std::size_t c = 0; c < inc.coef.size(); ++c)
    EXPECT_NEAR(inc.coef[c], one_shot.coef[c], 1e-12);
  EXPECT_NEAR(inc.r2, one_shot.r2, 1e-12);
  // Zero shift is the plain path, bit for bit.
  const LsqFit plain = least_squares(rows, y);
  const LsqFit inc0 = fitter.fit();
  for (std::size_t c = 0; c < inc0.coef.size(); ++c)
    EXPECT_DOUBLE_EQ(inc0.coef[c], plain.coef[c]);
}

TEST(IncrementalFitter, RobustFitAgreesIncludingMadRejection) {
  // Exact plane plus one gross outlier: with enough clean points the MAD
  // criterion rejects index 3 in both paths and the surviving fits match.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 8; ++i) {
    rows.push_back({0.008 + 0.002 * i, 0.002 + 0.0015 * i});
    y.push_back(10.0 * rows.back()[0] + 60.0 * rows.back()[1]);
  }
  y[3] += 2.0;
  IncrementalFitter fitter(2);
  for (std::size_t i = 0; i < rows.size(); ++i) fitter.add(rows[i], y[i]);
  const RobustLsqFit one_shot = robust_least_squares(rows, y);
  const RobustLsqFit inc = fitter.fit_robust();
  EXPECT_EQ(inc.rejected, one_shot.rejected);
  EXPECT_EQ(inc.rounds, one_shot.rounds);
  ASSERT_FALSE(one_shot.rejected.empty());
  EXPECT_EQ(one_shot.rejected.front(), 3u);
  ASSERT_EQ(inc.fit.coef.size(), one_shot.fit.coef.size());
  for (std::size_t c = 0; c < inc.fit.coef.size(); ++c)
    EXPECT_NEAR(inc.fit.coef[c], one_shot.fit.coef[c], 1e-9);
}

TEST(IncrementalFitter, DegenerateDesignsThrowLikeOneShot) {
  // Underdetermined: one observation, two predictors.
  IncrementalFitter under(2);
  under.add({1.0, 2.0}, 1.0);
  EXPECT_THROW(under.fit(), CheckError);
  // Collinear: second column is 2× the first.
  IncrementalFitter collinear(2);
  collinear.add({1.0, 2.0}, 1.0);
  collinear.add({2.0, 4.0}, 2.0);
  collinear.add({3.0, 6.0}, 3.1);
  EXPECT_THROW(collinear.fit(), CheckError);
  // Dead column: predictor 1 never loads.
  IncrementalFitter dead(2);
  dead.add({1.0, 0.0}, 1.0);
  dead.add({2.0, 0.0}, 2.0);
  dead.add({3.0, 0.0}, 3.1);
  EXPECT_THROW(dead.fit(), CheckError);
}

TEST(IncrementalFitter, InferenceReportsInfiniteIntervalsAtZeroDof) {
  IncrementalFitter fitter(2);
  fitter.add({1.0, 0.5}, 1.0);
  fitter.add({2.0, 1.7}, 2.2);
  const LsqFit fit = fitter.fit();
  const OlsInference inf = fitter.inference(fit);
  EXPECT_EQ(inf.dof, 0u);
  for (double se : inf.se) EXPECT_TRUE(std::isinf(se));
  for (double ci : inf.ci95) EXPECT_TRUE(std::isinf(ci));
}

// ---- ModelTracker -------------------------------------------------------

TEST(ModelTracker, AgreesWithEstimateOnCollectedInputs) {
  const ExperimentRunner runner = test_runner();
  const ScalToolInputs inputs =
      runner.collect("t3dheat", test_s0(runner), kProcs);
  const CpiModel model = estimate_cpi_model(inputs);

  ModelTracker tracker(inputs.l2_bytes);
  feed(tracker, inputs);
  expect_model_agrees(tracker.estimate(), model);

  // tm(n) backed out of a multiprocessor base run via Eq. 1 matches the
  // same arithmetic done by hand with the fitted parameters (the model's
  // own tm map applies the monotone floor, which the tracker reports raw).
  const ModelEstimate& est = tracker.estimate();
  const RunRecord& base4 = inputs.base_run(4);
  const double expected =
      (base4.metrics.cpi - est.pi0.value - base4.metrics.h2 * est.t2.value) /
      base4.metrics.hm;
  EXPECT_NEAR(tracker.tm_at(base4).value, expected, 1e-9);
  EXPECT_GT(est.triplets, 1u);
}

TEST(ModelTracker, ReplicateMedianMatchesEstimate) {
  ScalToolInputs in = synth_inputs();
  // Two extra replicates; consecutive equal sizes, like a real sweep log.
  RunRecord rep16 = in.uni_runs[1];
  rep16.metrics.cpi *= 1.03;
  rep16.metrics.h2 *= 0.98;
  in.uni_runs.insert(in.uni_runs.begin() + 2, rep16);
  RunRecord rep4 = in.uni_runs[4];
  rep4.metrics.cpi *= 0.97;
  in.uni_runs.insert(in.uni_runs.begin() + 5, rep4);

  const CpiModel model = estimate_cpi_model(in);
  ModelTracker tracker(in.l2_bytes);
  feed(tracker, in);
  expect_model_agrees(tracker.estimate(), model);
}

TEST(ModelTracker, RobustRejectionMatchesEstimate) {
  // Eight exact triplets (plenty for the MAD criterion), an anchor that
  // makes the Eq. 2 fixed point land on pi0 = 1 exactly, and one
  // corrupted run: both paths must reject the same size.
  ScalToolInputs in;
  in.app = "synthetic";
  in.l2_bytes = kSynthL2;
  in.s0 = 40 * kSynthL2;
  const double pi0 = 1.0, t2 = 10.0, tm = 60.0;
  for (int i = 0; i < 8; ++i) {
    const double h2 = 0.008 + 0.002 * i, hm = 0.002 + 0.0015 * i;
    in.uni_runs.push_back(synth_uni((40 - 4 * i) * kSynthL2,
                                    pi0 + t2 * h2 + tm * hm, h2, hm));
  }
  in.uni_runs[3].metrics.cpi += 2.0;  // the outlier
  in.uni_runs.push_back(
      synth_uni(1024, pi0 + t2 * 0.001, 0.001, 0.0));  // anchor
  in.base_runs.push_back(in.uni_runs.front());

  CpiModelOptions options;
  options.robust = true;
  const CpiModel model = estimate_cpi_model(in, options);
  ASSERT_FALSE(model.fit_rejected.empty());
  EXPECT_EQ(model.fit_rejected.front(), in.uni_runs[3].dataset_bytes);

  ModelTracker tracker(in.l2_bytes, options);
  feed(tracker, in);
  expect_model_agrees(tracker.estimate(), model);
}

TEST(ModelTracker, ReportsMissingPiecesThenDegeneracy) {
  ModelTracker tracker(kSynthL2);
  EXPECT_FALSE(tracker.estimate().ok);  // nothing seen yet
  tracker.add_uni_run(synth_uni(1024, 1.2, 0.001, 0.0));
  EXPECT_FALSE(tracker.estimate().ok);  // anchor alone
  // Two collinear triplets (hm = 2·h2): present but unfittable.
  tracker.add_uni_run(synth_uni(8 * kSynthL2, 1.5, 0.010, 0.020));
  tracker.add_uni_run(synth_uni(4 * kSynthL2, 1.4, 0.008, 0.016));
  const ModelEstimate& est = tracker.estimate();
  EXPECT_FALSE(est.ok);
  EXPECT_FALSE(est.status.empty());
}

TEST(ModelTracker, ZeroDofFitHasInfiniteIntervals) {
  ModelTracker tracker(kSynthL2);
  tracker.add_uni_run(synth_uni(1024, 1.2, 0.001, 0.0));
  tracker.add_uni_run(synth_uni(8 * kSynthL2, 1.8, 0.020, 0.010));
  tracker.add_uni_run(synth_uni(4 * kSynthL2, 1.45, 0.015, 0.005));
  ModelEstimate est = tracker.estimate();
  ASSERT_TRUE(est.ok) << est.status;
  EXPECT_EQ(est.dof, 0u);
  EXPECT_TRUE(std::isinf(est.t2.ci95));
  EXPECT_TRUE(std::isinf(est.tm1.ci95));
}

// ---- Acquisition --------------------------------------------------------

TEST(Acquisition, PartitionCoversTheGridExactlyOnce) {
  const ExperimentRunner runner = test_runner();
  const MatrixPlan plan =
      runner.plan_matrix("t3dheat", test_s0(runner), kProcs);
  const CampaignGrid grid = partition_grid(plan, 2.0);

  std::set<std::size_t> seen;
  for (std::size_t j : grid.core_jobs) EXPECT_TRUE(seen.insert(j).second);
  for (const Candidate& c : grid.candidates)
    for (std::size_t j : c.jobs) EXPECT_TRUE(seen.insert(j).second);
  EXPECT_EQ(seen.size(), plan.jobs.size());

  // The core holds everything the assembly cannot lose: the base series,
  // the pi0 anchor, and both kernel-synthesis endpoints.
  const std::set<std::size_t> core(grid.core_jobs.begin(),
                                   grid.core_jobs.end());
  for (std::size_t j : plan.base_jobs) EXPECT_TRUE(core.count(j));
  EXPECT_TRUE(core.count(plan.uni_jobs.back()));
  ASSERT_FALSE(plan.kernel_jobs.empty());
  EXPECT_TRUE(core.count(plan.kernel_jobs.front().sync_job));
  EXPECT_TRUE(core.count(plan.kernel_jobs.back().spin_job));
}

TEST(Acquisition, ScoringIsATotalOrderIndependentOfInputOrder) {
  const ExperimentRunner runner = test_runner();
  const MatrixPlan plan =
      runner.plan_matrix("t3dheat", test_s0(runner), kProcs);
  const CampaignGrid grid = partition_grid(plan, 2.0);
  ASSERT_GT(grid.candidates.size(), 1u);

  ScoreContext context;
  // A sparse measured state: the endpoints only, no fit yet.
  context.uni.push_back({plan.jobs[plan.uni_jobs.front()].dataset_bytes,
                         2.0, 0.02, 0.01});
  context.uni.push_back({plan.jobs[plan.uni_jobs.back()].dataset_bytes,
                         1.2, 0.001, 0.0});
  context.kernel_cpi = {{2, 1.5}, {4, 1.8}};

  const std::vector<ScoredCandidate> ranked =
      score_candidates(grid.candidates, context);
  std::vector<Candidate> reversed(grid.candidates.rbegin(),
                                  grid.candidates.rend());
  const std::vector<ScoredCandidate> ranked2 =
      score_candidates(reversed, context);
  ASSERT_EQ(ranked.size(), ranked2.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].candidate.label(), ranked2[i].candidate.label());
    EXPECT_DOUBLE_EQ(ranked[i].score, ranked2[i].score);
  }
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
}

// ---- Planner ------------------------------------------------------------

TEST(Planner, ConvergesBelowTheFullMatrixWithExactAccounting) {
  const ExperimentRunner runner = test_runner();
  PlannerOptions options;
  options.tolerance = 0.10;
  AdaptivePlanner planner(runner, CampaignOptions{}, options);
  const PlannerResult result =
      planner.run("t3dheat", test_s0(runner), kProcs);

  EXPECT_EQ(result.stop, StopReason::kConverged);
  EXPECT_LT(result.runs_used, result.runs_total);
  EXPECT_GT(result.steps, 0u);

  // Satellite: the extended stats identity, exactly.
  const EngineStats& s = result.stats;
  EXPECT_EQ(s.jobs_total, result.runs_total);
  EXPECT_EQ(s.jobs_total, s.jobs_run + s.jobs_cached + s.jobs_replayed +
                              s.jobs_quarantined + s.planned_skipped);
  EXPECT_EQ(s.planned_skipped, result.runs_total - result.runs_used);

  // Provenance: the assembly narrates the whole campaign as PLAN notes.
  int plan_notes = 0;
  for (const std::string& note : result.inputs.notes)
    if (note.rfind("PLAN|", 0) == 0) ++plan_notes;
  EXPECT_GE(plan_notes, 3);  // header, step 0, stop at minimum
  EXPECT_NO_THROW(result.inputs.validate());
  EXPECT_NO_THROW(analyze(result.inputs));
}

TEST(Planner, DecisionsAreDeterministic) {
  const ExperimentRunner runner = test_runner();
  const std::string a = tmp_path("det_a.sct"), b = tmp_path("det_b.sct");
  PlannerOptions options;
  options.tolerance = 0.10;
  for (const std::string& path : {a, b}) {
    AdaptivePlanner planner(runner, CampaignOptions{}, options);
    save_inputs(planner.run("t3dheat", test_s0(runner), kProcs).inputs,
                path);
  }
  EXPECT_EQ(slurp(a), slurp(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Planner, BudgetAtCoreStopsWithMaxRuns) {
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  const MatrixPlan plan = runner.plan_matrix("t3dheat", s0, kProcs);
  const std::size_t core = partition_grid(plan, 2.0).core_jobs.size();

  PlannerOptions options;
  options.tolerance = 0.0;  // unreachable
  options.max_runs = core;  // room for the core, not one pick more
  AdaptivePlanner planner(runner, CampaignOptions{}, options);
  const PlannerResult result = planner.run("t3dheat", s0, kProcs);
  EXPECT_EQ(result.stop, StopReason::kMaxRuns);
  EXPECT_EQ(result.runs_used, core);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_NO_THROW(result.inputs.validate());
}

TEST(Planner, BudgetBelowCoreIsAnUpfrontError) {
  const ExperimentRunner runner = test_runner();
  PlannerOptions options;
  options.max_runs = 2;
  AdaptivePlanner planner(runner, CampaignOptions{}, options);
  EXPECT_THROW(planner.run("t3dheat", test_s0(runner), kProcs), CheckError);
}

TEST(Planner, AssemblyWithEverythingRanMatchesSerialCollect) {
  // An adaptive campaign that ends up buying the whole grid must hand
  // back exactly what the serial collect would have: the assembly adds
  // nothing but provenance.
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  const MatrixPlan plan = runner.plan_matrix("t3dheat", s0, kProcs);
  CampaignEngine engine(runner, CampaignOptions{});
  const std::vector<JobOutcome> outcomes = engine.execute(plan);
  const ScalToolInputs adaptive = assemble_adaptive(
      plan, outcomes, std::vector<bool>(plan.jobs.size(), true));

  const ScalToolInputs serial = runner.collect("t3dheat", s0, kProcs);
  ASSERT_EQ(adaptive.uni_runs.size(), serial.uni_runs.size());
  ASSERT_EQ(adaptive.base_runs.size(), serial.base_runs.size());
  ASSERT_EQ(adaptive.kernels.size(), serial.kernels.size());
  for (std::size_t i = 0; i < serial.uni_runs.size(); ++i) {
    EXPECT_EQ(adaptive.uni_runs[i].dataset_bytes,
              serial.uni_runs[i].dataset_bytes);
    EXPECT_DOUBLE_EQ(adaptive.uni_runs[i].metrics.cpi,
                     serial.uni_runs[i].metrics.cpi);
  }
  for (std::size_t i = 0; i < serial.kernels.size(); ++i)
    EXPECT_DOUBLE_EQ(adaptive.kernels[i].sync_kernel.metrics.cpi,
                     serial.kernels[i].sync_kernel.metrics.cpi);
}

TEST(Planner, AssemblySynthesizesSkippedKernelPairs) {
  const ExperimentRunner runner = test_runner();
  const std::vector<int> procs{1, 2, 4, 8};
  const MatrixPlan plan =
      runner.plan_matrix("t3dheat", test_s0(runner), procs);
  CampaignEngine engine(runner, CampaignOptions{});
  const std::vector<JobOutcome> outcomes = engine.execute(plan);

  // Drop the middle kernel pair (n = 4); endpoints n = 2 and n = 8 stay.
  ASSERT_EQ(plan.kernel_jobs.size(), 3u);
  std::vector<bool> ran(plan.jobs.size(), true);
  ran[plan.kernel_jobs[1].sync_job] = false;
  ran[plan.kernel_jobs[1].spin_job] = false;

  const ScalToolInputs adaptive = assemble_adaptive(plan, outcomes, ran);
  EXPECT_NO_THROW(adaptive.validate());
  ASSERT_EQ(adaptive.kernels.size(), 3u);
  const double lo = adaptive.kernel(2).sync_kernel.metrics.cpi;
  const double mid = adaptive.kernel(4).sync_kernel.metrics.cpi;
  const double hi = adaptive.kernel(8).sync_kernel.metrics.cpi;
  EXPECT_GE(mid, std::min(lo, hi));
  EXPECT_LE(mid, std::max(lo, hi));
  bool synth_note = false;
  for (const std::string& note : adaptive.notes)
    synth_note |= note.rfind("PLAN|synth", 0) == 0;
  EXPECT_TRUE(synth_note);
}

TEST(Planner, AssemblyRequiresBaseAndAnchor) {
  const ExperimentRunner runner = test_runner();
  const MatrixPlan plan =
      runner.plan_matrix("t3dheat", test_s0(runner), kProcs);
  CampaignEngine engine(runner, CampaignOptions{});
  const std::vector<JobOutcome> outcomes = engine.execute(plan);

  std::vector<bool> no_base(plan.jobs.size(), true);
  no_base[plan.base_jobs[1]] = false;
  EXPECT_THROW(assemble_adaptive(plan, outcomes, no_base), CheckError);

  std::vector<bool> no_anchor(plan.jobs.size(), true);
  no_anchor[plan.uni_jobs.back()] = false;
  EXPECT_THROW(assemble_adaptive(plan, outcomes, no_anchor), CheckError);
}

TEST(Planner, ExplainListsGridAndStoppingRule) {
  const ExperimentRunner runner = test_runner();
  const std::string text = explain_plan(runner, "t3dheat", test_s0(runner),
                                        kProcs, PlannerOptions{});
  EXPECT_NE(text.find("adaptive plan: t3dheat"), std::string::npos);
  EXPECT_NE(text.find("core (scheduled unconditionally):"),
            std::string::npos);
  EXPECT_NE(text.find("pi0 anchor"), std::string::npos);
  EXPECT_NE(text.find("candidates (probe-focus sweep points first"),
            std::string::npos);
  EXPECT_NE(text.find("stopping: what-if probes"), std::string::npos);
}

// ---- CLI and service surface --------------------------------------------

TEST(AdaptiveCli, CollectAdaptiveArchivesPlanProvenance) {
  const std::string out = tmp_path("adaptive.sct");
  std::string text;
  const int rc = run_cli({"collect", "t3dheat", "--adaptive", "--out=" + out,
                          "--size=10xL2", "--max-procs=4", "--iters=2",
                          "--tolerance=0.10", "--no-journal"},
                         &text);
  EXPECT_EQ(rc, 0) << text;
  EXPECT_NE(text.find("adaptive: scheduled"), std::string::npos);
  EXPECT_NE(text.find("plan: PLAN|"), std::string::npos);
  const std::string archive = slurp(out);
  EXPECT_NE(archive.find("NOTE|PLAN|"), std::string::npos);

  // PLAN notes are provenance, not degradation: the archive analyzes
  // cleanly (exit 0, not the degraded-inputs exit 3).
  std::string analyze_text;
  EXPECT_EQ(run_cli({"analyze", out}, &analyze_text), 0)
      << analyze_text;
  std::remove(out.c_str());
}

TEST(AdaptiveCli, ToleranceUnreachableExitsEightAndKeepsTheJournal) {
  const ExperimentRunner runner = test_runner();
  const std::size_t core =
      partition_grid(
          runner.plan_matrix("t3dheat", test_s0(runner), kProcs), 2.0)
          .core_jobs.size();
  const std::string out = tmp_path("budget.sct");
  const std::string journal = out + ".journal";
  const std::vector<std::string> base_args = {
      "collect", "t3dheat",     "--adaptive",    "--out=" + out,
      "--size=10xL2", "--max-procs=4", "--iters=2"};

  std::vector<std::string> capped = base_args;
  capped.push_back("--tolerance=0");
  capped.push_back("--max-runs=" + std::to_string(core));
  std::string text;
  EXPECT_EQ(run_cli(capped, &text), 8) << text;
  EXPECT_NE(text.find("tolerance"), std::string::npos);
  EXPECT_NE(text.find("--resume"), std::string::npos);
  EXPECT_NE(slurp(journal).find("RUN|"), std::string::npos)
      << "journal must survive a kMaxRuns stop";
  EXPECT_NE(slurp(out).find("NOTE|PLAN|"), std::string::npos)
      << "the archive is still published";

  // A rerun with a real tolerance and --resume replays every run the
  // capped campaign paid for and finishes without re-simulating them.
  std::vector<std::string> resumed = base_args;
  resumed.push_back("--tolerance=0.10");
  resumed.push_back("--resume");
  EXPECT_EQ(run_cli(resumed, &text), 0) << text;
  EXPECT_NE(text.find("journal: replayed " + std::to_string(core)),
            std::string::npos)
      << text;
  std::remove(out.c_str());
  std::remove(journal.c_str());
}

TEST(AdaptiveServe, PlanAndAdaptiveCollectAreServable) {
  serve::AnalysisService service;
  serve::Request plan_req;
  plan_req.op = "plan";
  plan_req.args = {"t3dheat", "--size=10xL2", "--max-procs=4"};
  const serve::Response plan_resp = service.submit(plan_req).get();
  EXPECT_EQ(plan_resp.status, serve::Status::kOk) << plan_resp.error;
  EXPECT_NE(plan_resp.output.find("adaptive plan: t3dheat"),
            std::string::npos);

  const std::string out = tmp_path("served.sct");
  serve::Request collect_req;
  collect_req.op = "collect";
  collect_req.args = {"t3dheat",      "--adaptive",    "--out=" + out,
                      "--size=10xL2", "--max-procs=4", "--iters=2",
                      "--tolerance=0.10", "--no-journal"};
  const serve::Response resp = service.submit(collect_req).get();
  EXPECT_EQ(resp.status, serve::Status::kOk) << resp.error;
  EXPECT_NE(resp.output.find("adaptive: scheduled"), std::string::npos);
  EXPECT_NE(slurp(out).find("NOTE|PLAN|"), std::string::npos);
  std::remove(out.c_str());
}

}  // namespace
}  // namespace scaltool::plan
