// Self-healing fleet suite (DESIGN.md §12).
//
// Unit layers first — the consistent-hash ring, the circuit breaker and
// the restart policy are pure state machines driven here with fixed keys
// and a fake clock, so every transition is pinned deterministically. Then
// the transport hardening drills (a SIGALRM storm against FdStreamBuf, a
// mute server against socket_call's timeout), the cross-process run-cache
// merge, and live supervision: a SIGKILLed worker is restarted, a worker
// that dies on startup is benched and the fleet reports itself degraded.
//
// The headline is the kill-a-shard chaos drill: a collect is issued
// through the fleet front door, the ring owner is SIGKILLed once its
// write-ahead journal holds a seeded number of committed runs, and the
// test asserts the request still completes — resumed on a ring survivor
// from the dead shard's journal, with the journaled prefix replayed (not
// re-simulated) and the final archive byte-identical to a fault-free run.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "common/check.hpp"
#include "common/monotime.hpp"
#include "common/subprocess.hpp"
#include "engine/checkpoint.hpp"
#include "engine/journal.hpp"
#include "engine/run_cache.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "serve/fleet/breaker.hpp"
#include "serve/fleet/fleet.hpp"
#include "serve/fleet/ring.hpp"
#include "serve/fleet/router.hpp"
#include "serve/fleet/supervisor.hpp"
#include "serve/fleet/worker.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace scaltool {
namespace {

using namespace std::chrono_literals;

std::string tmp_path(const std::string& tag) {
  return "/tmp/scaltool_fleet_" + tag + "_" + std::to_string(::getpid());
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

int run_cli(const std::vector<std::string>& args, std::string* out = nullptr) {
  std::ostringstream os;
  const int rc = cli::run_command(args, os);
  if (out != nullptr) *out = os.str();
  return rc;
}

serve::Request make_request(std::string op, std::vector<std::string> args) {
  serve::Request req;
  req.id = obs::JsonValue(1.0);
  req.op = std::move(op);
  req.args = std::move(args);
  return req;
}

/// Small but real worker configuration every fleet test shares.
serve::SupervisorOptions small_supervisor(int shards,
                                          const std::string& socket_dir) {
  ::mkdir(socket_dir.c_str(), 0777);
  serve::SupervisorOptions options;
  options.shards = shards;
  options.socket_dir = socket_dir;
  options.worker.workers = 2;  // one seat stays free for health probes
  options.worker.engine_jobs = 1;
  options.worker.result_cache_entries = 0;
  options.restart.backoff_ms = 10;
  options.restart.max_deaths = 3;
  options.restart.window_ms = 60000;
  options.tick_ms = 5;
  options.health_interval_ms = 200;
  options.health_timeout_ms = 10000;  // a busy worker is not a wedged worker
  options.stop_grace_ms = 5000;
  options.stop_term_ms = 2000;
  return options;
}

// ---- HashRing ----------------------------------------------------------

std::uint64_t ring_key(int i) {
  return static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL + 1;
}

TEST(HashRing, DeterministicAndInRange) {
  const serve::HashRing ring(4);
  const serve::HashRing twin(4);
  for (int i = 0; i < 256; ++i) {
    const int shard = ring.pick(ring_key(i));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, twin.pick(ring_key(i)));
  }
  EXPECT_EQ(ring.pick(7, {false, false, false, false}), -1);
}

TEST(HashRing, PickOrderedWalksDistinctLiveShards) {
  const serve::HashRing ring(4);
  for (int i = 0; i < 64; ++i) {
    const std::vector<int> order = ring.pick_ordered(ring_key(i), 4);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], ring.pick(ring_key(i)));
    EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(), 4u);
    // When the owner dies, its keys land exactly on its ring successor.
    std::vector<bool> live(4, true);
    live[static_cast<std::size_t>(order[0])] = false;
    EXPECT_EQ(ring.pick(ring_key(i), live), order[1]);
  }
}

TEST(HashRing, DeathMovesOnlyTheDeadShardsKeys) {
  const serve::HashRing ring(4);
  constexpr int kDead = 2;
  std::vector<bool> live(4, true);
  live[kDead] = false;
  int moved = 0;
  for (int i = 0; i < 1000; ++i) {
    const int before = ring.pick(ring_key(i));
    const int after = ring.pick(ring_key(i), live);
    if (before != kDead) {
      EXPECT_EQ(after, before) << "key " << i << " moved needlessly";
    } else {
      EXPECT_NE(after, kDead);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);  // the dead shard owned something
}

TEST(HashRing, OwnershipSumsToOneAndDeadShardsOwnNothing) {
  const serve::HashRing ring(4);
  const std::vector<double> all = ring.ownership();
  double sum = 0.0;
  for (const double f : all) {
    EXPECT_GT(f, 0.0);
    sum += f;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  const std::vector<double> down = ring.ownership({true, false, true, true});
  EXPECT_EQ(down[1], 0.0);
  EXPECT_NEAR(down[0] + down[2] + down[3], 1.0, 1e-9);
}

// ---- CircuitBreaker (fake clock) ---------------------------------------

struct FakeClock {
  MonoClock::TimePoint now{};
  serve::NowFn fn() {
    return [this] { return now; };
  }
  void advance_ms(int ms) { now += std::chrono::milliseconds(ms); }
};

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  FakeClock clock;
  serve::CircuitBreaker breaker({.failure_threshold = 3, .cooldown_ms = 500},
                                clock.fn());
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
  }
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();  // third consecutive: trips
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
  // A success along the way resets the consecutive count.
  FakeClock clock2;
  serve::CircuitBreaker healthy({.failure_threshold = 3, .cooldown_ms = 500},
                                clock2.fn());
  healthy.record_failure();
  healthy.record_failure();
  healthy.record_success();
  healthy.record_failure();
  healthy.record_failure();
  EXPECT_EQ(healthy.state(), serve::CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenAdmitsOneProbeWhoseOutcomeDecides) {
  FakeClock clock;
  serve::CircuitBreaker breaker({.failure_threshold = 1, .cooldown_ms = 100},
                                clock.fn());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  clock.advance_ms(99);
  EXPECT_FALSE(breaker.allow());  // still cooling
  clock.advance_ms(2);
  EXPECT_TRUE(breaker.allow());  // the single half-open probe
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // probe slot taken
  breaker.record_success();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());

  // And the unlucky path: the probe fails, the breaker re-opens at once.
  breaker.record_failure();
  clock.advance_ms(101);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow());
  EXPECT_STREQ(breaker.state_name(), "open");
}

// ---- RestartPolicy (fake clock) ----------------------------------------

TEST(RestartPolicy, BackoffDoublesPerDeathInBurstAndClamps) {
  serve::RestartPolicy policy({.backoff_ms = 50,
                               .max_backoff_ms = 120,
                               .max_deaths = 10,
                               .window_ms = 60000});
  MonoClock::TimePoint t{};
  const auto d1 = policy.on_death(t);
  EXPECT_FALSE(d1.bench);
  EXPECT_EQ(d1.restart_at - t, 50ms);
  t += 10ms;
  const auto d2 = policy.on_death(t);
  EXPECT_EQ(d2.restart_at - t, 100ms);
  t += 10ms;
  const auto d3 = policy.on_death(t);  // 200ms clamped to the cap
  EXPECT_EQ(d3.restart_at - t, 120ms);
  EXPECT_EQ(policy.deaths(), 3);
}

TEST(RestartPolicy, BenchesAtMaxDeathsWithinWindow) {
  serve::RestartPolicy policy({.backoff_ms = 10,
                               .max_backoff_ms = 1000,
                               .max_deaths = 3,
                               .window_ms = 1000});
  MonoClock::TimePoint t{};
  EXPECT_FALSE(policy.on_death(t).bench);
  EXPECT_FALSE(policy.on_death(t + 100ms).bench);
  EXPECT_TRUE(policy.on_death(t + 200ms).bench);
  EXPECT_EQ(policy.recent_deaths(), 3);
}

TEST(RestartPolicy, OldDeathsFallOutOfTheWindow) {
  serve::RestartPolicy policy({.backoff_ms = 10,
                               .max_backoff_ms = 1000,
                               .max_deaths = 3,
                               .window_ms = 1000});
  MonoClock::TimePoint t{};
  EXPECT_FALSE(policy.on_death(t).bench);
  // 2s later the first death is ancient history: a new pair is only a
  // burst of two, and its first member restarts at base backoff again.
  const auto late = policy.on_death(t + 2000ms);
  EXPECT_FALSE(late.bench);
  EXPECT_EQ(late.restart_at - (t + 2000ms), 10ms);
  EXPECT_FALSE(policy.on_death(t + 2100ms).bench);
  EXPECT_TRUE(policy.on_death(t + 2200ms).bench);
}

TEST(RestartPolicy, SurvivedWindowResetsTheBurst) {
  serve::RestartPolicy policy({.backoff_ms = 10,
                               .max_backoff_ms = 1000,
                               .max_deaths = 3,
                               .window_ms = 1000});
  MonoClock::TimePoint t{};
  policy.on_death(t);
  policy.on_death(t + 10ms);
  policy.on_survived_window();
  EXPECT_EQ(policy.recent_deaths(), 0);
  const auto next = policy.on_death(t + 20ms);
  EXPECT_FALSE(next.bench);
  EXPECT_EQ(next.restart_at - (t + 20ms), 10ms);  // base backoff again
  EXPECT_EQ(policy.deaths(), 3);                  // lifetime count survives
}

// ---- Transport hardening -----------------------------------------------

void sigalrm_noop(int) {}

// A storm of non-SA_RESTART SIGALRMs against both ends of a socket while a
// payload much larger than the 4 KiB buffer crosses it: every recv/send in
// FdStreamBuf eats EINTR and finishes short writes, so the line arrives
// intact. Without the retry loops this reads as a torn stream.
TEST(TransportHardening, FdStreamBufSurvivesSignalStorm) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int sndbuf = 4096;  // keep the writer blocking, in signal range
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);

  struct sigaction action {};
  action.sa_handler = sigalrm_noop;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction saved {};
  ASSERT_EQ(::sigaction(SIGALRM, &action, &saved), 0);

  const std::string payload(256 * 1024, 'x');
  std::atomic<bool> done{false};
  const pthread_t reader_thread = ::pthread_self();
  std::thread writer([&] {
    serve::FdStreamBuf buf(fds[0]);
    std::ostream os(&buf);
    os << payload << "\n" << std::flush;
    ::shutdown(fds[0], SHUT_WR);
  });
  std::thread pepper([&, writer_thread = writer.native_handle()] {
    for (int i = 0; i < 2000 && !done.load(); ++i) {
      ::pthread_kill(writer_thread, SIGALRM);
      ::pthread_kill(reader_thread, SIGALRM);
      std::this_thread::sleep_for(200us);
    }
  });

  serve::FdStreamBuf buf(fds[1]);
  std::istream is(&buf);
  std::string line;
  const bool got = static_cast<bool>(std::getline(is, line));
  done = true;
  pepper.join();
  writer.join();
  ::sigaction(SIGALRM, &saved, nullptr);
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_TRUE(got);
  ASSERT_EQ(line.size(), payload.size());
  EXPECT_EQ(line, payload);
}

// A server that accepts the connection bytes but never answers must not
// hang the caller forever: socket_call's timeout turns the silence into a
// CheckError (the supervisor's wedged-worker detector rides on this).
TEST(TransportHardening, SocketCallTimesOutOnAMuteServer) {
  const std::string path = tmp_path("mute") + ".sock";
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(fd, 1), 0);  // listen, never accept, never answer

  const MonoClock::TimePoint t0 = MonoClock::now();
  EXPECT_THROW(serve::socket_call(path, make_request("ping", {}), 200),
               CheckError);
  EXPECT_LT(MonoClock::seconds_since(t0), 30.0);
  ::close(fd);
  ::unlink(path.c_str());
}

// ---- RunCache: cross-process merge under flock -------------------------

RunSpec cache_spec() { return {"swim", 1 << 20, 4, false}; }

JobOutcome cache_outcome(std::uint64_t key) {
  JobOutcome out;
  out.record.workload = "swim";
  out.record.dataset_bytes = 1 << 20;
  out.record.num_procs = 4;
  out.record.execution_cycles = static_cast<double>(key);
  return out;
}

// Two processes hammer one cache file with interleaved insert+save rounds
// on disjoint keys. Merge-on-save under the advisory lock must union the
// work: a last-writer-wins save would erase the sibling's entries.
TEST(RunCacheSharing, ConcurrentSavesFromTwoProcessesMerge) {
  const std::string path = tmp_path("cache") + ".txt";
  ::unlink(path.c_str());
  ::unlink((path + ".lock").c_str());

  constexpr int kRounds = 20;
  const auto writer = [&path](std::uint64_t base) {
    return [&path, base]() -> int {
      for (int i = 0; i < kRounds; ++i) {
        // A fresh cache per round maximizes read-merge-write interleaving.
        RunCache cache(path);
        const std::uint64_t key = base + static_cast<std::uint64_t>(i);
        cache.insert(key, cache_spec(), cache_outcome(key));
        cache.save();
      }
      return 0;
    };
  };
  const pid_t a = spawn_child(writer(1000), {});
  const pid_t b = spawn_child(writer(2000), {});
  const ChildExit ra = reap(a);
  const ChildExit rb = reap(b);
  ASSERT_TRUE(ra.exited());
  ASSERT_TRUE(rb.exited());
  EXPECT_EQ(ra.exit_code(), 0);
  EXPECT_EQ(rb.exit_code(), 0);

  RunCache merged(path);
  EXPECT_EQ(merged.corrupt_entries(), 0u);
  EXPECT_EQ(merged.loaded_entries(), 2u * kRounds);
  for (const std::uint64_t base : {1000u, 2000u})
    for (int i = 0; i < kRounds; ++i) {
      const std::uint64_t key = base + static_cast<std::uint64_t>(i);
      const auto hit = merged.find(key, cache_spec());
      ASSERT_TRUE(hit.has_value()) << "lost entry " << key;
      EXPECT_DOUBLE_EQ(hit->record.execution_cycles,
                       static_cast<double>(key));
    }
  ::unlink(path.c_str());
  ::unlink((path + ".lock").c_str());
}

// ---- Supervisor --------------------------------------------------------

TEST(Supervisor, RestartsASigkilledWorker) {
  serve::Supervisor supervisor(small_supervisor(2, tmp_path("sup_restart")));
  ASSERT_TRUE(supervisor.wait_ready(30000));
  const pid_t victim = supervisor.pid_of(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  const MonoClock::TimePoint t0 = MonoClock::now();
  while ((supervisor.pid_of(0) == victim || !supervisor.is_live(0)) &&
         MonoClock::seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(5ms);
  EXPECT_NE(supervisor.pid_of(0), victim);
  EXPECT_TRUE(supervisor.is_live(0));
  EXPECT_GE(supervisor.deaths_total(), 1u);
  EXPECT_GE(supervisor.restarts_total(), 1u);
  // The restarted incarnation rebinds the same socket and serves.
  ASSERT_TRUE(supervisor.wait_ready(30000));
  const serve::Response pong =
      serve::socket_call(supervisor.socket_of(0), make_request("ping", {}));
  EXPECT_EQ(pong.output, "pong\n");

  const std::vector<serve::WorkerStatus> status = supervisor.status();
  ASSERT_EQ(status.size(), 2u);
  EXPECT_EQ(status[0].restarts, 1);
  EXPECT_EQ(status[0].deaths, 1);
  EXPECT_EQ(status[1].restarts, 0);
  supervisor.stop();
}

/// Worker stand-in for the stale-health drill: incarnation 1 reports a
/// seeded journal_lag through the health verb; every later incarnation
/// answers health with an empty payload (the probe treats that as
/// unhealthy and never updates the probe-derived fields), so a non-zero
/// lag after a respawn can only be incarnation 1's stale value.
int lag_reporting_worker(const serve::WorkerSpec& spec, int lifeline_fd,
                         const std::string& counter_path) {
  int incarnation = 1;
  {
    std::ifstream in(counter_path);
    std::string line;
    while (std::getline(in, line)) ++incarnation;
  }
  { std::ofstream(counter_path, std::ios::app) << "spawn\n"; }

  serve::SocketServer server(
      [incarnation](serve::Request req) {
        serve::Response r;
        r.id = req.id;
        if (req.op == "ping") r.output = "pong\n";
        if (req.op == "health" && incarnation == 1)
          r.stats_json = "{\"journal_lag\":7,\"in_flight\":1}";
        std::promise<serve::Response> p;
        p.set_value(std::move(r));
        return p.get_future();
      },
      spec.socket_path);
  char byte = 0;
  (void)::read(lifeline_fd, &byte, 1);
  server.stop();
  return 0;
}

TEST(Supervisor, RespawnResetsProbeDerivedHealthFields) {
  const std::string counter = tmp_path("lag_counter");
  ::unlink(counter.c_str());
  serve::SupervisorOptions options =
      small_supervisor(1, tmp_path("lag_sockets"));
  options.health_interval_ms = 20;
  options.health_timeout_ms = 2000;
  options.health_failures_to_kill = 1000000;  // unhealthy != wedged here
  options.worker_entry = [counter](const serve::WorkerSpec& spec,
                                   int lifeline_fd) {
    return lag_reporting_worker(spec, lifeline_fd, counter);
  };
  serve::Supervisor supervisor(options);
  ASSERT_TRUE(supervisor.wait_ready(30000));

  // Incarnation 1's probe lands: the stale values to beat.
  MonoClock::TimePoint t0 = MonoClock::now();
  while (supervisor.status()[0].journal_lag != 7 &&
         MonoClock::seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(2ms);
  ASSERT_EQ(supervisor.status()[0].journal_lag, 7u);
  EXPECT_EQ(supervisor.status()[0].in_flight, 1);

  const pid_t victim = supervisor.pid_of(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  t0 = MonoClock::now();
  while ((supervisor.pid_of(0) == victim || !supervisor.is_live(0)) &&
         MonoClock::seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(2ms);
  ASSERT_TRUE(supervisor.is_live(0));

  // Probe-derived fields describe an incarnation, not a shard: the
  // respawned worker starts from a clean slate...
  EXPECT_EQ(supervisor.status()[0].journal_lag, 0u);
  EXPECT_EQ(supervisor.status()[0].in_flight, 0);
  // ...and stays clean across later (unhealthy) probe cycles.
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(supervisor.status()[0].journal_lag, 0u);
  EXPECT_EQ(supervisor.status()[0].in_flight, 0);
  supervisor.stop();
  ::unlink(counter.c_str());
}

// ---- Fleet front door --------------------------------------------------

TEST(Fleet, IntrospectionIsAnsweredLocallyAndWorkRoutes) {
  serve::FleetOptions options;
  options.supervisor = small_supervisor(2, tmp_path("fleet_front"));
  serve::Fleet fleet(options);
  ASSERT_TRUE(fleet.supervisor().wait_ready(30000));

  const serve::Response pong = fleet.call(make_request("ping", {}));
  EXPECT_EQ(pong.output, "pong\n");
  EXPECT_EQ(pong.exit_code, 0);

  // A routed analyze answers with the exact CLI bytes.
  const std::vector<std::string> matrix = {"swim", "--size=2xL2",
                                           "--max-procs=4", "--iters=2"};
  std::string direct;
  std::vector<std::string> cli_args = {"analyze"};
  cli_args.insert(cli_args.end(), matrix.begin(), matrix.end());
  ASSERT_EQ(run_cli(cli_args, &direct), 0);
  const serve::Response routed = fleet.call(make_request("analyze", matrix));
  EXPECT_EQ(routed.exit_code, 0);
  EXPECT_EQ(routed.status, serve::Status::kOk);
  EXPECT_EQ(routed.output, direct);

  const serve::Response health = fleet.call(make_request("health", {}));
  EXPECT_EQ(health.exit_code, 0);
  const obs::JsonValue doc = obs::json_parse(health.stats_json);
  EXPECT_EQ(doc.at("status").as_string(), "ok");
  EXPECT_EQ(doc.at("shards").as_number(), 2.0);
  EXPECT_EQ(doc.at("live").as_number(), 2.0);
  const auto& workers = doc.at("workers").as_array();
  ASSERT_EQ(workers.size(), 2u);
  double keys = 0.0;
  for (const obs::JsonValue& w : workers) {
    EXPECT_GT(w.at("pid").as_number(), 0.0);
    EXPECT_EQ(w.at("state").as_string(), "live");
    EXPECT_EQ(w.at("breaker").as_string(), "closed");
    EXPECT_GT(w.at("keys_owned").as_number(), 0.0);
    EXPECT_GE(w.at("journal_lag").as_number(), 0.0);
    keys += w.at("keys_owned").as_number();
  }
  EXPECT_NEAR(keys, 1.0, 1e-6);

  const serve::Response stats = fleet.call(make_request("stats", {}));
  const obs::JsonValue s = obs::json_parse(stats.stats_json);
  EXPECT_GE(s.at("routed").as_number(), 1.0);
  EXPECT_EQ(s.at("benched").as_number(), 0.0);
  fleet.stop();
}

TEST(Fleet, HedgedReadStillAnswersExactly) {
  serve::FleetOptions options;
  options.supervisor = small_supervisor(2, tmp_path("fleet_hedge"));
  options.router.hedge_after_ms = 1;  // force the hedge to fire
  serve::Fleet fleet(options);
  ASSERT_TRUE(fleet.supervisor().wait_ready(30000));

  const std::vector<std::string> matrix = {"swim", "--size=2xL2",
                                           "--max-procs=4", "--iters=2"};
  std::string direct;
  ASSERT_EQ(run_cli({"analyze", "swim", "--size=2xL2", "--max-procs=4",
                     "--iters=2"},
                    &direct),
            0);
  const serve::Response routed = fleet.call(make_request("analyze", matrix));
  EXPECT_EQ(routed.exit_code, 0);
  EXPECT_EQ(routed.output, direct);  // either leg, identical bytes
  EXPECT_GE(fleet.router().hedges(), 1u);
  fleet.stop();
}

TEST(Fleet, CrashLoopingShardIsBenchedAndFleetReportsDegraded) {
  serve::FleetOptions options;
  options.supervisor = small_supervisor(2, tmp_path("fleet_bench"));
  options.supervisor.restart.backoff_ms = 1;
  options.supervisor.worker_entry = [](const serve::WorkerSpec& spec,
                                       int lifeline_fd) {
    if (spec.shard == 0) return 1;  // dies on startup: a crash loop
    return serve::fleet_worker_main(spec, lifeline_fd);
  };
  serve::Fleet fleet(options);

  const MonoClock::TimePoint t0 = MonoClock::now();
  while (fleet.supervisor().benched_count() < 1 &&
         MonoClock::seconds_since(t0) < 30.0)
    std::this_thread::sleep_for(5ms);
  ASSERT_EQ(fleet.supervisor().benched_count(), 1);
  EXPECT_TRUE(fleet.degraded());
  EXPECT_FALSE(fleet.supervisor().live_mask()[0]);
  ASSERT_TRUE(fleet.supervisor().wait_ready(30000));  // the survivor serves

  const serve::Response health = fleet.call(make_request("health", {}));
  EXPECT_EQ(health.status, serve::Status::kDegraded);
  EXPECT_EQ(health.exit_code, serve::kExitFleetDegraded);
  const obs::JsonValue doc = obs::json_parse(health.stats_json);
  EXPECT_EQ(doc.at("status").as_string(), "degraded");
  EXPECT_EQ(doc.at("benched").as_number(), 1.0);
  const auto& workers = doc.at("workers").as_array();
  EXPECT_EQ(workers[0].at("state").as_string(), "benched");
  EXPECT_EQ(workers[0].at("keys_owned").as_number(), 0.0);
  EXPECT_EQ(workers[1].at("state").as_string(), "live");
  EXPECT_NEAR(workers[1].at("keys_owned").as_number(), 1.0, 1e-6);

  // The surviving shard carries the whole keyspace: work still lands.
  const serve::Response routed = fleet.call(make_request(
      "analyze", {"swim", "--size=2xL2", "--max-procs=4", "--iters=2"}));
  EXPECT_EQ(routed.exit_code, 0);
  fleet.stop();
}

// The acceptance test for distributed tracing (DESIGN.md §13): one
// collect through a 2-shard obs-enabled fleet produces a single merged
// Chrome trace with a front-door lane and one lane per shard, and every
// span of the request — front-door submit, shard-side request, each
// engine job — carries the request's trace_id.
TEST(Fleet, CollectThroughObsFleetMergesIntoOneTaggedTimeline) {
  serve::FleetOptions options;
  options.supervisor = small_supervisor(2, tmp_path("fleet_e2e"));
  options.supervisor.worker_obs = true;
  options.supervisor.worker_fdr = true;
  options.supervisor.scrape_metrics = true;
  obs::enable();  // the front-door process records its own spans
  serve::Fleet fleet(options);
  ASSERT_TRUE(fleet.supervisor().wait_ready(30000));

  const std::string out = tmp_path("fleet_e2e") + ".archive";
  ::unlink(out.c_str());
  serve::Request request = make_request(
      "collect",
      {"swim", "--size=2xL2", "--max-procs=4", "--iters=2", "--out=" + out});
  request.trace_id = "t-e2e";
  request.parent_span = "test";
  const serve::Response response = fleet.call(request);
  EXPECT_EQ(response.exit_code, 0) << response.error;

  // Drain the workers (they export their traces on the way down), then
  // merge everything into one timeline.
  fleet.stop();
  obs::disable();
  const std::string merged_path = tmp_path("fleet_e2e_trace") + ".json";
  fleet.write_merged_trace(merged_path);

  const obs::JsonValue doc =
      obs::json_parse(obs::read_text_file(merged_path));
  const obs::JsonValue::Array& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  std::map<double, std::string> lane;  // merged pid -> process name
  std::set<std::string> tagged_names;  // span names seen with t-e2e
  int jobs_total = 0, jobs_tagged = 0;
  for (const obs::JsonValue& e : events) {
    if (e.at("ph").as_string() == "M") {
      if (e.at("name").as_string() == "process_name")
        lane[e.at("pid").as_number()] =
            e.at("args").as_object().at("name").as_string();
      continue;
    }
    if (e.at("ph").as_string() != "E") continue;
    const std::string name = e.at("name").as_string();
    bool tagged = false;
    if (e.has("args")) {
      const obs::JsonValue::Object& args = e.at("args").as_object();
      const auto it = args.find("trace_id");
      tagged = it != args.end() && it->second.as_string() == "t-e2e";
    }
    if (tagged) tagged_names.insert(name);
    if (name == "job") {
      ++jobs_total;
      if (tagged) ++jobs_tagged;
    }
  }

  // One lane per process, named.
  std::set<std::string> lanes;
  for (const auto& [pid, name] : lane) lanes.insert(name);
  EXPECT_TRUE(lanes.count("front-door")) << "missing front-door lane";
  EXPECT_TRUE(lanes.count("shard-0"));
  EXPECT_TRUE(lanes.count("shard-1"));

  // The request is traceable end to end under one id: through the front
  // door, across the wire into the owning shard, down into every engine
  // job of the campaign.
  EXPECT_TRUE(tagged_names.count("fleet.request")) << "front door untagged";
  EXPECT_TRUE(tagged_names.count("request")) << "shard side untagged";
  EXPECT_TRUE(tagged_names.count("job")) << "engine jobs untagged";
  ASSERT_GT(jobs_total, 0);
  EXPECT_EQ(jobs_tagged, jobs_total)
      << "some engine jobs lost the request's trace id";

  ::unlink(out.c_str());
  ::unlink(merged_path.c_str());
}

// ---- The kill-a-shard chaos drill --------------------------------------

/// Journaled-run count of a possibly mid-write journal; 0 when the file
/// is absent or not yet parseable past the header.
std::size_t journaled_runs(const std::string& journal) {
  if (!file_exists(journal)) return 0;
  try {
    return replay_journal(journal).runs.size();
  } catch (const CheckError&) {
    return 0;  // header still in flight
  }
}

// The acceptance drill: SIGKILL the ring owner of a collect mid-campaign,
// at three seeded points measured in journaled runs. The router must fail
// the request over to a ring survivor with `--resume`, the survivor must
// replay the dead shard's journaled prefix instead of re-simulating it,
// and the archive must come out byte-identical to a fault-free run.
TEST(FleetDrill, KillAShardMidCollectResumesOnASurvivor) {
  const std::vector<std::string> matrix = {"swim", "--size=2xL2",
                                           "--max-procs=8", "--iters=2"};
  const std::string ref_out = tmp_path("drill_ref") + ".archive";
  std::vector<std::string> ref_args = {"collect"};
  ref_args.insert(ref_args.end(), matrix.begin(), matrix.end());
  ref_args.push_back("--out=" + ref_out);
  ASSERT_EQ(run_cli(ref_args), 0);
  const std::string ref_bytes = read_file(ref_out);
  ASSERT_FALSE(ref_bytes.empty());

  for (const int crash_at : {1, 2, 3}) {
    SCOPED_TRACE("crash_at=" + std::to_string(crash_at));
    const std::string tag = "drill" + std::to_string(crash_at);
    // A fresh fleet per seeded point: four cold worker processes, so the
    // only way to skip simulation is the dead shard's journal.
    serve::FleetOptions options;
    options.supervisor = small_supervisor(4, tmp_path(tag + "_sockets"));
    // Workers keep a flight-recorder ring: the supervisor must produce a
    // post-mortem naming the murdered request.
    options.supervisor.worker_fdr = true;
    serve::Fleet fleet(options);
    ASSERT_TRUE(fleet.supervisor().wait_ready(30000));

    const std::string out = tmp_path(tag) + ".archive";
    ::unlink(out.c_str());
    std::vector<std::string> args = matrix;
    args.push_back("--out=" + out);
    const serve::Request request = make_request("collect", args);
    const std::string journal = journal_path_for(out);
    ::unlink(journal.c_str());

    // The ring is deterministic, so the owner — the shard to murder — is
    // known before dispatch.
    const serve::HashRing ring(4, options.router.vnodes);
    const int owner =
        ring.pick(serve::FleetRouter::routing_key(request));
    const pid_t victim = fleet.supervisor().pid_of(owner);
    ASSERT_GT(victim, 0);

    std::future<serve::Response> pending = fleet.submit(request);
    bool armed = false;
    const MonoClock::TimePoint t0 = MonoClock::now();
    while (MonoClock::seconds_since(t0) < 120.0) {
      if (journaled_runs(journal) >= static_cast<std::size_t>(crash_at)) {
        armed = true;
        break;
      }
      if (pending.wait_for(0s) == std::future_status::ready) break;
      std::this_thread::sleep_for(200us);
    }
    ASSERT_TRUE(armed) << "campaign finished before the drill could fire";
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    const serve::Response response = pending.get();
    EXPECT_EQ(response.status, serve::Status::kOk) << response.error;
    EXPECT_EQ(response.exit_code, 0);
    EXPECT_GE(fleet.router().failovers(), 1u);

    // The survivor resumed from the dead shard's journal: the journaled
    // prefix was replayed, not re-simulated.
    const auto at = response.output.find("journal: replayed ");
    ASSERT_NE(at, std::string::npos) << response.output;
    std::size_t replayed = 0, total = 0, simulated = 0;
    ASSERT_EQ(std::sscanf(response.output.c_str() + at,
                          "journal: replayed %zu of %zu runs (%zu simulated)",
                          &replayed, &total, &simulated),
              3)
        << response.output;
    EXPECT_GE(replayed, static_cast<std::size_t>(crash_at));
    EXPECT_LE(replayed + simulated, total);
    EXPECT_GT(total, 0u);

    // Byte-identical archive, journal retired on commit.
    EXPECT_EQ(read_file(out), ref_bytes);
    EXPECT_FALSE(file_exists(journal));

    // The supervisor salvaged the victim's ring on reap: a post-mortem
    // exists and names the collect that was in flight when it died.
    const std::string post_mortem =
        fleet.supervisor().post_mortem_path_of(owner);
    const MonoClock::TimePoint pm0 = MonoClock::now();
    while (!file_exists(post_mortem) && MonoClock::seconds_since(pm0) < 10.0)
      std::this_thread::sleep_for(5ms);
    ASSERT_TRUE(file_exists(post_mortem)) << post_mortem;
    const std::string forensics = read_file(post_mortem);
    EXPECT_NE(forensics.find("killed by signal 9"), std::string::npos)
        << forensics;
    EXPECT_NE(forensics.find("in-flight: id=1 op=collect"), std::string::npos)
        << forensics;
    fleet.stop();
    ::unlink(out.c_str());
    ::unlink(post_mortem.c_str());
  }
  ::unlink(ref_out.c_str());
}

}  // namespace
}  // namespace scaltool
