// Fault-injection and resilience tests: the seeded injector itself, the
// engine's retry/quarantine machinery, graceful assembly of partial
// matrices, and the end-to-end acceptance drill — a campaign under 20%
// transient faults plus counter perturbation whose analysis stays within
// a few percent of the fault-free truth.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "cli/cli.hpp"
#include "common/check.hpp"
#include "core/scaltool.hpp"
#include "engine/campaign.hpp"
#include "engine/fault_injector.hpp"
#include "engine/run_cache.hpp"
#include "runner/archive.hpp"
#include "runner/runner.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace scaltool {
namespace {

ExperimentRunner test_runner() {
  register_standard_workloads();
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  return runner;
}

const std::vector<int> kProcs{1, 2, 4};

std::size_t test_s0(const ExperimentRunner& runner) {
  return 10 * runner.base_config().l2.size_bytes;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void expect_records_eq(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.dataset_bytes, b.dataset_bytes);
  EXPECT_EQ(a.num_procs, b.num_procs);
  EXPECT_DOUBLE_EQ(a.metrics.cpi, b.metrics.cpi);
  EXPECT_DOUBLE_EQ(a.metrics.h2, b.metrics.h2);
  EXPECT_DOUBLE_EQ(a.metrics.hm, b.metrics.hm);
  EXPECT_DOUBLE_EQ(a.execution_cycles, b.execution_cycles);
}

void expect_inputs_eq(const ScalToolInputs& a, const ScalToolInputs& b) {
  ASSERT_EQ(a.base_runs.size(), b.base_runs.size());
  ASSERT_EQ(a.uni_runs.size(), b.uni_runs.size());
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (std::size_t i = 0; i < a.base_runs.size(); ++i)
    expect_records_eq(a.base_runs[i], b.base_runs[i]);
  for (std::size_t i = 0; i < a.uni_runs.size(); ++i)
    expect_records_eq(a.uni_runs[i], b.uni_runs[i]);
  for (std::size_t i = 0; i < a.kernels.size(); ++i) {
    expect_records_eq(a.kernels[i].sync_kernel, b.kernels[i].sync_kernel);
    expect_records_eq(a.kernels[i].spin_kernel, b.kernels[i].spin_kernel);
  }
}

// ---- FaultPlan parsing ---------------------------------------------------

TEST(FaultPlan, DefaultIsDisabled) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(FaultPlan::parse("").enabled());
  EXPECT_FALSE(FaultPlan::parse("seed=99").enabled());
}

TEST(FaultPlan, ParsesEveryKey) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7,transient=0.2,permanent=0.05,stall=0.1,stall-ms=3,"
      "perturb=0.5,perturb-mag=0.01,drop=0.25,cache-corrupt=0.75,"
      "target=spin,target-procs=4,target-bytes=1024");
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.transient_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan.permanent_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan.stall_rate, 0.1);
  EXPECT_EQ(plan.stall_ms, 3);
  EXPECT_DOUBLE_EQ(plan.perturb_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan.perturb_magnitude, 0.01);
  EXPECT_DOUBLE_EQ(plan.drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.cache_corrupt_rate, 0.75);
  EXPECT_EQ(plan.target, "spin");
  EXPECT_EQ(plan.target_procs, 4);
  EXPECT_EQ(plan.target_bytes, 1024u);
  EXPECT_NE(plan.describe().find("transient=0.2"), std::string::npos);
}

TEST(FaultPlan, RejectsGarbage) {
  EXPECT_THROW(FaultPlan::parse("bogus=1"), CheckError);
  EXPECT_THROW(FaultPlan::parse("transient=1.5"), CheckError);
  EXPECT_THROW(FaultPlan::parse("transient=-0.1"), CheckError);
  EXPECT_THROW(FaultPlan::parse("transient=abc"), CheckError);
  EXPECT_THROW(FaultPlan::parse("noequals"), CheckError);
  // Integer fields must reject non-numbers, trailing garbage, and signs —
  // as CheckError with the offending key, not a raw std:: exception.
  EXPECT_THROW(FaultPlan::parse("seed=abc"), CheckError);
  EXPECT_THROW(FaultPlan::parse("seed=12xy"), CheckError);
  EXPECT_THROW(FaultPlan::parse("seed=-1"), CheckError);
  EXPECT_THROW(FaultPlan::parse("seed="), CheckError);
  EXPECT_THROW(FaultPlan::parse("stall-ms=abc"), CheckError);
  EXPECT_THROW(FaultPlan::parse("stall-ms=-5"), CheckError);
  EXPECT_THROW(FaultPlan::parse("target-procs=4x"), CheckError);
  EXPECT_THROW(FaultPlan::parse("target-bytes=1e3"), CheckError);
}

TEST(FaultInjector, DecisionsArePureInTheirInputs) {
  FaultPlan plan;
  plan.seed = 11;
  plan.transient_rate = 0.5;
  plan.permanent_rate = 0.3;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  for (std::uint64_t key = 1; key <= 64; ++key) {
    EXPECT_EQ(a.permanent_fault(key), b.permanent_fault(key));
    for (int attempt = 0; attempt < 4; ++attempt)
      EXPECT_EQ(a.transient_fault(key, attempt),
                b.transient_fault(key, attempt));
  }
  // A different seed must make different decisions somewhere.
  plan.seed = 12;
  const FaultInjector c(plan);
  bool any_diff = false;
  for (std::uint64_t key = 1; key <= 64 && !any_diff; ++key)
    any_diff = a.permanent_fault(key) != c.permanent_fault(key);
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, PermanentFaultTalliesOncePerJob) {
  FaultPlan plan;
  plan.permanent_rate = 1.0;
  const FaultInjector inj(plan);
  // The engine queries once per attempt; only attempt 0 may tally, so a
  // retried permanent fault still counts as one injected fault.
  for (int attempt = 0; attempt < 4; ++attempt)
    EXPECT_TRUE(inj.permanent_fault(7, attempt));
  EXPECT_EQ(inj.counts().permanent, 1u);
}

TEST(FaultInjector, TargetFilterMatches) {
  FaultPlan plan;
  plan.permanent_rate = 1.0;
  plan.target = "spin";
  plan.target_procs = 4;
  const FaultInjector inj(plan);
  EXPECT_TRUE(inj.applies_to({"spin_kernel", 1_KiB, 4, false}));
  EXPECT_FALSE(inj.applies_to({"spin_kernel", 1_KiB, 2, false}));
  EXPECT_FALSE(inj.applies_to({"sync_kernel", 1_KiB, 4, false}));
}

// ---- Retry accounting against an oracle ----------------------------------

// The engine's decisions must match a fresh injector queried with the same
// keys: the test recomputes every job's fate independently and compares
// the attempt/retry/quarantine tallies exactly.
TEST(FaultyEngine, RetryAccountingMatchesInjectorOracle) {
  const ExperimentRunner runner = test_runner();
  const MatrixPlan plan = runner.plan_matrix("t3dheat", test_s0(runner),
                                             kProcs);
  FaultPlan faults;
  faults.seed = 9;
  faults.transient_rate = 0.5;
  CampaignOptions options;
  options.jobs = 4;
  options.retries = 6;
  options.keep_going = true;
  options.faults = faults;
  CampaignEngine engine(runner, options);
  (void)engine.execute(plan);

  const FaultInjector oracle(faults);
  std::size_t exp_attempts = 0, exp_retries = 0, exp_quarantined = 0;
  for (const RunSpec& spec : plan.jobs) {
    const std::uint64_t key =
        job_key_hash(spec, runner.base_config(), runner.iterations);
    int attempts = 0;
    bool ok = false;
    for (int a = 0; a < options.retries + 1; ++a) {
      ++attempts;
      if (!oracle.transient_fault(key, a)) {
        ok = true;
        break;
      }
    }
    exp_attempts += static_cast<std::size_t>(attempts);
    exp_retries += static_cast<std::size_t>(attempts - 1);
    if (!ok) ++exp_quarantined;
  }
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.attempts, exp_attempts);
  EXPECT_EQ(stats.retries, exp_retries);
  EXPECT_EQ(stats.jobs_quarantined, exp_quarantined);
  EXPECT_EQ(engine.quarantined().size(), exp_quarantined);
  EXPECT_GT(stats.retries, 0u);  // rate 0.5 must have bitten somewhere
  EXPECT_GT(stats.faults_injected, 0u);
}

TEST(FaultyEngine, WithoutKeepGoingAPermanentFaultAborts) {
  const ExperimentRunner runner = test_runner();
  FaultPlan faults;
  faults.permanent_rate = 1.0;
  faults.target = "spin_kernel";
  faults.target_procs = 4;
  CampaignOptions options;
  options.retries = 2;
  options.faults = faults;
  CampaignEngine engine(runner, options);
  const MatrixPlan plan = runner.plan_matrix("t3dheat", test_s0(runner),
                                             kProcs);
  EXPECT_THROW(engine.execute(plan), CheckError);
  EXPECT_EQ(engine.stats().jobs_failed, 1u);
}

// ---- Determinism across worker counts ------------------------------------

TEST(FaultyEngine, FaultyCampaignIsIdenticalAcrossWorkerCounts) {
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  FaultPlan faults;
  faults.seed = 21;
  faults.transient_rate = 0.3;
  faults.perturb_rate = 0.3;
  CampaignOptions serial;
  serial.jobs = 1;
  serial.retries = 4;
  serial.keep_going = true;
  serial.faults = faults;
  CampaignOptions wide = serial;
  wide.jobs = 8;

  CampaignEngine a(runner, serial);
  CampaignEngine b(runner, wide);
  const ScalToolInputs ia = a.collect("t3dheat", s0, kProcs);
  const ScalToolInputs ib = b.collect("t3dheat", s0, kProcs);
  expect_inputs_eq(ia, ib);
  EXPECT_EQ(ia.notes, ib.notes);
  EXPECT_EQ(a.stats().attempts, b.stats().attempts);
  EXPECT_EQ(a.stats().retries, b.stats().retries);
  EXPECT_EQ(a.stats().jobs_quarantined, b.stats().jobs_quarantined);
  EXPECT_EQ(a.stats().faults_injected, b.stats().faults_injected);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_GT(a.stats().faults_injected, 0u);
}

// ---- Targeted quarantine and kernel substitution --------------------------

TEST(FaultyEngine, QuarantinedKernelIsSubstitutedFromNearestSize) {
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  FaultPlan faults;
  faults.permanent_rate = 1.0;
  faults.target = "spin_kernel";
  faults.target_procs = 4;
  CampaignOptions options;
  options.jobs = 2;
  options.retries = 1;
  options.keep_going = true;
  options.faults = faults;
  CampaignEngine engine(runner, options);
  const ScalToolInputs degraded = engine.collect("t3dheat", s0, kProcs);

  ASSERT_EQ(engine.quarantined().size(), 1u);
  EXPECT_EQ(engine.quarantined().front().spec.workload, "spin_kernel");
  EXPECT_EQ(engine.quarantined().front().spec.num_procs, 4);
  EXPECT_EQ(engine.quarantined().front().attempts, 2);
  EXPECT_EQ(engine.stats().jobs_quarantined, 1u);
  EXPECT_NEAR(engine.stats().completed_fraction(),
              1.0 - 1.0 / static_cast<double>(engine.stats().jobs_total),
              1e-12);

  // The kernel table is still complete: n=4 borrowed the n=2 spin record.
  const ScalToolInputs clean = test_runner().collect("t3dheat", s0, kProcs);
  ASSERT_EQ(degraded.kernels.size(), clean.kernels.size());
  const KernelMeasurement& k4 = degraded.kernel(4);
  EXPECT_EQ(k4.spin_kernel.num_procs, 4);  // re-labelled for validate()
  EXPECT_DOUBLE_EQ(k4.spin_kernel.metrics.cpi,
                   clean.kernel(2).spin_kernel.metrics.cpi);
  expect_records_eq(k4.sync_kernel, clean.kernel(4).sync_kernel);

  // The repair is reported, and analysis still succeeds end to end.
  bool noted_quarantine = false, noted_substitution = false;
  for (const std::string& note : degraded.notes) {
    if (note.find("quarantined") != std::string::npos)
      noted_quarantine = true;
    if (note.find("spin kernel at n=4 substituted from n=2") !=
        std::string::npos)
      noted_substitution = true;
  }
  EXPECT_TRUE(noted_quarantine);
  EXPECT_TRUE(noted_substitution);
  const ScalabilityReport report = analyze(degraded);
  bool report_says_degraded = false;
  for (const std::string& note : report.notes)
    if (note.find("substituted") != std::string::npos)
      report_says_degraded = true;
  EXPECT_TRUE(report_says_degraded);
}

// ---- Partial assembly unit tests ------------------------------------------

struct PartialFixture {
  ExperimentRunner runner = test_runner();
  MatrixPlan plan;
  std::vector<JobOutcome> outcomes;
  std::vector<bool> available;

  PartialFixture() {
    plan = runner.plan_matrix("t3dheat", test_s0(runner), kProcs);
    CampaignEngine engine(runner, {});
    outcomes = engine.execute(plan);
    available.assign(plan.jobs.size(), true);
  }
};

TEST(PartialAssembly, FullAvailabilityMatchesAssembleMatrix) {
  PartialFixture fx;
  DegradedAssembly deg;
  const ScalToolInputs partial =
      assemble_matrix_partial(fx.plan, fx.outcomes, fx.available, &deg);
  const ScalToolInputs full = assemble_matrix(fx.plan, fx.outcomes);
  expect_inputs_eq(full, partial);
  EXPECT_FALSE(deg.degraded());
  EXPECT_TRUE(partial.notes.empty());
}

TEST(PartialAssembly, InteriorUniPointIsInterpolated) {
  PartialFixture fx;
  ASSERT_GE(fx.plan.uni_jobs.size(), 3u);
  const std::size_t missing = fx.plan.uni_jobs[1];  // interior sweep point
  fx.available[missing] = false;
  DegradedAssembly deg;
  const ScalToolInputs partial =
      assemble_matrix_partial(fx.plan, fx.outcomes, fx.available, &deg);
  EXPECT_EQ(deg.interpolated_runs, 1u);
  ASSERT_EQ(deg.notes.size(), 1u);
  EXPECT_NE(deg.notes.front().find("interpolated"), std::string::npos);

  // The sweep halves sizes, so the rebuilt point sits at the log-midpoint
  // of its neighbours: rates are their arithmetic mean.
  const RunRecord& lo = fx.outcomes[fx.plan.uni_jobs[0]].record;
  const RunRecord& hi = fx.outcomes[fx.plan.uni_jobs[2]].record;
  const RunRecord& mid = partial.uni_runs[1];
  EXPECT_EQ(mid.dataset_bytes, fx.plan.jobs[missing].dataset_bytes);
  EXPECT_NEAR(mid.metrics.cpi, 0.5 * (lo.metrics.cpi + hi.metrics.cpi),
              1e-9);
  EXPECT_NEAR(mid.metrics.h2, 0.5 * (lo.metrics.h2 + hi.metrics.h2), 1e-9);
  EXPECT_NEAR(mid.metrics.hm, 0.5 * (lo.metrics.hm + hi.metrics.hm), 1e-9);
  // The rest of the matrix is untouched and the result still validates.
  EXPECT_EQ(partial.uni_runs.size(), fx.plan.uni_jobs.size());
  EXPECT_NO_THROW(partial.validate());
}

TEST(PartialAssembly, ConsecutiveMissingPointsBridgeTheGap) {
  PartialFixture fx;
  ASSERT_GE(fx.plan.uni_jobs.size(), 4u);
  fx.available[fx.plan.uni_jobs[1]] = false;
  fx.available[fx.plan.uni_jobs[2]] = false;
  DegradedAssembly deg;
  const ScalToolInputs partial =
      assemble_matrix_partial(fx.plan, fx.outcomes, fx.available, &deg);
  EXPECT_EQ(deg.interpolated_runs, 2u);
  // Both rebuilt points interpolate across the same surviving bracket.
  const RunRecord& lo = fx.outcomes[fx.plan.uni_jobs[0]].record;
  const RunRecord& hi = fx.outcomes[fx.plan.uni_jobs[3]].record;
  EXPECT_GT(partial.uni_runs[1].metrics.cpi,
            std::min(lo.metrics.cpi, hi.metrics.cpi) - 1e-9);
  EXPECT_LT(partial.uni_runs[2].metrics.cpi,
            std::max(lo.metrics.cpi, hi.metrics.cpi) + 1e-9);
}

TEST(PartialAssembly, MissingBaseRunIsAHardError) {
  PartialFixture fx;
  fx.available[fx.plan.base_jobs[1]] = false;  // the n=2 base run
  try {
    assemble_matrix_partial(fx.plan, fx.outcomes, fx.available);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("base run"), std::string::npos) << what;
    EXPECT_NE(what.find("n=2"), std::string::npos) << what;
    EXPECT_NE(what.find("unrecoverable"), std::string::npos) << what;
  }
}

TEST(PartialAssembly, MissingAnchorIsAHardError) {
  PartialFixture fx;
  fx.available[fx.plan.uni_jobs.back()] = false;
  try {
    assemble_matrix_partial(fx.plan, fx.outcomes, fx.available);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("pi0 anchor"), std::string::npos)
        << e.what();
  }
}

TEST(PartialAssembly, MissingLargestCalibrationPointIsDropped) {
  // With s0 = 4xL2 the calibration schedule appends a 6xL2 point, so the
  // largest sweep point is *not* a base run and can be quarantined. It has
  // no larger surviving neighbour to interpolate from; the assembly must
  // drop it (and say so) rather than read out of bounds.
  ExperimentRunner runner = test_runner();
  const std::size_t s0 = 4 * runner.base_config().l2.size_bytes;
  const MatrixPlan plan = runner.plan_matrix("t3dheat", s0, kProcs);
  ASSERT_GT(plan.jobs[plan.uni_jobs.front()].dataset_bytes, s0);
  CampaignEngine engine(runner, {});
  const std::vector<JobOutcome> outcomes = engine.execute(plan);
  std::vector<bool> available(plan.jobs.size(), true);
  available[plan.uni_jobs.front()] = false;

  DegradedAssembly deg;
  const ScalToolInputs partial =
      assemble_matrix_partial(plan, outcomes, available, &deg);
  EXPECT_EQ(deg.dropped_points, 1u);
  EXPECT_EQ(deg.interpolated_runs, 0u);
  EXPECT_TRUE(deg.degraded());
  ASSERT_EQ(deg.notes.size(), 1u);
  EXPECT_NE(deg.notes.front().find("dropped"), std::string::npos);
  // The sweep shrinks by exactly the lost point; the survivor set still
  // starts at s0 and validates end to end.
  EXPECT_EQ(partial.uni_runs.size(), plan.uni_jobs.size() - 1);
  EXPECT_EQ(partial.uni_runs.front().dataset_bytes, s0);
  EXPECT_NO_THROW(partial.validate());
  EXPECT_NO_THROW(analyze(partial));
}

TEST(PartialAssembly, AllKernelsOfOneKindLostIsAHardError) {
  PartialFixture fx;
  for (const MatrixPlan::KernelJobs& kj : fx.plan.kernel_jobs)
    fx.available[kj.spin_job] = false;
  try {
    assemble_matrix_partial(fx.plan, fx.outcomes, fx.available);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("spin"), std::string::npos)
        << e.what();
  }
}

// ---- Robust fit under replicates ------------------------------------------

TEST(RobustModel, ReplicateMedianShrugsOffOnePerturbedRun) {
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  const ScalToolInputs clean = runner.collect("t3dheat", s0, kProcs);
  const CpiModel reference = estimate_cpi_model(clean);

  // Replicate every L2-overflowing triplet three times and wreck one
  // replica's CPI: the median aggregation must ignore it completely.
  ScalToolInputs replicated = clean;
  std::vector<RunRecord> uni;
  for (const RunRecord& r : clean.uni_runs) {
    uni.push_back(r);
    if (static_cast<double>(r.dataset_bytes) > 2.0 * clean.l2_bytes) {
      RunRecord bad = r;
      bad.metrics.cpi *= 3.0;
      uni.push_back(bad);
      uni.push_back(r);
    }
  }
  replicated.uni_runs = std::move(uni);
  CpiModelOptions options;
  options.robust = true;
  const CpiModel robust = estimate_cpi_model(replicated, options);
  EXPECT_NEAR(robust.t2, reference.t2, 1e-9);
  EXPECT_NEAR(robust.tm1, reference.tm1, 1e-9);
  EXPECT_NEAR(robust.pi0, reference.pi0, 1e-9);
  bool noted = false;
  for (const std::string& note : robust.notes)
    if (note.find("aggregated 3 replicate triplets") != std::string::npos)
      noted = true;
  EXPECT_TRUE(noted);
}

// ---- NOTE records in archives ---------------------------------------------

TEST(ArchiveNotes, RoundTripAndSanitization) {
  const ExperimentRunner runner = test_runner();
  ScalToolInputs inputs = runner.collect("t3dheat", test_s0(runner), kProcs);
  inputs.notes = {"plain note", "pipe | and\nnewline"};
  std::ostringstream os;
  write_inputs(inputs, os);
  std::istringstream is(os.str());
  const ScalToolInputs back = read_inputs(is);
  ASSERT_EQ(back.notes.size(), 2u);
  EXPECT_EQ(back.notes[0], "plain note");
  EXPECT_EQ(back.notes[1], "pipe | and newline");
}

TEST(ArchiveNotes, AbsentNotesLeaveTheArchiveByteIdentical) {
  const ExperimentRunner runner = test_runner();
  const ScalToolInputs inputs =
      runner.collect("t3dheat", test_s0(runner), kProcs);
  std::ostringstream a, b;
  write_inputs(inputs, a);
  ScalToolInputs copy = inputs;
  copy.notes.clear();
  write_inputs(copy, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str().find("NOTE|"), std::string::npos);
}

// ---- Cache corruption recovery --------------------------------------------

TEST(FaultyEngine, InjectedCacheRotIsRecoveredOnTheWarmRun) {
  const std::string path = "/tmp/scaltool_fault_cache_rot_test.txt";
  std::remove(path.c_str());
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  FaultPlan faults;
  faults.cache_corrupt_rate = 1.0;  // rot every saved entry
  CampaignOptions options;
  options.jobs = 2;
  options.cache_path = path;
  options.faults = faults;

  CampaignEngine cold(runner, options);
  const ScalToolInputs first = cold.collect("t3dheat", s0, kProcs);

  // The rot happened after save: the published file exists but its ENTRY
  // payloads are garbled. A warm campaign must recover by re-running.
  EXPECT_NE(slurp(path).find('#'), std::string::npos);
  CampaignEngine warm(runner, options);
  const ScalToolInputs second = warm.collect("t3dheat", s0, kProcs);
  expect_inputs_eq(first, second);
  EXPECT_EQ(warm.stats().jobs_run + warm.stats().jobs_cached,
            warm.stats().jobs_total);
  EXPECT_GT(warm.stats().jobs_run, 0u);  // at least one entry was lost
  EXPECT_EQ(warm.stats().cache_recovery_events,
            warm.stats().cache_entries_corrupt);
}

// ---- Byte-identity with faults disabled -----------------------------------

TEST(FaultyEngine, ResilienceOptionsAloneKeepArchivesByteIdentical) {
  const std::string serial_path = "/tmp/scaltool_fault_serial_archive.txt";
  const std::string engine_path = "/tmp/scaltool_fault_engine_archive.txt";
  std::ostringstream os;
  ASSERT_EQ(cli::run_command({"collect", "t3dheat", "--size=10xL2",
                              "--max-procs=4", "--iters=2", "--jobs=1",
                              "--out=" + serial_path},
                             os),
            0);
  // Retries + keep-going engaged, but no fault plan: nothing ever fails,
  // so the archive must be byte-identical to the serial baseline.
  ASSERT_EQ(cli::run_command({"collect", "t3dheat", "--size=10xL2",
                              "--max-procs=4", "--iters=2", "--jobs=8",
                              "--retries=3", "--keep-going",
                              "--out=" + engine_path},
                             os),
            0);
  const std::string serial = slurp(serial_path);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, slurp(engine_path));
  std::remove(serial_path.c_str());
  std::remove(engine_path.c_str());
}

// ---- CLI exit codes --------------------------------------------------------

TEST(FaultyCli, DegradedCollectExitsThreeAndReportsRepairs) {
  const std::string out = "/tmp/scaltool_fault_degraded_archive.txt";
  std::remove(out.c_str());
  std::ostringstream os;
  const int rc = cli::run_command(
      {"collect", "t3dheat", "--size=10xL2", "--max-procs=4", "--iters=2",
       "--jobs=2", "--retries=1", "--keep-going",
       "--faults=permanent=1,target=spin_kernel,target-procs=4",
       "--out=" + out},
      os);
  EXPECT_EQ(rc, 3);
  EXPECT_NE(os.str().find("degraded:"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("quarantined"), std::string::npos) << os.str();

  // The archive carries the provenance, so analyzing it is degraded too —
  // and the report lists the repairs.
  std::ostringstream analyze_os;
  EXPECT_EQ(cli::run_command({"analyze", out, "--iters=2"}, analyze_os), 3);
  EXPECT_NE(analyze_os.str().find("substituted"), std::string::npos)
      << analyze_os.str();
  std::remove(out.c_str());
}

TEST(FaultyCli, HardFailureExitsOne) {
  std::ostringstream os;
  const int rc = cli::run_command(
      {"collect", "t3dheat", "--size=10xL2", "--max-procs=2", "--iters=2",
       "--retries=1", "--keep-going",
       "--faults=permanent=1,target=t3dheat,target-procs=2",
       "--out=/tmp/scaltool_fault_never_written.txt"},
      os);
  EXPECT_EQ(rc, 1);  // a lost base run cannot be repaired
  EXPECT_NE(os.str().find("unrecoverable"), std::string::npos) << os.str();
}

TEST(FaultyCli, HelpDocumentsResilienceFlagsAndExitCodes) {
  std::ostringstream os;
  cli::print_help(os);
  for (const char* needle :
       {"--retries", "--keep-going", "--faults", "--robust-fit",
        "--backoff-ms", "exit codes", "degraded"})
    EXPECT_NE(os.str().find(needle), std::string::npos) << needle;
}

// ---- Acceptance drill ------------------------------------------------------

// ISSUE acceptance: seeded 20% transient fault rate plus 5% perturbation on
// t3dheat; collection with keep-going and 3 retries completes, and the
// analyzed CPI breakdown differs from the fault-free analysis by < 5%.
TEST(FaultAcceptance, NoisyCampaignStaysWithinFivePercent) {
  const ExperimentRunner runner = test_runner();
  const std::size_t s0 = test_s0(runner);
  const ScalToolInputs clean = runner.collect("t3dheat", s0, kProcs);

  FaultPlan faults;
  faults.seed = 42;
  faults.transient_rate = 0.2;
  faults.perturb_rate = 0.05;
  CampaignOptions options;
  options.jobs = 4;
  options.retries = 3;
  options.keep_going = true;
  options.faults = faults;
  CampaignEngine engine(runner, options);
  const ScalToolInputs noisy = engine.collect("t3dheat", s0, kProcs);
  EXPECT_GT(engine.stats().faults_injected, 0u);

  AnalyzeOptions robust;
  robust.cpi.robust = true;
  const ScalabilityReport truth = analyze(clean);
  const ScalabilityReport report = analyze(noisy, robust);
  ASSERT_EQ(report.points.size(), truth.points.size());
  const auto within = [](double got, double want, const char* what, int n) {
    const double rel = std::abs(got - want) / std::max(std::abs(want), 1e-12);
    EXPECT_LT(rel, 0.05) << what << " at n=" << n << ": " << got << " vs "
                         << want;
  };
  for (std::size_t i = 0; i < truth.points.size(); ++i) {
    const BottleneckPoint& t = truth.points[i];
    const BottleneckPoint& p = report.points[i];
    within(p.cpi_base, t.cpi_base, "cpi_base", t.n);
    within(p.base_cycles, t.base_cycles, "base_cycles", t.n);
    within(p.cycles_no_l2lim, t.cycles_no_l2lim, "cycles_no_l2lim", t.n);
    within(p.cycles_no_l2lim_no_mp, t.cycles_no_l2lim_no_mp,
           "cycles_no_l2lim_no_mp", t.n);
  }
}

// ---- Fault drills through the analysis service --------------------------

TEST(ServeFaults, ServiceDrillYieldsWellFormedErrorResponse) {
  serve::ServiceOptions options;
  options.faults = FaultPlan::parse("seed=7,permanent=1");
  serve::AnalysisService service(options);
  serve::Request req;
  req.op = "analyze";
  req.args = {"swim", "--size=2xL2", "--max-procs=4", "--iters=2"};
  const serve::Response r = service.call(std::move(req));
  EXPECT_EQ(r.status, serve::Status::kError);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(service.stats().errors, 1u);
  // A mid-request fault must still frame as one valid response line.
  const std::string line = serve::serialize_response(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const serve::Response back = serve::parse_response(line);
  EXPECT_EQ(back.status, serve::Status::kError);
  EXPECT_EQ(back.error, r.error);
}

TEST(ServeFaults, ServiceDrillWithRetriesStaysByteIdentical) {
  // The drill injects seeded transient faults under every served campaign;
  // with retries the runs recover to the exact fault-free values, so the
  // served bytes must still equal the plain one-shot CLI output.
  std::ostringstream cli_os;
  const int cli_rc = cli::run_command(
      {"analyze", "swim", "--size=2xL2", "--max-procs=4", "--iters=2"},
      cli_os);
  serve::ServiceOptions options;
  options.faults = FaultPlan::parse("seed=7,transient=0.3");
  options.retries = 6;
  serve::AnalysisService service(options);
  serve::Request req;
  req.op = "analyze";
  req.args = {"swim", "--size=2xL2", "--max-procs=4", "--iters=2"};
  const serve::Response r = service.call(std::move(req));
  EXPECT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.exit_code, cli_rc);
  EXPECT_EQ(r.output, cli_os.str());
}

TEST(ServeFaults, RequestLevelFaultArgsMatchCli) {
  // A request may carry its own --faults/--retries: it then runs its own
  // loud campaign exactly as the CLI would. The engine stats carry wall-
  // clock timing, so the comparison starts at the deterministic analysis
  // section; the fault journal ahead of it must exist on both sides.
  const std::vector<std::string> args = {
      "swim", "--size=2xL2", "--max-procs=4", "--iters=2",
      "--retries=4", "--keep-going", "--faults=seed=11,transient=0.4"};
  std::ostringstream cli_os;
  std::vector<std::string> argv = {"analyze"};
  argv.insert(argv.end(), args.begin(), args.end());
  const int cli_rc = cli::run_command(argv, cli_os);

  serve::AnalysisService service;
  serve::Request req;
  req.op = "analyze";
  req.args = args;
  const serve::Response r = service.call(std::move(req));
  EXPECT_EQ(r.exit_code, cli_rc);

  const std::string marker = "Scal-Tool model for";
  const std::size_t cli_at = cli_os.str().find(marker);
  const std::size_t served_at = r.output.find(marker);
  ASSERT_NE(cli_at, std::string::npos);
  ASSERT_NE(served_at, std::string::npos);
  EXPECT_EQ(r.output.substr(served_at), cli_os.str().substr(cli_at));
  EXPECT_NE(r.output.find("engine:"), std::string::npos);
  EXPECT_NE(cli_os.str().find("engine:"), std::string::npos);
}

}  // namespace
}  // namespace scaltool
