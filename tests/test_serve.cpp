// Unit tests: the analysis service — wire-protocol strictness, admission
// control and load shedding, deadlines, single-flight batching over the
// shared run cache, the LRU result cache, both transports, and the
// headline guarantee that a served analyze/whatif is byte-identical to
// the equivalent one-shot CLI run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "common/check.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/result_cache.hpp"
#include "serve/service.hpp"
#include "serve/transport.hpp"

namespace scaltool::serve {
namespace {

/// A small but real analysis: a handful of simulator runs, fast enough to
/// repeat in every test that needs a campaign behind the request.
const std::vector<std::string> kSmallAnalyze = {
    "swim", "--size=2xL2", "--max-procs=4", "--iters=2"};

Request make_request(std::string op, std::vector<std::string> args = {},
                     std::int64_t deadline_ms = 0) {
  Request req;
  req.op = std::move(op);
  req.args = std::move(args);
  req.deadline_ms = deadline_ms;
  return req;
}

int run_cli(const std::vector<std::string>& args, std::string* out) {
  std::ostringstream os;
  const int rc = cli::run_command(args, os);
  *out = os.str();
  return rc;
}

std::vector<std::string> analyze_argv() {
  std::vector<std::string> argv = {"analyze"};
  argv.insert(argv.end(), kSmallAnalyze.begin(), kSmallAnalyze.end());
  return argv;
}

// ---- Protocol -----------------------------------------------------------

TEST(Protocol, RequestRoundTrip) {
  Request req = make_request("analyze", {"swim", "--size=2xL2"}, 1500);
  req.id = obs::JsonValue(std::string("req-7"));
  const Request back = parse_request(serialize_request(req));
  EXPECT_EQ(back.op, "analyze");
  EXPECT_EQ(back.args, req.args);
  EXPECT_EQ(back.deadline_ms, 1500);
  EXPECT_EQ(back.id.as_string(), "req-7");
}

TEST(Protocol, ParseRejectsMalformedRequests) {
  EXPECT_THROW(parse_request("not json"), CheckError);
  EXPECT_THROW(parse_request("[1,2]"), CheckError);  // not an object
  EXPECT_THROW(parse_request("{\"op\":\"analyze\",\"surprise\":1}"),
               CheckError);  // unknown field
  EXPECT_THROW(parse_request("{\"op\":\"frobnicate\"}"), CheckError);
  EXPECT_THROW(parse_request("{\"args\":[\"x\"]}"), CheckError);  // no op
  EXPECT_THROW(parse_request("{\"op\":\"ping\",\"args\":[1]}"),
               CheckError);  // non-string arg
  EXPECT_THROW(parse_request("{\"op\":\"ping\",\"id\":[1]}"),
               CheckError);  // id must be null/number/string
  EXPECT_THROW(parse_request("{\"op\":\"ping\",\"deadline_ms\":-5}"),
               CheckError);
  EXPECT_THROW(parse_request("{\"op\":\"ping\",\"deadline_ms\":1.5}"),
               CheckError);
}

TEST(Protocol, ResponseRoundTripKeepsEveryField) {
  Response r;
  r.id = obs::JsonValue(3.0);
  r.status = Status::kError;
  r.exit_code = 1;
  r.cached = true;
  r.output = "line one\nline \"two\"\n";
  r.error = "boom";
  r.stats_json = "{\"accepted\":2}";
  const Response back = parse_response(serialize_response(r));
  EXPECT_EQ(back.id.as_number(), 3.0);
  EXPECT_EQ(back.status, Status::kError);
  EXPECT_EQ(back.exit_code, 1);
  EXPECT_TRUE(back.cached);
  EXPECT_EQ(back.output, r.output);
  EXPECT_EQ(back.error, "boom");
  EXPECT_EQ(back.stats_json, "{\"accepted\":2}");
}

TEST(Protocol, SerializedLinesStaySingleLine) {
  Response r;
  r.output = "a\nb\nc\n";
  const std::string line = serialize_response(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Protocol, RequestHashCacheabilityRules) {
  const Request cacheable = make_request("analyze", kSmallAnalyze);
  EXPECT_NE(request_hash(cacheable), 0u);
  EXPECT_EQ(request_hash(cacheable), request_hash(cacheable));

  Request other = cacheable;
  other.args.push_back("--sharing");
  EXPECT_NE(request_hash(other), request_hash(cacheable));

  // Side effects and server-state-dependent output are uncacheable.
  EXPECT_EQ(request_hash(make_request("collect", {"swim", "--out=x"})), 0u);
  EXPECT_EQ(request_hash(make_request("stats")), 0u);
  EXPECT_EQ(request_hash(make_request("ping")), 0u);
  EXPECT_EQ(request_hash(make_request("analyze", {"swim", "--jobs=2"})), 0u);
  EXPECT_EQ(request_hash(make_request("analyze", {"swim", "--obs"})), 0u);
}

TEST(Protocol, RequestHashStampsArchiveContent) {
  const std::string path =
      "/tmp/scaltool_hash_probe_" + std::to_string(::getpid()) + ".txt";
  { std::ofstream(path) << "version one\n"; }
  const std::uint64_t h1 =
      request_hash(make_request("analyze", {path, "--iters=2"}));
  { std::ofstream(path) << "version two, different bytes\n"; }
  const std::uint64_t h2 =
      request_hash(make_request("analyze", {path, "--iters=2"}));
  std::remove(path.c_str());
  EXPECT_NE(h1, 0u);
  EXPECT_NE(h2, 0u);
  EXPECT_NE(h1, h2);  // rewriting the target invalidates cached answers
}

TEST(Protocol, TraceFieldsRideTheWireButNotTheHash) {
  Request req = make_request("analyze", kSmallAnalyze);
  req.trace_id = "t-0123456789abcdef";
  req.parent_span = "fleet.request";
  const std::string line = serialize_request(req);
  const Request back = parse_request(line);
  EXPECT_EQ(back.trace_id, "t-0123456789abcdef");
  EXPECT_EQ(back.parent_span, "fleet.request");

  // Tracing is identity, not content: the same analysis under a different
  // trace id must hit the same cache entry.
  Request untraced = make_request("analyze", kSmallAnalyze);
  EXPECT_EQ(request_hash(req), request_hash(untraced));

  // Requests without the fields serialize without them (wire
  // compatibility with pre-tracing clients).
  EXPECT_EQ(serialize_request(untraced).find("trace_id"), std::string::npos);
}

TEST(Protocol, MetricsIsAKnownOp) {
  const Request req = parse_request("{\"op\":\"metrics\"}");
  EXPECT_EQ(req.op, "metrics");
  // Server-state-dependent: never cacheable.
  EXPECT_EQ(request_hash(req), 0u);
}

// ---- ResultCache --------------------------------------------------------

TEST(ResultCacheTest, LruEvictsOldestAndPromotesHits) {
  ResultCache cache(2);
  cache.insert(1, CachedResult{Status::kOk, 0, "one"});
  cache.insert(2, CachedResult{Status::kOk, 0, "two"});
  ASSERT_TRUE(cache.find(1).has_value());  // promotes 1 over 2
  cache.insert(3, CachedResult{Status::kOk, 0, "three"});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.find(2).has_value());  // 2 was least recently used
  EXPECT_TRUE(cache.find(1).has_value());
  EXPECT_EQ(cache.find(3)->output, "three");
  EXPECT_GE(cache.hits(), 3u);
  EXPECT_GE(cache.misses(), 1u);
}

TEST(ResultCacheTest, CapacityZeroDisablesAndKeyZeroIgnored) {
  ResultCache cache(0);
  cache.insert(1, CachedResult{Status::kOk, 0, "x"});
  EXPECT_FALSE(cache.find(1).has_value());
  ResultCache enabled(4);
  enabled.insert(0, CachedResult{Status::kOk, 0, "x"});
  EXPECT_EQ(enabled.size(), 0u);
}

// ---- RequestQueue -------------------------------------------------------

TEST(RequestQueueTest, FifoAndBoundedAdmission) {
  RequestQueue queue(2);
  QueuedRequest a;
  a.request = make_request("ping");
  QueuedRequest b;
  b.request = make_request("stats");
  QueuedRequest c;
  c.request = make_request("ping");
  EXPECT_TRUE(queue.push(std::move(a)));
  EXPECT_TRUE(queue.push(std::move(b)));
  EXPECT_FALSE(queue.push(std::move(c)));  // full: shed, never block
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.pop()->request.op, "ping");
  EXPECT_EQ(queue.pop()->request.op, "stats");
}

TEST(RequestQueueTest, CloseDrainsThenSignalsExit) {
  RequestQueue queue(4);
  QueuedRequest a;
  a.request = make_request("ping");
  EXPECT_TRUE(queue.push(std::move(a)));
  queue.close();
  QueuedRequest late;
  late.request = make_request("ping");
  EXPECT_FALSE(queue.push(std::move(late)));  // closed: no admission
  EXPECT_TRUE(queue.pop().has_value());       // seated work still drains
  EXPECT_FALSE(queue.pop().has_value());      // then the exit signal
}

// ---- Service: fast ops and error paths ----------------------------------

TEST(Service, PingAndStatsFastPaths) {
  AnalysisService service;
  const Response pong = service.call(make_request("ping"));
  EXPECT_EQ(pong.status, Status::kOk);
  EXPECT_EQ(pong.output, "pong\n");
  const Response stats = service.call(make_request("stats"));
  EXPECT_EQ(stats.status, Status::kOk);
  EXPECT_NE(stats.stats_json.find("\"accepted\":"), std::string::npos);
}

TEST(Service, ExecutionErrorYieldsWellFormedErrorResponse) {
  AnalysisService service;
  const Response r =
      service.call(make_request("analyze", {"no_such_app", "--iters=2"}));
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_FALSE(r.error.empty());
  // The envelope itself survives the trip through the wire format.
  const Response back = parse_response(serialize_response(r));
  EXPECT_EQ(back.status, Status::kError);
  EXPECT_EQ(back.error, r.error);
}

TEST(Service, MetricsVerbReturnsAParseableSnapshot) {
  // Counter publication is gated on the telemetry flag; the scrape path
  // always runs with it on (fleet --obs).
  obs::enable();
  Response r;
  {
    AnalysisService service;
    (void)service.call(make_request("ping"));
    r = service.call(make_request("metrics"));
  }
  obs::disable();
  EXPECT_EQ(r.status, Status::kOk);
  // The payload is one NDJSON-safe line and parses as a metrics snapshot.
  EXPECT_EQ(r.stats_json.find('\n'), std::string::npos);
  const obs::MetricsSnapshot snap = obs::parse_metrics_json(r.stats_json);
  EXPECT_GE(snap.counters.at("serve.accepted"), 1u);
  // The payload survives the wire round trip (the envelope re-serializes
  // embedded JSON, so compare parsed content, not bytes).
  const Response back = parse_response(serialize_response(r));
  const obs::MetricsSnapshot again = obs::parse_metrics_json(back.stats_json);
  EXPECT_EQ(again.counters, snap.counters);
  EXPECT_EQ(again.gauges, snap.gauges);
}

TEST(Service, SubmitAfterShutdownIsRejected) {
  AnalysisService service;
  service.shutdown();
  const Response r = service.call(make_request("ping"));
  EXPECT_EQ(r.status, Status::kShuttingDown);
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_EQ(service.stats().rejected_closed, 1u);
}

// ---- Service: byte-identity with the one-shot CLI -----------------------

TEST(Service, ServedAnalyzeMatchesCliByteForByte) {
  std::string expected;
  const int expected_rc = run_cli(analyze_argv(), &expected);

  AnalysisService service;
  const Response r = service.call(make_request("analyze", kSmallAnalyze));
  EXPECT_EQ(r.output, expected);
  EXPECT_EQ(r.exit_code, expected_rc);
  EXPECT_EQ(r.status, Status::kOk);
}

TEST(Service, ServedWhatifMatchesCliByteForByte) {
  const std::vector<std::string> args = {"swim", "--size=2xL2",
                                         "--max-procs=4", "--iters=2",
                                         "--l2x=2"};
  std::string expected;
  std::vector<std::string> argv = {"whatif"};
  argv.insert(argv.end(), args.begin(), args.end());
  const int expected_rc = run_cli(argv, &expected);

  AnalysisService service;
  const Response r = service.call(make_request("whatif", args));
  EXPECT_EQ(r.output, expected);
  EXPECT_EQ(r.exit_code, expected_rc);
}

TEST(Service, ConcurrentClientsAllGetIdenticalBytes) {
  std::string expected;
  run_cli(analyze_argv(), &expected);

  ServiceOptions options;
  options.workers = 4;
  options.result_cache_entries = 0;  // force every request to execute
  AnalysisService service(options);

  constexpr int kClients = 8;
  std::vector<std::future<Response>> futures;
  futures.reserve(kClients);
  for (int i = 0; i < kClients; ++i)
    futures.push_back(service.submit(make_request("analyze", kSmallAnalyze)));
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.output, expected);
  }

  // Batching: eight executions, one campaign's worth of simulator runs.
  const ServiceStats stats = service.stats();
  AnalysisService single;
  single.call(make_request("analyze", kSmallAnalyze));
  const std::uint64_t one_campaign = single.stats().simulator_runs;
  EXPECT_GT(one_campaign, 0u);
  EXPECT_EQ(stats.simulator_runs, one_campaign);
  EXPECT_GT(stats.cache_served_runs, 0u);  // followers replayed the cache
}

TEST(Service, AnalyzeThenWhatifShareTheSweep) {
  AnalysisService service;
  service.call(make_request("analyze", kSmallAnalyze));
  const std::uint64_t runs_after_analyze = service.stats().simulator_runs;
  std::vector<std::string> whatif_args = kSmallAnalyze;
  whatif_args.push_back("--l2x=2");
  const Response r = service.call(make_request("whatif", whatif_args));
  EXPECT_EQ(r.status, Status::kOk);
  // The whatif needs the same measurement matrix: zero new simulator runs.
  EXPECT_EQ(service.stats().simulator_runs, runs_after_analyze);
}

TEST(Service, ResultCacheServesRepeatVerbatim) {
  AnalysisService service;
  const Response first = service.call(make_request("analyze", kSmallAnalyze));
  const Response again = service.call(make_request("analyze", kSmallAnalyze));
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.output, first.output);
  EXPECT_EQ(service.stats().result_cache_hits, 1u);
}

// ---- Service: admission control, deadlines, drain -----------------------

TEST(Service, OverloadShedsWithExplicitResponses) {
  ServiceOptions options;
  options.workers = 1;
  options.max_queue = 1;
  AnalysisService service(options);

  // One request occupies the worker, one holds the only seat; the rest of
  // the flood must be shed without blocking.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 12; ++i)
    futures.push_back(service.submit(make_request("analyze", kSmallAnalyze)));
  int ok = 0;
  int shed = 0;
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    if (r.status == Status::kOverloaded) {
      ++shed;
      EXPECT_EQ(r.exit_code, 4);
      EXPECT_TRUE(r.output.empty());
    } else {
      EXPECT_EQ(r.status, Status::kOk);
      ++ok;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(service.stats().shed, static_cast<std::uint64_t>(shed));
}

TEST(Service, DeadlineInQueueReturnsDeadlineExceeded) {
  ServiceOptions options;
  options.workers = 1;
  AnalysisService service(options);
  // The first request occupies the single worker long enough for the
  // second one's 1 ms deadline to expire while it waits in the queue.
  std::future<Response> slow =
      service.submit(make_request("analyze", kSmallAnalyze));
  std::future<Response> doomed = service.submit(
      make_request("analyze", {"fft", "--size=2xL2", "--max-procs=4",
                               "--iters=2"},
                   1));
  const Response r = doomed.get();
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.exit_code, 5);
  EXPECT_EQ(slow.get().status, Status::kOk);
  EXPECT_EQ(service.stats().deadline_missed, 1u);
}

TEST(Service, DeadlineMidCampaignCancelsCooperatively) {
  AnalysisService service;
  // Big enough that the campaign cannot finish in 30 ms; the engine's
  // cancellation poll turns the deadline into a response, not a hang.
  const Response r = service.call(make_request(
      "analyze", {"t3dheat", "--size=10xL2", "--max-procs=16"}, 30));
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.exit_code, 5);
}

TEST(Service, DrainLosesNoAcceptedRequest) {
  ServiceOptions options;
  options.workers = 2;
  AnalysisService service(options);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(service.submit(make_request("analyze", kSmallAnalyze)));
  service.shutdown();  // stop admitting, finish everything seated
  for (std::future<Response>& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_FALSE(r.output.empty());
  }
  EXPECT_EQ(service.stats().completed, 6u);
}

// ---- Transports ---------------------------------------------------------

TEST(Transport, ServeLinesAnswersInOrderAndSurvivesGarbage) {
  AnalysisService service;
  std::istringstream in(
      "{\"id\":1,\"op\":\"ping\"}\n"
      "this is not json\n"
      "\n"
      "{\"id\":3,\"op\":\"stats\"}\n");
  std::ostringstream out;
  serve_lines(in, out, service);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const Response first = parse_response(line);
  EXPECT_EQ(first.id.as_number(), 1.0);
  EXPECT_EQ(first.output, "pong\n");
  ASSERT_TRUE(std::getline(lines, line));
  const Response second = parse_response(line);
  EXPECT_EQ(second.status, Status::kError);  // the garbage line
  EXPECT_TRUE(second.id.is_null());
  ASSERT_TRUE(std::getline(lines, line));
  const Response third = parse_response(line);
  EXPECT_EQ(third.id.as_number(), 3.0);
  EXPECT_FALSE(third.stats_json.empty());
  EXPECT_FALSE(std::getline(lines, line));  // exactly three responses
}

TEST(Transport, SocketRoundTrip) {
  const std::string path =
      "/tmp/scaltool_test_" + std::to_string(::getpid()) + ".sock";
  AnalysisService service;
  {
    SocketServer server(service, path);
    Request req = make_request("ping");
    req.id = obs::JsonValue(std::string("sock-1"));
    const Response r = socket_call(path, req);
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.output, "pong\n");
    EXPECT_EQ(r.id.as_string(), "sock-1");
    const Response stats = socket_call(path, make_request("stats"));
    EXPECT_NE(stats.stats_json.find("\"accepted\":"), std::string::npos);
  }
  // The server cleaned up its socket on stop().
  EXPECT_THROW(socket_call(path, make_request("ping")), CheckError);
}

// ---- CLI integration ----------------------------------------------------

TEST(CliServe, RequestWithoutSocketRunsInProcess) {
  std::string out;
  EXPECT_EQ(run_cli({"request", "ping"}, &out), 0);
  EXPECT_EQ(out, "pong\n");
}

TEST(CliServe, RequestForwardsOpOptionsVerbatim) {
  std::string expected;
  const int expected_rc = run_cli(analyze_argv(), &expected);
  std::string out;
  const std::vector<std::string> op_argv = analyze_argv();
  std::vector<std::string> argv = {"request"};
  argv.insert(argv.end(), op_argv.begin(), op_argv.end());
  EXPECT_EQ(run_cli(argv, &out), expected_rc);
  EXPECT_EQ(out, expected);
}

TEST(CliServe, RequestValidatesItsOwnOptions) {
  std::string out;
  EXPECT_EQ(run_cli({"request", "--deadline-ms=abc", "ping"}, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_EQ(run_cli({"request"}, &out), 1);
  EXPECT_NE(out.find("usage: scaltool request"), std::string::npos);
}

TEST(CliServe, ServeRequiresATransport) {
  std::string out;
  EXPECT_EQ(run_cli({"serve"}, &out), 1);
  EXPECT_NE(out.find("--socket"), std::string::npos);
}

TEST(CliServe, VersionFlag) {
  std::string out;
  EXPECT_EQ(run_cli({"--version"}, &out), 0);
  EXPECT_EQ(out, "scaltool 0.9.0\n");
  EXPECT_EQ(run_cli({"help"}, &out), 0);
  EXPECT_NE(out.find("serve --socket"), std::string::npos);
  EXPECT_NE(out.find("fleet --socket"), std::string::npos);
  EXPECT_NE(out.find("4  unavailable"), std::string::npos);
  EXPECT_NE(out.find("7  fleet degraded"), std::string::npos);
}

}  // namespace
}  // namespace scaltool::serve
