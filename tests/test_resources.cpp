// Unit tests: Table 1 / Table 3 resource accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"
#include "core/resources.hpp"

namespace scaltool {
namespace {

TEST(Resources, PaperFormulasForN6) {
  // The paper's example: n = 6 (1..32 processors).
  const ResourceCost t = time_tool_cost(6);
  EXPECT_EQ(t.runs, 6);
  EXPECT_EQ(t.processors, 63);  // 2^6 − 1
  EXPECT_EQ(t.files, 6);

  const ResourceCost s = speedshop_cost(6);
  EXPECT_EQ(s.runs, 6);
  EXPECT_EQ(s.processors, 63);

  const ResourceCost existing = existing_tools_cost(6);
  EXPECT_EQ(existing.runs, 12);        // 2n
  EXPECT_EQ(existing.processors, 126); // 2^(n+1) − 2
  EXPECT_EQ(existing.files, 12);

  const ResourceCost ours = scal_tool_cost(6);
  EXPECT_EQ(ours.runs, 11);        // 2n − 1
  EXPECT_EQ(ours.processors, 68);  // 2^n + n − 2
  EXPECT_EQ(ours.files, 11);
}

TEST(Resources, PaperHeadlineAboutHalfTheProcessors) {
  const double ratio =
      static_cast<double>(scal_tool_cost(6).processors) /
      static_cast<double>(existing_tools_cost(6).processors);
  EXPECT_NEAR(ratio, 0.54, 0.02);  // "only about 50% of the processors"
}

TEST(Resources, GeneralN) {
  for (int n = 1; n <= 10; ++n) {
    EXPECT_EQ(existing_tools_cost(n).runs, 2 * n);
    EXPECT_EQ(scal_tool_cost(n).runs, 2 * n - 1);
    EXPECT_EQ(scal_tool_cost(n).processors, (1LL << n) + n - 2);
    // Scal-Tool always needs strictly fewer runs and, for n ≥ 2, fewer
    // processors.
    EXPECT_LT(scal_tool_cost(n).runs, existing_tools_cost(n).runs);
    if (n >= 2) {
      EXPECT_LT(scal_tool_cost(n).processors,
                existing_tools_cost(n).processors);
    }
  }
}

TEST(Resources, RejectsNonPositiveN) {
  EXPECT_THROW(time_tool_cost(0), CheckError);
  EXPECT_THROW(scal_tool_cost(-1), CheckError);
}

TEST(Resources, Table1HasFourRows) {
  const Table t = resource_table(6);
  EXPECT_EQ(t.num_rows(), 4u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("Scal-Tool"), std::string::npos);
  EXPECT_NE(text.find("speedshop"), std::string::npos);
}

TEST(Resources, RunMatrixMatchesTable3) {
  // s0 = 64 KiB, up to 8 processors: base runs (64,1),(64,2),(64,4),(64,8)
  // plus uniprocessor runs at 32, 16, 8 KiB → 2n − 1 = 7 runs.
  const auto entries = run_matrix(64_KiB, 8);
  EXPECT_EQ(entries.size(), 7u);
  auto has = [&](std::size_t s, int p) {
    return std::any_of(entries.begin(), entries.end(),
                       [&](const RunMatrixEntry& e) {
                         return e.dataset_bytes == s && e.num_procs == p;
                       });
  };
  EXPECT_TRUE(has(64_KiB, 1));
  EXPECT_TRUE(has(64_KiB, 8));
  EXPECT_TRUE(has(32_KiB, 1));
  EXPECT_TRUE(has(8_KiB, 1));
  EXPECT_FALSE(has(32_KiB, 2));
  EXPECT_FALSE(has(4_KiB, 1));
}

TEST(Resources, RunMatrixTableRenders) {
  const Table t = run_matrix_table(64_KiB, 8);
  EXPECT_EQ(t.num_rows(), 4u);  // sizes 64, 32, 16, 8 KiB
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("p=8"), std::string::npos);
}

}  // namespace
}  // namespace scaltool
