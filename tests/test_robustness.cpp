// Robustness tests: corrupted persistence inputs and report rendering
// content. The archive/trace readers parse attacker-ish input (files from
// other machines, other versions, truncated copies); they must reject
// garbage with CheckError — never crash, hang or silently accept.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "apps/apps.hpp"
#include "common/rng.hpp"
#include "engine/campaign.hpp"
#include "engine/run_cache.hpp"
#include "machine/dsm_machine.hpp"
#include "core/scaltool.hpp"
#include "runner/archive.hpp"
#include "runner/runner.hpp"
#include "trace/registry.hpp"
#include "trace/trace_io.hpp"

namespace scaltool {
namespace {

ScalToolInputs small_inputs() {
  ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
  runner.iterations = 2;
  const std::size_t s0 = 10 * runner.base_config().l2.size_bytes;
  return runner.collect("t3dheat", s0, std::vector<int>{1, 2});
}

// Property: randomly mutating one byte of a valid archive either still
// parses to *valid* inputs or throws CheckError/std::exception — never
// crashes and never yields a structure that fails validate().
class ArchiveFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchiveFuzzTest, SingleByteMutationsAreHandled) {
  static const std::string pristine = [] {
    std::ostringstream os;
    write_inputs(small_inputs(), os);
    return os.str();
  }();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL);
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = pristine;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng.next_below(256));
    std::istringstream is(mutated);
    try {
      const ScalToolInputs parsed = read_inputs(is);
      // If it parsed, it must be internally consistent.
      ASSERT_NO_THROW(parsed.validate());
    } catch (const std::exception&) {
      // Rejection is the expected outcome for most mutations.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveFuzzTest, ::testing::Range(1, 9));

class TraceFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TraceFuzzTest, SingleByteMutationsAreHandled) {
  static const std::string pristine = [] {
    register_standard_workloads();
    RecordingWorkload recorder(
        WorkloadRegistry::instance().create("swim"));
    DsmMachine machine(MachineConfig::origin2000_scaled(2));
    WorkloadParams params;
    params.dataset_bytes = 32_KiB;
    params.iterations = 1;
    machine.run(recorder, params);
    std::ostringstream os;
    write_trace(recorder.trace(), os);
    return os.str();
  }();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 11400714819323198485ULL);
  for (int trial = 0; trial < 25; ++trial) {
    std::string mutated = pristine;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng.next_below(256));
    std::istringstream is(mutated);
    try {
      const Trace parsed = read_trace(is);
      ASSERT_NO_THROW(parsed.validate());
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzzTest, ::testing::Range(1, 9));

// ---- Multi-byte corruption and truncation --------------------------------

// Harsher than the single-byte property: flip up to 16 bytes at once, or
// truncate the file mid-record. Same contract — parse to valid inputs or
// throw, never crash or accept garbage.
class ArchiveHeavyFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchiveHeavyFuzzTest, MultiByteCorruptionAndTruncationAreHandled) {
  static const std::string pristine = [] {
    std::ostringstream os;
    write_inputs(small_inputs(), os);
    return os.str();
  }();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL);
  for (int trial = 0; trial < 30; ++trial) {
    std::string mutated = pristine;
    if (trial % 3 == 0) {
      // Truncate at an arbitrary byte (possibly mid-line, mid-number).
      mutated.resize(1 + rng.next_below(mutated.size()));
    } else {
      const std::size_t flips = 2 + rng.next_below(15);
      for (std::size_t f = 0; f < flips; ++f)
        mutated[rng.next_below(mutated.size())] =
            static_cast<char>(rng.next_below(256));
    }
    std::istringstream is(mutated);
    try {
      const ScalToolInputs parsed = read_inputs(is);
      ASSERT_NO_THROW(parsed.validate());
    } catch (const std::exception&) {
      // Rejection is the expected outcome for most mutations.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveHeavyFuzzTest, ::testing::Range(1, 9));

// The run cache has a stronger contract than the archive reader: any
// corruption or truncation is tolerated at entry granularity — loading
// never throws, and every entry that does load is internally consistent.
class RunCacheFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RunCacheFuzzTest, CorruptionAndTruncationNeverAbortLoading) {
  static const std::string cache_path = [] {
    const std::string path = "/tmp/scaltool_runcache_fuzz_pristine.txt";
    std::remove(path.c_str());
    ExperimentRunner runner(MachineConfig::origin2000_scaled(1));
    runner.iterations = 2;
    const MatrixPlan plan = runner.plan_matrix(
        "t3dheat", 10 * runner.base_config().l2.size_bytes,
        std::vector<int>{1, 2});
    CampaignOptions options;
    options.cache_path = path;
    CampaignEngine engine(runner, options);
    (void)engine.execute(plan);
    return path;
  }();
  static const std::string pristine = [] {
    std::ifstream is(cache_path);
    std::stringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
  }();
  ASSERT_FALSE(pristine.empty());

  const std::string mutated_path = "/tmp/scaltool_runcache_fuzz_mut.txt";
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2862933555777941757ULL);
  for (int trial = 0; trial < 20; ++trial) {
    std::string mutated = pristine;
    if (trial % 3 == 0) {
      mutated.resize(1 + rng.next_below(mutated.size()));
    } else {
      const std::size_t flips = 2 + rng.next_below(15);
      for (std::size_t f = 0; f < flips; ++f)
        mutated[rng.next_below(mutated.size())] =
            static_cast<char>(rng.next_below(256));
    }
    {
      std::ofstream os(mutated_path, std::ios::trunc);
      os << mutated;
    }
    // Constructing the cache performs the tolerant load; it must never
    // throw, and the survivors must be sane.
    RunCache cache(mutated_path);
    EXPECT_LE(cache.size(), cache.loaded_entries());
  }
  std::remove(mutated_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunCacheFuzzTest, ::testing::Range(1, 9));

// ---- Report rendering content -------------------------------------------

TEST(ReportContent, BreakdownTableMatchesReportStruct) {
  const ScalToolInputs inputs = small_inputs();
  const ScalabilityReport report = analyze(inputs);
  const Table t = breakdown_table(report);
  EXPECT_EQ(t.num_rows(), report.points.size());
  const std::string csv = t.to_csv();
  // Spot-check the n=2 row against the struct, to 3 decimals.
  const BottleneckPoint& p = report.point(2);
  std::ostringstream expect;
  expect << "2," << Table::cell(p.base_cycles / 1e6, 3) << ","
         << Table::cell(p.cycles_no_l2lim / 1e6, 3);
  EXPECT_NE(csv.find(expect.str()), std::string::npos) << csv;
}

TEST(ReportContent, SpeedupTableFirstRowIsUnity) {
  const ScalToolInputs inputs = small_inputs();
  const std::string csv = speedup_table(inputs).to_csv();
  EXPECT_NE(csv.find("1,"), std::string::npos);
  EXPECT_NE(csv.find(",1.00\n"), std::string::npos);
}

TEST(ReportContent, ValidationTableHasOneRowPerPoint) {
  const ScalToolInputs inputs = small_inputs();
  const ScalabilityReport report = analyze(inputs);
  EXPECT_EQ(validation_table(report, inputs).num_rows(),
            report.points.size());
}

TEST(ReportContent, ModelSummaryNamesEveryParameter) {
  const ScalToolInputs inputs = small_inputs();
  const ScalabilityReport report = analyze(inputs);
  const std::string text = model_summary(report);
  for (const char* needle :
       {"pi0", "t2:", "tm(1):", "compulsory", "tm(n):"})
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(ReportContent, WhatIfTableReflectsParams) {
  const ScalToolInputs inputs = small_inputs();
  const ScalabilityReport report = analyze(inputs);
  WhatIfParams params;
  params.tm_scale = 0.5;
  const Table t = whatif_table(what_if(report, inputs, params), "demo");
  EXPECT_EQ(t.num_rows(), report.points.size());
  EXPECT_NE(t.title().find("demo"), std::string::npos);
}

}  // namespace
}  // namespace scaltool
