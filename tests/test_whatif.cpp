// What-if analysis tests (Section 2.6): identity reproduces the measured
// runs, parameter changes move predictions in the right direction, and the
// L2-scaling estimate tracks an actual re-run on a bigger cache.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/scaltool.hpp"
#include "runner/runner.hpp"

namespace scaltool {
namespace {

class WhatIfTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new ExperimentRunner(MachineConfig::origin2000_scaled(1));
    runner_->iterations = 3;
    const std::size_t l2 = runner_->base_config().l2.size_bytes;
    inputs_ = new ScalToolInputs(
        runner_->collect("t3dheat", 10 * l2, default_proc_counts(8)));
    report_ = new ScalabilityReport(analyze(*inputs_));
  }
  static void TearDownTestSuite() {
    delete runner_;
    delete inputs_;
    delete report_;
    runner_ = nullptr;
    inputs_ = nullptr;
    report_ = nullptr;
  }

  static const ExperimentRunner& runner() { return *runner_; }
  static const ScalToolInputs& inputs() { return *inputs_; }
  static const ScalabilityReport& report() { return *report_; }

 private:
  static ExperimentRunner* runner_;
  static ScalToolInputs* inputs_;
  static ScalabilityReport* report_;
};

ExperimentRunner* WhatIfTest::runner_ = nullptr;
ScalToolInputs* WhatIfTest::inputs_ = nullptr;
ScalabilityReport* WhatIfTest::report_ = nullptr;

TEST_F(WhatIfTest, IdentityReproducesBaseCycles) {
  const WhatIfParams params;
  ASSERT_TRUE(params.is_identity());
  const WhatIfResult r = what_if(report(), inputs(), params);
  for (const WhatIfPoint& p : r.points) {
    const BottleneckPoint& base = report().point(p.n);
    // tm(n) was backed out of Eq. 1 at exactly this point, so the identity
    // scenario must reproduce the measured cycles almost exactly.
    EXPECT_NEAR(p.cycles, base.base_cycles, 0.01 * base.base_cycles)
        << "n=" << p.n;
    EXPECT_NEAR(p.speed_ratio, 1.0, 0.01);
  }
}

TEST_F(WhatIfTest, FasterMemoryPredictsSpeedup) {
  WhatIfParams params;
  params.tm_scale = 0.5;
  const WhatIfResult r = what_if(report(), inputs(), params);
  for (const WhatIfPoint& p : r.points)
    EXPECT_GT(p.speed_ratio, 1.0) << "n=" << p.n;
}

TEST_F(WhatIfTest, SlowerL2PredictsSlowdown) {
  WhatIfParams params;
  params.t2_scale = 3.0;
  const WhatIfResult r = what_if(report(), inputs(), params);
  for (const WhatIfPoint& p : r.points)
    EXPECT_LT(p.speed_ratio, 1.0) << "n=" << p.n;
}

TEST_F(WhatIfTest, WiderIssuePredictsSpeedup) {
  WhatIfParams params;
  params.pi0_scale = 0.5;
  const WhatIfResult r = what_if(report(), inputs(), params);
  for (const WhatIfPoint& p : r.points)
    EXPECT_GT(p.speed_ratio, 1.0);
}

TEST_F(WhatIfTest, FasterSyncHelpsOnlyMultiprocessorRuns) {
  WhatIfParams params;
  params.tsyn_scale = 0.25;
  const WhatIfResult r = what_if(report(), inputs(), params);
  EXPECT_NEAR(r.point(1).speed_ratio, 1.0, 1e-6);
  EXPECT_GT(r.point(8).speed_ratio, 1.0);
}

TEST_F(WhatIfTest, BiggerL2ReducesPredictedMissRate) {
  WhatIfParams params;
  params.l2_scale_k = 4.0;
  const WhatIfResult r = what_if(report(), inputs(), params);
  // The paper calls this "a rough estimate": the uniprocessor component is
  // read off the sweep curve at s0/(n·k), whose compulsory weighting can
  // differ from the base run's, so allow a small absolute slack.
  for (const WhatIfPoint& p : r.points) {
    const double measured_missrate =
        1.0 - report().miss.l2hitr_meas.at(p.n);
    EXPECT_LE(p.l2_miss_rate, measured_missrate + 0.07) << "n=" << p.n;
  }
  // At n=1 conflict misses dominate and the prediction must show a large
  // reduction.
  EXPECT_LT(r.point(1).l2_miss_rate,
            0.8 * (1.0 - report().miss.l2hitr_meas.at(1)));
}

TEST_F(WhatIfTest, L2ScalingTracksActualRerun) {
  WhatIfParams params;
  params.l2_scale_k = 2.0;
  const WhatIfResult pred = what_if(report(), inputs(), params);

  MachineConfig big = runner().base_config();
  big.l2.size_bytes *= 2;
  ExperimentRunner big_runner(big);
  big_runner.iterations = 3;

  // The paper calls this a rough estimate; require the right direction and
  // the right ballpark at the uniprocessor point where conflicts dominate.
  const RunRecord rerun = big_runner.run("t3dheat", inputs().s0, 1);
  const double pred_cycles = pred.point(1).cycles;
  const double base_cycles = report().point(1).base_cycles;
  EXPECT_LT(rerun.metrics.cycles, base_cycles);  // bigger cache helps
  EXPECT_LT(pred_cycles, base_cycles);           // model agrees in direction
  EXPECT_NEAR(pred_cycles, rerun.metrics.cycles,
              0.35 * rerun.metrics.cycles);      // and in magnitude
}

TEST_F(WhatIfTest, NewSyncPrimitiveReplacesSyncCost) {
  WhatIfParams params;
  params.new_cpi_syn = report().point(8).cpi_syn * 0.25;
  const WhatIfResult r = what_if(report(), inputs(), params);
  EXPECT_GT(r.point(8).speed_ratio, 1.0);
}

TEST_F(WhatIfTest, RejectsInvalidParameters) {
  WhatIfParams params;
  params.l2_scale_k = 0.5;
  EXPECT_THROW(what_if(report(), inputs(), params), CheckError);
  params = {};
  params.tm_scale = 0.0;
  EXPECT_THROW(what_if(report(), inputs(), params), CheckError);
}

TEST_F(WhatIfTest, PointAccessorThrowsOnUnknownN) {
  const WhatIfResult r = what_if(report(), inputs(), WhatIfParams{});
  EXPECT_THROW(r.point(64), CheckError);
}

}  // namespace
}  // namespace scaltool
