// Cross-cutting property tests over EVERY bundled workload: accounting
// conservation laws, coherence invariants, determinism, and perfex/
// ground-truth consistency. Any new workload added to the registry is
// automatically covered.
#include <gtest/gtest.h>

#include <string>

#include "apps/apps.hpp"
#include "machine/dsm_machine.hpp"
#include "tools/speedshop.hpp"
#include "trace/registry.hpp"

namespace scaltool {
namespace {

struct Case {
  std::string app;
  int procs;
};

std::vector<Case> all_cases() {
  register_standard_workloads();
  std::vector<Case> cases;
  for (const std::string& app : WorkloadRegistry::instance().names())
    for (int procs : {1, 3, 8, 32})
      cases.push_back({app, procs});
  return cases;
}

RunResult run_case(const Case& c, DsmMachine** machine_out = nullptr) {
  static DsmMachine* machine = nullptr;  // recreated per call below
  delete machine;
  machine = new DsmMachine(MachineConfig::origin2000_scaled(c.procs));
  if (machine_out) *machine_out = machine;
  const auto w = WorkloadRegistry::instance().create(c.app);
  WorkloadParams params;
  params.dataset_bytes = 128_KiB;
  params.iterations = 2;
  return machine->run(*w, params);
}

class ConservationTest : public ::testing::TestWithParam<Case> {};

TEST_P(ConservationTest, CyclesAndInstructionsConserve) {
  const RunResult r = run_case(GetParam());
  const int n = r.num_procs;
  for (int p = 0; p < n; ++p) {
    const ProcGroundTruth& gt = r.truth.per_proc[p];
    const double cycles = r.counters.proc(p).get(EventId::kCycles);
    const double instr =
        r.counters.proc(p).get(EventId::kGraduatedInstructions);
    // Ground-truth attribution partitions the architectural counters.
    ASSERT_NEAR(gt.total_cycles(), cycles, 1e-6 * (1.0 + cycles));
    ASSERT_NEAR(gt.total_instr(), instr, 1e-6 * (1.0 + instr));
    // Nothing is negative.
    ASSERT_GE(gt.compute_cycles, 0.0);
    ASSERT_GE(gt.mem_stall_cycles, 0.0);
    ASSERT_GE(gt.sync_cycles, 0.0);
    ASSERT_GE(gt.spin_cycles, 0.0);
  }
  // All processors exit the final barrier together.
  const auto cycles = r.counters.per_proc_values(EventId::kCycles);
  for (double c : cycles) ASSERT_DOUBLE_EQ(c, cycles[0]);
}

TEST_P(ConservationTest, MissHierarchyIsConsistent) {
  const RunResult r = run_case(GetParam());
  const CounterSet agg = r.counters.aggregate();
  const double mem = agg.get(EventId::kGraduatedLoads) +
                     agg.get(EventId::kGraduatedStores);
  const double l1m = agg.get(EventId::kL1DMisses);
  const double l2m = agg.get(EventId::kL2Misses);
  ASSERT_LE(l2m, l1m + 1e-9);  // inclusion: every L2 miss missed L1
  ASSERT_LE(l1m, mem + 1e-9);
  // True classification partitions the L2 misses exactly.
  const ProcGroundTruth gt = r.truth.aggregate();
  ASSERT_NEAR(gt.compulsory_misses + gt.coherence_misses +
                  gt.conflict_misses,
              l2m, 1e-9);
  // Local + remote memory accesses = L2 misses.
  ASSERT_NEAR(agg.get(EventId::kLocalMemAccesses) +
                  agg.get(EventId::kRemoteMemAccesses),
              l2m, 1e-9);
}

TEST_P(ConservationTest, CoherenceInvariantsHold) {
  DsmMachine* machine = nullptr;
  run_case(GetParam(), &machine);
  ASSERT_NE(machine, nullptr);
  machine->validate_coherence();
}

TEST_P(ConservationTest, RunsAreDeterministic) {
  const RunResult a = run_case(GetParam());
  const RunResult b = run_case(GetParam());
  for (EventId ev : all_events())
    ASSERT_DOUBLE_EQ(a.counters.aggregate().get(ev),
                     b.counters.aggregate().get(ev))
        << event_name(ev);
  ASSERT_DOUBLE_EQ(a.execution_cycles, b.execution_cycles);
}

TEST_P(ConservationTest, SpeedshopPartitionsTheRun) {
  const RunResult r = run_case(GetParam());
  const SpeedshopProfile prof = speedshop_profile(r);
  ASSERT_NEAR(prof.total_cycles, r.accumulated_cycles,
              1e-6 * (1.0 + r.accumulated_cycles));
  if (r.num_procs == 1) {
    // Barriers are free on one processor; only explicit lock acquires may
    // leave synchronization time (an uncontended atomic still costs a
    // memory round trip), and there is nobody to wait for.
    ASSERT_DOUBLE_EQ(prof.wait_cycles, 0.0);
    if (r.counters.aggregate().get(EventId::kLockAcquires) == 0.0) {
      ASSERT_DOUBLE_EQ(prof.mp_cycles(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ConservationTest, ::testing::ValuesIn(all_cases()),
    [](const auto& info) {
      return info.param.app + "_p" + std::to_string(info.param.procs);
    });

}  // namespace
}  // namespace scaltool
