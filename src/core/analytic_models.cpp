#include "core/analytic_models.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "math/least_squares.hpp"

namespace scaltool {

double AmdahlFit::predict_time(int n) const {
  ST_CHECK(n >= 1);
  return t1 * (serial_fraction + (1.0 - serial_fraction) / n);
}

double AmdahlFit::predict_speedup(int n) const {
  return t1 / predict_time(n);
}

AmdahlFit fit_amdahl(const ScalToolInputs& inputs) {
  inputs.validate();
  AmdahlFit fit;
  fit.t1 = inputs.base_runs.front().execution_cycles;
  ST_CHECK(fit.t1 > 0.0);

  // 1/S(n) = f·(1 − 1/n) + 1/n  →  y − 1/n = f·(1 − 1/n): one-predictor,
  // no-intercept least squares.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (const RunRecord& r : inputs.base_runs) {
    if (r.num_procs == 1) continue;
    const double inv_n = 1.0 / r.num_procs;
    const double inv_s = r.execution_cycles / fit.t1;
    rows.push_back({1.0 - inv_n});
    y.push_back(inv_s - inv_n);
  }
  ST_CHECK_MSG(!rows.empty(), "need multiprocessor runs to fit Amdahl");
  const LsqFit lsq = least_squares(rows, y);
  fit.serial_fraction = std::clamp(lsq.coef[0], 0.0, 1.0);
  fit.r2 = lsq.r2;
  return fit;
}

double ContentionModel::predict_time(int n) const {
  ST_CHECK(n >= 1);
  const double compute = t1 * (1.0 - mem_share) / n;
  // Memories scale with the machine, but hot-spotting grows the effective
  // utilization gently with the client count; the M/M/1 waiting factor
  // (1−ρ1)/(1−ρn) inflates the memory component.
  const double rho_n =
      std::min(0.90, utilization1 * (1.0 + 0.10 * (n - 1)));
  const double memory =
      t1 * mem_share / n * (1.0 - utilization1) / (1.0 - rho_n);
  return compute + memory;
}

double ContentionModel::predict_speedup(int n) const {
  return t1 / predict_time(n);
}

ContentionModel fit_contention(const ScalToolInputs& inputs,
                               double pi0_estimate) {
  inputs.validate();
  ContentionModel model;
  const RunRecord& uni = inputs.base_runs.front();
  model.t1 = uni.execution_cycles;
  // Memory share of the uniprocessor time from the CPI split: everything
  // above pi0 is hierarchy stalls.
  const double cpi = uni.metrics.cpi;
  model.mem_share = std::clamp((cpi - pi0_estimate) / cpi, 0.0, 0.95);
  // A single client keeps one memory busy for the stall share of its time.
  model.utilization1 = std::clamp(model.mem_share * 0.5, 0.0, 0.9);
  return model;
}

std::vector<BaselineComparison> compare_baselines(
    const ScalToolInputs& inputs, double pi0_estimate) {
  const AmdahlFit amdahl = fit_amdahl(inputs);
  const ContentionModel contention = fit_contention(inputs, pi0_estimate);
  const double t1 = inputs.base_runs.front().execution_cycles;
  std::vector<BaselineComparison> out;
  for (const RunRecord& r : inputs.base_runs) {
    BaselineComparison c;
    c.n = r.num_procs;
    c.measured = t1 / r.execution_cycles;
    c.amdahl = amdahl.predict_speedup(c.n);
    c.contention = contention.predict_speedup(c.n);
    out.push_back(c);
  }
  return out;
}

}  // namespace scaltool
