// CPI-breakdown parameter estimation (Sections 2.2 and 2.3).
//
//     cpi = pi0 + h2·t2 + hm·tm(n)                      (Eq. 1)
//
//  - pi0 is anchored at the uniprocessor run whose data set fits in the L1
//    (Lubeck's method) and then *unbiased* by subtracting the t2/tm cycles
//    of the compulsory misses present even there (Eq. 2).
//  - t2 and tm(1) come from a no-intercept least-squares fit over the
//    uniprocessor triplets (cpi, h2, hm) whose data sets overflow the L2
//    (Eq. 3; the paper warns that triplets must overflow the L2 for tm to
//    be stable).
//  - Because Eq. 2 needs t2/tm and Eq. 3 needs pi0, the two are iterated to
//    a fixed point; the paper performs one round, we iterate until the pi0
//    update falls below a tolerance (usually 2-3 rounds).
//  - tm(n) is then backed out of Eq. 1 for every base run (s0, n).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/inputs.hpp"
#include "math/least_squares.hpp"

namespace scaltool {

struct CpiModelOptions {
  /// A triplet participates in the t2/tm fit only when its data set exceeds
  /// `overflow_factor` × L2 capacity.
  double overflow_factor = 2.0;
  int max_refine_iterations = 8;
  double convergence_tol = 1e-9;
  /// Robust Eq. 3 fit: aggregate replicate triplets (same data-set size) by
  /// median and reject residual outliers before trusting t2/tm. Off by
  /// default — the clean path stays bit-identical to the plain fit.
  bool robust = false;
  RobustFitOptions robust_fit;
};

/// Fitted CPI-breakdown parameters.
struct CpiModel {
  double pi0_initial = 0.0;  ///< Lubeck anchor (biased by compulsory misses)
  double pi0 = 0.0;          ///< unbiased estimate (Eq. 2)
  double t2 = 0.0;           ///< L1-miss/L2-hit latency
  double tm1 = 0.0;          ///< memory latency on one processor
  std::map<int, double> tm;  ///< tm(n) per base-run processor count
  double fit_r2 = 0.0;       ///< diagnostics of the Eq. 3 regression
  int refine_iterations = 0;
  /// Data-set sizes of triplets the robust fit rejected as outliers
  /// (empty unless CpiModelOptions::robust found any).
  std::vector<std::size_t> fit_rejected;
  std::vector<std::string> notes;  ///< fit warnings (few triplets, clamps)

  double tm_of(int n) const;

  /// Eq. 8: cpi(s,n) for given hit rates and memory-instruction fraction.
  double cpi_from_hit_rates(double l1_hitr, double l2_hitr, double mem_frac,
                            double tm_n) const;
};

/// Estimates the model from the Table 3 measurement matrix.
CpiModel estimate_cpi_model(const ScalToolInputs& inputs,
                            const CpiModelOptions& options = {});

}  // namespace scaltool
