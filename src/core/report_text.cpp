#include "core/report_text.hpp"

#include <sstream>

#include "common/check.hpp"

namespace scaltool {

std::string model_summary(const ScalabilityReport& report) {
  std::ostringstream os;
  os << "Scal-Tool model for " << report.app << " (s0 = "
     << format_bytes(report.s0) << ")\n"
     << "  pi0 (initial / unbiased): " << Table::cell(report.model.pi0_initial)
     << " / " << Table::cell(report.model.pi0) << "\n"
     << "  t2:  " << Table::cell(report.model.t2) << " cycles\n"
     << "  tm(1): " << Table::cell(report.model.tm1)
     << " cycles (fit R^2 = " << Table::cell(report.model.fit_r2, 4)
     << ", " << report.model.refine_iterations << " refinement rounds)\n"
     << "  compulsory L2 miss rate: "
     << Table::cell(report.miss.compulsory_rate, 4) << " (s_max = "
     << format_bytes(static_cast<std::size_t>(report.miss.smax_bytes))
     << ")\n  tm(n):";
  for (const auto& [n, tm] : report.model.tm)
    os << "  n=" << n << ": " << Table::cell(tm, 1);
  os << "\n";
  if (!report.notes.empty()) {
    os << "  notes:\n";
    for (const std::string& note : report.notes) os << "   - " << note << "\n";
  }
  return os.str();
}

Table breakdown_table(const ScalabilityReport& report) {
  Table t("Bottleneck breakdown for " + report.app +
          " (accumulated Mcycles, all processors)");
  t.header({"procs", "Base", "Base-L2Lim", "Base-L2Lim-Sync",
            "Base-L2Lim-Imb", "Base-L2Lim-MP", "frac_syn", "frac_imb"});
  for (const BottleneckPoint& p : report.points) {
    constexpr double M = 1e6;
    t.add_row({Table::cell(p.n), Table::cell(p.base_cycles / M, 3),
               Table::cell(p.cycles_no_l2lim / M, 3),
               Table::cell(p.base_minus_l2lim_minus_sync() / M, 3),
               Table::cell(p.base_minus_l2lim_minus_imb() / M, 3),
               Table::cell(p.base_minus_l2lim_minus_mp() / M, 3),
               Table::cell(p.frac_syn, 4), Table::cell(p.frac_imb, 4)});
  }
  return t;
}

Table speedup_table(const ScalToolInputs& inputs) {
  Table t("Speedups for " + inputs.app);
  t.header({"procs", "exec_Mcycles", "speedup"});
  const double t1 = inputs.base_runs.front().execution_cycles;
  for (const RunRecord& r : inputs.base_runs) {
    t.add_row({Table::cell(r.num_procs),
               Table::cell(r.execution_cycles / 1e6, 3),
               Table::cell(t1 / r.execution_cycles, 2)});
  }
  return t;
}

Table validation_table(const ScalabilityReport& report,
                       const ScalToolInputs& inputs) {
  Table t("Validation for " + report.app +
          ": Scal-Tool MP estimate vs speedshop (accumulated Mcycles)");
  t.header({"procs", "MP_est", "MP_measured", "Base-MP_est",
            "Base-MP_measured", "diff_pct_of_base"});
  for (const BottleneckPoint& p : report.points) {
    const ValidationRecord& v = inputs.validation_for(p.n);
    constexpr double M = 1e6;
    // speedshop samples barrier + wait-for-work routines: compare against
    // the estimated sync + imbalance (the sharing extension, when active,
    // prices coherence stalls separately — they are user time, not MP
    // routines).
    const double mp_est = p.sync_cost + p.imb_cost;
    const double est_curve = p.base_cycles - mp_est;
    const double meas_curve = v.accumulated_cycles - v.mp_cycles;
    const double diff_pct =
        p.base_cycles > 0.0
            ? 100.0 * (est_curve - meas_curve) / p.base_cycles
            : 0.0;
    t.add_row({Table::cell(p.n), Table::cell(mp_est / M, 3),
               Table::cell(v.mp_cycles / M, 3), Table::cell(est_curve / M, 3),
               Table::cell(meas_curve / M, 3), Table::cell(diff_pct, 2)});
  }
  return t;
}

Table hitrate_sweep_table(const ScalToolInputs& inputs,
                          const ScalabilityReport& report) {
  Table t("Fig. 3-(a): uniprocessor L2 hit rate vs data-set size for " +
          inputs.app + " (compulsory rate = " +
          Table::cell(report.miss.compulsory_rate, 4) + ")");
  t.header({"dataset", "L2_hit_rate", "L1_hit_rate", "mem_frac"});
  for (const RunRecord& r : inputs.uni_runs) {
    t.add_row({format_bytes(r.dataset_bytes),
               Table::cell(r.metrics.l2_hitr, 4),
               Table::cell(r.metrics.l1_hitr, 4),
               Table::cell(r.metrics.mem_frac, 4)});
  }
  return t;
}

Table hitrate_vs_procs_table(const ScalabilityReport& report) {
  Table t("Fig. 3-(b): L2hitr_inf(s0,n) vs measured L2hitr(s0,n) for " +
          report.app);
  t.header({"procs", "L2hitr_inf", "L2hitr_measured", "Coh"});
  for (const BottleneckPoint& p : report.points) {
    t.add_row({Table::cell(p.n),
               Table::cell(report.miss.l2hitr_inf_of(p.n), 4),
               Table::cell(report.miss.l2hitr_meas.at(p.n), 4),
               Table::cell(p.n == 1 ? 0.0 : report.miss.coh_of(p.n), 4)});
  }
  return t;
}

Table cpi_infinf_table(const ScalabilityReport& report) {
  Table t("Fig. 4: cpi_inf_inf(s0,n) for " + report.app);
  t.header({"procs", "cpi_inf_inf", "tm(n)"});
  for (const BottleneckPoint& p : report.points) {
    t.add_row({Table::cell(p.n), Table::cell(p.cpi_inf_inf, 4),
               Table::cell(report.model.tm_of(p.n), 1)});
  }
  return t;
}

Table whatif_table(const WhatIfResult& result, const std::string& label) {
  Table t("What-if: " + label);
  t.header({"procs", "pred_Mcycles", "pred_cpi", "pred_l2_missrate",
            "speedup_vs_base"});
  for (const WhatIfPoint& p : result.points) {
    t.add_row({Table::cell(p.n), Table::cell(p.cycles / 1e6, 3),
               Table::cell(p.cpi, 4), Table::cell(p.l2_miss_rate, 4),
               Table::cell(p.speed_ratio, 3)});
  }
  return t;
}

}  // namespace scaltool
