#include "core/bottleneck.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace scaltool {

const BottleneckPoint& ScalabilityReport::point(int n) const {
  for (const BottleneckPoint& p : points)
    if (p.n == n) return p;
  ST_CHECK_MSG(false, "no analysis point for n=" << n);
}

double estimate_tsyn(const RunRecord& sync_kernel, double pi0) {
  const DerivedMetrics& d = sync_kernel.metrics;
  ST_CHECK_MSG(d.store_to_shared > 0.0,
               "sync kernel recorded no stores-to-shared");
  const double stall = d.cycles - d.instructions * pi0;
  return std::max(0.0, stall / d.store_to_shared);
}

ScalabilityReport analyze(const ScalToolInputs& inputs,
                          const AnalyzeOptions& options) {
  inputs.validate();
  ScalabilityReport report;
  report.app = inputs.app;
  report.s0 = inputs.s0;
  report.model = estimate_cpi_model(inputs, options.cpi);
  report.miss = decompose_misses(inputs);
  // Collection provenance first (quarantines, interpolated runs), then the
  // model's own fit warnings — the report lists every degradation.
  report.notes = inputs.notes;
  report.notes.insert(report.notes.end(), report.model.notes.begin(),
                      report.model.notes.end());

  const CpiModel& model = report.model;
  const MissDecomposition& miss = report.miss;
  const double s0 = static_cast<double>(inputs.s0);

  for (const RunRecord& run : inputs.base_runs) {
    const int n = run.num_procs;
    const DerivedMetrics& d = run.metrics;
    BottleneckPoint pt;
    pt.n = n;
    pt.instructions = d.instructions;
    pt.cpi_base = d.cpi;
    pt.base_cycles = d.cycles;

    const double tm_n = model.tm_of(n);

    // Curve b: remove insufficient caching space (Sec. 2.4.1) — only the
    // L2 hit rate changes; L1 behaviour and instruction mix stay measured.
    pt.cpi_inf = model.cpi_from_hit_rates(d.l1_hitr, miss.l2hitr_inf_of(n),
                                          d.mem_frac, tm_n);
    // The estimate removes misses, so it can only lower the CPI; numerical
    // noise (hit-rate sampling) is clamped away.
    pt.cpi_inf = std::min(pt.cpi_inf, pt.cpi_base);
    pt.cycles_no_l2lim = pt.cpi_inf * pt.instructions;

    if (n == 1) {
      // Multiprocessor effects are zero on one processor by definition.
      pt.cpi_inf_inf = pt.cpi_inf;
      pt.cycles_no_l2lim_no_mp = pt.cycles_no_l2lim;
      report.points.push_back(pt);
      continue;
    }

    // Kernel CPIs at this machine size.
    const KernelMeasurement& kern = inputs.kernel(n);
    pt.cpi_syn = kern.sync_kernel.metrics.cpi;
    pt.cpi_imb = kern.spin_kernel.metrics.cpi;
    pt.tsyn = estimate_tsyn(kern.sync_kernel, model.pi0);
    pt.nt_syn = d.store_to_shared;

    // Curve c inputs: uniprocessor behaviour at the adjusted size s0/n
    // stands in for one processor's non-coherence behaviour (Sec. 2.4.2).
    // The Eq.-1-derived tm(n) absorbs every non-cache stall of the base
    // run (the paper backs it out of the whole-program CPI), which is what
    // makes curve b exact — but cpi_inf_inf describes a run with the MP
    // effects *removed*, so it needs the physical memory latency. The
    // fetchop is "one full memory access" (Sec. 2.4.2), so the kernel-
    // calibrated t_syn(n) is exactly that physical latency; cap tm with it.
    const double tm_physical =
        std::min(tm_n, std::max(model.tm1, pt.tsyn));
    const double l1_adj = miss.uni_l1_hitr(s0 / n);
    const double m_adj = miss.uni_mem_frac(s0 / n);
    pt.cpi_inf_inf = model.cpi_from_hit_rates(
        l1_adj, miss.l2hitr_inf_inf(n, inputs.s0), m_adj, tm_physical);

    // Future-work extension: estimate the data-sharing activity from the
    // same counters the rest of the model uses. The coherence misses are
    // Coh(s0,n) of the L1 misses; they (a) cost a memory round trip each
    // (priced separately, below) and (b) each implied an ownership upgrade
    // that ticked nt_syn — pollution that must be removed before Eq. 10
    // reads nt_syn as synchronization.
    double sharing_cpi = 0.0;
    double nt_syn_clean = pt.nt_syn;
    if (options.model_sharing) {
      // Each data upgrade elsewhere shows up as one received invalidation,
      // so invalidations bound the nt_syn pollution; each invalidation or
      // intervention is one coherence transaction costing about a memory
      // round trip somewhere.
      nt_syn_clean = std::max(0.0, pt.nt_syn - d.invalidations);
      const double sharing_transactions =
          d.invalidations + d.interventions;
      const double tm_share = std::max(model.tm1, pt.tsyn);
      sharing_cpi = sharing_transactions * tm_share / pt.instructions;
      sharing_cpi = std::clamp(sharing_cpi, 0.0,
                               std::max(0.0, pt.cpi_inf - model.pi0));
      pt.sharing_cost = sharing_cpi * pt.instructions;
    }

    // Eq. 10: spin-free synchronization cost from the nt_syn counter.
    const double cost_syn = nt_syn_clean * (model.pi0 + pt.tsyn);
    pt.frac_syn = cost_syn / (pt.cpi_syn * pt.instructions);
    pt.frac_syn = std::clamp(pt.frac_syn, 0.0, 1.0);

    // Eq. 9 residual: cpi_inf = cpi_inf_inf·(1−fs−fi) + cpi_syn·fs
    //                           + cpi_imb·fi [+ sharing_cpi].
    const double denom = pt.cpi_imb - pt.cpi_inf_inf;
    double frac_imb = 0.0;
    if (std::abs(denom) > 1e-12) {
      frac_imb = (pt.cpi_inf - sharing_cpi - pt.cpi_inf_inf -
                  pt.frac_syn * (pt.cpi_syn - pt.cpi_inf_inf)) /
                 denom;
    } else {
      std::ostringstream os;
      os << "cpi_imb equals cpi_inf_inf at n=" << n
         << "; load-imbalance fraction unidentifiable, set to 0";
      report.notes.push_back(os.str());
    }
    const double frac_imb_raw = frac_imb;
    frac_imb = std::clamp(frac_imb, 0.0, 1.0 - pt.frac_syn);
    if (frac_imb != frac_imb_raw) {
      std::ostringstream os;
      os << "frac_imb clamped from " << frac_imb_raw << " to " << frac_imb
         << " at n=" << n;
      report.notes.push_back(os.str());
    }
    pt.frac_imb = frac_imb;

    pt.sync_cost = pt.cpi_syn * pt.frac_syn * pt.instructions;
    pt.imb_cost = pt.cpi_imb * pt.frac_imb * pt.instructions;
    pt.cycles_no_l2lim_no_mp =
        pt.cpi_inf_inf * (1.0 - pt.frac_syn - pt.frac_imb) * pt.instructions;

    report.points.push_back(pt);
  }
  return report;
}

}  // namespace scaltool
