// Text rendering of Scal-Tool analyses: the figures of Section 4 as
// aligned tables (plus CSV for plotting).
#pragma once

#include <string>

#include "common/table.hpp"
#include "core/bottleneck.hpp"
#include "core/inputs.hpp"
#include "core/whatif.hpp"

namespace scaltool {

/// Fitted-parameter summary (pi0, t2, tm(n), compulsory rate, ...).
std::string model_summary(const ScalabilityReport& report);

/// Figure 6/9/12 data: accumulated cycles for Base, Base−L2Lim,
/// Base−L2Lim−Sync, Base−L2Lim−Imb, Base−L2Lim−MP per processor count.
Table breakdown_table(const ScalabilityReport& report);

/// Figure 5/8/11 data: measured speedups per processor count.
Table speedup_table(const ScalToolInputs& inputs);

/// Figure 7/10/13 data: estimated vs speedshop-measured MP cost, and the
/// Base−MP curve difference as a fraction of accumulated cycles.
Table validation_table(const ScalabilityReport& report,
                       const ScalToolInputs& inputs);

/// Figure 3 data: (a) the uniprocessor L2 hit-rate sweep; (b) the
/// estimated L2hitr_inf(s0,n) vs the measured multiprocessor hit rate.
Table hitrate_sweep_table(const ScalToolInputs& inputs,
                          const ScalabilityReport& report);
Table hitrate_vs_procs_table(const ScalabilityReport& report);

/// Figure 4 data: cpi_inf_inf(s0, n) per processor count.
Table cpi_infinf_table(const ScalabilityReport& report);

/// What-if comparison table.
Table whatif_table(const WhatIfResult& result, const std::string& label);

}  // namespace scaltool
