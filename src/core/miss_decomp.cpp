#include "core/miss_decomp.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scaltool {

namespace {

LinearInterpolator curve_from_uni_runs(
    const std::vector<RunRecord>& uni_runs,
    double (*extract)(const DerivedMetrics&)) {
  std::vector<std::pair<double, double>> points;
  points.reserve(uni_runs.size());
  for (const RunRecord& r : uni_runs)
    points.emplace_back(static_cast<double>(r.dataset_bytes),
                        extract(r.metrics));
  return LinearInterpolator(std::move(points));
}

}  // namespace

double MissDecomposition::compulsory_rate_at(double s) const {
  if (s >= smax_bytes) return compulsory_rate;
  return std::clamp(1.0 - uni_l2_hitr(s), compulsory_rate, 1.0);
}

double MissDecomposition::coh_of(int n) const {
  const auto it = coh.find(n);
  ST_CHECK_MSG(it != coh.end(), "no coherence estimate for n=" << n);
  return it->second;
}

double MissDecomposition::l2hitr_inf_of(int n) const {
  const auto it = l2hitr_inf.find(n);
  ST_CHECK_MSG(it != l2hitr_inf.end(), "no L2hitr_inf estimate for n=" << n);
  return it->second;
}

MissDecomposition decompose_misses(const ScalToolInputs& inputs) {
  inputs.validate();
  MissDecomposition d{
      0.0,
      0.0,
      curve_from_uni_runs(inputs.uni_runs,
                          [](const DerivedMetrics& m) { return m.l2_hitr; }),
      curve_from_uni_runs(inputs.uni_runs,
                          [](const DerivedMetrics& m) { return m.l1_hitr; }),
      curve_from_uni_runs(inputs.uni_runs,
                          [](const DerivedMetrics& m) { return m.mem_frac; }),
      {},
      {},
      {}};

  // Fig. 3-(a): the sweep's maximum hit rate marks the point where only
  // compulsory misses remain.
  d.smax_bytes = d.uni_l2_hitr.argmax_y();
  d.compulsory_rate = std::clamp(1.0 - d.uni_l2_hitr.max_y(), 0.0, 1.0);

  const double s0 = static_cast<double>(inputs.s0);
  for (const RunRecord& r : inputs.base_runs) {
    const int n = r.num_procs;
    const double measured = r.metrics.l2_hitr;
    d.l2hitr_meas[n] = measured;
    // Eq. 11, with interpolation when s0/n is not an exact sweep point.
    const double uni_equiv = d.uni_l2_hitr(s0 / n);
    const double coh = std::max(0.0, uni_equiv - measured);
    d.coh[n] = coh;
    d.l2hitr_inf[n] =
        std::clamp(1.0 - d.compulsory_rate_at(s0 / n) - coh, 0.0, 1.0);
  }
  return d;
}

}  // namespace scaltool
