// Umbrella header: the Scal-Tool public API.
//
// Typical use:
//
//   #include "core/scaltool.hpp"
//   #include "runner/runner.hpp"
//
//   scaltool::ExperimentRunner runner(
//       scaltool::MachineConfig::origin2000_scaled(1));
//   const auto procs = scaltool::default_proc_counts(32);
//   const auto inputs = runner.collect("t3dheat", 640_KiB, procs);
//   const auto report = scaltool::analyze(inputs);
//   std::cout << scaltool::model_summary(report);
//   scaltool::breakdown_table(report).print(std::cout);
#pragma once

#include "core/analytic_models.hpp"
#include "core/bottleneck.hpp"
#include "core/cpi_model.hpp"
#include "core/inputs.hpp"
#include "core/miss_decomp.hpp"
#include "core/report_text.hpp"
#include "core/resources.hpp"
#include "core/whatif.hpp"
