#include "core/inputs.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scaltool {

const RunRecord& ScalToolInputs::base_run(int n) const {
  for (const RunRecord& r : base_runs)
    if (r.num_procs == n) return r;
  ST_CHECK_MSG(false, "no base run with " << n << " processors");
}

const KernelMeasurement& ScalToolInputs::kernel(int n) const {
  for (const KernelMeasurement& k : kernels)
    if (k.num_procs == n) return k;
  ST_CHECK_MSG(false, "no kernel measurement for " << n << " processors");
}

const ValidationRecord& ScalToolInputs::validation_for(int n) const {
  for (const ValidationRecord& v : validation)
    if (v.num_procs == n) return v;
  ST_CHECK_MSG(false, "no validation record for " << n << " processors");
}

const RunRecord& ScalToolInputs::smallest_uni_run() const {
  ST_CHECK(!uni_runs.empty());
  const auto it = std::min_element(
      uni_runs.begin(), uni_runs.end(),
      [](const RunRecord& a, const RunRecord& b) {
        return a.dataset_bytes < b.dataset_bytes;
      });
  return *it;
}

void ScalToolInputs::validate() const {
  ST_CHECK_MSG(!base_runs.empty(), "no base runs");
  ST_CHECK_MSG(!uni_runs.empty(), "no uniprocessor runs");
  ST_CHECK_MSG(s0 > 0, "base data-set size is zero");
  ST_CHECK_MSG(l2_bytes > 0, "L2 capacity is zero");
  ST_CHECK_MSG(base_runs.front().num_procs == 1,
               "base runs must start at one processor");
  for (std::size_t i = 1; i < base_runs.size(); ++i)
    ST_CHECK_MSG(base_runs[i].num_procs > base_runs[i - 1].num_procs,
                 "base runs must have strictly ascending processor counts");
  for (const RunRecord& r : base_runs) {
    ST_CHECK_MSG(r.dataset_bytes == s0, "base run at wrong data-set size");
    ST_CHECK(r.metrics.instructions > 0.0);
    if (r.num_procs > 1) kernel(r.num_procs);  // throws if absent
  }
  for (const RunRecord& r : uni_runs) {
    ST_CHECK_MSG(r.num_procs == 1, "uni run with more than one processor");
    ST_CHECK(r.metrics.instructions > 0.0);
  }
}

}  // namespace scaltool
