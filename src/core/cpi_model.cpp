#include "core/cpi_model.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "math/least_squares.hpp"

namespace scaltool {

namespace {
bool d_has_misses(const DerivedMetrics& d) { return d.hm > 0.0; }
}  // namespace

double CpiModel::tm_of(int n) const {
  const auto it = tm.find(n);
  ST_CHECK_MSG(it != tm.end(), "no tm estimate for " << n << " processors");
  return it->second;
}

double CpiModel::cpi_from_hit_rates(double l1_hitr, double l2_hitr,
                                    double mem_frac, double tm_n) const {
  // Eq. 8: cpi = pi0 + (1−L1hitr)·m·(tm + (t2−tm)·L2hitr).
  return pi0 +
         (1.0 - l1_hitr) * mem_frac * (tm_n + (t2 - tm_n) * l2_hitr);
}

CpiModel estimate_cpi_model(const ScalToolInputs& inputs,
                            const CpiModelOptions& options) {
  inputs.validate();
  CpiModel model;

  // --- pi0 anchor (Lubeck) -------------------------------------------------
  const RunRecord& anchor = inputs.smallest_uni_run();
  model.pi0_initial = anchor.metrics.cpi;
  if (anchor.dataset_bytes > inputs.l2_bytes) {
    std::ostringstream os;
    os << "pi0 anchor data set (" << anchor.dataset_bytes
       << " B) does not fit the L2; pi0 may be biased high";
    model.notes.push_back(os.str());
  }

  // --- t2/tm triplets (Eq. 3) ----------------------------------------------
  // Replicate runs at the same data-set size (a robust campaign may measure
  // each size several times) are aggregated by the per-field median, which
  // a single perturbed counter read cannot move.
  std::vector<double> h2s, hms, cpis;
  std::vector<std::size_t> triplet_bytes;  // parallel, for diagnostics
  for (std::size_t i = 0; i < inputs.uni_runs.size();) {
    const RunRecord& r = inputs.uni_runs[i];
    std::size_t j = i + 1;
    while (j < inputs.uni_runs.size() &&
           inputs.uni_runs[j].dataset_bytes == r.dataset_bytes)
      ++j;
    if (static_cast<double>(r.dataset_bytes) >
        options.overflow_factor * static_cast<double>(inputs.l2_bytes)) {
      if (j - i == 1) {
        h2s.push_back(r.metrics.h2);
        hms.push_back(r.metrics.hm);
        cpis.push_back(r.metrics.cpi);
      } else {
        std::vector<double> rep_h2, rep_hm, rep_cpi;
        for (std::size_t rep = i; rep < j; ++rep) {
          rep_h2.push_back(inputs.uni_runs[rep].metrics.h2);
          rep_hm.push_back(inputs.uni_runs[rep].metrics.hm);
          rep_cpi.push_back(inputs.uni_runs[rep].metrics.cpi);
        }
        h2s.push_back(median(std::move(rep_h2)));
        hms.push_back(median(std::move(rep_hm)));
        cpis.push_back(median(std::move(rep_cpi)));
        std::ostringstream os;
        os << "aggregated " << j - i << " replicate triplets at s="
           << r.dataset_bytes << " by median";
        model.notes.push_back(os.str());
      }
      triplet_bytes.push_back(r.dataset_bytes);
    }
    i = j;
  }
  ST_CHECK_MSG(h2s.size() >= 2,
               "need at least two uniprocessor triplets overflowing "
                   << options.overflow_factor << "x the L2; got "
                   << h2s.size());
  if (h2s.size() < 3)
    model.notes.push_back(
        "only two L2-overflowing triplets; t2/tm fit has no redundancy");

  // --- iterate Eq. 2 <-> Eq. 3 to a fixed point -----------------------------
  double pi0 = model.pi0_initial;
  std::vector<std::size_t> rejected;
  for (int iter = 0; iter < options.max_refine_iterations; ++iter) {
    std::vector<double> y(cpis.size());
    for (std::size_t i = 0; i < cpis.size(); ++i) y[i] = cpis[i] - pi0;
    if (options.robust) {
      std::vector<std::vector<double>> rows;
      rows.reserve(h2s.size());
      for (std::size_t i = 0; i < h2s.size(); ++i)
        rows.push_back({h2s[i], hms[i]});
      const RobustLsqFit rf =
          robust_least_squares(rows, y, options.robust_fit);
      model.t2 = rf.fit.coef[0];
      model.tm1 = rf.fit.coef[1];
      model.fit_r2 = rf.fit.r2;
      rejected = rf.rejected;  // the final iteration's verdict stands
    } else {
      const LsqFit fit = fit_two_latencies(h2s, hms, y);
      model.t2 = fit.coef[0];
      model.tm1 = fit.coef[1];
      model.fit_r2 = fit.r2;
    }
    model.refine_iterations = iter + 1;
    // Eq. 2: remove the compulsory-miss cycles present at the anchor.
    const double pi0_next = model.pi0_initial -
                            anchor.metrics.h2 * model.t2 -
                            anchor.metrics.hm * model.tm1;
    if (std::abs(pi0_next - pi0) <= options.convergence_tol * (1.0 + pi0)) {
      pi0 = pi0_next;
      break;
    }
    pi0 = pi0_next;
  }
  for (std::size_t idx : rejected) {
    model.fit_rejected.push_back(triplet_bytes[idx]);
    std::ostringstream os;
    os << "t2/tm fit rejected triplet at s=" << triplet_bytes[idx]
       << " as a residual outlier";
    model.notes.push_back(os.str());
  }
  ST_CHECK_MSG(pi0 > 0.0, "pi0 estimate collapsed to " << pi0);
  model.pi0 = pi0;
  if (model.t2 < 0.0) {
    model.notes.push_back("fitted t2 was negative; clamped to 0");
    model.t2 = 0.0;
  }
  if (model.tm1 <= model.t2)
    model.notes.push_back(
        "fitted tm(1) does not exceed t2 — triplets may not overflow the L2");

  // --- tm(n) from the base runs (end of Sec. 2.3) ---------------------------
  // Eq. 1 backs tm(n) out of the whole-program CPI, so at processor counts
  // where the data set becomes cache-resident (hm → 0) or where spin
  // instructions dilute the CPI below pi0, the raw estimate degenerates
  // (huge or even negative). Physically the memory latency of a larger
  // machine cannot be below that of a smaller one, so we enforce a
  // monotone non-decreasing floor starting at tm(1).
  double floor_tm = model.tm1;
  for (const RunRecord& r : inputs.base_runs) {
    double tm_n = floor_tm;
    if (d_has_misses(r.metrics)) {
      tm_n = (r.metrics.cpi - model.pi0 - r.metrics.h2 * model.t2) /
             r.metrics.hm;
    } else {
      std::ostringstream os;
      os << "no L2 misses at n=" << r.num_procs << "; tm(n) carried forward";
      model.notes.push_back(os.str());
    }
    if (tm_n < floor_tm) {
      std::ostringstream os;
      os << "raw tm(" << r.num_procs << ") = " << tm_n
         << " below the monotone floor " << floor_tm << "; floored";
      model.notes.push_back(os.str());
      tm_n = floor_tm;
    }
    model.tm[r.num_procs] = tm_n;
    floor_tm = tm_n;
  }
  return model;
}

}  // namespace scaltool
