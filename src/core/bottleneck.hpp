// Bottleneck isolation: the curves of Figures 1/2/6/9/12 and the
// synchronization / load-imbalance split (Section 2.4.2).
//
// For every processor count n the analysis produces accumulated-cycle
// estimates:
//   Base                 = cpi(s0,n)·inst                      (measured)
//   Base − L2Lim         = cpi_inf(s0,n)·inst                  (curve b)
//   Base − L2Lim − MP    = cpi_inf_inf(s0,n)·(1−fs−fi)·inst    (curve c)
// where cpi_inf uses L2hitr_inf (infinite L2), cpi_inf_inf additionally
// uses the s0/n-adjusted uniprocessor L1 hit rate and memory-instruction
// fraction plus L2hitr_inf_inf, and the multiprocessor area splits as
//   sync cost = cpi_syn·fs·inst   with  fs from Eq. 10
//                (cost_syn = nt_syn·(pi0 + t_syn), t_syn inverted from the
//                 synchronization kernel's own counters), and
//   imb  cost = cpi_imb·fi·inst   with  fi the Eq. 9 residual.
#pragma once

#include <string>
#include <vector>

#include "core/cpi_model.hpp"
#include "core/inputs.hpp"
#include "core/miss_decomp.hpp"

namespace scaltool {

/// Estimates at one processor count.
struct BottleneckPoint {
  int n = 0;
  double instructions = 0.0;      ///< measured aggregate graduated instr.

  // Accumulated-cycle curves.
  double base_cycles = 0.0;           ///< measured
  double cycles_no_l2lim = 0.0;       ///< Base − L2Lim
  double cycles_no_l2lim_no_mp = 0.0; ///< Base − L2Lim − MP

  // The multiprocessor area and its split.
  double sync_cost = 0.0;
  double imb_cost = 0.0;
  /// Estimated cycles on coherence (sharing) misses — populated only when
  /// AnalyzeOptions::model_sharing is set (the paper's future-work
  /// extension); otherwise these cycles fold into the Eq. 9 residual.
  double sharing_cost = 0.0;
  double mp_cost() const { return sync_cost + imb_cost + sharing_cost; }

  // Intermediate quantities (for reports, what-if and tests).
  double frac_syn = 0.0;
  double frac_imb = 0.0;
  double cpi_base = 0.0;
  double cpi_inf = 0.0;
  double cpi_inf_inf = 0.0;
  double cpi_syn = 0.0;
  double cpi_imb = 0.0;
  double tsyn = 0.0;
  double nt_syn = 0.0;

  // Derived curve values used by the figures.
  double base_minus_l2lim_minus_sync() const {
    return cycles_no_l2lim - sync_cost;
  }
  double base_minus_l2lim_minus_imb() const {
    return cycles_no_l2lim - imb_cost;
  }
  double base_minus_l2lim_minus_mp() const {
    return cycles_no_l2lim - mp_cost();
  }
  /// L2Lim effect in cycles (Base minus curve b).
  double l2lim_cost() const { return base_cycles - cycles_no_l2lim; }
};

/// Full Scal-Tool output for one application.
struct ScalabilityReport {
  std::string app;
  std::size_t s0 = 0;
  CpiModel model;
  MissDecomposition miss;
  std::vector<BottleneckPoint> points;  ///< ascending n
  std::vector<std::string> notes;

  const BottleneckPoint& point(int n) const;
};

struct AnalyzeOptions {
  CpiModelOptions cpi;

  /// The paper's announced extension ("work in progress includes extending
  /// Scal-Tool to incorporate the effect of true and false sharing"):
  /// price the coherence misses separately — sharing CPI = Coh(s0,n) ·
  /// (1−L1hitr) · m · t_mem — and remove it from the Eq. 9 residual, so
  /// data sharing stops masquerading as load imbalance. Off by default to
  /// match the published model.
  bool model_sharing = false;
};

/// Runs the complete pipeline: CPI model, miss decomposition, bottleneck
/// isolation per processor count.
ScalabilityReport analyze(const ScalToolInputs& inputs,
                          const AnalyzeOptions& options = {});

/// t_syn inverted from the synchronization kernel's counters: the kernel's
/// non-pi0 cycles are all fetchop stalls, spread over its nt_syn events.
double estimate_tsyn(const RunRecord& sync_kernel, double pi0);

}  // namespace scaltool
