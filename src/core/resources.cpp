#include "core/resources.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scaltool {

namespace {
long long pow2(int k) { return 1LL << k; }
}  // namespace

ResourceCost time_tool_cost(int n) {
  ST_CHECK(n >= 1);
  // One run per processor count 2^0 .. 2^(n-1); sum of counts = 2^n − 1.
  return {"time", n, pow2(n) - 1, n};
}

ResourceCost speedshop_cost(int n) {
  ST_CHECK(n >= 1);
  return {"speedshop", n, pow2(n) - 1, n};
}

ResourceCost existing_tools_cost(int n) {
  ResourceCost total = time_tool_cost(n);
  total += speedshop_cost(n);
  total.tool = "existing tools (time + speedshop)";
  return total;
}

ResourceCost scal_tool_cost(int n) {
  ST_CHECK(n >= 1);
  // Base runs: one per processor count (2^n − 1 processors). Uniprocessor
  // sweep: n − 1 extra runs at s0/2 .. s0/2^(n−1), one processor each.
  return {"Scal-Tool", 2LL * n - 1, pow2(n) + n - 2, 2LL * n - 1};
}

Table resource_table(int n) {
  Table t("Table 1: resources for sync+imbalance costs at 1..2^" +
          std::to_string(n - 1) + " processors");
  t.header({"tool", "runs", "processors", "files"});
  for (const ResourceCost& c :
       {time_tool_cost(n), speedshop_cost(n), existing_tools_cost(n),
        scal_tool_cost(n)}) {
    t.add_row({c.tool, Table::cell(c.runs), Table::cell(c.processors),
               Table::cell(c.files)});
  }
  return t;
}

std::vector<RunMatrixEntry> run_matrix(std::size_t s0, int max_procs) {
  ST_CHECK(max_procs >= 1);
  std::vector<RunMatrixEntry> entries;
  for (int p = 1; p <= max_procs; p *= 2)
    entries.push_back({s0, p});
  std::size_t s = s0 / 2;
  for (int p = 2; p <= max_procs; p *= 2, s /= 2)
    entries.push_back({s, 1});
  return entries;
}

Table run_matrix_table(std::size_t s0, int max_procs) {
  Table t("Table 3: runs needed to gather the Scal-Tool data (s0 = " +
          format_bytes(s0) + ")");
  std::vector<std::string> header{"data set size"};
  for (int p = 1; p <= max_procs; p *= 2)
    header.push_back("p=" + std::to_string(p));
  t.header(header);

  const std::vector<RunMatrixEntry> entries = run_matrix(s0, max_procs);
  int rows = 1;
  for (int p = 1; p < max_procs; p *= 2) ++rows;
  std::size_t s = s0;
  for (int row = 0; row < rows; ++row, s /= 2) {
    std::vector<std::string> cells{format_bytes(s)};
    for (int p = 1; p <= max_procs; p *= 2) {
      const bool needed =
          std::any_of(entries.begin(), entries.end(),
                      [&](const RunMatrixEntry& e) {
                        return e.dataset_bytes == s && e.num_procs == p;
                      });
      cells.push_back(needed ? "x" : "");
    }
    t.add_row(cells);
  }
  return t;
}

}  // namespace scaltool
