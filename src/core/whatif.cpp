#include "core/whatif.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace scaltool {

const WhatIfPoint& WhatIfResult::point(int n) const {
  for (const WhatIfPoint& p : points)
    if (p.n == n) return p;
  ST_CHECK_MSG(false, "no what-if point for n=" << n);
}

WhatIfResult what_if(const ScalabilityReport& report,
                     const ScalToolInputs& inputs,
                     const WhatIfParams& params) {
  ST_CHECK(params.t2_scale > 0.0);
  ST_CHECK(params.tm_scale > 0.0);
  ST_CHECK(params.tsyn_scale > 0.0);
  ST_CHECK(params.pi0_scale > 0.0);
  ST_CHECK_MSG(params.l2_scale_k >= 1.0,
               "L2 what-if supports growing the cache (k >= 1)");

  WhatIfResult result;
  result.params = params;
  const CpiModel& model = report.model;
  const MissDecomposition& miss = report.miss;
  const double s0 = static_cast<double>(inputs.s0);

  for (const RunRecord& run : inputs.base_runs) {
    const int n = run.num_procs;
    const DerivedMetrics& d = run.metrics;
    const BottleneckPoint& base_pt = report.point(n);

    WhatIfPoint pt;
    pt.n = n;

    const double pi0 = model.pi0 * params.pi0_scale;
    const double t2 = model.t2 * params.t2_scale;
    const double tm_n = model.tm_of(n) * params.tm_scale;

    // L2 miss rate under a k× larger cache (Sec. 2.6): the coherence and
    // compulsory components depend only on the sharing pattern and the
    // data set — not the cache size — while the conflict component behaves
    // as if the per-processor data set shrank by k, read off the sweep
    // curve (minus that point's own compulsory weight, so the droop region
    // of Fig. 3-(a) is not mistaken for conflicts).
    double l2_hitr = d.l2_hitr;
    if (params.l2_scale_k > 1.0) {
      const double coh = n == 1 ? 0.0 : miss.coh_of(n);
      const double compulsory = miss.compulsory_rate_at(s0 / n);
      const double shrunk = s0 / (static_cast<double>(n) * params.l2_scale_k);
      const double conflict = std::max(
          0.0, (1.0 - miss.uni_l2_hitr(shrunk)) -
                   miss.compulsory_rate_at(shrunk));
      l2_hitr = std::clamp(1.0 - coh - compulsory - conflict, 0.0, 1.0);
    }
    pt.l2_miss_rate = 1.0 - l2_hitr;

    // Eq. 8 with the modified parameters and measured L1/mix behaviour.
    double cpi = pi0 + (1.0 - d.l1_hitr) * d.mem_frac *
                           (tm_n + (t2 - tm_n) * l2_hitr);
    double cycles = cpi * d.instructions;

    // Synchronization adjustments ride on top of Eq. 8 (the fetchop stalls
    // are not cache events): re-price the Eq. 10 cost under the new t_syn
    // and/or primitive.
    if (n > 1 && (params.tsyn_scale != 1.0 || params.new_cpi_syn ||
                  params.pi0_scale != 1.0)) {
      const double old_cost = base_pt.nt_syn * (model.pi0 + base_pt.tsyn);
      double new_cost =
          base_pt.nt_syn * (pi0 + base_pt.tsyn * params.tsyn_scale);
      if (params.new_cpi_syn) {
        // A new primitive replaces the whole synchronization component.
        new_cost = *params.new_cpi_syn * base_pt.frac_syn * d.instructions;
      }
      cycles += new_cost - old_cost;
      cycles = std::max(cycles, 0.0);
    }

    pt.cpi = d.instructions > 0.0 ? cycles / d.instructions : 0.0;
    pt.cycles = cycles;
    pt.speed_ratio = cycles > 0.0 ? base_pt.base_cycles / cycles : 0.0;
    result.points.push_back(pt);
  }
  return result;
}

}  // namespace scaltool
