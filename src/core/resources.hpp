// Resource-requirement accounting (Tables 1 and 3, Section 2.5).
//
// The paper's headline cost argument: to obtain synchronization and load-
// imbalance costs for processor counts 1, 2, 4, ..., 2^(n−1),
//  - the existing-tools workflow runs `time` once and speedshop once per
//    processor count: 2n runs, 2·(2^n − 1) processors, 2n output files;
//  - Scal-Tool runs the application once per processor count at the base
//    size plus n−1 extra uniprocessor runs at fractional sizes:
//    2n − 1 runs, 2^n + n − 2 processors, 2n − 1 files.
// For n = 6 (up to 32 processors) Scal-Tool needs about half the
// processors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace scaltool {

/// One tool row of Table 1.
struct ResourceCost {
  std::string tool;
  long long runs = 0;
  long long processors = 0;
  long long files = 0;

  ResourceCost& operator+=(const ResourceCost& other) {
    runs += other.runs;
    processors += other.processors;
    files += other.files;
    return *this;
  }
};

/// Costs for the processor series 1, 2, 4, ..., 2^(n−1).
ResourceCost time_tool_cost(int n);
ResourceCost speedshop_cost(int n);
ResourceCost existing_tools_cost(int n);  ///< time + speedshop
ResourceCost scal_tool_cost(int n);

/// Table 1 for a given n.
Table resource_table(int n);

/// One (data-set size, processor count) cell of Table 3.
struct RunMatrixEntry {
  std::size_t dataset_bytes = 0;
  int num_procs = 0;
};

/// The Table 3 run matrix for base size s0 and the 2^k processor series up
/// to max_procs: base-size runs at each count plus the uniprocessor sweep.
std::vector<RunMatrixEntry> run_matrix(std::size_t s0, int max_procs);

/// Table 3 rendering (x marks required runs).
Table run_matrix_table(std::size_t s0, int max_procs);

}  // namespace scaltool
