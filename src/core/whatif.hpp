// What-if analysis (Section 2.6): predict the impact of machine-parameter
// changes *without re-running the application*, by re-evaluating the model
// equations with modified parameters.
//
// Supported experiments, exactly the paper's list:
//  - faster/slower L2 cache, interconnect, synchronization: scale t2, tm,
//    t_syn;
//  - wider/narrower issue: scale pi0;
//  - L2 caches k× larger: the miss rate splits into a coherence component
//    (unchanged, it depends only on n) and a uniprocessor component
//    approximated by 1 − L2hitr(s0/k, 1) read off the sweep curve
//    (Eq. 11 and the "increasing the L2 by k is like shrinking the data
//    set by k" assumption);
//  - a new synchronization primitive: substitute its kernel-measured
//    cpi_syn.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/bottleneck.hpp"

namespace scaltool {

struct WhatIfParams {
  double t2_scale = 1.0;
  double tm_scale = 1.0;
  double tsyn_scale = 1.0;
  double pi0_scale = 1.0;
  /// L2 capacity multiplier k (≥ measured). 1 = unchanged.
  double l2_scale_k = 1.0;
  /// Replacement synchronization primitive: overrides cpi_syn(n) when set.
  std::optional<double> new_cpi_syn;

  bool is_identity() const {
    return t2_scale == 1.0 && tm_scale == 1.0 && tsyn_scale == 1.0 &&
           pi0_scale == 1.0 && l2_scale_k == 1.0 && !new_cpi_syn;
  }
};

/// Predicted totals at one processor count under the modified parameters.
struct WhatIfPoint {
  int n = 0;
  double cycles = 0.0;           ///< predicted accumulated cycles (Base')
  double l2_miss_rate = 0.0;     ///< predicted local L2 miss rate
  double cpi = 0.0;
  double speed_ratio = 0.0;      ///< original Base / predicted (>1 = faster)
};

struct WhatIfResult {
  WhatIfParams params;
  std::vector<WhatIfPoint> points;
  const WhatIfPoint& point(int n) const;
};

/// Evaluates the what-if scenario against an existing analysis. `inputs`
/// supplies the measured per-n metrics the equations need.
WhatIfResult what_if(const ScalabilityReport& report,
                     const ScalToolInputs& inputs, const WhatIfParams& params);

}  // namespace scaltool
