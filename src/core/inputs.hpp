// Scal-Tool model inputs: the measurement matrix of Table 3.
//
// Scal-Tool needs, for an application with base data-set size s0:
//   - one run at (s0, n) for each processor count n = 1, 2, 4, ... (base
//     runs);
//   - uniprocessor runs at fractional sizes (s0/2, s0/4, ...), which double
//     as the least-squares triplets for t2/tm wherever the size overflows
//     the L2 (Sec. 2.3/2.5);
//   - per machine size, the synchronization and spin kernels (Sec. 2.4.2).
//
// A RunRecord is strictly what hardware event counters provide. Ground-
// truth fields used by the *validation* layer ride along in
// ValidationRecord, kept separate so the model physically cannot read them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "counters/counter_set.hpp"

namespace scaltool {

/// Event-counter measurements of one run — the model's only food.
struct RunRecord {
  std::string workload;
  std::size_t dataset_bytes = 0;
  int num_procs = 0;
  DerivedMetrics metrics;         ///< cpi, h2, hm, hit rates, mem_frac, ...
  double execution_cycles = 0.0;  ///< slowest processor (the `time` output)
};

/// Kernel measurements at one machine size (Sec. 2.4.2).
struct KernelMeasurement {
  int num_procs = 0;
  RunRecord sync_kernel;  ///< barriers back-to-back: yields cpi_syn, t_syn
  RunRecord spin_kernel;  ///< idle loop: yields cpi_imb
};

/// Ground truth for validation (speedshop / simulator attribution).
struct ValidationRecord {
  int num_procs = 0;
  double accumulated_cycles = 0.0;
  double mp_cycles = 0.0;          ///< speedshop barrier + wait cycles
  double sync_cycles = 0.0;
  double spin_cycles = 0.0;
  double compulsory_misses = 0.0;  ///< true L2 miss classification
  double coherence_misses = 0.0;
  double conflict_misses = 0.0;
};

/// The complete input set for one application.
struct ScalToolInputs {
  std::string app;
  std::size_t s0 = 0;
  std::size_t l2_bytes = 0;  ///< machine L2 capacity (known to the user)

  std::vector<RunRecord> base_runs;  ///< (s0, n), ascending n; includes n=1
  std::vector<RunRecord> uni_runs;   ///< (s, 1), descending s; includes s0
  std::vector<KernelMeasurement> kernels;  ///< one per base-run n (n > 1)

  /// Validation side-band, parallel to base_runs. Never consumed by the
  /// model — only by the validation/figure layer.
  std::vector<ValidationRecord> validation;

  /// Provenance / degradation diagnostics (e.g. "uni run interpolated",
  /// "job quarantined"). Carried into ScalabilityReport::notes by analyze()
  /// and persisted as NOTE records so a degraded archive says so.
  std::vector<std::string> notes;

  const RunRecord& base_run(int n) const;
  const KernelMeasurement& kernel(int n) const;
  const ValidationRecord& validation_for(int n) const;

  /// Uniprocessor run with the smallest data-set size (the pi0 anchor).
  const RunRecord& smallest_uni_run() const;

  /// Sanity-checks ordering, coverage and positivity; throws CheckError.
  void validate() const;
};

}  // namespace scaltool
