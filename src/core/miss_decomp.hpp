// L2 miss-rate decomposition (Section 2.4.1, Figure 3).
//
// The L2 miss rate of a base run splits into:
//  - the *compulsory* rate: read off the top of the uniprocessor
//    L2hitr(s, 1) sweep — at s_max only compulsory misses remain
//    (Fig. 3-a);
//  - the *coherence* rate Coh(s0, n) = L2hitr(s0/n, 1) − L2hitr(s0, n)
//    (Eq. 11): a uniprocessor run on one n-th of the data set stands in
//    for one processor of the n-processor run minus its coherence traffic,
//    interpolating between measured sizes when s0/n was not run;
//  - the remainder: *conflict* (capacity+conflict) misses, the
//    insufficient-caching-space effect.
//
// L2hitr_inf(s0,n)      = 1 − compulsory − Coh(s0,n)   (infinite L2)
// L2hitr_inf_inf(s0,n)  = 1 − compulsory               (infinite L2, no MP)
#pragma once

#include <map>

#include "core/inputs.hpp"
#include "math/interpolate.hpp"

namespace scaltool {

struct MissDecomposition {
  double compulsory_rate = 0.0;  ///< local-L2 basis (fraction of L1 misses)
  double smax_bytes = 0.0;       ///< data-set size where the sweep peaks

  /// Uniprocessor sweep curves, keyed by data-set bytes.
  LinearInterpolator uni_l2_hitr;
  LinearInterpolator uni_l1_hitr;
  LinearInterpolator uni_mem_frac;

  std::map<int, double> coh;          ///< Coh(s0,n) per processor count
  std::map<int, double> l2hitr_meas;  ///< measured L2hitr(s0,n)
  std::map<int, double> l2hitr_inf;   ///< 1 − compulsory − Coh(s0,n)

  /// Compulsory rate at data-set size `s` (bytes). Above s_max it is the
  /// peak-derived constant; below s_max the sweep's remaining misses are
  /// compulsory by construction (conflicts are gone once the set fits), so
  /// the curve itself is the estimate. This realizes the paper's stated
  /// limit: "the L2hitr_inf and L2hitr curves converge" at high n.
  double compulsory_rate_at(double s) const;

  double l2hitr_inf_inf(int n, double s0) const {
    return 1.0 - compulsory_rate_at(s0 / n);
  }

  double coh_of(int n) const;
  double l2hitr_inf_of(int n) const;
};

MissDecomposition decompose_misses(const ScalToolInputs& inputs);

}  // namespace scaltool
