// Mathematical scalability models — the related-work baseline.
//
// Section 5 contrasts Scal-Tool with mathematical models (load imbalance
// [5], speedup/efficiency trade-offs [4], shared-memory contention [6]):
// "while they are fast, they use simplified models, often with assumptions
// that restrict their accuracy". We implement the two classics so the
// claim is testable on our own data:
//
//  - Amdahl/serial-fraction model: T(n) = T1·(f + (1−f)/n), with f fitted
//    from the measured executions by least squares;
//  - an M/M/1-style memory-contention model: each processor's memory
//    requests queue at the home memories, so effective memory latency
//    grows as 1/(1−ρ) with utilization ρ ∝ n·(request rate)/(service
//    capacity).
//
// The comparison bench shows where they hold (Hydro2d's serial sections
// are almost pure Amdahl) and where they break (T3dheat's superlinear
// cache regime and synchronization wall violate both models' assumptions)
// — the paper's argument for empirical models, reproduced.
#pragma once

#include <vector>

#include "core/inputs.hpp"

namespace scaltool {

/// Serial-fraction (Amdahl) fit over measured execution times.
struct AmdahlFit {
  double serial_fraction = 0.0;  ///< fitted f ∈ [0, 1]
  double t1 = 0.0;               ///< measured 1-processor time
  double r2 = 0.0;               ///< fit quality over 1/speedup

  /// Predicted execution time at n processors.
  double predict_time(int n) const;
  double predict_speedup(int n) const;
};

/// Fits f by least squares on 1/S(n) = f + (1−f)/n using the base runs.
AmdahlFit fit_amdahl(const ScalToolInputs& inputs);

/// M/M/1 memory-contention model (Frank et al. style [6]).
struct ContentionModel {
  double t1 = 0.0;            ///< 1-processor time
  double mem_share = 0.0;     ///< fraction of T1 that is memory service
  double utilization1 = 0.0;  ///< memory utilization at n = 1

  /// Predicted time: compute scales 1/n; each memory's utilization stays
  /// ρ(n) = ρ1 (requests and memories both scale with n) but the *queueing*
  /// seen by a request grows with the burstiness of n clients; we use the
  /// standard 1/(1−ρ·(n−1)/n · σ) waiting-time inflation with σ = 1.
  double predict_time(int n) const;
  double predict_speedup(int n) const;
};

/// Builds the contention model from the uniprocessor base run's counters
/// (memory share from hm·tm-style accounting via the measured CPI split).
ContentionModel fit_contention(const ScalToolInputs& inputs,
                               double pi0_estimate);

/// Convenience: model-vs-measured speedups per processor count.
struct BaselineComparison {
  int n = 0;
  double measured = 0.0;
  double amdahl = 0.0;
  double contention = 0.0;
};
std::vector<BaselineComparison> compare_baselines(
    const ScalToolInputs& inputs, double pi0_estimate);

}  // namespace scaltool
