#include "cli/args.hpp"

#include <algorithm>
#include <cctype>

#include "common/check.hpp"

namespace scaltool {

Args::Args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

Args::Args(const std::vector<std::string>& tokens) { parse(tokens); }

void Args::parse(const std::vector<std::string>& tokens) {
  for (const std::string& tok : tokens) {
    if (tok.rfind("--", 0) == 0) {
      const std::string body = tok.substr(2);
      ST_CHECK_MSG(!body.empty(), "empty option '--'");
      const auto eq = body.find('=');
      if (eq == std::string::npos) {
        options_[body] = "true";  // boolean flag
      } else {
        const std::string key = body.substr(0, eq);
        ST_CHECK_MSG(!key.empty(), "option with empty name: " << tok);
        options_[key] = body.substr(eq + 1);
      }
    } else {
      positionals_.push_back(tok);
    }
  }
}

std::string Args::positional(std::size_t i,
                             const std::string& fallback) const {
  return i < positionals_.size() ? positionals_[i] : fallback;
}

bool Args::has(const std::string& key) const {
  queried_[key] = true;
  return options_.contains(key);
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

int Args::get_int(const std::string& key, int fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  std::size_t pos = 0;
  const int parsed = std::stoi(v, &pos);
  ST_CHECK_MSG(pos == v.size(), "option --" << key << " is not an integer: "
                                            << v);
  return parsed;
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  std::size_t pos = 0;
  const double parsed = std::stod(v, &pos);
  ST_CHECK_MSG(pos == v.size(), "option --" << key << " is not a number: "
                                            << v);
  return parsed;
}

std::size_t Args::get_size(const std::string& key, std::size_t fallback,
                           std::size_t l2_bytes) const {
  const std::string v = get(key, "");
  return v.empty() ? fallback : parse_size(v, l2_bytes);
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_)
    if (!queried_.contains(key) || !queried_.at(key)) out.push_back(key);
  return out;
}

std::size_t parse_size(const std::string& text, std::size_t l2_bytes) {
  ST_CHECK_MSG(!text.empty(), "empty size");
  std::size_t pos = 0;
  const double value = std::stod(text, &pos);
  ST_CHECK_MSG(value > 0.0, "size must be positive: " << text);
  std::string suffix = text.substr(pos);
  std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (suffix.empty()) return static_cast<std::size_t>(value);
  if (suffix == "kib" || suffix == "k")
    return static_cast<std::size_t>(value * 1024.0);
  if (suffix == "mib" || suffix == "m")
    return static_cast<std::size_t>(value * 1024.0 * 1024.0);
  if (suffix == "xl2")
    return static_cast<std::size_t>(value *
                                    static_cast<double>(l2_bytes));
  ST_CHECK_MSG(false, "unknown size suffix in '" << text
                                                 << "' (use KiB, MiB, xL2)");
}

}  // namespace scaltool
