// The scaltool command-line interface.
//
// Subcommands mirror a real performance-engineering workflow:
//
//   scaltool list                              bundled workloads
//   scaltool run <app> [--procs --size --iters --per-proc]
//                                              one run: perfex + speedshop +
//                                              ssusage + regions
//   scaltool collect <app> --out=FILE [--size --max-procs --iters
//                                      --jobs --cache]
//                                              gather the Table 3 matrix
//                                              into one archive file
//   scaltool analyze <app|archive> [--size --max-procs --sharing --chart
//                                   --jobs --cache]
//                                              full Scal-Tool report
//   scaltool whatif <app|archive> [--l2x --tm-scale --t2-scale
//                                  --tsyn-scale --pi0-scale --jobs --cache]
//                                              Sec. 2.6 predictions
//   scaltool region <app> <region> [--size --max-procs]
//                                              segment-level analysis
//
// Every command takes machine overrides: --machine-procs is per-run;
// --topology=<hypercube|crossbar|ring|mesh2d>, --l2-size=SIZE,
// --msi (plain-MSI protocol), --tlb=ENTRIES.
//
// All functions write to the given stream and return a process exit code,
// which keeps them unit-testable; main() is a thin wrapper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace scaltool::cli {

/// Dispatches a full command line (argv style, without the program name).
int run_command(const std::vector<std::string>& args, std::ostream& os);

/// Prints usage.
void print_help(std::ostream& os);

}  // namespace scaltool::cli
