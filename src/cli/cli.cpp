#include "cli/cli.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "apps/apps.hpp"
#include "cli/args.hpp"
#include "common/check.hpp"
#include "common/exit_codes.hpp"
#include "common/interrupt.hpp"
#include "core/scaltool.hpp"
#include "engine/campaign.hpp"
#include "engine/fault_injector.hpp"
#include "engine/fsck.hpp"
#include "io/env.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_merge.hpp"
#include "runner/runner.hpp"
#include "serve/exec.hpp"
#include "serve/fleet/fleet.hpp"
#include "serve/service.hpp"
#include "serve/transport.hpp"
#include "tools/perfex.hpp"
#include "tools/region_report.hpp"
#include "tools/speedshop.hpp"
#include "tools/ssusage.hpp"
#include "trace/trace_io.hpp"

namespace scaltool::cli {

namespace {

/// Reported by --version; bump alongside the project() version.
constexpr const char* kVersion = "0.9.0";

/// `scaltool fsck <path> [--repair] [--json]`: integrity-check one
/// artifact (archive/journal/cache, auto-detected). Exit 0 when clean,
/// 3 when findings were reported (repaired or not), 1 when the damage is
/// fatal — unreadable, unrecognizable, or a corrupt archive left in place.
int cmd_fsck(const Args& args, std::ostream& os) {
  const std::string path = args.positional(1, "");
  ST_CHECK_MSG(!path.empty(), "fsck needs a file: scaltool fsck <path>");
  const FsckReport report = fsck_file(path, args.has("repair"));
  if (args.has("json"))
    os << report.to_json() << "\n";
  else
    report.print(os);
  if (report.fatal) return kExitHardFailure;
  return report.clean() ? kExitOk : kExitDegraded;
}

int cmd_list(std::ostream& os) {
  register_standard_workloads();
  os << "bundled workloads:\n";
  for (const std::string& name : WorkloadRegistry::instance().names())
    os << "  " << name << "\n";
  return 0;
}

int cmd_run(const Args& args, std::ostream& os) {
  const std::string app = args.positional(1, "");
  ST_CHECK_MSG(!app.empty(), "usage: scaltool run <app> [--procs=N ...]");
  const ExperimentRunner runner = serve::runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 4 * l2, l2);
  const int procs = args.get_int("procs", 8);
  const bool per_proc = args.has("per-proc");
  serve::warn_unused(args, os);

  const RunResult result = runner.run_full(app, s0, procs);
  os << perfex_report(result, per_proc);
  os << ssusage_report(result, l2);
  os << speedshop_report(result);
  if (!result.regions.empty()) region_table(result).print(os);
  return 0;
}

int cmd_region(const Args& args, std::ostream& os) {
  const std::string app = args.positional(1, "");
  const std::string region = args.positional(2, "");
  ST_CHECK_MSG(!app.empty() && !region.empty(),
               "usage: scaltool region <app> <region>");
  const ExperimentRunner runner = serve::runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 10 * l2, l2);
  const int max_procs = args.get_int("max-procs", 16);
  serve::warn_unused(args, os);

  const ScalToolInputs inputs =
      runner.collect_region(app, region, s0, default_proc_counts(max_procs));
  const ScalabilityReport report = analyze(inputs);
  os << model_summary(report) << "\n";
  breakdown_table(report).print(os);
  return 0;
}

int cmd_stats(const Args& args, std::ostream& os) {
  const std::string socket = args.get("socket", "");
  const std::string path = args.positional(1, "");
  const bool prometheus = args.has("prometheus");
  const bool follow = args.has("follow");
  const int interval_ms = args.get_int("interval-ms", 2000);
  const int iterations = args.get_int("iterations", 0);
  ST_CHECK_MSG(!path.empty() || !socket.empty(),
               "usage: scaltool stats <metrics.json> | --socket=PATH "
               "[--prometheus] [--follow --interval-ms=T --iterations=N]");
  ST_CHECK_MSG(socket.empty() || path.empty(),
               "--socket and a metrics file are mutually exclusive");
  ST_CHECK_MSG(!follow || !socket.empty(),
               "--follow needs --socket (a file does not change underneath)");
  ST_CHECK_MSG(interval_ms >= 1, "--interval-ms must be >= 1");
  serve::warn_unused(args, os);

  const auto fetch = [&socket, &path] {
    if (socket.empty())
      return obs::parse_metrics_json(obs::read_text_file(path));
    serve::Request request;
    request.op = "metrics";
    const serve::Response response = serve::socket_call(socket, request, 5000);
    ST_CHECK_MSG(!response.stats_json.empty(),
                 "the server returned no metrics payload");
    return obs::parse_metrics_json(response.stats_json);
  };
  const auto render = [prometheus, &os](const obs::MetricsSnapshot& snap) {
    if (prometheus)
      os << obs::prometheus_text(snap);
    else
      for (const Table& table : obs::metrics_tables(snap)) table.print(os);
  };

  if (!follow) {
    render(fetch());
    return 0;
  }
  // Live watching: re-scrape on a cadence until the iteration budget (0 =
  // forever) runs out or a signal terminates the process.
  for (int i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      os << "\n";
    }
    render(fetch());
    os.flush();
  }
  return 0;
}

int cmd_trace_merge(const Args& args, std::ostream& os) {
  const std::string out = args.get("out", "");
  ST_CHECK_MSG(!out.empty(),
               "usage: scaltool trace-merge --out=FILE <trace.json>...");
  std::vector<obs::NamedTrace> traces;
  for (std::size_t i = 1;; ++i) {
    const std::string path = args.positional(i, "");
    if (path.empty()) break;
    traces.push_back(obs::NamedTrace{path, obs::read_text_file(path)});
  }
  ST_CHECK_MSG(!traces.empty(),
               "trace-merge needs at least one input trace");
  serve::warn_unused(args, os);
  obs::write_text_file(out, obs::merge_chrome_traces(traces));
  os << "merged " << traces.size() << " trace"
     << (traces.size() == 1 ? "" : "s") << " into " << out << "\n";
  return 0;
}

int cmd_record(const Args& args, std::ostream& os) {
  const std::string app = args.positional(1, "");
  const std::string out = args.get("out", "");
  ST_CHECK_MSG(!app.empty() && !out.empty(),
               "usage: scaltool record <app> --out=FILE");
  const ExperimentRunner runner = serve::runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 4 * l2, l2);
  const int procs = args.get_int("procs", 8);
  serve::warn_unused(args, os);

  RecordingWorkload recorder(WorkloadRegistry::instance().create(app));
  runner.run_full(recorder, s0, procs);
  const Trace trace = recorder.trace();
  save_trace(trace, out);
  os << "recorded " << trace.total_ops() << " operations of " << app
     << " (s = " << format_bytes(s0) << ", p = " << procs << ") into "
     << out << "\n";
  return 0;
}

int cmd_replay(const Args& args, std::ostream& os) {
  const std::string path = args.positional(1, "");
  ST_CHECK_MSG(!path.empty(),
               "usage: scaltool replay <tracefile> [machine overrides]");
  const ExperimentRunner runner = serve::runner_from(args);
  serve::warn_unused(args, os);

  Trace trace = load_trace(path);
  const std::size_t bytes = trace.dataset_bytes;
  const int procs = trace.num_procs;
  TraceWorkload replay(std::move(trace));
  const RunResult result = runner.run_full(replay, bytes, procs);
  os << perfex_report(result);
  os << speedshop_report(result);
  return 0;
}

int cmd_serve(const Args& args, std::ostream& os) {
  serve::ServiceOptions options;
  options.workers = args.get_int("workers", options.workers);
  options.engine_jobs = args.get_int("jobs", options.engine_jobs);
  options.max_queue = static_cast<std::size_t>(args.get_int("queue", 64));
  options.result_cache_entries =
      static_cast<std::size_t>(args.get_int("result-cache", 256));
  options.batching = !args.has("no-batch");
  options.run_cache_path = args.get("cache", "");
  options.retries = args.get_int("retries", 0);
  const std::string faults = args.get("faults", "");
  if (!faults.empty()) options.faults = FaultPlan::parse(faults);
  const std::string socket = args.get("socket", "");
  const bool stdio = args.has("stdio");
  ST_CHECK_MSG(stdio || !socket.empty(),
               "usage: scaltool serve --socket=PATH | --stdio [options]");
  ST_CHECK_MSG(!(stdio && !socket.empty()),
               "--socket and --stdio are mutually exclusive");
  serve::warn_unused(args, os);

  serve::AnalysisService service(options);
  if (stdio) {
    // Stdio mode keeps stdout a pure NDJSON response stream: no banner,
    // no shutdown summary.
    serve::serve_lines(std::cin, os, service);
    service.shutdown();
    return interrupt_requested() ? kExitInterrupted : 0;
  }
  serve::SocketServer server(service, socket);
  os << "scaltool serve: listening on " << socket
     << " (EOF on stdin drains and stops)\n";
  os.flush();
  // SIGINT/SIGTERM interrupt the getline (handlers install without
  // SA_RESTART), so a signal drains and stops just like EOF — but exits 6
  // so supervisors know a restart resumes where this instance stopped.
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  server.stop();
  service.shutdown();
  os << "scaltool serve: drained; stats " << service.stats().to_json()
     << "\n";
  return interrupt_requested() ? kExitInterrupted : 0;
}

int cmd_fleet(const Args& args, std::ostream& os) {
  serve::FleetOptions options;
  const std::string socket = args.get("socket", "");
  ST_CHECK_MSG(!socket.empty(),
               "usage: scaltool fleet --socket=PATH [--shards=N ...]");
  options.supervisor.shards = args.get_int("shards", 4);
  options.supervisor.socket_dir = args.get("socket-dir", socket + ".shards");
  // Worker service knobs: the same vocabulary as `scaltool serve`, applied
  // to every shard.
  options.supervisor.worker.workers =
      args.get_int("workers", options.supervisor.worker.workers);
  options.supervisor.worker.engine_jobs =
      args.get_int("jobs", options.supervisor.worker.engine_jobs);
  options.supervisor.worker.max_queue =
      static_cast<std::size_t>(args.get_int("queue", 64));
  options.supervisor.worker.result_cache_entries =
      static_cast<std::size_t>(args.get_int("result-cache", 256));
  options.supervisor.worker.batching = !args.has("no-batch");
  options.supervisor.worker.run_cache_path = args.get("cache", "");
  options.supervisor.worker.retries = args.get_int("retries", 0);
  const std::string faults = args.get("faults", "");
  if (!faults.empty())
    options.supervisor.worker.faults = FaultPlan::parse(faults);
  // Self-healing knobs.
  options.supervisor.restart.backoff_ms =
      args.get_int("restart-backoff-ms",
                   options.supervisor.restart.backoff_ms);
  options.supervisor.restart.max_deaths =
      args.get_int("max-deaths", options.supervisor.restart.max_deaths);
  options.supervisor.restart.window_ms =
      args.get_int("death-window-ms", options.supervisor.restart.window_ms);
  options.router.call_timeout_ms = args.get_int("call-timeout-ms", 0);
  options.router.hedge_after_ms = args.get_int("hedge-ms", 0);
  options.router.breaker.failure_threshold = args.get_int(
      "breaker-failures", options.router.breaker.failure_threshold);
  options.router.breaker.cooldown_ms =
      args.get_int("breaker-cooldown-ms", options.router.breaker.cooldown_ms);
  // Observability (DESIGN.md §13): --obs turns on fleet-wide tracing and
  // metrics, --trace-out implies it and also writes the merged timeline
  // at drain, --fdr arms the per-shard crash flight recorder.
  const std::string trace_out = args.get("trace-out", "");
  const bool obs_on = args.has("obs") || !trace_out.empty();
  const bool fdr_on = args.has("fdr");
  options.supervisor.worker_obs = obs_on;
  options.supervisor.worker_fdr = fdr_on;
  options.supervisor.scrape_metrics = obs_on || fdr_on;
  serve::warn_unused(args, os);

  ::mkdir(options.supervisor.socket_dir.c_str(), 0777);  // EEXIST is fine

  if (obs_on) obs::enable();  // the front door records fleet.request spans
  serve::Fleet fleet(std::move(options));
  fleet.supervisor().wait_ready(/*timeout_ms=*/15000);
  serve::SocketServer server(
      [&fleet](serve::Request request) {
        return fleet.submit(std::move(request));
      },
      socket);
  os << "scaltool fleet: " << fleet.supervisor().shards()
     << " shards behind " << socket << " (EOF on stdin drains and stops)\n";
  os.flush();
  // Same lifetime discipline as `scaltool serve`: EOF or a signal drains.
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  server.stop();
  const bool degraded = fleet.degraded();
  fleet.stop();
  if (obs_on) obs::disable();
  if (!trace_out.empty()) {
    try {
      fleet.write_merged_trace(trace_out);
      os << "scaltool fleet: merged trace written to " << trace_out << "\n";
    } catch (const CheckError& e) {
      os << "scaltool fleet: trace merge failed: " << e.what() << "\n";
    }
  }
  os << "scaltool fleet: drained; stats " << fleet.stats_json() << "\n";
  if (interrupt_requested()) return kExitInterrupted;
  return degraded ? serve::kExitFleetDegraded : 0;
}

/// The request client works on the raw token list: everything that is not
/// one of its own options is forwarded verbatim as the op and its
/// arguments, so `scaltool request analyze swim --size=2xL2` never
/// re-parses (or worse, consumes) the op's options.
int cmd_request(const std::vector<std::string>& argv, std::ostream& os) {
  std::string socket;
  std::string id;
  bool has_id = false;
  std::int64_t deadline_ms = 0;
  std::int64_t connect_retries = 2;
  std::int64_t retry_backoff_ms = 50;
  std::vector<std::string> forwarded;
  const auto int_option = [](const std::string& tok, std::size_t prefix,
                             const char* name) {
    const std::string value = tok.substr(prefix);
    ST_CHECK_MSG(!value.empty() && value.size() <= 12 &&
                     value.find_first_not_of("0123456789") ==
                         std::string::npos,
                 name << " needs a non-negative integer");
    return std::stoll(value);
  };
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& tok = argv[i];
    if (tok.rfind("--socket=", 0) == 0) {
      socket = tok.substr(9);
    } else if (tok.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = int_option(tok, 14, "--deadline-ms");
    } else if (tok.rfind("--connect-retries=", 0) == 0) {
      connect_retries = int_option(tok, 18, "--connect-retries");
    } else if (tok.rfind("--retry-backoff-ms=", 0) == 0) {
      retry_backoff_ms = int_option(tok, 19, "--retry-backoff-ms");
    } else if (tok.rfind("--id=", 0) == 0) {
      id = tok.substr(5);
      has_id = true;
    } else {
      forwarded.push_back(tok);
    }
  }
  ST_CHECK_MSG(!forwarded.empty(),
               "usage: scaltool request [--socket=PATH] [--deadline-ms=T] "
               "[--id=ID] [--connect-retries=N] [--retry-backoff-ms=M] "
               "<op> [op options]");

  serve::Request request;
  request.op = forwarded.front();
  request.args.assign(forwarded.begin() + 1, forwarded.end());
  request.deadline_ms = deadline_ms;
  // A content-derived fingerprint: it seeds the retry jitter, and — when
  // the caller supplied no id — becomes one, so every re-dial of this
  // request presents the same identity to the server's logs and caches.
  std::uint64_t fingerprint = serve::fnv1a(serve::kFnvBasis, request.op);
  for (const std::string& arg : request.args)
    fingerprint = serve::fnv1a(fingerprint, arg);
  fingerprint =
      serve::fnv1a(fingerprint, std::to_string(::getpid()));
  if (has_id) {
    request.id = obs::JsonValue(id);
  } else if (!socket.empty()) {
    std::ostringstream auto_id;
    auto_id << "auto-" << std::hex << fingerprint;
    request.id = obs::JsonValue(auto_id.str());
  }

  serve::Response response;
  if (!socket.empty()) {
    serve::RetryPolicy policy;
    policy.retries = static_cast<int>(connect_retries);
    policy.backoff_ms = static_cast<int>(retry_backoff_ms);
    policy.seed = fingerprint;
    response = serve::socket_call_resilient(socket, request, policy);
  } else {
    // No server: run the request against an in-process one-shot service,
    // which keeps `scaltool request` usable (and testable) stand-alone.
    serve::AnalysisService service;
    response = service.call(std::move(request));
    service.shutdown();
  }

  if (!response.stats_json.empty()) {
    os << response.stats_json << "\n";
  } else {
    os << response.output;  // CLI-equivalent bytes, verbatim
  }
  if (!response.error.empty()) os << "error: " << response.error << "\n";
  if (response.status == serve::Status::kOverloaded)
    os << "error: the service shed the request (overloaded)\n";
  if (response.status == serve::Status::kShuttingDown)
    os << "error: the service is shutting down\n";
  if (response.status == serve::Status::kDeadlineExceeded)
    os << "error: deadline exceeded\n";
  return response.exit_code;
}

}  // namespace

void print_help(std::ostream& os) {
  os << "scaltool — pinpoint and quantify DSM scalability bottlenecks\n"
        "\n"
        "usage: scaltool <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                         bundled workloads\n"
        "  run <app>                    one run: perfex/speedshop/ssusage\n"
        "      [--procs=N --size=S --iters=I --per-proc]\n"
        "  collect <app> --out=FILE     gather the measurement matrix\n"
        "      [--size=S --max-procs=N --iters=I --jobs=N --cache=FILE\n"
        "       --retries=N --backoff-ms=M --keep-going --faults=SPEC\n"
        "       --resume --journal=FILE --no-journal --run-timeout-ms=T\n"
        "       --adaptive --tolerance=T --max-runs=N]\n"
        "      --adaptive runs the core of the grid (base series, pi0\n"
        "      anchor, fit calibration, kernel endpoints) and then buys\n"
        "      one run at a time by expected CI shrinkage, stopping once\n"
        "      the what-if answers are stable within --tolerance (default\n"
        "      0.05) or --max-runs is hit; decisions are archived as\n"
        "      NOTE|PLAN| records and --resume replays them exactly\n"
        "  plan <app>                   print the adaptive schedule (grid\n"
        "                               partition, core, candidate pool)\n"
        "                               without simulating anything\n"
        "      [--size=S --max-procs=N --tolerance=T --max-runs=N]\n"
        "  analyze <app|archive>        full bottleneck report\n"
        "      [--size=S --max-procs=N --sharing --chart --robust-fit\n"
        "       --jobs=N --cache=FILE --retries=N --keep-going\n"
        "       --faults=SPEC]\n"
        "  whatif <app|archive>         Sec. 2.6 predictions\n"
        "      [--l2x=K --tm-scale=F --t2-scale=F --tsyn-scale=F\n"
        "       --pi0-scale=F --robust-fit --jobs=N --cache=FILE]\n"
        "  stats <metrics.json>         pretty-print an exported metrics\n"
        "                               file (see --metrics-out), or scrape\n"
        "                               a live server's registry\n"
        "      [--socket=PATH --prometheus --follow --interval-ms=T\n"
        "       --iterations=N]\n"
        "  trace-merge --out=FILE <trace.json>...\n"
        "                               fuse per-process Chrome traces into\n"
        "                               one timeline (lanes per process,\n"
        "                               clocks rebased; DESIGN.md §13)\n"
        "  fsck <path>                  integrity-check an archive,\n"
        "                               journal or run cache (kind auto-\n"
        "                               detected): per-record CRCs, the\n"
        "                               whole-file SUM footer, and the\n"
        "                               journal↔archive COMMIT state\n"
        "                               (DESIGN.md §15)\n"
        "      --repair    truncate torn journal tails, drop corrupt cache\n"
        "                  entries, quarantine archives that fail their\n"
        "                  checksum (collect --resume republishes them)\n"
        "      --json      machine-readable findings on one line\n"
        "  region <app> <region>        segment-level analysis\n"
        "  record <app> --out=FILE      capture an address trace\n"
        "      [--procs=N --size=S --iters=I]\n"
        "  replay <tracefile>           trace-driven run (honours the\n"
        "                               machine overrides below)\n"
        "  serve --socket=PATH|--stdio  long-running analysis service:\n"
        "                               newline-delimited JSON requests in,\n"
        "                               one response line each (DESIGN.md\n"
        "                               §10); EOF on stdin drains and stops\n"
        "      [--workers=N --jobs=N --queue=N --result-cache=N --no-batch\n"
        "       --cache=FILE --retries=N --faults=SPEC]\n"
        "  fleet --socket=PATH          self-healing serve fleet: N worker\n"
        "                               shard processes behind one front\n"
        "                               socket (DESIGN.md §12) — requests\n"
        "                               are consistent-hash routed, dead\n"
        "                               shards restart with backoff (crash\n"
        "                               loops are benched), in-flight\n"
        "                               collects fail over via the journal\n"
        "      [--shards=N --socket-dir=DIR --restart-backoff-ms=M\n"
        "       --max-deaths=K --death-window-ms=W --breaker-failures=N\n"
        "       --breaker-cooldown-ms=M --call-timeout-ms=T --hedge-ms=H\n"
        "       --obs --trace-out=FILE --fdr\n"
        "       + the serve worker options above]\n"
        "      --obs            fleet-wide tracing + metrics scraping; each\n"
        "                       request is tagged with a trace_id minted at\n"
        "                       the front door and followed across shards\n"
        "      --trace-out=FILE write the merged fleet timeline at drain\n"
        "                       (implies --obs; open in Perfetto)\n"
        "      --fdr            per-shard crash flight recorder: a dead\n"
        "                       shard leaves <socket>.postmortem.txt with\n"
        "                       its last events and in-flight request ids\n"
        "  request [--socket=PATH] <op> [op options]\n"
        "                               send one request (analyze, whatif,\n"
        "                               collect, stats, health, metrics,\n"
        "                               ping) to a\n"
        "                               running server — or, without\n"
        "                               --socket, to an in-process one-shot\n"
        "                               service — and print the response\n"
        "                               output verbatim; an unreachable\n"
        "                               server is re-dialed with jittered\n"
        "                               exponential backoff\n"
        "      [--deadline-ms=T --id=ID --connect-retries=N\n"
        "       --retry-backoff-ms=M]\n"
        "\n"
        "machine overrides (all commands):\n"
        "  --topology=hypercube|crossbar|ring|mesh2d\n"
        "  --l2-size=S   --msi   --tlb=ENTRIES\n"
        "\n"
        "campaign engine (collect/analyze/whatif):\n"
        "  --jobs=N      run the measurement matrix on N worker threads\n"
        "                (default 1 = serial; results are bit-identical)\n"
        "  --cache=FILE  memoize runs in a persistent cache; a warm rerun\n"
        "                performs zero simulator runs (see the printed\n"
        "                engine stats)\n"
        "\n"
        "resilience (collect/analyze/whatif):\n"
        "  --retries=N      retry a failed run up to N extra times with\n"
        "                   deterministic exponential backoff\n"
        "  --backoff-ms=M   base backoff delay (the k-th retry waits\n"
        "                   M << (k-1) ms; default 0 = no delay)\n"
        "  --keep-going     quarantine runs that fail every attempt and\n"
        "                   finish the matrix; missing uniprocessor points\n"
        "                   are interpolated, missing kernels borrowed from\n"
        "                   the nearest machine size, and every repair is\n"
        "                   listed in the report\n"
        "  --robust-fit     median-aggregate replicate triplets and reject\n"
        "                   residual outliers in the t2/tm fit\n"
        "  --run-timeout-ms=T  watchdog: abandon any single run attempt\n"
        "                   after T ms (retried/quarantined like a failure)\n"
        "  --faults=SPEC    seeded fault injection for drills, e.g.\n"
        "                   --faults=seed=7,transient=0.2,perturb=0.05\n"
        "                   (keys: seed, transient, permanent, stall,\n"
        "                   stall-ms, perturb, perturb-mag, drop,\n"
        "                   cache-corrupt, crash, target, target-procs,\n"
        "                   target-bytes; crash=N kills the process at the\n"
        "                   Nth run boundary — for recovery drills)\n"
        "                   storage kinds (DESIGN.md §15) fire at the Nth\n"
        "                   matching syscall on the durability paths:\n"
        "                   enospc=N, eio=N (writes fail from the Nth on),\n"
        "                   short-write=N (one write lands half its bytes),\n"
        "                   torn-rename=N (a publish rename tears),\n"
        "                   fsync-drop=N (fsync lies from the Nth on),\n"
        "                   emfile=N (opens fail: fd exhaustion)\n"
        "\n"
        "durability (DESIGN.md §11):\n"
        "  collect journals every completed run to <out>.journal and\n"
        "  publishes the archive atomically; after a crash or an interrupt,\n"
        "  rerun with --resume to replay the journal and simulate only\n"
        "  what is missing (the finished archive is byte-identical either\n"
        "  way, and the journal is removed on success)\n"
        "  --resume         replay <out>.journal before simulating\n"
        "  --journal=FILE   journal somewhere else (analyze/whatif collect\n"
        "                   in memory, so for them the journal is opt-in)\n"
        "  --no-journal     switch the crash safety off\n"
        "\n"
        "telemetry (collect/analyze/whatif; off unless requested):\n"
        "  --trace-out=FILE    write a Chrome trace_event JSON timeline\n"
        "                      (open in chrome://tracing or Perfetto)\n"
        "  --metrics-out=FILE  write the metric registry as stable JSON\n"
        "                      (pretty-print later with `scaltool stats`)\n"
        "  --obs               print the metric summary tables\n"
        "\n";
  // The 0–9 table renders from the one source of truth
  // (common/exit_codes.*), so --help, the README and the code can never
  // disagree about what a code means.
  print_exit_code_help(os);
  os << "\n"
        "sizes accept bytes, KiB/MiB, or xL2 (e.g. --size=10xL2).\n"
        "`scaltool --version` prints the version.\n";
}

int run_command(const std::vector<std::string>& argv, std::ostream& os) {
  try {
    // `request` forwards raw tokens to the op, so it dispatches before the
    // option parser gets a chance to claim them.
    if (!argv.empty() && argv.front() == "request")
      return cmd_request(argv, os);
    const Args args(argv);
    if (args.has("version")) {
      os << "scaltool " << kVersion << "\n";
      return 0;
    }
    const std::string command = args.positional(0, "help");
    if (command == "help" || args.has("help")) {
      print_help(os);
      return 0;
    }
    if (command == "list") return cmd_list(os);
    if (command == "run") return cmd_run(args, os);
    if (command == "collect") return serve::exec_collect(args, os);
    if (command == "plan") return serve::exec_plan(args, os);
    if (command == "analyze") return serve::exec_analyze(args, os);
    if (command == "whatif") return serve::exec_whatif(args, os);
    if (command == "stats") return cmd_stats(args, os);
    if (command == "fsck") return cmd_fsck(args, os);
    if (command == "trace-merge") return cmd_trace_merge(args, os);
    if (command == "region") return cmd_region(args, os);
    if (command == "record") return cmd_record(args, os);
    if (command == "replay") return cmd_replay(args, os);
    if (command == "serve") return cmd_serve(args, os);
    if (command == "fleet") return cmd_fleet(args, os);
    os << "unknown command: " << command << "\n\n";
    print_help(os);
    return 2;
  } catch (const CampaignCancelled& e) {
    os << "interrupted: " << e.what()
       << " — completed runs are journaled; rerun with --resume\n";
    return kExitInterrupted;
  } catch (const io::StorageError& e) {
    // Before the generic CheckError handler: a storage fault on a
    // durability path gets the dedicated code and the recovery hint —
    // everything completed so far is journaled.
    os << "storage fault: " << e.what()
       << " — completed runs are journaled; free space or fix the disk, "
          "then rerun with --resume (scaltool fsck verifies the "
          "artifacts)\n";
    return kExitStorageFault;
  } catch (const CheckError& e) {
    os << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace scaltool::cli
