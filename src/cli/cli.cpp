#include "cli/cli.hpp"

#include <fstream>
#include <ostream>
#include <utility>

#include "apps/apps.hpp"
#include "cli/args.hpp"
#include "common/ascii_chart.hpp"
#include "common/check.hpp"
#include "core/scaltool.hpp"
#include "engine/campaign.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runner/archive.hpp"
#include "runner/runner.hpp"
#include "trace/trace_io.hpp"
#include "tools/perfex.hpp"
#include "tools/region_report.hpp"
#include "tools/speedshop.hpp"
#include "tools/ssusage.hpp"

namespace scaltool::cli {

namespace {

MachineConfig machine_from(const Args& args) {
  MachineConfig cfg = MachineConfig::origin2000_scaled(1);
  const std::string topo = args.get("topology", "hypercube");
  if (topo == "hypercube") {
    cfg.network.topology = TopologyKind::kBristledHypercube;
  } else if (topo == "crossbar") {
    cfg.network.topology = TopologyKind::kCrossbar;
  } else if (topo == "ring") {
    cfg.network.topology = TopologyKind::kRing;
  } else if (topo == "mesh2d") {
    cfg.network.topology = TopologyKind::kMesh2D;
  } else {
    ST_CHECK_MSG(false, "unknown --topology=" << topo);
  }
  cfg.l2.size_bytes =
      args.get_size("l2-size", cfg.l2.size_bytes, cfg.l2.size_bytes);
  if (args.has("msi")) cfg.exclusive_state = false;
  cfg.tlb_entries = args.get_int("tlb", cfg.tlb_entries);
  cfg.validate();
  return cfg;
}

ExperimentRunner runner_from(const Args& args) {
  register_standard_workloads();
  ExperimentRunner runner(machine_from(args));
  runner.iterations = args.get_int("iters", runner.iterations);
  return runner;
}

bool is_archive(const std::string& target) {
  std::ifstream is(target);
  if (!is.good()) return false;
  std::string head;
  std::getline(is, head);
  return head.rfind("scaltool-inputs", 0) == 0;
}

/// Campaign-engine options shared by collect/analyze/whatif. --jobs=1
/// without --cache keeps the original serial path (and output) untouched.
CampaignOptions engine_from(const Args& args) {
  CampaignOptions options;
  options.jobs = args.get_int("jobs", 1);
  ST_CHECK_MSG(options.jobs >= 1, "--jobs must be at least 1");
  options.cache_path = args.get("cache", "");
  options.retries = args.get_int("retries", 0);
  options.backoff_ms = args.get_int("backoff-ms", 0);
  options.keep_going = args.has("keep-going");
  const std::string faults = args.get("faults", "");
  if (!faults.empty()) options.faults = FaultPlan::parse(faults);
  return options;
}

bool engine_engaged(const CampaignOptions& options) {
  return options.jobs > 1 || !options.cache_path.empty() ||
         options.retries > 0 || options.keep_going ||
         options.faults.enabled();
}

/// Telemetry options shared by collect/analyze/whatif. Telemetry stays off
/// unless one of --trace-out/--metrics-out/--obs asks for it, so the default
/// paths (and their output bytes) are untouched.
struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
  bool table = false;

  bool engaged() const {
    return !trace_out.empty() || !metrics_out.empty() || table;
  }
};

ObsOptions obs_from(const Args& args) {
  ObsOptions options;
  options.trace_out = args.get("trace-out", "");
  options.metrics_out = args.get("metrics-out", "");
  options.table = args.has("obs");
  if (options.engaged()) obs::enable();
  return options;
}

/// Flushes the telemetry a command gathered: trace and metrics files first,
/// then the human summary. Disables telemetry so a later command in the same
/// process starts from a clean registry.
void finish_obs(const ObsOptions& options, std::ostream& os) {
  if (!options.engaged()) return;
  const obs::MetricsSnapshot snap = obs::MetricRegistry::instance().snapshot();
  if (!options.trace_out.empty()) {
    obs::write_text_file(options.trace_out, obs::chrome_trace_json());
    os << "trace written to " << options.trace_out
       << " (open in chrome://tracing or Perfetto)\n";
  }
  if (!options.metrics_out.empty()) {
    obs::write_text_file(options.metrics_out, obs::metrics_json(snap));
    os << "metrics written to " << options.metrics_out << "\n";
  }
  if (options.table)
    for (const Table& table : obs::metrics_tables(snap)) table.print(os);
  obs::disable();
}

/// Collects the matrix, through the campaign engine when --jobs/--cache/
/// --retries/--keep-going/--faults ask for it; the engine path prints its
/// metrics plus the retry/quarantine journal, and reports via `degraded`
/// whether the result was assembled from a partial matrix (exit code 3).
ScalToolInputs collect_matrix(const Args& args,
                              const ExperimentRunner& runner,
                              const std::string& app, std::size_t s0,
                              int max_procs, std::ostream& os,
                              bool* degraded = nullptr) {
  const CampaignOptions options = engine_from(args);
  const std::vector<int> counts = default_proc_counts(max_procs);
  if (!engine_engaged(options)) return runner.collect(app, s0, counts);
  CampaignEngine engine(runner, options);
  ScalToolInputs inputs = engine.collect(app, s0, counts);
  os << engine_stats_line(engine.stats()) << "\n";
  engine_stats_table(engine.stats()).print(os);
  for (const std::string& event : engine.events())
    os << "event: " << event << "\n";
  for (const std::string& note : inputs.notes)
    os << "degraded: " << note << "\n";
  if (degraded && !inputs.notes.empty()) *degraded = true;
  return inputs;
}

/// The analyze/whatif commands accept either a saved archive or an app
/// name (collected on the fly). An archive that carries degradation notes
/// (it was assembled from a faulty campaign) marks the run degraded too.
ScalToolInputs inputs_from(const Args& args, const std::string& target,
                           const ExperimentRunner& runner, std::ostream& os,
                           bool* degraded = nullptr) {
  if (is_archive(target)) {
    (void)engine_from(args);  // marks the engine options as consumed
    ScalToolInputs inputs = load_inputs(target);
    if (degraded && !inputs.notes.empty()) *degraded = true;
    return inputs;
  }
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 10 * l2, l2);
  const int max_procs = args.get_int("max-procs", 32);
  return collect_matrix(args, runner, target, s0, max_procs, os, degraded);
}

void warn_unused(const Args& args, std::ostream& os) {
  for (const std::string& key : args.unused())
    os << "warning: unrecognized option --" << key << "\n";
}

void chart_curves(const ScalabilityReport& report, std::ostream& os) {
  std::vector<std::pair<double, double>> base, no_l2, no_mp;
  for (const BottleneckPoint& p : report.points) {
    base.emplace_back(p.n, p.base_cycles / 1e6);
    no_l2.emplace_back(p.n, p.cycles_no_l2lim / 1e6);
    no_mp.emplace_back(p.n, p.cycles_no_l2lim_no_mp / 1e6);
  }
  AsciiChart chart(56, 14);
  chart.add_series('B', "Base (Mcycles)", std::move(base));
  chart.add_series('o', "Base - L2Lim", std::move(no_l2));
  chart.add_series('.', "Base - L2Lim - MP", std::move(no_mp));
  os << chart.render();
}

int cmd_list(std::ostream& os) {
  register_standard_workloads();
  os << "bundled workloads:\n";
  for (const std::string& name : WorkloadRegistry::instance().names())
    os << "  " << name << "\n";
  return 0;
}

int cmd_run(const Args& args, std::ostream& os) {
  const std::string app = args.positional(1, "");
  ST_CHECK_MSG(!app.empty(), "usage: scaltool run <app> [--procs=N ...]");
  const ExperimentRunner runner = runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 4 * l2, l2);
  const int procs = args.get_int("procs", 8);
  const bool per_proc = args.has("per-proc");
  warn_unused(args, os);

  const RunResult result = runner.run_full(app, s0, procs);
  os << perfex_report(result, per_proc);
  os << ssusage_report(result, l2);
  os << speedshop_report(result);
  if (!result.regions.empty()) region_table(result).print(os);
  return 0;
}

int cmd_collect(const Args& args, std::ostream& os) {
  const std::string app = args.positional(1, "");
  const std::string out = args.get("out", "");
  ST_CHECK_MSG(!app.empty() && !out.empty(),
               "usage: scaltool collect <app> --out=FILE");
  const ObsOptions obs_options = obs_from(args);
  const ExperimentRunner runner = runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 10 * l2, l2);
  const int max_procs = args.get_int("max-procs", 32);
  bool degraded = false;
  const ScalToolInputs inputs =
      collect_matrix(args, runner, app, s0, max_procs, os, &degraded);
  warn_unused(args, os);
  save_inputs(inputs, out);
  os << "collected " << inputs.base_runs.size() << " base runs, "
     << inputs.uni_runs.size() << " uniprocessor runs and "
     << inputs.kernels.size() << " kernel pairs for " << app << " (s0 = "
     << format_bytes(s0) << ") into " << out << "\n";
  finish_obs(obs_options, os);
  return degraded ? 3 : 0;
}

int cmd_analyze(const Args& args, std::ostream& os) {
  const std::string target = args.positional(1, "");
  ST_CHECK_MSG(!target.empty(),
               "usage: scaltool analyze <app|archive> [--sharing]");
  const ObsOptions obs_options = obs_from(args);
  const ExperimentRunner runner = runner_from(args);
  AnalyzeOptions options;
  options.model_sharing = args.has("sharing");
  options.cpi.robust = args.has("robust-fit");
  const bool chart = args.has("chart");
  bool degraded = false;
  const ScalToolInputs inputs = inputs_from(args, target, runner, os,
                                            &degraded);
  warn_unused(args, os);

  const ScalabilityReport report = analyze(inputs, options);
  if (!report.model.fit_rejected.empty()) degraded = true;
  os << model_summary(report) << "\n";
  speedup_table(inputs).print(os);
  breakdown_table(report).print(os);
  if (chart) chart_curves(report, os);
  if (!inputs.validation.empty()) validation_table(report, inputs).print(os);
  finish_obs(obs_options, os);
  return degraded ? 3 : 0;
}

int cmd_whatif(const Args& args, std::ostream& os) {
  const std::string target = args.positional(1, "");
  ST_CHECK_MSG(!target.empty(),
               "usage: scaltool whatif <app|archive> --l2x=K ...");
  const ObsOptions obs_options = obs_from(args);
  const ExperimentRunner runner = runner_from(args);
  WhatIfParams params;
  params.l2_scale_k = args.get_double("l2x", 1.0);
  params.tm_scale = args.get_double("tm-scale", 1.0);
  params.t2_scale = args.get_double("t2-scale", 1.0);
  params.tsyn_scale = args.get_double("tsyn-scale", 1.0);
  params.pi0_scale = args.get_double("pi0-scale", 1.0);
  AnalyzeOptions options;
  options.cpi.robust = args.has("robust-fit");
  bool degraded = false;
  const ScalToolInputs inputs = inputs_from(args, target, runner, os,
                                            &degraded);
  warn_unused(args, os);

  const ScalabilityReport report = analyze(inputs, options);
  if (!report.model.fit_rejected.empty()) degraded = true;
  if (params.is_identity())
    os << "note: no parameter changed; showing the identity scenario "
          "(pass --l2x, --tm-scale, --t2-scale, --tsyn-scale or "
          "--pi0-scale)\n";
  whatif_table(what_if(report, inputs, params), "CLI scenario").print(os);
  finish_obs(obs_options, os);
  return degraded ? 3 : 0;
}

int cmd_region(const Args& args, std::ostream& os) {
  const std::string app = args.positional(1, "");
  const std::string region = args.positional(2, "");
  ST_CHECK_MSG(!app.empty() && !region.empty(),
               "usage: scaltool region <app> <region>");
  const ExperimentRunner runner = runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 10 * l2, l2);
  const int max_procs = args.get_int("max-procs", 16);
  warn_unused(args, os);

  const ScalToolInputs inputs =
      runner.collect_region(app, region, s0, default_proc_counts(max_procs));
  const ScalabilityReport report = analyze(inputs);
  os << model_summary(report) << "\n";
  breakdown_table(report).print(os);
  return 0;
}

int cmd_stats(const Args& args, std::ostream& os) {
  const std::string path = args.positional(1, "");
  ST_CHECK_MSG(!path.empty(), "usage: scaltool stats <metrics.json>");
  warn_unused(args, os);
  const obs::MetricsSnapshot snap =
      obs::parse_metrics_json(obs::read_text_file(path));
  for (const Table& table : obs::metrics_tables(snap)) table.print(os);
  return 0;
}

int cmd_record(const Args& args, std::ostream& os) {
  const std::string app = args.positional(1, "");
  const std::string out = args.get("out", "");
  ST_CHECK_MSG(!app.empty() && !out.empty(),
               "usage: scaltool record <app> --out=FILE");
  const ExperimentRunner runner = runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 4 * l2, l2);
  const int procs = args.get_int("procs", 8);
  warn_unused(args, os);

  RecordingWorkload recorder(WorkloadRegistry::instance().create(app));
  runner.run_full(recorder, s0, procs);
  const Trace trace = recorder.trace();
  save_trace(trace, out);
  os << "recorded " << trace.total_ops() << " operations of " << app
     << " (s = " << format_bytes(s0) << ", p = " << procs << ") into "
     << out << "\n";
  return 0;
}

int cmd_replay(const Args& args, std::ostream& os) {
  const std::string path = args.positional(1, "");
  ST_CHECK_MSG(!path.empty(),
               "usage: scaltool replay <tracefile> [machine overrides]");
  const ExperimentRunner runner = runner_from(args);
  warn_unused(args, os);

  Trace trace = load_trace(path);
  const std::size_t bytes = trace.dataset_bytes;
  const int procs = trace.num_procs;
  TraceWorkload replay(std::move(trace));
  const RunResult result = runner.run_full(replay, bytes, procs);
  os << perfex_report(result);
  os << speedshop_report(result);
  return 0;
}

}  // namespace

void print_help(std::ostream& os) {
  os << "scaltool — pinpoint and quantify DSM scalability bottlenecks\n"
        "\n"
        "usage: scaltool <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                         bundled workloads\n"
        "  run <app>                    one run: perfex/speedshop/ssusage\n"
        "      [--procs=N --size=S --iters=I --per-proc]\n"
        "  collect <app> --out=FILE     gather the measurement matrix\n"
        "      [--size=S --max-procs=N --iters=I --jobs=N --cache=FILE\n"
        "       --retries=N --backoff-ms=M --keep-going --faults=SPEC]\n"
        "  analyze <app|archive>        full bottleneck report\n"
        "      [--size=S --max-procs=N --sharing --chart --robust-fit\n"
        "       --jobs=N --cache=FILE --retries=N --keep-going\n"
        "       --faults=SPEC]\n"
        "  whatif <app|archive>         Sec. 2.6 predictions\n"
        "      [--l2x=K --tm-scale=F --t2-scale=F --tsyn-scale=F\n"
        "       --pi0-scale=F --robust-fit --jobs=N --cache=FILE]\n"
        "  stats <metrics.json>         pretty-print an exported metrics\n"
        "                               file (see --metrics-out)\n"
        "  region <app> <region>        segment-level analysis\n"
        "  record <app> --out=FILE      capture an address trace\n"
        "      [--procs=N --size=S --iters=I]\n"
        "  replay <tracefile>           trace-driven run (honours the\n"
        "                               machine overrides below)\n"
        "\n"
        "machine overrides (all commands):\n"
        "  --topology=hypercube|crossbar|ring|mesh2d\n"
        "  --l2-size=S   --msi   --tlb=ENTRIES\n"
        "\n"
        "campaign engine (collect/analyze/whatif):\n"
        "  --jobs=N      run the measurement matrix on N worker threads\n"
        "                (default 1 = serial; results are bit-identical)\n"
        "  --cache=FILE  memoize runs in a persistent cache; a warm rerun\n"
        "                performs zero simulator runs (see the printed\n"
        "                engine stats)\n"
        "\n"
        "resilience (collect/analyze/whatif):\n"
        "  --retries=N      retry a failed run up to N extra times with\n"
        "                   deterministic exponential backoff\n"
        "  --backoff-ms=M   base backoff delay (the k-th retry waits\n"
        "                   M << (k-1) ms; default 0 = no delay)\n"
        "  --keep-going     quarantine runs that fail every attempt and\n"
        "                   finish the matrix; missing uniprocessor points\n"
        "                   are interpolated, missing kernels borrowed from\n"
        "                   the nearest machine size, and every repair is\n"
        "                   listed in the report\n"
        "  --robust-fit     median-aggregate replicate triplets and reject\n"
        "                   residual outliers in the t2/tm fit\n"
        "  --faults=SPEC    seeded fault injection for drills, e.g.\n"
        "                   --faults=seed=7,transient=0.2,perturb=0.05\n"
        "                   (keys: seed, transient, permanent, stall,\n"
        "                   stall-ms, perturb, perturb-mag, drop,\n"
        "                   cache-corrupt, target, target-procs,\n"
        "                   target-bytes)\n"
        "\n"
        "telemetry (collect/analyze/whatif; off unless requested):\n"
        "  --trace-out=FILE    write a Chrome trace_event JSON timeline\n"
        "                      (open in chrome://tracing or Perfetto)\n"
        "  --metrics-out=FILE  write the metric registry as stable JSON\n"
        "                      (pretty-print later with `scaltool stats`)\n"
        "  --obs               print the metric summary tables\n"
        "\n"
        "exit codes:\n"
        "  0  success\n"
        "  1  hard failure (unrecoverable run, bad arguments, I/O error)\n"
        "  2  unknown command\n"
        "  3  completed, but degraded: the result was assembled from a\n"
        "     partial matrix (quarantined runs, interpolated points,\n"
        "     substituted kernels) or the robust fit rejected outliers\n"
        "\n"
        "sizes accept bytes, KiB/MiB, or xL2 (e.g. --size=10xL2).\n";
}

int run_command(const std::vector<std::string>& argv, std::ostream& os) {
  try {
    const Args args(argv);
    const std::string command = args.positional(0, "help");
    if (command == "help" || args.has("help")) {
      print_help(os);
      return 0;
    }
    if (command == "list") return cmd_list(os);
    if (command == "run") return cmd_run(args, os);
    if (command == "collect") return cmd_collect(args, os);
    if (command == "analyze") return cmd_analyze(args, os);
    if (command == "whatif") return cmd_whatif(args, os);
    if (command == "stats") return cmd_stats(args, os);
    if (command == "region") return cmd_region(args, os);
    if (command == "record") return cmd_record(args, os);
    if (command == "replay") return cmd_replay(args, os);
    os << "unknown command: " << command << "\n\n";
    print_help(os);
    return 2;
  } catch (const CheckError& e) {
    os << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace scaltool::cli
