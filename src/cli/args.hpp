// Minimal command-line argument parsing for the scaltool CLI.
//
// Grammar: positionals and --key=value / --flag options, in any order.
// Size values accept plain bytes, KiB/MiB suffixes, and "NxL2" (multiples
// of the configured L2 capacity) — the unit the paper's analysis thinks in.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace scaltool {

class Args {
 public:
  /// Parses argv[1..). Throws CheckError on malformed options.
  Args(int argc, const char* const* argv);
  explicit Args(const std::vector<std::string>& tokens);

  const std::vector<std::string>& positionals() const { return positionals_; }
  std::string positional(std::size_t i, const std::string& fallback) const;

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Parses a size option: "65536", "64KiB", "4MiB" or "10xL2" (resolved
  /// against `l2_bytes`).
  std::size_t get_size(const std::string& key, std::size_t fallback,
                       std::size_t l2_bytes) const;

  /// Keys that were provided but never queried — catches typos. Call after
  /// all get()s.
  std::vector<std::string> unused() const;

 private:
  void parse(const std::vector<std::string>& tokens);

  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> queried_;
};

/// Parses a standalone size string (same grammar as Args::get_size).
std::size_t parse_size(const std::string& text, std::size_t l2_bytes);

}  // namespace scaltool
