// Entry point of the scaltool CLI (see cli.hpp for the command set).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "common/interrupt.hpp"

int main(int argc, char** argv) {
  // First SIGINT/SIGTERM checkpoints and exits 6 (resumable); a second
  // one kills the process the default way.
  scaltool::install_interrupt_handlers();
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return scaltool::cli::run_command(args, std::cout);
}
