// Entry point of the scaltool CLI (see cli.hpp for the command set).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return scaltool::cli::run_command(args, std::cout);
}
