#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace scaltool {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  ST_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    ST_CHECK_MSG(x > 0.0, "geomean requires positive values, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double rel_diff(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  if (scale == 0.0) return 0.0;
  return std::abs(a - b) / scale;
}

double imbalance_factor(std::span<const double> per_proc) {
  if (per_proc.empty()) return 0.0;
  const double avg = mean(per_proc);
  if (avg == 0.0) return 0.0;
  const double mx = *std::max_element(per_proc.begin(), per_proc.end());
  return mx / avg - 1.0;
}

}  // namespace scaltool
