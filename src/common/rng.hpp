// Deterministic pseudo-random number generation (xoshiro256**).
//
// The simulator must be bit-reproducible across runs and platforms, so we
// avoid std::mt19937 distribution differences and carry our own generator
// plus the few distributions we need.
#pragma once

#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace scaltool {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministically seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ca1ab1eULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fill the state; never leaves the state all-zero.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    ST_DCHECK(bound > 0);
    // Lemire's rejection-free-ish multiply-shift with rejection for exactness.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    ST_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace scaltool
