// CRC-32 (IEEE 802.3, the zlib polynomial).
//
// One checksum for every integrity guard in the tree: per-record journal
// CRCs, the two-phase commit's archive CRC, and the whole-file SUM
// footers that archive/cache writers append (DESIGN.md §15). Lived in the
// journal until the footer work needed it below the engine layer.
#pragma once

#include <cstdint>
#include <string>

namespace scaltool {

/// CRC-32 over `bytes`.
std::uint32_t crc32(const std::string& bytes);

/// Extends a running CRC with more bytes. Start from `crc32_init()` and
/// finish with `crc32_final()`; crc32(s) == crc32_final(crc32_update(
/// crc32_init(), s)). Lets readers checksum a file line by line.
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, const std::string& bytes);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace scaltool
