#include "common/interrupt.hpp"

#include <signal.h>

#include <atomic>

namespace scaltool {

namespace {

std::atomic<bool> g_interrupted{false};

extern "C" void handle_interrupt(int signum) {
  // Second signal: the user insists. Fall back to the default disposition
  // and re-raise so the process dies with the conventional status.
  if (g_interrupted.exchange(true, std::memory_order_relaxed)) {
    ::signal(signum, SIG_DFL);
    ::raise(signum);
  }
}

}  // namespace

void install_interrupt_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_interrupt;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked reads must wake up
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

void reset_interrupted() {
  g_interrupted.store(false, std::memory_order_relaxed);
}

}  // namespace scaltool
