// Process supervision utilities (DESIGN.md §12).
//
// The serve fleet runs its worker shards as real processes — a SIGKILL on
// one must not take the front door with it — so somebody has to own the
// fork/reap mechanics. This module is that somebody: spawn_child() forks
// and runs a function in a child whose descriptor table is scrubbed down
// to an explicit keep-list (a forked worker must not hold the parent's
// listening sockets or client connections open past the parent's death),
// and the reap helpers wrap waitpid so supervisors can poll for deaths
// without blocking, or wait with an escalation deadline.
//
// The child never returns into the caller's stack: it _exit()s with the
// entry function's return value, so gtest listeners, atexit hooks and
// stream buffers of the parent image stay untouched (the same discipline
// as the crash harness in tests/).
#pragma once

#include <sys/types.h>

#include <functional>
#include <optional>
#include <vector>

namespace scaltool {

/// What wait(2) said about a reaped child.
struct ChildExit {
  int status = 0;  ///< raw waitpid status

  bool exited() const;
  int exit_code() const;  ///< meaningful only when exited()
  bool signaled() const;
  int term_signal() const;  ///< meaningful only when signaled()
};

/// Closes every open descriptor except 0/1/2 and `keep`. Never throws —
/// it runs on the child side of fork(), where unwinding is not an option.
void close_other_fds(const std::vector<int>& keep);

/// fork()s; the child scrubs its descriptors (close_other_fds with `keep`),
/// runs `entry`, and _exit()s with its return value (125 if `entry` lets
/// an exception escape). Returns the child pid to the parent. Throws
/// CheckError only when fork itself fails.
pid_t spawn_child(const std::function<int()>& entry,
                  const std::vector<int>& keep = {});

/// Non-blocking reap: nullopt while `pid` still runs, the exit status once
/// it is collected. CheckError when `pid` is not a child of this process.
std::optional<ChildExit> try_reap(pid_t pid);

/// Blocking reap.
ChildExit reap(pid_t pid);

/// Reap with an escalation deadline: polls for `grace_ms`, then SIGTERM
/// and polls `term_ms` more, then SIGKILL (which cannot be ignored) and a
/// final blocking reap. The supervisor's stop path: a draining worker gets
/// time to checkpoint, a wedged one still dies.
ChildExit reap_with_deadline(pid_t pid, int grace_ms, int term_ms);

/// True while `pid` names a live process (kill(pid, 0) semantics).
bool pid_alive(pid_t pid);

}  // namespace scaltool
