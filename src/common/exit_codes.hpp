// The one source of truth for process exit codes (DESIGN.md §15).
//
// Exit codes accreted across PRs 2–10 (degraded results, service shed,
// interrupts, fleet quarantine, adaptive budgets, storage faults) and were
// documented in three places that could drift. This header is now the only
// place a code is assigned, and exit_code_help() renders the table that
// `scaltool --help` and the README reference — adding a code without a
// description is a compile error.
#pragma once

#include <cstddef>
#include <ostream>

namespace scaltool {

inline constexpr int kExitOk = 0;
/// Unrecoverable failure: bad arguments, a run that failed every attempt,
/// an I/O error outside the checkpointed storage paths.
inline constexpr int kExitHardFailure = 1;
inline constexpr int kExitUnknownCommand = 2;
/// Completed, but the result was assembled from a partial matrix or the
/// robust fit rejected outliers (PR 2).
inline constexpr int kExitDegraded = 3;
/// Service shed the request (overloaded) or is shutting down (PR 4).
inline constexpr int kExitUnavailable = 4;
inline constexpr int kExitDeadlineExceeded = 5;
/// SIGINT/SIGTERM checkpoint-and-exit: completed runs are journaled, a
/// rerun with --resume loses nothing (PR 5).
inline constexpr int kExitInterrupted = 6;
/// The fleet served and drained, but a crash-looping or storage-starved
/// shard was benched along the way (PR 6).
inline constexpr int kExitFleetDegraded = 7;
/// collect --adaptive hit --max-runs before the what-if answers
/// stabilized; the archive is published and the journal kept (PR 9).
inline constexpr int kExitToleranceUnreachable = 8;
/// Storage fault (ENOSPC/EIO/short storage) on a durability path: the
/// campaign checkpointed to its journal and stopped instead of aborting
/// or silently truncating — free space / fix the disk and rerun with
/// --resume (DESIGN.md §15).
inline constexpr int kExitStorageFault = 9;

/// One row of the exit-code table.
struct ExitCodeInfo {
  int code;
  const char* name;         ///< stable short human name ("fleet degraded")
  const char* description;  ///< the --help / README wording
};

/// All assigned exit codes, ascending. Terminated by sentinel semantics of
/// exit_code_count().
const ExitCodeInfo* exit_code_table();
std::size_t exit_code_count();

/// Renders the canonical "exit codes:" help section (two-space indent,
/// wrapped continuation lines) — the text `scaltool --help` prints.
void print_exit_code_help(std::ostream& os);

/// Name for one code ("success", "storage fault", ...); "unknown" when
/// the code is not in the table.
const char* exit_code_name(int code);

}  // namespace scaltool
