// Plain-text table and CSV rendering.
//
// Every bench binary regenerates one of the paper's tables or figure data
// series; this renderer produces aligned human-readable tables plus an
// optional CSV block that downstream plotting scripts can consume.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace scaltool {

/// Column-aligned table with a title, header row and string cells.
/// Numeric convenience overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any add_row.
  Table& header(std::vector<std::string> cols);

  /// Appends a row; the cell count must match the header.
  Table& add_row(std::vector<std::string> cells);

  /// Number formatting used by `cell()`.
  static std::string cell(double v, int precision = 3);
  static std::string cell(long long v);
  static std::string cell(unsigned long long v);
  static std::string cell(int v) { return cell(static_cast<long long>(v)); }
  static std::string cell(std::size_t v) {
    return cell(static_cast<unsigned long long>(v));
  }

  std::size_t num_rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  /// Renders the aligned table.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas is needed for
  /// our numeric content; cells containing commas are rejected).
  std::string to_csv() const;

  /// Prints to stream: title, aligned table, then a CSV block for plotting.
  void print(std::ostream& os, bool with_csv = false) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count using KiB/MiB units (e.g. "64.0 KiB").
std::string format_bytes(std::size_t bytes);

}  // namespace scaltool
