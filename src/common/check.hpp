// Lightweight contract checking (Core Guidelines I.6/E.12 style).
//
// ST_CHECK is always on and throws scaltool::CheckError so tests can assert
// on contract violations; ST_DCHECK compiles away in NDEBUG builds and
// guards hot paths.
#pragma once

#include <stdexcept>
#include <sstream>
#include <string>

namespace scaltool {

/// Thrown when a runtime contract (precondition/invariant) is violated.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace scaltool

#define ST_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr))                                                           \
      ::scaltool::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define ST_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream st_check_os_;                                     \
      st_check_os_ << msg;                                                 \
      ::scaltool::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                       st_check_os_.str());                \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define ST_DCHECK(expr) ((void)0)
#else
#define ST_DCHECK(expr) ST_CHECK(expr)
#endif
