// Fundamental scalar types shared across the Scal-Tool libraries.
#pragma once

#include <cstdint>
#include <cstddef>

namespace scaltool {

/// Byte address in the simulated (virtual = physical) address space.
using Addr = std::uint64_t;

/// Monotonic counter value (instructions, misses, events...).
using Count = std::uint64_t;

/// Cycle time. Kept as double so sub-cycle CPI contributions (a 4-issue
/// R10000 retires multiple instructions per cycle) accumulate exactly the
/// way the paper's CPI algebra treats them.
using Cycles = double;

/// Identifier of a simulated processor (0-based).
using ProcId = int;

/// Identifier of a node (memory home) in the DSM machine. On a bristled
/// hypercube two processors share one node/router.
using NodeId = int;

inline constexpr std::size_t operator""_KiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024;
}
inline constexpr std::size_t operator""_MiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024 * 1024;
}

}  // namespace scaltool
