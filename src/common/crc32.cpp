#include "common/crc32.hpp"

#include <array>

namespace scaltool {

namespace {

// Nibble-at-a-time table: small enough to build at first use, fast enough
// for per-record guards and whole-file footers.
const std::array<std::uint32_t, 16>& crc_table() {
  static const std::array<std::uint32_t, 16> kTable = [] {
    std::array<std::uint32_t, 16> table{};
    for (std::uint32_t i = 0; i < 16; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 4; ++bit)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return table;
  }();
  return kTable;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, const std::string& bytes) {
  const auto& table = crc_table();
  for (const char ch : bytes) {
    const auto byte = static_cast<unsigned char>(ch);
    state = table[(state ^ byte) & 0x0Fu] ^ (state >> 4);
    state = table[(state ^ (byte >> 4)) & 0x0Fu] ^ (state >> 4);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(const std::string& bytes) {
  return crc32_final(crc32_update(crc32_init(), bytes));
}

}  // namespace scaltool
