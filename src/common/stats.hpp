// Small statistics helpers used by counters aggregation, model diagnostics
// and the benchmark harness.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace scaltool {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Population variance; 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Coefficient of variation used by the load-balance diagnostics
  /// (stddev / mean); 0 when the mean is 0.
  double cov() const { return mean_ != 0.0 ? stddev() / mean_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a span; 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; all values must be positive.
double geomean(std::span<const double> xs);

/// Relative difference |a-b| / max(|a|,|b|); 0 when both are 0.
double rel_diff(double a, double b);

/// Load-imbalance factor of per-processor quantities: max/mean − 1.
/// 0 means perfectly balanced. Empty input yields 0.
double imbalance_factor(std::span<const double> per_proc);

}  // namespace scaltool
