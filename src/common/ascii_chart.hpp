// Terminal line charts for the figure data.
//
// The paper's results are figures; a text-only environment still deserves
// a visual: AsciiChart maps (x, y) series onto a character grid with y-axis
// labels, one plot symbol per series. The examples use it to draw the
// Fig. 6-style bottleneck curves directly in the terminal.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace scaltool {

class AsciiChart {
 public:
  /// `width`/`height` are the plot-area dimensions in characters.
  AsciiChart(int width, int height);

  /// Adds a series plotted with `symbol`. Points need not be sorted.
  AsciiChart& add_series(char symbol, std::string label,
                         std::vector<std::pair<double, double>> points);

  /// Fixes the y range (default: auto from the data, zero-anchored when
  /// all values are non-negative).
  AsciiChart& y_range(double lo, double hi);

  /// Renders the grid with y-axis labels, an x-axis line with min/max
  /// labels, and a legend.
  std::string render() const;

 private:
  struct Series {
    char symbol;
    std::string label;
    std::vector<std::pair<double, double>> points;
  };

  int width_;
  int height_;
  bool fixed_y_ = false;
  double y_lo_ = 0.0, y_hi_ = 1.0;
  std::vector<Series> series_;
};

}  // namespace scaltool
