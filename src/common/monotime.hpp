// Monotonic-clock helpers: one steady_clock wrapper for every wall/busy
// measurement in the tree.
//
// The campaign engine, the telemetry layer and the bench harness all time
// things; routing them through one wrapper keeps the clock choice (steady,
// never system) and the seconds conversion in a single place.
#pragma once

#include <chrono>
#include <cstdint>

namespace scaltool {

struct MonoClock {
  using TimePoint = std::chrono::steady_clock::time_point;

  static TimePoint now() { return std::chrono::steady_clock::now(); }

  /// Seconds elapsed since `t0` (fractional).
  static double seconds_since(TimePoint t0) {
    return std::chrono::duration<double>(now() - t0).count();
  }

  /// Nanoseconds since the clock's (unspecified, monotonic) epoch. Useful
  /// where a time point must be stored in an atomic integer.
  static std::int64_t nanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               now().time_since_epoch())
        .count();
  }
};

/// Started-at-construction elapsed timer.
class Stopwatch {
 public:
  Stopwatch() : t0_(MonoClock::now()) {}

  double seconds() const { return MonoClock::seconds_since(t0_); }
  void restart() { t0_ = MonoClock::now(); }

 private:
  MonoClock::TimePoint t0_;
};

}  // namespace scaltool
