#include "common/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace scaltool {

AsciiChart::AsciiChart(int width, int height)
    : width_(width), height_(height) {
  ST_CHECK_MSG(width >= 8 && height >= 3, "chart area too small");
}

AsciiChart& AsciiChart::add_series(
    char symbol, std::string label,
    std::vector<std::pair<double, double>> points) {
  ST_CHECK_MSG(!points.empty(), "empty series: " << label);
  series_.push_back({symbol, std::move(label), std::move(points)});
  return *this;
}

AsciiChart& AsciiChart::y_range(double lo, double hi) {
  ST_CHECK(hi > lo);
  fixed_y_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
  return *this;
}

std::string AsciiChart::render() const {
  ST_CHECK_MSG(!series_.empty(), "no series to render");
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = fixed_y_ ? y_lo_ : std::numeric_limits<double>::infinity();
  double y_hi = fixed_y_ ? y_hi_ : -std::numeric_limits<double>::infinity();
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      if (!fixed_y_) {
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
      }
    }
  }
  if (!fixed_y_) {
    if (y_lo >= 0.0) y_lo = 0.0;  // zero-anchor non-negative data
    if (y_hi <= y_lo) y_hi = y_lo + 1.0;
  }
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_),
                                            ' '));
  auto col_of = [&](double x) {
    const double t = (x - x_lo) / (x_hi - x_lo);
    return std::clamp(static_cast<int>(std::lround(t * (width_ - 1))), 0,
                      width_ - 1);
  };
  auto row_of = [&](double y) {
    const double t = (y - y_lo) / (y_hi - y_lo);
    const int from_bottom =
        std::clamp(static_cast<int>(std::lround(t * (height_ - 1))), 0,
                   height_ - 1);
    return height_ - 1 - from_bottom;
  };
  for (const Series& s : series_)
    for (const auto& [x, y] : s.points)
      grid[static_cast<std::size_t>(row_of(y))]
          [static_cast<std::size_t>(col_of(x))] = s.symbol;

  std::ostringstream os;
  auto y_label = [&](int row) {
    const double t =
        static_cast<double>(height_ - 1 - row) / (height_ - 1);
    return y_lo + t * (y_hi - y_lo);
  };
  for (int row = 0; row < height_; ++row) {
    os << std::setw(10) << std::fixed << std::setprecision(2)
       << y_label(row) << " |" << grid[static_cast<std::size_t>(row)]
       << "\n";
  }
  os << std::string(10, ' ') << " +" << std::string(
            static_cast<std::size_t>(width_), '-')
     << "\n";
  std::ostringstream xbar;
  xbar << x_lo;
  std::string xline(static_cast<std::size_t>(width_), ' ');
  const std::string hi_label = [&] {
    std::ostringstream h;
    h << x_hi;
    return h.str();
  }();
  const std::string lo_label = xbar.str();
  xline.replace(0, lo_label.size(), lo_label);
  if (hi_label.size() < xline.size())
    xline.replace(xline.size() - hi_label.size(), hi_label.size(), hi_label);
  os << std::string(12, ' ') << xline << "\n";
  for (const Series& s : series_)
    os << "  " << s.symbol << " = " << s.label << "\n";
  return os.str();
}

}  // namespace scaltool
