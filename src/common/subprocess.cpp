#include "common/subprocess.hpp"

#include <dirent.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/check.hpp"

namespace scaltool {

bool ChildExit::exited() const { return WIFEXITED(status); }

int ChildExit::exit_code() const { return WEXITSTATUS(status); }

bool ChildExit::signaled() const { return WIFSIGNALED(status); }

int ChildExit::term_signal() const { return WTERMSIG(status); }

void close_other_fds(const std::vector<int>& keep) {
  // /proc/self/fd is the portable-enough Linux way to enumerate without
  // guessing at RLIMIT_NOFILE; skip the directory's own descriptor.
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return;  // nothing we can do; better to run than die
  const int dir_fd = ::dirfd(dir);
  std::vector<int> victims;
  while (dirent* entry = ::readdir(dir)) {
    char* end = nullptr;
    const long fd = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0') continue;  // "." and ".."
    if (fd <= 2 || fd == dir_fd) continue;
    if (std::find(keep.begin(), keep.end(), static_cast<int>(fd)) !=
        keep.end())
      continue;
    victims.push_back(static_cast<int>(fd));
  }
  ::closedir(dir);
  for (const int fd : victims) ::close(fd);
}

pid_t spawn_child(const std::function<int()>& entry,
                  const std::vector<int>& keep) {
  const pid_t pid = ::fork();
  ST_CHECK_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    close_other_fds(keep);
    int rc = 125;
    try {
      rc = entry();
    } catch (...) {
    }
    ::_exit(rc);
  }
  return pid;
}

std::optional<ChildExit> try_reap(pid_t pid) {
  ChildExit result;
  const pid_t got = ::waitpid(pid, &result.status, WNOHANG);
  if (got == 0) return std::nullopt;  // still running
  ST_CHECK_MSG(got == pid, "waitpid(" << pid
                                      << ") failed: " << std::strerror(errno));
  return result;
}

ChildExit reap(pid_t pid) {
  ChildExit result;
  ST_CHECK_MSG(::waitpid(pid, &result.status, 0) == pid,
               "waitpid(" << pid << ") failed: " << std::strerror(errno));
  return result;
}

namespace {

std::optional<ChildExit> poll_reap(pid_t pid, int budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  for (;;) {
    if (std::optional<ChildExit> done = try_reap(pid)) return done;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace

ChildExit reap_with_deadline(pid_t pid, int grace_ms, int term_ms) {
  if (std::optional<ChildExit> done = poll_reap(pid, grace_ms)) return *done;
  ::kill(pid, SIGTERM);
  if (std::optional<ChildExit> done = poll_reap(pid, term_ms)) return *done;
  ::kill(pid, SIGKILL);
  return reap(pid);
}

bool pid_alive(pid_t pid) {
  if (pid <= 0) return false;
  return ::kill(pid, 0) == 0 || errno == EPERM;
}

}  // namespace scaltool
