#include "common/exit_codes.hpp"

#include <array>

namespace scaltool {

namespace {

constexpr std::array<ExitCodeInfo, 10> kTable{{
    {kExitOk, "success", "the command completed"},
    {kExitHardFailure, "hard failure",
     "bad arguments, unreadable archive, a run that failed every attempt"},
    {kExitUnknownCommand, "unknown command", "unknown command or flag"},
    {kExitDegraded, "degraded",
     "completed, but assembled from a partial matrix or a robust fit that "
     "rejected outliers; archive NOTE records carry the provenance"},
    {kExitUnavailable, "unavailable",
     "the service shed the request: admission queue full or shutting down"},
    {kExitDeadlineExceeded, "deadline exceeded",
     "the request deadline expired before or during the campaign"},
    {kExitInterrupted, "interrupted",
     "SIGINT/SIGTERM checkpoint-and-exit: completed runs are journaled; "
     "rerun with --resume to continue"},
    {kExitFleetDegraded, "fleet degraded",
     "the fleet served and drained, but a shard was benched (crash loop or "
     "storage exhaustion); the health output names the cause"},
    {kExitToleranceUnreachable, "tolerance unreachable",
     "--adaptive hit --max-runs before the what-if answers stabilized; "
     "archive published, journal kept for a wider rerun"},
    {kExitStorageFault, "storage fault",
     "ENOSPC/EIO/fd exhaustion on a durability path: the campaign "
     "checkpointed to its journal and stopped; free space or fix the disk, "
     "then rerun with --resume (scaltool fsck verifies the artifacts)"},
}};

}  // namespace

const ExitCodeInfo* exit_code_table() { return kTable.data(); }

std::size_t exit_code_count() { return kTable.size(); }

void print_exit_code_help(std::ostream& os) {
  os << "exit codes:\n";
  for (const ExitCodeInfo& info : kTable) {
    os << "  " << info.code << "  " << info.name << ": " << info.description
       << "\n";
  }
}

const char* exit_code_name(int code) {
  for (const ExitCodeInfo& info : kTable)
    if (info.code == code) return info.name;
  return "unknown";
}

}  // namespace scaltool
