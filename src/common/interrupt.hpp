// Cooperative SIGINT/SIGTERM handling (DESIGN.md §11).
//
// A campaign interrupted with Ctrl-C should behave like any other crash
// the journal protects against — except cleanly: the first signal only
// raises a flag that the engine's cancellation hook polls, so in-flight
// runs finish, the journal stays consistent, and the process exits with
// code 6 ("interrupted, resumable"). A second signal restores the default
// disposition and re-raises, so an operator can always kill a wedged
// process the ordinary way.
#pragma once

#include "common/exit_codes.hpp"  // kExitInterrupted lives in the table now

namespace scaltool {

/// Installs the SIGINT/SIGTERM handlers described above. Idempotent.
/// Installed without SA_RESTART so a signal also unblocks reads (the
/// serve stdin loop relies on this to begin its drain).
void install_interrupt_handlers();

/// True once a signal arrived. Async-signal-safe to query anywhere.
bool interrupt_requested();

/// Clears the flag (tests, and a CLI embedding several commands).
void reset_interrupted();

}  // namespace scaltool
