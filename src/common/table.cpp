#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace scaltool {

Table& Table::header(std::vector<std::string> cols) {
  ST_CHECK_MSG(rows_.empty(), "header must be set before rows");
  ST_CHECK(!cols.empty());
  header_ = std::move(cols);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  ST_CHECK_MSG(cells.size() == header_.size(),
               "row has " << cells.size() << " cells, header has "
                          << header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::cell(long long v) { return std::to_string(v); }
std::string Table::cell(unsigned long long v) { return std::to_string(v); }

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      ST_CHECK_MSG(row[c].find(',') == std::string::npos,
                   "CSV cell contains a comma: " << row[c]);
      os << (c ? "," : "") << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os, bool with_csv) const {
  os << "== " << title_ << " ==\n" << to_text();
  if (with_csv) os << "-- csv --\n" << to_csv();
  os << "\n";
}

std::string format_bytes(std::size_t bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  const double b = static_cast<double>(bytes);
  if (bytes >= 1024u * 1024u) {
    os << b / (1024.0 * 1024.0) << " MiB";
  } else if (bytes >= 1024u) {
    os << b / 1024.0 << " KiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace scaltool
