#include "tools/speedshop.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace scaltool {

SpeedshopProfile speedshop_profile(const RunResult& run) {
  SpeedshopProfile prof;
  const ProcGroundTruth agg = run.truth.aggregate();
  prof.user_cycles = agg.compute_cycles + agg.mem_stall_cycles;
  prof.barrier_cycles = agg.sync_cycles;
  prof.wait_cycles = agg.spin_cycles;
  prof.total_cycles = prof.user_cycles + prof.barrier_cycles +
                      prof.wait_cycles;
  return prof;
}

SpeedshopProfile speedshop_profile_sampled(const RunResult& run,
                                           double sample_period,
                                           std::uint64_t seed) {
  ST_CHECK_MSG(sample_period > 0.0, "sample period must be positive");
  const SpeedshopProfile exact = speedshop_profile(run);
  const auto samples =
      static_cast<std::uint64_t>(exact.total_cycles / sample_period);
  if (samples == 0) return SpeedshopProfile{};

  // Each sample lands in a bucket with probability proportional to its
  // exact cycle share (multinomial draw).
  Rng rng(seed);
  const double p_user = exact.user_cycles / exact.total_cycles;
  const double p_barrier = exact.barrier_cycles / exact.total_cycles;
  std::uint64_t user = 0, barrier = 0, wait = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const double x = rng.next_double();
    if (x < p_user) {
      ++user;
    } else if (x < p_user + p_barrier) {
      ++barrier;
    } else {
      ++wait;
    }
  }
  SpeedshopProfile sampled;
  sampled.user_cycles = static_cast<double>(user) * sample_period;
  sampled.barrier_cycles = static_cast<double>(barrier) * sample_period;
  sampled.wait_cycles = static_cast<double>(wait) * sample_period;
  sampled.total_cycles =
      sampled.user_cycles + sampled.barrier_cycles + sampled.wait_cycles;
  return sampled;
}

std::string speedshop_report(const RunResult& run) {
  const SpeedshopProfile prof = speedshop_profile(run);
  std::ostringstream os;
  os << "speedshop (PC sampling): " << run.workload << " p="
     << run.num_procs << "\n";
  auto line = [&](const char* fn, double cycles) {
    os << "  " << std::left << std::setw(28) << fn << std::right
       << std::setw(14) << std::fixed << std::setprecision(0) << cycles
       << "  (" << std::setprecision(1)
       << (prof.total_cycles > 0 ? 100.0 * cycles / prof.total_cycles : 0.0)
       << "%)\n";
  };
  line("__application__", prof.user_cycles);
  line("mp_barrier/mp_lock_try", prof.barrier_cycles);
  line("mp_slave_wait_for_work", prof.wait_cycles);
  line("TOTAL", prof.total_cycles);
  return os.str();
}

}  // namespace scaltool
