#include "tools/region_report.hpp"

#include "common/check.hpp"

namespace scaltool {

Table region_table(const RunResult& run) {
  Table t("Per-region profile: " + run.workload + " (p=" +
          Table::cell(run.num_procs) + ")");
  t.header({"region", "Mcycles", "pct_of_run", "cpi", "l1_hitr", "l2_hitr"});
  const double total = run.accumulated_cycles;
  for (const auto& [name, counters] : run.regions) {
    const DerivedMetrics d = counters.derived();
    t.add_row({name, Table::cell(d.cycles / 1e6, 3),
               Table::cell(total > 0 ? 100.0 * d.cycles / total : 0.0, 1),
               Table::cell(d.cpi, 3), Table::cell(d.l1_hitr, 4),
               Table::cell(d.l2_hitr, 4)});
  }
  return t;
}

DerivedMetrics region_metrics(const RunResult& run, const std::string& name) {
  const auto it = run.regions.find(name);
  ST_CHECK_MSG(it != run.regions.end(), "no region named " << name);
  return it->second.derived();
}

double region_cycle_fraction(const RunResult& run, const std::string& name) {
  const auto it = run.regions.find(name);
  ST_CHECK_MSG(it != run.regions.end(), "no region named " << name);
  if (run.accumulated_cycles <= 0.0) return 0.0;
  return it->second.aggregate().get(EventId::kCycles) /
         run.accumulated_cycles;
}

}  // namespace scaltool
