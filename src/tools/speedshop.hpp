// speedshop emulation: PC-sampling cycle profiles.
//
// SGI's speedshop attributes cycles to routines; the paper uses it to
// measure the cycles in barrier functions (mp_barrier, mp_lock_try) and
// load-imbalance functions (mp_slave_wait_for_work,
// mp_master_wait_for_slaves), and compares that measured MP cost against
// Scal-Tool's estimate (Figs. 7/10/13). Our profile reads the simulator's
// ground-truth attribution — the moral equivalent of sampling the real
// machine — and is used *only* for validation, never as a model input.
#pragma once

#include <cstdint>
#include <string>

#include "machine/run_result.hpp"

namespace scaltool {

struct SpeedshopProfile {
  double total_cycles = 0.0;      ///< accumulated over all processors
  double user_cycles = 0.0;       ///< application compute + memory stalls
  double barrier_cycles = 0.0;    ///< mp_barrier / mp_lock_try
  double wait_cycles = 0.0;       ///< mp_slave_wait_for_work etc.

  /// The measured multiprocessor cost (Sync+Imb of the figures).
  double mp_cycles() const { return barrier_cycles + wait_cycles; }
  double mp_fraction() const {
    return total_cycles > 0.0 ? mp_cycles() / total_cycles : 0.0;
  }
};

SpeedshopProfile speedshop_profile(const RunResult& run);

/// PC-*sampled* profile: real speedshop interrupts the program every
/// `sample_period` cycles and attributes one sample to whatever routine is
/// running; the result carries sampling noise. We emulate that by drawing
/// the same number of samples from the exact attribution with a
/// deterministic RNG — so the paper's "measured" curves can be studied
/// with realistic measurement error, and the exact profile is the
/// period→0 limit.
SpeedshopProfile speedshop_profile_sampled(const RunResult& run,
                                           double sample_period,
                                           std::uint64_t seed = 1);

/// Routine-style text report.
std::string speedshop_report(const RunResult& run);

}  // namespace scaltool
