// perfex emulation: raw hardware event-counter dumps.
//
// SGI's perfex "can record up to 32 hardware events" and prints their raw
// values [18]. This is the *existing tool* whose output the paper calls
// "too low level" — programmers cannot relate raw miss counts to
// scalability bottlenecks. We provide it both for fidelity and because
// Scal-Tool's inputs are exactly perfex outputs.
#pragma once

#include <string>

#include "machine/run_result.hpp"

namespace scaltool {

/// Aggregate (and optionally per-processor) counter dump for a run.
std::string perfex_report(const RunResult& run, bool per_proc = false);

}  // namespace scaltool
