#include "tools/ssusage.hpp"

#include <sstream>

#include "common/table.hpp"

namespace scaltool {

SsusageReport ssusage(const RunResult& run) {
  return SsusageReport{run.bytes_allocated};
}

std::string ssusage_report(const RunResult& run, std::size_t l2_bytes) {
  const SsusageReport rep = ssusage(run);
  std::ostringstream os;
  os << "ssusage: " << run.workload << " max data size "
     << format_bytes(rep.max_bytes) << "; with " << format_bytes(l2_bytes)
     << " L2 caches, aggregate capacity covers the data set at "
     << rep.procs_to_fit(l2_bytes) << " processors\n";
  return os.str();
}

}  // namespace scaltool
