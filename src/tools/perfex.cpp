#include "tools/perfex.hpp"

#include <iomanip>
#include <sstream>

namespace scaltool {

std::string perfex_report(const RunResult& run, bool per_proc) {
  std::ostringstream os;
  os << "perfex: " << run.workload << " (s=" << run.dataset_bytes
     << " bytes, p=" << run.num_procs << ")\n";
  os << run.counters.to_string();
  if (per_proc) {
    for (int p = 0; p < run.num_procs; ++p) {
      os << "  -- proc " << p << " --\n";
      for (EventId id : all_events()) {
        const double v = run.counters.proc(p).get(id);
        if (v == 0.0) continue;
        os << "    " << std::left << std::setw(20) << event_name(id) << " "
           << std::fixed << std::setprecision(0) << v << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace scaltool
