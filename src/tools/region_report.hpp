// Per-segment analysis support.
//
// Sec. 2.1: the Scal-Tool plots "can be obtained for the overall
// application or for a segment of the application that is considered
// particularly important". Workloads mark segments with
// ProcContext::begin_region/end_region; this module renders the per-region
// counters and extracts region-level metrics the model equations can
// consume (a region's cpi/h2/hm behave exactly like a whole program's).
#pragma once

#include <string>

#include "common/table.hpp"
#include "counters/counter_set.hpp"
#include "machine/run_result.hpp"

namespace scaltool {

/// Per-region share of the run: cycles, instructions, CPI and miss rates.
Table region_table(const RunResult& run);

/// Derived metrics of one named region (throws if absent or empty).
DerivedMetrics region_metrics(const RunResult& run, const std::string& name);

/// Fraction of the run's accumulated cycles spent in the region.
double region_cycle_fraction(const RunResult& run, const std::string& name);

}  // namespace scaltool
