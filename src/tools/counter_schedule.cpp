#include "tools/counter_schedule.hpp"

#include <set>
#include <string>

#include "common/check.hpp"

namespace scaltool {

CounterSchedule schedule_events(std::span<const EventId> needed,
                                int counters_per_run) {
  ST_CHECK_MSG(counters_per_run >= 1, "need at least one hardware counter");
  ST_CHECK_MSG(!needed.empty(), "no events requested");
  std::set<EventId> seen;
  CounterSchedule schedule;
  schedule.counters_per_run = counters_per_run;
  for (EventId ev : needed) {
    ST_CHECK_MSG(seen.insert(ev).second,
                 "duplicate event in request: " << event_name(ev));
    if (schedule.passes.empty() ||
        static_cast<int>(schedule.passes.back().size()) >= counters_per_run)
      schedule.passes.emplace_back();
    schedule.passes.back().push_back(ev);
  }
  return schedule;
}

std::vector<EventId> scal_tool_event_set() {
  return {EventId::kCycles,          EventId::kGraduatedInstructions,
          EventId::kGraduatedLoads,  EventId::kGraduatedStores,
          EventId::kL1DMisses,       EventId::kL2Misses,
          EventId::kStoreToShared};
}

int hardware_pass_multiplier(int counters_per_run) {
  const auto events = scal_tool_event_set();
  return schedule_events(events, counters_per_run).num_passes();
}

CounterSnapshot run_pass(const CounterSnapshot& full,
                         std::span<const EventId> pass_events) {
  CounterSnapshot pass(full.num_procs());
  for (int p = 0; p < full.num_procs(); ++p)
    for (EventId ev : pass_events)
      pass.proc(p).set(ev, full.proc(p).get(ev));
  return pass;
}

CounterSnapshot merge_passes(const std::vector<CounterSnapshot>& passes,
                             const CounterSchedule& schedule) {
  ST_CHECK_MSG(passes.size() == schedule.passes.size(),
               "have " << passes.size() << " snapshots for "
                       << schedule.passes.size() << " scheduled passes");
  ST_CHECK(!passes.empty());
  const int procs = passes.front().num_procs();
  CounterSnapshot merged(procs);
  std::set<EventId> seen;
  for (std::size_t i = 0; i < passes.size(); ++i) {
    ST_CHECK_MSG(passes[i].num_procs() == procs,
                 "pass " << i << " has a different processor count");
    for (EventId ev : schedule.passes[i]) {
      ST_CHECK_MSG(seen.insert(ev).second,
                   "event scheduled twice: " << event_name(ev));
      for (int p = 0; p < procs; ++p)
        merged.proc(p).set(ev, passes[i].proc(p).get(ev));
    }
  }
  return merged;
}

Table schedule_table(const CounterSchedule& schedule) {
  Table t("Counter schedule (" +
          std::to_string(schedule.counters_per_run) +
          " hardware counters per pass)");
  t.header({"pass", "events"});
  for (std::size_t i = 0; i < schedule.passes.size(); ++i) {
    std::string events;
    for (EventId ev : schedule.passes[i]) {
      if (!events.empty()) events += " + ";
      events += std::string(event_name(ev));
    }
    t.add_row({Table::cell(i + 1), events});
  }
  return t;
}

}  // namespace scaltool
