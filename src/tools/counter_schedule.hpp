// Hardware counter scheduling for two-counter processors.
//
// The MIPS R10000 "has two hardware event counters that can record up to
// 32 events" (Sec. 3): only two of the 32 event types count concurrently.
// A measurement needing more events must either repeat the run with
// different counter selections or time-multiplex within one run. This
// module plans those selections and quantifies the real-hardware cost of
// the Scal-Tool matrix — the practical footnote behind Table 1's run
// accounting (on a simulator all counters are free; on the Origin they are
// not).
#pragma once

#include <span>
#include <vector>

#include "common/table.hpp"
#include "counters/counter_set.hpp"
#include "counters/events.hpp"

namespace scaltool {

/// A plan assigning events to hardware passes.
struct CounterSchedule {
  int counters_per_run = 2;
  std::vector<std::vector<EventId>> passes;  ///< events per pass

  int num_passes() const { return static_cast<int>(passes.size()); }
};

/// Packs `needed` events into passes of at most `counters_per_run` each.
/// Order is preserved; duplicates are rejected.
CounterSchedule schedule_events(std::span<const EventId> needed,
                                int counters_per_run = 2);

/// The event set one Scal-Tool run must record (Sec. 2.1 + 2.4.2): cycles,
/// graduated instructions, loads, stores, L1D misses, L2 misses and
/// stores-to-shared.
std::vector<EventId> scal_tool_event_set();

/// Real-hardware run multiplier: how many passes of each application run a
/// 2-counter machine needs to gather the whole event set (4 on the
/// R10000), versus 1 on a machine with enough counters.
int hardware_pass_multiplier(int counters_per_run = 2);

/// Renders the schedule (one row per pass).
Table schedule_table(const CounterSchedule& schedule);

/// Emulates one hardware pass: a snapshot containing only the pass's
/// events (every other counter reads zero), as a 2-counter perfex run
/// would produce.
CounterSnapshot run_pass(const CounterSnapshot& full,
                         std::span<const EventId> pass_events);

/// Merges per-pass snapshots back into a full snapshot — the
/// post-processing step of a real multi-pass campaign. Passes must not
/// overlap in events and must agree on the processor count.
CounterSnapshot merge_passes(
    const std::vector<CounterSnapshot>& passes,
    const CounterSchedule& schedule);

}  // namespace scaltool
