// ssusage emulation: maximum resident data size.
//
// The paper validates the L2Lim predictions by dividing the ssusage-
// measured data-set size by the aggregate L2 capacity: "if the
// per-processor working sets are balanced and disjoint, there will be
// enough caching space with [size/L2] processors" (Sec. 4.1).
#pragma once

#include <string>

#include "machine/run_result.hpp"

namespace scaltool {

struct SsusageReport {
  std::size_t max_bytes = 0;

  /// Processor count at which the aggregate L2 capacity covers the data
  /// set — the paper's back-of-envelope check on where L2Lim vanishes.
  int procs_to_fit(std::size_t l2_bytes) const {
    if (l2_bytes == 0) return 0;
    return static_cast<int>((max_bytes + l2_bytes - 1) / l2_bytes);
  }
};

SsusageReport ssusage(const RunResult& run);

std::string ssusage_report(const RunResult& run, std::size_t l2_bytes);

}  // namespace scaltool
