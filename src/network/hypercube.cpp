#include "network/hypercube.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace scaltool {

namespace {
int ceil_div(int a, int b) { return (a + b - 1) / b; }
}  // namespace

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kBristledHypercube: return "bristled-hypercube";
    case TopologyKind::kCrossbar: return "crossbar";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kMesh2D: return "mesh2d";
  }
  return "?";
}

HypercubeNetwork::HypercubeNetwork(int num_procs, const NetworkConfig& config)
    : num_procs_(num_procs), config_(config) {
  ST_CHECK_MSG(num_procs >= 1, "need at least one processor");
  ST_CHECK(config.procs_per_node >= 1);
  ST_CHECK(config.nodes_per_router >= 1);
  num_nodes_ = ceil_div(num_procs_, config_.procs_per_node);
  num_routers_ = ceil_div(num_nodes_, config_.nodes_per_router);
  dimension_ = std::bit_width(static_cast<unsigned>(num_routers_ - 1));
  // Near-square mesh: columns = ceil(sqrt(R)).
  mesh_cols_ = std::max(
      1, static_cast<int>(std::ceil(std::sqrt(
             static_cast<double>(num_routers_)))));
}

NodeId HypercubeNetwork::node_of_proc(ProcId p) const {
  ST_DCHECK(p >= 0 && p < num_procs_);
  return p / config_.procs_per_node;
}

int HypercubeNetwork::router_of_node(NodeId n) const {
  ST_DCHECK(n >= 0 && n < num_nodes_);
  return n / config_.nodes_per_router;
}

int HypercubeNetwork::router_hops(int ra, int rb) const {
  if (ra == rb) return 0;
  switch (config_.topology) {
    case TopologyKind::kBristledHypercube:
      return std::popcount(static_cast<unsigned>(ra) ^
                           static_cast<unsigned>(rb));
    case TopologyKind::kCrossbar:
      return 1;
    case TopologyKind::kRing: {
      const int d = std::abs(ra - rb);
      return std::min(d, num_routers_ - d);
    }
    case TopologyKind::kMesh2D: {
      const int ax = ra % mesh_cols_, ay = ra / mesh_cols_;
      const int bx = rb % mesh_cols_, by = rb / mesh_cols_;
      return std::abs(ax - bx) + std::abs(ay - by);
    }
  }
  ST_CHECK_MSG(false, "invalid topology");
}

int HypercubeNetwork::hops(NodeId a, NodeId b) const {
  return router_hops(router_of_node(a), router_of_node(b));
}

double HypercubeNetwork::latency_cycles(NodeId from, NodeId to) const {
  if (from == to) return 0.0;
  return config_.router_cycles + config_.hop_cycles * hops(from, to);
}

double HypercubeNetwork::average_hops() const {
  if (num_nodes_ <= 1) return 0.0;
  long long total = 0;
  long long pairs = 0;
  for (NodeId a = 0; a < num_nodes_; ++a) {
    for (NodeId b = 0; b < num_nodes_; ++b) {
      if (a == b) continue;
      total += hops(a, b);
      ++pairs;
    }
  }
  return static_cast<double>(total) / static_cast<double>(pairs);
}

}  // namespace scaltool
