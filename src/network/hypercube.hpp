// Interconnect model: bristled hypercube (SGI Origin 2000 style) plus the
// alternative topologies the what-if machinery can explore.
//
// The Origin connects two processors per node and two nodes per router;
// routers form a hypercube. The property the Scal-Tool model depends on is
// that the average memory latency tm(n) *grows with the processor count*
// because larger machines have longer wire paths (Sec. 2.3: "with more
// processors, the physical dimensions of the machine are larger and,
// therefore, accesses to main memory take longer"). This module provides
// hop counts and the distance-dependent component of memory latency.
//
// Alternative router arrangements (crossbar, ring, 2-D mesh) let the
// what-if experiments of Sec. 2.6 ("interconnection network" latency)
// be grounded in an actual topology change instead of a bare tm scale.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace scaltool {

/// Router arrangement. Hop counts between routers follow the topology;
/// node/processor bristling is identical across all of them.
enum class TopologyKind {
  kBristledHypercube,  ///< Origin 2000 (default)
  kCrossbar,           ///< single switch: one hop between any two routers
  kRing,               ///< bidirectional ring
  kMesh2D,             ///< near-square 2-D mesh, dimension-ordered routing
};

const char* topology_name(TopologyKind kind);

struct NetworkConfig {
  TopologyKind topology = TopologyKind::kBristledHypercube;
  int procs_per_node = 2;     ///< "bristle" factor at the node
  int nodes_per_router = 2;   ///< nodes hanging off one router
  double hop_cycles = 16.0;   ///< per-router-hop latency (one way ×2 folded)
  double router_cycles = 8.0; ///< fixed cost of entering the network at all
                              ///< (crossing to another node, even same router)
};

/// Static topology for a machine with `num_procs` processors.
class HypercubeNetwork {
 public:
  HypercubeNetwork(int num_procs, const NetworkConfig& config);

  int num_procs() const { return num_procs_; }
  int num_nodes() const { return num_nodes_; }
  int num_routers() const { return num_routers_; }
  /// Hypercube dimension (0 for a single router); for non-hypercube
  /// topologies this is the equivalent log2 router count, kept for reports.
  int dimension() const { return dimension_; }

  NodeId node_of_proc(ProcId p) const;
  int router_of_node(NodeId n) const;

  /// Router-to-router hop count under the configured topology.
  int hops(NodeId a, NodeId b) const;

  /// Round-trip network latency in cycles for a request from node `from`
  /// serviced at node `to`. Zero when from == to (local memory).
  double latency_cycles(NodeId from, NodeId to) const;

  /// Average one-way hop count over all ordered node pairs, the quantity
  /// that makes tm(n) monotone in n.
  double average_hops() const;

  const NetworkConfig& config() const { return config_; }

 private:
  int router_hops(int ra, int rb) const;

  int num_procs_;
  int num_nodes_;
  int num_routers_;
  int dimension_;
  int mesh_cols_ = 1;  // for kMesh2D
  NetworkConfig config_;
};

}  // namespace scaltool
