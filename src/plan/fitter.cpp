#include "plan/fitter.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace scaltool::plan {

IncrementalFitter::IncrementalFitter(std::size_t predictors)
    : k_(predictors),
      xtx_(predictors * predictors, 0.0),
      xty_(predictors, 0.0),
      xsum_(predictors, 0.0) {
  ST_CHECK_MSG(k_ >= 1, "need at least one predictor");
}

void IncrementalFitter::add(std::vector<double> x, double y) {
  ST_CHECK(x.size() == k_);
  // Element order matches least_squares' accumulation loop exactly (xty
  // before the xtx row), so the sums are bit-identical to the one-shot
  // fit over the same rows in the same order.
  for (std::size_t a = 0; a < k_; ++a) {
    xty_[a] += x[a] * y;
    for (std::size_t b = 0; b < k_; ++b) xtx_[a * k_ + b] += x[a] * x[b];
    xsum_[a] += x[a];
  }
  rows_.push_back(std::move(x));
  y_.push_back(y);
}

void IncrementalFitter::update(std::size_t index, std::vector<double> x,
                               double y) {
  ST_CHECK(index < rows_.size());
  ST_CHECK(x.size() == k_);
  const std::vector<double>& old = rows_[index];
  const double old_y = y_[index];
  for (std::size_t a = 0; a < k_; ++a) {
    xty_[a] -= old[a] * old_y;
    for (std::size_t b = 0; b < k_; ++b) xtx_[a * k_ + b] -= old[a] * old[b];
    xsum_[a] -= old[a];
  }
  for (std::size_t a = 0; a < k_; ++a) {
    xty_[a] += x[a] * y;
    for (std::size_t b = 0; b < k_; ++b) xtx_[a * k_ + b] += x[a] * x[b];
    xsum_[a] += x[a];
  }
  rows_[index] = std::move(x);
  y_[index] = y;
}

std::vector<double> IncrementalFitter::shifted(double y_shift) const {
  std::vector<double> out(y_.size());
  for (std::size_t i = 0; i < y_.size(); ++i) out[i] = y_[i] - y_shift;
  return out;
}

LsqFit IncrementalFitter::fit(double y_shift) const {
  std::vector<double> xty = xty_;
  if (y_shift != 0.0)
    for (std::size_t a = 0; a < k_; ++a) xty[a] -= y_shift * xsum_[a];
  return least_squares_from_normal(xtx_, std::move(xty), rows_,
                                   shifted(y_shift));
}

RobustLsqFit IncrementalFitter::fit_robust(const RobustFitOptions& options,
                                           double y_shift) const {
  return robust_least_squares(rows_, shifted(y_shift), options);
}

OlsInference IncrementalFitter::inference(const LsqFit& fit) const {
  return infer_least_squares(rows_, fit);
}

ModelTracker::ModelTracker(std::size_t l2_bytes, CpiModelOptions options)
    : l2_bytes_(l2_bytes), options_(options) {
  ST_CHECK_MSG(l2_bytes_ > 0, "L2 capacity is zero");
}

namespace {
double median_of(std::vector<double> v) { return median(std::move(v)); }
}  // namespace

void ModelTracker::add_uni_run(const RunRecord& run) {
  ST_CHECK_MSG(run.num_procs == 1, "tracker fed a multiprocessor run");
  ++runs_seen_;
  dirty_ = true;
  // Strictly-smaller keeps the first record seen at the minimum size, the
  // same run std::min_element picks for smallest_uni_run().
  if (!anchor_ || run.dataset_bytes < anchor_->dataset_bytes) anchor_ = run;
  if (static_cast<double>(run.dataset_bytes) <=
      options_.overflow_factor * static_cast<double>(l2_bytes_))
    return;

  std::vector<Triplet>& reps = replicates_[run.dataset_bytes];
  reps.push_back(
      {run.metrics.h2, run.metrics.hm, run.metrics.cpi});
  if (reps.size() == 1) {
    row_of_[run.dataset_bytes] = fitter_.size();
    fitter_.add({reps.front().h2, reps.front().hm}, reps.front().cpi);
    return;
  }
  // A new replicate moves the size's median triplet: replace its row.
  std::vector<double> h2s, hms, cpis;
  h2s.reserve(reps.size());
  hms.reserve(reps.size());
  cpis.reserve(reps.size());
  for (const Triplet& t : reps) {
    h2s.push_back(t.h2);
    hms.push_back(t.hm);
    cpis.push_back(t.cpi);
  }
  fitter_.update(row_of_.at(run.dataset_bytes),
                 {median_of(std::move(h2s)), median_of(std::move(hms))},
                 median_of(std::move(cpis)));
}

const ModelEstimate& ModelTracker::estimate() {
  if (!dirty_) return estimate_;
  dirty_ = false;
  estimate_ = ModelEstimate{};
  estimate_.triplets = fitter_.size();
  if (!anchor_) {
    estimate_.status = "no pi0 anchor run yet";
    return estimate_;
  }
  estimate_.pi0_initial = anchor_->metrics.cpi;
  if (fitter_.size() < 2) {
    std::ostringstream os;
    os << "need at least two L2-overflowing triplets; have "
       << fitter_.size();
    estimate_.status = os.str();
    return estimate_;
  }
  if (fitter_.size() < 3)
    estimate_.notes.push_back(
        "only two L2-overflowing triplets; t2/tm fit has no redundancy");

  try {
    // Eq. 2 ↔ Eq. 3 fixed point, exactly as estimate_cpi_model iterates it.
    double pi0 = estimate_.pi0_initial;
    LsqFit fit;
    std::vector<std::size_t> rejected;
    for (int iter = 0; iter < options_.max_refine_iterations; ++iter) {
      if (options_.robust) {
        RobustLsqFit rf = fitter_.fit_robust(options_.robust_fit, pi0);
        fit = std::move(rf.fit);
        rejected = std::move(rf.rejected);
      } else {
        fit = fitter_.fit(pi0);
        rejected.clear();
      }
      estimate_.t2.value = fit.coef[0];
      estimate_.tm1.value = fit.coef[1];
      estimate_.fit_r2 = fit.r2;
      estimate_.refine_iterations = iter + 1;
      const double pi0_next = estimate_.pi0_initial -
                              anchor_->metrics.h2 * estimate_.t2.value -
                              anchor_->metrics.hm * estimate_.tm1.value;
      if (std::abs(pi0_next - pi0) <=
          options_.convergence_tol * (1.0 + pi0)) {
        pi0 = pi0_next;
        break;
      }
      pi0 = pi0_next;
    }
    if (pi0 <= 0.0) {
      std::ostringstream os;
      os << "pi0 estimate collapsed to " << pi0;
      estimate_.status = os.str();
      return estimate_;
    }
    estimate_.pi0.value = pi0;

    // Inference over the design the final fit actually used.
    if (!rejected.empty()) {
      std::vector<std::vector<double>> surviving;
      std::vector<bool> drop(fitter_.size(), false);
      for (std::size_t i : rejected) drop[i] = true;
      for (std::size_t i = 0; i < fitter_.size(); ++i)
        if (!drop[i]) surviving.push_back(fitter_.rows()[i]);
      estimate_.inference = infer_least_squares(surviving, fit);
      for (const auto& [bytes, reps] : replicates_) {
        (void)reps;
        if (drop[row_of_.at(bytes)]) estimate_.rejected_sizes.push_back(bytes);
      }
    } else {
      estimate_.inference = fitter_.inference(fit);
    }
    estimate_.dof = estimate_.inference.dof;
    estimate_.t2.se = estimate_.inference.se[0];
    estimate_.t2.ci95 = estimate_.inference.ci95[0];
    estimate_.tm1.se = estimate_.inference.se[1];
    estimate_.tm1.ci95 = estimate_.inference.ci95[1];

    // Delta method through Eq. 2: pi0 = pi0_init − h2a·t2 − hma·tm1, so
    // var(pi0) = g Σ gᵀ with g = (h2a, hma) — the leverage form again.
    if (estimate_.inference.dof > 0) {
      const double g[2] = {anchor_->metrics.h2, anchor_->metrics.hm};
      const double var =
          estimate_.inference.sigma2 * estimate_.inference.leverage(g);
      estimate_.pi0.se = std::sqrt(std::max(0.0, var));
      estimate_.pi0.ci95 = 1.96 * estimate_.pi0.se;
    }

    if (estimate_.t2.value < 0.0) {
      estimate_.notes.push_back("fitted t2 was negative; clamped to 0");
      estimate_.t2.value = 0.0;
    }
    if (estimate_.tm1.value <= estimate_.t2.value)
      estimate_.notes.push_back(
          "fitted tm(1) does not exceed t2 — triplets may not overflow the "
          "L2");
    estimate_.ok = true;
  } catch (const CheckError& e) {
    estimate_.status = e.what();
  }
  return estimate_;
}

ParameterEstimate ModelTracker::tm_at(const RunRecord& base_run) {
  const ModelEstimate& est = estimate();
  ST_CHECK_MSG(est.ok, "tm_at before the model is estimable: " << est.status);
  if (base_run.metrics.hm <= 0.0) return est.tm1;  // carried forward
  ParameterEstimate out;
  out.value = (base_run.metrics.cpi - est.pi0.value -
               base_run.metrics.h2 * est.t2.value) /
              base_run.metrics.hm;
  if (est.inference.dof > 0) {
    // tm(n) is linear in (t2, tm1) once pi0 is substituted out via Eq. 2:
    // gradient g = ((h2a − h2n)/hmn, hma/hmn).
    const double g[2] = {
        (anchor_->metrics.h2 - base_run.metrics.h2) / base_run.metrics.hm,
        anchor_->metrics.hm / base_run.metrics.hm};
    const double var = est.inference.sigma2 * est.inference.leverage(g);
    out.se = std::sqrt(std::max(0.0, var));
    out.ci95 = 1.96 * out.se;
  }
  return out;
}

}  // namespace scaltool::plan
