// The adaptive campaign planner (DESIGN.md §14): active run selection
// with incremental refit and confidence-driven stopping.
//
// A full Table 3 campaign simulates every (size × procs) grid point; most
// of them barely move the model. The planner instead drives the campaign
// engine one batch at a time: the mandatory core first (base series, pi0
// anchor, fit calibration, kernel endpoints), then repeatedly the single
// candidate the acquisition policy scores highest — refitting the model
// incrementally after each batch — until the answers the model exists to
// give (what-if predictions at the largest machine size) stop moving
// between consecutive picks by more than --tolerance, the grid runs dry,
// or --max-runs is hit.
//
// Everything the planner decides is a deterministic function of the run
// outcomes, and runs are deterministic in their spec; so a campaign
// killed mid-flight and resumed from its journal replays the same
// decisions, buys the same runs, and produces a byte-identical archive
// (test_crash_recovery drills this with SIGKILL). Provenance: every
// decision is recorded as a "PLAN|" note in the assembled inputs, which
// collect persists as NOTE records in the archive.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/bottleneck.hpp"
#include "engine/campaign.hpp"
#include "plan/acquisition.hpp"
#include "runner/runner.hpp"

namespace scaltool::plan {

struct PlannerOptions {
  /// Stop once no what-if probe answer moved by more than this fraction
  /// across the latest pick (relative for answers above 1, absolute for
  /// the cost fractions below it).
  double tolerance = 0.05;
  /// Hard budget on scheduled runs, core included; 0 = the whole grid.
  /// A budget below the core size is an upfront CheckError. Hitting the
  /// budget before converging is StopReason::kMaxRuns (CLI exit code 8).
  std::size_t max_runs = 0;
  /// L2-scaling what-if probes (capacity multipliers) watched for
  /// stability, alongside the L2Lim and MP cost fractions at max n.
  std::vector<double> l2_probes = {2.0, 4.0};
  /// Analysis options; `analyze.cpi` also sets the overflow factor the
  /// grid partition and the incremental fitter share.
  AnalyzeOptions analyze;
};

enum class StopReason {
  kConverged,  ///< probe answers stable within tolerance
  kExhausted,  ///< every candidate bought (equivalent to the full matrix)
  kMaxRuns,    ///< budget hit before convergence
};
const char* stop_reason_name(StopReason reason);

struct PlannerResult {
  ScalToolInputs inputs;  ///< adaptive assembly; notes carry "PLAN|" lines
  EngineStats stats;      ///< aggregated over every batch
  StopReason stop = StopReason::kExhausted;
  std::size_t runs_used = 0;   ///< jobs scheduled (run/cached/replayed/quar.)
  std::size_t runs_total = 0;  ///< the full matrix, for the savings ratio
  std::size_t steps = 0;       ///< adaptive picks beyond the core
  double final_delta = 0.0;    ///< last inter-step probe movement
  std::vector<std::string> events;  ///< engine events, batch order
};

class AdaptivePlanner {
 public:
  AdaptivePlanner(const ExperimentRunner& runner,
                  CampaignOptions engine_options, PlannerOptions options);

  /// Runs the adaptive campaign. Engine semantics (cache, journal,
  /// resume, faults, cancellation) are exactly CampaignEngine's — the
  /// planner only chooses masks. Throws CheckError when max_runs is
  /// below the core, or when a quarantined core job makes the assembly
  /// unrecoverable; CampaignCancelled propagates.
  PlannerResult run(const std::string& app, std::size_t s0,
                    std::span<const int> proc_counts);

  CampaignEngine& engine() { return engine_; }

 private:
  CampaignEngine engine_;
  PlannerOptions options_;
};

/// Joins the outcomes of the jobs that actually ran (`ran`, parallel to
/// plan.jobs): base runs and the pi0 anchor are mandatory (CheckError
/// names a missing one), skipped uniprocessor sweep points are dropped —
/// never fabricated — and a skipped kernel pair is synthesized by
/// interpolating its measured neighbours in log2(n) (cpi linearly,
/// instruction-like counts geometrically, cycles = cpi × instructions).
/// Every synthesis and the dropped-point list land in the result's notes
/// with the "PLAN|" prefix.
ScalToolInputs assemble_adaptive(const MatrixPlan& plan,
                                 std::span<const JobOutcome> outcomes,
                                 const std::vector<bool>& ran);

/// `scaltool plan`: the schedule a campaign would follow, without
/// simulating anything — grid partition, core listing, candidate pool,
/// stopping rule.
std::string explain_plan(const ExperimentRunner& runner,
                         const std::string& app, std::size_t s0,
                         std::span<const int> proc_counts,
                         const PlannerOptions& options);

}  // namespace scaltool::plan
