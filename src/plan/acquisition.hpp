// Acquisition policy of the adaptive campaign planner (DESIGN.md §14).
//
// The Table 3 measurement matrix is a (data-set size × processor count)
// grid; the planner treats collecting it as active learning. This module
// answers two questions deterministically:
//
//  - partition_grid: which jobs are *core* — the base series, the pi0
//    anchor, enough L2-overflowing calibration to make the Eq. 3 fit
//    estimable, and the kernel endpoints the synthesis interpolates
//    between — and which are *candidates* the policy may or may not buy.
//
//  - score_candidates: how much is each not-yet-run candidate expected to
//    shrink the model's uncertainty? Uniprocessor points are scored by
//    the sweep-curve reading they would pin down (log2-size gap between
//    their measured neighbours × the CPI change across it); points that
//    would join the Eq. 3 fit add a D-optimal term — residual variance ×
//    leverage x̂ᵀ(XᵀX)⁻¹x̂ of the predicted triplet row — so calibration
//    runs win while the fit is noisy. Kernel pairs are scored by the
//    cpi_syn curve gap they would split. Uniprocessor points within an
//    octave of a size the what-if probes read the curve at (the largest
//    machine's per-processor data set and its probe-scaled variants) are
//    *probe focus* and outrank everything else, nearest first — answer
//    uncertainty is dominated by unmeasured curve at the operating
//    point, not by curve gaps the questions never touch. Ties break on a
//    fixed total order (kind, size, processor count, job index), so two
//    planners fed the same outcomes pick the same run — the property
//    --resume leans on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "math/confidence.hpp"
#include "runner/runner.hpp"

namespace scaltool::plan {

enum class CandidateKind {
  kUniOverflow,  ///< uni point that joins the t2/tm fit (> factor × L2)
  kUniInterior,  ///< uni sweep point inside the curve
  kKernelPair,   ///< sync + spin kernels at one machine size
};

std::string candidate_label(CandidateKind kind, std::size_t bytes,
                            int num_procs);

struct Candidate {
  CandidateKind kind = CandidateKind::kUniInterior;
  std::size_t bytes = 0;  ///< uni kinds
  int num_procs = 0;      ///< kernel kind
  std::vector<std::size_t> jobs;  ///< plan job indices this pick buys

  std::string label() const {
    return candidate_label(kind, bytes, num_procs);
  }
};

/// The grid split into the mandatory prefix and the optional remainder.
struct CampaignGrid {
  std::vector<std::size_t> core_jobs;       ///< ascending job index
  std::vector<std::size_t> core_uni_extra;  ///< calibration jobs in core
  std::vector<int> core_kernel_ns;          ///< kernel endpoint sizes
  std::vector<Candidate> candidates;        ///< deterministic order
};

/// Splits a matrix plan. Core: every base job, the pi0 anchor, the
/// largest not-yet-core L2-overflowing uni point (so the two-predictor
/// fit is estimable after the core alone — s0 itself supplies the first
/// triplet), and the kernel pairs at the smallest and largest n > 1.
CampaignGrid partition_grid(const MatrixPlan& plan, double overflow_factor);

/// One measured uniprocessor sweep point.
struct MeasuredUni {
  std::size_t bytes = 0;
  double cpi = 0.0;
  double h2 = 0.0;
  double hm = 0.0;
};

/// Everything the scorer may read. All fields reflect *measured* runs
/// only — scoring never peeks at outcomes a candidate would produce.
struct ScoreContext {
  std::vector<MeasuredUni> uni;                   ///< any order
  std::vector<std::pair<int, double>> kernel_cpi; ///< (n, cpi_syn)
  /// Inference of the current Eq. 3 fit; null (or dof == 0) drops the
  /// leverage term's noise scale to 1, keeping scores finite.
  const OlsInference* inference = nullptr;
  /// log2 of the sweep sizes the what-if probes read the curve at: the
  /// per-processor data set of the largest machine (s0 / n_max) and its
  /// probe-scaled variants (s0 / n_max / k). Uniprocessor candidates
  /// within one octave of any of these are *probe focus*: they pin the
  /// part of the curve the answers are computed from, so they rank ahead
  /// of every other candidate, nearest first. Empty disables focusing.
  std::vector<double> focus_lg;
  /// True while the Eq. 3 fit is degenerate on the runs bought so far
  /// (e.g. every measured overflow triplet has an identically-zero
  /// predictor column). Then there is no model and no probe answers at
  /// all, so overflow calibration candidates outrank even probe focus —
  /// smallest size first, nearest the overflow boundary, where the L2
  /// still catches part of the working set and the column gets contrast.
  bool fit_blocked = false;
};

struct ScoredCandidate {
  Candidate candidate;
  double score = 0.0;
  /// Octaves to the nearest probe-focus size; infinity when the
  /// candidate is not in focus (or focusing is disabled).
  double focus_distance = 0.0;
  std::string reason;  ///< deterministic, for PLAN records and --explain
};

/// Scores and ranks (best first, total order). Throws CheckError when a
/// candidate has no measured neighbour at all to judge it by — the core
/// guarantees that never happens in a planner-built grid.
std::vector<ScoredCandidate> score_candidates(
    const std::vector<Candidate>& remaining, const ScoreContext& context);

}  // namespace scaltool::plan
