// Incremental model refit for the adaptive campaign planner (DESIGN.md
// §14).
//
// The planner picks one grid point at a time, so after every batch it
// needs the (t2, tm) fit — and the confidence intervals on it — refreshed
// without re-reading the whole campaign. Two layers provide that:
//
//  - IncrementalFitter maintains the normal-equation sums (XᵀX, Xᵀy) of a
//    no-intercept OLS across one-at-a-time additions and replacements,
//    then delegates the solve to least_squares_from_normal — the same
//    numbers the one-shot least_squares() accumulates, added in the same
//    order, so the two agree to machine precision (test_plan pins 1e-9).
//    A response shift (y − pi0) is applied analytically via the column
//    sums, so the Eq. 2 ↔ Eq. 3 fixed point never rebuilds the sums.
//
//  - ModelTracker is the model-level wrapper: it ingests uniprocessor
//    RunRecords as the engine completes them, keeps the pi0 anchor and
//    the replicate-median aggregation per data-set size (replacing the
//    affected fitter row when a new replicate moves a median), and
//    reruns the Eq. 2 ↔ Eq. 3 iteration of estimate_cpi_model on demand,
//    annotated with closed-form confidence intervals (math/confidence).
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cpi_model.hpp"
#include "core/inputs.hpp"
#include "math/confidence.hpp"
#include "math/least_squares.hpp"

namespace scaltool::plan {

class IncrementalFitter {
 public:
  explicit IncrementalFitter(std::size_t predictors = 2);

  /// Appends one observation; O(k²).
  void add(std::vector<double> x, double y);

  /// Replaces observation `index` (downdate + update of the sums). The
  /// replicate-median aggregation uses this when a fresh replicate moves
  /// a size's median triplet.
  void update(std::size_t index, std::vector<double> x, double y);

  std::size_t size() const { return rows_.size(); }
  std::size_t predictors() const { return k_; }
  const std::vector<std::vector<double>>& rows() const { return rows_; }
  const std::vector<double>& responses() const { return y_; }

  /// Solves the accumulated normal equations for the fit of
  /// y − y_shift ≈ X·coef. Throws CheckError exactly like least_squares
  /// on degenerate designs (dead column, collinearity, m < k).
  LsqFit fit(double y_shift = 0.0) const;

  /// MAD-rejecting fit over the stored design (the surviving subset
  /// changes per call, so this replays robust_least_squares rather than
  /// the sums; rejection indices refer to this fitter's rows).
  RobustLsqFit fit_robust(const RobustFitOptions& options = {},
                          double y_shift = 0.0) const;

  /// Closed-form inference for a fit() result over the full design.
  OlsInference inference(const LsqFit& fit) const;

 private:
  std::vector<double> shifted(double y_shift) const;

  std::size_t k_;
  std::vector<std::vector<double>> rows_;
  std::vector<double> y_;
  std::vector<double> xtx_;   // k×k accumulated XᵀX
  std::vector<double> xty_;   // accumulated Xᵀy
  std::vector<double> xsum_;  // column sums Xᵀ1, for the response shift
};

/// One fitted parameter with its uncertainty. Until the design has
/// residual degrees of freedom the intervals are infinite, never zero.
struct ParameterEstimate {
  double value = 0.0;
  double se = std::numeric_limits<double>::infinity();
  double ci95 = std::numeric_limits<double>::infinity();
};

/// The tracker's view of the CPI model after the runs seen so far.
struct ModelEstimate {
  /// False until the campaign has an anchor plus two L2-overflowing
  /// triplets and the fit succeeds; `status` then says what is missing.
  bool ok = false;
  std::string status;

  double pi0_initial = 0.0;  ///< Lubeck anchor CPI (biased)
  ParameterEstimate pi0;     ///< unbiased Eq. 2 estimate, delta-method CI
  ParameterEstimate t2;
  ParameterEstimate tm1;
  double fit_r2 = 0.0;
  int refine_iterations = 0;
  std::size_t triplets = 0;  ///< aggregated sizes in the Eq. 3 fit
  std::size_t dof = 0;       ///< residual degrees of freedom of that fit
  std::vector<std::size_t> rejected_sizes;  ///< robust-fit rejections
  std::vector<std::string> notes;
  /// Inference over the (t2, tm1) fit; meaningful when ok.
  OlsInference inference;
};

class ModelTracker {
 public:
  explicit ModelTracker(std::size_t l2_bytes, CpiModelOptions options = {});

  /// Ingests one completed uniprocessor run (any size; only runs
  /// overflowing overflow_factor × L2 join the fit, the smallest becomes
  /// the pi0 anchor — the same rules as estimate_cpi_model).
  void add_uni_run(const RunRecord& run);

  std::size_t runs_seen() const { return runs_seen_; }
  std::size_t triplets() const { return fitter_.size(); }
  bool has_anchor() const { return anchor_.has_value(); }

  /// The model after the runs seen so far; refits lazily. Values agree
  /// with estimate_cpi_model over the same runs to 1e-9 (test_plan).
  const ModelEstimate& estimate();

  /// Raw (unfloored) tm(n) backed out of a base run via Eq. 1, with a
  /// delta-method confidence interval through the (t2, tm1) covariance.
  /// A run without L2 misses carries tm(1) forward, like the model does.
  ParameterEstimate tm_at(const RunRecord& base_run);

 private:
  struct Triplet {
    double h2 = 0.0, hm = 0.0, cpi = 0.0;
  };

  std::size_t l2_bytes_;
  CpiModelOptions options_;
  std::optional<RunRecord> anchor_;
  /// Replicates per L2-overflowing size, descending size like the sweep.
  std::map<std::size_t, std::vector<Triplet>, std::greater<std::size_t>>
      replicates_;
  std::map<std::size_t, std::size_t> row_of_;  ///< size → fitter row
  IncrementalFitter fitter_{2};
  std::size_t runs_seen_ = 0;
  bool dirty_ = true;
  ModelEstimate estimate_;
};

}  // namespace scaltool::plan
