#include "plan/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <sstream>

#include "common/check.hpp"
#include "core/whatif.hpp"
#include "plan/fitter.hpp"

namespace scaltool::plan {

namespace {

double lg(double v) { return std::log2(v); }

std::string fmt(double v) {
  std::ostringstream os;
  os << v;  // default 6 significant digits; deterministic, no locale
  return os.str();
}

std::string fmt_list(const std::vector<double>& values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ",";
    os << fmt(values[i]);
  }
  return os.str();
}

/// Linear interpolation of a whole kernel RunRecord in log2(n).
RunRecord interpolate_kernel_record(const RunRecord& lo, const RunRecord& hi,
                                    int n) {
  const double t = (lg(static_cast<double>(n)) -
                    lg(static_cast<double>(lo.num_procs))) /
                   (lg(static_cast<double>(hi.num_procs)) -
                    lg(static_cast<double>(lo.num_procs)));
  const auto lerp = [t](double a, double b) { return a + (b - a) * t; };
  // Counts that scale multiplicatively with the machine size (work and
  // synchronization events roughly double per doubling of n) interpolate
  // geometrically; rates and CPIs interpolate linearly.
  const auto geo = [&](double a, double b) {
    if (a > 0.0 && b > 0.0) return std::exp(lerp(std::log(a), std::log(b)));
    return lerp(a, b);
  };
  RunRecord r = lo;
  r.num_procs = n;
  DerivedMetrics& m = r.metrics;
  m.cpi = lerp(lo.metrics.cpi, hi.metrics.cpi);
  m.h2 = lerp(lo.metrics.h2, hi.metrics.h2);
  m.hm = lerp(lo.metrics.hm, hi.metrics.hm);
  m.l1_hitr = lerp(lo.metrics.l1_hitr, hi.metrics.l1_hitr);
  m.l2_hitr = lerp(lo.metrics.l2_hitr, hi.metrics.l2_hitr);
  m.mem_frac = lerp(lo.metrics.mem_frac, hi.metrics.mem_frac);
  m.instructions = geo(lo.metrics.instructions, hi.metrics.instructions);
  m.store_to_shared = geo(lo.metrics.store_to_shared,
                          hi.metrics.store_to_shared);
  m.interventions = geo(lo.metrics.interventions, hi.metrics.interventions);
  m.invalidations = geo(lo.metrics.invalidations, hi.metrics.invalidations);
  m.cycles = m.cpi * m.instructions;
  r.execution_cycles = m.cycles / static_cast<double>(n);
  return r;
}

/// log2 of the sweep sizes the probe answers are read at: the largest
/// machine's per-processor data set and its what-if-scaled variants.
std::vector<double> probe_focus_lg(const MatrixPlan& plan,
                                   std::span<const int> proc_counts,
                                   const std::vector<double>& l2_probes) {
  int n_max = 1;
  for (int n : proc_counts) n_max = std::max(n_max, n);
  const double op = static_cast<double>(plan.s0) / n_max;
  std::vector<double> out{lg(op)};
  for (double k : l2_probes) out.push_back(lg(op / k));
  return out;
}

}  // namespace

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged: return "converged";
    case StopReason::kExhausted: return "exhausted";
    case StopReason::kMaxRuns: return "max-runs";
  }
  return "unknown";
}

ScalToolInputs assemble_adaptive(const MatrixPlan& plan,
                                 std::span<const JobOutcome> outcomes,
                                 const std::vector<bool>& ran) {
  ST_CHECK(outcomes.size() == plan.jobs.size());
  ST_CHECK(ran.size() == plan.jobs.size());
  ScalToolInputs in;
  in.app = plan.app;
  in.s0 = plan.s0;
  in.l2_bytes = plan.l2_bytes;

  for (std::size_t j : plan.base_jobs) {
    ST_CHECK_MSG(ran[j], "adaptive assembly: base run (s0, n="
                             << plan.jobs[j].num_procs
                             << ") missing — unrecoverable");
    in.base_runs.push_back(outcomes[j].record);
    in.validation.push_back(outcomes[j].validation);
  }
  ST_CHECK_MSG(ran[plan.uni_jobs.back()],
               "adaptive assembly: pi0 anchor (uni s="
                   << plan.jobs[plan.uni_jobs.back()].dataset_bytes
                   << " B) missing — unrecoverable");

  std::vector<std::size_t> dropped;
  for (std::size_t j : plan.uni_jobs) {
    if (ran[j])
      in.uni_runs.push_back(outcomes[j].record);
    else
      dropped.push_back(plan.jobs[j].dataset_bytes);
  }
  if (!dropped.empty()) {
    std::ostringstream os;
    os << "PLAN|skipped|uni sweep points not simulated:";
    for (std::size_t i = 0; i < dropped.size(); ++i)
      os << (i ? "," : " ") << dropped[i];
    in.notes.push_back(os.str());
  }

  // Kernels: measured where we have them, log2(n)-interpolated between
  // the nearest measured machine sizes where we do not (the core pins
  // both endpoints, so interior sizes always have two neighbours).
  std::map<int, KernelMeasurement> measured;
  for (const MatrixPlan::KernelJobs& kj : plan.kernel_jobs) {
    // A pair with one half quarantined counts as unmeasured: kernels are
    // only ever consumed together.
    if (!ran[kj.sync_job] || !ran[kj.spin_job]) continue;
    KernelMeasurement k;
    k.num_procs = kj.num_procs;
    k.sync_kernel = outcomes[kj.sync_job].record;
    k.spin_kernel = outcomes[kj.spin_job].record;
    measured[kj.num_procs] = std::move(k);
  }
  for (const MatrixPlan::KernelJobs& kj : plan.kernel_jobs) {
    const int n = kj.num_procs;
    const auto it = measured.find(n);
    if (it != measured.end()) {
      in.kernels.push_back(it->second);
      continue;
    }
    const KernelMeasurement* lo = nullptr;
    const KernelMeasurement* hi = nullptr;
    for (const auto& [np, k] : measured) {
      if (np < n) lo = &k;
      if (np > n && !hi) hi = &k;
    }
    ST_CHECK_MSG(lo || hi, "adaptive assembly: no measured kernel pair to "
                           "synthesize n=" << n << " from");
    KernelMeasurement synth;
    synth.num_procs = n;
    std::ostringstream note;
    if (lo && hi) {
      synth.sync_kernel =
          interpolate_kernel_record(lo->sync_kernel, hi->sync_kernel, n);
      synth.spin_kernel =
          interpolate_kernel_record(lo->spin_kernel, hi->spin_kernel, n);
      note << "PLAN|synth|kernel pair at n=" << n
           << " interpolated in log2(n) from n=" << lo->num_procs
           << " and n=" << hi->num_procs;
    } else {
      const KernelMeasurement* near = lo ? lo : hi;
      synth.sync_kernel = near->sync_kernel;
      synth.spin_kernel = near->spin_kernel;
      synth.sync_kernel.num_procs = n;
      synth.spin_kernel.num_procs = n;
      note << "PLAN|synth|kernel pair at n=" << n << " substituted from n="
           << near->num_procs << " (no neighbour on the other side)";
    }
    in.notes.push_back(note.str());
    in.kernels.push_back(std::move(synth));
  }
  in.validate();
  return in;
}

AdaptivePlanner::AdaptivePlanner(const ExperimentRunner& runner,
                                 CampaignOptions engine_options,
                                 PlannerOptions options)
    : engine_(runner, std::move(engine_options)),
      options_(std::move(options)) {
  ST_CHECK_MSG(options_.tolerance >= 0.0, "tolerance must be non-negative");
  ST_CHECK_MSG(!options_.l2_probes.empty(), "need at least one what-if probe");
}

PlannerResult AdaptivePlanner::run(const std::string& app, std::size_t s0,
                                   std::span<const int> proc_counts) {
  const MatrixPlan plan = engine_.runner().plan_matrix(app, s0, proc_counts);
  const CampaignGrid grid =
      partition_grid(plan, options_.analyze.cpi.overflow_factor);

  PlannerResult result;
  result.runs_total = plan.jobs.size();
  ST_CHECK_MSG(
      options_.max_runs == 0 || options_.max_runs >= grid.core_jobs.size(),
      "--max-runs=" << options_.max_runs << " is below the "
                    << grid.core_jobs.size()
                    << " mandatory core runs (base series, pi0 anchor, fit "
                       "calibration, kernel endpoints)");

  std::vector<JobOutcome> outcomes(plan.jobs.size());
  std::vector<bool> ran(plan.jobs.size(), false);
  std::vector<bool> attempted(plan.jobs.size(), false);
  EngineStats agg;
  agg.jobs_total = plan.jobs.size();
  ModelTracker tracker(plan.l2_bytes, options_.analyze.cpi);
  std::vector<std::string> plan_notes;

  // Executes one batch through the engine (skipping jobs a previous batch
  // already paid for) and folds outcomes, stats and the tracker forward.
  const auto run_batch = [&](const std::vector<std::size_t>& jobs) {
    std::vector<bool> mask(plan.jobs.size(), false);
    for (std::size_t j : jobs)
      if (!attempted[j]) mask[j] = true;
    std::vector<JobOutcome> batch = engine_.execute(plan, &mask);
    const EngineStats& s = engine_.stats();
    agg.workers = s.workers;
    agg.jobs_run += s.jobs_run;
    agg.jobs_cached += s.jobs_cached;
    agg.jobs_failed += s.jobs_failed;
    agg.jobs_replayed += s.jobs_replayed;
    agg.jobs_quarantined += s.jobs_quarantined;
    agg.watchdog_timeouts += s.watchdog_timeouts;
    agg.attempts += s.attempts;
    agg.retries += s.retries;
    agg.faults_injected += s.faults_injected;
    agg.wall_seconds += s.wall_seconds;
    agg.busy_seconds += s.busy_seconds;
    agg.cache_entries_loaded = s.cache_entries_loaded;
    agg.cache_entries_corrupt = s.cache_entries_corrupt;
    agg.cache_recovery_events = s.cache_recovery_events;
    for (const std::string& e : engine_.events()) result.events.push_back(e);

    std::vector<bool> quarantined(plan.jobs.size(), false);
    for (const QuarantinedJob& q : engine_.quarantined())
      quarantined[q.job] = true;
    for (std::size_t j = 0; j < mask.size(); ++j) {
      if (!mask[j]) continue;
      attempted[j] = true;
      if (quarantined[j]) continue;
      outcomes[j] = std::move(batch[j]);
      ran[j] = true;
    }
    // Feed the tracker new sweep runs in sweep order (deterministic
    // whatever order the workers finished in).
    for (std::size_t j : plan.uni_jobs)
      if (mask[j] && ran[j]) tracker.add_uni_run(outcomes[j].record);
  };

  const auto runs_used = [&]() {
    return static_cast<std::size_t>(
        std::count(attempted.begin(), attempted.end(), true));
  };

  // What-if probe answers at the largest machine size: the questions the
  // model exists to answer, watched for inter-step stability. Until the
  // runs bought so far support the model at all (a two-triplet core can
  // be degenerate — e.g. both calibration points past the size where the
  // L2 stops hitting), there are no answers yet: the planner keeps
  // buying, and the acquisition order reaches for the fit-improving
  // points first.
  const auto evaluate = [&]() -> std::optional<std::vector<double>> {
    // A failed assembly (lost base run or pi0 anchor) stays fatal — no
    // amount of further buying repairs the mandatory core.
    const ScalToolInputs inputs = assemble_adaptive(plan, outcomes, ran);
    try {
      const ScalabilityReport report = analyze(inputs, options_.analyze);
      const BottleneckPoint& last = report.points.back();
      std::vector<double> answers;
      for (double k : options_.l2_probes) {
        WhatIfParams params;
        params.l2_scale_k = k;
        answers.push_back(
            what_if(report, inputs, params).point(last.n).speed_ratio);
      }
      answers.push_back(last.l2lim_cost() / last.base_cycles);
      answers.push_back(last.mp_cost() / last.base_cycles);
      return answers;
    } catch (const CheckError&) {
      return std::nullopt;
    }
  };

  const auto model_summary = [&]() {
    std::ostringstream os;
    const ModelEstimate& est = tracker.estimate();
    if (!est.ok) {
      os << "model=unavailable(" << est.status << ")";
      return os.str();
    }
    os << "t2=" << fmt(est.t2.value) << "|t2_ci=" << fmt(est.t2.ci95)
       << "|tm1=" << fmt(est.tm1.value) << "|tm1_ci=" << fmt(est.tm1.ci95)
       << "|pi0=" << fmt(est.pi0.value) << "|pi0_ci=" << fmt(est.pi0.ci95)
       << "|triplets=" << est.triplets << "|dof=" << est.dof;
    return os.str();
  };

  {
    std::ostringstream os;
    os << "PLAN|policy=ci-shrink|tolerance=" << fmt(options_.tolerance)
       << "|max-runs=" << options_.max_runs << "|grid=" << plan.jobs.size()
       << "|core=" << grid.core_jobs.size() << "|probes=";
    for (std::size_t i = 0; i < options_.l2_probes.size(); ++i)
      os << (i ? "," : "") << "l2x" << fmt(options_.l2_probes[i]);
    plan_notes.push_back(os.str());
  }

  run_batch(grid.core_jobs);
  std::optional<std::vector<double>> prev = evaluate();
  {
    std::ostringstream os;
    os << "PLAN|step=0|pick=core|runs=" << runs_used() << "|"
       << model_summary() << "|answers="
       << (prev ? fmt_list(*prev) : std::string("unavailable"));
    plan_notes.push_back(os.str());
  }

  std::vector<bool> bought(grid.candidates.size(), false);
  for (;;) {
    std::vector<Candidate> remaining;
    for (std::size_t i = 0; i < grid.candidates.size(); ++i)
      if (!bought[i]) remaining.push_back(grid.candidates[i]);
    if (remaining.empty()) {
      result.stop = StopReason::kExhausted;
      break;
    }

    ScoreContext ctx;
    ctx.focus_lg = probe_focus_lg(plan, proc_counts, options_.l2_probes);
    for (std::size_t j : plan.uni_jobs)
      if (ran[j])
        ctx.uni.push_back({plan.jobs[j].dataset_bytes,
                           outcomes[j].record.metrics.cpi,
                           outcomes[j].record.metrics.h2,
                           outcomes[j].record.metrics.hm});
    for (const MatrixPlan::KernelJobs& kj : plan.kernel_jobs)
      if (ran[kj.sync_job])
        ctx.kernel_cpi.push_back(
            {kj.num_procs, outcomes[kj.sync_job].record.metrics.cpi});
    const ModelEstimate& est = tracker.estimate();
    if (est.ok && est.inference.dof > 0) ctx.inference = &est.inference;
    // A degenerate fit on ≥ 2 triplets (not merely "too few points yet")
    // means nothing downstream is computable until calibration improves.
    ctx.fit_blocked = !est.ok && est.triplets >= 2;

    const std::vector<ScoredCandidate> scored =
        score_candidates(remaining, ctx);
    const ScoredCandidate& best = scored.front();
    std::size_t cost = 0;
    for (std::size_t j : best.candidate.jobs)
      if (!attempted[j]) ++cost;
    if (options_.max_runs != 0 && runs_used() + cost > options_.max_runs) {
      std::ostringstream os;
      os << "PLAN|budget|next pick " << best.candidate.label() << " costs "
         << cost << " runs but only " << options_.max_runs - runs_used()
         << " remain of --max-runs=" << options_.max_runs;
      plan_notes.push_back(os.str());
      result.stop = StopReason::kMaxRuns;
      break;
    }

    // Mark bought before executing so a quarantined pick is not retried
    // forever.
    for (std::size_t i = 0; i < grid.candidates.size(); ++i)
      if (!bought[i] &&
          grid.candidates[i].jobs == best.candidate.jobs)
        bought[i] = true;

    run_batch(best.candidate.jobs);
    ++result.steps;
    const std::optional<std::vector<double>> answers = evaluate();
    // No comparable pair of answers yet means no evidence of stability:
    // an infinite delta keeps the loop buying.
    double delta = std::numeric_limits<double>::infinity();
    if (answers && prev) {
      delta = 0.0;
      for (std::size_t i = 0; i < answers->size(); ++i)
        delta = std::max(delta, std::abs((*answers)[i] - (*prev)[i]) /
                                    std::max(1.0, std::abs((*prev)[i])));
    }
    result.final_delta = delta;
    {
      std::ostringstream os;
      os << "PLAN|step=" << result.steps << "|pick="
         << best.candidate.label() << "|score=" << fmt(best.score) << " ("
         << best.reason << ")|runs=" << runs_used() << "|"
         << model_summary() << "|answers="
         << (answers ? fmt_list(*answers) : std::string("unavailable"))
         << "|delta=" << fmt(delta);
      plan_notes.push_back(os.str());
    }
    if (answers) prev = answers;
    if (delta <= options_.tolerance) {
      result.stop = StopReason::kConverged;
      break;
    }
  }

  result.runs_used = runs_used();
  {
    std::ostringstream os;
    os << "PLAN|stop=" << stop_reason_name(result.stop) << "|runs="
       << result.runs_used << "/" << result.runs_total
       << "|steps=" << result.steps
       << "|delta=" << fmt(result.final_delta);
    plan_notes.push_back(os.str());
  }

  result.inputs = assemble_adaptive(plan, outcomes, ran);
  result.inputs.notes.insert(result.inputs.notes.begin(), plan_notes.begin(),
                             plan_notes.end());

  agg.planned_skipped =
      agg.jobs_total - (agg.jobs_run + agg.jobs_cached + agg.jobs_replayed +
                        agg.jobs_quarantined);
  result.stats = agg;
  return result;
}

std::string explain_plan(const ExperimentRunner& runner,
                         const std::string& app, std::size_t s0,
                         std::span<const int> proc_counts,
                         const PlannerOptions& options) {
  const MatrixPlan plan = runner.plan_matrix(app, s0, proc_counts);
  const CampaignGrid grid =
      partition_grid(plan, options.analyze.cpi.overflow_factor);
  std::ostringstream os;
  os << "adaptive plan: " << plan.app << ", s0 = " << plan.s0
     << " B, procs";
  for (int n : proc_counts) os << " " << n;
  os << "\n";
  os << "grid: " << plan.jobs.size() << " jobs = " << grid.core_jobs.size()
     << " core + " << grid.candidates.size() << " candidate picks\n";
  os << "core (scheduled unconditionally):\n";
  os << "  base (s0, n) series: " << plan.base_jobs.size() << " runs\n";
  os << "  uni s=" << plan.jobs[plan.uni_jobs.back()].dataset_bytes
     << " B (pi0 anchor)\n";
  for (std::size_t j : grid.core_uni_extra)
    os << "  uni s=" << plan.jobs[j].dataset_bytes
       << " B (t2/tm fit calibration)\n";
  for (int n : grid.core_kernel_ns)
    os << "  sync+spin kernels at n=" << n << " (synthesis endpoint)\n";
  os << "candidates (probe-focus sweep points first, then best expected "
        "CI shrinkage):\n";
  const std::vector<double> focus =
      probe_focus_lg(plan, proc_counts, options.l2_probes);
  for (const Candidate& c : grid.candidates) {
    os << "  " << c.label();
    if (c.kind != CandidateKind::kKernelPair) {
      double d = std::numeric_limits<double>::infinity();
      for (double f : focus)
        d = std::min(d, std::abs(lg(static_cast<double>(c.bytes)) - f));
      if (d <= 1.0) os << "  (probe focus)";
    }
    os << "\n";
  }
  os << "stopping: what-if probes";
  for (std::size_t i = 0; i < options.l2_probes.size(); ++i)
    os << (i ? "," : "") << " l2x" << fmt(options.l2_probes[i]);
  os << " and cost fractions at max n stable within tolerance "
     << fmt(options.tolerance);
  if (options.max_runs != 0)
    os << "; at most " << options.max_runs << " runs";
  os << "\n";
  return os.str();
}

}  // namespace scaltool::plan
