#include "plan/acquisition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace scaltool::plan {

namespace {

double lg(double v) { return std::log2(v); }

int kind_rank(CandidateKind k) {
  switch (k) {
    case CandidateKind::kUniOverflow: return 0;
    case CandidateKind::kUniInterior: return 1;
    case CandidateKind::kKernelPair: return 2;
  }
  return 3;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;  // default 6 significant digits; "inf" for infinities
  return os.str();
}

}  // namespace

std::string candidate_label(CandidateKind kind, std::size_t bytes,
                            int num_procs) {
  std::ostringstream os;
  switch (kind) {
    case CandidateKind::kUniOverflow:
      os << "uni:" << bytes << "B(overflow)";
      break;
    case CandidateKind::kUniInterior:
      os << "uni:" << bytes << "B";
      break;
    case CandidateKind::kKernelPair:
      os << "kernels:n=" << num_procs;
      break;
  }
  return os.str();
}

CampaignGrid partition_grid(const MatrixPlan& plan, double overflow_factor) {
  ST_CHECK_MSG(!plan.jobs.empty(), "empty matrix plan");
  ST_CHECK_MSG(!plan.uni_jobs.empty(), "plan has no uniprocessor sweep");
  CampaignGrid grid;
  std::set<std::size_t> core;

  for (std::size_t j : plan.base_jobs) core.insert(j);
  // The pi0 anchor: smallest sweep size (the sweep is descending).
  core.insert(plan.uni_jobs.back());

  const double threshold =
      overflow_factor * static_cast<double>(plan.l2_bytes);
  const auto overflows = [&](std::size_t j) {
    return static_cast<double>(plan.jobs[j].dataset_bytes) > threshold;
  };
  // Eq. 3 needs two L2-overflowing triplets; (s0, 1) — a base job — is
  // one whenever s0 overflows. Promote the largest remaining overflow
  // point so the fit is estimable right after the core.
  std::size_t overflow_in_core = 0;
  for (std::size_t j : plan.uni_jobs)
    if (core.count(j) && overflows(j)) ++overflow_in_core;
  for (std::size_t j : plan.uni_jobs) {  // descending size
    if (overflow_in_core >= 2) break;
    if (core.count(j) || !overflows(j)) continue;
    core.insert(j);
    grid.core_uni_extra.push_back(j);
    ++overflow_in_core;
  }

  // Kernel endpoints: the synthesis of a skipped machine size
  // interpolates in log2(n), so the smallest and largest n > 1 must be
  // measured (they are the same pair when only one size exists).
  if (!plan.kernel_jobs.empty()) {
    const MatrixPlan::KernelJobs& lo = plan.kernel_jobs.front();
    const MatrixPlan::KernelJobs& hi = plan.kernel_jobs.back();
    for (const MatrixPlan::KernelJobs* kj : {&lo, &hi}) {
      if (core.count(kj->sync_job)) continue;
      core.insert(kj->sync_job);
      core.insert(kj->spin_job);
      grid.core_kernel_ns.push_back(kj->num_procs);
    }
  }

  grid.core_jobs.assign(core.begin(), core.end());

  // Everything else is negotiable, enumerated sweep-order first.
  for (std::size_t j : plan.uni_jobs) {
    if (core.count(j)) continue;
    Candidate c;
    c.kind = overflows(j) ? CandidateKind::kUniOverflow
                          : CandidateKind::kUniInterior;
    c.bytes = plan.jobs[j].dataset_bytes;
    c.jobs = {j};
    grid.candidates.push_back(std::move(c));
  }
  for (const MatrixPlan::KernelJobs& kj : plan.kernel_jobs) {
    if (core.count(kj.sync_job)) continue;
    Candidate c;
    c.kind = CandidateKind::kKernelPair;
    c.num_procs = kj.num_procs;
    c.jobs = {kj.sync_job, kj.spin_job};
    grid.candidates.push_back(std::move(c));
  }
  return grid;
}

namespace {

/// Scores one uniprocessor candidate from its measured neighbours on the
/// sweep curve (sorted ascending by size).
double score_uni(const Candidate& c, const std::vector<MeasuredUni>& uni,
                 const OlsInference* inference, std::string* reason) {
  ST_CHECK_MSG(!uni.empty(),
               "no measured sweep point to score " << c.label() << " against");
  // Neighbours below and above the candidate size.
  const MeasuredUni* below = nullptr;
  const MeasuredUni* above = nullptr;
  for (const MeasuredUni& m : uni) {
    if (m.bytes < c.bytes) below = &m;             // ascending: keeps max
    if (m.bytes > c.bytes && !above) above = &m;   // first = min
  }
  const double x = lg(static_cast<double>(c.bytes));
  double gap = 0.0;
  double dcpi = 0.0;
  if (below && above) {
    gap = lg(static_cast<double>(above->bytes)) -
          lg(static_cast<double>(below->bytes));
    dcpi = std::abs(above->cpi - below->cpi);
  } else {
    // One-sided (a calibration size beyond the measured range): the
    // curve there is pure extrapolation, so weight by twice the distance
    // to the nearest measurement and by the curve's local slope proxy.
    const MeasuredUni* near = below ? below : above;
    gap = 2.0 * std::abs(x - lg(static_cast<double>(near->bytes)));
    const MeasuredUni* second = nullptr;
    for (const MeasuredUni& m : uni)
      if (&m != near &&
          (!second || std::abs(lg(static_cast<double>(m.bytes)) -
                               lg(static_cast<double>(near->bytes))) <
                          std::abs(lg(static_cast<double>(second->bytes)) -
                                   lg(static_cast<double>(near->bytes)))))
        second = &m;
    dcpi = second ? std::abs(near->cpi - second->cpi) : near->cpi;
  }
  double score = gap * dcpi;
  std::ostringstream os;
  os << "curve gap=" << fmt(gap) << " octaves, dcpi=" << fmt(dcpi);

  if (c.kind == CandidateKind::kUniOverflow) {
    // D-optimal term: predicted triplet row (ĥ2, ĥm) interpolated on the
    // measured curve (clamped), weighted by its design leverage and the
    // fit's residual variance when we have one.
    std::vector<const MeasuredUni*> sorted;
    for (const MeasuredUni& m : uni) sorted.push_back(&m);
    std::sort(sorted.begin(), sorted.end(),
              [](const MeasuredUni* a, const MeasuredUni* b) {
                return a->bytes < b->bytes;
              });
    double h2 = 0.0, hm = 0.0;
    if (c.bytes <= sorted.front()->bytes) {
      h2 = sorted.front()->h2;
      hm = sorted.front()->hm;
    } else if (c.bytes >= sorted.back()->bytes) {
      h2 = sorted.back()->h2;
      hm = sorted.back()->hm;
    } else {
      for (std::size_t i = 1; i < sorted.size(); ++i) {
        if (c.bytes > sorted[i]->bytes) continue;
        const double x0 = lg(static_cast<double>(sorted[i - 1]->bytes));
        const double x1 = lg(static_cast<double>(sorted[i]->bytes));
        const double t = (x - x0) / (x1 - x0);
        h2 = sorted[i - 1]->h2 + (sorted[i]->h2 - sorted[i - 1]->h2) * t;
        hm = sorted[i - 1]->hm + (sorted[i]->hm - sorted[i - 1]->hm) * t;
        break;
      }
    }
    double noise = 1.0;
    if (inference && inference->dof > 0 && std::isfinite(inference->sigma2))
      noise = inference->sigma2;
    const double row[2] = {h2, hm};
    const double lev = inference ? inference->leverage(row) : 0.0;
    const double term = noise * lev;
    score += term;
    os << ", leverage term=" << fmt(term);
  }
  *reason = os.str();
  return score;
}

double score_kernels(const Candidate& c,
                     const std::vector<std::pair<int, double>>& kernel_cpi,
                     std::string* reason) {
  const std::pair<int, double>* below = nullptr;
  const std::pair<int, double>* above = nullptr;
  for (const auto& m : kernel_cpi) {
    if (m.first < c.num_procs) below = &m;
    if (m.first > c.num_procs && !above) above = &m;
  }
  ST_CHECK_MSG(below || above,
               "no measured kernel to score " << c.label() << " against");
  double gap = 0.0;
  double dcpi = 0.0;
  if (below && above) {
    gap = lg(static_cast<double>(above->first)) -
          lg(static_cast<double>(below->first));
    dcpi = std::abs(above->second - below->second);
  } else {
    const auto* near = below ? below : above;
    gap = 2.0 * std::abs(lg(static_cast<double>(c.num_procs)) -
                         lg(static_cast<double>(near->first)));
    dcpi = near->second;
  }
  std::ostringstream os;
  os << "cpi_syn gap=" << fmt(gap) << " octaves, dcpi=" << fmt(dcpi);
  *reason = os.str();
  return gap * dcpi;
}

}  // namespace

std::vector<ScoredCandidate> score_candidates(
    const std::vector<Candidate>& remaining, const ScoreContext& context) {
  constexpr double kFocusWindow = 1.0;  // octaves around a probe size
  std::vector<ScoredCandidate> out;
  out.reserve(remaining.size());
  for (const Candidate& c : remaining) {
    ScoredCandidate sc;
    sc.candidate = c;
    sc.focus_distance = std::numeric_limits<double>::infinity();
    if (c.kind == CandidateKind::kKernelPair) {
      sc.score = score_kernels(c, context.kernel_cpi, &sc.reason);
    } else {
      sc.score = score_uni(c, context.uni, context.inference, &sc.reason);
      for (double f : context.focus_lg)
        sc.focus_distance = std::min(
            sc.focus_distance, std::abs(lg(static_cast<double>(c.bytes)) - f));
      if (sc.focus_distance <= kFocusWindow)
        sc.reason = "probe focus, " + fmt(sc.focus_distance) +
                    " octaves from an operating size; " + sc.reason;
      else
        sc.focus_distance = std::numeric_limits<double>::infinity();
      if (context.fit_blocked && c.kind == CandidateKind::kUniOverflow)
        sc.reason = "fit degenerate, calibration first; " + sc.reason;
    }
    out.push_back(std::move(sc));
  }
  // Priority bands: fit-unblocking calibration (only while the fit is
  // degenerate, smallest size first), then probe focus nearest an
  // operating size, then everything else by expected CI shrinkage.
  const auto band = [&context](const ScoredCandidate& sc) {
    if (context.fit_blocked &&
        sc.candidate.kind == CandidateKind::kUniOverflow)
      return 0;
    return std::isfinite(sc.focus_distance) ? 1 : 2;
  };
  std::sort(out.begin(), out.end(),
            [&band](const ScoredCandidate& a, const ScoredCandidate& b) {
              const int ba = band(a);
              const int bb = band(b);
              if (ba != bb) return ba < bb;
              if (ba == 0 && a.candidate.bytes != b.candidate.bytes)
                return a.candidate.bytes < b.candidate.bytes;
              if (a.focus_distance != b.focus_distance)
                return a.focus_distance < b.focus_distance;
              if (a.score != b.score) return a.score > b.score;
              const int ra = kind_rank(a.candidate.kind);
              const int rb = kind_rank(b.candidate.kind);
              if (ra != rb) return ra < rb;
              if (a.candidate.bytes != b.candidate.bytes)
                return a.candidate.bytes > b.candidate.bytes;
              if (a.candidate.num_procs != b.candidate.num_procs)
                return a.candidate.num_procs < b.candidate.num_procs;
              return a.candidate.jobs.front() < b.candidate.jobs.front();
            });
  return out;
}

}  // namespace scaltool::plan
