#include "io/env.hpp"

#include <fcntl.h>
#include <stdio.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <vector>

namespace scaltool::io {

namespace {

Env& default_env() {
  static Env env;
  return env;
}

std::atomic<Env*> g_override{nullptr};

}  // namespace

int Env::open(const char* path, int flags, mode_t mode) {
  return ::open(path, flags, mode);
}

ssize_t Env::read(int fd, void* buf, std::size_t count) {
  return ::read(fd, buf, count);
}

ssize_t Env::write(int fd, const void* buf, std::size_t count) {
  return ::write(fd, buf, count);
}

int Env::fsync(int fd) { return ::fsync(fd); }

int Env::close(int fd) { return ::close(fd); }

int Env::rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int Env::flock(int fd, int operation) { return ::flock(fd, operation); }

int Env::unlink(const char* path) { return ::unlink(path); }

Env& Env::instance() {
  Env* env = g_override.load(std::memory_order_relaxed);
  return env != nullptr ? *env : default_env();
}

Env* install_env(Env* env) {
  return g_override.exchange(env, std::memory_order_relaxed);
}

bool is_storage_errno(int err) {
  switch (err) {
    case ENOSPC:
    case EDQUOT:
    case EIO:
    case EMFILE:
    case ENFILE:
    case EFBIG:
      return true;
    default:
      return false;
  }
}

void write_all(Env& env, int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = env.write(fd, data, left);
    if (n <= 0) {
      // write() returning 0 has no errno worth reporting; name it anyway
      // so the error is never "Success".
      const int err = n == 0 ? EIO : errno;
      std::ostringstream os;
      os << "write to " << path << " failed: "
         << (n == 0 ? "wrote 0 bytes" : std::strerror(err));
      throw StorageError(os.str(), err);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

void fsync_parent_dir(Env& env, const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = env.open(dir.c_str(), O_RDONLY, 0);
  if (fd < 0) return;  // can't open the directory: nothing to strengthen
  const int rc = env.fsync(fd);
  const int err = errno;
  env.close(fd);
  if (rc != 0 && (err == EIO || err == ENOSPC || err == EDQUOT)) {
    std::ostringstream os;
    os << "fsync of directory " << dir << " failed: " << std::strerror(err);
    throw StorageError(os.str(), err);
  }
  // EINVAL/ENOTSUP/EROFS and friends: the filesystem cannot sync a
  // directory handle; temp+rename is still as durable as it ever was.
}

std::string IoFaultPlan::describe() const {
  std::ostringstream os;
  auto item = [&os](const char* key, std::uint64_t at) {
    if (at == 0) return;
    if (os.tellp() > 0) os << ' ';
    os << key << '=' << at;
  };
  item("enospc", enospc_at);
  item("eio", eio_at);
  item("short-write", short_write_at);
  item("torn-rename", torn_rename_at);
  item("fsync-drop", fsync_drop_at);
  item("emfile", emfile_at);
  return os.str();
}

int FaultyEnv::open(const char* path, int flags, mode_t mode) {
  const std::uint64_t n = opens_.fetch_add(1) + 1;
  if (plan_.emfile_at != 0 && n >= plan_.emfile_at) {
    ++injected_;
    errno = EMFILE;
    return -1;
  }
  return Env::open(path, flags, mode);
}

ssize_t FaultyEnv::write(int fd, const void* buf, std::size_t count) {
  const std::uint64_t n = writes_.fetch_add(1) + 1;
  if (plan_.enospc_at != 0 && n >= plan_.enospc_at) {
    ++injected_;
    errno = ENOSPC;
    return -1;
  }
  if (plan_.eio_at != 0 && n >= plan_.eio_at) {
    ++injected_;
    errno = EIO;
    return -1;
  }
  if (plan_.short_write_at == n && count > 1) {
    // One-shot: half the bytes land. A correct caller loops and the data
    // still arrives intact; a caller that trusted one write() truncates.
    ++injected_;
    return Env::write(fd, buf, count / 2);
  }
  return Env::write(fd, buf, count);
}

int FaultyEnv::fsync(int fd) {
  const std::uint64_t n = fsyncs_.fetch_add(1) + 1;
  if (plan_.fsync_drop_at != 0 && n >= plan_.fsync_drop_at) {
    // The lying fsync: reports success, syncs nothing. Invisible until a
    // torn rename or power cut exposes it — which is the point.
    ++injected_;
    return 0;
  }
  return Env::fsync(fd);
}

int FaultyEnv::rename(const char* from, const char* to) {
  const std::uint64_t n = renames_.fetch_add(1) + 1;
  if (plan_.torn_rename_at != n) return Env::rename(from, to);
  // Torn publication: the destination appears with only a prefix of the
  // source bytes (the page cache the lying fsync never flushed), the
  // source vanishes, and rename() reports success — the crash-mid-publish
  // failure that whole-file checksums and fsck exist to catch. Base-class
  // (real) syscalls throughout so the surgery itself is never re-faulted.
  ++injected_;
  std::vector<char> bytes;
  {
    const int src = Env::open(from, O_RDONLY, 0);
    if (src < 0) return Env::rename(from, to);  // nothing to tear
    char buf[4096];
    ssize_t got;
    while ((got = Env::read(src, buf, sizeof buf)) > 0)
      bytes.insert(bytes.end(), buf, buf + got);
    Env::close(src);
  }
  const std::size_t keep = bytes.size() - bytes.size() / 3;
  const int dst = Env::open(to, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (dst >= 0) {
    std::size_t off = 0;
    while (off < keep) {
      const ssize_t put = Env::write(dst, bytes.data() + off, keep - off);
      if (put <= 0) break;
      off += static_cast<std::size_t>(put);
    }
    Env::close(dst);
  }
  Env::unlink(from);
  return 0;
}

IoFaultCounts FaultyEnv::counts() const {
  IoFaultCounts c;
  c.opens = opens_.load();
  c.writes = writes_.load();
  c.fsyncs = fsyncs_.load();
  c.renames = renames_.load();
  c.injected = injected_.load();
  return c;
}

}  // namespace scaltool::io
