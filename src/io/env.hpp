// Syscall-level storage environment with deterministic fault injection
// (DESIGN.md §15).
//
// Every durability path in this tree — the WAL journal, the two-phase
// archive commit, the flock'd run-cache save, the telemetry exporters —
// used to call open/write/fsync/rename directly, which made ENOSPC, EIO,
// short writes, torn renames, lying fsyncs and fd exhaustion untestable
// hypotheticals. io::Env is the seam that fixes that: a process-wide
// environment object whose virtual methods default to the real syscalls,
// and a FaultyEnv subclass that injects a *seeded, counted* storage-fault
// schedule (the `--faults=enospc=3,...` grammar) at exact syscall indices.
//
// The contract the fault drills pin: with any FaultyEnv schedule
// installed, a campaign either finishes with a byte-identical archive
// (after recovery/resume) or stops with a named StorageError that maps to
// exit code 9 and a journaled checkpoint — never a silently corrupt or
// truncated artifact.
//
// Design notes:
//   - Env::instance() is one relaxed atomic load; the default env's
//     methods are direct syscall forwarders, so the indirection costs one
//     virtual dispatch per I/O call. bench_crash_recovery gates the
//     end-to-end overhead at ≤2%.
//   - Installation is process-global (campaign workers and fleet shards
//     all write through it), not thread-local: a shard that runs out of
//     disk is out of disk on every thread.
//   - Only the *durability* paths route through Env. Read paths and
//     scratch I/O keep their ifstream habits — corrupt reads are already
//     covered by the hostile-input suites, and the failure this layer
//     models is losing data we promised to keep.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace scaltool::io {

/// A named storage failure on a durability path: the disk (real or
/// injected) refused bytes we promised to keep. Derives from CheckError so
/// legacy catch-sites still treat it as a hard error, but the CLI and
/// service map it to the dedicated exit code 9 with a recovery hint.
class StorageError : public CheckError {
 public:
  StorageError(const std::string& what, int error_number)
      : CheckError(what), errno_(error_number) {}

  /// The errno that surfaced the fault (ENOSPC, EIO, EMFILE, ...); 0 when
  /// the failure has no errno (e.g. a rename that lied).
  int error_number() const { return errno_; }

 private:
  int errno_;
};

/// The storage environment: real syscalls by default, overridable per
/// call for fault injection. All methods keep the POSIX contract exactly
/// (return values, errno), so call sites read like the syscalls they wrap.
class Env {
 public:
  virtual ~Env() = default;

  virtual int open(const char* path, int flags, mode_t mode);
  virtual ssize_t read(int fd, void* buf, std::size_t count);
  virtual ssize_t write(int fd, const void* buf, std::size_t count);
  virtual int fsync(int fd);
  virtual int close(int fd);
  virtual int rename(const char* from, const char* to);
  virtual int flock(int fd, int operation);
  virtual int unlink(const char* path);

  /// The currently installed environment (the default real-syscall Env
  /// unless a FaultyEnv was installed). One relaxed atomic load.
  static Env& instance();
};

/// Installs `env` process-wide (nullptr restores the default real-syscall
/// environment). Returns the previously installed override (nullptr when
/// the default was active). Not thread-safe against concurrent I/O on the
/// old env — install before the campaign starts, as ScopedEnv does.
Env* install_env(Env* env);

/// RAII installation for a command's or a test's lifetime. A null env is
/// a no-op, so `ScopedEnv guard(maybe_faulty())` reads naturally.
class ScopedEnv {
 public:
  explicit ScopedEnv(Env* env)
      : installed_(env != nullptr),
        previous_(installed_ ? install_env(env) : nullptr) {}
  ~ScopedEnv() {
    if (installed_) install_env(previous_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  bool installed_;
  Env* previous_;
};

/// True when `err` names a storage/resource-exhaustion condition that the
/// graceful-degradation policy owns (ENOSPC, EDQUOT, EIO, EMFILE, ENFILE,
/// EFBIG). Other errnos (bad path, permissions) stay ordinary CheckErrors:
/// they are operator mistakes, not a disk giving out mid-campaign.
bool is_storage_errno(int err);

/// Writes all of `data` to `fd` through `env`, looping over short writes.
/// Throws StorageError naming `path` on any write failure — including a
/// write() that returns 0, which a hostile filesystem can produce.
void write_all(Env& env, int fd, const char* data, std::size_t size,
               const std::string& path);

/// fsyncs the directory containing `path`, making a just-renamed entry
/// durable across power loss (the classic missing half of temp+rename).
/// Filesystems that cannot fsync a directory (EINVAL/ENOTSUP/EBADF on
/// some network mounts) are tolerated silently; a real storage error
/// (EIO/ENOSPC) throws StorageError.
void fsync_parent_dir(Env& env, const std::string& path);

/// Deterministic storage-fault schedule: each kind fires at (and, for the
/// sticky kinds, after) the Nth matching syscall, 1-based; 0 = never.
/// Counts are per-FaultyEnv-instance, so a schedule is reproducible by
/// construction — no RNG, the syscall index *is* the seed.
struct IoFaultPlan {
  std::uint64_t enospc_at = 0;      ///< sticky: Nth write() onward → ENOSPC
  std::uint64_t eio_at = 0;         ///< sticky: Nth write() onward → EIO
  std::uint64_t short_write_at = 0; ///< one-shot: Nth write() lands half
  std::uint64_t torn_rename_at = 0; ///< one-shot: Nth rename() publishes a
                                    ///  truncated prefix then "succeeds"
  std::uint64_t fsync_drop_at = 0;  ///< sticky: Nth fsync() onward lies
                                    ///  (returns 0, syncs nothing)
  std::uint64_t emfile_at = 0;      ///< sticky: Nth open() onward → EMFILE

  bool enabled() const {
    return enospc_at || eio_at || short_write_at || torn_rename_at ||
           fsync_drop_at || emfile_at;
  }

  /// Compact rendering of the nonzero knobs ("" when none).
  std::string describe() const;
};

/// What a FaultyEnv saw and did — the drill assertions read these.
struct IoFaultCounts {
  std::uint64_t opens = 0;
  std::uint64_t writes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t renames = 0;
  std::uint64_t injected = 0;  ///< faults actually delivered
};

/// Env that counts syscalls and injects the plan's faults at the chosen
/// indices. With an empty plan it is a pure pass-through counter — which
/// is exactly what bench_crash_recovery installs to price the seam.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(IoFaultPlan plan) : plan_(plan) {}

  int open(const char* path, int flags, mode_t mode) override;
  ssize_t write(int fd, const void* buf, std::size_t count) override;
  int fsync(int fd) override;
  int rename(const char* from, const char* to) override;

  const IoFaultPlan& plan() const { return plan_; }
  IoFaultCounts counts() const;

 private:
  IoFaultPlan plan_;
  std::atomic<std::uint64_t> opens_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<std::uint64_t> renames_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace scaltool::io
