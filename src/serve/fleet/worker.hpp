// Entry point of one forked worker shard (DESIGN.md §12).
//
// A worker is a full analysis service (PR 4) plus a socket front end on
// its own AF_UNIX path, living in a child process the supervisor forked.
// Its lifetime is governed by a lifeline pipe: the worker blocks reading
// the pipe after startup, and EOF — the supervisor closed the write end,
// deliberately or by dying — triggers a graceful drain. SIGTERM (the
// supervisor escalating a stop) interrupts the same read and drains too,
// with the interrupt flag turning in-flight campaigns into journaled
// checkpoints, so a stopped worker never loses committed work.
#pragma once

#include <string>

#include "serve/service.hpp"

namespace scaltool::serve {

/// Everything a worker needs to know, fixed before the fork.
struct WorkerSpec {
  int shard = 0;
  std::string socket_path;
  ServiceOptions service;
  /// Observability (DESIGN.md §13), all off by default. With enable_obs
  /// the worker records spans/metrics and writes its Chrome trace to
  /// trace_path at drain; with a non-empty fdr_path it keeps a crash
  /// flight-recorder ring there for the supervisor to salvage.
  bool enable_obs = false;
  std::string trace_path;
  std::string fdr_path;
};

/// Runs the worker until its lifeline reports EOF or a signal arrives;
/// returns the process exit code (0 drained clean, 6 interrupted).
/// Call only on the child side of fork() — it assumes it owns the process.
int fleet_worker_main(const WorkerSpec& spec, int lifeline_fd);

}  // namespace scaltool::serve
