// The serve fleet: supervisor + router behind one Submit-shaped front
// door (DESIGN.md §12).
//
// A Fleet is what `scaltool fleet` runs: N supervised worker processes
// behind one front socket. Requests entering submit() are answered
// locally when they are about the fleet itself (ping, health, stats —
// the per-worker view only the supervisor has) and routed to a worker
// shard otherwise. The fleet is degraded — health says so and the CLI
// exits with the dedicated code — once any shard sits benched in
// crash-loop quarantine, because from then on the remaining shards carry
// keyspace they were not sized for.
#pragma once

#include <future>
#include <string>

#include "common/exit_codes.hpp"
#include "serve/fleet/router.hpp"
#include "serve/fleet/supervisor.hpp"

namespace scaltool::serve {

/// Exit code of `scaltool fleet` when it shuts down with a shard benched
/// (the fleet served on, degraded). Distinct from 4 (nothing served).
/// The value lives in the exit-code table; this alias keeps the serve
/// namespace spelling (`serve::kExitFleetDegraded`) the tests pin.
using scaltool::kExitFleetDegraded;

struct FleetOptions {
  SupervisorOptions supervisor;
  RouterOptions router;
};

class Fleet {
 public:
  explicit Fleet(FleetOptions options);
  ~Fleet();  ///< stop()

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// The front door (Submit-compatible, so SocketServer and serve_lines
  /// can front it). Fleet-introspection ops resolve immediately; the rest
  /// resolve when a worker shard answers.
  std::future<Response> submit(Request request);

  /// submit() + get(): the one-shot client path.
  Response call(Request request);

  /// Drains and reaps every worker. Idempotent; also run by the
  /// destructor.
  void stop();

  /// True once any shard is benched.
  bool degraded() const;

  /// Fleet-wide liveness with the per-worker fields (pid, state, restart
  /// count, breaker state, keys owned, journal lag). Also folds the
  /// per-shard journal_lag gauges into the metric registry.
  std::string health_json() const;
  /// Fleet-level counters (routed, failovers, hedges, deaths, ...).
  std::string stats_json() const;

  /// Merges the front door's own Chrome trace with every shard's
  /// drain-time trace (`<socket>.trace.json`, present after stop()) into
  /// one timeline and writes it to `out_path`. Requires worker_obs;
  /// shards whose trace file is missing (e.g. SIGKILLed) are skipped.
  void write_merged_trace(const std::string& out_path) const;

  Supervisor& supervisor() { return supervisor_; }
  FleetRouter& router() { return router_; }

 private:
  Supervisor supervisor_;
  FleetRouter router_;
  bool obs_on_ = false;  ///< worker_obs || worker_fdr at construction
};

}  // namespace scaltool::serve
