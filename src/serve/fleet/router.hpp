// Fleet front-door routing (DESIGN.md §12).
//
// The router turns one fleet of worker shards into one service: every
// request is hashed to a canonical routing key, sent to the ring owner
// among the currently live shards, and — when the owner is dead, benched
// or tripping its circuit breaker — failed over along the ring order.
// For a `collect` that died mid-campaign the failover is journal-backed:
// before re-dispatching, the router appends `--resume` when the target's
// write-ahead journal exists, so the survivor replays the dead shard's
// committed runs instead of re-simulating them and the final archive is
// byte-identical to a fault-free run. Idempotent reads can optionally be
// hedged: when the owner has not answered within a budget, a duplicate
// goes to the next shard and the first response wins.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/fleet/breaker.hpp"
#include "serve/fleet/ring.hpp"
#include "serve/fleet/supervisor.hpp"
#include "serve/protocol.hpp"

namespace scaltool::serve {

struct RouterOptions {
  /// Ring points per shard; more points = smoother ownership.
  int vnodes = 64;
  CircuitBreaker::Config breaker;
  /// Per-dispatch socket send/receive timeout (0 = block indefinitely).
  int call_timeout_ms = 0;
  /// Hedge idempotent reads after this many ms without a response
  /// (0 = hedging off). Collects are never hedged — they write.
  int hedge_after_ms = 0;
  /// Clock injection for breaker tests.
  NowFn now;
};

class FleetRouter {
 public:
  FleetRouter(Supervisor& supervisor, RouterOptions options = {});

  /// Routes one request through the fleet. Never throws for fleet-side
  /// trouble: when every candidate shard fails, the response carries
  /// Status::kError with the unavailable exit code (4).
  Response route(const Request& request);

  /// Canonical routing key: FNV over op + args. Deterministic, so a key
  /// always lands on the same live shard (per-shard caches stay hot), and
  /// distinct from request_hash, which deliberately zeroes uncacheable ops.
  static std::uint64_t routing_key(const Request& request);

  const char* breaker_state(int shard) const;
  /// Keyspace fraction per shard among `live` — the health `keys_owned`
  /// field, computed on the router's actual ring.
  std::vector<double> ownership(const std::vector<bool>& live) const {
    return ring_.ownership(live);
  }
  std::uint64_t routed() const;
  std::uint64_t failovers() const;
  std::uint64_t hedges() const;

 private:
  /// One dispatch attempt to one shard; throws CheckError on transport
  /// failure (connect refused, hang-up, timeout).
  Response dispatch(int shard, const Request& request);
  /// Dispatch with a hedge: the owner gets hedge_after_ms to answer, then
  /// a duplicate goes to `backup` and the first response wins. Throws
  /// CheckError when both legs fail.
  Response dispatch_hedged(int primary, int backup, const Request& request);
  /// For a collect whose journal already exists on disk, the request the
  /// next shard should see: the original plus `--resume`.
  static Request with_resume_if_journaled(const Request& request);

  Supervisor& supervisor_;
  RouterOptions options_;
  HashRing ring_;
  /// shared_ptr so detached hedge legs can report outcomes without
  /// touching the router.
  std::vector<std::shared_ptr<CircuitBreaker>> breakers_;
  mutable std::mutex mu_;  ///< guards the tallies
  std::uint64_t routed_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t hedges_ = 0;
};

}  // namespace scaltool::serve
