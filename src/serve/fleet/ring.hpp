// Consistent-hash ring of the fleet router (DESIGN.md §12).
//
// Each shard owns many virtual points on a 64-bit ring; a request key is
// routed to the first live point clockwise from its hash. The properties
// the fleet leans on: (1) determinism — the same canonical request key
// always lands on the same shard, so the per-shard run caches and the
// single-flight batcher keep working across a multi-process fleet; and
// (2) minimal disruption — removing a shard (death, bench) moves only the
// keys that shard owned, onto its ring successors, instead of reshuffling
// the whole keyspace (Corey's "applications should control sharing": no
// shard ever takes over state it did not have to).
#pragma once

#include <cstdint>
#include <vector>

namespace scaltool::serve {

class HashRing {
 public:
  /// `shards` numbered 0..shards-1, each with `vnodes` ring points.
  explicit HashRing(int shards, int vnodes = 64);

  int shards() const { return shards_; }

  /// The shard owning `key`, skipping shards marked false in `live`
  /// (size shards(); an empty vector means all live). Returns -1 when no
  /// live shard remains.
  int pick(std::uint64_t key, const std::vector<bool>& live = {}) const;

  /// Up to `count` distinct live shards in ring order from `key`: the
  /// owner first, then the failover/hedge successors.
  std::vector<int> pick_ordered(std::uint64_t key, int count,
                                const std::vector<bool>& live = {}) const;

  /// Fraction of the keyspace each shard owns among the live set (sums to
  /// ~1.0; benched shards own 0). The `keys_owned` health field.
  std::vector<double> ownership(const std::vector<bool>& live = {}) const;

 private:
  struct Point {
    std::uint64_t at;
    int shard;
  };

  int shards_ = 0;
  std::vector<Point> points_;  ///< sorted by `at`
};

}  // namespace scaltool::serve
