#include "serve/fleet/ring.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scaltool::serve {

namespace {

/// splitmix64 finalizer, the tree-wide cheap mixer (see derive_seed).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool is_live(const std::vector<bool>& live, int shard) {
  return live.empty() || live[static_cast<std::size_t>(shard)];
}

}  // namespace

HashRing::HashRing(int shards, int vnodes) : shards_(shards) {
  ST_CHECK_MSG(shards >= 1, "the ring needs >= 1 shard");
  ST_CHECK_MSG(vnodes >= 1, "the ring needs >= 1 vnode per shard");
  points_.reserve(static_cast<std::size_t>(shards) *
                  static_cast<std::size_t>(vnodes));
  for (int s = 0; s < shards; ++s)
    for (int v = 0; v < vnodes; ++v)
      points_.push_back(
          {mix64((static_cast<std::uint64_t>(s) << 32) ^
                 static_cast<std::uint64_t>(v)),
           s});
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.at != b.at ? a.at < b.at : a.shard < b.shard;
            });
}

int HashRing::pick(std::uint64_t key, const std::vector<bool>& live) const {
  const std::vector<int> order = pick_ordered(key, 1, live);
  return order.empty() ? -1 : order.front();
}

std::vector<int> HashRing::pick_ordered(std::uint64_t key, int count,
                                        const std::vector<bool>& live) const {
  ST_CHECK_MSG(live.empty() ||
                   live.size() == static_cast<std::size_t>(shards_),
               "live mask size must match the shard count");
  std::vector<int> order;
  if (count <= 0) return order;
  std::vector<bool> taken(static_cast<std::size_t>(shards_), false);
  // First point clockwise from the key's position, wrapping once around.
  const std::uint64_t at = mix64(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), at,
                             [](const Point& p, std::uint64_t v) {
                               return p.at < v;
                             });
  for (std::size_t seen = 0; seen < points_.size(); ++seen, ++it) {
    if (it == points_.end()) it = points_.begin();
    const int shard = it->shard;
    if (taken[static_cast<std::size_t>(shard)] || !is_live(live, shard))
      continue;
    taken[static_cast<std::size_t>(shard)] = true;
    order.push_back(shard);
    if (static_cast<int>(order.size()) >= count) break;
  }
  return order;
}

std::vector<double> HashRing::ownership(const std::vector<bool>& live) const {
  std::vector<double> owned(static_cast<std::size_t>(shards_), 0.0);
  // Each live point owns the arc back to the previous live point; dead
  // points pass their arc clockwise, which is exactly what pick() does.
  std::vector<const Point*> alive;
  alive.reserve(points_.size());
  for (const Point& p : points_)
    if (is_live(live, p.shard)) alive.push_back(&p);
  if (alive.empty()) return owned;
  const double full = 18446744073709551616.0;  // 2^64
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const std::uint64_t prev =
        alive[i == 0 ? alive.size() - 1 : i - 1]->at;
    const std::uint64_t arc = alive[i]->at - prev;  // wraps mod 2^64
    owned[static_cast<std::size_t>(alive[i]->shard)] +=
        static_cast<double>(arc) / full;
  }
  return owned;
}

}  // namespace scaltool::serve
