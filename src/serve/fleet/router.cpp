#include "serve/fleet/router.hpp"

#include <sys/stat.h>

#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "engine/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "serve/transport.hpp"

namespace scaltool::serve {

namespace {

bool file_exists(const std::string& path) {
  struct stat st {};
  return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

std::string arg_value(const std::vector<std::string>& args,
                      const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (const std::string& arg : args)
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  return "";
}

bool has_flag(const std::vector<std::string>& args, const std::string& flag) {
  const std::string bare = "--" + flag;
  for (const std::string& arg : args)
    if (arg == bare || arg.rfind(bare + "=", 0) == 0) return true;
  return false;
}

/// Reads with no side effects are safe to send twice; a hedged collect
/// would run the campaign twice.
bool is_idempotent(const std::string& op) { return op != "collect"; }

Response unavailable_response(const Request& request, std::string why) {
  Response response;
  response.id = request.id;
  response.status = Status::kError;
  response.exit_code = 4;  // the CLI's "unavailable" code
  response.error = std::move(why);
  return response;
}

/// Shared scoreboard of the hedge legs. Legs run detached and own a
/// shared_ptr to this, so a leg finishing after route() returned writes
/// into memory that is still alive and simply goes unread.
struct HedgeState {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;
  bool have = false;
  Response response;
  std::string first_error;
};

}  // namespace

FleetRouter::FleetRouter(Supervisor& supervisor, RouterOptions options)
    : supervisor_(supervisor),
      options_(std::move(options)),
      ring_(supervisor.shards(), options_.vnodes) {
  if (!options_.now) options_.now = &MonoClock::now;
  breakers_.reserve(static_cast<std::size_t>(supervisor_.shards()));
  for (int s = 0; s < supervisor_.shards(); ++s)
    breakers_.push_back(
        std::make_shared<CircuitBreaker>(options_.breaker, options_.now));
}

std::uint64_t FleetRouter::routing_key(const Request& request) {
  std::uint64_t h = fnv1a(kFnvBasis, request.op);
  for (const std::string& arg : request.args) {
    // `--resume` is a router annotation, not identity: the retried request
    // must land where the original would have.
    if (arg == "--resume") continue;
    h = fnv1a(h, arg);
  }
  return h;
}

Request FleetRouter::with_resume_if_journaled(const Request& request) {
  if (request.op != "collect") return request;
  if (has_flag(request.args, "resume") || has_flag(request.args, "no-journal"))
    return request;
  const std::string journal = arg_value(request.args, "journal");
  const std::string out = arg_value(request.args, "out");
  const std::string path =
      !journal.empty() ? journal : (out.empty() ? "" : journal_path_for(out));
  if (!file_exists(path)) return request;
  Request resumed = request;
  resumed.args.push_back("--resume");
  return resumed;
}

Response FleetRouter::dispatch(int shard, const Request& request) {
  return socket_call(supervisor_.socket_of(shard), request,
                     options_.call_timeout_ms);
}

Response FleetRouter::dispatch_hedged(int primary, int backup,
                                      const Request& request) {
  auto state = std::make_shared<HedgeState>();
  const auto launch = [this, state,
                       request](int shard,
                                std::shared_ptr<CircuitBreaker> breaker) {
    // Resolve everything the leg needs up front — the detached thread
    // must not touch the router or the supervisor after launch.
    const std::string path = supervisor_.socket_of(shard);
    const int timeout_ms = options_.call_timeout_ms;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->pending;
    }
    std::thread([state, breaker = std::move(breaker), path, request,
                 timeout_ms] {
      try {
        Response response = socket_call(path, request, timeout_ms);
        breaker->record_success();
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->have) {
          state->have = true;
          state->response = std::move(response);
        }
        --state->pending;
      } catch (const CheckError& e) {
        breaker->record_failure();
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->first_error.empty()) state->first_error = e.what();
        --state->pending;
      }
      state->cv.notify_all();
    }).detach();
  };

  launch(primary, breakers_[static_cast<std::size_t>(primary)]);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    const bool settled = state->cv.wait_for(
        lock, std::chrono::milliseconds(options_.hedge_after_ms),
        [&] { return state->have || state->pending == 0; });
    if (settled) {
      if (state->have) return state->response;
      throw CheckError(state->first_error);  // primary failed fast
    }
  }

  // The owner is slow. Send the duplicate if the backup's breaker lets
  // us; the allow() outcome is honoured either way — a claimed half-open
  // probe is always resolved by the leg's record_* call.
  if (breakers_[static_cast<std::size_t>(backup)]->allow()) {
    obs::MetricRegistry::instance().counter("fleet.hedges").add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++hedges_;
    }
    launch(backup, breakers_[static_cast<std::size_t>(backup)]);
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->have || state->pending == 0; });
  if (state->have) return state->response;
  throw CheckError(state->first_error);
}

Response FleetRouter::route(const Request& request) {
  obs::Span span("fleet.route", "fleet");
  span.arg("op", request.op);
  auto& metrics = obs::MetricRegistry::instance();
  metrics.counter("fleet.requests").add(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++routed_;
  }

  const std::uint64_t key = routing_key(request);
  const std::vector<int> order =
      ring_.pick_ordered(key, supervisor_.shards(), supervisor_.live_mask());
  if (order.empty())
    return unavailable_response(request, "fleet: no live shard");

  std::string last_error = "fleet: every live shard refused the request";
  bool first_attempt = true;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int shard = order[i];
    const bool hedge = options_.hedge_after_ms > 0 &&
                       is_idempotent(request.op) && i + 1 < order.size();
    // allow() may claim a half-open probe; every path below resolves it
    // with a record_* (directly here, or inside the hedge leg).
    if (!breakers_[static_cast<std::size_t>(shard)]->allow()) {
      metrics.counter("fleet.breaker_skips").add(1);
      continue;
    }
    if (!first_attempt) {
      metrics.counter("fleet.failovers").add(1);
      std::lock_guard<std::mutex> lock(mu_);
      ++failovers_;
    }
    first_attempt = false;

    // Re-read the disk each attempt: the journal the dead owner left
    // behind appears between its death and this failover dispatch.
    const Request attempt = with_resume_if_journaled(request);
    try {
      if (hedge) return dispatch_hedged(shard, order[i + 1], attempt);
      const Response response = dispatch(shard, attempt);
      breakers_[static_cast<std::size_t>(shard)]->record_success();
      return response;
    } catch (const CheckError& e) {
      if (!hedge)
        breakers_[static_cast<std::size_t>(shard)]->record_failure();
      metrics.counter("fleet.dispatch_failures").add(1);
      last_error = std::string("fleet: shard ") + std::to_string(shard) +
                   " failed: " + e.what();
      continue;  // next shard in ring order
    }
  }
  return unavailable_response(request, last_error);
}

const char* FleetRouter::breaker_state(int shard) const {
  ST_CHECK_MSG(shard >= 0 && shard < static_cast<int>(breakers_.size()),
               "shard out of range");
  return breakers_[static_cast<std::size_t>(shard)]->state_name();
}

std::uint64_t FleetRouter::routed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return routed_;
}

std::uint64_t FleetRouter::failovers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failovers_;
}

std::uint64_t FleetRouter::hedges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hedges_;
}

}  // namespace scaltool::serve
