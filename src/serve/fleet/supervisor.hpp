// Worker-shard supervision (DESIGN.md §12).
//
// The supervisor owns the fleet's process tree: it forks one worker shard
// per ring slot (each a full analysis service listening on its own
// AF_UNIX socket), reaps deaths, restarts the dead with the exponential
// backoff of RestartPolicy, benches crash-loopers, and health-checks the
// living through the PR 5 `health` verb — a worker that stops answering
// is killed and goes through the same death/restart accounting as one
// that crashed on its own. Everything a worker leaves on disk when it
// dies (run journals, stage files) is the router's handoff material, not
// the supervisor's problem: supervision is only about keeping N healthy
// processes behind the ring.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/fleet/breaker.hpp"
#include "serve/fleet/worker.hpp"

namespace scaltool::serve {

struct SupervisorOptions {
  int shards = 4;
  /// Directory for the shard sockets (`<dir>/shard-<i>.sock`).
  std::string socket_dir;
  /// Service options every worker runs with (shared cache path included).
  ServiceOptions worker;
  RestartPolicy::Config restart;
  /// Monitor cadence: deaths are noticed and due restarts performed on
  /// this tick.
  int tick_ms = 20;
  /// One live worker is health-probed per interval, round-robin.
  int health_interval_ms = 250;
  int health_timeout_ms = 2000;
  /// Consecutive failed probes before the worker is declared wedged and
  /// killed (then restarted through the normal death path).
  int health_failures_to_kill = 3;
  /// stop(): drain grace before SIGTERM, then before SIGKILL.
  int stop_grace_ms = 10000;
  int stop_term_ms = 2000;
  /// Fleet observability (DESIGN.md §13), all off by default.
  /// worker_obs: workers record spans/metrics and export a Chrome trace
  /// to `<socket>.trace.json` at drain. worker_fdr: workers keep a crash
  /// flight-recorder ring at `<socket>.fdr`; the supervisor salvages it
  /// when reaping a death and writes `<socket>.postmortem.txt`.
  /// scrape_metrics: the health probe piggybacks a `metrics` call and the
  /// supervisor folds shard snapshots into a fleet-level aggregate.
  bool worker_obs = false;
  bool worker_fdr = false;
  bool scrape_metrics = false;
  /// Test hook: what a forked worker runs. Defaults to fleet_worker_main.
  std::function<int(const WorkerSpec&, int lifeline_fd)> worker_entry;
};

enum class WorkerState {
  kLive,        ///< process running (as far as the last reap knew)
  kRestarting,  ///< dead, respawn scheduled
  kBenched,     ///< quarantined: no more restarts (see bench_cause)
};

const char* worker_state_name(WorkerState state);

/// Snapshot of one worker for health/stats reporting.
struct WorkerStatus {
  int shard = 0;
  pid_t pid = -1;
  WorkerState state = WorkerState::kLive;
  int restarts = 0;  ///< respawns performed (first spawn not counted)
  int deaths = 0;
  std::uint64_t journal_lag = 0;  ///< from the last successful probe
  int in_flight = 0;              ///< ditto
  double uptime_seconds = 0.0;
  std::string socket_path;
  /// Why a benched worker is benched — "crash-loop" (RestartPolicy gave
  /// up) or "storage-exhausted" (the worker exited with the storage-fault
  /// code; restarting it onto the same full disk would be a crash loop by
  /// construction). Empty while not benched.
  std::string bench_cause;
};

class Supervisor {
 public:
  /// Spawns every shard and starts the monitor. Throws CheckError when
  /// the options are unusable; worker startup failures surface as deaths.
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Stops the monitor and drains every live worker (lifeline close, then
  /// SIGTERM, then SIGKILL). Idempotent; also run by the destructor.
  void stop();

  int shards() const { return options_.shards; }
  /// Options are frozen at construction; reading them needs no lock.
  const SupervisorOptions& options() const { return options_; }
  std::string socket_of(int shard) const;
  pid_t pid_of(int shard) const;
  bool is_live(int shard) const;
  /// live()/benched mask for the ring (index = shard).
  std::vector<bool> live_mask() const;
  std::vector<WorkerStatus> status() const;
  int benched_count() const;
  std::uint64_t deaths_total() const;
  std::uint64_t restarts_total() const;

  /// Blocks until every non-benched shard answers a ping, or `timeout_ms`
  /// elapses. Returns whether the fleet came up whole.
  bool wait_ready(int timeout_ms) const;

  /// Fleet-level aggregate of the last scraped per-shard metric snapshots
  /// (counters sum, gauges max, histograms merge). Empty until the first
  /// scrape lands; requires scrape_metrics.
  obs::MetricsSnapshot scraped_metrics() const;

  /// Where shard `shard` writes its drain-time Chrome trace (empty when
  /// worker_obs is off) and where its post-mortem lands after a death.
  std::string trace_path_of(int shard) const;
  std::string post_mortem_path_of(int shard) const;

 private:
  struct Worker {
    WorkerSpec spec;
    pid_t pid = -1;
    int lifeline = -1;  ///< write end; closing it orders a drain
    WorkerState state = WorkerState::kLive;
    RestartPolicy policy;
    MonoClock::TimePoint spawned_at{};
    MonoClock::TimePoint restart_at{};
    int restarts = 0;
    int health_strikes = 0;
    std::string bench_cause;
    std::uint64_t journal_lag = 0;
    int in_flight = 0;
    bool survived_window_noted = false;
    /// Last scraped metrics snapshot (scrape_metrics only); cleared on
    /// respawn with the other probe-derived fields.
    obs::MetricsSnapshot scraped;
    bool have_scrape = false;

    explicit Worker(RestartPolicy::Config config) : policy(config) {}
  };

  void spawn_locked(Worker& worker);
  void monitor_loop();
  void reap_and_restart_locked();
  void write_post_mortem_locked(const Worker& worker,
                                const std::string& cause);
  void probe_one_health();

  SupervisorOptions options_;
  mutable std::mutex mu_;
  std::vector<Worker> workers_;
  std::thread monitor_;
  bool stopping_ = false;
  std::uint64_t deaths_ = 0;
  std::uint64_t restarts_ = 0;
  int probe_cursor_ = 0;
  MonoClock::TimePoint last_probe_{};
};

}  // namespace scaltool::serve
