#include "serve/fleet/supervisor.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "common/exit_codes.hpp"
#include "common/subprocess.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/transport.hpp"

namespace scaltool::serve {

namespace {

std::string shard_socket(const std::string& dir, int shard) {
  return dir + "/shard-" + std::to_string(shard) + ".sock";
}

std::string death_cause(const ChildExit& exit) {
  if (exit.exited())
    return "exited with code " + std::to_string(exit.exit_code());
  if (exit.signaled())
    return "killed by signal " + std::to_string(exit.term_signal());
  return "unknown wait status";
}

}  // namespace

const char* worker_state_name(WorkerState state) {
  switch (state) {
    case WorkerState::kLive:
      return "live";
    case WorkerState::kRestarting:
      return "restarting";
    case WorkerState::kBenched:
      return "benched";
  }
  return "?";
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  ST_CHECK_MSG(options_.shards >= 1, "the fleet needs >= 1 shard");
  ST_CHECK_MSG(!options_.socket_dir.empty(),
               "the fleet needs a socket directory");
  if (!options_.worker_entry) options_.worker_entry = &fleet_worker_main;

  workers_.reserve(static_cast<std::size_t>(options_.shards));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int s = 0; s < options_.shards; ++s) {
      workers_.emplace_back(options_.restart);
      Worker& worker = workers_.back();
      worker.spec.shard = s;
      worker.spec.socket_path = shard_socket(options_.socket_dir, s);
      worker.spec.service = options_.worker;
      worker.spec.enable_obs = options_.worker_obs;
      if (options_.worker_obs)
        worker.spec.trace_path = worker.spec.socket_path + ".trace.json";
      if (options_.worker_fdr)
        worker.spec.fdr_path = worker.spec.socket_path + ".fdr";
      spawn_locked(worker);
    }
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

Supervisor::~Supervisor() {
  try {
    stop();
  } catch (...) {
    // A destructor cannot usefully report a reap failure.
  }
}

void Supervisor::spawn_locked(Worker& worker) {
  int fds[2] = {-1, -1};
  ST_CHECK_MSG(::pipe(fds) == 0, "pipe() for the worker lifeline failed");
  const int read_end = fds[0];
  const WorkerSpec spec = worker.spec;
  const auto entry = options_.worker_entry;
  worker.pid = spawn_child(
      [entry, spec, read_end] { return entry(spec, read_end); }, {read_end});
  ::close(read_end);  // the child holds the only read end now
  worker.lifeline = fds[1];
  worker.state = WorkerState::kLive;
  worker.bench_cause.clear();
  worker.spawned_at = MonoClock::now();
  worker.health_strikes = 0;
  worker.survived_window_noted = false;
  // Probe-derived fields describe an incarnation, not a shard: a fresh
  // process has no journal lag, no in-flight work and no scraped metrics,
  // and health must never report the dead incarnation's numbers.
  worker.journal_lag = 0;
  worker.in_flight = 0;
  worker.scraped = obs::MetricsSnapshot{};
  worker.have_scrape = false;
}

void Supervisor::monitor_loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      reap_and_restart_locked();
    }
    probe_one_health();
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.tick_ms));
  }
}

void Supervisor::reap_and_restart_locked() {
  auto& metrics = obs::MetricRegistry::instance();
  const MonoClock::TimePoint now = MonoClock::now();
  for (Worker& worker : workers_) {
    if (worker.state == WorkerState::kLive) {
      if (const std::optional<ChildExit> exit = try_reap(worker.pid)) {
        ++deaths_;
        metrics.counter("fleet.worker_deaths").add(1);
        write_post_mortem_locked(worker, death_cause(*exit));
        worker.pid = -1;
        if (worker.lifeline >= 0) {
          ::close(worker.lifeline);
          worker.lifeline = -1;
        }
        // A worker that exits with the storage-fault code is telling us
        // its disk is full or dying. Respawning it onto the same disk is
        // a crash loop by construction, so it skips the backoff ladder
        // and goes straight to quarantine with a named cause; the ring
        // fails its keys over to shards whose disks still work.
        const bool storage_fault =
            exit->exited() && exit->exit_code() == kExitStorageFault;
        const RestartPolicy::Decision decision = worker.policy.on_death(now);
        if (storage_fault || decision.bench) {
          worker.state = WorkerState::kBenched;
          worker.bench_cause =
              storage_fault ? "storage-exhausted" : "crash-loop";
          metrics.counter("fleet.workers_benched").add(1);
          if (storage_fault)
            metrics.counter("fleet.workers_benched_storage").add(1);
        } else {
          worker.state = WorkerState::kRestarting;
          worker.restart_at = decision.restart_at;
        }
      } else if (!worker.survived_window_noted &&
                 MonoClock::seconds_since(worker.spawned_at) * 1000.0 >=
                     static_cast<double>(options_.restart.window_ms)) {
        // A full window without dying resets the crash-loop backoff burst.
        worker.policy.on_survived_window();
        worker.survived_window_noted = true;
      }
    } else if (worker.state == WorkerState::kRestarting &&
               now >= worker.restart_at) {
      spawn_locked(worker);
      ++worker.restarts;
      ++restarts_;
      metrics.counter("fleet.worker_restarts").add(1);
    }
  }
  int live = 0;
  for (const Worker& worker : workers_)
    if (worker.state == WorkerState::kLive) ++live;
  metrics.gauge("fleet.workers_live").set(live);
}

void Supervisor::write_post_mortem_locked(const Worker& worker,
                                          const std::string& cause) {
  if (worker.spec.fdr_path.empty()) return;
  // Best-effort forensics: a salvage or write failure must never break
  // the reap/restart path that keeps the fleet serving.
  try {
    const obs::FdrReport report =
        obs::salvage_flight_record(worker.spec.fdr_path);
    if (obs::try_write_text_file(
            worker.spec.socket_path + ".postmortem.txt",
            obs::post_mortem_text(report, worker.spec.shard,
                                  static_cast<std::int64_t>(worker.pid), cause,
                                  worker.journal_lag)))
      obs::MetricRegistry::instance().counter("fleet.post_mortems").add(1);
  } catch (const std::exception&) {
  }
}

void Supervisor::probe_one_health() {
  std::string path;
  pid_t pid = -1;
  int shard = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    if (last_probe_ != MonoClock::TimePoint{} &&
        MonoClock::seconds_since(last_probe_) * 1000.0 <
            static_cast<double>(options_.health_interval_ms))
      return;
    for (int i = 0; i < options_.shards; ++i) {
      const int s = (probe_cursor_ + i) % options_.shards;
      if (workers_[static_cast<std::size_t>(s)].state == WorkerState::kLive) {
        shard = s;
        probe_cursor_ = s + 1;
        path = workers_[static_cast<std::size_t>(s)].spec.socket_path;
        pid = workers_[static_cast<std::size_t>(s)].pid;
        break;
      }
    }
    if (shard < 0) return;
    last_probe_ = MonoClock::now();
  }

  // The round trip happens without the lock: a slow worker must not stall
  // death detection for the rest of the fleet.
  Request request;
  request.op = "health";
  bool healthy = false;
  std::uint64_t journal_lag = 0;
  int in_flight = 0;
  try {
    const Response response =
        socket_call(path, request, options_.health_timeout_ms);
    if (!response.stats_json.empty()) {
      const obs::JsonValue health = obs::json_parse(response.stats_json);
      if (health.has("journal_lag"))
        journal_lag =
            static_cast<std::uint64_t>(health.at("journal_lag").as_number());
      if (health.has("in_flight"))
        in_flight = static_cast<int>(health.at("in_flight").as_number());
      healthy = true;
    }
  } catch (const CheckError&) {
    healthy = false;
  }

  // Metrics scraping rides the health cadence: one extra round trip to the
  // same (healthy) worker, still without the lock.
  obs::MetricsSnapshot scraped;
  bool have_scrape = false;
  if (healthy && options_.scrape_metrics) {
    Request metrics_request;
    metrics_request.op = "metrics";
    try {
      const Response response =
          socket_call(path, metrics_request, options_.health_timeout_ms);
      if (!response.stats_json.empty()) {
        scraped = obs::parse_metrics_json(response.stats_json);
        have_scrape = true;
      }
    } catch (const CheckError&) {
      // A failed scrape is not a health strike; try again next round.
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  Worker& worker = workers_[static_cast<std::size_t>(shard)];
  // The worker may have died and been respawned while we probed; only the
  // incarnation we actually talked to gets judged.
  if (worker.state != WorkerState::kLive || worker.pid != pid) return;
  if (healthy) {
    worker.health_strikes = 0;
    worker.journal_lag = journal_lag;
    worker.in_flight = in_flight;
    if (have_scrape) {
      worker.scraped = std::move(scraped);
      worker.have_scrape = true;
    }
  } else if (++worker.health_strikes >= options_.health_failures_to_kill) {
    // Alive per the kernel but not answering: wedged. Kill it and let the
    // normal death path restart (or bench) it.
    obs::MetricRegistry::instance().counter("fleet.health_kills").add(1);
    ::kill(worker.pid, SIGKILL);
    worker.health_strikes = 0;
  }
}

void Supervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  if (monitor_.joinable()) monitor_.join();

  std::lock_guard<std::mutex> lock(mu_);
  // Close every lifeline first so all workers start draining in parallel,
  // then reap them one by one with the escalation deadline.
  for (Worker& worker : workers_) {
    if (worker.lifeline >= 0) {
      ::close(worker.lifeline);
      worker.lifeline = -1;
    }
  }
  for (Worker& worker : workers_) {
    if (worker.pid > 0) {
      reap_with_deadline(worker.pid, options_.stop_grace_ms,
                         options_.stop_term_ms);
      worker.pid = -1;
    }
  }
}

std::string Supervisor::socket_of(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  ST_CHECK_MSG(shard >= 0 && shard < options_.shards, "shard out of range");
  return workers_[static_cast<std::size_t>(shard)].spec.socket_path;
}

pid_t Supervisor::pid_of(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  ST_CHECK_MSG(shard >= 0 && shard < options_.shards, "shard out of range");
  return workers_[static_cast<std::size_t>(shard)].pid;
}

bool Supervisor::is_live(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  ST_CHECK_MSG(shard >= 0 && shard < options_.shards, "shard out of range");
  return workers_[static_cast<std::size_t>(shard)].state == WorkerState::kLive;
}

std::vector<bool> Supervisor::live_mask() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<bool> mask(workers_.size(), false);
  for (std::size_t i = 0; i < workers_.size(); ++i)
    mask[i] = workers_[i].state == WorkerState::kLive;
  return mask;
}

std::vector<WorkerStatus> Supervisor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerStatus> out;
  out.reserve(workers_.size());
  for (const Worker& worker : workers_) {
    WorkerStatus s;
    s.shard = worker.spec.shard;
    s.pid = worker.pid;
    s.state = worker.state;
    s.restarts = worker.restarts;
    s.deaths = worker.policy.deaths();
    s.journal_lag = worker.journal_lag;
    s.in_flight = worker.in_flight;
    s.uptime_seconds = worker.state == WorkerState::kLive
                           ? MonoClock::seconds_since(worker.spawned_at)
                           : 0.0;
    s.socket_path = worker.spec.socket_path;
    s.bench_cause = worker.bench_cause;
    out.push_back(std::move(s));
  }
  return out;
}

int Supervisor::benched_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const Worker& worker : workers_)
    if (worker.state == WorkerState::kBenched) ++n;
  return n;
}

std::uint64_t Supervisor::deaths_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deaths_;
}

std::uint64_t Supervisor::restarts_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_;
}

obs::MetricsSnapshot Supervisor::scraped_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::MetricsSnapshot acc;
  for (const Worker& worker : workers_)
    if (worker.have_scrape) obs::merge_snapshot_into(acc, worker.scraped);
  return acc;
}

std::string Supervisor::trace_path_of(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  ST_CHECK_MSG(shard >= 0 && shard < options_.shards, "shard out of range");
  return workers_[static_cast<std::size_t>(shard)].spec.trace_path;
}

std::string Supervisor::post_mortem_path_of(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  ST_CHECK_MSG(shard >= 0 && shard < options_.shards, "shard out of range");
  return workers_[static_cast<std::size_t>(shard)].spec.socket_path +
         ".postmortem.txt";
}

bool Supervisor::wait_ready(int timeout_ms) const {
  const MonoClock::TimePoint start = MonoClock::now();
  for (;;) {
    std::vector<std::string> targets;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Worker& worker : workers_)
        if (worker.state != WorkerState::kBenched)
          targets.push_back(worker.spec.socket_path);
    }
    bool all = true;
    for (const std::string& target : targets) {
      Request ping;
      ping.op = "ping";
      try {
        socket_call(target, ping, 1000);
      } catch (const CheckError&) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (MonoClock::seconds_since(start) * 1000.0 >=
        static_cast<double>(timeout_ms))
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace scaltool::serve
