// Failure-containment state machines of the serve fleet (DESIGN.md §12).
//
// Two small, deterministic policies that the supervisor and router consult
// so a sick shard degrades into slightly higher latency instead of
// user-visible errors:
//
//   CircuitBreaker — per-shard, closed → open after N consecutive
//   failures (transport errors or deadline overruns), open → half-open
//   after a cooldown, half-open admits exactly one probe whose outcome
//   decides between closed and open again. While open, the router walks
//   past the shard on the ring, so clients never wait out a dead socket.
//
//   RestartPolicy — per-worker crash accounting: each death earns an
//   exponentially backed-off restart, and K deaths inside a sliding
//   window bench the worker outright (crash-loop quarantine) so a binary
//   that dies on startup cannot hot-loop the supervisor.
//
// Both take an injectable time source; the robustness tests drive them
// with a fake clock and pin every transition deterministically.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "common/monotime.hpp"

namespace scaltool::serve {

/// Injectable time source (tests substitute a fake).
using NowFn = std::function<MonoClock::TimePoint()>;

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Config {
    /// Consecutive failures that trip the breaker open.
    int failure_threshold = 3;
    /// Open -> half-open after this long without traffic.
    int cooldown_ms = 500;
  };

  CircuitBreaker();  ///< default Config, real clock
  explicit CircuitBreaker(Config config, NowFn now = &MonoClock::now);

  /// True when a request may be sent through: closed, or open whose
  /// cooldown elapsed (transitions to half-open and claims the single
  /// probe slot), or half-open with the probe slot free (claims it).
  bool allow();

  /// Outcome feedback for a request that allow() admitted.
  void record_success();
  void record_failure();

  State state() const;
  const char* state_name() const;
  int consecutive_failures() const;

 private:
  const Config config_;
  const NowFn now_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int failures_ = 0;  ///< consecutive, reset by any success
  bool probe_in_flight_ = false;
  MonoClock::TimePoint opened_at_{};
};

/// Wire/health name of a breaker state ("closed", "open", "half_open").
const char* breaker_state_name(CircuitBreaker::State state);

class RestartPolicy {
 public:
  struct Config {
    /// First restart waits this long; each further death in the current
    /// burst doubles it (clamped to max_backoff_ms).
    int backoff_ms = 50;
    int max_backoff_ms = 5000;
    /// K deaths within window_ms bench the worker.
    int max_deaths = 3;
    int window_ms = 10000;
  };

  RestartPolicy();  ///< default Config
  explicit RestartPolicy(Config config);

  struct Decision {
    bool bench = false;  ///< crash loop: quarantine instead of restart
    MonoClock::TimePoint restart_at{};  ///< meaningful when !bench
  };

  /// Records a death at `now` and decides: bench, or restart at a backed-
  /// off time. Deterministic — same death times, same decisions.
  Decision on_death(MonoClock::TimePoint now);

  /// The worker survived a full window since its last (re)start: the
  /// burst is over, so a future isolated crash starts from base backoff.
  void on_survived_window();

  /// Lifetime deaths recorded.
  int deaths() const { return deaths_; }
  /// Deaths inside the current window (the crash-loop counter).
  int recent_deaths() const { return static_cast<int>(recent_.size()); }

 private:
  const Config config_;
  std::deque<MonoClock::TimePoint> recent_;  ///< deaths inside the window
  int deaths_ = 0;
};

}  // namespace scaltool::serve
