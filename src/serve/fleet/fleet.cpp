#include "serve/fleet/fleet.hpp"

#include <unistd.h>

#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_merge.hpp"

namespace scaltool::serve {

namespace {

std::future<Response> ready(Response r) {
  std::promise<Response> promise;
  promise.set_value(std::move(r));
  return promise.get_future();
}

}  // namespace

Fleet::Fleet(FleetOptions options)
    : supervisor_(std::move(options.supervisor)),
      router_(supervisor_, std::move(options.router)),
      obs_on_(supervisor_.options().worker_obs ||
              supervisor_.options().worker_fdr) {}

Fleet::~Fleet() {
  try {
    stop();
  } catch (...) {
  }
}

void Fleet::stop() { supervisor_.stop(); }

bool Fleet::degraded() const { return supervisor_.benched_count() > 0; }

std::future<Response> Fleet::submit(Request request) {
  // Introspection is answered by the fleet itself: only the supervisor
  // has the per-worker view, and these must keep working while every
  // shard is down — that is exactly when the operator asks.
  if (request.op == "ping") {
    Response r;
    r.id = request.id;
    r.output = "pong\n";
    return ready(std::move(r));
  }
  if (request.op == "health") {
    Response r;
    r.id = request.id;
    r.stats_json = health_json();
    if (degraded()) {
      r.status = Status::kDegraded;
      r.exit_code = kExitFleetDegraded;
    }
    return ready(std::move(r));
  }
  if (request.op == "stats") {
    Response r;
    r.id = request.id;
    r.stats_json = stats_json();
    return ready(std::move(r));
  }
  if (request.op == "metrics") {
    // The fleet-level aggregate: every shard's scraped snapshot folded
    // together, plus this process's own registry (fleet.* counters).
    Response r;
    r.id = request.id;
    obs::MetricsSnapshot merged = supervisor_.scraped_metrics();
    obs::merge_snapshot_into(merged,
                             obs::MetricRegistry::instance().snapshot());
    r.stats_json = obs::metrics_json(merged, /*compact=*/true);
    return ready(std::move(r));
  }
  // Mint the distributed-tracing identity at the front door (DESIGN.md
  // §13): the id rides the wire into the shard, whose spans then tag the
  // same request. Only when telemetry is on somewhere — the fully
  // disabled path stays allocation-free.
  if (request.trace_id.empty() &&
      (obs_on_ || obs::enabled() ||
       obs::installed_flight_recorder() != nullptr)) {
    request.trace_id = obs::mint_trace_id();
    request.parent_span = "fleet.request";
  }
  // Real work goes through the router on its own thread, so a pipelining
  // front connection keeps submitting while campaigns run. Admission
  // control stays where it was in PR 4: in each worker's bounded queue.
  return std::async(std::launch::async,
                    [this, request = std::move(request)]() mutable {
                      obs::TraceScope scope(obs::TraceContext{
                          request.trace_id, request.parent_span});
                      obs::Span span("fleet.request", "fleet");
                      span.arg("op", request.op);
                      return router_.route(request);
                    });
}

Response Fleet::call(Request request) { return submit(std::move(request)).get(); }

std::string Fleet::health_json() const {
  const std::vector<WorkerStatus> workers = supervisor_.status();
  std::vector<bool> live(workers.size(), false);
  for (std::size_t i = 0; i < workers.size(); ++i)
    live[i] = workers[i].state == WorkerState::kLive;
  const std::vector<double> owned = router_.ownership(live);

  auto& metrics = obs::MetricRegistry::instance();
  int live_count = 0;
  int benched = 0;
  std::ostringstream os;
  os << "{\"status\":\"";
  for (const WorkerStatus& w : workers) {
    if (w.state == WorkerState::kLive) ++live_count;
    if (w.state == WorkerState::kBenched) ++benched;
  }
  os << (benched > 0 || live_count < static_cast<int>(workers.size())
             ? "degraded"
             : "ok")
     << "\",\"shards\":" << workers.size() << ",\"live\":" << live_count
     << ",\"benched\":" << benched
     << ",\"deaths\":" << supervisor_.deaths_total()
     << ",\"restarts\":" << supervisor_.restarts_total()
     << ",\"routed\":" << router_.routed()
     << ",\"failovers\":" << router_.failovers()
     << ",\"hedges\":" << router_.hedges() << ",\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerStatus& w = workers[i];
    if (i > 0) os << ",";
    os << "{\"shard\":" << w.shard << ",\"pid\":" << w.pid << ",\"state\":\""
       << worker_state_name(w.state) << "\"";
    if (!w.bench_cause.empty())
      os << ",\"cause\":\"" << obs::json_escape(w.bench_cause) << "\"";
    os << ",\"restarts\":" << w.restarts
       << ",\"deaths\":" << w.deaths << ",\"breaker\":\""
       << router_.breaker_state(w.shard) << "\",\"journal_lag\":"
       << w.journal_lag << ",\"in_flight\":" << w.in_flight
       << ",\"keys_owned\":" << obs::json_number(owned[i]) << ",\"socket\":\""
       << obs::json_escape(w.socket_path) << "\"}";
    metrics.gauge("fleet.journal_lag.shard" + std::to_string(w.shard))
        .set(static_cast<double>(w.journal_lag));
    metrics.gauge("fleet.keys_owned.shard" + std::to_string(w.shard))
        .set(owned[i]);
  }
  os << "]}";
  metrics.gauge("fleet.workers_benched_now").set(benched);
  return os.str();
}

void Fleet::write_merged_trace(const std::string& out_path) const {
  std::vector<obs::NamedTrace> traces;
  traces.push_back(obs::NamedTrace{
      "front-door",
      obs::chrome_trace_json(obs::TraceProcessInfo{
          static_cast<std::int64_t>(::getpid()), "front-door"})});
  for (int shard = 0; shard < supervisor_.shards(); ++shard) {
    const std::string path = supervisor_.trace_path_of(shard);
    if (path.empty()) continue;
    try {
      traces.push_back(obs::NamedTrace{"shard-" + std::to_string(shard),
                                       obs::read_text_file(path)});
    } catch (const CheckError&) {
      // A shard that died without draining leaves no trace file; its
      // events are simply absent from the merged timeline.
    }
  }
  obs::write_text_file(out_path, obs::merge_chrome_traces(traces));
}

std::string Fleet::stats_json() const {
  const std::vector<WorkerStatus> workers = supervisor_.status();
  int live_count = 0;
  int benched = 0;
  for (const WorkerStatus& w : workers) {
    if (w.state == WorkerState::kLive) ++live_count;
    if (w.state == WorkerState::kBenched) ++benched;
  }
  std::ostringstream os;
  os << "{\"shards\":" << workers.size() << ",\"live\":" << live_count
     << ",\"benched\":" << benched << ",\"routed\":" << router_.routed()
     << ",\"failovers\":" << router_.failovers()
     << ",\"hedges\":" << router_.hedges()
     << ",\"deaths\":" << supervisor_.deaths_total()
     << ",\"restarts\":" << supervisor_.restarts_total() << "}";
  return os.str();
}

}  // namespace scaltool::serve
