#include "serve/fleet/fleet.hpp"

#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace scaltool::serve {

namespace {

std::future<Response> ready(Response r) {
  std::promise<Response> promise;
  promise.set_value(std::move(r));
  return promise.get_future();
}

}  // namespace

Fleet::Fleet(FleetOptions options)
    : supervisor_(std::move(options.supervisor)),
      router_(supervisor_, std::move(options.router)) {}

Fleet::~Fleet() {
  try {
    stop();
  } catch (...) {
  }
}

void Fleet::stop() { supervisor_.stop(); }

bool Fleet::degraded() const { return supervisor_.benched_count() > 0; }

std::future<Response> Fleet::submit(Request request) {
  // Introspection is answered by the fleet itself: only the supervisor
  // has the per-worker view, and these must keep working while every
  // shard is down — that is exactly when the operator asks.
  if (request.op == "ping") {
    Response r;
    r.id = request.id;
    r.output = "pong\n";
    return ready(std::move(r));
  }
  if (request.op == "health") {
    Response r;
    r.id = request.id;
    r.stats_json = health_json();
    if (degraded()) {
      r.status = Status::kDegraded;
      r.exit_code = kExitFleetDegraded;
    }
    return ready(std::move(r));
  }
  if (request.op == "stats") {
    Response r;
    r.id = request.id;
    r.stats_json = stats_json();
    return ready(std::move(r));
  }
  // Real work goes through the router on its own thread, so a pipelining
  // front connection keeps submitting while campaigns run. Admission
  // control stays where it was in PR 4: in each worker's bounded queue.
  return std::async(std::launch::async,
                    [this, request = std::move(request)]() mutable {
                      return router_.route(request);
                    });
}

Response Fleet::call(Request request) { return submit(std::move(request)).get(); }

std::string Fleet::health_json() const {
  const std::vector<WorkerStatus> workers = supervisor_.status();
  std::vector<bool> live(workers.size(), false);
  for (std::size_t i = 0; i < workers.size(); ++i)
    live[i] = workers[i].state == WorkerState::kLive;
  const std::vector<double> owned = router_.ownership(live);

  auto& metrics = obs::MetricRegistry::instance();
  int live_count = 0;
  int benched = 0;
  std::ostringstream os;
  os << "{\"status\":\"";
  for (const WorkerStatus& w : workers) {
    if (w.state == WorkerState::kLive) ++live_count;
    if (w.state == WorkerState::kBenched) ++benched;
  }
  os << (benched > 0 || live_count < static_cast<int>(workers.size())
             ? "degraded"
             : "ok")
     << "\",\"shards\":" << workers.size() << ",\"live\":" << live_count
     << ",\"benched\":" << benched
     << ",\"deaths\":" << supervisor_.deaths_total()
     << ",\"restarts\":" << supervisor_.restarts_total()
     << ",\"routed\":" << router_.routed()
     << ",\"failovers\":" << router_.failovers()
     << ",\"hedges\":" << router_.hedges() << ",\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerStatus& w = workers[i];
    if (i > 0) os << ",";
    os << "{\"shard\":" << w.shard << ",\"pid\":" << w.pid << ",\"state\":\""
       << worker_state_name(w.state) << "\",\"restarts\":" << w.restarts
       << ",\"deaths\":" << w.deaths << ",\"breaker\":\""
       << router_.breaker_state(w.shard) << "\",\"journal_lag\":"
       << w.journal_lag << ",\"in_flight\":" << w.in_flight
       << ",\"keys_owned\":" << obs::json_number(owned[i]) << ",\"socket\":\""
       << obs::json_escape(w.socket_path) << "\"}";
    metrics.gauge("fleet.journal_lag.shard" + std::to_string(w.shard))
        .set(static_cast<double>(w.journal_lag));
    metrics.gauge("fleet.keys_owned.shard" + std::to_string(w.shard))
        .set(owned[i]);
  }
  os << "]}";
  metrics.gauge("fleet.workers_benched_now").set(benched);
  return os.str();
}

std::string Fleet::stats_json() const {
  const std::vector<WorkerStatus> workers = supervisor_.status();
  int live_count = 0;
  int benched = 0;
  for (const WorkerStatus& w : workers) {
    if (w.state == WorkerState::kLive) ++live_count;
    if (w.state == WorkerState::kBenched) ++benched;
  }
  std::ostringstream os;
  os << "{\"shards\":" << workers.size() << ",\"live\":" << live_count
     << ",\"benched\":" << benched << ",\"routed\":" << router_.routed()
     << ",\"failovers\":" << router_.failovers()
     << ",\"hedges\":" << router_.hedges()
     << ",\"deaths\":" << supervisor_.deaths_total()
     << ",\"restarts\":" << supervisor_.restarts_total() << "}";
  return os.str();
}

}  // namespace scaltool::serve
