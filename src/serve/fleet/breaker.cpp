#include "serve/fleet/breaker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scaltool::serve {

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Config{}) {}

CircuitBreaker::CircuitBreaker(Config config, NowFn now)
    : config_(config), now_(std::move(now)) {
  ST_CHECK_MSG(config_.failure_threshold >= 1,
               "breaker failure threshold must be >= 1");
  ST_CHECK_MSG(config_.cooldown_ms >= 0, "breaker cooldown must be >= 0");
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const auto cooled =
          opened_at_ + std::chrono::milliseconds(config_.cooldown_ms);
      if (now_() < cooled) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;  // this caller is the probe
      return true;
    }
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failures_;
  probe_in_flight_ = false;
  // A half-open probe failing re-opens immediately; a closed breaker
  // opens once the consecutive run reaches the threshold.
  if (state_ == State::kHalfOpen ||
      failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now_();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

const char* CircuitBreaker::state_name() const {
  return breaker_state_name(state());
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

const char* breaker_state_name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "closed";
}

RestartPolicy::RestartPolicy() : RestartPolicy(Config{}) {}

RestartPolicy::RestartPolicy(Config config) : config_(config) {
  ST_CHECK_MSG(config_.backoff_ms >= 0, "restart backoff must be >= 0");
  ST_CHECK_MSG(config_.max_deaths >= 1, "max restarts must be >= 1");
  ST_CHECK_MSG(config_.window_ms >= 1, "restart window must be >= 1 ms");
}

RestartPolicy::Decision RestartPolicy::on_death(MonoClock::TimePoint now) {
  ++deaths_;
  const auto window = std::chrono::milliseconds(config_.window_ms);
  while (!recent_.empty() && now - recent_.front() > window)
    recent_.pop_front();
  recent_.push_back(now);

  Decision decision;
  if (recent_deaths() >= config_.max_deaths) {
    decision.bench = true;
    return decision;
  }
  // Death #1 in the burst waits backoff_ms, #2 waits 2x, ... clamped. The
  // shift count is bounded by max_deaths, itself sane-small, but clamp
  // anyway so a hostile config cannot reach UB territory.
  const int exponent = std::min(recent_deaths() - 1, 20);
  const std::int64_t wait =
      std::min(static_cast<std::int64_t>(config_.backoff_ms) << exponent,
               static_cast<std::int64_t>(config_.max_backoff_ms));
  decision.restart_at = now + std::chrono::milliseconds(wait);
  return decision;
}

void RestartPolicy::on_survived_window() { recent_.clear(); }

}  // namespace scaltool::serve
