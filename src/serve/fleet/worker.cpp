#include "serve/fleet/worker.hpp"

#include <unistd.h>

#include <cerrno>
#include <memory>

#include "common/interrupt.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "serve/transport.hpp"

namespace scaltool::serve {

int fleet_worker_main(const WorkerSpec& spec, int lifeline_fd) {
  // The parent's interrupt flag (if any) is this process's inherited
  // state, not its history; start clean so a drain is really a drain.
  reset_interrupted();
  install_interrupt_handlers();

  if (spec.enable_obs) obs::enable();
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!spec.fdr_path.empty()) {
    try {
      recorder = std::make_unique<obs::FlightRecorder>(spec.fdr_path);
      obs::install_flight_recorder(recorder.get());
    } catch (const std::exception&) {
      // A ring we cannot create (full disk, bad dir) must never stop the
      // shard from serving; it just dies without leaving evidence.
      recorder.reset();
    }
  }

  AnalysisService service(spec.service);
  SocketServer server(service, spec.socket_path);

  // Block on the lifeline: a byte or EOF is the stop order, EINTR is a
  // signal (the handlers install without SA_RESTART exactly so this read
  // unblocks).
  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(lifeline_fd, &byte, 1);
    if (n >= 0) break;  // stop order (byte) or supervisor death (EOF)
    if (errno == EINTR && !interrupt_requested()) continue;
    break;  // interrupted, or the lifeline itself broke: drain
  }

  server.stop();
  service.shutdown();
  if (spec.enable_obs) {
    obs::disable();
    if (!spec.trace_path.empty()) {
      // Trace export is best-effort on the drain path: a full disk costs
      // the trace (counted in obs.dropped_writes), never the drain.
      obs::try_write_text_file(
          spec.trace_path,
          obs::chrome_trace_json(obs::TraceProcessInfo{
              static_cast<std::int64_t>(::getpid()),
              "shard-" + std::to_string(spec.shard)}));
    }
  }
  obs::uninstall_flight_recorder();
  return interrupt_requested() ? kExitInterrupted : 0;
}

}  // namespace scaltool::serve
