#include "serve/fleet/worker.hpp"

#include <unistd.h>

#include <cerrno>

#include "common/interrupt.hpp"
#include "serve/transport.hpp"

namespace scaltool::serve {

int fleet_worker_main(const WorkerSpec& spec, int lifeline_fd) {
  // The parent's interrupt flag (if any) is this process's inherited
  // state, not its history; start clean so a drain is really a drain.
  reset_interrupted();
  install_interrupt_handlers();

  AnalysisService service(spec.service);
  SocketServer server(service, spec.socket_path);

  // Block on the lifeline: a byte or EOF is the stop order, EINTR is a
  // signal (the handlers install without SA_RESTART exactly so this read
  // unblocks).
  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(lifeline_fd, &byte, 1);
    if (n >= 0) break;  // stop order (byte) or supervisor death (EOF)
    if (errno == EINTR && !interrupt_requested()) continue;
    break;  // interrupted, or the lifeline itself broke: drain
  }

  server.stop();
  service.shutdown();
  return interrupt_requested() ? kExitInterrupted : 0;
}

}  // namespace scaltool::serve
