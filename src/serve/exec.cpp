#include "serve/exec.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "apps/apps.hpp"
#include "common/ascii_chart.hpp"
#include "common/check.hpp"
#include "common/interrupt.hpp"
#include "core/scaltool.hpp"
#include "engine/campaign.hpp"
#include "engine/checkpoint.hpp"
#include "engine/journal.hpp"
#include "io/env.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "plan/planner.hpp"
#include "runner/archive.hpp"

namespace scaltool::serve {

namespace {

/// Campaign-engine options shared by collect/analyze/whatif. --jobs=1
/// without --cache keeps the original serial path (and output) untouched.
CampaignOptions engine_from(const Args& args) {
  CampaignOptions options;
  options.jobs = args.get_int("jobs", 1);
  ST_CHECK_MSG(options.jobs >= 1, "--jobs must be at least 1");
  options.cache_path = args.get("cache", "");
  options.retries = args.get_int("retries", 0);
  options.backoff_ms = args.get_int("backoff-ms", 0);
  options.keep_going = args.has("keep-going");
  options.run_timeout_ms = args.get_int("run-timeout-ms", 0);
  options.resume = args.has("resume");
  const std::string faults = args.get("faults", "");
  if (!faults.empty()) options.faults = FaultPlan::parse(faults);
  return options;
}

/// Process-wide storage-fault injection for the duration of one command
/// (DESIGN.md §15). When the --faults spec (or the service's drill plan)
/// arms a syscall-level kind, every durability write the command performs
/// — journal appends, two-phase archive commits, run-cache saves,
/// telemetry exports — goes through one shared FaultyEnv so syscall
/// indices count deterministically across the whole command. Default
/// construction (no io kinds armed) is a no-op.
class StorageFaultScope {
 public:
  explicit StorageFaultScope(const io::IoFaultPlan& plan)
      : env_(plan.enabled() ? std::make_unique<io::FaultyEnv>(plan)
                            : nullptr),
        scope_(env_.get()) {}

 private:
  std::unique_ptr<io::FaultyEnv> env_;
  io::ScopedEnv scope_;
};

/// The io-fault plan a command should run under: its own --faults spec
/// when present, else whatever drill the service hooks carry.
io::IoFaultPlan io_plan_from(const Args& args, const ExecHooks& hooks) {
  const std::string faults = args.get("faults", "");
  if (!faults.empty()) return FaultPlan::parse(faults).io;
  return hooks.faults.io;
}

bool engine_engaged(const CampaignOptions& options) {
  return options.jobs > 1 || !options.cache_path.empty() ||
         options.retries > 0 || options.keep_going ||
         options.faults.enabled() || options.run_timeout_ms > 0 ||
         options.resume;
}

/// The journal the command wants (DESIGN.md §11): collect journals next
/// to its archive by default (`--no-journal` opts out, `--journal=FILE`
/// redirects); analyze/whatif collect into memory, so their journal is
/// opt-in. Empty = journaling off.
std::string journal_from(const Args& args, const std::string& out) {
  std::string journal =
      args.get("journal", out.empty() ? "" : journal_path_for(out));
  if (args.has("no-journal")) journal.clear();
  return journal;
}

/// Cancellation hook every engine-driven campaign gets: the service's
/// deadline (when present) OR'd with the process interrupt flag, so
/// SIGINT/SIGTERM checkpoint-and-stop any campaign, served or local.
std::function<bool()> interruptible(const std::function<bool()>& upstream) {
  return [upstream] {
    return interrupt_requested() || (upstream && upstream());
  };
}

/// Telemetry options shared by collect/analyze/whatif. Telemetry stays off
/// unless one of --trace-out/--metrics-out/--obs asks for it, so the default
/// paths (and their output bytes) are untouched. Inside the service the
/// keys are still consumed (no spurious "unrecognized option" warnings)
/// but never engage the process-wide registry.
struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
  bool table = false;
  bool allowed = true;

  bool engaged() const {
    return allowed &&
           (!trace_out.empty() || !metrics_out.empty() || table);
  }
};

ObsOptions obs_from(const Args& args, const ExecHooks& hooks) {
  ObsOptions options;
  options.trace_out = args.get("trace-out", "");
  options.metrics_out = args.get("metrics-out", "");
  options.table = args.has("obs");
  options.allowed = !hooks.service;
  if (options.engaged()) obs::enable();
  return options;
}

/// Flushes the telemetry a command gathered: trace and metrics files first,
/// then the human summary. Disables telemetry so a later command in the same
/// process starts from a clean registry. Exports are best-effort: by the
/// time they run the campaign's results are safe (or safely journaled), and
/// a disk too full for a trace must not turn a finished analysis into a
/// failure — the drop is warned about and counted (obs.dropped_writes).
void finish_obs(const ObsOptions& options, std::ostream& os) {
  if (!options.engaged()) return;
  const obs::MetricsSnapshot snap = obs::MetricRegistry::instance().snapshot();
  if (!options.trace_out.empty()) {
    if (obs::try_write_text_file(options.trace_out, obs::chrome_trace_json()))
      os << "trace written to " << options.trace_out
         << " (open in chrome://tracing or Perfetto)\n";
    else
      os << "warning: trace export to " << options.trace_out
         << " failed; telemetry dropped, results unaffected\n";
  }
  if (!options.metrics_out.empty()) {
    if (obs::try_write_text_file(options.metrics_out,
                                 obs::metrics_json(snap)))
      os << "metrics written to " << options.metrics_out << "\n";
    else
      os << "warning: metrics export to " << options.metrics_out
         << " failed; telemetry dropped, results unaffected\n";
  }
  if (options.table)
    for (const Table& table : obs::metrics_tables(snap)) table.print(os);
  obs::disable();
}

/// Collects the matrix, through the campaign engine when --jobs/--cache/
/// --retries/--keep-going/--faults ask for it; that engine path prints its
/// metrics plus the retry/quarantine journal, and reports via `degraded`
/// whether the result was assembled from a partial matrix (exit code 3).
/// When only the *hooks* engage the engine (the service's batching, its
/// deadline, its fault drill), the campaign runs quietly: bit-identical
/// results, not one extra output byte.
ScalToolInputs collect_matrix(const Args& args, const ExecHooks& hooks,
                              const ExperimentRunner& runner,
                              const std::string& app, std::size_t s0,
                              int max_procs, std::ostream& os,
                              bool* degraded = nullptr,
                              const std::string& journal = "") {
  CampaignOptions options = engine_from(args);
  options.journal_path = journal;
  const std::vector<int> counts = default_proc_counts(max_procs);
  if (engine_engaged(options)) {
    options.cancelled = interruptible(hooks.cancelled);
    CampaignEngine engine(runner, options);
    ScalToolInputs inputs = engine.collect(app, s0, counts);
    if (options.resume)
      os << "journal: replayed " << engine.stats().jobs_replayed << " of "
         << engine.stats().jobs_total << " runs ("
         << engine.stats().jobs_run << " simulated)\n";
    os << engine_stats_line(engine.stats()) << "\n";
    engine_stats_table(engine.stats()).print(os);
    for (const std::string& event : engine.events())
      os << "event: " << event << "\n";
    for (const std::string& note : inputs.notes)
      os << "degraded: " << note << "\n";
    if (degraded && !inputs.notes.empty()) *degraded = true;
    return inputs;
  }
  if (!hooks.engaged() && journal.empty())
    return runner.collect(app, s0, counts);
  if (hooks.engaged()) {
    options.jobs = hooks.jobs;
    options.shared_cache = hooks.shared_cache;
    options.faults = hooks.faults;
    options.retries = hooks.retries;
  }
  options.cancelled = interruptible(hooks.cancelled);
  CampaignEngine engine(runner, options);
  ScalToolInputs inputs = engine.collect(app, s0, counts);
  if (degraded && !inputs.notes.empty()) *degraded = true;
  return inputs;
}

/// The analyze/whatif commands accept either a saved archive or an app
/// name (collected on the fly). An archive that carries degradation notes
/// (it was assembled from a faulty campaign) marks the run degraded too.
ScalToolInputs inputs_from(const Args& args, const ExecHooks& hooks,
                           const std::string& target,
                           const ExperimentRunner& runner, std::ostream& os,
                           bool* degraded = nullptr,
                           const std::string& journal = "") {
  if (is_archive(target)) {
    (void)engine_from(args);       // marks the engine options as consumed
    (void)journal_from(args, "");  // ditto the journal options
    ScalToolInputs inputs = load_inputs(target);
    // "PLAN|" notes are the adaptive planner's provenance, not damage: an
    // adaptive archive is a first-class result, so only repair notes
    // (quarantines, interpolations, substitutions) mark it degraded.
    if (degraded)
      for (const std::string& note : inputs.notes)
        if (note.rfind("PLAN|", 0) != 0) *degraded = true;
    return inputs;
  }
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 10 * l2, l2);
  const int max_procs = args.get_int("max-procs", 32);
  return collect_matrix(args, hooks, runner, target, s0, max_procs, os,
                        degraded, journal);
}

/// Planner options from the adaptive flags (--tolerance/--max-runs plus
/// the analysis knobs the probes share with analyze).
plan::PlannerOptions planner_from(const Args& args) {
  plan::PlannerOptions options;
  options.tolerance = args.get_double("tolerance", 0.05);
  ST_CHECK_MSG(options.tolerance >= 0.0, "--tolerance must be non-negative");
  const int max_runs = args.get_int("max-runs", 0);
  ST_CHECK_MSG(max_runs >= 0, "--max-runs must be non-negative");
  options.max_runs = static_cast<std::size_t>(max_runs);
  options.analyze.model_sharing = args.has("sharing");
  options.analyze.cpi.robust = args.has("robust-fit");
  return options;
}

/// `collect --adaptive`: the planner drives the engine one batch at a
/// time instead of executing the whole matrix. Shares collect's journal,
/// two-phase archive publication and resume semantics; on kMaxRuns the
/// journal survives so a rerun with a higher budget picks up every run
/// already paid for.
int collect_adaptive(const Args& args, std::ostream& os,
                     const ExecHooks& hooks, const std::string& app,
                     const std::string& out, const std::string& journal) {
  const ExperimentRunner runner = runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 10 * l2, l2);
  const int max_procs = args.get_int("max-procs", 32);
  CampaignOptions options = engine_from(args);
  options.journal_path = journal;
  if (!engine_engaged(options) && hooks.engaged()) {
    options.jobs = hooks.jobs;
    options.shared_cache = hooks.shared_cache;
    options.faults = hooks.faults;
    options.retries = hooks.retries;
  }
  options.cancelled = interruptible(hooks.cancelled);
  plan::AdaptivePlanner planner(runner, std::move(options),
                                planner_from(args));
  const plan::PlannerResult result =
      planner.run(app, s0, default_proc_counts(max_procs));
  warn_unused(args, os);

  if (args.has("resume"))
    os << "journal: replayed " << result.stats.jobs_replayed << " of "
       << result.stats.jobs_total << " runs (" << result.stats.jobs_run
       << " simulated)\n";
  os << "adaptive: scheduled " << result.runs_used << " of "
     << result.runs_total << " matrix runs (" << result.steps
     << " adaptive picks, stop: " << plan::stop_reason_name(result.stop)
     << ")\n";
  os << engine_stats_line(result.stats) << "\n";
  engine_stats_table(result.stats).print(os);
  publish_engine_stats(result.stats);  // aggregate overrides the last batch
  for (const std::string& event : result.events)
    os << "event: " << event << "\n";
  bool degraded = false;
  for (const std::string& note : result.inputs.notes) {
    if (note.rfind("PLAN|", 0) == 0) {
      os << "plan: " << note << "\n";
    } else {
      os << "degraded: " << note << "\n";
      degraded = true;
    }
  }

  if (journal.empty()) {
    save_inputs(result.inputs, out);
  } else {
    JournalWriter writer(journal, /*append=*/true);
    commit_archive(result.inputs, out, &writer);
    if (result.stop != plan::StopReason::kMaxRuns)
      std::remove(journal.c_str());
  }
  os << "collected " << result.inputs.base_runs.size() << " base runs, "
     << result.inputs.uni_runs.size() << " uniprocessor runs and "
     << result.inputs.kernels.size() << " kernel pairs for " << app
     << " (s0 = " << format_bytes(s0) << ") into " << out << "\n";
  if (result.stop == plan::StopReason::kMaxRuns) {
    os << "adaptive: tolerance " << args.get_double("tolerance", 0.05)
       << " unreachable within --max-runs=" << args.get_int("max-runs", 0)
       << "; journal kept — rerun with --resume and a higher budget\n";
    return kExitToleranceUnreachable;
  }
  return degraded ? 3 : 0;
}

void chart_curves(const ScalabilityReport& report, std::ostream& os) {
  std::vector<std::pair<double, double>> base, no_l2, no_mp;
  for (const BottleneckPoint& p : report.points) {
    base.emplace_back(p.n, p.base_cycles / 1e6);
    no_l2.emplace_back(p.n, p.cycles_no_l2lim / 1e6);
    no_mp.emplace_back(p.n, p.cycles_no_l2lim_no_mp / 1e6);
  }
  AsciiChart chart(56, 14);
  chart.add_series('B', "Base (Mcycles)", std::move(base));
  chart.add_series('o', "Base - L2Lim", std::move(no_l2));
  chart.add_series('.', "Base - L2Lim - MP", std::move(no_mp));
  os << chart.render();
}

}  // namespace

MachineConfig machine_from(const Args& args) {
  MachineConfig cfg = MachineConfig::origin2000_scaled(1);
  const std::string topo = args.get("topology", "hypercube");
  if (topo == "hypercube") {
    cfg.network.topology = TopologyKind::kBristledHypercube;
  } else if (topo == "crossbar") {
    cfg.network.topology = TopologyKind::kCrossbar;
  } else if (topo == "ring") {
    cfg.network.topology = TopologyKind::kRing;
  } else if (topo == "mesh2d") {
    cfg.network.topology = TopologyKind::kMesh2D;
  } else {
    ST_CHECK_MSG(false, "unknown --topology=" << topo);
  }
  cfg.l2.size_bytes =
      args.get_size("l2-size", cfg.l2.size_bytes, cfg.l2.size_bytes);
  if (args.has("msi")) cfg.exclusive_state = false;
  cfg.tlb_entries = args.get_int("tlb", cfg.tlb_entries);
  cfg.validate();
  return cfg;
}

ExperimentRunner runner_from(const Args& args) {
  register_standard_workloads();
  ExperimentRunner runner(machine_from(args));
  runner.iterations = args.get_int("iters", runner.iterations);
  return runner;
}

bool is_archive(const std::string& target) {
  std::ifstream is(target);
  if (!is.good()) return false;
  std::string head;
  std::getline(is, head);
  return head.rfind("scaltool-inputs", 0) == 0;
}

void warn_unused(const Args& args, std::ostream& os) {
  for (const std::string& key : args.unused())
    os << "warning: unrecognized option --" << key << "\n";
}

int exec_collect(const Args& args, std::ostream& os, const ExecHooks& hooks) {
  const std::string app = args.positional(1, "");
  const std::string out = args.get("out", "");
  ST_CHECK_MSG(!app.empty() && !out.empty(),
               "usage: scaltool collect <app> --out=FILE");
  const StorageFaultScope storage_faults(io_plan_from(args, hooks));
  const ObsOptions obs_options = obs_from(args, hooks);
  const std::string journal = journal_from(args, out);
  reap_orphan_temps(out);  // stage files of crashed collects
  if (args.has("adaptive")) {
    const int rc = collect_adaptive(args, os, hooks, app, out, journal);
    finish_obs(obs_options, os);
    return rc;
  }
  const ExperimentRunner runner = runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 10 * l2, l2);
  const int max_procs = args.get_int("max-procs", 32);
  bool degraded = false;
  const ScalToolInputs inputs = collect_matrix(args, hooks, runner, app, s0,
                                               max_procs, os, &degraded,
                                               journal);
  warn_unused(args, os);
  if (journal.empty()) {
    save_inputs(inputs, out);
  } else {
    // Two-phase publication: stage + fsync, journal the commit marker,
    // rename. Once the archive is live the journal has served its purpose.
    JournalWriter writer(journal, /*append=*/true);
    commit_archive(inputs, out, &writer);
    std::remove(journal.c_str());
  }
  os << "collected " << inputs.base_runs.size() << " base runs, "
     << inputs.uni_runs.size() << " uniprocessor runs and "
     << inputs.kernels.size() << " kernel pairs for " << app << " (s0 = "
     << format_bytes(s0) << ") into " << out << "\n";
  finish_obs(obs_options, os);
  return degraded ? 3 : 0;
}

int exec_plan(const Args& args, std::ostream& os, const ExecHooks& hooks) {
  (void)hooks;  // planning runs nothing, so there is nothing to hook
  const std::string app = args.positional(1, "");
  ST_CHECK_MSG(!app.empty(),
               "usage: scaltool plan <app> [--size=BYTES] [--max-procs=N] "
               "[--tolerance=T] [--max-runs=N]");
  (void)args.has("explain");  // accepted; explaining is all this command does
  const ExperimentRunner runner = runner_from(args);
  const std::size_t l2 = runner.base_config().l2.size_bytes;
  const std::size_t s0 = args.get_size("size", 10 * l2, l2);
  const int max_procs = args.get_int("max-procs", 32);
  os << plan::explain_plan(runner, app, s0, default_proc_counts(max_procs),
                           planner_from(args));
  warn_unused(args, os);
  return 0;
}

int exec_analyze(const Args& args, std::ostream& os, const ExecHooks& hooks) {
  const std::string target = args.positional(1, "");
  ST_CHECK_MSG(!target.empty(),
               "usage: scaltool analyze <app|archive> [--sharing]");
  const StorageFaultScope storage_faults(io_plan_from(args, hooks));
  const ObsOptions obs_options = obs_from(args, hooks);
  const ExperimentRunner runner = runner_from(args);
  AnalyzeOptions options;
  options.model_sharing = args.has("sharing");
  options.cpi.robust = args.has("robust-fit");
  const bool chart = args.has("chart");
  const std::string journal =
      is_archive(target) ? "" : journal_from(args, "");
  bool degraded = false;
  const ScalToolInputs inputs =
      inputs_from(args, hooks, target, runner, os, &degraded, journal);
  warn_unused(args, os);

  const ScalabilityReport report = analyze(inputs, options);
  if (!report.model.fit_rejected.empty()) degraded = true;
  os << model_summary(report) << "\n";
  speedup_table(inputs).print(os);
  breakdown_table(report).print(os);
  if (chart) chart_curves(report, os);
  if (!inputs.validation.empty()) validation_table(report, inputs).print(os);
  finish_obs(obs_options, os);
  if (!journal.empty()) std::remove(journal.c_str());
  return degraded ? 3 : 0;
}

int exec_whatif(const Args& args, std::ostream& os, const ExecHooks& hooks) {
  const std::string target = args.positional(1, "");
  ST_CHECK_MSG(!target.empty(),
               "usage: scaltool whatif <app|archive> --l2x=K ...");
  const StorageFaultScope storage_faults(io_plan_from(args, hooks));
  const ObsOptions obs_options = obs_from(args, hooks);
  const ExperimentRunner runner = runner_from(args);
  WhatIfParams params;
  params.l2_scale_k = args.get_double("l2x", 1.0);
  params.tm_scale = args.get_double("tm-scale", 1.0);
  params.t2_scale = args.get_double("t2-scale", 1.0);
  params.tsyn_scale = args.get_double("tsyn-scale", 1.0);
  params.pi0_scale = args.get_double("pi0-scale", 1.0);
  AnalyzeOptions options;
  options.cpi.robust = args.has("robust-fit");
  const std::string journal =
      is_archive(target) ? "" : journal_from(args, "");
  bool degraded = false;
  const ScalToolInputs inputs =
      inputs_from(args, hooks, target, runner, os, &degraded, journal);
  warn_unused(args, os);

  const ScalabilityReport report = analyze(inputs, options);
  if (!report.model.fit_rejected.empty()) degraded = true;
  if (params.is_identity())
    os << "note: no parameter changed; showing the identity scenario "
          "(pass --l2x, --tm-scale, --t2-scale, --tsyn-scale or "
          "--pi0-scale)\n";
  whatif_table(what_if(report, inputs, params), "CLI scenario").print(os);
  finish_obs(obs_options, os);
  if (!journal.empty()) std::remove(journal.c_str());
  return degraded ? 3 : 0;
}

}  // namespace scaltool::serve
