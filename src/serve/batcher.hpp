// Request batcher: one campaign per (app, machine-config) however many
// clients ask.
//
// Two cooperating mechanisms implement coalescing without ever touching
// output bytes:
//
//   1. A service-wide shared RunCache threaded under every served command
//      (ExecHooks::shared_cache). The campaign engine keys jobs by content
//      hash, so the uniprocessor sweep shared by eight concurrent
//      `analyze swim` requests — or by an `analyze` and a `whatif` of the
//      same matrix — is simulated exactly once; later requests replay it
//      from the cache and only pay for their own rendering.
//
//   2. A single-flight gate per collection signature. Without it, N
//      concurrent identical requests would all miss the still-cold cache
//      and all simulate (a cache stampede). enter() admits one flight per
//      signature; the followers block until the leader has populated the
//      cache, then execute as pure cache replays.
//
// The signature hashes exactly the ingredients that determine the
// measurement matrix: target app, data-set size, processor counts,
// iterations, and the machine overrides. Archive targets (no simulation)
// and requests that engage the engine themselves (their campaign is their
// own business) are unbatchable: signature 0, no gate, no shared cache.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "engine/run_cache.hpp"
#include "serve/protocol.hpp"

namespace scaltool::serve {

class Batcher {
 public:
  /// `run_cache_path` optionally persists the shared cache across server
  /// restarts (empty = in-memory). Disabled keeps every request isolated,
  /// for A/B measurement (bench_serve_load).
  explicit Batcher(bool enabled, const std::string& run_cache_path = "");

  bool enabled() const { return enabled_; }

  /// The shared run cache; null when batching is disabled.
  const std::shared_ptr<RunCache>& run_cache() const { return run_cache_; }

  /// Collection signature of a request; 0 = unbatchable.
  std::uint64_t signature(const Request& request) const;

  /// Holds the single-flight slot for one signature (RAII).
  class Flight {
   public:
    Flight() = default;
    explicit Flight(std::unique_lock<std::mutex> lock)
        : lock_(std::move(lock)) {}

   private:
    std::unique_lock<std::mutex> lock_;
  };

  /// Blocks while another flight with the same signature is in progress.
  /// Signature 0 returns an empty (non-blocking) flight.
  Flight enter(std::uint64_t sig);

  /// Flights that found their gate held (a direct count of coalesced
  /// campaigns).
  std::uint64_t coalesced() const;

 private:
  const bool enabled_;
  std::shared_ptr<RunCache> run_cache_;  ///< null when disabled
  mutable std::mutex mu_;                ///< guards gates_ and coalesced_
  std::map<std::uint64_t, std::shared_ptr<std::mutex>> gates_;
  std::uint64_t coalesced_ = 0;
};

}  // namespace scaltool::serve
