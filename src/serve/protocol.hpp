// Wire protocol of the analysis service (DESIGN.md §10).
//
// Transport-agnostic newline-delimited JSON: one request object per line
// in, one response object per line out. A request names a CLI subcommand
// (`op`) plus its argument tokens, so "the equivalent one-shot CLI run"
// is well-defined — the service's `output` field carries exactly the
// bytes `scaltool <op> <args...>` would have printed.
//
//   request  = {"id": <null|number|string>, "op": "analyze"|"whatif"|
//               "collect"|"stats"|"health"|"metrics"|"ping",
//               "args": [<string>...], "deadline_ms": <number>,
//               "trace_id": "...", "parent_span": "..."}
//              (id/args/deadline/trace fields optional)
//   response = {"id": ..., "status": "ok"|"degraded"|"error"|"overloaded"|
//               "deadline_exceeded"|"shutting_down", "exit_code": N,
//               "cached": bool, "output": "...", "error"?: "...",
//               "stats"?: {...}}
//
// Parsing is strict — unknown fields, wrong types and malformed JSON are
// rejected with CheckError (the transport turns that into an `error`
// response) — because this is the one layer that reads untrusted input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace scaltool::serve {

/// Request status of a response envelope. Order is stable wire ABI.
enum class Status {
  kOk,                ///< executed, exit code 0
  kDegraded,          ///< executed, degraded result (CLI exit code 3)
  kError,             ///< hard failure; `error` carries the message
  kOverloaded,        ///< shed by admission control, never executed
  kDeadlineExceeded,  ///< deadline fired before or during execution
  kShuttingDown,      ///< submitted after drain began, never executed
};

/// Wire name of a status ("ok", "overloaded", ...).
const char* status_name(Status status);

struct Request {
  /// Echoed verbatim into the response; only null, number or string.
  obs::JsonValue id;
  std::string op;
  std::vector<std::string> args;
  /// Relative deadline in milliseconds from receipt; 0 = none.
  std::int64_t deadline_ms = 0;
  /// Distributed-tracing identity (DESIGN.md §13), minted at the fleet
  /// front door and carried into the shard so its spans tag the same
  /// request. Both optional; excluded from request_hash (the cached
  /// answer is identical whoever traced the asking).
  std::string trace_id;
  std::string parent_span;
};

struct Response {
  obs::JsonValue id;
  Status status = Status::kOk;
  /// The exit code the equivalent CLI run would return (0/1/3); requests
  /// that never executed carry the server-mode codes (4 unavailable,
  /// 5 deadline exceeded).
  int exit_code = 0;
  bool cached = false;  ///< served from the result cache
  std::string output;   ///< CLI-equivalent bytes
  std::string error;    ///< non-empty iff status == kError
  std::string stats_json;  ///< raw JSON object, set for "stats"/"health"/"metrics"
};

/// Parses one request line. CheckError on malformed JSON, unknown or
/// ill-typed fields, or an unknown op.
Request parse_request(const std::string& line);

/// Single-line JSON serializations (no interior newlines).
std::string serialize_request(const Request& request);
std::string serialize_response(const Response& response);

/// Parses a response line back (for clients and tests).
Response parse_response(const std::string& line);

/// Canonical result-cache key. 0 means uncacheable: ops with side effects
/// (collect) or no payload (stats/health/ping), engine/telemetry options whose
/// output depends on server state, or an archive target that does not
/// exist. An existing archive target is stamped with its size and content
/// hash, so rewriting the archive invalidates every cached answer for it.
std::uint64_t request_hash(const Request& request);

/// FNV-1a, the tree-wide idiom for content keys.
std::uint64_t fnv1a(std::uint64_t h, const std::string& s);
inline constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

}  // namespace scaltool::serve
