#include "serve/batcher.hpp"

#include "cli/args.hpp"
#include "serve/exec.hpp"

namespace scaltool::serve {

namespace {

/// Options that change which simulator runs a collection performs (or how
/// they are seeded). Everything else — --sharing, --chart, --l2x,
/// --robust-fit — only changes the analysis over the same matrix.
const char* kCollectionKeys[] = {"size", "max-procs", "iters",  "topology",
                                 "l2-size", "msi",    "tlb"};

/// Engine options make a request run its own campaign its own way; its
/// output depends on that campaign (stats lines), so it must not share.
bool engages_engine(const Args& args) {
  return args.get("jobs", "1") != "1" || !args.get("cache", "").empty() ||
         args.get("retries", "0") != "0" || args.has("keep-going") ||
         !args.get("faults", "").empty() ||
         args.get("run-timeout-ms", "0") != "0" || args.has("resume") ||
         !args.get("journal", "").empty();
}

}  // namespace

Batcher::Batcher(bool enabled, const std::string& run_cache_path)
    : enabled_(enabled),
      run_cache_(enabled ? std::make_shared<RunCache>(run_cache_path)
                         : nullptr) {}

std::uint64_t Batcher::signature(const Request& request) const {
  if (!enabled_) return 0;
  if (request.op != "analyze" && request.op != "whatif" &&
      request.op != "collect")
    return 0;
  // The command grammar puts the target at positional 1 (after the op).
  std::vector<std::string> tokens;
  tokens.reserve(request.args.size() + 1);
  tokens.push_back(request.op);
  tokens.insert(tokens.end(), request.args.begin(), request.args.end());
  Args args(tokens);
  const std::string target = args.positional(1, "");
  if (target.empty() || is_archive(target)) return 0;
  if (engages_engine(args)) return 0;
  std::uint64_t h = fnv1a(kFnvBasis, target);
  for (const char* key : kCollectionKeys) h = fnv1a(h, args.get(key, ""));
  return h == 0 ? 1 : h;
}

Batcher::Flight Batcher::enter(std::uint64_t sig) {
  if (sig == 0) return Flight{};
  std::shared_ptr<std::mutex> gate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gates_[sig];
    if (!slot) slot = std::make_shared<std::mutex>();
    gate = slot;
  }
  std::unique_lock<std::mutex> held(*gate, std::try_to_lock);
  if (!held.owns_lock()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++coalesced_;
    }
    held.lock();
  }
  // gates_ never erases entries, so the mutex the returned lock refers to
  // outlives every Flight (one small mutex per distinct signature).
  return Flight{std::move(held)};
}

std::uint64_t Batcher::coalesced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_;
}

}  // namespace scaltool::serve
