#include "serve/protocol.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace scaltool::serve {

namespace {

using obs::JsonValue;

const char* kOps[] = {"analyze", "whatif", "collect", "plan", "stats",
                      "ping", "health", "metrics"};

bool known_op(const std::string& op) {
  for (const char* candidate : kOps)
    if (op == candidate) return true;
  return false;
}

/// Serializes the restricted id domain (null / number / string).
std::string id_token(const JsonValue& id) {
  switch (id.kind()) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kNumber: return obs::json_number(id.as_number());
    case JsonValue::Kind::kString:
      return "\"" + obs::json_escape(id.as_string()) + "\"";
    default:
      ST_CHECK_MSG(false, "request id must be null, a number or a string");
  }
}

std::int64_t checked_int(const JsonValue& v, const char* field) {
  ST_CHECK_MSG(v.is_number(), "\"" << field << "\" must be a number");
  const double d = v.as_number();
  ST_CHECK_MSG(std::isfinite(d) && d >= 0 && d <= 9.0e15 &&
                   d == std::floor(d),
               "\"" << field << "\" must be a non-negative integer");
  return static_cast<std::int64_t>(d);
}

/// Options whose served output depends on server or filesystem state, so
/// caching the rendered bytes would be a lie.
bool uncacheable_option(const std::string& token) {
  static const char* kKeys[] = {
      "--jobs",    "--cache",      "--retries", "--backoff-ms",
      "--keep-going", "--faults",  "--trace-out", "--metrics-out",
      "--obs",     "--out",        "--journal", "--no-journal",
      "--resume",  "--run-timeout-ms",
  };
  for (const char* key : kKeys) {
    const std::string k(key);
    if (token == k || token.rfind(k + "=", 0) == 0) return true;
  }
  return false;
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kDegraded: return "degraded";
    case Status::kError: return "error";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "error";
}

namespace {

Status status_from_name(const std::string& name) {
  for (const Status s :
       {Status::kOk, Status::kDegraded, Status::kError, Status::kOverloaded,
        Status::kDeadlineExceeded, Status::kShuttingDown})
    if (name == status_name(s)) return s;
  ST_CHECK_MSG(false, "unknown response status \"" << name << "\"");
}

/// Re-serializes a parsed value (object keys come back sorted; the stats
/// payload is a flat counter object, so that is harmless).
void write_json(const JsonValue& v, std::ostream& os) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: os << "null"; return;
    case JsonValue::Kind::kBool: os << (v.as_bool() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber: os << obs::json_number(v.as_number());
      return;
    case JsonValue::Kind::kString:
      os << '"' << obs::json_escape(v.as_string()) << '"';
      return;
    case JsonValue::Kind::kArray: {
      os << '[';
      const JsonValue::Array& items = v.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) os << ',';
        write_json(items[i], os);
      }
      os << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) os << ',';
        first = false;
        os << '"' << obs::json_escape(key) << "\":";
        write_json(value, os);
      }
      os << '}';
      return;
    }
  }
}

}  // namespace

Request parse_request(const std::string& line) {
  const JsonValue doc = obs::json_parse(line);
  ST_CHECK_MSG(doc.is_object(), "request must be a JSON object");
  Request req;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "id") {
      ST_CHECK_MSG(value.is_null() || value.is_number() || value.is_string(),
                   "request id must be null, a number or a string");
      req.id = value;
    } else if (key == "op") {
      ST_CHECK_MSG(value.is_string(), "\"op\" must be a string");
      req.op = value.as_string();
    } else if (key == "args") {
      ST_CHECK_MSG(value.is_array(), "\"args\" must be an array of strings");
      for (const JsonValue& tok : value.as_array()) {
        ST_CHECK_MSG(tok.is_string(), "\"args\" must contain only strings");
        req.args.push_back(tok.as_string());
      }
    } else if (key == "deadline_ms") {
      req.deadline_ms = checked_int(value, "deadline_ms");
    } else if (key == "trace_id") {
      ST_CHECK_MSG(value.is_string(), "\"trace_id\" must be a string");
      req.trace_id = value.as_string();
    } else if (key == "parent_span") {
      ST_CHECK_MSG(value.is_string(), "\"parent_span\" must be a string");
      req.parent_span = value.as_string();
    } else {
      ST_CHECK_MSG(false, "unknown request field \"" << key << "\"");
    }
  }
  ST_CHECK_MSG(!req.op.empty(), "request is missing \"op\"");
  ST_CHECK_MSG(known_op(req.op), "unknown op \"" << req.op
                                                 << "\" (use analyze, "
                                                    "whatif, collect, stats, "
                                                    "health, metrics or "
                                                    "ping)");
  return req;
}

std::string serialize_request(const Request& request) {
  std::ostringstream os;
  os << "{\"id\":" << id_token(request.id) << ",\"op\":\""
     << obs::json_escape(request.op) << "\",\"args\":[";
  for (std::size_t i = 0; i < request.args.size(); ++i) {
    if (i) os << ',';
    os << '"' << obs::json_escape(request.args[i]) << '"';
  }
  os << ']';
  if (request.deadline_ms > 0)
    os << ",\"deadline_ms\":" << request.deadline_ms;
  if (!request.trace_id.empty())
    os << ",\"trace_id\":\"" << obs::json_escape(request.trace_id) << '"';
  if (!request.parent_span.empty())
    os << ",\"parent_span\":\"" << obs::json_escape(request.parent_span)
       << '"';
  os << '}';
  return os.str();
}

std::string serialize_response(const Response& response) {
  std::ostringstream os;
  os << "{\"id\":" << id_token(response.id) << ",\"status\":\""
     << status_name(response.status)
     << "\",\"exit_code\":" << response.exit_code
     << ",\"cached\":" << (response.cached ? "true" : "false")
     << ",\"output\":\"" << obs::json_escape(response.output) << '"';
  if (!response.error.empty())
    os << ",\"error\":\"" << obs::json_escape(response.error) << '"';
  if (!response.stats_json.empty()) os << ",\"stats\":" << response.stats_json;
  os << '}';
  return os.str();
}

Response parse_response(const std::string& line) {
  const JsonValue doc = obs::json_parse(line);
  ST_CHECK_MSG(doc.is_object(), "response must be a JSON object");
  Response r;
  r.id = doc.at("id");
  r.status = status_from_name(doc.at("status").as_string());
  r.exit_code = static_cast<int>(doc.at("exit_code").as_number());
  r.cached = doc.at("cached").as_bool();
  r.output = doc.at("output").as_string();
  if (doc.has("error")) r.error = doc.at("error").as_string();
  if (doc.has("stats")) {
    std::ostringstream os;
    write_json(doc.at("stats"), os);
    r.stats_json = os.str();
  }
  return r;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h ^= 0xFFu;  // field separator, so ("ab","c") != ("a","bc")
  h *= 1099511628211ULL;
  return h;
}

std::uint64_t request_hash(const Request& request) {
  if (request.op != "analyze" && request.op != "whatif") return 0;
  std::uint64_t h = fnv1a(kFnvBasis, request.op);
  std::string target;
  for (const std::string& tok : request.args) {
    if (uncacheable_option(tok)) return 0;
    if (target.empty() && tok.rfind("--", 0) != 0) target = tok;
    h = fnv1a(h, tok);
  }
  // An archive target is stamped with its content so a rewritten archive
  // invalidates every cached answer derived from it (DESIGN.md §10).
  if (!target.empty()) {
    std::ifstream is(target, std::ios::binary);
    if (is.good()) {
      std::ostringstream buffer;
      buffer << is.rdbuf();
      const std::string bytes = buffer.str();
      h = fnv1a(h, std::to_string(bytes.size()));
      h = fnv1a(h, bytes);
    }
  }
  return h == 0 ? 1 : h;  // 0 is the "uncacheable" sentinel
}

}  // namespace scaltool::serve
