// Transports of the analysis service: NDJSON over any iostream pair and
// over an AF_UNIX stream socket.
//
// serve_lines() is the whole protocol loop — the socket server is nothing
// but serve_lines() over a socket-backed stream per connection, and the
// stdio mode is serve_lines(std::cin, std::cout). Requests are submitted
// as they are read (so a pipelining client gets the full benefit of the
// worker pool and the batcher) while responses are written strictly in
// request order by a dedicated writer, which keeps the output stream a
// valid NDJSON sequence without interleaving.
//
// Both are generic over a Submit sink, so the same loop fronts a local
// AnalysisService (one process, PR 4) and the fleet router (many worker
// processes, DESIGN.md §12) without either knowing the difference.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <streambuf>
#include <string>

#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace scaltool::serve {

/// A request sink: accepts one request, promises one response. The
/// analysis service's submit() and the fleet router's route() both fit.
using Submit = std::function<std::future<Response>(Request)>;

/// Minimal bidirectional streambuf over a connected socket. Writes use
/// send(MSG_NOSIGNAL) so a client hanging up mid-response surfaces as a
/// stream error, not a fatal SIGPIPE. Reads and writes retry on EINTR and
/// writes finish short sends, so a signal (SIGALRM, the interrupt
/// handlers, a supervisor's health probe racing a SIGTERM) never corrupts
/// or truncates a protocol line — the EINTR drill in the serve tests pins
/// this. Exposed here (not an implementation detail) exactly so that
/// drill can aim signals at a pinned-down buffer.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  bool flush_buffer();

  int fd_;
  std::array<char, 4096> in_;
  std::array<char, 4096> out_;
};

/// Reads newline-delimited requests from `in` until EOF, writes one
/// response line per request to `out` in request order. A malformed line
/// produces an `error` response (null id) instead of tearing the
/// connection down.
void serve_lines(std::istream& in, std::ostream& out, const Submit& submit);
void serve_lines(std::istream& in, std::ostream& out,
                 AnalysisService& service);

/// AF_UNIX stream-socket front end: one connection = one serve_lines()
/// loop on its own thread. Construction binds and starts accepting;
/// stop() (idempotent, also run by the destructor) shuts the listener
/// and every open connection down and joins the threads. Draining the
/// sink behind `submit` is the caller's business (AnalysisService::
/// shutdown, Fleet::stop).
class SocketServer {
 public:
  SocketServer(Submit submit, std::string socket_path);
  SocketServer(AnalysisService& service, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  const std::string& path() const { return path_; }

  void stop();

 private:
  void accept_loop();

  Submit submit_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;  ///< guards conn_fds_, conn_threads_, stopping_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  bool stopping_ = false;
};

/// One round trip over a server socket: connect, send `request`, read one
/// response line. CheckError when the server is unreachable, hangs up
/// without answering, or (timeout_ms > 0) takes longer than `timeout_ms`
/// to accept the request bytes or produce the response — the supervisor's
/// wedged-worker detector.
Response socket_call(const std::string& socket_path, const Request& request,
                     int timeout_ms = 0);

/// Self-healing client policy: how often and how patiently to re-dial.
struct RetryPolicy {
  /// Re-dials after the first failed attempt (0 = plain socket_call).
  int retries = 0;
  /// Base backoff; attempt k waits ~ backoff_ms << k, with deterministic
  /// jitter (derived from `seed` and k) to de-synchronize client herds.
  int backoff_ms = 50;
  std::uint64_t seed = 0;
};

/// socket_call with connect/hang-up retries under `policy`. Safe because a
/// request either carries an idempotent payload (analyze/whatif/stats/
/// health/ping) or an id the server can deduplicate on; the caller decides
/// how many re-dials the operation tolerates. Throws the final attempt's
/// CheckError once the policy is exhausted.
Response socket_call_resilient(const std::string& socket_path,
                               const Request& request,
                               const RetryPolicy& policy);

}  // namespace scaltool::serve
