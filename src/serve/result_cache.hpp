// LRU result cache: rendered responses keyed by canonical request hash.
//
// Layered *above* the persistent run cache: the run cache memoizes
// simulator runs (the expensive substrate shared by many different
// requests), this cache memoizes the final rendered bytes of one exact
// request. Every entry is deterministic — request_hash() refuses anything
// whose output could depend on server state — so a hit is byte-identical
// to a fresh execution by construction. Capacity 0 disables the cache.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "serve/protocol.hpp"

namespace scaltool::serve {

/// The cached portion of a response: everything except the per-request
/// envelope fields (id, cached) that must never be replayed.
struct CachedResult {
  Status status = Status::kOk;
  int exit_code = 0;
  std::string output;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity);

  /// Lookup; a hit is promoted to most-recently-used.
  std::optional<CachedResult> find(std::uint64_t key);

  /// Inserts or refreshes; evicts the least-recently-used entry beyond
  /// capacity. Key 0 (uncacheable) is ignored.
  void insert(std::uint64_t key, CachedResult result);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  using Entry = std::pair<std::uint64_t, CachedResult>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace scaltool::serve
