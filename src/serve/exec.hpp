// Shared command cores for collect/analyze/whatif.
//
// The CLI and the analysis service must produce byte-identical output for
// the same command, so both call these functions: cli.cpp's subcommands
// are thin wrappers, and the service threads its serving machinery — the
// shared run cache that implements batching, the deadline predicate, the
// serve-level fault drill — through ExecHooks without touching a single
// output byte. Hooks engage the campaign engine *quietly*: the engine's
// results are bit-identical to the serial runner (test_engine), and none
// of its stats lines are printed unless the command line itself asked for
// the engine (--jobs/--cache/--retries/--keep-going/--faults).
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "cli/args.hpp"
#include "common/exit_codes.hpp"
#include "engine/fault_injector.hpp"
#include "engine/run_cache.hpp"
#include "machine/machine_config.hpp"
#include "runner/runner.hpp"

namespace scaltool::serve {

/// Exit code of `collect --adaptive` when --max-runs was exhausted before
/// the what-if probe answers stabilized within --tolerance. The archive
/// is still published (core complete, honestly annotated) and the journal
/// is kept. Value lives in the exit-code table; alias keeps the serve
/// namespace spelling.
using scaltool::kExitToleranceUnreachable;

/// What the analysis service injects under a command's execution.
struct ExecHooks {
  /// Shared run cache: identical sweep points across requests are
  /// simulated once. Null leaves each command to its own devices.
  std::shared_ptr<RunCache> shared_cache;
  /// Deadline predicate handed to CampaignOptions::cancelled.
  std::function<bool()> cancelled;
  /// Serve-level fault drill applied to served campaigns (ignored when
  /// the request's own args engage the engine with their own plan).
  FaultPlan faults;
  /// Retries for service-driven campaigns (same semantics as --retries).
  int retries = 0;
  /// Worker threads for service-driven campaigns.
  int jobs = 1;
  /// True inside the service: global telemetry options in the request
  /// (--trace-out/--metrics-out/--obs) are parsed but not engaged, since
  /// process-wide telemetry belongs to the operator, not to wire clients.
  bool service = false;

  /// Whether the hooks force the (quiet) engine path.
  bool engaged() const {
    return shared_cache != nullptr || static_cast<bool>(cancelled) ||
           faults.enabled() || retries > 0 || jobs > 1;
  }
};

/// Machine/runner construction from the common CLI options
/// (--topology/--l2-size/--msi/--tlb, --iters).
MachineConfig machine_from(const Args& args);
ExperimentRunner runner_from(const Args& args);

/// True when `target` names a readable scaltool input archive.
bool is_archive(const std::string& target);

/// Prints one warning line per provided-but-never-queried option.
void warn_unused(const Args& args, std::ostream& os);

/// The collect/analyze/whatif command cores. Identical to the historical
/// cli.cpp implementations; return the process exit code (0 ok, 3
/// degraded) and throw CheckError on hard failure, CampaignCancelled when
/// hooks.cancelled fired mid-campaign — which includes SIGINT/SIGTERM once
/// install_interrupt_handlers() has run (the CLI maps that to exit code 6).
/// collect journals completed runs next to the archive (DESIGN.md §11) and
/// publishes the archive in two phases; `--resume` replays that journal.
int exec_collect(const Args& args, std::ostream& os,
                 const ExecHooks& hooks = {});
int exec_analyze(const Args& args, std::ostream& os,
                 const ExecHooks& hooks = {});
int exec_whatif(const Args& args, std::ostream& os,
                const ExecHooks& hooks = {});

/// `scaltool plan <app>`: prints the adaptive campaign schedule (grid
/// partition, core, candidate pool, stopping rule) without simulating
/// anything. Serves the `plan` op on the wire too.
int exec_plan(const Args& args, std::ostream& os, const ExecHooks& hooks = {});

}  // namespace scaltool::serve
