#include "serve/result_cache.hpp"

#include <algorithm>

namespace scaltool::serve {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<CachedResult> ResultCache::find(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find_if(lru_.begin(), lru_.end(),
                               [key](const Entry& e) { return e.first == key; });
  if (key == 0 || it == lru_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it);  // promote to MRU
  ++hits_;
  return lru_.front().second;
}

void ResultCache::insert(std::uint64_t key, CachedResult result) {
  if (key == 0 || capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find_if(lru_.begin(), lru_.end(),
                               [key](const Entry& e) { return e.first == key; });
  if (it != lru_.end()) lru_.erase(it);
  lru_.emplace_front(key, std::move(result));
  while (lru_.size() > capacity_) lru_.pop_back();
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace scaltool::serve
