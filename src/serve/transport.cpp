#include "serve/transport.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <istream>
#include <ostream>
#include <utility>

#include "common/check.hpp"
#include "obs/telemetry.hpp"

namespace scaltool::serve {

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_.data(), in_.data(), in_.data());
  setp(out_.data(), out_.data() + out_.size());
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t n;
  do {
    n = ::recv(fd_, in_.data(), in_.size(), 0);
  } while (n < 0 && errno == EINTR);  // a signal is not end-of-stream
  if (n <= 0) return traits_type::eof();
  setg(in_.data(), in_.data(), in_.data() + n);
  return traits_type::to_int_type(*gptr());
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_buffer()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_buffer() ? 0 : -1; }

bool FdStreamBuf::flush_buffer() {
  // Short writes loop until every byte is out; EINTR retries the same
  // span. Either way a protocol line reaches the peer whole or the write
  // fails for real — never a silent truncation mid-line.
  const char* p = pbase();
  while (p < pptr()) {
    const ssize_t n = ::send(fd_, p, static_cast<std::size_t>(pptr() - p),
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
  }
  setp(out_.data(), out_.data() + out_.size());
  return true;
}

namespace {

sockaddr_un socket_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ST_CHECK_MSG(path.size() < sizeof(addr.sun_path),
               "socket path too long: " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Response error_response(const std::string& message) {
  Response r;
  r.status = Status::kError;
  r.exit_code = 1;
  r.error = message;
  return r;
}

std::future<Response> ready(Response r) {
  std::promise<Response> promise;
  promise.set_value(std::move(r));
  return promise.get_future();
}

}  // namespace

void serve_lines(std::istream& in, std::ostream& out, const Submit& submit) {
  std::mutex mu;
  std::condition_variable pending_ready;
  std::deque<std::future<Response>> pending;
  bool reader_done = false;

  // The reader (this thread) submits as fast as lines arrive; the writer
  // resolves futures strictly in arrival order, so responses come back in
  // request order no matter how the workers finish.
  std::thread writer([&] {
    for (;;) {
      std::future<Response> next;
      {
        std::unique_lock<std::mutex> lock(mu);
        pending_ready.wait(lock,
                           [&] { return !pending.empty() || reader_done; });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      out << serialize_response(next.get()) << '\n';
      out.flush();
      if (!out.good()) return;  // client hung up; drop the rest
    }
  });

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines are keep-alive noise
    std::future<Response> future;
    try {
      future = submit(parse_request(line));
    } catch (const std::exception& e) {
      future = ready(error_response(e.what()));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(std::move(future));
    }
    pending_ready.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    reader_done = true;
  }
  pending_ready.notify_one();
  writer.join();
}

void serve_lines(std::istream& in, std::ostream& out,
                 AnalysisService& service) {
  serve_lines(in, out, [&service](Request request) {
    return service.submit(std::move(request));
  });
}

SocketServer::SocketServer(Submit submit, std::string socket_path)
    : submit_(std::move(submit)), path_(std::move(socket_path)) {
  ST_CHECK_MSG(!path_.empty(), "--socket needs a path");
  ST_CHECK_MSG(static_cast<bool>(submit_), "the socket server needs a sink");
  const sockaddr_un addr = socket_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ST_CHECK_MSG(listen_fd_ >= 0, "cannot create a unix socket");
  ::unlink(path_.c_str());  // a stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ST_CHECK_MSG(false, "cannot listen on " << path_ << ": " << err);
  }
  obs::instant("serve.listen", "serve");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::SocketServer(AnalysisService& service, std::string socket_path)
    : SocketServer(
          [&service](Request request) {
            return service.submit(std::move(request));
          },
          std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  for (;;) {
    int fd;
    do {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return;  // listener shut down (or hard error): stop
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] {
        FdStreamBuf buf(fd);
        std::istream in(&buf);
        std::ostream out(&buf);
        serve_lines(in, out, submit_);
        ::close(fd);
      });
    }
  }
}

void SocketServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fds.swap(conn_fds_);
    threads.swap(conn_threads_);
  }
  // Unblock every connection's getline; the threads close their own fds.
  for (const int fd : fds) ::shutdown(fd, SHUT_RD);
  for (std::thread& t : threads) t.join();
  ::unlink(path_.c_str());
}

namespace {

/// splitmix64 finalizer, the tree-wide cheap mixer (see derive_seed).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Response socket_call_resilient(const std::string& socket_path,
                               const Request& request,
                               const RetryPolicy& policy) {
  for (int attempt = 0;; ++attempt) {
    try {
      return socket_call(socket_path, request);
    } catch (const CheckError&) {
      if (attempt >= policy.retries) throw;
    }
    // Full jitter over an exponentially growing window: deterministic per
    // (seed, attempt) so tests can pin it, decorrelated across clients.
    const std::uint64_t window =
        static_cast<std::uint64_t>(policy.backoff_ms > 0 ? policy.backoff_ms
                                                         : 1)
        << std::min(attempt, 10);
    const std::uint64_t wait_ms =
        1 + mix64(policy.seed + static_cast<std::uint64_t>(attempt)) % window;
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
}

Response socket_call(const std::string& socket_path, const Request& request,
                     int timeout_ms) {
  const sockaddr_un addr = socket_address(socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ST_CHECK_MSG(fd >= 0, "cannot create a unix socket");
  if (timeout_ms > 0) {
    // Kernel-enforced per-syscall budget: recv/send return EAGAIN when it
    // expires, which the stream layer reports as end-of-stream and this
    // function turns into the no-answer CheckError below. A wedged server
    // (accepting but never responding) therefore cannot wedge its caller.
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ST_CHECK_MSG(false, "cannot connect to " << socket_path << ": " << err
                                             << " (is the server running?)");
  }
  std::string reply;
  {
    FdStreamBuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    out << serialize_request(request) << '\n';
    out.flush();
    const bool sent = out.good();
    if (sent) std::getline(in, reply);
  }
  ::close(fd);
  ST_CHECK_MSG(!reply.empty(),
               "server at " << socket_path << " hung up without answering");
  return parse_response(reply);
}

}  // namespace scaltool::serve
