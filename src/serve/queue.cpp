#include "serve/queue.hpp"

#include "common/check.hpp"

namespace scaltool::serve {

RequestQueue::RequestQueue(std::size_t max_depth) : max_depth_(max_depth) {
  ST_CHECK_MSG(max_depth_ >= 1, "the request queue needs a depth of >= 1");
}

bool RequestQueue::push(QueuedRequest&& item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= max_depth_) return false;
    items_.push_back(std::move(item));
  }
  ready_.notify_one();
  return true;
}

std::optional<QueuedRequest> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  QueuedRequest item = std::move(items_.front());
  items_.pop_front();
  return item;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace scaltool::serve
