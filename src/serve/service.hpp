// The analysis service: a long-running, batched request server over the
// Scal-Tool engine (DESIGN.md §10).
//
// Serving pipeline per request:
//
//   submit() ── admission (bounded queue; full ⇒ `overloaded`, closed ⇒
//   `shutting_down`) ── worker pops ── deadline pre-check ── result-cache
//   lookup ── batcher single-flight ── exec_* with the shared run cache
//   and the deadline-as-cancellation hook ── result-cache fill ── promise.
//
// Responses always resolve: every accepted request's future is fulfilled
// exactly once, including through shutdown() — drain means "stop
// admitting, finish everything seated", which is what the drain test
// pins. Output bytes are produced by the same command cores as the CLI
// (serve/exec.hpp), so a served `analyze`/`whatif` answer is byte-
// identical to the equivalent one-shot run.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/fault_injector.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/result_cache.hpp"

namespace scaltool::serve {

struct ServiceOptions {
  /// Worker threads executing requests (campaigns may nest engine_jobs
  /// more inside the campaign engine).
  int workers = 2;
  /// Worker threads per service-driven campaign (CampaignOptions::jobs).
  int engine_jobs = 1;
  /// Admission bound: requests beyond this depth are shed.
  std::size_t max_queue = 64;
  /// Result-cache capacity in entries; 0 disables it.
  std::size_t result_cache_entries = 256;
  /// Batching (shared run cache + single-flight); off isolates requests.
  bool batching = true;
  /// Optional on-disk persistence for the shared run cache.
  std::string run_cache_path;
  /// Fault drill applied to every service-driven campaign (--faults on
  /// `scaltool serve`); a failing campaign yields an `error` response.
  FaultPlan faults;
  /// Retries for service-driven campaigns.
  int retries = 0;
};

/// Monotonic service counters (exported by the `stats` op and folded into
/// the obs registry under serve.* when telemetry is enabled).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;            ///< rejected by admission control
  std::uint64_t rejected_closed = 0; ///< submitted after drain began
  std::uint64_t completed = 0;       ///< ok + degraded
  std::uint64_t errors = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t result_cache_hits = 0;
  std::uint64_t result_cache_misses = 0;
  std::uint64_t coalesced_campaigns = 0;
  std::uint64_t simulator_runs = 0;    ///< shared-cache inserts = real runs
  std::uint64_t cache_served_runs = 0; ///< shared-cache hits = replays
  std::size_t queue_depth = 0;        ///< snapshot, not monotonic

  /// One-line JSON object (stable key order) for the `stats` op.
  std::string to_json() const;
};

class AnalysisService {
 public:
  explicit AnalysisService(ServiceOptions options = {});
  ~AnalysisService();  ///< graceful drain

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Thread-safe. The returned future always resolves; shed and
  /// post-shutdown submissions resolve immediately.
  std::future<Response> submit(Request request);

  /// submit() + get(): the one-shot client path.
  Response call(Request request);

  /// Stops admission, drains every accepted request, joins the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  /// Liveness payload for the `health` op: uptime, queue depth and
  /// capacity, requests mid-execution, worker count, and journal lag (how
  /// many shared-cache runs exist only in memory — what a crash right now
  /// would have to re-simulate).
  std::string health_json() const;

 private:
  Response process(QueuedRequest item);
  Response execute(const Request& request,
                   MonoClock::TimePoint deadline);
  void worker_loop();
  void publish_obs() const;

  ServiceOptions options_;
  RequestQueue queue_;
  Batcher batcher_;
  ResultCache results_;
  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
  const MonoClock::TimePoint start_ = MonoClock::now();
  std::atomic<int> in_flight_{0};  ///< requests currently in process()
};

}  // namespace scaltool::serve
