#include "serve/service.hpp"

#include <unistd.h>

#include <sstream>
#include <utility>

#include "cli/args.hpp"
#include "common/check.hpp"
#include "common/exit_codes.hpp"
#include "common/interrupt.hpp"
#include "engine/campaign.hpp"
#include "io/env.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "serve/exec.hpp"

namespace scaltool::serve {

namespace {

Response immediate(const obs::JsonValue& id, Status status) {
  Response r;
  r.id = id;
  r.status = status;
  r.exit_code = status == Status::kDeadlineExceeded ? kExitDeadlineExceeded
                                                    : kExitUnavailable;
  return r;
}

std::future<Response> ready(Response r) {
  std::promise<Response> promise;
  promise.set_value(std::move(r));
  return promise.get_future();
}

/// The fixed-width tag a request leaves in the flight recorder — enough
/// to name the victims in a post-mortem ("id=7 op=collect").
std::string request_tag(const Request& req) {
  std::string id;
  switch (req.id.kind()) {
    case obs::JsonValue::Kind::kNumber:
      id = obs::json_number(req.id.as_number());
      break;
    case obs::JsonValue::Kind::kString:
      id = req.id.as_string();
      break;
    default:
      id = "null";
  }
  return "id=" + id + " op=" + req.op;
}

/// Brackets a request's execution with "req" begin/end markers in the
/// flight recorder, so salvage can tell which requests were in flight
/// when the process died.
class FdrRequestGuard {
 public:
  explicit FdrRequestGuard(const Request& req) {
    if (obs::installed_flight_recorder() == nullptr) return;
    tag_ = request_tag(req);
    obs::flight_record('B', "req", "serve", tag_);
  }
  ~FdrRequestGuard() {
    if (!tag_.empty()) obs::flight_record('E', "req", "serve", tag_);
  }

  FdrRequestGuard(const FdrRequestGuard&) = delete;
  FdrRequestGuard& operator=(const FdrRequestGuard&) = delete;

 private:
  std::string tag_;
};

}  // namespace

std::string ServiceStats::to_json() const {
  std::ostringstream os;
  os << "{\"accepted\":" << accepted << ",\"shed\":" << shed
     << ",\"rejected_closed\":" << rejected_closed
     << ",\"completed\":" << completed << ",\"errors\":" << errors
     << ",\"deadline_missed\":" << deadline_missed
     << ",\"result_cache_hits\":" << result_cache_hits
     << ",\"result_cache_misses\":" << result_cache_misses
     << ",\"coalesced_campaigns\":" << coalesced_campaigns
     << ",\"simulator_runs\":" << simulator_runs
     << ",\"cache_served_runs\":" << cache_served_runs
     << ",\"queue_depth\":" << queue_depth << "}";
  return os.str();
}

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(std::move(options)),
      queue_(options_.max_queue),
      batcher_(options_.batching, options_.run_cache_path),
      results_(options_.result_cache_entries) {
  ST_CHECK_MSG(options_.workers >= 1, "the service needs >= 1 worker");
  ST_CHECK_MSG(options_.engine_jobs >= 1, "--jobs must be at least 1");
  ST_CHECK_MSG(options_.retries >= 0, "--retries must be >= 0");
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

AnalysisService::~AnalysisService() { shutdown(); }

std::future<Response> AnalysisService::submit(Request request) {
  obs::MetricRegistry::instance().counter("serve.requests").add();
  if (queue_.closed()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected_closed;
    return ready(immediate(request.id, Status::kShuttingDown));
  }
  QueuedRequest item;
  item.enqueued = MonoClock::now();
  item.deadline = request.deadline_ms > 0
                      ? item.enqueued +
                            std::chrono::milliseconds(request.deadline_ms)
                      : MonoClock::TimePoint::max();
  item.request = std::move(request);
  std::future<Response> future = item.promise.get_future();
  const obs::JsonValue id = item.request.id;
  if (!queue_.push(std::move(item))) {
    const bool closed = queue_.closed();
    obs::MetricRegistry::instance().counter("serve.shed").add();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (closed)
        ++stats_.rejected_closed;
      else
        ++stats_.shed;
    }
    return ready(immediate(id, closed ? Status::kShuttingDown
                                      : Status::kOverloaded));
  }
  obs::MetricRegistry::instance()
      .gauge("serve.queue_depth")
      .set(static_cast<double>(queue_.depth()));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.accepted;
  return future;
}

Response AnalysisService::call(Request request) {
  return submit(std::move(request)).get();
}

void AnalysisService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.close();
    for (std::thread& worker : workers_) worker.join();
    if (const std::shared_ptr<RunCache>& cache = batcher_.run_cache();
        cache && !cache->path().empty())
      cache->save();  // persist the shared runs across server restarts
    publish_obs();
  });
}

ServiceStats AnalysisService::stats() const {
  ServiceStats snap;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snap = stats_;
  }
  snap.coalesced_campaigns = batcher_.coalesced();
  snap.result_cache_hits = results_.hits();
  snap.result_cache_misses = results_.misses();
  if (const std::shared_ptr<RunCache>& cache = batcher_.run_cache()) {
    snap.simulator_runs = cache->inserts();
    snap.cache_served_runs = cache->find_hits();
  }
  snap.queue_depth = queue_.depth();
  return snap;
}

std::string AnalysisService::health_json() const {
  std::uint64_t journal_lag = 0;
  if (const std::shared_ptr<RunCache>& cache = batcher_.run_cache())
    journal_lag = cache->unsaved();
  std::ostringstream os;
  os << "{\"status\":\"" << (queue_.closed() ? "draining" : "ok")
     << "\",\"pid\":" << ::getpid()
     << ",\"uptime_seconds\":" << obs::json_number(
            MonoClock::seconds_since(start_))
     << ",\"workers\":" << options_.workers
     << ",\"queue_depth\":" << queue_.depth()
     << ",\"queue_capacity\":" << options_.max_queue
     << ",\"in_flight\":" << in_flight_.load()
     << ",\"journal_lag\":" << journal_lag << "}";
  return os.str();
}

void AnalysisService::publish_obs() const {
  const ServiceStats snap = stats();
  obs::MetricRegistry& reg = obs::MetricRegistry::instance();
  reg.counter("serve.accepted").set(snap.accepted);
  reg.counter("serve.completed").set(snap.completed);
  reg.counter("serve.errors").set(snap.errors);
  reg.counter("serve.deadline_missed").set(snap.deadline_missed);
  reg.counter("serve.result_cache_hits").set(snap.result_cache_hits);
  reg.counter("serve.coalesced_campaigns").set(snap.coalesced_campaigns);
  reg.counter("serve.simulator_runs").set(snap.simulator_runs);
}

void AnalysisService::worker_loop() {
  while (std::optional<QueuedRequest> item = queue_.pop()) {
    obs::MetricRegistry::instance()
        .gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.depth()));
    std::promise<Response> promise = std::move(item->promise);
    ++in_flight_;
    Response response = process(std::move(*item));
    --in_flight_;
    promise.set_value(std::move(response));
  }
}

Response AnalysisService::process(QueuedRequest item) {
  const Request& req = item.request;
  // Install the request's trace identity for the whole execution: every
  // span recorded on this thread (and, via ThreadPool propagation, on
  // engine workers) tags itself with the trace_id. Untraced requests get
  // a locally minted id so the trace is still followable — but only when
  // some telemetry is on, keeping the fully-disabled path allocation-free.
  obs::TraceContext ctx;
  if (!req.trace_id.empty()) {
    ctx.trace_id = req.trace_id;
    ctx.parent_span = req.parent_span;
  } else if (obs::enabled() ||
             obs::installed_flight_recorder() != nullptr) {
    ctx.trace_id = obs::mint_trace_id("local");
  }
  obs::TraceScope trace_scope(std::move(ctx));
  FdrRequestGuard fdr_guard(req);
  obs::Span span("request", "serve");
  span.arg("op", req.op);
  obs::MetricRegistry::instance()
      .histogram("serve.queue_seconds")
      .observe(MonoClock::seconds_since(item.enqueued));
  Response r;
  r.id = req.id;

  if (req.op == "ping") {
    r.output = "pong\n";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
    return r;
  }
  if (req.op == "stats") {
    r.stats_json = stats().to_json();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
    return r;
  }
  if (req.op == "health") {
    r.stats_json = health_json();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
    return r;
  }
  if (req.op == "metrics") {
    // Fold the service tallies into the registry, then hand out the full
    // snapshot. Compact: the document rides inside one NDJSON line.
    publish_obs();
    r.stats_json = obs::metrics_json(
        obs::MetricRegistry::instance().snapshot(), /*compact=*/true);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
    return r;
  }

  if (item.expired()) {
    span.arg("outcome", "deadline");
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.deadline_missed;
    return immediate(req.id, Status::kDeadlineExceeded);
  }

  const std::uint64_t key = request_hash(req);
  if (std::optional<CachedResult> hit = results_.find(key)) {
    span.arg("outcome", "cached");
    r.status = hit->status;
    r.exit_code = hit->exit_code;
    r.output = std::move(hit->output);
    r.cached = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
    return r;
  }

  // Single-flight: while another worker runs the same collection, block
  // here; by the time the gate opens the shared run cache is warm.
  const std::uint64_t sig = batcher_.signature(req);
  const Batcher::Flight flight = batcher_.enter(sig);
  if (item.expired()) {
    span.arg("outcome", "deadline");
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.deadline_missed;
    return immediate(req.id, Status::kDeadlineExceeded);
  }
  if (std::optional<CachedResult> hit = results_.find(key)) {
    span.arg("outcome", "cached");
    r.status = hit->status;
    r.exit_code = hit->exit_code;
    r.output = std::move(hit->output);
    r.cached = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
    return r;
  }

  Response executed = execute(req, item.deadline);
  if ((executed.status == Status::kOk ||
       executed.status == Status::kDegraded)) {
    results_.insert(key, CachedResult{executed.status, executed.exit_code,
                                      executed.output});
  }
  span.arg("outcome", status_name(executed.status));
  return executed;
}

Response AnalysisService::execute(const Request& req,
                                  MonoClock::TimePoint deadline) {
  Response r;
  r.id = req.id;

  std::vector<std::string> tokens;
  tokens.reserve(req.args.size() + 1);
  tokens.push_back(req.op);
  tokens.insert(tokens.end(), req.args.begin(), req.args.end());

  ExecHooks hooks;
  hooks.service = true;
  hooks.shared_cache = batcher_.run_cache();
  hooks.jobs = options_.engine_jobs;
  hooks.faults = options_.faults;
  hooks.retries = options_.retries;
  if (deadline != MonoClock::TimePoint::max())
    hooks.cancelled = [deadline] { return MonoClock::now() > deadline; };

  std::ostringstream os;
  const Stopwatch timer;
  try {
    const Args args(tokens);
    int rc = 1;
    if (req.op == "analyze") {
      rc = exec_analyze(args, os, hooks);
    } else if (req.op == "whatif") {
      rc = exec_whatif(args, os, hooks);
    } else if (req.op == "plan") {
      rc = exec_plan(args, os, hooks);
    } else {
      rc = exec_collect(args, os, hooks);
    }
    r.status = rc == 0 ? Status::kOk : Status::kDegraded;
    r.exit_code = rc;
    r.output = os.str();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
  } catch (const CampaignCancelled&) {
    // A campaign stops either because its deadline fired or because the
    // operator interrupted the server; the latter is a shutdown, not a
    // client timeout. Completed runs are checkpointed either way.
    const bool interrupted = interrupt_requested();
    r = immediate(req.id, interrupted ? Status::kShuttingDown
                                      : Status::kDeadlineExceeded);
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (interrupted)
      ++stats_.errors;
    else
      ++stats_.deadline_missed;
  } catch (const io::StorageError& e) {
    // The disk under this shard refused a durability write. The campaign
    // checkpointed to its journal; the dedicated exit code tells the
    // client (and the fleet supervisor, via the worker's exit status)
    // that a resume after freeing space loses nothing.
    r.status = Status::kError;
    r.exit_code = kExitStorageFault;
    r.output = os.str();
    r.error = e.what();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
  } catch (const std::exception& e) {
    r.status = Status::kError;
    r.exit_code = 1;
    r.output = os.str();
    r.error = e.what();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
  }
  obs::MetricRegistry::instance()
      .histogram("serve.exec_seconds")
      .observe(timer.seconds());
  return r;
}

}  // namespace scaltool::serve
