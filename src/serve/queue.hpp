// Bounded admission queue of the analysis service.
//
// Admission control is the first of the service's two backpressure
// mechanisms (the second is the engine thread pool's bounded task queue):
// a request either gets a seat in a fixed-depth FIFO or is shed with an
// explicit `overloaded` response — queueing time is never allowed to grow
// without bound, which is what keeps p99 latency finite at overload
// (bench_serve_load measures exactly this).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <optional>

#include "common/monotime.hpp"
#include "serve/protocol.hpp"

namespace scaltool::serve {

/// One admitted request plus its bookkeeping.
struct QueuedRequest {
  Request request;
  MonoClock::TimePoint enqueued;
  MonoClock::TimePoint deadline;  ///< TimePoint::max() when none
  std::promise<Response> promise;

  bool expired() const { return MonoClock::now() > deadline; }
};

class RequestQueue {
 public:
  /// `max_depth` >= 1 is the admission bound.
  explicit RequestQueue(std::size_t max_depth);

  /// Seats the request. Returns false — without blocking — when the queue
  /// is full or closed; the caller sheds.
  bool push(QueuedRequest&& item);

  /// Blocks for the next request; nullopt once closed *and* drained,
  /// which is the workers' exit signal.
  std::optional<QueuedRequest> pop();

  /// Stops admission; queued requests still drain through pop().
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t max_depth() const { return max_depth_; }

 private:
  const std::size_t max_depth_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<QueuedRequest> items_;
  bool closed_ = false;
};

}  // namespace scaltool::serve
