#include "cache/cache.hpp"

#include <bit>

namespace scaltool {

const char* line_state_name(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kExclusive: return "E";
    case LineState::kModified: return "M";
  }
  return "?";
}

const char* replacement_policy_name(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru: return "lru";
    case ReplacementPolicy::kTreePlru: return "tree-plru";
    case ReplacementPolicy::kRandom: return "random";
  }
  return "?";
}

void CacheConfig::validate() const {
  ST_CHECK_MSG(line_bytes > 0 && std::has_single_bit(
                   static_cast<unsigned>(line_bytes)),
               "line size must be a positive power of two");
  ST_CHECK_MSG(associativity > 0, "associativity must be positive");
  ST_CHECK_MSG(size_bytes % (static_cast<std::size_t>(line_bytes) *
                             static_cast<std::size_t>(associativity)) == 0,
               "cache size must be a multiple of line size × associativity");
  ST_CHECK_MSG(std::has_single_bit(num_sets()),
               "number of sets must be a power of two, got " << num_sets());
  if (replacement == ReplacementPolicy::kTreePlru) {
    ST_CHECK_MSG(std::has_single_bit(static_cast<unsigned>(associativity)),
                 "tree-PLRU needs power-of-two associativity");
    ST_CHECK_MSG(associativity <= 32, "tree-PLRU supports up to 32 ways");
  }
}

Cache::Cache(const CacheConfig& config)
    : config_(config), rng_(config.random_seed) {
  config_.validate();
  line_bits_ = std::countr_zero(static_cast<unsigned>(config_.line_bytes));
  line_mask_ = static_cast<Addr>(config_.line_bytes) - 1;
  ways_.resize(config_.num_sets() * static_cast<std::size_t>(
                                        config_.associativity));
  if (config_.replacement == ReplacementPolicy::kTreePlru)
    plru_.assign(config_.num_sets(), 0);
}

Cache::Way* Cache::find(Addr line_addr) {
  const std::size_t base =
      set_index(line_addr) * static_cast<std::size_t>(config_.associativity);
  for (int w = 0; w < config_.associativity; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.state != LineState::kInvalid && way.tag == line_addr) return &way;
  }
  return nullptr;
}

const Cache::Way* Cache::find(Addr line_addr) const {
  return const_cast<Cache*>(this)->find(line_addr);
}

LineState Cache::probe(Addr addr) const {
  const Way* way = find(line_of(addr));
  return way ? way->state : LineState::kInvalid;
}

void Cache::mark_used(std::size_t set, int way) {
  switch (config_.replacement) {
    case ReplacementPolicy::kLru:
      ways_[set * static_cast<std::size_t>(config_.associativity) +
            static_cast<std::size_t>(way)]
          .lru = ++tick_;
      break;
    case ReplacementPolicy::kTreePlru: {
      // Walk from the root; flip each internal node to point *away* from
      // the used way. Nodes are stored heap-style: node 1 is the root,
      // children of i are 2i and 2i+1; leaves correspond to ways.
      std::uint32_t& tree = plru_[set];
      const int levels = std::countr_zero(
          static_cast<unsigned>(config_.associativity));
      int node = 1;
      for (int level = levels - 1; level >= 0; --level) {
        const int bit = (way >> level) & 1;
        if (bit)
          tree |= (1u << node);   // used right subtree → point left (1=left)
        else
          tree &= ~(1u << node);  // used left subtree → point right
        node = node * 2 + bit;
      }
      break;
    }
    case ReplacementPolicy::kRandom:
      break;  // stateless
  }
}

int Cache::pick_victim_way(std::size_t set) {
  const std::size_t base =
      set * static_cast<std::size_t>(config_.associativity);
  switch (config_.replacement) {
    case ReplacementPolicy::kLru: {
      int victim = 0;
      for (int w = 1; w < config_.associativity; ++w)
        if (ways_[base + static_cast<std::size_t>(w)].lru <
            ways_[base + static_cast<std::size_t>(victim)].lru)
          victim = w;
      return victim;
    }
    case ReplacementPolicy::kTreePlru: {
      // Follow the pointers: bit set = go left(0 side)? We store 1 = "next
      // victim on the right was NOT used recently"... Concretely: bit set
      // means victim is in the *left* subtree after a right-side use, per
      // mark_used above. Follow: bit set → go left (0), clear → go right.
      const std::uint32_t tree = plru_[set];
      const int levels = std::countr_zero(
          static_cast<unsigned>(config_.associativity));
      int node = 1;
      int way = 0;
      for (int level = 0; level < levels; ++level) {
        const int go_right = (tree & (1u << node)) ? 0 : 1;
        way = way * 2 + go_right;
        node = node * 2 + go_right;
      }
      return way;
    }
    case ReplacementPolicy::kRandom:
      return static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(config_.associativity)));
  }
  ST_CHECK_MSG(false, "invalid replacement policy");
}

void Cache::touch(Addr addr) {
  const Addr line = line_of(addr);
  Way* way = find(line);
  ST_CHECK_MSG(way != nullptr, "touch on absent line");
  const std::size_t set = set_index(line);
  const int w = static_cast<int>(
      way - &ways_[set * static_cast<std::size_t>(config_.associativity)]);
  mark_used(set, w);
}

void Cache::set_state(Addr addr, LineState s) {
  ST_CHECK_MSG(s != LineState::kInvalid, "use invalidate() to drop a line");
  Way* way = find(line_of(addr));
  ST_CHECK_MSG(way != nullptr, "set_state on absent line");
  way->state = s;
}

std::optional<Victim> Cache::insert(Addr addr, LineState s) {
  ST_CHECK_MSG(s != LineState::kInvalid, "cannot insert an invalid line");
  const Addr line = line_of(addr);
  ST_CHECK_MSG(find(line) == nullptr, "insert of already-present line");
  const std::size_t set = set_index(line);
  const std::size_t base =
      set * static_cast<std::size_t>(config_.associativity);

  int slot = -1;
  for (int w = 0; w < config_.associativity; ++w) {
    if (ways_[base + static_cast<std::size_t>(w)].state ==
        LineState::kInvalid) {
      slot = w;
      break;
    }
  }
  std::optional<Victim> victim;
  if (slot < 0) {
    slot = pick_victim_way(set);
    Way& victim_way = ways_[base + static_cast<std::size_t>(slot)];
    victim = Victim{victim_way.tag, victim_way.state};
  } else {
    ++occupancy_;
  }
  Way& way = ways_[base + static_cast<std::size_t>(slot)];
  way.tag = line;
  way.state = s;
  mark_used(set, slot);
  return victim;
}

LineState Cache::invalidate(Addr addr) {
  Way* way = find(line_of(addr));
  if (way == nullptr) return LineState::kInvalid;
  const LineState prior = way->state;
  way->state = LineState::kInvalid;
  --occupancy_;
  return prior;
}

void Cache::clear() {
  for (Way& way : ways_) way.state = LineState::kInvalid;
  plru_.assign(plru_.size(), 0);
  occupancy_ = 0;
  tick_ = 0;
}

void Cache::for_each_line(
    const std::function<void(Addr, LineState)>& fn) const {
  for (const Way& way : ways_)
    if (way.state != LineState::kInvalid) fn(way.tag, way.state);
}

}  // namespace scaltool
