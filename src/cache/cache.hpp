// Set-associative cache model with MESI line states and configurable
// replacement (true LRU, tree-PLRU, pseudo-random).
//
// The cache is purely structural: it answers hit/miss, tracks line states
// and produces victims, while all timing and event counting live in the
// machine layer. Conflict (capacity+conflict) misses in the paper's sense
// arise here from real tag-array evictions; compulsory and coherence misses
// arise from the memory/first-touch and directory layers. The replacement
// policy is an ablation knob: Scal-Tool's conflict-miss isolation should be
// robust to it, and bench_ablation_replacement checks that it is.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace scaltool {

/// Cache line coherence state (Illinois / MESI, Papamarcos & Patel [14]).
enum class LineState : unsigned char { kInvalid, kShared, kExclusive, kModified };

const char* line_state_name(LineState s);

enum class ReplacementPolicy : unsigned char {
  kLru,       ///< true least-recently-used (default)
  kTreePlru,  ///< tree pseudo-LRU (requires power-of-two associativity)
  kRandom,    ///< deterministic pseudo-random victim
};

const char* replacement_policy_name(ReplacementPolicy p);

struct CacheConfig {
  std::size_t size_bytes = 64_KiB;
  int associativity = 4;
  int line_bytes = 64;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  std::uint64_t random_seed = 0x5eedULL;  ///< for kRandom (deterministic)

  std::size_t num_lines() const {
    return size_bytes / static_cast<std::size_t>(line_bytes);
  }
  std::size_t num_sets() const {
    return num_lines() / static_cast<std::size_t>(associativity);
  }
  /// Validates power-of-two geometry; throws CheckError otherwise.
  void validate() const;
};

/// A victim line produced by an insertion.
struct Victim {
  Addr line_addr = 0;          ///< line-aligned byte address
  LineState state = LineState::kInvalid;
};

/// The cache operates on byte addresses and aligns them internally.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }

  /// Line-aligned address of `addr`.
  Addr line_of(Addr addr) const { return addr & ~line_mask_; }

  /// State of the line holding `addr`; kInvalid if absent. Does not touch
  /// replacement state (a pure probe, like a directory snoop).
  LineState probe(Addr addr) const;

  /// Marks the line as most-recently used. Precondition: present.
  void touch(Addr addr);

  /// Changes the state of a present line. Precondition: present.
  void set_state(Addr addr, LineState s);

  /// Inserts the line in state `s`, evicting a victim chosen by the
  /// replacement policy if the set is full. Precondition: line not present.
  std::optional<Victim> insert(Addr addr, LineState s);

  /// Removes the line if present; returns its prior state (kInvalid if it
  /// was absent).
  LineState invalidate(Addr addr);

  /// Number of valid lines currently resident.
  std::size_t occupancy() const { return occupancy_; }

  /// Drops all lines (cold start).
  void clear();

  /// Visits every valid line (for invariant checks in tests).
  void for_each_line(
      const std::function<void(Addr, LineState)>& fn) const;

 private:
  struct Way {
    Addr tag = 0;              // full line address (simple and unambiguous)
    LineState state = LineState::kInvalid;
    std::uint64_t lru = 0;     // larger = more recently used (kLru)
  };

  std::size_t set_index(Addr line_addr) const {
    return static_cast<std::size_t>((line_addr >> line_bits_) &
                                    (config_.num_sets() - 1));
  }
  Way* find(Addr line_addr);
  const Way* find(Addr line_addr) const;
  void mark_used(std::size_t set, int way);
  int pick_victim_way(std::size_t set);

  CacheConfig config_;
  int line_bits_ = 0;
  Addr line_mask_ = 0;
  std::vector<Way> ways_;          // num_sets × associativity, row-major
  std::vector<std::uint32_t> plru_;  // one bit tree per set (kTreePlru)
  Rng rng_;                        // kRandom victims
  std::uint64_t tick_ = 0;
  std::size_t occupancy_ = 0;
};

}  // namespace scaltool
