#include "math/confidence.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace scaltool {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double OlsInference::leverage(std::span<const double> x) const {
  ST_CHECK(x.size() == predictors);
  double acc = 0.0;
  for (std::size_t a = 0; a < predictors; ++a) {
    double row = 0.0;
    for (std::size_t b = 0; b < predictors; ++b)
      row += xtx_inv[a * predictors + b] * x[b];
    acc += x[a] * row;
  }
  return acc;
}

std::vector<double> invert_normal_matrix(std::vector<double> xtx,
                                         std::size_t k) {
  ST_CHECK(xtx.size() == k * k);
  // Column-by-column solve against the identity; solve_linear already
  // carries the partial pivoting and the singularity check.
  std::vector<double> inv(k * k, 0.0);
  for (std::size_t col = 0; col < k; ++col) {
    std::vector<double> e(k, 0.0);
    e[col] = 1.0;
    const std::vector<double> x = solve_linear(xtx, std::move(e), k);
    for (std::size_t r = 0; r < k; ++r) inv[r * k + col] = x[r];
  }
  return inv;
}

OlsInference infer_least_squares(const std::vector<std::vector<double>>& rows,
                                 const LsqFit& fit) {
  ST_CHECK(!rows.empty());
  const std::size_t m = rows.size();
  const std::size_t k = rows.front().size();
  ST_CHECK(fit.coef.size() == k);
  ST_CHECK(fit.residuals.size() == m);

  OlsInference inf;
  inf.observations = m;
  inf.predictors = k;
  inf.dof = m > k ? m - k : 0;

  std::vector<double> xtx(k * k, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    ST_CHECK(rows[i].size() == k);
    for (std::size_t a = 0; a < k; ++a)
      for (std::size_t b = 0; b < k; ++b)
        xtx[a * k + b] += rows[i][a] * rows[i][b];
  }
  inf.xtx_inv = invert_normal_matrix(std::move(xtx), k);

  double rss = 0.0;
  for (const double r : fit.residuals) rss += r * r;
  inf.sigma2 = inf.dof > 0 ? rss / static_cast<double>(inf.dof) : kInf;

  inf.se.resize(k);
  inf.ci95.resize(k);
  for (std::size_t a = 0; a < k; ++a) {
    if (inf.dof == 0) {
      inf.se[a] = kInf;
      inf.ci95[a] = kInf;
      continue;
    }
    // Numerical round-off can push a diagonal element a hair negative on
    // an interpolating-to-machine-precision design; clamp, never sqrt(-0).
    const double var = std::max(0.0, inf.sigma2 * inf.xtx_inv[a * k + a]);
    inf.se[a] = std::sqrt(var);
    inf.ci95[a] = 1.96 * inf.se[a];
  }
  return inf;
}

}  // namespace scaltool
