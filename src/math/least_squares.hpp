// Ordinary least squares, the numerical heart of the Scal-Tool model.
//
// Section 2.3 of the paper fits the two unknown latencies (t2, tm) from
// event-counter triplets (cpi, h2, hm) measured at several data-set sizes:
//
//     cpi_i − pi0 = h2_i · t2 + hm_i · tm          (Eq. 3)
//
// i.e. a linear regression *without intercept*. The same machinery fits the
// fetchop latency t_syn from the synchronization kernel. We implement a
// small dense OLS via normal equations with partial-pivot Gaussian
// elimination — ample for the ≤4 predictors the model ever uses — plus
// residual diagnostics (R², max |residual|) so callers can detect bad fits
// (e.g. triplets that do not overflow the L2, which the paper warns about).
#pragma once

#include <span>
#include <vector>

namespace scaltool {

/// Result of a least-squares fit.
struct LsqFit {
  std::vector<double> coef;   ///< fitted coefficients, one per predictor
  double r2 = 0.0;            ///< coefficient of determination (vs. zero model
                              ///< for no-intercept fits)
  double max_abs_residual = 0.0;
  std::vector<double> residuals;  ///< y_i − yhat_i, in input order
};

/// Solves the dense linear system A x = b (n×n) by Gaussian elimination with
/// partial pivoting. A is row-major. Throws CheckError on a singular matrix.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n);

/// No-intercept ordinary least squares: y ≈ X · coef.
/// `rows[i]` holds the predictors of observation i; all rows must have the
/// same size k ≥ 1, and there must be at least k observations.
LsqFit least_squares(const std::vector<std::vector<double>>& rows,
                     std::span<const double> y);

/// The second half of least_squares(): solves the no-intercept OLS from
/// pre-accumulated normal equations XᵀX (row-major k×k, k = xty.size())
/// and Xᵀy, with `rows`/`y` supplying the design checks (dead column,
/// collinearity) and residual diagnostics. least_squares() forms the sums
/// and delegates here; the adaptive planner's incremental fitter
/// (src/plan) maintains the sums across one-at-a-time additions and
/// delegates here too, which is why its refits agree with the one-shot
/// fit to machine precision — the accumulated sums are the same numbers,
/// added in the same order.
LsqFit least_squares_from_normal(std::vector<double> xtx,
                                 std::vector<double> xty,
                                 const std::vector<std::vector<double>>& rows,
                                 std::span<const double> y);

/// Convenience for the model's two-predictor fit (Eq. 3):
/// y ≈ h2·t2 + hm·tm. Returns {t2, tm} in `coef`.
LsqFit fit_two_latencies(std::span<const double> h2, std::span<const double> hm,
                         std::span<const double> y);

/// Simple 1-predictor fit with intercept: y ≈ a + b·x. coef = {a, b}.
LsqFit fit_line(std::span<const double> x, std::span<const double> y);

/// Median of a sample (the average of the two central order statistics for
/// even sizes). Throws CheckError on an empty sample.
double median(std::vector<double> values);

/// Knobs of the robust (outlier-rejecting) fit.
struct RobustFitOptions {
  /// A point is rejected when |residual| exceeds this many robust standard
  /// deviations (1.4826 · MAD) of the current residual distribution.
  double outlier_threshold = 3.0;
  /// Maximum reject-and-refit rounds.
  int max_rounds = 4;
  /// Never reject below this many surviving points (at least k+1 is always
  /// kept so the refit stays overdetermined).
  std::size_t min_points = 0;
};

/// Result of robust_least_squares: the final fit on the surviving points
/// plus the rejection journal.
struct RobustLsqFit {
  LsqFit fit;                        ///< over the surviving observations
  std::vector<std::size_t> rejected; ///< original indices, ascending
  int rounds = 0;                    ///< refit rounds that rejected something
};

/// Iteratively reweighted-by-exclusion least squares: fits, rejects points
/// whose residual is an outlier under the MAD criterion, and refits, until
/// nothing is rejected or the round/point floors are hit. A counter fault
/// that perturbs one triplet shows up as exactly that kind of outlier
/// (Sec. 2.3's fit is otherwise at the mercy of a single bad run).
RobustLsqFit robust_least_squares(const std::vector<std::vector<double>>& rows,
                                  std::span<const double> y,
                                  const RobustFitOptions& options = {});

}  // namespace scaltool
