// Piecewise-linear interpolation over (x, y) sample points.
//
// Section 2.4.1: "If an application does not allow the slicing of the data
// set to the right size, we interpolate between the results of two
// acceptable data set sizes." The uniprocessor sweep measures L2 hit rates
// at data-set sizes s0/2^k; the coherence estimator needs L2hitr(s0/n, 1)
// for arbitrary n, so it interpolates on this curve. The what-if L2-scaling
// analysis (Sec. 2.6) interpolates the same curve at s0/k.
#pragma once

#include <utility>
#include <vector>

namespace scaltool {

/// A function sampled at strictly increasing x positions, evaluated by
/// linear interpolation and clamped extrapolation beyond the sampled range
/// (hit-rate curves flatten outside the measured span, so clamping is the
/// conservative choice).
class LinearInterpolator {
 public:
  /// An empty interpolator; evaluating it is a contract violation. Exists
  /// so result structs can be default-constructed and filled in.
  LinearInterpolator() = default;

  /// Points need not arrive sorted; they are sorted by x. Duplicate x
  /// values are rejected; at least one point is required.
  explicit LinearInterpolator(std::vector<std::pair<double, double>> points);

  double operator()(double x) const;

  std::size_t size() const { return points_.size(); }
  double min_x() const;
  double max_x() const;

  /// Returns the x of the maximum y (ties resolved to the smallest x).
  /// Used to locate s_max in Fig. 3-(a), the point where only compulsory
  /// misses remain.
  double argmax_y() const;
  double max_y() const;

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace scaltool
