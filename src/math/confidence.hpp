// Closed-form inference for the no-intercept OLS fits (DESIGN.md §14).
//
// The adaptive campaign planner needs to know not just the fitted
// latencies (t2, tm) but how certain they are: a run is only worth
// simulating if it shrinks that uncertainty. Under the standard OLS
// error model the coefficient covariance is
//
//     cov(coef) = σ² (XᵀX)⁻¹      with  σ² = RSS / (m − k),
//
// which is exact given the normal equations the least_squares core
// already forms. We report per-coefficient standard errors, 95%
// confidence half-widths (normal approximation, 1.96·se — the planner
// compares widths against each other and against a tolerance, so the
// small-sample t correction buys nothing), and the leverage form
// xᵀ(XᵀX)⁻¹x a D-optimal acquisition policy scores candidate runs with.
//
// Degenerate designs are first-class: with m == k the fit interpolates
// (zero residual degrees of freedom) and every interval is infinite —
// "we know nothing about the noise yet" — rather than zero or NaN.
#pragma once

#include <span>
#include <vector>

#include "math/least_squares.hpp"

namespace scaltool {

/// Inference over one least-squares fit.
struct OlsInference {
  std::size_t observations = 0;  ///< m
  std::size_t predictors = 0;    ///< k
  /// Residual degrees of freedom, m − k (0 for an interpolating fit).
  std::size_t dof = 0;
  /// Residual variance estimate RSS / dof; +inf when dof == 0.
  double sigma2 = 0.0;
  /// Per-coefficient standard errors; +inf when dof == 0.
  std::vector<double> se;
  /// 95% confidence half-widths, 1.96 · se.
  std::vector<double> ci95;
  /// (XᵀX)⁻¹, row-major k×k — the design information the acquisition
  /// policy reads (leverage of a candidate row).
  std::vector<double> xtx_inv;

  /// Leverage xᵀ(XᵀX)⁻¹x of a candidate predictor row: proportional to
  /// the variance a prediction at x carries, and to how much adding the
  /// row would improve the design.
  double leverage(std::span<const double> x) const;
};

/// Inverts the symmetric positive-definite k×k matrix XᵀX accumulated from
/// `rows` (row-major result). Throws CheckError on a singular design,
/// naming the offending column like least_squares does.
std::vector<double> invert_normal_matrix(std::vector<double> xtx,
                                         std::size_t k);

/// Closed-form inference for `fit = least_squares(rows, y)`. The fit's
/// residuals supply the RSS, so callers never recompute them; rows must be
/// the exact design the fit was produced from.
OlsInference infer_least_squares(const std::vector<std::vector<double>>& rows,
                                 const LsqFit& fit);

}  // namespace scaltool
