#include "math/interpolate.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace scaltool {

LinearInterpolator::LinearInterpolator(
    std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  ST_CHECK_MSG(!points_.empty(), "interpolator needs at least one point");
  std::sort(points_.begin(), points_.end());
  for (std::size_t i = 1; i < points_.size(); ++i)
    ST_CHECK_MSG(points_[i].first > points_[i - 1].first,
                 "duplicate x value " << points_[i].first);
}

double LinearInterpolator::operator()(double x) const {
  ST_CHECK_MSG(!points_.empty(), "evaluating an empty interpolator");
  if (x <= points_.front().first) return points_.front().second;
  if (x >= points_.back().first) return points_.back().second;
  // First point with x_i >= x; the invariant above guarantees i >= 1.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), x,
      [](const std::pair<double, double>& p, double v) { return p.first < v; });
  const auto& [x1, y1] = *it;
  const auto& [x0, y0] = *(it - 1);
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double LinearInterpolator::min_x() const {
  ST_CHECK(!points_.empty());
  return points_.front().first;
}
double LinearInterpolator::max_x() const {
  ST_CHECK(!points_.empty());
  return points_.back().first;
}

double LinearInterpolator::argmax_y() const {
  ST_CHECK(!points_.empty());
  const auto it = std::max_element(
      points_.begin(), points_.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return it->first;
}

double LinearInterpolator::max_y() const {
  ST_CHECK(!points_.empty());
  const auto it = std::max_element(
      points_.begin(), points_.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return it->second;
}

}  // namespace scaltool
