#include "math/least_squares.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace scaltool {

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n) {
  ST_CHECK(a.size() == n * n);
  ST_CHECK(b.size() == n);
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    ST_CHECK_MSG(best > 1e-12, "singular system in solve_linear (col " << col
                                                                       << ")");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a[ri * n + c] * x[c];
    x[ri] = acc / a[ri * n + ri];
  }
  return x;
}

LsqFit least_squares(const std::vector<std::vector<double>>& rows,
                     std::span<const double> y) {
  ST_CHECK(!rows.empty());
  const std::size_t m = rows.size();
  const std::size_t k = rows.front().size();
  ST_CHECK_MSG(k >= 1, "need at least one predictor");
  for (const auto& row : rows) ST_CHECK(row.size() == k);

  // Normal equations: (XᵀX) coef = Xᵀy.
  std::vector<double> xtx(k * k, 0.0);
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += rows[i][a] * y[i];
      for (std::size_t b = 0; b < k; ++b) xtx[a * k + b] += rows[i][a] * rows[i][b];
    }
  }
  return least_squares_from_normal(std::move(xtx), std::move(xty), rows, y);
}

LsqFit least_squares_from_normal(std::vector<double> xtx,
                                 std::vector<double> xty,
                                 const std::vector<std::vector<double>>& rows,
                                 std::span<const double> y) {
  ST_CHECK(!rows.empty());
  const std::size_t m = rows.size();
  const std::size_t k = xty.size();
  ST_CHECK(xtx.size() == k * k);
  ST_CHECK_MSG(k >= 1, "need at least one predictor");
  ST_CHECK_MSG(m >= k, "need at least as many observations (" << m
                       << ") as predictors (" << k << ")");
  ST_CHECK(y.size() == m);
  for (const auto& row : rows) ST_CHECK(row.size() == k);

  // A dead counter group shows up as an identically-zero predictor column;
  // name it rather than letting the solver report an anonymous singularity.
  for (std::size_t a = 0; a < k; ++a) {
    bool all_zero = true;
    for (std::size_t i = 0; i < m && all_zero; ++i)
      all_zero = rows[i][a] == 0.0;
    ST_CHECK_MSG(!all_zero, "predictor column " << a
                 << " is identically zero across all " << m
                 << " observations (dead or dropped counter?)");
  }

  // Collinearity check on a scratch copy of XᵀX: find the first column
  // whose pivot collapses and name it, so a degenerate fit (e.g. h2 ∝ hm
  // after a fault zeroed part of a counter group) is a diagnosable error.
  {
    std::vector<double> scratch = xtx;
    for (std::size_t col = 0; col < k; ++col) {
      std::size_t pivot = col;
      double best = std::abs(scratch[col * k + col]);
      for (std::size_t r = col + 1; r < k; ++r) {
        const double v = std::abs(scratch[r * k + col]);
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      ST_CHECK_MSG(best > 1e-12,
                   "predictor column " << col
                   << " is collinear with the preceding columns; the fit is "
                      "degenerate");
      if (pivot != col)
        for (std::size_t c = 0; c < k; ++c)
          std::swap(scratch[pivot * k + c], scratch[col * k + c]);
      for (std::size_t r = col + 1; r < k; ++r) {
        const double f = scratch[r * k + col] / scratch[col * k + col];
        if (f == 0.0) continue;
        for (std::size_t c = col; c < k; ++c)
          scratch[r * k + c] -= f * scratch[col * k + c];
      }
    }
  }
  LsqFit fit;
  fit.coef = solve_linear(std::move(xtx), std::move(xty), k);

  // Diagnostics. For no-intercept fits, R² is computed against the zero
  // model (sum of squares of y), the standard convention.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  fit.residuals.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    double yhat = 0.0;
    for (std::size_t a = 0; a < k; ++a) yhat += rows[i][a] * fit.coef[a];
    const double r = y[i] - yhat;
    fit.residuals[i] = r;
    ss_res += r * r;
    ss_tot += y[i] * y[i];
    fit.max_abs_residual = std::max(fit.max_abs_residual, std::abs(r));
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LsqFit fit_two_latencies(std::span<const double> h2, std::span<const double> hm,
                         std::span<const double> y) {
  ST_CHECK(h2.size() == hm.size());
  ST_CHECK(h2.size() == y.size());
  std::vector<std::vector<double>> rows;
  rows.reserve(h2.size());
  for (std::size_t i = 0; i < h2.size(); ++i)
    rows.push_back({h2[i], hm[i]});
  return least_squares(rows, y);
}

LsqFit fit_line(std::span<const double> x, std::span<const double> y) {
  ST_CHECK(x.size() == y.size());
  std::vector<std::vector<double>> rows;
  rows.reserve(x.size());
  for (double xi : x) rows.push_back({1.0, xi});
  return least_squares(rows, y);
}

double median(std::vector<double> values) {
  ST_CHECK_MSG(!values.empty(), "median of an empty sample");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

RobustLsqFit robust_least_squares(
    const std::vector<std::vector<double>>& rows, std::span<const double> y,
    const RobustFitOptions& options) {
  ST_CHECK(!rows.empty());
  ST_CHECK(rows.size() == y.size());
  ST_CHECK_MSG(options.outlier_threshold > 0.0,
               "outlier_threshold must be positive");
  const std::size_t k = rows.front().size();
  const std::size_t floor_points =
      std::max(options.min_points, k + 1);

  // Surviving original indices; rejection only ever shrinks this set.
  std::vector<std::size_t> kept(rows.size());
  for (std::size_t i = 0; i < kept.size(); ++i) kept[i] = i;

  RobustLsqFit out;
  for (int round = 0;; ++round) {
    std::vector<std::vector<double>> sub_rows;
    std::vector<double> sub_y;
    sub_rows.reserve(kept.size());
    sub_y.reserve(kept.size());
    for (std::size_t i : kept) {
      sub_rows.push_back(rows[i]);
      sub_y.push_back(y[i]);
    }
    out.fit = least_squares(sub_rows, sub_y);
    if (round >= options.max_rounds || kept.size() <= floor_points) break;

    // Robust scale: 1.4826 · median(|r|) is a consistent estimator of the
    // residual standard deviation under normal noise.
    std::vector<double> abs_res(out.fit.residuals.size());
    for (std::size_t i = 0; i < abs_res.size(); ++i)
      abs_res[i] = std::abs(out.fit.residuals[i]);
    const double scale = 1.4826 * median(abs_res);
    if (scale <= 0.0) break;  // at least half the points fit exactly

    // Reject the worst offenders, never dropping below the floor.
    std::vector<std::pair<double, std::size_t>> offenders;  // (|r|, kept idx)
    for (std::size_t i = 0; i < abs_res.size(); ++i)
      if (abs_res[i] > options.outlier_threshold * scale)
        offenders.push_back({abs_res[i], i});
    if (offenders.empty()) break;
    std::sort(offenders.begin(), offenders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const std::size_t budget = kept.size() - floor_points;
    if (offenders.size() > budget) offenders.resize(budget);
    if (offenders.empty()) break;

    std::vector<bool> drop(kept.size(), false);
    for (const auto& [r, i] : offenders) {
      out.rejected.push_back(kept[i]);
      drop[i] = true;
    }
    std::vector<std::size_t> next;
    next.reserve(kept.size() - offenders.size());
    for (std::size_t i = 0; i < kept.size(); ++i)
      if (!drop[i]) next.push_back(kept[i]);
    kept = std::move(next);
    ++out.rounds;
  }
  std::sort(out.rejected.begin(), out.rejected.end());
  return out;
}

}  // namespace scaltool
