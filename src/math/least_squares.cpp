#include "math/least_squares.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace scaltool {

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n) {
  ST_CHECK(a.size() == n * n);
  ST_CHECK(b.size() == n);
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    ST_CHECK_MSG(best > 1e-12, "singular system in solve_linear (col " << col
                                                                       << ")");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a[ri * n + c] * x[c];
    x[ri] = acc / a[ri * n + ri];
  }
  return x;
}

LsqFit least_squares(const std::vector<std::vector<double>>& rows,
                     std::span<const double> y) {
  ST_CHECK(!rows.empty());
  const std::size_t m = rows.size();
  const std::size_t k = rows.front().size();
  ST_CHECK_MSG(k >= 1, "need at least one predictor");
  ST_CHECK_MSG(m >= k, "need at least as many observations (" << m
                       << ") as predictors (" << k << ")");
  ST_CHECK(y.size() == m);
  for (const auto& row : rows) ST_CHECK(row.size() == k);

  // Normal equations: (XᵀX) coef = Xᵀy.
  std::vector<double> xtx(k * k, 0.0);
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += rows[i][a] * y[i];
      for (std::size_t b = 0; b < k; ++b) xtx[a * k + b] += rows[i][a] * rows[i][b];
    }
  }
  LsqFit fit;
  fit.coef = solve_linear(std::move(xtx), std::move(xty), k);

  // Diagnostics. For no-intercept fits, R² is computed against the zero
  // model (sum of squares of y), the standard convention.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  fit.residuals.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    double yhat = 0.0;
    for (std::size_t a = 0; a < k; ++a) yhat += rows[i][a] * fit.coef[a];
    const double r = y[i] - yhat;
    fit.residuals[i] = r;
    ss_res += r * r;
    ss_tot += y[i] * y[i];
    fit.max_abs_residual = std::max(fit.max_abs_residual, std::abs(r));
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LsqFit fit_two_latencies(std::span<const double> h2, std::span<const double> hm,
                         std::span<const double> y) {
  ST_CHECK(h2.size() == hm.size());
  ST_CHECK(h2.size() == y.size());
  std::vector<std::vector<double>> rows;
  rows.reserve(h2.size());
  for (std::size_t i = 0; i < h2.size(); ++i)
    rows.push_back({h2[i], hm[i]});
  return least_squares(rows, y);
}

LsqFit fit_line(std::span<const double> x, std::span<const double> y) {
  ST_CHECK(x.size() == y.size());
  std::vector<std::vector<double>> rows;
  rows.reserve(x.size());
  for (double xi : x) rows.push_back({1.0, xi});
  return least_squares(rows, y);
}

}  // namespace scaltool
