#include "machine/machine_config.hpp"

#include "common/check.hpp"

namespace scaltool {

void MachineConfig::validate() const {
  ST_CHECK_MSG(num_procs >= 1 && num_procs <= 64,
               "num_procs must be in [1, 64], got " << num_procs);
  l1.validate();
  l2.validate();
  ST_CHECK_MSG(l1.line_bytes == l2.line_bytes,
               "L1 and L2 must share a line size (hierarchical inclusion)");
  ST_CHECK_MSG(l1.size_bytes <= l2.size_bytes, "L1 larger than L2");
  ST_CHECK(base_cpi > 0.0);
  ST_CHECK(l2_hit_cycles >= 0.0);
  ST_CHECK(mem_cycles > 0.0);
  ST_CHECK(intervention_extra >= 0.0);
  ST_CHECK(upgrade_cycles >= 0.0);
  ST_CHECK(sync.spin_cpi > 0.0);
  ST_CHECK(tlb_entries >= 0);
  ST_CHECK(tlb_miss_cycles >= 0.0);
}

MachineConfig MachineConfig::origin2000_scaled(int n) {
  MachineConfig cfg;
  cfg.num_procs = n;
  cfg.validate();
  return cfg;
}

double MachineConfig::tm_ground_truth() const {
  const HypercubeNetwork net(num_procs, network);
  const int nodes = net.num_nodes();
  if (nodes == 1) return mem_cycles;
  // Pages spread uniformly over nodes (first-touch on block-scheduled data
  // approaches this once the machine is loaded): 1/nodes of accesses are
  // local, the rest pay the average network round trip.
  double remote_lat = 0.0;
  long long pairs = 0;
  for (NodeId a = 0; a < nodes; ++a)
    for (NodeId b = 0; b < nodes; ++b) {
      if (a == b) continue;
      remote_lat += net.latency_cycles(a, b);
      ++pairs;
    }
  remote_lat /= static_cast<double>(pairs);
  const double remote_frac =
      static_cast<double>(nodes - 1) / static_cast<double>(nodes);
  return mem_cycles + remote_frac * remote_lat;
}

double MachineConfig::tsyn_ground_truth() const {
  // The sync variable lives on one node; requesters are spread across all.
  return tm_ground_truth();
}

}  // namespace scaltool
