// Configuration of the simulated DSM machine.
//
// The default is a *scaled* SGI Origin 2000 (Sec. 3): two R10000-class
// processors per node on a bristled hypercube, private two-level caches,
// full-map directory coherence, first-touch page placement, fetchop
// synchronization. Capacities are scaled down 64× (8 KiB L1D / 64 KiB L2
// vs the Origin's 32 KiB / 4 MiB) so that whole experiment matrices run in
// seconds; applications scale their data sets by the same factor, keeping
// every ratio the paper's analysis depends on (data-set size vs L2, L1 vs
// L2) intact.
#pragma once

#include "cache/cache.hpp"
#include "memory/memory_system.hpp"
#include "network/hypercube.hpp"
#include "sync/sync_config.hpp"

namespace scaltool {

struct MachineConfig {
  int num_procs = 1;

  CacheConfig l1{8_KiB, 2, 64};
  CacheConfig l2{64_KiB, 4, 64};

  NetworkConfig network{};
  MemoryConfig memory{};
  SyncConfig sync{};

  /// Data-TLB entries per processor (fully associative, LRU). 0 disables
  /// TLB modelling (the default: the Scal-Tool model neglects TLB misses
  /// just as the paper neglects instruction misses, so the calibrated
  /// defaults leave it off; enable it to study the perfex "TLB misses"
  /// event the paper's Sec. 5 mentions).
  int tlb_entries = 0;

  /// Extra cycles per TLB miss (software refill on the R10000).
  double tlb_miss_cycles = 40.0;

  /// Illinois/MESI (true, the Origin's protocol) vs plain MSI (false):
  /// with MSI a sole reader never gets the Exclusive state, so every
  /// read-then-write pattern pays an ownership upgrade.
  bool exclusive_state = true;

  /// Compute CPI of graduated instructions absent cache misses — the
  /// machine-side ground truth of the model's pi0. The R10000 is 4-issue;
  /// real codes sustain around one instruction per cycle.
  double base_cpi = 1.0;

  /// Extra cycles for an L1 miss that hits in the L2 — ground truth of t2.
  double l2_hit_cycles = 12.0;

  /// Base memory access cost (local node, no network) — with the network
  /// component this grounds tm(n).
  double mem_cycles = 70.0;

  /// Extra cycles when an L2 miss must be served by a dirty remote cache
  /// (three-hop intervention).
  double intervention_extra = 40.0;

  /// Cycles for a Shared→Modified upgrade (ownership request round trip;
  /// no data transfer).
  double upgrade_cycles = 30.0;

  /// Validates the configuration; throws CheckError on inconsistencies.
  void validate() const;

  /// The scaled Origin 2000 with `n` processors.
  static MachineConfig origin2000_scaled(int n);

  /// Ground-truth average memory latency (local/remote mix over all node
  /// pairs) — what the model's tm(n) estimates.
  double tm_ground_truth() const;

  /// Ground-truth fetchop latency: a full memory access to the sync
  /// variable's home (Sec. 2.4.2) — what the model's t_syn estimates.
  double tsyn_ground_truth() const;
};

}  // namespace scaltool
