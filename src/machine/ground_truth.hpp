// Ground-truth attribution kept by the simulator alongside the
// architectural event counters.
//
// The Scal-Tool model must never read these — it sees only what an R10000
// exposes. Ground truth exists to play the role the SGI tools play in the
// paper's Section 4: speedshop PC-sampling (cycles in barrier and
// wait-for-work routines) validates the estimated MP cost, and the miss
// classification validates the compulsory/coherence/conflict decomposition.
#pragma once

#include <vector>

#include "common/check.hpp"

namespace scaltool {

/// One processor's ground-truth breakdown.
struct ProcGroundTruth {
  // Cycle attribution (sums to the processor's total cycles).
  double compute_cycles = 0.0;    ///< graduated work at base CPI
  double mem_stall_cycles = 0.0;  ///< L2-hit and memory penalties
  double sync_cycles = 0.0;       ///< barrier/lock work incl. fetchops
  double spin_cycles = 0.0;       ///< idle waiting (imbalance)

  // Instruction attribution (sums to graduated instructions).
  double compute_instr = 0.0;
  double sync_instr = 0.0;
  double spin_instr = 0.0;

  // True classification of this processor's L2 misses.
  double compulsory_misses = 0.0;
  double coherence_misses = 0.0;
  double conflict_misses = 0.0;   ///< capacity+conflict, the paper's usage

  double total_cycles() const {
    return compute_cycles + mem_stall_cycles + sync_cycles + spin_cycles;
  }
  double total_instr() const {
    return compute_instr + sync_instr + spin_instr;
  }
};

/// Whole-run ground truth.
struct GroundTruth {
  std::vector<ProcGroundTruth> per_proc;

  /// Machine-parameter ground truth the model's estimates are tested
  /// against in the validation suite.
  double tm = 0.0;
  double tsyn = 0.0;
  double base_cpi = 0.0;
  double t2 = 0.0;

  ProcGroundTruth aggregate() const {
    ProcGroundTruth sum;
    for (const auto& p : per_proc) {
      sum.compute_cycles += p.compute_cycles;
      sum.mem_stall_cycles += p.mem_stall_cycles;
      sum.sync_cycles += p.sync_cycles;
      sum.spin_cycles += p.spin_cycles;
      sum.compute_instr += p.compute_instr;
      sum.sync_instr += p.sync_instr;
      sum.spin_instr += p.spin_instr;
      sum.compulsory_misses += p.compulsory_misses;
      sum.coherence_misses += p.coherence_misses;
      sum.conflict_misses += p.conflict_misses;
    }
    return sum;
  }

  /// Accumulated multiprocessor cost (speedshop's barrier + wait-for-work
  /// cycles, the quantity compared in Figs. 7/10/13).
  double mp_cycles() const {
    const ProcGroundTruth a = aggregate();
    return a.sync_cycles + a.spin_cycles;
  }
};

}  // namespace scaltool
