// The product of one simulated run.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "counters/counter_set.hpp"
#include "machine/ground_truth.hpp"

namespace scaltool {

/// Everything a run yields. `counters` is the perfex view (all the model
/// may use); `truth` is the simulator's own attribution (validation only).
struct RunResult {
  std::string workload;
  std::size_t dataset_bytes = 0;
  int num_procs = 0;

  CounterSnapshot counters;
  GroundTruth truth;

  /// Per-region counters for segment-level analysis (Sec. 2.1: the plots
  /// "can be obtained ... for a segment of the application").
  std::map<std::string, CounterSnapshot> regions;

  /// Total simulated bytes allocated — ssusage's "maximum pages in memory".
  std::size_t bytes_allocated = 0;

  /// Execution time in cycles (slowest processor).
  double execution_cycles = 0.0;

  /// Accumulated cycles over all processors (the y-axis of Figs. 6/9/12).
  double accumulated_cycles = 0.0;
};

}  // namespace scaltool
