// The DSM multiprocessor simulator.
//
// DsmMachine executes a phased Workload on `n` simulated processors with
// private L1/L2 caches, a full-map directory, a bristled-hypercube
// interconnect, first-touch memory and fetchop synchronization, producing
// R10000-style event counters plus ground-truth attribution. Execution is
// deterministic and single-threaded: within a phase processors are
// simulated one after another from a common start cycle (the paper's
// applications are data-race-free barrier codes, so intra-phase
// interleaving does not affect their coherence traffic), and the barrier
// model closes each phase.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cache/cache.hpp"
#include "coherence/directory.hpp"
#include "machine/machine_config.hpp"
#include "machine/run_result.hpp"
#include "memory/memory_system.hpp"
#include "memory/tlb.hpp"
#include "network/hypercube.hpp"
#include "sync/lock_model.hpp"
#include "trace/workload.hpp"

namespace scaltool {

class DsmMachine : public AllocContext {
 public:
  explicit DsmMachine(const MachineConfig& config);
  ~DsmMachine() override;

  DsmMachine(const DsmMachine&) = delete;
  DsmMachine& operator=(const DsmMachine&) = delete;

  const MachineConfig& config() const { return config_; }

  /// Runs the workload to completion and returns its counters and ground
  /// truth. All machine state (caches, directory, memory placement) is
  /// reset first, so a machine can be reused across runs.
  RunResult run(Workload& workload, const WorkloadParams& params);

  // AllocContext (valid during Workload::setup).
  Addr allocate(std::size_t bytes, std::string label) override;

  /// Verifies global coherence invariants after (or during) a run:
  /// hierarchical inclusion (every L1 line is in the same processor's L2
  /// with a state at least as permissive), the directory's sharer vectors
  /// exactly match cache contents, and single-writer (an M/E line lives in
  /// exactly one cache). Throws CheckError on any violation. O(cache size);
  /// meant for tests and debugging, not the hot path.
  void validate_coherence() const;

 private:
  class Ctx;  // ProcContext implementation
  friend class Ctx;

  void reset();
  void simulate_phases(Workload& workload);
  void close_phase_with_barrier(bool wait_is_sync);
  void run_critical_section(ProcId p, int lock_id, double instr);

  // --- per-access engine -------------------------------------------------
  void access(ProcId p, Addr addr, bool is_store);
  void serve_l2_miss(ProcId p, Addr line, bool is_store);
  void upgrade_shared_line(ProcId p, Addr line);
  void apply_invalidations(Addr line, std::uint64_t mask);
  void handle_l2_eviction(ProcId p, const Victim& victim);
  void install_l1(ProcId p, Addr line, LineState state);

  // --- accounting ---------------------------------------------------------
  enum class CycleKind { kCompute, kMemStall, kSync, kSpin };
  void charge(ProcId p, double cycles, CycleKind kind);
  void count_instr(ProcId p, double instr, CycleKind kind);
  void bump(ProcId p, EventId ev, double v = 1.0);
  NodeId node_of(ProcId p) const { return network_.node_of_proc(p); }

  MachineConfig config_;
  HypercubeNetwork network_;

  // Per-run state.
  std::unique_ptr<MemorySystem> memory_;
  std::unique_ptr<Directory> directory_;
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  std::vector<Tlb> tlb_;  // empty when TLB modelling is disabled
  std::vector<std::unordered_set<Addr>> invalidated_lines_;  // for coherence
                                                             // classification
  std::vector<double> clock_;           // current cycle per processor
  CounterSnapshot counters_;
  GroundTruth truth_;
  std::map<std::string, CounterSnapshot> regions_;
  std::vector<std::string> active_region_;  // per proc; empty = none
  std::map<int, LockTimeline> locks_;
  bool in_setup_ = false;
};

}  // namespace scaltool
