#include "machine/dsm_machine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/monotime.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sync/barrier_model.hpp"

namespace scaltool {

// ---------------------------------------------------------------------------
// ProcContext implementation
// ---------------------------------------------------------------------------

class DsmMachine::Ctx final : public ProcContext {
 public:
  Ctx(DsmMachine& m, ProcId p) : m_(m), p_(p) {}

  ProcId proc() const override { return p_; }
  int num_procs() const override { return m_.config_.num_procs; }

  void load(Addr addr) override { m_.access(p_, addr, /*is_store=*/false); }
  void store(Addr addr) override { m_.access(p_, addr, /*is_store=*/true); }

  void compute(double count) override {
    ST_DCHECK(count >= 0.0);
    if (count == 0.0) return;
    m_.count_instr(p_, count, CycleKind::kCompute);
    m_.charge(p_, count * m_.config_.base_cpi, CycleKind::kCompute);
  }

  void critical_section(int lock_id, double instr) override {
    m_.run_critical_section(p_, lock_id, instr);
  }

  void begin_region(const std::string& name) override {
    ST_CHECK_MSG(m_.active_region_[p_].empty(),
                 "nested regions are not supported (active: "
                     << m_.active_region_[p_] << ")");
    ST_CHECK(!name.empty());
    m_.active_region_[p_] = name;
    if (!m_.regions_.contains(name))
      m_.regions_.emplace(name, CounterSnapshot(m_.config_.num_procs));
  }

  void end_region() override {
    ST_CHECK_MSG(!m_.active_region_[p_].empty(), "end_region without begin");
    m_.active_region_[p_].clear();
  }

 private:
  DsmMachine& m_;
  ProcId p_;
};

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

DsmMachine::DsmMachine(const MachineConfig& config)
    : config_(config), network_(config.num_procs, config.network) {
  config_.validate();
}

DsmMachine::~DsmMachine() = default;

void DsmMachine::reset() {
  const int n = config_.num_procs;
  memory_ = std::make_unique<MemorySystem>(network_.num_nodes(),
                                           config_.memory);
  directory_ = std::make_unique<Directory>(n, config_.exclusive_state);
  l1_.clear();
  l2_.clear();
  tlb_.clear();
  l1_.reserve(n);
  l2_.reserve(n);
  for (int p = 0; p < n; ++p) {
    l1_.emplace_back(config_.l1);
    l2_.emplace_back(config_.l2);
    if (config_.tlb_entries > 0)
      tlb_.emplace_back(config_.tlb_entries, config_.memory.page_bytes);
  }
  invalidated_lines_.assign(n, {});
  clock_.assign(n, 0.0);
  counters_ = CounterSnapshot(n);
  truth_ = GroundTruth{};
  truth_.per_proc.resize(n);
  truth_.tm = config_.tm_ground_truth();
  truth_.tsyn = config_.tsyn_ground_truth();
  truth_.base_cpi = config_.base_cpi;
  truth_.t2 = config_.l2_hit_cycles;
  regions_.clear();
  active_region_.assign(n, {});
  locks_.clear();
}

Addr DsmMachine::allocate(std::size_t bytes, std::string label) {
  ST_CHECK_MSG(in_setup_, "allocate is only valid during Workload::setup");
  return memory_->allocate(bytes, std::move(label));
}

void DsmMachine::validate_coherence() const {
  ST_CHECK_MSG(directory_ != nullptr, "no run has been started yet");
  const int n = config_.num_procs;
  // Cache-side view: inclusion and directory membership.
  for (ProcId p = 0; p < n; ++p) {
    const Cache& l1 = l1_[static_cast<std::size_t>(p)];
    const Cache& l2 = l2_[static_cast<std::size_t>(p)];
    l1.for_each_line([&](Addr line, LineState s1) {
      const LineState s2 = l2.probe(line);
      ST_CHECK_MSG(s2 != LineState::kInvalid,
                   "inclusion violated: L1 line 0x" << std::hex << line
                                                    << " absent from L2");
      if (s1 == LineState::kModified)
        ST_CHECK_MSG(s2 == LineState::kModified,
                     "L1 Modified but L2 not Modified");
      if (s1 == LineState::kExclusive)
        ST_CHECK_MSG(s2 != LineState::kShared,
                     "L1 Exclusive but L2 merely Shared");
    });
    l2.for_each_line([&](Addr line, LineState s2) {
      const DirEntry* e = directory_->find(line);
      ST_CHECK_MSG(e != nullptr, "cached line unknown to the directory");
      ST_CHECK_MSG((e->sharers >> p) & 1,
                   "directory does not list proc " << p << " for a line it "
                                                      "caches");
      if (s2 == LineState::kModified || s2 == LineState::kExclusive) {
        ST_CHECK_MSG(e->state == DirEntry::State::kExclusive &&
                         e->owner == p,
                     "cache holds M/E but directory disagrees");
      }
    });
  }
  // Directory-side view: every sharer bit is backed by a cached line, and
  // exclusive entries have exactly one sharer.
  directory_->for_each([&](Addr line, const DirEntry& e) {
    for (ProcId p = 0; p < n; ++p) {
      if (((e.sharers >> p) & 1) == 0) continue;
      ST_CHECK_MSG(l2_[static_cast<std::size_t>(p)].probe(line) !=
                       LineState::kInvalid,
                   "directory lists a sharer whose cache lacks the line");
    }
    if (e.state == DirEntry::State::kExclusive)
      ST_CHECK_MSG(std::popcount(e.sharers) == 1,
                   "exclusive entry with sharer count != 1");
    if (e.state == DirEntry::State::kUncached)
      ST_CHECK_MSG(e.sharers == 0, "uncached entry with sharers");
  });
}

RunResult DsmMachine::run(Workload& workload, const WorkloadParams& params) {
  obs::Span span("machine.run", "sim");
  const Stopwatch timer;
  reset();
  in_setup_ = true;
  workload.setup(*this, params, config_.num_procs);
  in_setup_ = false;

  simulate_phases(workload);

  RunResult result;
  result.workload = workload.name();
  result.dataset_bytes = params.dataset_bytes;
  result.num_procs = config_.num_procs;
  result.counters = counters_;
  result.truth = truth_;
  result.regions = regions_;
  result.bytes_allocated = memory_->bytes_allocated();
  result.execution_cycles = counters_.execution_time();
  result.accumulated_cycles =
      counters_.aggregate().get(EventId::kCycles);
  if (span.active()) {
    // Attach the run's phase identity and a counter-set snapshot, so a
    // trace alone tells what this simulation was and what it cost.
    const DerivedMetrics d = result.counters.derived();
    span.arg("workload", result.workload)
        .arg("bytes", result.dataset_bytes)
        .arg("procs", result.num_procs)
        .arg("instructions", d.instructions)
        .arg("cycles", d.cycles)
        .arg("cpi", d.cpi)
        .arg("l1_hitr", d.l1_hitr)
        .arg("l2_hitr", d.l2_hitr)
        .arg("execution_cycles", result.execution_cycles);
    obs::MetricRegistry& reg = obs::MetricRegistry::instance();
    reg.histogram("sim.run_seconds").observe(timer.seconds());
    reg.counter("sim.runs").add();
  }
  return result;
}

void DsmMachine::simulate_phases(Workload& workload) {
  const int phases = workload.num_phases();
  ST_CHECK_MSG(phases > 0, "workload has no phases");
  const bool pcf = workload.parallelism_model() == ParallelismModel::kPCF;
  for (int phase = 0; phase < phases; ++phase) {
    for (ProcId p = 0; p < config_.num_procs; ++p) {
      Ctx ctx(*this, p);
      workload.run_phase(phase, ctx);
      ST_CHECK_MSG(active_region_[p].empty(),
                   "phase ended inside region " << active_region_[p]);
    }
    close_phase_with_barrier(pcf);
  }
}

void DsmMachine::close_phase_with_barrier(bool wait_is_sync) {
  const int n = config_.num_procs;
  const BarrierOutcome outcome = barrier_cost(
      clock_, truth_.tsyn, config_.base_cpi, config_.sync, wait_is_sync);
  for (ProcId p = 0; p < n; ++p) {
    const BarrierProcCost& c = outcome.per_proc[p];
    count_instr(p, c.sync_instr, CycleKind::kSync);
    count_instr(p, c.spin_instr, CycleKind::kSpin);
    charge(p, c.sync_cycles, CycleKind::kSync);
    charge(p, c.spin_cycles, CycleKind::kSpin);
    bump(p, EventId::kStoreToShared, c.stores_to_shared);
    bump(p, EventId::kBarriers);
    ST_DCHECK(std::abs(clock_[p] - outcome.exit_cycle) <
              1e-9 * (1.0 + outcome.exit_cycle));
    clock_[p] = outcome.exit_cycle;  // absorb rounding
  }
}

void DsmMachine::run_critical_section(ProcId p, int lock_id, double instr) {
  ST_CHECK(instr >= 0.0);
  auto [it, inserted] = locks_.try_emplace(
      lock_id, LockTimeline(truth_.tsyn, config_.base_cpi, config_.sync));
  const LockEpisode ep = it->second.acquire(clock_[p],
                                            instr * config_.base_cpi);
  count_instr(p, ep.sync_instr, CycleKind::kSync);
  count_instr(p, ep.spin_instr, CycleKind::kSpin);
  count_instr(p, instr, CycleKind::kCompute);
  charge(p, ep.spin_cycles, CycleKind::kSpin);
  charge(p, ep.sync_cycles, CycleKind::kSync);
  charge(p, instr * config_.base_cpi, CycleKind::kCompute);
  bump(p, EventId::kLockAcquires);
  bump(p, EventId::kStoreToShared, ep.stores_to_shared);
  ST_DCHECK(std::abs(clock_[p] - ep.release_cycle) <
            1e-9 * (1.0 + ep.release_cycle));
  clock_[p] = ep.release_cycle;
}

// ---------------------------------------------------------------------------
// Per-access engine
// ---------------------------------------------------------------------------

void DsmMachine::access(ProcId p, Addr addr, bool is_store) {
  bump(p, is_store ? EventId::kGraduatedStores : EventId::kGraduatedLoads);
  count_instr(p, 1.0, CycleKind::kCompute);
  charge(p, config_.base_cpi, CycleKind::kCompute);

  // Address translation (modelled only when configured; see MachineConfig).
  if (!tlb_.empty() && !tlb_[static_cast<std::size_t>(p)].access(addr)) {
    bump(p, EventId::kTlbMisses);
    charge(p, config_.tlb_miss_cycles, CycleKind::kMemStall);
  }

  Cache& l1 = l1_[static_cast<std::size_t>(p)];
  Cache& l2 = l2_[static_cast<std::size_t>(p)];
  const Addr line = l2.line_of(addr);

  // L1 lookup.
  const LineState s1 = l1.probe(addr);
  if (s1 != LineState::kInvalid) {
    if (is_store) {
      if (s1 == LineState::kShared) {
        upgrade_shared_line(p, line);
        l1.set_state(addr, LineState::kModified);
      } else if (s1 == LineState::kExclusive) {
        l1.set_state(addr, LineState::kModified);
        l2.set_state(addr, LineState::kModified);
      }
    }
    l1.touch(addr);
    return;
  }
  bump(p, EventId::kL1DMisses);

  // L2 lookup.
  const LineState s2 = l2.probe(addr);
  if (s2 != LineState::kInvalid) {
    charge(p, config_.l2_hit_cycles, CycleKind::kMemStall);
    LineState grant = s2;
    if (is_store) {
      if (s2 == LineState::kShared) {
        upgrade_shared_line(p, line);
      } else if (s2 == LineState::kExclusive) {
        l2.set_state(addr, LineState::kModified);
      }
      grant = LineState::kModified;
    }
    l2.touch(addr);
    install_l1(p, line, grant);
    return;
  }

  bump(p, EventId::kL2Misses);
  serve_l2_miss(p, line, is_store);
}

void DsmMachine::serve_l2_miss(ProcId p, Addr line, bool is_store) {
  Cache& l2 = l2_[static_cast<std::size_t>(p)];
  const NodeId me = node_of(p);
  const NodeId home = memory_->home_of(line, me);
  bump(p, home == me ? EventId::kLocalMemAccesses
                     : EventId::kRemoteMemAccesses);

  double latency = config_.mem_cycles + network_.latency_cycles(me, home);
  bool compulsory = false;
  LineState install = LineState::kShared;

  if (is_store) {
    const DirWriteResult r = directory_->write_access(line, p);
    compulsory = r.compulsory;
    if (r.intervention) {
      latency += config_.intervention_extra;
      bump(r.owner, EventId::kInterventionsReceived);
    }
    if (r.invalidate != 0) apply_invalidations(line, r.invalidate);
    install = LineState::kModified;
  } else {
    const DirReadResult r = directory_->read_miss(line, p);
    compulsory = r.compulsory;
    if (r.intervention) {
      latency += config_.intervention_extra;
      bump(r.owner, EventId::kInterventionsReceived);
      // The dirty owner degrades to Shared and writes the line back.
      Cache& owner_l2 = l2_[static_cast<std::size_t>(r.owner)];
      Cache& owner_l1 = l1_[static_cast<std::size_t>(r.owner)];
      if (owner_l2.probe(line) == LineState::kModified)
        bump(r.owner, EventId::kL2Writebacks);
      if (owner_l2.probe(line) != LineState::kInvalid)
        owner_l2.set_state(line, LineState::kShared);
      if (owner_l1.probe(line) != LineState::kInvalid)
        owner_l1.set_state(line, LineState::kShared);
    }
    install = r.grant_exclusive ? LineState::kExclusive : LineState::kShared;
  }

  // Ground-truth miss classification.
  ProcGroundTruth& gt = truth_.per_proc[static_cast<std::size_t>(p)];
  auto& invalidated = invalidated_lines_[static_cast<std::size_t>(p)];
  if (compulsory) {
    gt.compulsory_misses += 1.0;
  } else if (invalidated.erase(line) > 0) {
    gt.coherence_misses += 1.0;
  } else {
    gt.conflict_misses += 1.0;
  }

  charge(p, latency, CycleKind::kMemStall);

  if (const auto victim = l2.insert(line, install))
    handle_l2_eviction(p, *victim);
  install_l1(p, line, install);
}

void DsmMachine::upgrade_shared_line(ProcId p, Addr line) {
  const DirWriteResult r = directory_->write_access(line, p);
  ST_CHECK_MSG(!r.compulsory && !r.intervention,
               "upgrade on a line the directory does not consider shared");
  if (r.invalidate != 0) apply_invalidations(line, r.invalidate);
  bump(p, EventId::kStoreToShared);
  charge(p, config_.upgrade_cycles, CycleKind::kMemStall);
  Cache& l2 = l2_[static_cast<std::size_t>(p)];
  ST_DCHECK(l2.probe(line) == LineState::kShared);
  l2.set_state(line, LineState::kModified);
}

void DsmMachine::apply_invalidations(Addr line, std::uint64_t mask) {
  for (ProcId q = 0; q < config_.num_procs; ++q) {
    if ((mask & (std::uint64_t{1} << q)) == 0) continue;
    Cache& l1 = l1_[static_cast<std::size_t>(q)];
    Cache& l2 = l2_[static_cast<std::size_t>(q)];
    const LineState prior = l2.invalidate(line);
    ST_CHECK_MSG(prior != LineState::kInvalid,
                 "directory believed a non-caching processor was a sharer");
    if (prior == LineState::kModified) bump(q, EventId::kL2Writebacks);
    l1.invalidate(line);
    bump(q, EventId::kInvalidationsReceived);
    invalidated_lines_[static_cast<std::size_t>(q)].insert(line);
  }
}

void DsmMachine::handle_l2_eviction(ProcId p, const Victim& victim) {
  directory_->evict(victim.line_addr, p);
  if (victim.state == LineState::kModified)
    bump(p, EventId::kL2Writebacks);
  // Hierarchical inclusion: the L1 copy (if any) must go too.
  l1_[static_cast<std::size_t>(p)].invalidate(victim.line_addr);
}

void DsmMachine::install_l1(ProcId p, Addr line, LineState state) {
  Cache& l1 = l1_[static_cast<std::size_t>(p)];
  // L1 victims are silently dropped: the L2 holds every L1 line (inclusion)
  // with a state at least as permissive, so no data or directory action is
  // needed.
  l1.insert(line, state);
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

void DsmMachine::charge(ProcId p, double cycles, CycleKind kind) {
  ST_DCHECK(cycles >= 0.0);
  if (cycles == 0.0) return;
  clock_[static_cast<std::size_t>(p)] += cycles;
  counters_.proc(p).add(EventId::kCycles, cycles);
  if (!active_region_[static_cast<std::size_t>(p)].empty())
    regions_.at(active_region_[static_cast<std::size_t>(p)])
        .proc(p)
        .add(EventId::kCycles, cycles);
  ProcGroundTruth& gt = truth_.per_proc[static_cast<std::size_t>(p)];
  switch (kind) {
    case CycleKind::kCompute: gt.compute_cycles += cycles; break;
    case CycleKind::kMemStall: gt.mem_stall_cycles += cycles; break;
    case CycleKind::kSync: gt.sync_cycles += cycles; break;
    case CycleKind::kSpin: gt.spin_cycles += cycles; break;
  }
}

void DsmMachine::count_instr(ProcId p, double instr, CycleKind kind) {
  ST_DCHECK(instr >= 0.0);
  if (instr == 0.0) return;
  bump(p, EventId::kGraduatedInstructions, instr);
  ProcGroundTruth& gt = truth_.per_proc[static_cast<std::size_t>(p)];
  switch (kind) {
    case CycleKind::kCompute: gt.compute_instr += instr; break;
    case CycleKind::kMemStall: gt.compute_instr += instr; break;
    case CycleKind::kSync: gt.sync_instr += instr; break;
    case CycleKind::kSpin: gt.spin_instr += instr; break;
  }
}

void DsmMachine::bump(ProcId p, EventId ev, double v) {
  counters_.proc(p).add(ev, v);
  if (!active_region_[static_cast<std::size_t>(p)].empty())
    regions_.at(active_region_[static_cast<std::size_t>(p)]).proc(p).add(ev, v);
}

}  // namespace scaltool
