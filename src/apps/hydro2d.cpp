#include "apps/hydro2d.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "trace/access_pattern.hpp"

namespace scaltool {

namespace {
constexpr std::size_t kElem = 8;
}  // namespace

void Hydro2d::setup(AllocContext& alloc, const WorkloadParams& params,
                    int num_procs) {
  ST_CHECK(serial_frac_ >= 0.0 && serial_frac_ < 0.9);
  n_ = params.dataset_bytes / kBytesPerPoint;
  ST_CHECK_MSG(n_ >= static_cast<std::size_t>(num_procs),
               "data set too small for " << num_procs << " processors");
  iters_ = params.iterations;
  ST_CHECK(iters_ >= 1);
  nprocs_ = num_procs;
  // Three parallel sweeps of n_ elements per iteration; the serial section
  // is sized so it is serial_frac_ of the total per-iteration work.
  const double parallel_work = 3.0 * static_cast<double>(n_);
  serial_elems_ = static_cast<std::size_t>(
      serial_frac_ / (1.0 - serial_frac_) * parallel_work);
  serial_elems_ = std::min(serial_elems_, n_);
  u_ = alloc.allocate(n_ * kElem, "u");
  v_ = alloc.allocate(n_ * kElem, "v");
  h_ = alloc.allocate(n_ * kElem, "h");
  tmp_ = alloc.allocate(n_ * kElem, "tmp");
}

int Hydro2d::num_phases() const { return 1 + iters_ * kPhasesPerIter; }

void Hydro2d::run_phase(int phase, ProcContext& ctx) {
  const ProcId p = ctx.proc();
  const BlockRange range = block_range(n_, nprocs_, p);

  if (phase == 0) {
    for (Addr base : {u_, v_, h_, tmp_})
      stream_write(ctx, base, range.begin, range.size(), kElem, 1.0);
    return;
  }

  switch ((phase - 1) % kPhasesPerIter) {
    case 0:
      // Height advection sweep: tmp = stencil(h). Hydrodynamics does a
      // couple of dozen flops per point; keep the arithmetic density
      // realistic so memory misses do not dwarf the computation.
      stencil3(ctx, h_, tmp_, range.begin, range.size(), n_, kElem,
               /*flops_per_elem=*/10.0);
      break;
    case 1:
      // Velocity update: v = f(u, v).
      for (std::size_t i = range.begin; i < range.end; ++i) {
        const Addr off = static_cast<Addr>(i * kElem);
        ctx.load(u_ + off);
        ctx.load(v_ + off);
        ctx.compute(8.0);
        ctx.store(v_ + off);
      }
      break;
    case 2:
      // Serial section: boundary conditions, filtering and global
      // bookkeeping done by the master while the slaves wait for work.
      if (p == 0) {
        // The work cycles over the master's own block so it costs serial
        // *time* without injecting cross-processor sharing (the paper finds
        // Hydro2d's validation residual comes from imbalance, not sharing).
        ctx.begin_region("serial_section");
        const std::size_t span = std::max<std::size_t>(1, range.size());
        for (std::size_t i = 0; i < serial_elems_; ++i) {
          const Addr off = static_cast<Addr>((i % span) * kElem);
          ctx.load(tmp_ + off);
          ctx.load(h_ + off);
          ctx.compute(8.0);
          ctx.store(h_ + off);
        }
        ctx.end_region();
      }
      break;
    case 3:
      // Height correction sweep: h = stencil(tmp) folded with u read.
      for (std::size_t i = range.begin; i < range.end; ++i) {
        const Addr off = static_cast<Addr>(i * kElem);
        ctx.load(tmp_ + off);
        ctx.load(u_ + off);
        ctx.compute(8.0);
        ctx.store(h_ + off);
      }
      break;
    default:
      ST_CHECK_MSG(false, "unreachable phase " << phase);
  }
}

}  // namespace scaltool
