// Measurement kernels of Section 2.4.2.
//
// "We estimate cpi_syn and cpi_imb by running small, synthetic kernels that
// continuously synchronize and spin in an idle loop, respectively. The
// hardware event counters tell us the CPI."
//
// SyncKernel: processors come in and out of barriers with almost no work in
// between — no spinning, exactly as the paper prescribes. Its measured CPI
// is cpi_syn(n), and inverting Eq. 10 on its counters yields the fetchop
// latency t_syn(n).
//
// SpinKernel: one processor computes while the rest spin idle at the
// barrier; its measured CPI converges to cpi_imb.
#pragma once

#include "trace/workload.hpp"

namespace scaltool {

class SyncKernel final : public Workload {
 public:
  explicit SyncKernel(int barriers = 64) : barriers_(barriers) {}

  std::string name() const override { return "sync_kernel"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kPCF;
  }

  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override { return barriers_; }
  void run_phase(int phase, ProcContext& ctx) override;

 private:
  int barriers_;
};

class SpinKernel final : public Workload {
 public:
  /// `work_instr` is the busy processor's per-phase instruction count; the
  /// larger it is, the longer the others spin.
  /// The default work per phase is large enough that spinning dwarfs the
  /// barrier cost even on 32 processors, so the measured CPI is the spin
  /// loop's and not the barrier's.
  explicit SpinKernel(int phases = 8, double work_instr = 60000.0)
      : phases_(phases), work_instr_(work_instr) {}

  std::string name() const override { return "spin_kernel"; }
  /// MP: the idle processors wait in wait_for_work — genuine spinning —
  /// which is exactly the CPI this kernel exists to measure.
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }

  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override { return phases_; }
  void run_phase(int phase, ProcContext& ctx) override;

 private:
  int phases_;
  double work_instr_;
};

}  // namespace scaltool
