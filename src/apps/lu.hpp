// LU: right-looking blocked factorization (beyond the paper's three
// applications — a workload whose parallelism *shrinks* as it proceeds,
// the canonical growing-load-imbalance pattern).
//
// Iteration k eliminates panel k: the panel owner factors it alone (a
// serial section that every other processor waits out), then all
// processors update their share of the trailing submatrix, which shrinks
// with k — so late iterations leave more and more processors idle.
#pragma once

#include <cstddef>

#include "trace/workload.hpp"

namespace scaltool {

class Lu final : public Workload {
 public:
  std::string name() const override { return "lu"; }
  ParallelismModel parallelism_model() const override {
    return ParallelismModel::kMP;
  }

  void setup(AllocContext& alloc, const WorkloadParams& params,
             int num_procs) override;
  int num_phases() const override;
  void run_phase(int phase, ProcContext& ctx) override;

 private:
  static constexpr std::size_t kElem = 8;
  static constexpr int kPhasesPerStep = 2;  // panel factor + trailing update

  std::size_t dim_ = 0;      ///< matrix is dim_ × dim_ doubles
  int steps_ = 0;            ///< elimination steps simulated
  int nprocs_ = 0;
  Addr a_ = 0;

  std::size_t index(std::size_t row, std::size_t col) const {
    return row * dim_ + col;
  }
};

}  // namespace scaltool
